// Package ulpdp is a Go implementation of "Guaranteeing Local
// Differential Privacy on Ultra-low-power Systems" (Choi, Tomei,
// Sanchez Vicarte, Hanumolu, Kumar — ISCA 2018).
//
// It provides:
//
//   - local-DP noising mechanisms for fixed-point hardware — the
//     ideal Laplace reference, the naive FxP baseline (whose privacy
//     loss is provably infinite), and the paper's resampling and
//     thresholding guards with certified loss bounds;
//   - exact privacy analysis: the closed-form PMF of the fixed-point
//     inverse-CDF Laplace RNG, worst-case loss enumeration, and
//     threshold calculators (the paper's eqs. 13/15, re-derived and
//     hardened — see DESIGN.md);
//   - Algorithm 1 budget control with output-dependent charging,
//     caching and replenishment;
//   - a cycle-level DP-Box hardware simulator, a synthesis cost
//     model, and an MSP430 emulator running the software noising
//     baselines;
//   - the complete experiment suite regenerating every table and
//     figure of the paper (internal/experiments, cmd/dpbench).
//
// Quick start:
//
//	par := ulpdp.Params{Lo: 0, Hi: 10, Eps: 0.5, Bu: 17, By: 12, Delta: 10.0 / 32}
//	mech, err := ulpdp.NewThresholding(par, 2, 1)
//	if err != nil { ... }
//	noised := mech.Noise(reading).Value
//
// All randomness is seeded; identical seeds replay identical noise.
package ulpdp

import (
	"io"

	"ulpdp/internal/budget"
	"ulpdp/internal/core"
	"ulpdp/internal/dataset"
	"ulpdp/internal/dpbox"
	"ulpdp/internal/experiments"
	"ulpdp/internal/hwmodel"
	"ulpdp/internal/laplace"
	"ulpdp/internal/msp430"
	"ulpdp/internal/noisedist"
	"ulpdp/internal/obs"
	"ulpdp/internal/urng"
)

// Params describes one sensor's privacy configuration: range
// [Lo, Hi], per-report ε, and the fixed-point RNG geometry (B_u
// uniform bits, B_y output bits, quantization step Δ).
type Params = core.Params

// Mechanism is a local-DP noising mechanism for scalar sensor values.
type Mechanism = core.Mechanism

// Result is one noised report.
type Result = core.Result

// LossReport is an exact worst-case privacy-loss certification.
type LossReport = core.LossReport

// NewIdealLaplace returns the real-valued Laplace reference mechanism
// (ε-LDP by construction, unimplementable on fixed-point hardware).
func NewIdealLaplace(par Params, seed uint64) (Mechanism, error) {
	return core.NewIdealLaplace(par, seed)
}

// NewBaseline returns the naive fixed-point mechanism. Its utility
// matches the ideal mechanism but its worst-case privacy loss is
// infinite — use it only as a baseline.
func NewBaseline(par Params, seed uint64) (Mechanism, error) {
	return core.NewBaseline(par, nil, urng.NewTaus88(seed))
}

// NewResampling returns the resampling-guarded mechanism with the
// certified threshold for worst-case loss mult·ε.
func NewResampling(par Params, mult float64, seed uint64) (Mechanism, error) {
	th, err := core.ResamplingThreshold(par, mult)
	if err != nil {
		return nil, err
	}
	return core.NewResampling(par, th, nil, urng.NewTaus88(seed))
}

// NewThresholding returns the thresholding-guarded mechanism with the
// certified threshold for worst-case loss mult·ε. This is the
// single-draw, energy-efficient guard.
func NewThresholding(par Params, mult float64, seed uint64) (Mechanism, error) {
	th, err := core.ThresholdingThreshold(par, mult)
	if err != nil {
		return nil, err
	}
	return core.NewThresholding(par, th, nil, urng.NewTaus88(seed))
}

// NewRandomizedResponse returns the binary (categorical) mechanism —
// the DP-Box's threshold-zero configuration. Inputs snap to the
// nearer of {Lo, Hi}; outputs are always Lo or Hi.
func NewRandomizedResponse(par Params, seed uint64) (*core.RandomizedResponse, error) {
	return core.NewRandomizedResponse(par, nil, urng.NewTaus88(seed))
}

// ResamplingThreshold computes the certified resampling guard
// threshold (in steps of Δ) for worst-case loss mult·ε.
func ResamplingThreshold(par Params, mult float64) (int64, error) {
	return core.ResamplingThreshold(par, mult)
}

// ThresholdingThreshold computes the certified thresholding guard
// threshold (in steps of Δ) for worst-case loss mult·ε.
func ThresholdingThreshold(par Params, mult float64) (int64, error) {
	return core.ThresholdingThreshold(par, mult)
}

// CertifyBaseline enumerates the naive mechanism's exact worst-case
// privacy loss (expect Infinite == true). Repeated certifications of
// identical Params share one process-wide analyzer (and its
// materialized PMF); the analyzer itself is immutable, so Certify
// calls are safe to issue concurrently.
func CertifyBaseline(par Params) (LossReport, error) {
	if err := par.Validate(); err != nil {
		return LossReport{}, err
	}
	return core.CachedAnalyzer(par).BaselineLoss(), nil
}

// CertifyThresholding enumerates the thresholding mechanism's exact
// worst-case loss at the given threshold (steps of Δ).
func CertifyThresholding(par Params, threshold int64) (LossReport, error) {
	if err := par.Validate(); err != nil {
		return LossReport{}, err
	}
	return core.CachedAnalyzer(par).ThresholdingLoss(threshold), nil
}

// CertifyResampling enumerates the resampling mechanism's exact
// worst-case loss at the given threshold (steps of Δ).
func CertifyResampling(par Params, threshold int64) (LossReport, error) {
	if err := par.Validate(); err != nil {
		return LossReport{}, err
	}
	return core.CachedAnalyzer(par).ResamplingLoss(threshold), nil
}

// Budget is the Algorithm 1 privacy budget controller.
type Budget = budget.Controller

// BudgetConfig parameterizes a Budget.
type BudgetConfig = budget.Config

// NewBudget builds a budget controller for the given parameters.
func NewBudget(par Params, cfg BudgetConfig) (*Budget, error) {
	return budget.New(par, cfg)
}

// DPBox is the cycle-level hardware module simulator.
type DPBox = dpbox.DPBox

// DPBoxConfig fixes a DP-Box variant's geometry.
type DPBoxConfig = dpbox.Config

// NewDPBox powers up a DP-Box in its initialization phase.
func NewDPBox(cfg DPBoxConfig) (*DPBox, error) {
	return dpbox.New(cfg)
}

// DPBoxJournal is the DP-Box's word-granular NVM budget journal.
// Attach one via DPBoxConfig.Journal for crash-consistent budget
// accounting and at-most-once sequence-labelled releases; see
// docs/nvm.md for the storage engine underneath.
type DPBoxJournal = dpbox.Journal

// NewDPBoxJournal returns an in-memory journal: full power-loss
// semantics inside the process, no durability across process exit.
func NewDPBoxJournal() *DPBoxJournal { return dpbox.NewJournal() }

// OpenDPBoxJournal opens (or creates) a file-backed journal under
// dir. A journal left behind by a dead process still holds its ledger
// and release window — boot from it with RecoverDPBox. Close the
// journal when done with the box.
func OpenDPBoxJournal(dir string) (*DPBoxJournal, error) { return dpbox.OpenJournal(dir) }

// RecoverDPBox is the secure-boot path after a crash: it replays j,
// compacts it, and powers up a DP-Box with the recovered ledger and
// release-retransmission window (cfg.Journal is overridden with j).
// A journal that never reached the budget lock boots fresh in the
// initialization phase.
func RecoverDPBox(cfg DPBoxConfig, j *DPBoxJournal) (*DPBox, error) { return dpbox.Recover(cfg, j) }

// DP-Box command-port opcodes, re-exported for hosts that drive the
// port directly instead of through the convenience methods.
const (
	DPBoxCmdDoNothing      = dpbox.CmdDoNothing
	DPBoxCmdStartNoising   = dpbox.CmdStartNoising
	DPBoxCmdSetEpsilon     = dpbox.CmdSetEpsilon
	DPBoxCmdSetSensorValue = dpbox.CmdSetSensorValue
	DPBoxCmdSetRangeUpper  = dpbox.CmdSetRangeUpper
	DPBoxCmdSetRangeLower  = dpbox.CmdSetRangeLower
	DPBoxCmdSetThreshold   = dpbox.CmdSetThreshold
)

// DPBoxPhase is the DP-Box FSM phase reported by (*DPBox).Phase.
type DPBoxPhase = dpbox.Phase

// DP-Box phases, re-exported so hosts can tell "busy" from "gone".
const (
	DPBoxPhaseInit    = dpbox.PhaseInit
	DPBoxPhaseWaiting = dpbox.PhaseWaiting
	DPBoxPhaseNoising = dpbox.PhaseNoising
	DPBoxPhaseDead    = dpbox.PhaseDead
)

// Bank is a multi-sensor DP-Box: several sensor channels charging one
// shared budget ledger, as Section IV requires when readings could be
// combined.
type Bank = dpbox.Bank

// NewBank powers up n sensor channels sharing one budget.
func NewBank(cfg DPBoxConfig, n int, seed uint64) (*Bank, error) {
	return dpbox.NewBank(cfg, n, seed)
}

// NewConstantTime returns the timing-channel-safe resampling variant
// (Section IV-C): candidates parallel samples per report, constant
// latency, threshold certified by the exact constant-time analysis.
func NewConstantTime(par Params, mult float64, candidates int, seed uint64) (Mechanism, error) {
	th, err := core.ExactConstantTimeThreshold(par, mult, candidates)
	if err != nil {
		return nil, err
	}
	return core.NewConstantTime(par, th, candidates, nil, urng.NewTaus88(seed))
}

// CertifyConstantTime enumerates the constant-time mechanism's exact
// worst-case loss at the given threshold and candidate count.
func CertifyConstantTime(par Params, threshold int64, candidates int) (LossReport, error) {
	if err := par.Validate(); err != nil {
		return LossReport{}, err
	}
	return core.CachedAnalyzer(par).ConstantTimeLoss(threshold, candidates), nil
}

// FxPDist is the exact output distribution of the fixed-point Laplace
// RNG (eq. 11's closed form).
type FxPDist = laplace.Dist

// NewFxPDist returns the exact RNG distribution for par.
func NewFxPDist(par Params) (FxPDist, error) {
	if err := par.Validate(); err != nil {
		return FxPDist{}, err
	}
	return laplace.NewDist(par.FxP()), nil
}

// NoiseFamily abstracts an ideal symmetric noise distribution
// (Laplace, Gaussian, staircase); see internal/noisedist for the
// Section III-A4 generalization.
type NoiseFamily = noisedist.Family

// NoiseGeometry is the fixed-point RNG geometry shared by families.
type NoiseGeometry = noisedist.Geometry

// FamilyDist is the exact quantized distribution of a family's
// fixed-point implementation.
type FamilyDist = noisedist.Dist

// Noise family constructors, re-exported.
type (
	// LaplaceFamily is Lap(λ).
	LaplaceFamily = noisedist.Laplace
	// GaussianFamily is N(0, σ²).
	GaussianFamily = noisedist.Gaussian
	// StaircaseFamily is the Geng–Viswanath staircase mechanism.
	StaircaseFamily = noisedist.Staircase
)

// NewFamilyDist builds the exact fixed-point distribution of any
// noise family. Feed its PMF to CertifyFamily for exact analysis.
func NewFamilyDist(fam NoiseFamily, geo NoiseGeometry) (FamilyDist, error) {
	return noisedist.NewDist(fam, geo)
}

// familyAnalyzer returns the shared analyzer for a family's exact
// distribution on par's grid. The cache key is the family value plus
// its geometry; a hit skips both the PMF enumeration and the analyzer
// construction, and families whose parameter types are not comparable
// simply bypass the cache.
func familyAnalyzer(par Params, d FamilyDist) *core.Analyzer {
	type familyKey struct {
		Fam NoiseFamily
		Geo NoiseGeometry
	}
	return core.CachedAnalyzerPMF(par, familyKey{Fam: d.Family(), Geo: d.Geometry()}, d.PMF)
}

// CertifyFamilyBaseline enumerates the unguarded mechanism's exact
// worst-case loss for an arbitrary noise family on par's grid
// (expect Infinite — the Section III-A4 generalization).
func CertifyFamilyBaseline(par Params, d FamilyDist) (LossReport, error) {
	if err := par.Validate(); err != nil {
		return LossReport{}, err
	}
	return familyAnalyzer(par, d).BaselineLoss(), nil
}

// CertifyFamilyThresholding enumerates the thresholding mechanism's
// exact worst-case loss for an arbitrary family at the given
// threshold (steps of Δ).
func CertifyFamilyThresholding(par Params, d FamilyDist, threshold int64) (LossReport, error) {
	if err := par.Validate(); err != nil {
		return LossReport{}, err
	}
	return familyAnalyzer(par, d).ThresholdingLoss(threshold), nil
}

// Dataset is a Table I dataset descriptor (synthetic regenerator).
type Dataset = dataset.Meta

// Datasets returns the seven Table I datasets.
func Datasets() []Dataset { return dataset.Catalog() }

// DatasetByName looks up a Table I dataset.
func DatasetByName(name string) (Dataset, error) { return dataset.ByName(name) }

// SynthReport is a hardware synthesis estimate.
type SynthReport = hwmodel.Report

// Synthesize estimates gates / critical path / power for a DP-Box
// hardware variant at the given clock.
func Synthesize(cfg hwmodel.Config, clockMHz float64) (SynthReport, error) {
	return hwmodel.Synthesize(cfg, clockMHz)
}

// BaselineHardware is the paper's synthesized DP-Box configuration.
func BaselineHardware() hwmodel.Config { return hwmodel.Baseline }

// SoftNoiser runs the Section III-D software noising routines on an
// emulated MSP430.
type SoftNoiser = msp430.SoftNoiser

// NewSoftNoiser assembles a software noising routine
// (msp430.FixedPoint20 or msp430.HalfPrecision).
func NewSoftNoiser(prec msp430.Precision, seed uint64) (*SoftNoiser, error) {
	return msp430.NewSoftNoiser(prec, seed)
}

// ExperimentConfig tunes the experiment suite's scale.
type ExperimentConfig = experiments.Config

// DefaultExperiments returns the full-scale experiment configuration.
func DefaultExperiments() ExperimentConfig { return experiments.Default() }

// QuickExperiments returns a fast, reduced-scale configuration.
func QuickExperiments() ExperimentConfig { return experiments.Quick() }

// ExperimentNames lists the reproducible exhibits (figures, tables,
// sections).
func ExperimentNames() []string { return experiments.Names() }

// RunExperiment executes one exhibit by name, printing its rows.
func RunExperiment(name string, cfg ExperimentConfig, w io.Writer) error {
	run, ok := experiments.Registry[name]
	if !ok {
		return &UnknownExperimentError{Name: name}
	}
	return run(cfg, w)
}

// RunExperimentJSON executes one exhibit and writes its result as
// indented JSON.
func RunExperimentJSON(name string, cfg ExperimentConfig, w io.Writer) error {
	if _, ok := experiments.Registry[name]; !ok {
		return &UnknownExperimentError{Name: name}
	}
	return experiments.RunJSON(name, cfg, w)
}

// RunAllExperiments executes the whole suite.
func RunAllExperiments(cfg ExperimentConfig, w io.Writer) error {
	return experiments.RunAll(cfg, w)
}

// UnknownExperimentError reports a bad experiment name.
type UnknownExperimentError struct {
	Name string
}

// Error implements error.
func (e *UnknownExperimentError) Error() string {
	return "ulpdp: unknown experiment " + e.Name + " (see ExperimentNames)"
}

// VCDTracer streams DP-Box state into a VCD waveform (GTKWave etc.).
type VCDTracer = dpbox.VCDTracer

// NewVCDTracer builds a waveform tracer writing to out; attach it
// with (*DPBox).SetTracer.
func NewVCDTracer(out io.Writer) (*VCDTracer, error) {
	return dpbox.NewVCDTracer(out)
}

// ObsRegistry is the process-wide telemetry registry: counters,
// gauges, histograms, the privacy odometer, and the event trace ring.
// See docs/observability.md for the metric name schema.
type ObsRegistry = obs.Registry

// NewObsRegistry returns an empty telemetry registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// ObsSnapshot is a point-in-time copy of a registry, JSON-ready.
type ObsSnapshot = obs.Snapshot

// DPBoxMetrics is the DP-Box telemetry plane; attach one via
// DPBoxConfig.Obs (nil disables telemetry at zero cost on the noise
// hot path — see BenchmarkDPBoxObsDisabled).
type DPBoxMetrics = dpbox.Metrics

// NewDPBoxMetrics registers the DP-Box metric schema on a registry.
// channels sizes the privacy odometer — one channel per Bank sensor
// or fleet node.
func NewDPBoxMetrics(r *ObsRegistry, channels int) *DPBoxMetrics {
	return dpbox.NewMetrics(r, channels)
}
