module ulpdp

go 1.22
