// Package dataset regenerates the seven UCI sensor/IoT datasets of
// the paper's Table I as synthetic equivalents. The module is
// offline, so the real UCI archives are unavailable; each generator
// is a parametric distribution matched to the published entry count,
// range, mean and standard deviation (several Table I cells are
// unreadable in the source scan; where so, the statistics of the real
// UCI dataset are used and noted on the generator). The utility
// experiments (Tables II-V, Figs. 11-15) depend only on these
// moments, the range length d and the dataset size — all preserved.
package dataset

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ulpdp/internal/urng"
)

// Shape selects the generator family.
type Shape int

const (
	// TruncNormal is a Gaussian truncated to [Min, Max].
	TruncNormal Shape = iota
	// SkewedLogNormal is a right-skewed lognormal shifted into range.
	SkewedLogNormal
	// CeilingMix is TruncNormal plus an atom at Max (sensors that
	// saturate, e.g. ultrasound rangefinders reporting "no echo").
	CeilingMix
	// Bimodal is a two-component Gaussian mixture (activity signals
	// alternating between rest and motion).
	Bimodal
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	switch s {
	case TruncNormal:
		return "trunc-normal"
	case SkewedLogNormal:
		return "skewed-lognormal"
	case CeilingMix:
		return "ceiling-mix"
	case Bimodal:
		return "bimodal"
	}
	return fmt.Sprintf("Shape(%d)", int(s))
}

// Meta describes one dataset: its Table I row and generator shape.
type Meta struct {
	// Name is the dataset's Table I label.
	Name string
	// Source notes what the generator substitutes for.
	Source string
	// Entries is the number of rows.
	Entries int
	// Min and Max bound the attribute (the sensor range [m, M]).
	Min, Max float64
	// Mean and Std are the target moments.
	Mean, Std float64
	// Shape selects the generator family.
	Shape Shape
	// CeilFrac is the saturation-atom mass for CeilingMix.
	CeilFrac float64
}

// Catalog returns the seven Table I datasets in the paper's order.
func Catalog() []Meta {
	return []Meta{
		{
			Name:    "Auto-MPG",
			Source:  "UCI Auto MPG: miles per gallon",
			Entries: 398, Min: 9, Max: 46.6, Mean: 23.5, Std: 7.8,
			Shape: SkewedLogNormal,
		},
		{
			Name:    "Robot Sensors",
			Source:  "UCI Wall-Following Robot Navigation: ultrasound range (m)",
			Entries: 5456, Min: 0, Max: 5.0, Mean: 1.9, Std: 1.4,
			Shape: CeilingMix, CeilFrac: 0.12,
		},
		{
			Name:    "Statlog (Heart)",
			Source:  "UCI Statlog Heart: resting blood pressure (mmHg)",
			Entries: 270, Min: 94, Max: 200, Mean: 131.3, Std: 17.9,
			Shape: TruncNormal,
		},
		{
			Name:    "Human Activity",
			Source:  "UCI HAR (smartphones): normalized body acceleration",
			Entries: 10299, Min: -1, Max: 1, Mean: -0.06, Std: 0.4,
			Shape: Bimodal,
		},
		{
			Name:    "Localization for Person",
			Source:  "UCI Localization Data for Person Activity: x coordinate (m)",
			Entries: 164860, Min: -2.54, Max: 6.34, Mean: 1.9, Std: 1.2,
			Shape: TruncNormal,
		},
		{
			Name:    "UJIIndoorLoc",
			Source:  "UCI UJIIndoorLoc: longitude (m, local frame)",
			Entries: 19937, Min: -7691.3, Max: -7300.9, Mean: -7464.4, Std: 123.4,
			Shape: TruncNormal,
		},
		{
			Name:    "Postural Transitions",
			Source:  "UCI Smartphone-Based HAPT: normalized acceleration",
			Entries: 10929, Min: -1.001, Max: 1.0, Mean: 0.015, Std: 0.32,
			Shape: TruncNormal,
		},
	}
}

// ByName returns the catalog entry with the given name.
func ByName(name string) (Meta, error) {
	for _, m := range Catalog() {
		if m.Name == name {
			return m, nil
		}
	}
	return Meta{}, fmt.Errorf("dataset: unknown dataset %q", name)
}

// Validate reports whether the meta is generatable.
func (m Meta) Validate() error {
	if m.Entries < 1 {
		return fmt.Errorf("dataset %q: no entries", m.Name)
	}
	if !(m.Max > m.Min) {
		return fmt.Errorf("dataset %q: empty range", m.Name)
	}
	if m.Mean < m.Min || m.Mean > m.Max {
		return fmt.Errorf("dataset %q: mean outside range", m.Name)
	}
	if !(m.Std > 0) {
		return fmt.Errorf("dataset %q: non-positive std", m.Name)
	}
	if m.CeilFrac < 0 || m.CeilFrac > 0.5 {
		return fmt.Errorf("dataset %q: ceiling fraction %g out of [0, 0.5]", m.Name, m.CeilFrac)
	}
	return nil
}

// Range returns the attribute range length d = Max - Min.
func (m Meta) Range() float64 { return m.Max - m.Min }

// Generate produces the synthetic dataset deterministically from the
// seed. It panics on invalid metadata.
func (m Meta) Generate(seed uint64) []float64 {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	rng := urng.NewSplitMix64(seed ^ hashName(m.Name))
	out := make([]float64, m.Entries)
	for i := range out {
		out[i] = m.sample(rng)
	}
	return out
}

// GenerateN produces n entries regardless of the catalog size — used
// by the dataset-size sweeps of Figs. 14 and 15.
func (m Meta) GenerateN(n int, seed uint64) []float64 {
	mm := m
	mm.Entries = n
	return mm.Generate(seed)
}

func (m Meta) sample(rng *urng.SplitMix64) float64 {
	switch m.Shape {
	case SkewedLogNormal:
		// Lognormal with moments matched to (Mean-Min, Std), then
		// shifted by Min and truncated.
		mu, sigma := lognormalParams(m.Mean-m.Min, m.Std)
		for {
			v := m.Min + math.Exp(mu+sigma*rng.NormFloat64())
			if v >= m.Min && v <= m.Max {
				return v
			}
		}
	case CeilingMix:
		if rng.Float64() < m.CeilFrac {
			return m.Max
		}
		// Bulk component: match the mixture's moments. The atom at
		// Max contributes both to the mean and (heavily) to the
		// variance, so the bulk runs at a reduced mean and std.
		f := m.CeilFrac
		bulkMean := (m.Mean - f*m.Max) / (1 - f)
		bulkVar := (m.Std*m.Std - f*(m.Max-m.Mean)*(m.Max-m.Mean) -
			(1-f)*(bulkMean-m.Mean)*(bulkMean-m.Mean)) / (1 - f)
		minStd := 0.02 * m.Range()
		bulkStd := minStd
		if bulkVar > minStd*minStd {
			bulkStd = math.Sqrt(bulkVar)
		}
		return truncNormal(rng, bulkMean, bulkStd, m.Min, m.Max)
	case Bimodal:
		// Two modes at mean ± std, mixed to preserve the mean.
		if rng.Float64() < 0.5 {
			return truncNormal(rng, m.Mean-m.Std*0.9, m.Std*0.45, m.Min, m.Max)
		}
		return truncNormal(rng, m.Mean+m.Std*0.9, m.Std*0.45, m.Min, m.Max)
	default:
		return truncNormal(rng, m.Mean, m.Std, m.Min, m.Max)
	}
}

func truncNormal(rng *urng.SplitMix64, mean, std, lo, hi float64) float64 {
	// Truncation shrinks the sample variance and pulls the mean
	// toward the interval centre; compensate so the *post-truncation*
	// moments hit the targets (UJIIndoorLoc's std is 32% of its
	// range — uncompensated it would generate ~25% low).
	mu, sigma := truncNormalParams(mean, std, lo, hi)
	for i := 0; i < 1000; i++ {
		v := mu + sigma*rng.NormFloat64()
		if v >= lo && v <= hi {
			return v
		}
	}
	// Pathological truncation: fall back to clamping.
	v := mu + sigma*rng.NormFloat64()
	return math.Max(lo, math.Min(hi, v))
}

// truncNormalParams finds (mu, sigma) of the parent normal whose
// [lo, hi]-truncation has approximately the target mean and std, by
// alternating a mean correction with a bisection on sigma.
func truncNormalParams(mean, std, lo, hi float64) (mu, sigma float64) {
	mu, sigma = mean, std
	for iter := 0; iter < 4; iter++ {
		// Bisection on sigma so the truncated std matches.
		loS, hiS := std, 6*std
		for i := 0; i < 40; i++ {
			mid := (loS + hiS) / 2
			_, s := truncMoments(mu, mid, lo, hi)
			if s < std {
				loS = mid
			} else {
				hiS = mid
			}
		}
		sigma = (loS + hiS) / 2
		m, _ := truncMoments(mu, sigma, lo, hi)
		mu += mean - m
	}
	return mu, sigma
}

// truncMoments returns the mean and std of N(mu, sigma²) truncated to
// [lo, hi].
func truncMoments(mu, sigma, lo, hi float64) (float64, float64) {
	a := (lo - mu) / sigma
	b := (hi - mu) / sigma
	z := stdCDF(b) - stdCDF(a)
	if z < 1e-12 {
		return (lo + hi) / 2, (hi - lo) / math.Sqrt(12)
	}
	pa, pb := stdPDF(a), stdPDF(b)
	mean := mu + sigma*(pa-pb)/z
	variance := sigma * sigma * (1 + (a*pa-b*pb)/z - ((pa-pb)/z)*((pa-pb)/z))
	if variance < 0 {
		variance = 0
	}
	return mean, math.Sqrt(variance)
}

func stdPDF(x float64) float64 { return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi) }

func stdCDF(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }

// lognormalParams solves for (mu, sigma) of a lognormal with the
// given mean and standard deviation.
func lognormalParams(mean, std float64) (mu, sigma float64) {
	v := std * std / (mean * mean)
	sigma = math.Sqrt(math.Log(1 + v))
	mu = math.Log(mean) - sigma*sigma/2
	return
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// LoadCSV reads a one-column CSV of float values: one value per line,
// '#' comments and a leading "value" header permitted — the format
// cmd/datagen writes and the format to use when substituting the real
// UCI datasets for the synthetic regenerators.
func LoadCSV(r io.Reader) ([]float64, error) {
	sc := bufio.NewScanner(r)
	var out []float64
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") || s == "value" {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dataset: no values in CSV")
	}
	return out, nil
}

// FileName returns the canonical CSV file name for a dataset (the
// name cmd/datagen writes and Load looks for).
func (m Meta) FileName() string {
	s := strings.ToLower(m.Name)
	s = strings.NewReplacer(" ", "_", "(", "", ")", "", "-", "_").Replace(s)
	return s + ".csv"
}

// Load reads the dataset's CSV from dir, clamping values into the
// Table I range (real UCI extracts may contain stragglers beyond the
// published bounds; the privacy parameters are defined by the range).
func (m Meta) Load(dir string) ([]float64, error) {
	f, err := os.Open(filepath.Join(dir, m.FileName()))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	xs, err := LoadCSV(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", m.Name, err)
	}
	for i, v := range xs {
		xs[i] = math.Max(m.Min, math.Min(m.Max, v))
	}
	return xs, nil
}

// Stats summarizes a generated sample.
type Stats struct {
	N                   int
	Min, Max, Mean, Std float64
}

// Describe computes summary statistics.
func Describe(xs []float64) Stats {
	if len(xs) == 0 {
		return Stats{}
	}
	s := Stats{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Mean += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean /= float64(len(xs))
	for _, x := range xs {
		d := x - s.Mean
		s.Std += d * d
	}
	s.Std = math.Sqrt(s.Std / float64(len(xs)))
	return s
}
