package dataset

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCatalogHasSevenValidDatasets(t *testing.T) {
	cat := Catalog()
	if len(cat) != 7 {
		t.Fatalf("catalog has %d datasets, want 7 (Table I)", len(cat))
	}
	seen := map[string]bool{}
	for _, m := range cat {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if seen[m.Name] {
			t.Errorf("duplicate dataset %q", m.Name)
		}
		seen[m.Name] = true
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("Statlog (Heart)")
	if err != nil {
		t.Fatal(err)
	}
	if m.Entries != 270 {
		t.Errorf("entries = %d", m.Entries)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should error")
	}
}

func TestGenerateMatchesMoments(t *testing.T) {
	for _, m := range Catalog() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			// Generate a large sample for stable moments.
			xs := m.GenerateN(50000, 1)
			s := Describe(xs)
			if s.Min < m.Min-1e-9 || s.Max > m.Max+1e-9 {
				t.Errorf("sample range [%g, %g] outside [%g, %g]", s.Min, s.Max, m.Min, m.Max)
			}
			// Mean within 10% of range; std within 25% of target
			// (truncation shifts both slightly).
			if math.Abs(s.Mean-m.Mean) > 0.1*m.Range() {
				t.Errorf("mean %g, want ~%g", s.Mean, m.Mean)
			}
			if math.Abs(s.Std-m.Std)/m.Std > 0.25 {
				t.Errorf("std %g, want ~%g", s.Std, m.Std)
			}
		})
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	m := Catalog()[0]
	a := m.Generate(7)
	b := m.Generate(7)
	if len(a) != m.Entries {
		t.Fatalf("len = %d, want %d", len(a), m.Entries)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d", i)
		}
	}
	c := m.Generate(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical data")
	}
}

func TestDifferentDatasetsDifferUnderSameSeed(t *testing.T) {
	cat := Catalog()
	a := cat[3].GenerateN(100, 1)
	b := cat[6].GenerateN(100, 1)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 5 {
		t.Errorf("%d of 100 samples identical across datasets", same)
	}
}

func TestCeilingMixHasSaturationAtom(t *testing.T) {
	m, err := ByName("Robot Sensors")
	if err != nil {
		t.Fatal(err)
	}
	xs := m.GenerateN(20000, 3)
	atMax := 0
	for _, x := range xs {
		if x == m.Max {
			atMax++
		}
	}
	frac := float64(atMax) / float64(len(xs))
	if math.Abs(frac-m.CeilFrac) > 0.02 {
		t.Errorf("saturation fraction %g, want ~%g", frac, m.CeilFrac)
	}
}

func TestValidateRejectsBadMeta(t *testing.T) {
	bad := []Meta{
		{Name: "x", Entries: 0, Min: 0, Max: 1, Mean: 0.5, Std: 0.1},
		{Name: "x", Entries: 10, Min: 1, Max: 1, Mean: 1, Std: 0.1},
		{Name: "x", Entries: 10, Min: 0, Max: 1, Mean: 2, Std: 0.1},
		{Name: "x", Entries: 10, Min: 0, Max: 1, Mean: 0.5, Std: 0},
		{Name: "x", Entries: 10, Min: 0, Max: 1, Mean: 0.5, Std: 0.1, CeilFrac: 0.9},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("meta %d should be invalid", i)
		}
	}
}

func TestGeneratePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	(Meta{Name: "bad"}).Generate(1)
}

func TestDescribeEmpty(t *testing.T) {
	if s := Describe(nil); s.N != 0 {
		t.Errorf("empty describe: %+v", s)
	}
}

func TestLoadCSVRoundTrip(t *testing.T) {
	m, err := ByName("Auto-MPG")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	// Write the canonical CSV (the format datagen emits).
	var sb strings.Builder
	sb.WriteString("# comment line\nvalue\n")
	want := m.GenerateN(50, 3)
	for _, v := range want {
		fmt.Fprintf(&sb, "%g\n", v)
	}
	if err := os.WriteFile(filepath.Join(dir, m.FileName()), []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := m.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("loaded %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("value %d: %g != %g", i, got[i], want[i])
		}
	}
}

func TestLoadClampsToRange(t *testing.T) {
	m, err := ByName("Statlog (Heart)")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	content := "50\n250\n130\n"
	if err := os.WriteFile(filepath.Join(dir, m.FileName()), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := m.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != m.Min || got[1] != m.Max || got[2] != 130 {
		t.Errorf("clamping wrong: %v", got)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	if _, err := LoadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV should error")
	}
	if _, err := LoadCSV(strings.NewReader("abc\n")); err == nil {
		t.Error("garbage should error")
	}
	m := Catalog()[0]
	if _, err := m.Load(t.TempDir()); err == nil {
		t.Error("missing file should error")
	}
}

func TestFileNames(t *testing.T) {
	want := map[string]string{
		"Auto-MPG":        "auto_mpg.csv",
		"Statlog (Heart)": "statlog_heart.csv",
	}
	for name, fn := range want {
		m, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.FileName(); got != fn {
			t.Errorf("FileName(%q) = %q, want %q", name, got, fn)
		}
	}
}

func TestShapeStrings(t *testing.T) {
	for s, want := range map[Shape]string{
		TruncNormal: "trunc-normal", SkewedLogNormal: "skewed-lognormal",
		CeilingMix: "ceiling-mix", Bimodal: "bimodal", Shape(9): "Shape(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}
