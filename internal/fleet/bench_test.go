package fleet

import (
	"testing"

	"ulpdp/internal/fault"
)

// BenchmarkFleetScale runs one complete lossless fleet (journaled
// DP-Box nodes, real agents, sharded collector) per iteration and
// reports end-to-end reports/sec — the fleet-plane companion to the
// collector-only BenchmarkCollectorIngest.
func BenchmarkFleetScale(b *testing.B) {
	const (
		nodes   = 256
		reports = 4
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			Nodes: nodes, Reports: reports, Seed: 42,
			BreakerThreshold: 1 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Violations) != 0 {
			b.Fatalf("violations: %v", res.Violations)
		}
		if res.Aggregate.Reports != nodes*reports {
			b.Fatalf("aggregate %+v", res.Aggregate)
		}
	}
	b.ReportMetric(float64(b.N*nodes*reports)/b.Elapsed().Seconds(), "reports/sec")
}

// BenchmarkFleetScaleChaos is the same fleet under a filthy link —
// the throughput cost of retransmission and dedup rather than the
// clean-path ceiling.
func BenchmarkFleetScaleChaos(b *testing.B) {
	const (
		nodes   = 256
		reports = 4
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{
			Nodes: nodes, Reports: reports, Seed: 42,
			BreakerThreshold: 1 << 20,
			Link:             fault.LinkProfile{Drop: 0.2, Duplicate: 0.1, Reorder: 0.1, MaxDelay: 2},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Violations) != 0 {
			b.Fatalf("violations: %v", res.Violations)
		}
	}
	b.ReportMetric(float64(b.N*nodes*reports)/b.Elapsed().Seconds(), "reports/sec")
}
