// Package fleet is the chaos harness: it stands up N complete nodes
// (journaled DP-Box + ReportAgent) talking to one collector over
// independently seeded lossy links, optionally crash-recovering each
// node on a deterministic schedule, and then checks the two fleet
// invariants end to end:
//
//  1. Exactly-once noising: the set of distinct noised values the
//     collector recorded for a node is bit-identical to the set the
//     node's journal charged — no double-noise, no uncharged release.
//  2. Chaos-transparency: a run under any link chaos profile
//     converges to the same per-node values and the same aggregate
//     as the lossless run with the same seeds, because retransmits
//     replay journaled values and the collector dedups by (node, seq).
//
// Everything is derived from one master seed — URNG streams, link
// schedules, backoff jitter, post-crash reseeds — so a failing grid
// point reproduces exactly.
package fleet

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"ulpdp/internal/collector"
	"ulpdp/internal/dpbox"
	"ulpdp/internal/fault"
	"ulpdp/internal/node"
	"ulpdp/internal/obs"
	"ulpdp/internal/transport"
	"ulpdp/internal/urng"
)

// Config parameterizes one fleet run.
type Config struct {
	// Nodes is the fleet size (default 4).
	Nodes int
	// Reports is the reports each node delivers (default 4).
	Reports int
	// Budget is each node's privacy budget in nats (default 1e6).
	Budget float64
	// Link is the chaos profile applied to every link (zero value =
	// lossless).
	Link fault.LinkProfile
	// Seed is the master seed; every other stream derives from it.
	Seed uint64
	// CrashEvery crash-recovers each node after every k-th report
	// (0 = never). The crash lands after noising — possibly mid-
	// retry, before the ACK — so recovery must replay, not redraw.
	CrashEvery int
	// Deadline bounds the whole run (default 2 minutes).
	Deadline time.Duration
	// BreakerThreshold overrides the collector's breaker threshold
	// (default 64: chaos stalls shouldn't wedge a healthy node, and
	// if a breaker does trip, retries ride out the open window).
	BreakerThreshold int
	// Workers bounds the concurrent node lifecycles (default
	// 8×GOMAXPROCS, capped at Nodes). Node lifecycles are mutually
	// independent and individually deterministic, so the pool size
	// changes scheduling, never results — it is what lets a 10k-node
	// fleet run under the race detector's goroutine budget.
	Workers int
	// Shards overrides the collector's ingest shard count (0 = the
	// collector default). Per-node accounting is bit-identical for
	// any value.
	Shards int
	// Durable runs the collector on a durable checkpoint store
	// (collector.NewDurable), journaling every admission before its
	// ACK. Implied by a non-empty CollectorCrashes schedule or NVMDir.
	Durable bool
	// NVMDir, when non-empty, backs every durable region with the
	// file-backed NVM medium under this directory: the collector's
	// checkpoint store at NVMDir/collector and node i's budget journal
	// at NVMDir/node-<i>. Implies Durable. A run that finds prior
	// state there recovers it — budget ledgers, release windows,
	// collector checkpoints — and each node continues its report loop
	// where the dead process stopped (Result.Resumed), re-delivering
	// its last un-ACKed release first.
	NVMDir string
	// CollectorCrashes schedules store-wide collector crashes: each
	// ascending entry is a cumulative count of checkpoint words
	// written after startup at which the store's NVM power dies.
	// After each crash the harness closes the collector, rebuilds it
	// with collector.Recover, and re-attaches every node's link;
	// un-ACKed reports ride the nodes' retry loops across the restart
	// and land as fresh admissions or absorbed duplicates.
	CollectorCrashes []int
	// CompactEvery overrides the durable collector's checkpoint
	// snapshot cadence (0 = the collector default).
	CompactEvery int
	// Obs, when non-nil, threads one telemetry registry through every
	// layer of the run: each node's DP-Box charges odometer channel i,
	// and the run checks — live, after every report — that the fleet's
	// cumulative spend stays under the certified n·ε envelope.
	Obs *obs.Registry
	// Flight, when non-nil (requires Obs), attaches the per-report
	// flight recorder to every layer: each report's causal span —
	// noised → journal commit → tx attempts → link rx → shard admit →
	// checkpoint commit → ack — is stamped as it happens, keyed by
	// (node, seq). Purely observational: results stay bit-exact.
	Flight *obs.FlightRecorder
	// Burn, when non-nil (requires Obs), attaches the privacy
	// burn-rate alerter to the odometer's charge stream; its latched
	// status surfaces as Result.BurnAlert.
	Burn *obs.BurnAlerter
}

// NodeResult is the per-node evidence the invariants are checked
// against.
type NodeResult struct {
	// Recorded is the collector's distinct (seq, value) map.
	Recorded map[uint64]int64
	// Released is the node journal's (seq, release) map.
	Released map[uint64]dpbox.Release
	// SpendNats is the budget actually consumed.
	SpendNats float64
	// ExpectedSpendNats sums the charges reported at first noising.
	ExpectedSpendNats float64
	// Crashes counts crash-recovery cycles.
	Crashes int
	// Redeliveries counts Resume calls forced by exhausted retry
	// budgets (the at-least-once loop above the agent's own loop).
	Redeliveries int
}

// Result is one completed fleet run.
type Result struct {
	// Nodes holds per-node evidence, indexed by NodeID.
	Nodes []NodeResult
	// Aggregate is the collector's final rollup.
	Aggregate collector.Aggregate
	// Collector is the collector's event counters.
	Collector collector.Stats
	// Link sums every link's event counters.
	Link transport.Stats
	// Violations lists every invariant-1 breach detected in-run.
	Violations []string
	// CollectorRecoveries counts collector crash/recover cycles the
	// run survived.
	CollectorRecoveries int
	// CheckpointWords counts durable checkpoint words written after
	// startup (0 for a volatile collector) — the length of the
	// collector crash schedule's word-write axis.
	CheckpointWords uint64
	// Obs is the final telemetry snapshot (nil unless Config.Obs was
	// set).
	Obs *obs.Snapshot
	// Flight is the flight recorder's final snapshot (nil unless
	// Config.Flight was set), taken after the run quiesced so every
	// ACKed report's span chain is complete.
	Flight *obs.FlightSnapshot
	// Burn is the burn-rate alerter's final state (nil unless
	// Config.Burn was set).
	Burn *obs.BurnSnapshot
	// BurnAlert reports that the burn-rate alerter tripped at any
	// point during the run (latched; false without Config.Burn).
	BurnAlert bool
	// Resumed reports that prior durable state was found under
	// Config.NVMDir and recovered — the collector's checkpoint store
	// or at least one node journal — instead of starting fresh. A
	// resumed run's spends and violations cover only the reports this
	// process delivered; seed-for-seed comparison against a fresh run
	// is meaningless.
	Resumed bool
}

// splitmix64 derives independent sub-seeds from the master seed.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// subSeed derives the seed for stream (kind, node, epoch).
func subSeed(master uint64, kind, nodeID, epoch int) uint64 {
	s := splitmix64(master ^ uint64(kind)<<48 ^ uint64(nodeID)<<16 ^ uint64(epoch))
	if s == 0 {
		s = 1
	}
	return s
}

const (
	seedURNG = iota + 1
	seedLink
	seedJitter
)

// colSupervisor owns the collector across its crash/recover
// lifecycle: it arms the scheduled store power failures, watches for
// the store to die, and on each death closes the dead collector, runs
// collector.Recover, and re-binds every node's link endpoint to the
// recovered instance. Nodes go through attach so the endpoint registry
// survives the swap; un-ACKed reports simply keep retrying and land on
// the recovered dedup state.
type colSupervisor struct {
	cfg     collector.Config
	store   *collector.Store // nil for a volatile collector
	violate func(string, ...any)

	mu         sync.Mutex
	col        *collector.Collector
	ends       map[transport.NodeID]*transport.Endpoint
	schedule   []int
	next       int
	base       uint64 // store words already written at startup (seeding)
	recoveries int
	broken     bool // recovery failed; stop supervising

	stop chan struct{}
	done chan struct{}
}

func newColSupervisor(cfg collector.Config, store *collector.Store, col *collector.Collector, schedule []int, violate func(string, ...any)) *colSupervisor {
	s := &colSupervisor{
		cfg:     cfg,
		store:   store,
		violate: violate,
		col:     col,
		ends:    make(map[transport.NodeID]*transport.Endpoint),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if store != nil {
		s.schedule = schedule
		s.base = store.Writes()
		s.arm()
	}
	return s
}

// arm schedules the next crash point as a countdown from the store's
// current write cursor. A point the write stream already passed (the
// recovery's own compaction may overshoot it) fires on the very next
// word instead of silently never.
func (s *colSupervisor) arm() {
	if s.store == nil || s.next >= len(s.schedule) {
		return
	}
	target := s.base + uint64(s.schedule[s.next])
	delta := 0
	if w := s.store.Writes(); target > w {
		delta = int(target - w)
	}
	s.store.FailAfterWrites(delta)
}

// watch starts the crash watcher. The store dies between two word
// writes at the armed point; the watcher notices within a tick and
// runs the recovery. Detection latency only widens the fail-closed
// window — it never changes what was ACKed, so results stay exact.
func (s *colSupervisor) watch() {
	if s.store == nil || len(s.schedule) == 0 {
		close(s.done)
		return
	}
	go func() {
		defer close(s.done)
		t := time.NewTicker(200 * time.Microsecond)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				if s.store.Dead() {
					s.recover()
				}
			}
		}
	}()
}

// recover replaces the dead collector with one rebuilt from the
// checkpoint store and re-attaches every registered endpoint.
func (s *colSupervisor) recover() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken {
		return
	}
	s.col.Close()
	c, err := collector.Recover(s.cfg, s.store)
	if err != nil {
		// A pure power crash can never corrupt the checkpoint, so this
		// is itself an invariant breach. The closed collector stays for
		// the final in-memory reads.
		s.violate("collector recovery %d: %v", s.recoveries+1, err)
		s.broken = true
		return
	}
	for id, end := range s.ends {
		if aerr := c.Attach(id, end); aerr != nil {
			s.violate("collector recovery: re-attach node %d: %v", id, aerr)
		}
	}
	s.col = c
	s.recoveries++
	s.next++
	s.arm()
}

// attach registers a node's endpoint for the lifetime of the run,
// across collector restarts.
func (s *colSupervisor) attach(id transport.NodeID, end *transport.Endpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ends[id] = end
	return s.col.Attach(id, end)
}

// finish stops the watcher, absorbs a crash that fired during final
// quiescence (e.g. inside a trailing compaction), and hands back the
// live collector for the end-of-run reads.
func (s *colSupervisor) finish() (*collector.Collector, int) {
	close(s.stop)
	<-s.done
	if s.store != nil && s.store.Dead() {
		s.recover()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.col, s.recoveries
}

// frameEvents sums the collector counters that advance only when a
// report frame is processed — the quiesce loop's progress signal.
// Idle-tick timeouts are deliberately excluded: they tick forever.
func (s *colSupervisor) frameEvents() uint64 {
	s.mu.Lock()
	st := s.col.Stats()
	s.mu.Unlock()
	return st.Accepted + st.Duplicates + st.BreakerDrops + st.FailClosed
}

func (s *colSupervisor) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.col.Close()
}

// perReportCapNats is the certified worst-case charge of a single
// report under the fleet's box shape: Configure(1, 0, 16) sets
// ε = 2⁻¹ = 0.5 nat and Mult = 2 caps any one transaction (degraded
// or not) at Mult·ε = 1 nat. After k reports a node's odometer can
// therefore never exceed min(Budget, k·perReportCapNats).
const perReportCapNats = 1.0

// PerReportCapNats exports the certified per-report cap for callers
// sizing burn-rate envelopes (fleetsim) against Config.Nodes·Reports.
const PerReportCapNats = perReportCapNats

// boxConfig is the fleet's common DP-Box shape. All nodes share one
// metrics plane; node i charges odometer channel ch = i so the shared
// registry still decomposes spend per node.
func boxConfig(urngSeed uint64, j *dpbox.Journal, m *dpbox.Metrics, ch int) dpbox.Config {
	return dpbox.Config{
		Bu: 12, By: 10, Mult: 2,
		Multipliers: []float64{1.25, 1.5},
		Source:      urng.NewTaus88(urngSeed),
		Journal:     j,
		Obs:         m,
		ObsChannel:  ch,
	}
}

// reading is the deterministic sensor trace: node i's r-th reading.
func reading(i, r int) int64 { return int64((3*i + 5*r) % 17) }

// Run executes one fleet run and gathers the evidence.
func Run(cfg Config) (Result, error) {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.Reports <= 0 {
		cfg.Reports = 4
	}
	if cfg.Budget <= 0 {
		cfg.Budget = 1e6
	}
	if cfg.Deadline <= 0 {
		cfg.Deadline = 2 * time.Minute
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 64
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.Deadline)
	defer cancel()

	// One telemetry plane per layer, all over the same registry. The
	// box plane's odometer has one channel per node.
	var (
		boxM  *dpbox.Metrics
		linkM *transport.Metrics
		nodeM *node.Metrics
		colM  *collector.Metrics
	)
	if cfg.Obs != nil {
		boxM = dpbox.NewMetrics(cfg.Obs, cfg.Nodes)
		linkM = transport.NewMetrics(cfg.Obs)
		nodeM = node.NewMetrics(cfg.Obs)
		colM = collector.NewMetrics(cfg.Obs)
		// The flight/burn instrument names are part of the fleet metric
		// schema whether or not a recorder/alerter is attached, so the
		// golden schema test pins them unconditionally.
		flightM := obs.NewFlightMetrics(cfg.Obs)
		burnM := obs.NewBurnMetrics(cfg.Obs)
		if cfg.Flight != nil {
			cfg.Flight.SetMetrics(flightM)
			boxM.Flight = cfg.Flight
			linkM.Flight = cfg.Flight
			nodeM.Flight = cfg.Flight
			colM.Flight = cfg.Flight
		}
		if cfg.Burn != nil {
			cfg.Burn.Bind(burnM, boxM.Trace)
			boxM.Odometer.SetBurn(cfg.Burn)
		}
	}

	res := Result{Nodes: make([]NodeResult, cfg.Nodes)}
	var (
		wg    sync.WaitGroup
		resMu sync.Mutex // guards Violations only; see runNode
	)
	violate := func(format string, args ...any) {
		resMu.Lock()
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
		resMu.Unlock()
	}
	markResumed := func() {
		resMu.Lock()
		res.Resumed = true
		resMu.Unlock()
	}

	colCfg := collector.Config{
		BreakerThreshold: cfg.BreakerThreshold,
		Shards:           cfg.Shards,
		CompactEvery:     cfg.CompactEvery,
		Obs:              colM,
	}
	var sup *colSupervisor
	if cfg.NVMDir != "" || cfg.Durable || len(cfg.CollectorCrashes) > 0 {
		var (
			store *collector.Store
			err   error
		)
		if cfg.NVMDir != "" {
			store, err = collector.OpenStore(filepath.Join(cfg.NVMDir, "collector"), cfg.Shards)
		} else {
			store = collector.NewStore(cfg.Shards)
		}
		if err != nil {
			return Result{}, err
		}
		defer store.Close()
		var c *collector.Collector
		if store.Empty() {
			c, err = collector.NewDurable(colCfg, store)
		} else {
			// A prior process's checkpoints survive on disk: this run
			// is a restart, not a fresh fleet.
			res.Resumed = true
			c, err = collector.Recover(colCfg, store)
		}
		if err != nil {
			return Result{}, err
		}
		sup = newColSupervisor(colCfg, store, c, cfg.CollectorCrashes, violate)
	} else {
		sup = newColSupervisor(colCfg, nil, collector.New(colCfg), nil, violate)
	}
	defer sup.close()
	sup.watch()

	links := make([]*transport.Link, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		fp := fault.NewPlane()
		fp.SetPacketFault(fault.LossyLink(subSeed(cfg.Seed, seedLink, i, 0), cfg.Link))
		links[i] = transport.NewLink(transport.LinkConfig{Plane: fp, Obs: linkM})
	}

	runNode := func(i int) {
		nr := &NodeResult{}
		// Each lifecycle writes its own distinct slice index, so no
		// mutex is needed here — only the shared Violations append is.
		defer func() { res.Nodes[i] = *nr }()

		// Attach lazily, as the lifecycle starts, so nodes queued
		// behind the worker pool don't sit on the collector accruing
		// idle breaker ticks before their first report. The supervisor
		// keeps the binding across collector restarts.
		if err := sup.attach(transport.NodeID(i), links[i].CollectorEnd()); err != nil {
			violate("node %d: %v", i, err)
			return
		}

		var (
			j   *dpbox.Journal
			box *dpbox.DPBox
			err error
		)
		if cfg.NVMDir != "" {
			j, err = dpbox.OpenJournal(filepath.Join(cfg.NVMDir, fmt.Sprintf("node-%04d", i)))
			if err != nil {
				violate("node %d: %v", i, err)
				return
			}
			defer j.Close()
		} else {
			j = dpbox.NewJournal()
		}
		if j.Writes() > 0 {
			// The journal holds a prior process's ledger: recover it
			// and continue the numbering instead of re-initializing
			// (which would re-noise already-charged sequence numbers).
			markResumed()
			box, err = dpbox.Recover(boxConfig(subSeed(cfg.Seed, seedURNG, i, 0), nil, boxM, i), j)
			if err != nil {
				violate("node %d: recover from %s: %v", i, cfg.NVMDir, err)
				return
			}
		} else {
			box, err = dpbox.New(boxConfig(subSeed(cfg.Seed, seedURNG, i, 0), j, boxM, i))
			if err != nil {
				violate("node %d: %v", i, err)
				return
			}
			if err := box.Initialize(cfg.Budget, 0); err != nil {
				violate("node %d: %v", i, err)
				return
			}
		}
		if err := box.Configure(1, 0, 16); err != nil {
			violate("node %d: %v", i, err)
			return
		}
		// Spend is accounted from this process's baseline: on a fresh
		// run that is cfg.Budget; on a resumed run the prior spend is
		// already durable and belongs to the dead process's run.
		budget0 := box.BudgetRemaining()
		agentCfg := node.AgentConfig{
			ID:          transport.NodeID(i),
			MaxAttempts: 64,
			JitterSeed:  subSeed(cfg.Seed, seedJitter, i, 0),
			Obs:         nodeM,
		}
		agent := node.NewReportAgent(box, links[i].NodeEnd(), agentCfg)

		start := int(agent.NextSeq())
		if start > 0 {
			// The last journaled release may have died un-ACKed;
			// re-deliver it before new reports. Re-ACKing an already
			// recorded sequence is harmless (collector dedups), and a
			// recovered collector re-ACKs it bit-exactly.
			for agent.Resume(ctx) != nil {
				if ctx.Err() != nil {
					violate("node %d seq %d: resumed release undelivered at deadline", i, start-1)
					return
				}
				nr.Redeliveries++
			}
		}

		for r := start; r < cfg.Reports; r++ {
			out, err := agent.Report(ctx, reading(i, r))
			if err != nil {
				if ctx.Err() != nil {
					violate("node %d seq %d: %v", i, r, err)
					return
				}
				if _, ok := box.ReleaseFor(uint64(r)); !ok {
					// Nothing journaled: the noising itself (not
					// just delivery) failed.
					violate("node %d seq %d: %v", i, r, err)
					return
				}
				// Mid-retry abandonment: the (seq, value) binding
				// is durable; delivery resumes below, possibly on
				// the post-crash recovered box.
			}
			if out.Replayed {
				violate("node %d seq %d: first noising was a replay", i, out.Seq)
			}
			nr.ExpectedSpendNats += out.Charged
			delivered := err == nil

			// Live odometer bound: after r+1 reports, node i's
			// cumulative spend must sit under the certified
			// per-report envelope (crash replays and cache serves
			// charge nothing, so the bound holds across chaos).
			if boxM != nil {
				certified := math.Min(cfg.Budget, float64(r+1)*perReportCapNats)
				if spent := boxM.Odometer.SpentNats(i); spent > certified+1e-9 {
					violate("node %d: odometer %g nats after %d reports exceeds certified %g", i, spent, r+1, certified)
				}
			}

			// Deterministic crash schedule: after noising report
			// r (delivered or not), so recovery sometimes lands
			// mid-retry with an un-ACKed journaled release.
			if cfg.CrashEvery > 0 && (r+1)%cfg.CrashEvery == 0 {
				j.Kill()
				nr.Crashes++
				recovered, rerr := dpbox.Recover(boxConfig(subSeed(cfg.Seed, seedURNG, i, nr.Crashes), nil, boxM, i), j)
				if rerr != nil {
					violate("node %d crash %d: %v", i, nr.Crashes, rerr)
					return
				}
				if cerr := recovered.Configure(1, 0, 16); cerr != nil {
					violate("node %d crash %d: %v", i, nr.Crashes, cerr)
					return
				}
				box = recovered
				agent = node.NewReportAgent(box, links[i].NodeEnd(), agentCfg)
				if agent.NextSeq() != uint64(r)+1 {
					violate("node %d crash %d: NextSeq %d, want %d", i, nr.Crashes, agent.NextSeq(), r+1)
				}
			}

			for !delivered {
				if ctx.Err() != nil {
					violate("node %d seq %d: undelivered at deadline", i, r)
					return
				}
				nr.Redeliveries++
				if err := agent.Resume(ctx); err == nil {
					delivered = true
				}
			}
		}

		nr.Released = releasesOf(box)
		nr.SpendNats = budget0 - box.BudgetRemaining()

		// Crash-consistency cross-check: replaying the journal
		// must agree with the live ledger.
		st, err := j.Replay()
		if err != nil {
			violate("node %d: journal replay: %v", i, err)
			return
		}
		if live := int64(math.Round(box.BudgetRemaining() * 16)); st.Units != live {
			violate("node %d: journal units %d != live units %d", i, st.Units, live)
		}

		// Odometer-vs-ledger cross-check: both sum the same
		// charges (exact multiples of 1/16 nat), so they must
		// agree to the micronat.
		if boxM != nil {
			if got, want := boxM.Odometer.SpentMicro(i), obs.MicroNats(nr.SpendNats); got != want {
				violate("node %d: odometer %d µnat != ledger spend %d µnat", i, got, want)
			}
		}
	}

	// Bounded worker pool: goroutine-per-node tops out around the race
	// detector's goroutine budget (and thrashes the scheduler) long
	// before the collector saturates; a fixed pool runs 10k-node
	// fleets with a few dozen goroutines.
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8 * runtime.GOMAXPROCS(0)
	}
	if workers > cfg.Nodes {
		workers = cfg.Nodes
	}
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runNode(i)
			}
		}()
	}
	for i := 0; i < cfg.Nodes; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	// Aggregate odometer bound: the whole fleet's spend must sit under
	// n · min(Budget, Reports·cap) — the paper's Σ charges ≤ n·ε
	// envelope, checked on the telemetry plane rather than the ledgers.
	if boxM != nil {
		fleetCap := float64(cfg.Nodes) * math.Min(cfg.Budget, float64(cfg.Reports)*perReportCapNats)
		if tot := boxM.Odometer.TotalNats(); tot > fleetCap+1e-9 {
			res.Violations = append(res.Violations, fmt.Sprintf("fleet: aggregate odometer %g nats exceeds certified n·ε bound %g", tot, fleetCap))
		}
	}

	// Quiesce before the final recovery check and reads: every report
	// is ACKed, but stale duplicate frames can still be in flight (or
	// held back for reordering), and processing them after the final
	// snapshot would make recover/replay counters and span chains
	// timing-dependent. Wait for the uplinks to drain and the
	// collector's frame-driven counters to stop moving, so identical
	// seeds yield identical final snapshots.
	quiesce(ctx, links, sup)

	// Final reads go through the supervisor: the collector in place now
	// may be the n-th recovered instance, and its recovered state must
	// carry everything any of its predecessors ever ACKed.
	col, recoveries := sup.finish()
	res.CollectorRecoveries = recoveries
	if sup.store != nil {
		res.CheckpointWords = sup.store.Writes() - sup.base
	}
	res.Aggregate = col.Aggregate()
	res.Collector = col.Stats()
	for _, l := range links {
		s := l.Stats()
		res.Link.Sent += s.Sent
		res.Link.Delivered += s.Delivered
		res.Link.Dropped += s.Dropped
		res.Link.Duplicated += s.Duplicated
		res.Link.Reordered += s.Reordered
		res.Link.CorruptedInFlight += s.CorruptedInFlight
		res.Link.Overflow += s.Overflow
		res.Link.RejectedCorrupt += s.RejectedCorrupt
	}
	for i := 0; i < cfg.Nodes; i++ {
		res.Nodes[i].Recorded = col.Values(transport.NodeID(i))
	}
	res.Violations = append(res.Violations, CheckExactlyOnce(cfg, res)...)
	if cfg.Obs != nil {
		// Storage-engine introspection rides the same schema whether or
		// not the collector is durable (all-zero gauges when volatile),
		// so the golden metric names stay run-shape independent.
		nst := col.NVMStats()
		cfg.Obs.Gauge("nvm.durable_words").Set(int64(nst.Words))
		cfg.Obs.Gauge("nvm.banks").Set(int64(nst.Banks))
		cfg.Obs.Gauge("nvm.compactions").Set(int64(nst.Compactions))
		snap := cfg.Obs.Snapshot()
		res.Obs = &snap
	}
	res.Flight = cfg.Flight.Snapshot()
	if cfg.Burn != nil {
		res.Burn = cfg.Burn.Snapshot()
		res.BurnAlert = res.Burn.Tripped
	}
	return res, nil
}

// quiesce polls until the air is silent — no frames queued or held on
// any uplink — and the collector's frame-driven counters (accepted,
// duplicates, breaker drops, fail-closed; idle-tick timeouts excluded,
// they never stop) hold still for a few consecutive samples. Bounded
// by the run deadline and a small grace window: quiescence is a
// determinism aid, not a liveness requirement.
func quiesce(ctx context.Context, links []*transport.Link, sup *colSupervisor) {
	deadline := time.Now().Add(100 * time.Millisecond)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	prev := sup.frameEvents()
	settle := 0
	for time.Now().Before(deadline) && ctx.Err() == nil {
		pending := 0
		for _, l := range links {
			pending += l.CollectorEnd().Pending()
		}
		cur := sup.frameEvents()
		if pending == 0 && cur == prev {
			settle++
			if settle >= 3 {
				return
			}
		} else {
			settle = 0
		}
		prev = cur
		time.Sleep(time.Millisecond)
	}
}

// releasesOf copies a box's in-memory release cache.
func releasesOf(b *dpbox.DPBox) map[uint64]dpbox.Release {
	out := make(map[uint64]dpbox.Release)
	for s, r := range b.Releases() {
		out[s] = r
	}
	return out
}

// CheckExactlyOnce verifies invariant 1 on a completed run: per node,
// the collector's distinct values are exactly the journal's charged
// releases, one per sequence number, with spend matching the charges.
func CheckExactlyOnce(cfg Config, res Result) []string {
	var v []string
	for i, nr := range res.Nodes {
		if len(nr.Recorded) != cfg.Reports {
			v = append(v, fmt.Sprintf("node %d: collector recorded %d distinct reports, want %d", i, len(nr.Recorded), cfg.Reports))
		}
		if len(nr.Released) != cfg.Reports {
			v = append(v, fmt.Sprintf("node %d: journal holds %d releases, want %d", i, len(nr.Released), cfg.Reports))
		}
		for seq, val := range nr.Recorded {
			rel, ok := nr.Released[seq]
			if !ok {
				v = append(v, fmt.Sprintf("node %d seq %d: collector has a value the journal never charged", i, seq))
				continue
			}
			if rel.Value != val {
				v = append(v, fmt.Sprintf("node %d seq %d: collector %d != journal %d", i, seq, val, rel.Value))
			}
		}
		if nr.SpendNats != nr.ExpectedSpendNats {
			v = append(v, fmt.Sprintf("node %d: spent %g nats, first-noising charges sum to %g", i, nr.SpendNats, nr.ExpectedSpendNats))
		}
	}
	return v
}

// CompareRuns verifies invariant 2: two runs (chaos vs lossless, or
// any two profiles) with the same master seed must agree bit-exactly
// on every node's journaled releases, the collector's recorded
// values, and the aggregate.
func CompareRuns(a, b Result) []string {
	var v []string
	if len(a.Nodes) != len(b.Nodes) {
		return []string{fmt.Sprintf("node counts differ: %d vs %d", len(a.Nodes), len(b.Nodes))}
	}
	for i := range a.Nodes {
		an, bn := a.Nodes[i], b.Nodes[i]
		if len(an.Released) != len(bn.Released) {
			v = append(v, fmt.Sprintf("node %d: release counts differ: %d vs %d", i, len(an.Released), len(bn.Released)))
		}
		for seq, ar := range an.Released {
			if br, ok := bn.Released[seq]; !ok || ar.Value != br.Value {
				v = append(v, fmt.Sprintf("node %d seq %d: journaled values differ", i, seq))
			}
		}
		if len(an.Recorded) != len(bn.Recorded) {
			v = append(v, fmt.Sprintf("node %d: recorded counts differ: %d vs %d", i, len(an.Recorded), len(bn.Recorded)))
		}
		for seq, av := range an.Recorded {
			if bv, ok := bn.Recorded[seq]; !ok || av != bv {
				v = append(v, fmt.Sprintf("node %d seq %d: recorded values differ", i, seq))
			}
		}
		if an.SpendNats != bn.SpendNats {
			v = append(v, fmt.Sprintf("node %d: spends differ: %g vs %g nats", i, an.SpendNats, bn.SpendNats))
		}
	}
	if a.Aggregate.Reports != b.Aggregate.Reports || a.Aggregate.Sum != b.Aggregate.Sum {
		v = append(v, fmt.Sprintf("aggregates differ: %+v vs %+v", a.Aggregate, b.Aggregate))
	}
	return v
}
