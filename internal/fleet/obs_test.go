package fleet

import (
	"encoding/json"
	"reflect"
	"testing"

	"ulpdp/internal/fault"
	"ulpdp/internal/obs"
)

// goldenNames pins the fleet-wide metric name schema. Renaming or
// removing an instrument is a breaking change for any dashboard or
// log pipeline scraping the JSON snapshot — update this list
// deliberately, and docs/observability.md with it.
var goldenNames = []string{
	"budget.charge_bands",
	"budget.charge_units",
	"budget.journal.commits",
	"budget.journal.intents",
	"budget.journal.recovers",
	"budget.journal.replenishes",
	"budget.odometer",
	"budget.replenishes",
	"burn.alert_active",
	"burn.alerts",
	"burn.fast_burn_milli",
	"burn.slow_burn_milli",
	"collector.accepted",
	"collector.backpressure",
	"collector.breaker.closed",
	"collector.breaker.half_opened",
	"collector.breaker.opened",
	"collector.breaker.reopened",
	"collector.breaker_drops",
	"collector.checkpoint_bytes",
	"collector.compactions",
	"collector.duplicates",
	"collector.fail_closed",
	"collector.queue_depth",
	"collector.recover_reports_replayed",
	"collector.recover_shards",
	"collector.timeouts",
	"dpbox.cache_replays",
	"dpbox.degraded",
	"dpbox.log_evals",
	"dpbox.power_losses",
	"dpbox.resamples",
	"dpbox.resamples_per_txn",
	"dpbox.seq_replays",
	"dpbox.transactions",
	"dpbox.urng_draws",
	"flight.spans_completed",
	"flight.spans_dropped",
	"flight.spans_open",
	"flight.stage_events",
	"node.abandoned",
	"node.backoff_ns",
	"node.report_latency_us",
	"node.reports",
	"node.resumes",
	"node.retransmits",
	"nvm.banks",
	"nvm.compactions",
	"nvm.durable_words",
	"trace",
	"transport.corrupted",
	"transport.delivered",
	"transport.dropped",
	"transport.duplicated",
	"transport.overflow",
	"transport.rejected_corrupt",
	"transport.reordered",
	"transport.sent",
	"urng.battery_fails",
	"urng.battery_runs",
	"urng.battery_worst_z_milli",
}

// TestFleetMetricSchemaGolden runs a small fleet with the telemetry
// plane attached and pins the registered metric names and the JSON
// snapshot shape.
func TestFleetMetricSchemaGolden(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := Run(Config{Nodes: 3, Reports: 3, Seed: gridSeed(t), Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}

	if got := reg.Names(); !reflect.DeepEqual(got, goldenNames) {
		t.Fatalf("metric schema drifted:\n got %q\nwant %q", got, goldenNames)
	}

	if res.Obs == nil {
		t.Fatal("Result.Obs is nil with Config.Obs set")
	}
	raw, err := json.Marshal(res.Obs)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]json.RawMessage
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("snapshot is not a JSON object: %v", err)
	}
	for _, key := range []string{"counters", "gauges", "histograms", "odometers", "traces"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("snapshot JSON missing %q section", key)
		}
	}

	// Cross-layer sanity on the snapshot itself.
	if got := res.Obs.Counters["dpbox.transactions"]; got != 9 {
		t.Errorf("dpbox.transactions = %d, want 9", got)
	}
	if got := res.Obs.Counters["node.reports"]; got != 9 {
		t.Errorf("node.reports = %d, want 9", got)
	}
	if got := res.Obs.Counters["collector.accepted"]; got != 9 {
		t.Errorf("collector.accepted = %d, want 9", got)
	}
	odo, ok := res.Obs.Odometers["budget.odometer"]
	if !ok {
		t.Fatal("snapshot missing budget.odometer")
	}
	if len(odo.ChannelMicroNats) != 3 {
		t.Fatalf("odometer has %d channels, want 3", len(odo.ChannelMicroNats))
	}
	if odo.Charges != 9 {
		t.Errorf("odometer charges = %d, want 9", odo.Charges)
	}
	var sum int64
	for _, ch := range odo.ChannelMicroNats {
		if ch <= 0 {
			t.Errorf("odometer channel spend %d, want > 0", ch)
		}
		sum += ch
	}
	if sum != odo.TotalMicroNats {
		t.Errorf("odometer channel sum %d != total %d", sum, odo.TotalMicroNats)
	}
}

// TestFleetChaosOdometer runs the filthiest grid cell with crashes
// and asserts the aggregate odometer stayed inside the certified
// envelope (any breach lands in Violations) while still accounting
// every charge: Σ per-channel spend must equal Σ per-node ledger
// spend to the micronat, across crash-recovery and retransmissions.
func TestFleetChaosOdometer(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{
		Nodes:      4,
		Reports:    6,
		Seed:       gridSeed(t),
		CrashEvery: 2,
		Link:       fault.LinkProfile{Drop: 0.3, Duplicate: 0.2, Reorder: 0.2, Corrupt: 0.1, MaxDelay: 3},
		Obs:        reg,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}

	odo := res.Obs.Odometers["budget.odometer"]
	var ledger int64
	for _, nr := range res.Nodes {
		ledger += obs.MicroNats(nr.SpendNats)
	}
	if odo.TotalMicroNats != ledger {
		t.Fatalf("odometer total %d µnat != ledger total %d µnat", odo.TotalMicroNats, ledger)
	}
	// 4 nodes × 6 reports × 1 nat per-report cap.
	if certified := obs.MicroNats(float64(cfg.Nodes*cfg.Reports) * perReportCapNats); odo.TotalMicroNats > certified {
		t.Fatalf("odometer total %d µnat exceeds certified %d µnat", odo.TotalMicroNats, certified)
	}
	// Crash replays charge nothing: exactly one charge per report.
	if want := uint64(cfg.Nodes * cfg.Reports); odo.Charges != want {
		t.Fatalf("odometer charges = %d, want %d", odo.Charges, want)
	}
	if got := res.Obs.Counters["budget.journal.recovers"]; got == 0 {
		t.Error("crashes happened but budget.journal.recovers is 0")
	}
	if got := res.Obs.Counters["node.resumes"]; res.Obs.Counters["node.abandoned"] > 0 && got == 0 {
		t.Error("reports were abandoned but node.resumes is 0")
	}
}
