package fleet

import (
	"encoding/json"
	"testing"

	"ulpdp/internal/fault"
	"ulpdp/internal/obs"
)

// chaosFlightConfig is the grid cell the flight-recorder tests run:
// node crashes, collector crashes, and a filthy link, so span chains
// cross every recovery path.
func chaosFlightConfig(seed uint64) Config {
	return Config{
		Nodes:            4,
		Reports:          6,
		Seed:             seed,
		CrashEvery:       2,
		CollectorCrashes: []int{100},
		Link:             fault.LinkProfile{Drop: 0.3, Duplicate: 0.2, Reorder: 0.2, Corrupt: 0.1, MaxDelay: 3},
	}
}

// TestFlightRecorderTransparency pins the recorder's observational
// purity: the same chaos cell with the full telemetry plane, flight
// recorder, and burn alerter attached must produce bit-identical
// journals, recorded values, and aggregate as the bare run — and
// every ACKed report must carry a complete, causally ordered span
// chain.
func TestFlightRecorderTransparency(t *testing.T) {
	seed := gridSeed(t)

	bare, err := Run(chaosFlightConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	if len(bare.Violations) != 0 {
		t.Fatalf("bare run violations: %v", bare.Violations)
	}

	cfg := chaosFlightConfig(seed)
	cfg.Obs = obs.NewRegistry()
	cfg.Flight = obs.NewFlightRecorder(cfg.Nodes * cfg.Reports * 2)
	burn, err := obs.NewBurnAlerter(obs.BurnConfig{
		EnvelopeMicroNats: obs.MicroNats(float64(cfg.Nodes*cfg.Reports) * PerReportCapNats),
		HorizonCharges:    uint64(cfg.Nodes * cfg.Reports),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Burn = burn
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.Violations) != 0 {
		t.Fatalf("traced run violations: %v", traced.Violations)
	}

	if diffs := CompareRuns(bare, traced); len(diffs) != 0 {
		t.Fatalf("flight recorder changed results:\n%v", diffs)
	}

	if traced.Flight == nil {
		t.Fatal("Result.Flight is nil with Config.Flight set")
	}
	if traced.Flight.Dropped != 0 {
		t.Fatalf("recorder dropped %d spans with capacity %d", traced.Flight.Dropped, traced.Flight.Capacity)
	}
	if got := obs.ValidateFlight(traced.Flight, true, true); len(got) != 0 {
		t.Fatalf("span-chain violations:\n%v", got)
	}
	acked := 0
	for _, v := range traced.Flight.Spans {
		if v.Acked() {
			acked++
		}
	}
	if want := cfg.Nodes * cfg.Reports; acked != want {
		t.Fatalf("acked spans = %d, want %d", acked, want)
	}
	if traced.Obs.Counters["flight.spans_completed"] != uint64(acked) {
		t.Fatalf("flight.spans_completed = %d, want %d", traced.Obs.Counters["flight.spans_completed"], acked)
	}
}

// TestFleetBurnAlertTripsBeforeEnvelope drives a synthetic overspend
// fault: the alerter is configured as if the certified n·ε envelope
// were planned to last 1000× more charges than the run issues, so the
// fleet's real charge stream (≥ 1/16 nat each) burns three orders of
// magnitude above plan. The alert must latch before the cumulative
// spend reaches the envelope — the operator hears about the overspend
// while there is still budget left to save.
func TestFleetBurnAlertTripsBeforeEnvelope(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Nodes: 4, Reports: 6, Seed: gridSeed(t), Obs: reg}
	envelope := obs.MicroNats(float64(cfg.Nodes*cfg.Reports) * PerReportCapNats)
	burn, err := obs.NewBurnAlerter(obs.BurnConfig{
		EnvelopeMicroNats: envelope,
		HorizonCharges:    uint64(cfg.Nodes*cfg.Reports) * 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Burn = burn

	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if !res.BurnAlert {
		t.Fatal("synthetic overspend did not trip BurnAlert")
	}
	if res.Burn == nil || !res.Burn.Tripped {
		t.Fatalf("Burn snapshot: %+v", res.Burn)
	}
	if res.Burn.TrippedAtMicroNats >= envelope {
		t.Fatalf("alert tripped at %d µnat — at/after the %d µnat envelope", res.Burn.TrippedAtMicroNats, envelope)
	}
	if res.Obs.Counters["burn.alerts"] == 0 {
		t.Error("burn.alerts counter is 0 despite a tripped alert")
	}
	// The alert event must be visible in the shared trace ring.
	found := false
	for _, e := range res.Obs.Traces["trace"].Events {
		if e.Kind == obs.EvBurnAlert {
			found = true
			break
		}
	}
	if !found {
		t.Error("no burn.alert event in the trace ring")
	}
}

// TestFleetBurnAlertQuietOnPlan is the alerting dual: an alerter whose
// plan matches the certified per-report cap must stay quiet on a
// healthy run (charges never exceed 1 nat each).
func TestFleetBurnAlertQuietOnPlan(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Nodes: 4, Reports: 6, Seed: gridSeed(t), Obs: reg}
	burn, err := obs.NewBurnAlerter(obs.BurnConfig{
		EnvelopeMicroNats: obs.MicroNats(float64(cfg.Nodes*cfg.Reports) * PerReportCapNats),
		HorizonCharges:    uint64(cfg.Nodes * cfg.Reports),
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Burn = burn
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BurnAlert {
		t.Fatalf("healthy run tripped the burn alert: %+v", res.Burn)
	}
}

// TestFleetPerfettoGolden pins the exported trace shape: valid JSON,
// monotone timestamps per track, and a complete span chain for every
// ACKed report, across node and collector crashes.
func TestFleetPerfettoGolden(t *testing.T) {
	cfg := chaosFlightConfig(gridSeed(t))
	cfg.Obs = obs.NewRegistry()
	cfg.Flight = obs.NewFlightRecorder(cfg.Nodes * cfg.Reports * 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}

	var alerts []obs.Event
	for _, e := range res.Obs.Traces["trace"].Events {
		if e.Kind == obs.EvBurnAlert {
			alerts = append(alerts, e)
		}
	}
	data, err := obs.PerfettoJSON(res.Flight, alerts)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("exported trace is not valid JSON")
	}
	if got := obs.ValidatePerfettoJSON(data); len(got) != 0 {
		t.Fatalf("trace shape violations:\n%v", got)
	}
	if got := obs.ValidateFlight(res.Flight, true, true); len(got) != 0 {
		t.Fatalf("span-chain violations:\n%v", got)
	}

	// The attribution report must cover every ACKed span end to end.
	rows := obs.Attribute(res.Flight)
	var total uint64
	for _, r := range rows {
		if r.Transition == "noised→ack (total)" {
			total += r.Count
		}
	}
	if want := uint64(cfg.Nodes * cfg.Reports); total != want {
		t.Fatalf("attribution covers %d spans, want %d", total, want)
	}
}
