package fleet

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"ulpdp/internal/fault"
	"ulpdp/internal/obs"
)

// gridSeed is the chaos grid's master seed; CI sweeps it through the
// FLEET_SEED environment variable.
func gridSeed(t *testing.T) uint64 {
	t.Helper()
	s := os.Getenv("FLEET_SEED")
	if s == "" {
		return 0xF1EE7
	}
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("bad FLEET_SEED %q: %v", s, err)
	}
	return v
}

// profiles is the chaos grid's link axis.
var profiles = []struct {
	name string
	prof fault.LinkProfile
}{
	{"lossless", fault.LinkProfile{}},
	{"drop", fault.LinkProfile{Drop: 0.35}},
	{"dup-reorder", fault.LinkProfile{Duplicate: 0.3, Reorder: 0.25, MaxDelay: 3}},
	{"corrupt", fault.LinkProfile{Corrupt: 0.2}},
	{"filthy", fault.LinkProfile{Drop: 0.3, Duplicate: 0.2, Reorder: 0.2, Corrupt: 0.1, MaxDelay: 3}},
}

// TestChaosGrid sweeps link-profile x crash-schedule and asserts both
// fleet invariants at every grid point: exactly-once accounting
// in-run, and bit-exact agreement with the lossless same-seed
// baseline.
func TestChaosGrid(t *testing.T) {
	base := Config{Nodes: 6, Reports: 6, Seed: gridSeed(t)}

	for _, crashEvery := range []int{0, 2} {
		cfg := base
		cfg.CrashEvery = crashEvery
		baseline, err := Run(cfg)
		if err != nil {
			t.Fatalf("crash=%d baseline: %v", crashEvery, err)
		}
		if len(baseline.Violations) != 0 {
			t.Fatalf("crash=%d baseline violations: %v", crashEvery, baseline.Violations)
		}
		for _, p := range profiles[1:] {
			p := p
			t.Run(fmt.Sprintf("%s/crash=%d", p.name, crashEvery), func(t *testing.T) {
				t.Parallel()
				cfg := base
				cfg.CrashEvery = crashEvery
				cfg.Link = p.prof
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				// Invariant 1: exactly-once accounting under chaos.
				if len(res.Violations) != 0 {
					t.Fatalf("violations: %v", res.Violations)
				}
				// Invariant 2: the chaos run converges to the
				// lossless baseline bit-exactly.
				if diffs := CompareRuns(res, baseline); len(diffs) != 0 {
					t.Fatalf("diverged from lossless baseline: %v", diffs)
				}
				// The chaos actually did something.
				st := res.Link
				if p.prof.Drop > 0 && st.Dropped == 0 {
					t.Error("profile drops but link dropped nothing")
				}
				if p.prof.Duplicate > 0 && st.Duplicated == 0 {
					t.Error("profile duplicates but link duplicated nothing")
				}
				if p.prof.Corrupt > 0 && st.CorruptedInFlight == 0 {
					t.Error("profile corrupts but link corrupted nothing")
				}
			})
		}
	}
}

// TestFleetScale10k is the sharded datapath's scale point: ten
// thousand complete nodes — journaled DP-Box, real agent, own lossy
// link — through one collector, under the race detector, with every
// fleet invariant still held: exactly-once accounting, bit-exact
// chaos-transparency against the lossless same-seed baseline, and the
// live n·ε odometer envelope. The goroutine-per-node fleet could not
// even start this under -race (~8k goroutine budget); the worker pool
// plus event-driven ingest make it routine.
func TestFleetScale10k(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node scale point is not a -short test")
	}
	const nodes = 10000
	base := Config{
		Nodes:            nodes,
		Reports:          2,
		Seed:             gridSeed(t),
		Workers:          256,
		BreakerThreshold: 1 << 20,
		Deadline:         10 * time.Minute,
	}

	baseline, err := Run(base)
	if err != nil {
		t.Fatalf("lossless baseline: %v", err)
	}
	if len(baseline.Violations) != 0 {
		t.Fatalf("baseline violations (showing up to 5): %v", head(baseline.Violations, 5))
	}
	if baseline.Aggregate.Reports != nodes*base.Reports {
		t.Fatalf("baseline aggregate %+v, want %d reports", baseline.Aggregate, nodes*base.Reports)
	}

	cfg := base
	cfg.Link = fault.LinkProfile{Drop: 0.1, Duplicate: 0.05, Reorder: 0.1, MaxDelay: 2}
	cfg.Obs = obs.NewRegistry() // live odometer envelope on the chaos leg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations (showing up to 5): %v", head(res.Violations, 5))
	}
	if diffs := CompareRuns(res, baseline); len(diffs) != 0 {
		t.Fatalf("chaos run diverged from lossless baseline: %v", head(diffs, 5))
	}
	if res.Link.Dropped == 0 || res.Link.Duplicated == 0 {
		t.Fatalf("chaos profile did nothing: %+v", res.Link)
	}
}

func head(v []string, n int) []string {
	if len(v) > n {
		return v[:n]
	}
	return v
}

// TestCrashScheduleChargesOnce pins the crash axis specifically: with
// a crash after every report, every value must still be charged
// exactly once and delivered exactly once.
func TestCrashScheduleChargesOnce(t *testing.T) {
	res, err := Run(Config{
		Nodes: 4, Reports: 5, Seed: 77, CrashEvery: 1,
		Link: fault.LinkProfile{Drop: 0.4, Duplicate: 0.2, Reorder: 0.15, MaxDelay: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	for i, nr := range res.Nodes {
		if nr.Crashes != 5 {
			t.Errorf("node %d crashed %d times, want 5", i, nr.Crashes)
		}
	}
}

// TestCollectorCrashGrid is the collector-restart axis of the chaos
// grid: a durable collector is crashed at checkpoint word-write
// offsets sweeping its entire write stream — inside admission intents,
// records, commits, and compaction snapshots alike — crossed with
// lossy link profiles and node crash schedules. Every grid point must
// recover to bit-exact exactly-once accounting: no double-counted
// report, no lost ACKed report, convergence to the lossless same-seed
// baseline, and the live Σcharges ≤ n·ε odometer envelope throughout.
//
// The fleet is kept minimal (2 nodes × 2 reports, 1 shard, snapshot
// every 3 admissions) so the word axis stays small enough to sweep
// exhaustively; TestCheckpointCrashSweep in internal/collector is the
// journal-level word-exact counterpart on a larger scenario.
func TestCollectorCrashGrid(t *testing.T) {
	base := Config{
		Nodes: 2, Reports: 2, Seed: gridSeed(t),
		Shards: 1, CompactEvery: 3, BreakerThreshold: 1 << 20,
	}
	stride := 1
	if testing.Short() {
		stride = 7 // sparse sweep for -short; CI runs the full axis
	}
	crashLinks := []struct {
		name string
		prof fault.LinkProfile
	}{
		{"drop", fault.LinkProfile{Drop: 0.35}},
		{"dup-reorder", fault.LinkProfile{Duplicate: 0.3, Reorder: 0.25, MaxDelay: 3}},
	}

	for _, nodeCrash := range []int{0, 2} {
		nodeCrash := nodeCrash
		// Volatile and durable lossless baselines: checkpointing alone
		// must not change a single value.
		vcfg := base
		vcfg.CrashEvery = nodeCrash
		volatile, err := Run(vcfg)
		if err != nil {
			t.Fatalf("nodecrash=%d volatile baseline: %v", nodeCrash, err)
		}
		dcfg := vcfg
		dcfg.Durable = true
		baseline, err := Run(dcfg)
		if err != nil {
			t.Fatalf("nodecrash=%d durable baseline: %v", nodeCrash, err)
		}
		if len(baseline.Violations) != 0 {
			t.Fatalf("nodecrash=%d baseline violations: %v", nodeCrash, head(baseline.Violations, 5))
		}
		if diffs := CompareRuns(baseline, volatile); len(diffs) != 0 {
			t.Fatalf("nodecrash=%d: durability changed results: %v", nodeCrash, head(diffs, 5))
		}
		words := int(baseline.CheckpointWords)
		if words < 16*base.Nodes*base.Reports {
			t.Fatalf("nodecrash=%d: baseline wrote only %d checkpoint words", nodeCrash, words)
		}
		// Any crash offset below the admission floor (every run journals
		// at least Nodes×Reports admissions of 16 words) must fire.
		mustFire := 16 * base.Nodes * base.Reports

		for _, link := range crashLinks {
			link := link
			t.Run(fmt.Sprintf("%s/nodecrash=%d", link.name, nodeCrash), func(t *testing.T) {
				t.Parallel()
				fired := 0
				for w := 0; w < words; w += stride {
					cfg := base
					cfg.CrashEvery = nodeCrash
					cfg.Link = link.prof
					cfg.CollectorCrashes = []int{w}
					cfg.Obs = obs.NewRegistry() // live odometer envelope per run
					res, err := Run(cfg)
					if err != nil {
						t.Fatalf("crash@%d: %v", w, err)
					}
					if len(res.Violations) != 0 {
						t.Fatalf("crash@%d violations: %v", w, head(res.Violations, 5))
					}
					if diffs := CompareRuns(res, baseline); len(diffs) != 0 {
						t.Fatalf("crash@%d diverged from lossless baseline: %v", w, head(diffs, 5))
					}
					if res.CollectorRecoveries > 0 {
						fired++
					}
					if w < mustFire && res.CollectorRecoveries != 1 {
						t.Fatalf("crash@%d: %d recoveries, want exactly 1", w, res.CollectorRecoveries)
					}
				}
				if fired == 0 {
					t.Fatal("collector crash axis never fired")
				}
			})
		}
	}
}

// TestSeedChangesValues is the negative control for invariant 2: a
// different master seed must actually produce different values, or
// the bit-exact comparisons above are vacuous.
func TestSeedChangesValues(t *testing.T) {
	a, err := Run(Config{Nodes: 3, Reports: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Nodes: 3, Reports: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(CompareRuns(a, b)) == 0 {
		t.Fatal("different seeds produced identical fleets")
	}
}
