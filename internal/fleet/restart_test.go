package fleet

import (
	"testing"

	"ulpdp/internal/fault"
)

// TestFleetRestartResumes is the in-process restart-survival check:
// a fleet run leaves its durable state (collector checkpoints + node
// budget journals) under an NVM directory, a second run over the same
// directory with a higher report target must recover every ledger,
// resume the sequence numbering where the first run stopped, and end
// with exactly-once accounting over the union of both runs' reports.
func TestFleetRestartResumes(t *testing.T) {
	dir := t.TempDir()
	seed := gridSeed(t)
	link := fault.LinkProfile{Drop: 0.2, Duplicate: 0.2}

	first, err := Run(Config{Nodes: 3, Reports: 3, Seed: seed, Link: link, NVMDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if first.Resumed {
		t.Fatal("fresh directory reported Resumed")
	}
	if len(first.Violations) != 0 {
		t.Fatalf("first run violations: %v", first.Violations)
	}

	// "Restart": a brand-new process image over the same directory.
	// The report target grows, so each node delivers seqs 3..5 after
	// re-ACKing its resumed tail.
	second, err := Run(Config{Nodes: 3, Reports: 6, Seed: seed, Link: link, NVMDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Resumed {
		t.Fatal("second run over prior state did not report Resumed")
	}
	if len(second.Violations) != 0 {
		t.Fatalf("second run violations: %v", second.Violations)
	}
	for i, nr := range second.Nodes {
		if len(nr.Recorded) != 6 || len(nr.Released) != 6 {
			t.Fatalf("node %d after restart: %d recorded / %d released, want 6/6", i, len(nr.Recorded), len(nr.Released))
		}
	}

	// The recovered first-run releases must re-ACK bit-exactly: the
	// values the first run's journals bound to seqs 0..2 are exactly
	// what the restarted collector holds for them.
	for i := range first.Nodes {
		for seq, rel := range first.Nodes[i].Released {
			got, ok := second.Nodes[i].Recorded[seq]
			if !ok {
				t.Fatalf("node %d seq %d: first-run release missing after restart", i, seq)
			}
			if got != rel.Value {
				t.Fatalf("node %d seq %d: restarted collector holds %d, first run released %d", i, seq, got, rel.Value)
			}
		}
	}

	// Idempotent restart: running again with the same target delivers
	// nothing new and violates nothing.
	third, err := Run(Config{Nodes: 3, Reports: 6, Seed: seed, Link: link, NVMDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !third.Resumed {
		t.Fatal("third run did not report Resumed")
	}
	if len(third.Violations) != 0 {
		t.Fatalf("third run violations: %v", third.Violations)
	}
}
