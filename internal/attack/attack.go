// Package attack implements the adversary of the paper's Section
// VI-D: an observer who requests the same sensor value repeatedly and
// averages the noised outputs — the maximum-likelihood estimate of
// the original value under zero-mean additive noise. Budget control
// defeats it: once the budget is spent, cached outputs add no new
// information and the estimate's error stops shrinking.
package attack

import (
	"fmt"
	"math"
)

// Requester answers one sensor data request (e.g. a DP-Box, a budget
// controller, or a bare mechanism).
type Requester func() (float64, error)

// Trace is the adversary's progress: the running estimate and its
// relative error after each request.
type Trace struct {
	// Requests[i] is the number of requests after step i (1-based).
	Requests []int
	// Estimates[i] is the running average after Requests[i] requests.
	Estimates []float64
	// RelErrs[i] is |estimate − truth| normalized to the data range.
	RelErrs []float64
}

// Run issues n requests and records the averaging attack's progress
// at each sample point. truth is the private value, rangeLen the
// sensor range used for normalization; samplePoints selects which
// request counts to record (nil = every request).
func Run(req Requester, n int, truth, rangeLen float64, samplePoints []int) (Trace, error) {
	if n < 1 {
		return Trace{}, fmt.Errorf("attack: need at least one request")
	}
	if rangeLen <= 0 {
		return Trace{}, fmt.Errorf("attack: non-positive range %g", rangeLen)
	}
	record := make(map[int]bool, len(samplePoints))
	for _, p := range samplePoints {
		record[p] = true
	}
	var tr Trace
	var sum float64
	for i := 1; i <= n; i++ {
		v, err := req()
		if err != nil {
			return Trace{}, fmt.Errorf("attack: request %d: %w", i, err)
		}
		sum += v
		if samplePoints == nil || record[i] {
			est := sum / float64(i)
			tr.Requests = append(tr.Requests, i)
			tr.Estimates = append(tr.Estimates, est)
			tr.RelErrs = append(tr.RelErrs, math.Abs(est-truth)/rangeLen)
		}
	}
	return tr, nil
}

// RunDedup is Run for a cache-aware adversary: responses identical to
// the previous one are treated as cache replays and excluded from the
// average (they still count toward the request axis). Against a
// budget-with-caching defense this is the strongest averaging
// strategy — and its error still floors at the budget-limited sample
// count, which is the guarantee the paper's Fig. 13 demonstrates.
func RunDedup(req Requester, n int, truth, rangeLen float64, samplePoints []int) (Trace, error) {
	if n < 1 {
		return Trace{}, fmt.Errorf("attack: need at least one request")
	}
	if rangeLen <= 0 {
		return Trace{}, fmt.Errorf("attack: non-positive range %g", rangeLen)
	}
	record := make(map[int]bool, len(samplePoints))
	for _, p := range samplePoints {
		record[p] = true
	}
	var tr Trace
	var sum float64
	var used int
	var prev float64
	havePrev := false
	for i := 1; i <= n; i++ {
		v, err := req()
		if err != nil {
			return Trace{}, fmt.Errorf("attack: request %d: %w", i, err)
		}
		if !havePrev || v != prev {
			sum += v
			used++
		}
		prev, havePrev = v, true
		if samplePoints == nil || record[i] {
			est := sum / float64(used)
			tr.Requests = append(tr.Requests, i)
			tr.Estimates = append(tr.Estimates, est)
			tr.RelErrs = append(tr.RelErrs, math.Abs(est-truth)/rangeLen)
		}
	}
	return tr, nil
}

// FinalError returns the last recorded relative error.
func (t Trace) FinalError() float64 {
	if len(t.RelErrs) == 0 {
		return math.NaN()
	}
	return t.RelErrs[len(t.RelErrs)-1]
}

// ErrorAt returns the relative error at the given request count.
func (t Trace) ErrorAt(requests int) (float64, bool) {
	for i, r := range t.Requests {
		if r == requests {
			return t.RelErrs[i], true
		}
	}
	return 0, false
}
