package attack

import (
	"errors"
	"math"
	"testing"

	"ulpdp/internal/urng"
)

func TestAveragingConvergesWithoutBudget(t *testing.T) {
	// Against an unlimited noisy oracle, the averaging attack's error
	// shrinks like 1/sqrt(n) — the paper's "no budget" curve.
	rng := urng.NewSplitMix64(1)
	const truth = 50.0
	req := func() (float64, error) {
		// Laplace-ish noise of scale 20 via difference of exponentials.
		return truth + 20*(rng.ExpFloat64()-rng.ExpFloat64()), nil
	}
	tr, err := Run(req, 20000, truth, 100, []int{10, 100, 1000, 20000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 4 {
		t.Fatalf("recorded %d points", len(tr.Requests))
	}
	first, last := tr.RelErrs[0], tr.FinalError()
	if last >= first {
		t.Errorf("error should shrink: %g -> %g", first, last)
	}
	if last > 0.02 {
		t.Errorf("final error %g too large for 20000 averaged requests", last)
	}
}

func TestCachedOracleFlattensError(t *testing.T) {
	// Once the oracle starts replaying a cached value, the estimate
	// converges to the cached value, not the truth: error flattens at
	// a floor — the paper's budgeted curves.
	rng := urng.NewSplitMix64(2)
	const truth = 50.0
	const budget = 30
	var served int
	var cache float64
	req := func() (float64, error) {
		if served < budget {
			served++
			cache = truth + 20*(rng.ExpFloat64()-rng.ExpFloat64())
			return cache, nil
		}
		return cache, nil
	}
	tr, err := Run(req, 50000, truth, 100, []int{30, 50000})
	if err != nil {
		t.Fatal(err)
	}
	atBudget, _ := tr.ErrorAt(30)
	final := tr.FinalError()
	// The final estimate is pulled to the cached value; its error
	// cannot be much below the single-sample error of the cache.
	if final < atBudget/10 {
		t.Errorf("caching failed to floor the error: %g -> %g", atBudget, final)
	}
}

func TestRunDedupIgnoresCacheReplays(t *testing.T) {
	// Oracle: 5 fresh values then constant replay. The dedup
	// adversary's estimate must equal the mean of the fresh values
	// plus exactly one replay occurrence (the first repeat is
	// indistinguishable from a fresh equal value).
	fresh := []float64{10, 20, 30, 40, 50}
	i := 0
	req := func() (float64, error) {
		if i < len(fresh) {
			v := fresh[i]
			i++
			return v, nil
		}
		return fresh[len(fresh)-1], nil
	}
	tr, err := RunDedup(req, 1000, 30, 100, []int{1000})
	if err != nil {
		t.Fatal(err)
	}
	// Values used: 10,20,30,40,50 (the replayed 50s are dropped as
	// duplicates of the previous response).
	want := (10.0 + 20 + 30 + 40 + 50) / 5
	if got := tr.Estimates[0]; got != want {
		t.Errorf("estimate %g, want %g", got, want)
	}
}

func TestRunDedupValidation(t *testing.T) {
	ok := func() (float64, error) { return 0, nil }
	if _, err := RunDedup(ok, 0, 0, 1, nil); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := RunDedup(ok, 1, 0, 0, nil); err == nil {
		t.Error("zero range should error")
	}
	failing := func() (float64, error) { return 0, errors.New("boom") }
	if _, err := RunDedup(failing, 5, 0, 1, nil); err == nil {
		t.Error("requester error should propagate")
	}
}

func TestRunDedupConvergesLikeRun(t *testing.T) {
	// Against a never-caching oracle, Run and RunDedup see almost the
	// same stream (only exact consecutive repeats are dropped, which
	// are rare for continuous noise) and must converge similarly.
	rng := urng.NewSplitMix64(5)
	mk := func() Requester {
		return func() (float64, error) {
			return 50 + 20*(rng.ExpFloat64()-rng.ExpFloat64()), nil
		}
	}
	trA, err := Run(mk(), 20000, 50, 100, []int{20000})
	if err != nil {
		t.Fatal(err)
	}
	trB, err := RunDedup(mk(), 20000, 50, 100, []int{20000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(trA.FinalError()-trB.FinalError()) > 0.02 {
		t.Errorf("dedup diverged from plain run: %g vs %g", trA.FinalError(), trB.FinalError())
	}
}

func TestRunValidation(t *testing.T) {
	ok := func() (float64, error) { return 0, nil }
	if _, err := Run(ok, 0, 0, 1, nil); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := Run(ok, 1, 0, 0, nil); err == nil {
		t.Error("zero range should error")
	}
	failing := func() (float64, error) { return 0, errors.New("boom") }
	if _, err := Run(failing, 5, 0, 1, nil); err == nil {
		t.Error("requester error should propagate")
	}
}

func TestRecordEveryRequestWhenNil(t *testing.T) {
	req := func() (float64, error) { return 1, nil }
	tr, err := Run(req, 7, 1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 7 {
		t.Errorf("recorded %d, want 7", len(tr.Requests))
	}
	if tr.FinalError() != 0 {
		t.Errorf("exact oracle should give zero error, got %g", tr.FinalError())
	}
}

func TestErrorAtMissing(t *testing.T) {
	tr := Trace{Requests: []int{5}, RelErrs: []float64{0.1}}
	if _, ok := tr.ErrorAt(6); ok {
		t.Error("missing point should report !ok")
	}
	if v, ok := tr.ErrorAt(5); !ok || v != 0.1 {
		t.Error("present point should be found")
	}
}

func TestFinalErrorEmpty(t *testing.T) {
	if !math.IsNaN((Trace{}).FinalError()) {
		t.Error("empty trace should give NaN")
	}
}
