// Package rappor implements a RAPPOR-style categorical frequency
// estimator (Erlingsson, Pihur, Korolova — the mechanism the paper's
// Section VI-E cites as the motivation for DP-Box's randomized-
// response mode). Each client encodes its category into a Bloom
// filter and pushes every bit through the binary randomized-response
// primitive — exactly the operation a threshold-zero DP-Box performs
// per bit — and the aggregator recovers candidate frequencies from
// the debiased bit counts by least squares.
package rappor

import (
	"fmt"
	"hash/fnv"
	"math"

	"ulpdp/internal/urng"
)

// Params fixes the encoding and privacy configuration.
type Params struct {
	// Bits is the Bloom filter width m.
	Bits int
	// Hashes is the number of hash functions h.
	Hashes int
	// FlipProb is the per-bit randomized-response flip probability q
	// in (0, 0.5) — the DP-Box threshold-zero flip probability.
	FlipProb float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Bits < 8 || p.Bits > 4096 {
		return fmt.Errorf("rappor: %d bits out of range [8,4096]", p.Bits)
	}
	if p.Hashes < 1 || p.Hashes > 8 {
		return fmt.Errorf("rappor: %d hashes out of range [1,8]", p.Hashes)
	}
	if !(p.FlipProb > 0 && p.FlipProb < 0.5) {
		return fmt.Errorf("rappor: flip probability %g out of (0, 0.5)", p.FlipProb)
	}
	return nil
}

// Epsilon returns the per-report privacy parameter: each of the 2h
// bits that can differ between two categories is an independent
// binary randomized response with ln((1−q)/q) per bit.
func (p Params) Epsilon() float64 {
	return 2 * float64(p.Hashes) * math.Log((1-p.FlipProb)/p.FlipProb)
}

// Encode returns the Bloom bit indices for a category, via double
// hashing of two FNV digests.
func (p Params) Encode(category string) []int {
	h1 := fnv.New64a()
	h1.Write([]byte(category))
	a := h1.Sum64()
	h2 := fnv.New64()
	h2.Write([]byte(category))
	b := h2.Sum64() | 1 // odd stride
	idx := make([]int, p.Hashes)
	for i := range idx {
		idx[i] = int((a + uint64(i)*b) % uint64(p.Bits))
	}
	return idx
}

// Client produces randomized reports.
type Client struct {
	par Params
	src *urng.SplitMix64
}

// NewClient builds a reporting client. It panics on invalid
// parameters.
func NewClient(par Params, seed uint64) *Client {
	if err := par.Validate(); err != nil {
		panic(err)
	}
	return &Client{par: par, src: urng.NewSplitMix64(seed)}
}

// Report encodes the category and pushes every Bloom bit through the
// binary randomized response. The result is the noised bit vector.
func (c *Client) Report(category string) []bool {
	bits := make([]bool, c.par.Bits)
	for _, i := range c.par.Encode(category) {
		bits[i] = true
	}
	for i := range bits {
		if c.src.Float64() < c.par.FlipProb {
			bits[i] = !bits[i]
		}
	}
	return bits
}

// Aggregator accumulates reports and decodes candidate frequencies.
type Aggregator struct {
	par    Params
	counts []float64
	n      int
}

// NewAggregator builds an empty aggregator. It panics on invalid
// parameters.
func NewAggregator(par Params) *Aggregator {
	if err := par.Validate(); err != nil {
		panic(err)
	}
	return &Aggregator{par: par, counts: make([]float64, par.Bits)}
}

// Add accumulates one report. It panics on a report of the wrong
// width (a wiring bug, not a runtime condition).
func (a *Aggregator) Add(report []bool) {
	if len(report) != a.par.Bits {
		panic(fmt.Sprintf("rappor: report width %d, want %d", len(report), a.par.Bits))
	}
	for i, b := range report {
		if b {
			a.counts[i]++
		}
	}
	a.n++
}

// Reports returns the number of accumulated reports.
func (a *Aggregator) Reports() int { return a.n }

// debiasedBitRates returns the estimated true 1-rate per bit:
// t_i = (c_i/n − q) / (1 − 2q).
func (a *Aggregator) debiasedBitRates() []float64 {
	q := a.par.FlipProb
	t := make([]float64, a.par.Bits)
	for i, c := range a.counts {
		t[i] = (c/float64(a.n) - q) / (1 - 2*q)
	}
	return t
}

// Decode estimates each candidate's frequency (fraction of reports)
// by least squares over the candidates' Bloom columns: minimize
// ‖X·f − t‖² with X[i][j] = 1 if candidate j sets bit i. Negative
// solutions clamp to zero. It returns frequencies aligned with
// candidates. An error is returned with no reports, no candidates,
// or a singular design (duplicate candidates).
func (a *Aggregator) Decode(candidates []string) ([]float64, error) {
	if a.n == 0 {
		return nil, fmt.Errorf("rappor: no reports accumulated")
	}
	k := len(candidates)
	if k == 0 {
		return nil, fmt.Errorf("rappor: no candidates")
	}
	// Columns of the design matrix.
	cols := make([][]int, k)
	for j, cand := range candidates {
		cols[j] = a.par.Encode(cand)
	}
	t := a.debiasedBitRates()
	// Normal equations G = XᵀX (k×k), v = Xᵀt.
	g := make([][]float64, k)
	v := make([]float64, k)
	for j := range g {
		g[j] = make([]float64, k+1)
	}
	bitSets := make([]map[int]bool, k)
	for j, c := range cols {
		set := make(map[int]bool, len(c))
		for _, i := range c {
			set[i] = true
		}
		bitSets[j] = set
		for _, i := range c {
			v[j] += t[i]
		}
	}
	for j1 := 0; j1 < k; j1++ {
		for j2 := j1; j2 < k; j2++ {
			shared := 0
			for i := range bitSets[j1] {
				if bitSets[j2][i] {
					shared++
				}
			}
			g[j1][j2] = float64(shared)
			g[j2][j1] = float64(shared)
		}
		g[j1][k] = v[j1]
	}
	f, err := solve(g, k)
	if err != nil {
		return nil, err
	}
	for j := range f {
		if f[j] < 0 {
			f[j] = 0
		}
		if f[j] > 1 {
			f[j] = 1
		}
	}
	return f, nil
}

// solve runs Gaussian elimination with partial pivoting on the
// augmented system g (k x k+1).
func solve(g [][]float64, k int) ([]float64, error) {
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(g[r][col]) > math.Abs(g[pivot][col]) {
				pivot = r
			}
		}
		g[col], g[pivot] = g[pivot], g[col]
		if math.Abs(g[col][col]) < 1e-12 {
			return nil, fmt.Errorf("rappor: singular design (duplicate or colliding candidates)")
		}
		for r := col + 1; r < k; r++ {
			f := g[r][col] / g[col][col]
			for c := col; c <= k; c++ {
				g[r][c] -= f * g[col][c]
			}
		}
	}
	out := make([]float64, k)
	for r := k - 1; r >= 0; r-- {
		s := g[r][k]
		for c := r + 1; c < k; c++ {
			s -= g[r][c] * out[c]
		}
		out[r] = s / g[r][r]
	}
	return out, nil
}
