package rappor

import (
	"math"
	"testing"

	"ulpdp/internal/urng"
)

var par = Params{Bits: 128, Hashes: 2, FlipProb: 0.25}

func TestValidate(t *testing.T) {
	bad := []Params{
		{Bits: 4, Hashes: 2, FlipProb: 0.25},
		{Bits: 8192, Hashes: 2, FlipProb: 0.25},
		{Bits: 128, Hashes: 0, FlipProb: 0.25},
		{Bits: 128, Hashes: 9, FlipProb: 0.25},
		{Bits: 128, Hashes: 2, FlipProb: 0},
		{Bits: 128, Hashes: 2, FlipProb: 0.5},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("params %d should be invalid", i)
		}
	}
	if par.Validate() != nil {
		t.Error("valid params rejected")
	}
}

func TestEpsilon(t *testing.T) {
	// 2h·ln((1−q)/q) with h=2, q=0.25: 4·ln(3) ≈ 4.394.
	if got := par.Epsilon(); math.Abs(got-4*math.Log(3)) > 1e-12 {
		t.Errorf("epsilon = %g", got)
	}
}

func TestEncodeDeterministicInRange(t *testing.T) {
	a := par.Encode("chrome.example.com")
	b := par.Encode("chrome.example.com")
	if len(a) != par.Hashes {
		t.Fatalf("%d indices", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("encoding not deterministic")
		}
		if a[i] < 0 || a[i] >= par.Bits {
			t.Fatalf("index %d out of range", a[i])
		}
	}
	c := par.Encode("other.example.com")
	equal := true
	for i := range a {
		if a[i] != c[i] {
			equal = false
		}
	}
	if equal {
		t.Error("distinct categories encoded identically")
	}
}

func TestReportFlipRate(t *testing.T) {
	c := NewClient(par, 1)
	truth := make([]bool, par.Bits)
	for _, i := range par.Encode("x") {
		truth[i] = true
	}
	flips, total := 0, 0
	for r := 0; r < 2000; r++ {
		rep := c.Report("x")
		for i, b := range rep {
			if b != truth[i] {
				flips++
			}
			total++
		}
	}
	rate := float64(flips) / float64(total)
	if math.Abs(rate-par.FlipProb) > 0.01 {
		t.Errorf("flip rate %g, want %g", rate, par.FlipProb)
	}
}

func TestEndToEndFrequencyRecovery(t *testing.T) {
	candidates := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	truth := []float64{0.4, 0.3, 0.2, 0.1, 0} // epsilon never reported
	c := NewClient(par, 7)
	agg := NewAggregator(par)
	rng := urng.NewSplitMix64(3)
	const n = 40000
	for i := 0; i < n; i++ {
		u := rng.Float64()
		cat := candidates[0]
		acc := 0.0
		for j, f := range truth {
			acc += f
			if u < acc {
				cat = candidates[j]
				break
			}
		}
		agg.Add(c.Report(cat))
	}
	if agg.Reports() != n {
		t.Fatalf("reports = %d", agg.Reports())
	}
	est, err := agg.Decode(candidates)
	if err != nil {
		t.Fatal(err)
	}
	for j, f := range truth {
		if math.Abs(est[j]-f) > 0.03 {
			t.Errorf("%s: estimated %g, true %g", candidates[j], est[j], f)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	agg := NewAggregator(par)
	if _, err := agg.Decode([]string{"a"}); err == nil {
		t.Error("decode with no reports should error")
	}
	c := NewClient(par, 1)
	agg.Add(c.Report("a"))
	if _, err := agg.Decode(nil); err == nil {
		t.Error("decode with no candidates should error")
	}
	if _, err := agg.Decode([]string{"a", "a"}); err == nil {
		t.Error("duplicate candidates should be singular")
	}
}

func TestAddPanicsOnWrongWidth(t *testing.T) {
	agg := NewAggregator(par)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	agg.Add(make([]bool, 3))
}

func TestConstructorsPanicOnInvalid(t *testing.T) {
	bad := Params{Bits: 1, Hashes: 1, FlipProb: 0.1}
	for i, f := range []func(){
		func() { NewClient(bad, 1) },
		func() { NewAggregator(bad) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMorePrivacyMoreNoise(t *testing.T) {
	// Higher flip probability (more privacy) must produce worse
	// frequency estimates at equal N.
	estimateErr := func(q float64, seed uint64) float64 {
		p := Params{Bits: 128, Hashes: 2, FlipProb: q}
		c := NewClient(p, seed)
		agg := NewAggregator(p)
		rng := urng.NewSplitMix64(seed)
		const n = 4000
		for i := 0; i < n; i++ {
			cat := "a"
			if rng.Float64() < 0.5 {
				cat = "b"
			}
			agg.Add(c.Report(cat))
		}
		est, err := agg.Decode([]string{"a", "b"})
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(est[0]-0.5) + math.Abs(est[1]-0.5)
	}
	var lowPriv, highPriv float64
	for s := uint64(0); s < 8; s++ {
		lowPriv += estimateErr(0.05, 100+s)
		highPriv += estimateErr(0.45, 200+s)
	}
	if highPriv <= lowPriv {
		t.Errorf("q=0.45 error (%g) should exceed q=0.05 error (%g)", highPriv, lowPriv)
	}
}
