package msp430

import (
	"fmt"
)

// Operand is an assembler-level addressing-mode description.
type Operand struct {
	kind  opKind
	reg   int
	val   uint16
	label string
}

type opKind int

const (
	opReg opKind = iota
	opIdx
	opInd
	opIndInc
	opImm
	opImmLabel
	opAbs
)

// Reg is register-direct Rn.
func Reg(n int) Operand { return Operand{kind: opReg, reg: n} }

// Idx is indexed x(Rn).
func Idx(off int16, n int) Operand { return Operand{kind: opIdx, reg: n, val: uint16(off)} }

// Ind is indirect @Rn.
func Ind(n int) Operand { return Operand{kind: opInd, reg: n} }

// IndInc is indirect autoincrement @Rn+.
func IndInc(n int) Operand { return Operand{kind: opIndInc, reg: n} }

// Imm is immediate #v; the constant generator is used when possible.
func Imm(v int) Operand { return Operand{kind: opImm, val: uint16(v)} }

// ImmLabel is an immediate whose value is a label's address.
func ImmLabel(name string) Operand { return Operand{kind: opImmLabel, label: name} }

// Abs is absolute &addr.
func Abs(addr uint16) Operand { return Operand{kind: opAbs, val: addr} }

// srcEncoding returns (regField, asBits, extraWord, hasExtra) for a
// source operand.
func (o Operand) srcEncoding() (int, int, uint16, bool, error) {
	switch o.kind {
	case opReg:
		return o.reg, 0, 0, false, nil
	case opIdx:
		return o.reg, 1, o.val, true, nil
	case opInd:
		return o.reg, 2, 0, false, nil
	case opIndInc:
		return o.reg, 3, 0, false, nil
	case opAbs:
		return SR, 1, o.val, true, nil
	case opImm:
		// Constant generator shortcuts.
		switch int16(o.val) {
		case 0:
			return CG, 0, 0, false, nil
		case 1:
			return CG, 1, 0, false, nil
		case 2:
			return CG, 2, 0, false, nil
		case -1:
			return CG, 3, 0, false, nil
		case 4:
			return SR, 2, 0, false, nil
		case 8:
			return SR, 3, 0, false, nil
		}
		return PC, 3, o.val, true, nil
	case opImmLabel:
		return PC, 3, 0, true, nil // patched at assembly
	}
	return 0, 0, 0, false, fmt.Errorf("msp430: bad source operand kind %d", o.kind)
}

// dstEncoding returns (regField, adBit, extraWord, hasExtra).
func (o Operand) dstEncoding() (int, int, uint16, bool, error) {
	switch o.kind {
	case opReg:
		return o.reg, 0, 0, false, nil
	case opIdx:
		return o.reg, 1, o.val, true, nil
	case opAbs:
		return SR, 1, o.val, true, nil
	}
	return 0, 0, 0, false, fmt.Errorf("msp430: operand kind %d invalid as destination", o.kind)
}

type fixup struct {
	wordIdx int
	label   string
	kind    fixKind
}

type fixKind int

const (
	fixAbsolute fixKind = iota // write the label's absolute address
	fixJump                    // patch a 10-bit jump offset
)

// Program is an in-memory assembler. Instructions are emitted through
// typed methods; labels resolve at Assemble time.
type Program struct {
	org    uint16
	words  []uint16
	labels map[string]uint16
	fixups []fixup
	err    error
}

// NewProgram starts a program assembled at origin org.
func NewProgram(org uint16) *Program {
	return &Program{org: org, labels: map[string]uint16{}}
}

// Err returns the first emission error, if any.
func (p *Program) Err() error { return p.err }

func (p *Program) fail(err error) {
	if p.err == nil {
		p.err = err
	}
}

// here returns the current assembly address.
func (p *Program) here() uint16 { return p.org + uint16(2*len(p.words)) }

// Label defines a label at the current address.
func (p *Program) Label(name string) {
	if _, dup := p.labels[name]; dup {
		p.fail(fmt.Errorf("msp430: duplicate label %q", name))
		return
	}
	p.labels[name] = p.here()
}

// Word emits a raw data word.
func (p *Program) Word(v uint16) { p.words = append(p.words, v) }

// twoOp emits a format-I instruction.
func (p *Program) twoOp(opcode uint16, src, dst Operand, byteOp bool) {
	sReg, as, sExtra, sHas, err := src.srcEncoding()
	if err != nil {
		p.fail(err)
		return
	}
	dReg, ad, dExtra, dHas, err := dst.dstEncoding()
	if err != nil {
		p.fail(err)
		return
	}
	w := opcode<<12 | uint16(sReg)<<8 | uint16(ad)<<7 | uint16(as)<<4 | uint16(dReg)
	if byteOp {
		w |= 0x40
	}
	p.words = append(p.words, w)
	if sHas {
		if src.kind == opImmLabel {
			p.fixups = append(p.fixups, fixup{wordIdx: len(p.words), label: src.label, kind: fixAbsolute})
		}
		p.words = append(p.words, sExtra)
	}
	if dHas {
		p.words = append(p.words, dExtra)
	}
}

// twoOpForTest exposes arbitrary byte-mode format-I emission to the
// package's tests (the public surface names the common word forms).
func (p *Program) twoOpForTest(opcode uint16, src, dst Operand, byteOp bool) {
	p.twoOp(opcode, src, dst, byteOp)
}

// Mov emits MOV src, dst.
func (p *Program) Mov(src, dst Operand) { p.twoOp(0x4, src, dst, false) }

// MovB emits MOV.B src, dst.
func (p *Program) MovB(src, dst Operand) { p.twoOp(0x4, src, dst, true) }

// Add emits ADD src, dst.
func (p *Program) Add(src, dst Operand) { p.twoOp(0x5, src, dst, false) }

// Addc emits ADDC src, dst.
func (p *Program) Addc(src, dst Operand) { p.twoOp(0x6, src, dst, false) }

// Subc emits SUBC src, dst.
func (p *Program) Subc(src, dst Operand) { p.twoOp(0x7, src, dst, false) }

// Sub emits SUB src, dst.
func (p *Program) Sub(src, dst Operand) { p.twoOp(0x8, src, dst, false) }

// Cmp emits CMP src, dst.
func (p *Program) Cmp(src, dst Operand) { p.twoOp(0x9, src, dst, false) }

// Dadd emits DADD src, dst.
func (p *Program) Dadd(src, dst Operand) { p.twoOp(0xA, src, dst, false) }

// Bit emits BIT src, dst.
func (p *Program) Bit(src, dst Operand) { p.twoOp(0xB, src, dst, false) }

// Bic emits BIC src, dst.
func (p *Program) Bic(src, dst Operand) { p.twoOp(0xC, src, dst, false) }

// Bis emits BIS src, dst.
func (p *Program) Bis(src, dst Operand) { p.twoOp(0xD, src, dst, false) }

// Xor emits XOR src, dst.
func (p *Program) Xor(src, dst Operand) { p.twoOp(0xE, src, dst, false) }

// And emits AND src, dst.
func (p *Program) And(src, dst Operand) { p.twoOp(0xF, src, dst, false) }

// oneOp emits a format-II instruction.
func (p *Program) oneOp(opcode uint16, o Operand, byteOp bool) {
	reg, as, extra, has, err := o.srcEncoding()
	if err != nil {
		p.fail(err)
		return
	}
	w := 0x1000 | opcode<<7 | uint16(as)<<4 | uint16(reg)
	if byteOp {
		w |= 0x40
	}
	p.words = append(p.words, w)
	if has {
		if o.kind == opImmLabel {
			p.fixups = append(p.fixups, fixup{wordIdx: len(p.words), label: o.label, kind: fixAbsolute})
		}
		p.words = append(p.words, extra)
	}
}

// Rrc emits RRC (rotate right through carry).
func (p *Program) Rrc(o Operand) { p.oneOp(0, o, false) }

// Swpb emits SWPB (swap bytes).
func (p *Program) Swpb(o Operand) { p.oneOp(1, o, false) }

// Rra emits RRA (arithmetic shift right).
func (p *Program) Rra(o Operand) { p.oneOp(2, o, false) }

// Sxt emits SXT (sign-extend byte).
func (p *Program) Sxt(o Operand) { p.oneOp(3, o, false) }

// Push emits PUSH.
func (p *Program) Push(o Operand) { p.oneOp(4, o, false) }

// CallLabel emits CALL #label.
func (p *Program) CallLabel(name string) { p.oneOp(5, ImmLabel(name), false) }

// Ret emits RET (MOV @SP+, PC).
func (p *Program) Ret() { p.Mov(IndInc(SP), Reg(PC)) }

// Reti emits RETI (return from interrupt: pop SR, pop PC).
func (p *Program) Reti() { p.Word(0x1300) }

// Pop emits POP dst (MOV @SP+, dst).
func (p *Program) Pop(dst Operand) { p.Mov(IndInc(SP), dst) }

// Clr emits CLR dst (MOV #0, dst).
func (p *Program) Clr(dst Operand) { p.Mov(Imm(0), dst) }

// Inc emits INC dst (ADD #1, dst).
func (p *Program) Inc(dst Operand) { p.Add(Imm(1), dst) }

// Dec emits DEC dst (SUB #1, dst).
func (p *Program) Dec(dst Operand) { p.Sub(Imm(1), dst) }

// Rla emits RLA dst (ADD dst, dst — arithmetic shift left).
func (p *Program) Rla(dst Operand) { p.Add(dst, dst) }

// Rlc emits RLC dst (ADDC dst, dst — rotate left through carry).
func (p *Program) Rlc(dst Operand) { p.Addc(dst, dst) }

// Tst emits TST dst (CMP #0, dst).
func (p *Program) Tst(dst Operand) { p.Cmp(Imm(0), dst) }

// jump emits a conditional jump to a label.
func (p *Program) jump(cond uint16, label string) {
	p.fixups = append(p.fixups, fixup{wordIdx: len(p.words), label: label, kind: fixJump})
	p.words = append(p.words, 0x2000|cond<<10)
}

// Jne jumps if the zero flag is clear.
func (p *Program) Jne(label string) { p.jump(0, label) }

// Jeq jumps if the zero flag is set.
func (p *Program) Jeq(label string) { p.jump(1, label) }

// Jnc jumps if the carry flag is clear.
func (p *Program) Jnc(label string) { p.jump(2, label) }

// Jc jumps if the carry flag is set.
func (p *Program) Jc(label string) { p.jump(3, label) }

// Jn jumps if the negative flag is set.
func (p *Program) Jn(label string) { p.jump(4, label) }

// Jge jumps if N xor V is clear (signed >=).
func (p *Program) Jge(label string) { p.jump(5, label) }

// Jl jumps if N xor V is set (signed <).
func (p *Program) Jl(label string) { p.jump(6, label) }

// Jmp jumps unconditionally.
func (p *Program) Jmp(label string) { p.jump(7, label) }

// Assemble resolves labels and returns the machine words.
func (p *Program) Assemble() ([]uint16, error) {
	if p.err != nil {
		return nil, p.err
	}
	out := make([]uint16, len(p.words))
	copy(out, p.words)
	for _, f := range p.fixups {
		target, ok := p.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("msp430: undefined label %q", f.label)
		}
		switch f.kind {
		case fixAbsolute:
			out[f.wordIdx] = target
		case fixJump:
			instrAddr := p.org + uint16(2*f.wordIdx)
			diff := int32(target) - int32(instrAddr) - 2
			if diff%2 != 0 {
				return nil, fmt.Errorf("msp430: odd jump distance to %q", f.label)
			}
			off := diff / 2
			if off < -512 || off > 511 {
				return nil, fmt.Errorf("msp430: jump to %q out of range (%d words)", f.label, off)
			}
			out[f.wordIdx] |= uint16(off) & 0x3FF
		}
	}
	return out, nil
}

// Org returns the program's origin address.
func (p *Program) Org() uint16 { return p.org }

// LabelAddr returns a resolved label address after emission.
func (p *Program) LabelAddr(name string) (uint16, error) {
	a, ok := p.labels[name]
	if !ok {
		return 0, fmt.Errorf("msp430: undefined label %q", name)
	}
	return a, nil
}
