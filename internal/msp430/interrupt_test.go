package msp430

import "testing"

// loadAndBoot assembles a program, loads it, installs the vector
// table entries, and points the PC at "main".
func loadAndBoot(t *testing.T, build func(p *Program), vectors map[int]string) *CPU {
	t.Helper()
	p := NewProgram(0x4000)
	build(p)
	words, err := p.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	c.LoadWords(0x4000, words)
	for v, label := range vectors {
		addr, err := p.LabelAddr(label)
		if err != nil {
			t.Fatal(err)
		}
		c.WriteWord(VectorTable+uint16(2*v), addr)
	}
	main, err := p.LabelAddr("main")
	if err != nil {
		t.Fatal(err)
	}
	c.R[PC] = main
	return c
}

func TestInterruptEntryAndReturn(t *testing.T) {
	c := loadAndBoot(t, func(p *Program) {
		p.Label("main")
		p.Bis(Imm(int(FlagGIE)), Reg(SR))
		p.Label("spin")
		p.Inc(Reg(4)) // main-loop work counter
		p.Jmp("spin")
		p.Label("isr")
		p.Inc(Reg(5)) // ISR counter
		p.Reti()
	}, map[int]string{3: "isr"})

	if err := c.RunCycles(100, 10000); err != nil {
		t.Fatal(err)
	}
	if c.R[5] != 0 {
		t.Fatal("ISR ran without a request")
	}
	c.RequestInterrupt(3)
	if err := c.RunCycles(c.Cycles+100, 100000); err != nil {
		t.Fatal(err)
	}
	if c.R[5] != 1 {
		t.Fatalf("ISR counter = %d, want 1", c.R[5])
	}
	// Main loop resumed: its counter keeps rising afterwards.
	before := c.R[4]
	if err := c.RunCycles(c.Cycles+50, 200000); err != nil {
		t.Fatal(err)
	}
	if c.R[4] <= before {
		t.Error("main loop did not resume after RETI")
	}
	// GIE restored by RETI.
	if c.R[SR]&FlagGIE == 0 {
		t.Error("GIE not restored")
	}
}

func TestInterruptPriorityLowestVectorFirst(t *testing.T) {
	c := loadAndBoot(t, func(p *Program) {
		p.Label("main")
		p.Bis(Imm(int(FlagGIE)), Reg(SR))
		p.Label("spin")
		p.Jmp("spin")
		p.Label("isr_lo")
		p.Mov(Imm(1), Reg(6)) // records which ran first
		p.Tst(Reg(7))
		p.Jne("lo_done")
		p.Mov(Imm(1), Reg(7))
		p.Label("lo_done")
		p.Reti()
		p.Label("isr_hi")
		p.Tst(Reg(7))
		p.Jne("hi_done")
		p.Mov(Imm(2), Reg(7))
		p.Label("hi_done")
		p.Reti()
	}, map[int]string{2: "isr_lo", 9: "isr_hi"})

	c.RequestInterrupt(9)
	c.RequestInterrupt(2)
	if err := c.RunCycles(200, 100000); err != nil {
		t.Fatal(err)
	}
	if c.R[7] != 1 {
		t.Errorf("first ISR marker = %d, want 1 (lowest vector first)", c.R[7])
	}
}

func TestCPUOffSleepsUntilInterrupt(t *testing.T) {
	c := loadAndBoot(t, func(p *Program) {
		p.Label("main")
		p.Bis(Imm(int(FlagGIE|FlagCPUOFF)), Reg(SR))
		p.Label("after")
		p.Inc(Reg(4))
		p.Jmp("after")
		p.Label("isr")
		// Wake the main loop for good: clear CPUOFF in the stacked SR
		// (the standard MSP430 wake-up idiom).
		p.Bic(Imm(int(FlagCPUOFF)), Idx(0, SP))
		p.Reti()
	}, map[int]string{1: "isr"})

	if err := c.RunCycles(500, 100000); err != nil {
		t.Fatal(err)
	}
	if c.R[4] != 0 {
		t.Fatal("core executed past LPM entry without an interrupt")
	}
	if c.IdleCycles() == 0 {
		t.Fatal("no idle cycles recorded")
	}
	c.RequestInterrupt(1)
	if err := c.RunCycles(c.Cycles+200, 200000); err != nil {
		t.Fatal(err)
	}
	if c.R[4] == 0 {
		t.Error("ISR did not wake the main loop")
	}
}

func TestMaskedInterruptStaysPending(t *testing.T) {
	c := loadAndBoot(t, func(p *Program) {
		p.Label("main")
		p.Label("spin")
		p.Jmp("spin")
		p.Label("isr")
		p.Inc(Reg(5))
		p.Reti()
	}, map[int]string{0: "isr"})
	c.RequestInterrupt(0)
	if err := c.RunCycles(200, 100000); err != nil {
		t.Fatal(err)
	}
	if c.R[5] != 0 {
		t.Fatal("masked interrupt serviced")
	}
	if !c.InterruptsPending() {
		t.Fatal("request lost")
	}
	// Enable and it fires.
	c.R[SR] |= FlagGIE
	if err := c.RunCycles(c.Cycles+100, 200000); err != nil {
		t.Fatal(err)
	}
	if c.R[5] != 1 {
		t.Errorf("ISR count %d after unmasking", c.R[5])
	}
}

func TestRequestInterruptValidation(t *testing.T) {
	c := New()
	for _, v := range []int{-1, NumVectors} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("vector %d should panic", v)
				}
			}()
			c.RequestInterrupt(v)
		}()
	}
}

func TestInterruptEntryCost(t *testing.T) {
	c := loadAndBoot(t, func(p *Program) {
		p.Label("main")
		p.Bis(Imm(int(FlagGIE|FlagCPUOFF)), Reg(SR))
		p.Label("halt")
		p.Jmp("halt")
		p.Label("isr")
		p.Reti()
	}, map[int]string{5: "isr"})
	// Run into sleep.
	if err := c.RunCycles(20, 1000); err != nil {
		t.Fatal(err)
	}
	start := c.Cycles
	c.RequestInterrupt(5)
	if err := c.Step(); err != nil { // entry
		t.Fatal(err)
	}
	if got := c.Cycles - start; got != interruptCycles {
		t.Errorf("interrupt entry cost %d cycles, want %d", got, interruptCycles)
	}
}
