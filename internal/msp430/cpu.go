// Package msp430 is an instruction-level emulator of the TI MSP430
// CPU core (the 27-instruction orthogonal 16-bit ISA) with the
// per-addressing-mode cycle costs of the MSP430x1xx family user's
// guide. The paper's Section III-D compares software noising on an
// MSP430 against the DP-Box; this package is the substitute for that
// silicon: the software fixed-point and half-precision noising
// routines in programs.go execute on this emulator and their cycle
// counts stand in for the paper's measured 4043 and 1436 cycles.
package msp430

import (
	"errors"
	"fmt"
)

// Register indices. R0..R3 have dedicated roles.
const (
	PC = 0 // program counter
	SP = 1 // stack pointer
	SR = 2 // status register / constant generator 1
	CG = 3 // constant generator 2
)

// Status register flag bits.
const (
	FlagC uint16 = 1 << 0
	FlagZ uint16 = 1 << 1
	FlagN uint16 = 1 << 2
	FlagV uint16 = 1 << 8
)

// MemSize is the byte-addressable memory size.
const MemSize = 1 << 16

// HaltAddress is the sentinel return address: a RET that pops it
// halts the CPU, letting the host run routines as subroutines.
const HaltAddress = 0xFFFE

// Peripheral is a memory-mapped device: data-space accesses to
// addresses it claims are routed to it instead of RAM. Instruction
// fetches never hit peripherals (code does not execute from device
// space, as on the real part).
type Peripheral interface {
	// Contains reports whether the peripheral claims addr.
	Contains(addr uint16) bool
	// ReadWord services a word read at a claimed address.
	ReadWord(addr uint16) uint16
	// WriteWord services a word write at a claimed address.
	WriteWord(addr uint16, v uint16)
}

// CPU is one MSP430 core with its memory.
type CPU struct {
	R      [16]uint16
	Mem    [MemSize]byte
	Cycles uint64
	Halted bool
	// Instrs counts retired instructions.
	Instrs uint64
	// peripherals receive claimed data-space accesses.
	peripherals []Peripheral
	// clocked peripherals advance with the CPU clock.
	clocked []ClockedPeripheral
	// pending latches interrupt requests per vector.
	pending [NumVectors]bool
	// idleCycles counts cycles spent with the core off (CPUOFF).
	idleCycles uint64
}

// AttachPeripheral maps a device into the data space.
func (c *CPU) AttachPeripheral(p Peripheral) {
	c.peripherals = append(c.peripherals, p)
}

func (c *CPU) peripheralAt(addr uint16) Peripheral {
	for _, p := range c.peripherals {
		if p.Contains(addr) {
			return p
		}
	}
	return nil
}

// New returns a CPU with the stack pointer at the top of RAM.
func New() *CPU {
	c := &CPU{}
	c.R[SP] = 0xFF00
	return c
}

// Reset clears registers, cycle counters and pending interrupts but
// preserves memory and attached peripherals.
func (c *CPU) Reset() {
	c.R = [16]uint16{}
	c.R[SP] = 0xFF00
	c.Cycles = 0
	c.Instrs = 0
	c.Halted = false
	c.pending = [NumVectors]bool{}
	c.idleCycles = 0
}

// LoadWords writes a word slice into memory at addr (little endian).
func (c *CPU) LoadWords(addr uint16, words []uint16) {
	for i, w := range words {
		c.WriteWord(addr+uint16(2*i), w)
	}
}

// ReadWord reads a little-endian word; word accesses are aligned by
// forcing bit 0 low, as the hardware does.
func (c *CPU) ReadWord(addr uint16) uint16 {
	addr &^= 1
	return uint16(c.Mem[addr]) | uint16(c.Mem[addr+1])<<8
}

// WriteWord writes a little-endian word.
func (c *CPU) WriteWord(addr uint16, v uint16) {
	addr &^= 1
	c.Mem[addr] = byte(v)
	c.Mem[addr+1] = byte(v >> 8)
}

// Call sets up a subroutine call to entry with the halt sentinel as
// the return address and runs to completion (or the instruction cap).
// It returns the cycles consumed by the routine.
func (c *CPU) Call(entry uint16, maxInstrs uint64) (uint64, error) {
	c.R[SP] -= 2
	c.WriteWord(c.R[SP], HaltAddress)
	c.R[PC] = entry
	c.Halted = false
	start := c.Cycles
	for !c.Halted {
		if c.Instrs >= maxInstrs {
			return 0, fmt.Errorf("msp430: exceeded %d instructions at PC=%04x", maxInstrs, c.R[PC])
		}
		if err := c.Step(); err != nil {
			return 0, err
		}
	}
	return c.Cycles - start, nil
}

// fetch reads the word at PC and advances it.
func (c *CPU) fetch() uint16 {
	w := c.ReadWord(c.R[PC])
	c.R[PC] += 2
	return w
}

// Step executes one instruction, services pending interrupts, or
// burns one idle cycle when the core is off.
func (c *CPU) Step() error {
	if c.InterruptsPending() && c.serviceInterrupt() {
		return nil
	}
	if c.R[SR]&FlagCPUOFF != 0 {
		// Core off: the clock (and clocked peripherals) keep running.
		c.chargeCycles(1)
		c.idleCycles++
		return nil
	}
	if c.R[PC] == HaltAddress {
		c.Halted = true
		return nil
	}
	op := c.fetch()
	c.Instrs++
	switch {
	case op&0xE000 == 0x2000: // jump family (001x xxxx ...)
		return c.execJump(op)
	case op&0xF000 == 0x1000: // single operand
		return c.execFormatII(op)
	case op >= 0x4000: // double operand
		return c.execFormatI(op)
	}
	return fmt.Errorf("msp430: illegal opcode %04x at PC=%04x", op, c.R[PC]-2)
}

// operand describes a resolved source or destination.
type operand struct {
	isReg bool
	reg   int
	addr  uint16
	value uint16
	// constGen marks a constant-generator source (no memory access).
	constGen bool
}

// resolveSrc decodes a source operand (register, As bits) and returns
// its value plus the extra cycles charged for the access.
func (c *CPU) resolveSrc(reg int, as int, byteOp bool) (operand, int) {
	switch reg {
	case SR:
		switch as {
		case 2:
			return operand{value: 4, constGen: true}, 0
		case 3:
			return operand{value: 8, constGen: true}, 0
		}
	case CG:
		switch as {
		case 0:
			return operand{value: 0, constGen: true}, 0
		case 1:
			return operand{value: 1, constGen: true}, 0
		case 2:
			return operand{value: 2, constGen: true}, 0
		case 3:
			return operand{value: 0xFFFF, constGen: true}, 0
		}
	}
	switch as {
	case 0: // register direct
		v := c.R[reg]
		if byteOp {
			v &= 0xFF
		}
		return operand{isReg: true, reg: reg, value: v}, 0
	case 1: // indexed / symbolic / absolute
		x := c.fetch()
		var base uint16
		switch reg {
		case PC: // symbolic: address = PC(of x) + x
			base = c.R[PC] - 2
		case SR: // absolute
			base = 0
		default:
			base = c.R[reg]
		}
		addr := base + x
		return operand{addr: addr, value: c.readOp(addr, byteOp)}, 2
	case 2: // indirect
		addr := c.R[reg]
		return operand{addr: addr, value: c.readOp(addr, byteOp)}, 1
	default: // indirect autoincrement / immediate
		if reg == PC { // immediate
			v := c.fetch()
			if byteOp {
				v &= 0xFF
			}
			return operand{value: v, constGen: false}, 1
		}
		addr := c.R[reg]
		inc := uint16(2)
		if byteOp {
			inc = 1
		}
		c.R[reg] += inc
		return operand{addr: addr, value: c.readOp(addr, byteOp)}, 1
	}
}

// resolveDst decodes a destination (register or indexed) and the
// extra cycles for the eventual write.
func (c *CPU) resolveDst(reg int, ad int, byteOp bool) (operand, int) {
	if ad == 0 {
		v := c.R[reg]
		if byteOp {
			v &= 0xFF
		}
		return operand{isReg: true, reg: reg, value: v}, 0
	}
	x := c.fetch()
	var base uint16
	switch reg {
	case PC:
		base = c.R[PC] - 2
	case SR:
		base = 0
	default:
		base = c.R[reg]
	}
	addr := base + x
	return operand{addr: addr, value: c.readOp(addr, byteOp)}, 3
}

func (c *CPU) readOp(addr uint16, byteOp bool) uint16 {
	if p := c.peripheralAt(addr); p != nil {
		w := p.ReadWord(addr &^ 1)
		if byteOp {
			if addr&1 == 1 {
				return w >> 8
			}
			return w & 0xFF
		}
		return w
	}
	if byteOp {
		return uint16(c.Mem[addr])
	}
	return c.ReadWord(addr)
}

func (c *CPU) writeOp(dst operand, v uint16, byteOp bool) {
	if dst.isReg {
		if byteOp {
			v &= 0xFF
		}
		c.R[dst.reg] = v
		return
	}
	if p := c.peripheralAt(dst.addr); p != nil {
		if byteOp {
			// Read-modify-write the containing word.
			w := p.ReadWord(dst.addr &^ 1)
			if dst.addr&1 == 1 {
				w = w&0x00FF | v<<8
			} else {
				w = w&0xFF00 | v&0xFF
			}
			p.WriteWord(dst.addr&^1, w)
			return
		}
		p.WriteWord(dst.addr&^1, v)
		return
	}
	if byteOp {
		c.Mem[dst.addr] = byte(v)
		return
	}
	c.WriteWord(dst.addr, v)
}

// setFlags updates N and Z for a result; C and V are handled by the
// arithmetic helpers.
func (c *CPU) setNZ(v uint16, byteOp bool) {
	c.R[SR] &^= FlagN | FlagZ
	if byteOp {
		if v&0x80 != 0 {
			c.R[SR] |= FlagN
		}
		if v&0xFF == 0 {
			c.R[SR] |= FlagZ
		}
		return
	}
	if v&0x8000 != 0 {
		c.R[SR] |= FlagN
	}
	if v == 0 {
		c.R[SR] |= FlagZ
	}
}

func (c *CPU) setFlag(f uint16, on bool) {
	if on {
		c.R[SR] |= f
	} else {
		c.R[SR] &^= f
	}
}

func (c *CPU) flag(f uint16) bool { return c.R[SR]&f != 0 }

// execFormatI executes a double-operand instruction.
func (c *CPU) execFormatI(op uint16) error {
	opcode := op >> 12
	srcReg := int(op>>8) & 0xF
	ad := int(op>>7) & 1
	byteOp := op&0x40 != 0
	as := int(op>>4) & 3
	dstReg := int(op) & 0xF

	src, srcCyc := c.resolveSrc(srcReg, as, byteOp)
	dst, dstCyc := c.resolveDst(dstReg, ad, byteOp)

	// Base cycle cost (MSP430x1xx user's guide, Table 3-15): the
	// indexed-destination cost already includes the write-back.
	cycles := 1 + srcCyc + dstCyc
	if dst.isReg && dst.reg == PC {
		cycles++ // writes to PC cost one extra
	}

	mask := uint16(0xFFFF)
	sign := uint16(0x8000)
	if byteOp {
		mask, sign = 0xFF, 0x80
	}
	s := src.value & mask
	d := dst.value & mask

	write := true
	var r uint16
	switch opcode {
	case 0x4: // MOV
		r = s
		// MOV does not touch flags.
		c.writeOp(dst, r, byteOp)
		c.chargeCycles(cycles)
		c.maybeHalt(dst)
		return nil
	case 0x5: // ADD
		r = c.addCore(s, d, 0, mask, sign, byteOp)
	case 0x6: // ADDC
		carry := uint16(0)
		if c.flag(FlagC) {
			carry = 1
		}
		r = c.addCore(s, d, carry, mask, sign, byteOp)
	case 0x7: // SUBC
		carry := uint16(0)
		if c.flag(FlagC) {
			carry = 1
		}
		r = c.addCore(^s&mask, d, carry, mask, sign, byteOp)
	case 0x8: // SUB
		r = c.addCore(^s&mask, d, 1, mask, sign, byteOp)
	case 0x9: // CMP
		r = c.addCore(^s&mask, d, 1, mask, sign, byteOp)
		write = false
	case 0xA: // DADD (BCD add) — rarely used; implemented for completeness
		r = c.dadd(s, d, byteOp)
	case 0xB: // BIT
		r = s & d
		c.setNZ(r, byteOp)
		c.setFlag(FlagC, r != 0)
		c.setFlag(FlagV, false)
		write = false
	case 0xC: // BIC
		r = ^s & d
	case 0xD: // BIS
		r = s | d
	case 0xE: // XOR
		r = s ^ d
		c.setNZ(r, byteOp)
		c.setFlag(FlagC, r != 0)
		c.setFlag(FlagV, s&sign != 0 && d&sign != 0)
	case 0xF: // AND
		r = s & d
		c.setNZ(r, byteOp)
		c.setFlag(FlagC, r != 0)
		c.setFlag(FlagV, false)
	default:
		return fmt.Errorf("msp430: bad format-I opcode %x", opcode)
	}
	if write {
		c.writeOp(dst, r&mask, byteOp)
	}
	c.chargeCycles(cycles)
	c.maybeHalt(dst)
	return nil
}

// addCore performs s+d+carry, setting C, Z, N, V.
func (c *CPU) addCore(s, d, carry, mask, sign uint16, byteOp bool) uint16 {
	full := uint32(s) + uint32(d) + uint32(carry)
	r := uint16(full) & mask
	c.setNZ(r, byteOp)
	c.setFlag(FlagC, full > uint32(mask))
	// Overflow: operands same sign, result different.
	c.setFlag(FlagV, (s&sign) == (d&sign) && (r&sign) != (s&sign))
	return r
}

// dadd is decimal (BCD) addition.
func (c *CPU) dadd(s, d uint16, byteOp bool) uint16 {
	digits := 4
	if byteOp {
		digits = 2
	}
	carry := uint16(0)
	if c.flag(FlagC) {
		carry = 1
	}
	var r uint16
	for i := 0; i < digits; i++ {
		sd := (s >> (4 * i)) & 0xF
		dd := (d >> (4 * i)) & 0xF
		sum := sd + dd + carry
		if sum >= 10 {
			sum -= 10
			carry = 1
		} else {
			carry = 0
		}
		r |= sum << (4 * i)
	}
	c.setFlag(FlagC, carry != 0)
	c.setNZ(r, byteOp)
	return r
}

// execFormatII executes a single-operand instruction.
func (c *CPU) execFormatII(op uint16) error {
	opcode := (op >> 7) & 7
	byteOp := op&0x40 != 0
	as := int(op>>4) & 3
	reg := int(op) & 0xF

	// PUSH/CALL treat the operand as a source; others read-modify-
	// write.
	src, srcCyc := c.resolveSrc(reg, as, byteOp)
	mask := uint16(0xFFFF)
	sign := uint16(0x8000)
	if byteOp {
		mask, sign = 0xFF, 0x80
	}
	v := src.value & mask

	switch opcode {
	case 0: // RRC: rotate right through carry
		carryIn := uint16(0)
		if c.flag(FlagC) {
			carryIn = sign
		}
		c.setFlag(FlagC, v&1 != 0)
		r := (v >> 1) | carryIn
		c.setNZ(r, byteOp)
		c.setFlag(FlagV, false)
		c.writeBack(src, r, byteOp)
		c.chargeCycles(1 + srcCyc + memRMWExtra(src))
	case 1: // SWPB: swap bytes (word only)
		r := (v>>8)&0xFF | (v&0xFF)<<8
		c.writeBack(src, r, false)
		c.chargeCycles(1 + srcCyc + memRMWExtra(src))
	case 2: // RRA: arithmetic shift right
		msb := v & sign
		c.setFlag(FlagC, v&1 != 0)
		r := (v >> 1) | msb
		c.setNZ(r, byteOp)
		c.setFlag(FlagV, false)
		c.writeBack(src, r, byteOp)
		c.chargeCycles(1 + srcCyc + memRMWExtra(src))
	case 3: // SXT: sign extend byte to word
		r := v & 0xFF
		if r&0x80 != 0 {
			r |= 0xFF00
		}
		c.setNZ(r, false)
		c.setFlag(FlagC, r != 0)
		c.setFlag(FlagV, false)
		c.writeBack(src, r, false)
		c.chargeCycles(1 + srcCyc + memRMWExtra(src))
	case 4: // PUSH
		c.R[SP] -= 2
		c.WriteWord(c.R[SP], v)
		c.chargeCycles(3 + srcCyc)
	case 5: // CALL
		c.R[SP] -= 2
		c.WriteWord(c.R[SP], c.R[PC])
		c.R[PC] = v
		c.chargeCycles(4 + srcCyc)
		if c.R[PC] == HaltAddress {
			c.Halted = true
		}
	case 6: // RETI
		c.R[SR] = c.ReadWord(c.R[SP])
		c.R[SP] += 2
		c.R[PC] = c.ReadWord(c.R[SP])
		c.R[SP] += 2
		c.chargeCycles(5)
		if c.R[PC] == HaltAddress {
			c.Halted = true
		}
	default:
		return errors.New("msp430: illegal format-II opcode")
	}
	return nil
}

// writeBack stores a format-II result to its operand location.
func (c *CPU) writeBack(src operand, v uint16, byteOp bool) {
	if src.constGen {
		return // writing a constant generator is a no-op
	}
	if src.isReg {
		if byteOp {
			v &= 0xFF
		}
		c.R[src.reg] = v
		if src.reg == PC && v == HaltAddress {
			c.Halted = true
		}
		return
	}
	c.writeOp(operand{addr: src.addr}, v, byteOp)
}

func memRMWExtra(src operand) int {
	if src.isReg || src.constGen {
		return 0
	}
	return 1 // memory write-back of the modified value
}

// execJump executes the conditional-jump family.
func (c *CPU) execJump(op uint16) error {
	cond := (op >> 10) & 7
	offset := int16(op<<6) >> 6 // sign-extend 10 bits
	take := false
	switch cond {
	case 0: // JNE/JNZ
		take = !c.flag(FlagZ)
	case 1: // JEQ/JZ
		take = c.flag(FlagZ)
	case 2: // JNC
		take = !c.flag(FlagC)
	case 3: // JC
		take = c.flag(FlagC)
	case 4: // JN
		take = c.flag(FlagN)
	case 5: // JGE: N xor V == 0
		take = c.flag(FlagN) == c.flag(FlagV)
	case 6: // JL: N xor V == 1
		take = c.flag(FlagN) != c.flag(FlagV)
	case 7: // JMP
		take = true
	}
	if take {
		c.R[PC] = uint16(int32(c.R[PC]) + int32(offset)*2)
		if c.R[PC] == HaltAddress {
			c.Halted = true
		}
	}
	c.chargeCycles(2) // jumps always cost two cycles, taken or not
	return nil
}

func (c *CPU) chargeCycles(n int) {
	c.Cycles += uint64(n)
	for _, p := range c.clocked {
		p.ClockTick(uint64(n))
	}
}

// maybeHalt halts when an instruction lands the PC on the sentinel
// (e.g. RET = MOV @SP+, PC popping HaltAddress).
func (c *CPU) maybeHalt(dst operand) {
	if dst.isReg && dst.reg == PC && c.R[PC] == HaltAddress {
		c.Halted = true
	}
}
