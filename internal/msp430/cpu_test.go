package msp430

import (
	"testing"
)

// run assembles the program at 0x4000, loads it, and calls the entry
// label, returning the CPU and cycle count.
func run(t *testing.T, build func(p *Program), entry string) (*CPU, uint64) {
	t.Helper()
	p := NewProgram(0x4000)
	build(p)
	words, err := p.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	addr, err := p.LabelAddr(entry)
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	c.LoadWords(p.Org(), words)
	cycles, err := c.Call(addr, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return c, cycles
}

func TestMovImmediate(t *testing.T) {
	c, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(0x1234), Reg(4))
		p.Ret()
	}, "main")
	if c.R[4] != 0x1234 {
		t.Errorf("R4 = %04x", c.R[4])
	}
}

func TestConstantGenerators(t *testing.T) {
	c, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(0), Reg(4))
		p.Mov(Imm(1), Reg(5))
		p.Mov(Imm(2), Reg(6))
		p.Mov(Imm(4), Reg(7))
		p.Mov(Imm(8), Reg(8))
		p.Mov(Imm(-1), Reg(9))
		p.Ret()
	}, "main")
	want := []uint16{0, 1, 2, 4, 8, 0xFFFF}
	for i, w := range want {
		if c.R[4+i] != w {
			t.Errorf("R%d = %04x, want %04x", 4+i, c.R[4+i], w)
		}
	}
}

func TestConstantGeneratorSavesWordsAndCycles(t *testing.T) {
	// MOV #1, R4 via CG is one word, one cycle; MOV #1234h, R4 is two
	// words, two cycles.
	p := NewProgram(0x4000)
	p.Mov(Imm(1), Reg(4))
	w1, err := p.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if len(w1) != 1 {
		t.Errorf("CG MOV = %d words, want 1", len(w1))
	}
	p2 := NewProgram(0x4000)
	p2.Mov(Imm(0x1234), Reg(4))
	w2, err := p2.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if len(w2) != 2 {
		t.Errorf("immediate MOV = %d words, want 2", len(w2))
	}
}

func TestAddSubFlags(t *testing.T) {
	c, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(0x7FFF), Reg(4))
		p.Add(Imm(1), Reg(4)) // overflow: 0x8000, V set, N set
		p.Ret()
	}, "main")
	if c.R[4] != 0x8000 {
		t.Errorf("R4 = %04x", c.R[4])
	}
	if !c.flag(FlagV) || !c.flag(FlagN) || c.flag(FlagZ) || c.flag(FlagC) {
		t.Errorf("flags = %04x", c.R[SR])
	}
}

func TestSubSetsCarryAsNotBorrow(t *testing.T) {
	c, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(5), Reg(4))
		p.Sub(Imm(3), Reg(4)) // 5-3: no borrow -> C=1
		p.Ret()
	}, "main")
	if c.R[4] != 2 || !c.flag(FlagC) {
		t.Errorf("R4 = %04x, C = %v", c.R[4], c.flag(FlagC))
	}
	c2, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(3), Reg(4))
		p.Sub(Imm(5), Reg(4)) // borrow -> C=0
		p.Ret()
	}, "main")
	if c2.R[4] != 0xFFFE || c2.flag(FlagC) {
		t.Errorf("R4 = %04x, C = %v", c2.R[4], c2.flag(FlagC))
	}
}

func TestCmpDoesNotWrite(t *testing.T) {
	c, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(7), Reg(4))
		p.Cmp(Imm(7), Reg(4))
		p.Ret()
	}, "main")
	if c.R[4] != 7 {
		t.Errorf("CMP modified dst: %04x", c.R[4])
	}
	if !c.flag(FlagZ) {
		t.Error("CMP equal should set Z")
	}
}

func TestLogicOps(t *testing.T) {
	c, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(0xF0F0), Reg(4))
		p.And(Imm(0xFF00), Reg(4)) // F000
		p.Mov(Imm(0x00FF), Reg(5))
		p.Bis(Imm(0x0F00), Reg(5)) // 0FFF
		p.Mov(Imm(0xFFFF), Reg(6))
		p.Bic(Imm(0x00FF), Reg(6)) // FF00
		p.Mov(Imm(0xAAAA), Reg(7))
		p.Xor(Imm(0xFFFF), Reg(7)) // 5555
		p.Ret()
	}, "main")
	if c.R[4] != 0xF000 || c.R[5] != 0x0FFF || c.R[6] != 0xFF00 || c.R[7] != 0x5555 {
		t.Errorf("R4=%04x R5=%04x R6=%04x R7=%04x", c.R[4], c.R[5], c.R[6], c.R[7])
	}
}

func TestShiftsAndRotates(t *testing.T) {
	c, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(0x8003), Reg(4))
		p.Rra(Reg(4)) // arithmetic: 0xC001, C=1
		p.Mov(Imm(0x0001), Reg(5))
		p.Rrc(Reg(5)) // C was 1 -> 0x8000, C=1
		p.Mov(Imm(0x1234), Reg(6))
		p.Swpb(Reg(6)) // 0x3412
		p.Mov(Imm(0x0080), Reg(7))
		p.Sxt(Reg(7)) // 0xFF80
		p.Ret()
	}, "main")
	if c.R[4] != 0xC001 {
		t.Errorf("RRA: %04x", c.R[4])
	}
	if c.R[5] != 0x8000 {
		t.Errorf("RRC: %04x", c.R[5])
	}
	if c.R[6] != 0x3412 {
		t.Errorf("SWPB: %04x", c.R[6])
	}
	if c.R[7] != 0xFF80 {
		t.Errorf("SXT: %04x", c.R[7])
	}
}

func TestRlaRlc32BitShift(t *testing.T) {
	// 32-bit left shift via RLA low + RLC high — the idiom the
	// noising routines use.
	c, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(0x8001), Reg(4)) // low
		p.Mov(Imm(0x0001), Reg(5)) // high
		p.Rla(Reg(4))
		p.Rlc(Reg(5))
		p.Ret()
	}, "main")
	if c.R[4] != 0x0002 || c.R[5] != 0x0003 {
		t.Errorf("32-bit shift: high=%04x low=%04x", c.R[5], c.R[4])
	}
}

func TestMemoryOps(t *testing.T) {
	c, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(0xBEEF), Abs(0x0200))
		p.Mov(Abs(0x0200), Reg(4))
		p.Mov(Imm(0x0200), Reg(5))
		p.Mov(Ind(5), Reg(6))
		p.Mov(IndInc(5), Reg(7))
		p.Mov(Imm(0x1111), Idx(2, 5)) // R5 now 0x0202: write 0x0204
		p.Ret()
	}, "main")
	if c.R[4] != 0xBEEF || c.R[6] != 0xBEEF || c.R[7] != 0xBEEF {
		t.Errorf("R4=%04x R6=%04x R7=%04x", c.R[4], c.R[6], c.R[7])
	}
	if c.R[5] != 0x0202 {
		t.Errorf("autoincrement: R5=%04x", c.R[5])
	}
	if got := c.ReadWord(0x0204); got != 0x1111 {
		t.Errorf("indexed store: %04x", got)
	}
}

func TestByteOps(t *testing.T) {
	c, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(0x1234), Abs(0x0200))
		p.MovB(Abs(0x0200), Reg(4)) // low byte only
		p.MovB(Imm(0xFF), Abs(0x0201))
		p.Mov(Abs(0x0200), Reg(5))
		p.Ret()
	}, "main")
	if c.R[4] != 0x34 {
		t.Errorf("byte read: %04x", c.R[4])
	}
	if c.R[5] != 0xFF34 {
		t.Errorf("byte write merged: %04x", c.R[5])
	}
}

func TestByteArithmeticFlags(t *testing.T) {
	// Byte-mode flags come from bit 7, not bit 15.
	c, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(0x7F), Abs(0x0200))
		p.twoOpForTest(0x5, Imm(1), Abs(0x0200), true) // ADD.B #1, &0x200
		p.Ret()
	}, "main")
	if got := c.ReadWord(0x0200) & 0xFF; got != 0x80 {
		t.Errorf("ADD.B result %02x", got)
	}
	if !c.flag(FlagN) || !c.flag(FlagV) {
		t.Errorf("byte overflow flags: SR=%04x", c.R[SR])
	}
	// Byte carry at 0xFF + 1.
	c2, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(0xFF), Abs(0x0200))
		p.twoOpForTest(0x5, Imm(1), Abs(0x0200), true)
		p.Ret()
	}, "main")
	if got := c2.ReadWord(0x0200) & 0xFF; got != 0 {
		t.Errorf("ADD.B wrap %02x", got)
	}
	if !c2.flag(FlagC) || !c2.flag(FlagZ) {
		t.Errorf("byte carry flags: SR=%04x", c2.R[SR])
	}
}

func TestByteAutoIncrementStepsByOne(t *testing.T) {
	c, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(0x0200), Reg(5))
		p.Mov(Imm(0x4241), Abs(0x0200))
		p.twoOpForTest(0x4, IndInc(5), Reg(6), true) // MOV.B @R5+, R6
		p.twoOpForTest(0x4, IndInc(5), Reg(7), true) // MOV.B @R5+, R7
		p.Ret()
	}, "main")
	if c.R[6] != 0x41 || c.R[7] != 0x42 {
		t.Errorf("byte autoincrement reads: %02x %02x", c.R[6], c.R[7])
	}
	if c.R[5] != 0x0202 {
		t.Errorf("pointer advanced to %04x, want +1 per byte", c.R[5])
	}
}

func TestJumpsAndLoop(t *testing.T) {
	c, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(10), Reg(4))
		p.Clr(Reg(5))
		p.Label("loop")
		p.Add(Reg(4), Reg(5))
		p.Dec(Reg(4))
		p.Jne("loop")
		p.Ret()
	}, "main")
	if c.R[5] != 55 {
		t.Errorf("sum = %d, want 55", c.R[5])
	}
}

func TestSignedJumps(t *testing.T) {
	c, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(-5), Reg(4))
		p.Cmp(Imm(3), Reg(4)) // -5 < 3 signed
		p.Jl("less")
		p.Mov(Imm(0), Reg(5))
		p.Ret()
		p.Label("less")
		p.Mov(Imm(1), Reg(5))
		p.Ret()
	}, "main")
	if c.R[5] != 1 {
		t.Error("JL not taken for -5 < 3")
	}
}

func TestCallAndStack(t *testing.T) {
	c, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(21), Reg(4))
		p.CallLabel("double")
		p.Ret()
		p.Label("double")
		p.Add(Reg(4), Reg(4))
		p.Ret()
	}, "main")
	if c.R[4] != 42 {
		t.Errorf("R4 = %d", c.R[4])
	}
}

func TestPushPop(t *testing.T) {
	c, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Mov(Imm(0xABCD), Reg(4))
		p.Push(Reg(4))
		p.Clr(Reg(4))
		p.Pop(Reg(4))
		p.Ret()
	}, "main")
	if c.R[4] != 0xABCD {
		t.Errorf("push/pop: %04x", c.R[4])
	}
}

func TestDadd(t *testing.T) {
	c, _ := run(t, func(p *Program) {
		p.Label("main")
		p.Clr(Reg(4)) // also clears carry via setNZ? ensure C=0
		p.Mov(Imm(0x1234), Reg(4))
		p.Mov(Imm(0x4321), Reg(5))
		p.Bic(Imm(1), Reg(SR)) // clear carry explicitly
		p.Dadd(Reg(4), Reg(5)) // BCD: 1234 + 4321 = 5555
		p.Ret()
	}, "main")
	if c.R[5] != 0x5555 {
		t.Errorf("DADD: %04x", c.R[5])
	}
}

func TestCycleCounts(t *testing.T) {
	// Spot checks against the family user's guide.
	tests := []struct {
		name  string
		build func(p *Program)
		want  uint64
	}{
		{"mov Rn->Rn is 1", func(p *Program) {
			p.Label("main")
			p.Mov(Reg(4), Reg(5))
			p.Ret()
		}, 1 + 3}, // + RET (MOV @SP+, PC): 3 cycles
		{"mov #imm->Rn is 2", func(p *Program) {
			p.Label("main")
			p.Mov(Imm(0x1234), Reg(5))
			p.Ret()
		}, 2 + 3},
		{"CG #1->Rn is 1", func(p *Program) {
			p.Label("main")
			p.Mov(Imm(1), Reg(5))
			p.Ret()
		}, 1 + 3},
		{"jump costs 2", func(p *Program) {
			p.Label("main")
			p.Jmp("next")
			p.Label("next")
			p.Ret()
		}, 2 + 3},
		{"mov Rn->mem is 4", func(p *Program) {
			p.Label("main")
			p.Mov(Reg(4), Abs(0x0200))
			p.Ret()
		}, 4 + 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, cycles := run(t, tt.build, "main")
			if cycles != tt.want {
				t.Errorf("cycles = %d, want %d", cycles, tt.want)
			}
		})
	}
}

func TestIllegalOpcode(t *testing.T) {
	c := New()
	c.WriteWord(0x4000, 0x0123) // below format space
	c.R[PC] = 0x4000
	if err := c.Step(); err == nil {
		t.Error("illegal opcode should error")
	}
}

func TestInstructionCap(t *testing.T) {
	p := NewProgram(0x4000)
	p.Label("spin")
	p.Jmp("spin")
	words, err := p.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	c := New()
	c.LoadWords(0x4000, words)
	if _, err := c.Call(0x4000, 1000); err == nil {
		t.Error("infinite loop should hit the instruction cap")
	}
}

func TestAssemblerErrors(t *testing.T) {
	p := NewProgram(0x4000)
	p.Jmp("nowhere")
	if _, err := p.Assemble(); err == nil {
		t.Error("undefined label should error")
	}
	p2 := NewProgram(0x4000)
	p2.Label("a")
	p2.Label("a")
	if p2.Err() == nil {
		t.Error("duplicate label should error")
	}
	p3 := NewProgram(0x4000)
	p3.Mov(Reg(4), Ind(5)) // @Rn invalid as destination
	if p3.Err() == nil {
		t.Error("indirect destination should error")
	}
}

func TestJumpRange(t *testing.T) {
	p := NewProgram(0x4000)
	p.Label("start")
	p.Jmp("far")
	for i := 0; i < 600; i++ {
		p.Word(0x4303) // NOP (MOV R3, R3)
	}
	p.Label("far")
	p.Ret()
	if _, err := p.Assemble(); err == nil {
		t.Error("jump beyond ±512 words should error")
	}
}

func TestResetPreservesMemory(t *testing.T) {
	c := New()
	c.WriteWord(0x0300, 0x7777)
	c.R[7] = 9
	c.Cycles = 100
	c.Reset()
	if c.R[7] != 0 || c.Cycles != 0 {
		t.Error("reset did not clear registers/cycles")
	}
	if c.ReadWord(0x0300) != 0x7777 {
		t.Error("reset cleared memory")
	}
}
