package msp430

import "fmt"

// Interrupt and low-power-mode support: the MSP430's defining ULP
// feature. Firmware enables GIE and sets CPUOFF to sleep; a
// peripheral requests an interrupt; the CPU wakes, pushes PC and SR,
// clears SR (waking the core), and vectors through the table at
// 0xFFE0. RETI restores SR — including CPUOFF, so the core drops back
// to sleep unless the ISR edited the stacked SR. This is the
// mechanism behind the paper's remark that DP-Box noising avoids
// "waking up the microcontroller on every sensor output".

// Status register bits beyond the ALU flags.
const (
	// FlagGIE is the global interrupt enable.
	FlagGIE uint16 = 1 << 3
	// FlagCPUOFF turns the CPU core off (LPM0+).
	FlagCPUOFF uint16 = 1 << 4
)

// NumVectors is the size of the interrupt vector table.
const NumVectors = 16

// VectorTable is the base address of the vector table: vector i's
// handler address lives at VectorTable + 2i.
const VectorTable = 0xFFE0

// interruptCycles is the hardware interrupt entry latency.
const interruptCycles = 6

// ClockedPeripheral is a peripheral that advances with the CPU clock
// (timers, watchdogs).
type ClockedPeripheral interface {
	// ClockTick is called with the number of CPU cycles just elapsed.
	ClockTick(n uint64)
}

// AttachClocked registers a clock consumer.
func (c *CPU) AttachClocked(p ClockedPeripheral) {
	c.clocked = append(c.clocked, p)
}

// RequestInterrupt latches an interrupt request on the given vector.
// It panics on an out-of-range vector (a wiring bug).
func (c *CPU) RequestInterrupt(vector int) {
	if vector < 0 || vector >= NumVectors {
		panic(fmt.Sprintf("msp430: interrupt vector %d out of range", vector))
	}
	c.pending[vector] = true
}

// InterruptsPending reports whether any request is latched.
func (c *CPU) InterruptsPending() bool {
	for _, p := range c.pending {
		if p {
			return true
		}
	}
	return false
}

// serviceInterrupt enters the highest-priority (lowest-vector)
// pending handler, if interrupts are enabled. It reports whether a
// handler was entered.
func (c *CPU) serviceInterrupt() bool {
	if c.R[SR]&FlagGIE == 0 {
		return false
	}
	for v := 0; v < NumVectors; v++ {
		if !c.pending[v] {
			continue
		}
		c.pending[v] = false
		c.R[SP] -= 2
		c.WriteWord(c.R[SP], c.R[PC])
		c.R[SP] -= 2
		c.WriteWord(c.R[SP], c.R[SR])
		c.R[SR] = 0 // clears GIE and CPUOFF: the core wakes for the ISR
		c.R[PC] = c.ReadWord(VectorTable + uint16(2*v))
		c.chargeCycles(interruptCycles)
		return true
	}
	return false
}

// RunCycles executes (or sleeps) until the cycle counter reaches
// target or the CPU halts. It is the driver for interrupt-driven
// firmware whose main loop never returns.
func (c *CPU) RunCycles(target uint64, maxInstrs uint64) error {
	for c.Cycles < target && !c.Halted {
		if c.Instrs >= maxInstrs {
			return fmt.Errorf("msp430: exceeded %d instructions at PC=%04x", maxInstrs, c.R[PC])
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
	return nil
}

// IdleCycles returns the cycles spent with the core off.
func (c *CPU) IdleCycles() uint64 { return c.idleCycles }
