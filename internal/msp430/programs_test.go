package msp430

import (
	"math"
	"testing"
)

func TestBothRoutinesAssemble(t *testing.T) {
	for _, prec := range []Precision{FixedPoint20, HalfPrecision} {
		if _, err := NewSoftNoiser(prec, 42); err != nil {
			t.Errorf("%v: %v", prec, err)
		}
	}
}

func TestPrecisionString(t *testing.T) {
	if FixedPoint20.String() != "fixed-point-20" || HalfPrecision.String() != "half-precision" {
		t.Error("precision strings wrong")
	}
}

// TestFixedPointMagnitudeAgainstReference replays the software
// Tausworthe in Go, computes the exact expected magnitude from the
// same draw, and checks the assembly routine within its quantization
// error.
func TestFixedPointMagnitudeAgainstReference(t *testing.T) {
	s, err := NewSoftNoiser(FixedPoint20, 1234)
	if err != nil {
		t.Fatal(err)
	}
	// Mirror of the routine's Tausworthe state.
	var st [3]uint32
	for i := 0; i < 3; i++ {
		st[i] = uint32(s.cpu.ReadWord(uint16(AddrSeed+4*i))) |
			uint32(s.cpu.ReadWord(uint16(AddrSeed+4*i+2)))<<16
	}
	step := func() uint32 {
		b := ((st[0] << 13) ^ st[0]) >> 19
		st[0] = ((st[0] & 0xFFFFFFFE) << 12) ^ b
		b = ((st[1] << 2) ^ st[1]) >> 25
		st[1] = ((st[1] & 0xFFFFFFF8) << 4) ^ b
		b = ((st[2] << 3) ^ st[2]) >> 11
		st[2] = ((st[2] & 0xFFFFFFF0) << 17) ^ b
		return st[0] ^ st[1] ^ st[2]
	}
	const lambda = 64
	const x = 100
	for i := 0; i < 200; i++ {
		u := step()
		m := u & 0x1FFFF
		negative := u&0x80000000 != 0
		var want float64
		if m == 0 {
			want = 0
		} else {
			want = lambda * -math.Log(float64(m)/(1<<17))
		}
		got, _, err := s.Noise(x, lambda, -2000, 2000)
		if err != nil {
			t.Fatal(err)
		}
		mag := float64(got - x)
		if negative {
			mag = -mag
		}
		// Table interpolation + Q6.26 quantization: allow a small
		// absolute error plus a relative term.
		tol := 1.5 + 0.002*math.Abs(want)
		if math.Abs(mag-want) > tol {
			t.Errorf("draw %d: magnitude %g, want %g (m=%d)", i, mag, want, m)
		}
	}
}

func TestHalfPrecisionMagnitudeAgainstReference(t *testing.T) {
	s, err := NewSoftNoiser(HalfPrecision, 99)
	if err != nil {
		t.Fatal(err)
	}
	st := uint32(s.cpu.ReadWord(AddrSeed)) | uint32(s.cpu.ReadWord(AddrSeed+2))<<16
	step := func() uint32 {
		b := ((st << 13) ^ st) >> 19
		st = ((st & 0xFFFFFFFE) << 12) ^ b
		return st
	}
	const lambda = 32
	const x = 0
	for i := 0; i < 200; i++ {
		u := step()
		m := u & 0x7FF
		negative := u&0x80000000 != 0
		var want float64
		if m == 0 {
			want = 0
		} else {
			want = lambda * -math.Log(float64(m)/(1<<11))
		}
		got, _, err := s.Noise(x, lambda, -2000, 2000)
		if err != nil {
			t.Fatal(err)
		}
		mag := float64(got - x)
		if negative {
			mag = -mag
		}
		// Coarser table: tolerate a bigger relative error.
		tol := 1.5 + 0.01*math.Abs(want)
		if math.Abs(mag-want) > tol {
			t.Errorf("draw %d: magnitude %g, want %g (m=%d)", i, mag, want, m)
		}
	}
}

func TestClampBehaviour(t *testing.T) {
	s, err := NewSoftNoiser(FixedPoint20, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		got, _, err := s.Noise(10, 64, 0, 20)
		if err != nil {
			t.Fatal(err)
		}
		if got < 0 || got > 20 {
			t.Fatalf("clamped output %d outside [0, 20]", got)
		}
	}
}

func TestCycleCountsAreThreeOrdersAboveHardware(t *testing.T) {
	// The Section III-D claim: software noising costs thousands of
	// cycles (4043 fixed point, 1436 half precision measured by the
	// paper) against 2-4 cycles in hardware, and the fixed-point
	// routine is the slower of the two.
	fxp, err := NewSoftNoiser(FixedPoint20, 5)
	if err != nil {
		t.Fatal(err)
	}
	f16, err := NewSoftNoiser(HalfPrecision, 5)
	if err != nil {
		t.Fatal(err)
	}
	avg := func(s *SoftNoiser) float64 {
		var total uint64
		const n = 200
		for i := 0; i < n; i++ {
			_, cycles, err := s.Noise(50, 64, -3000, 3000)
			if err != nil {
				t.Fatal(err)
			}
			total += cycles
		}
		return float64(total) / n
	}
	fxpCycles := avg(fxp)
	f16Cycles := avg(f16)
	t.Logf("fixed-point: %.0f cycles/noise; half-precision: %.0f cycles/noise", fxpCycles, f16Cycles)
	if fxpCycles <= f16Cycles {
		t.Errorf("fixed point (%.0f) should cost more than half precision (%.0f)", fxpCycles, f16Cycles)
	}
	if fxpCycles < 500 {
		t.Errorf("fixed-point cycles %.0f implausibly low", fxpCycles)
	}
	// Hardware does it in 4 cycles (conservatively, incl. MSP430
	// memory traffic): the software gap must be >= two orders.
	if fxpCycles/4 < 100 {
		t.Errorf("hardware/software gap only %.0fx", fxpCycles/4)
	}
}

func TestNoiseSignBalance(t *testing.T) {
	s, err := NewSoftNoiser(FixedPoint20, 31)
	if err != nil {
		t.Fatal(err)
	}
	var pos, neg int
	for i := 0; i < 3000; i++ {
		got, _, err := s.Noise(0, 64, -30000, 30000)
		if err != nil {
			t.Fatal(err)
		}
		if got > 0 {
			pos++
		} else if got < 0 {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatalf("degenerate signs: +%d -%d", pos, neg)
	}
	ratio := float64(pos) / float64(pos+neg)
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("sign ratio %g not balanced", ratio)
	}
}

func TestNoiseDistributionIsLaplaceLike(t *testing.T) {
	// Mean |noise| over many draws approaches λ (Laplace E|X| = λ).
	s, err := NewSoftNoiser(FixedPoint20, 77)
	if err != nil {
		t.Fatal(err)
	}
	const lambda = 64
	var sumAbs float64
	const n = 4000
	for i := 0; i < n; i++ {
		got, _, err := s.Noise(0, lambda, -30000, 30000)
		if err != nil {
			t.Fatal(err)
		}
		sumAbs += math.Abs(float64(got))
	}
	meanAbs := sumAbs / n
	if math.Abs(meanAbs-lambda)/lambda > 0.08 {
		t.Errorf("E|noise| = %g, want ~%d", meanAbs, lambda)
	}
}

func TestBudgetUpdateRoutine(t *testing.T) {
	// Bands: inside [0,100] -> 8 units; offset <= 20 -> 10; offset
	// <= 40 -> 16 (with clamping beyond 40).
	b, err := NewBudgetUpdater(1000, 20, 40, 8, 10, 16, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		y      int16
		charge uint16
	}{
		{50, 8},   // inside
		{0, 8},    // boundary inside
		{110, 10}, // first band
		{-15, 10}, // first band below
		{130, 16}, // second band
		{999, 16}, // beyond: clamped + top charge
	}
	remaining := uint16(1000)
	var totalCycles uint64
	for _, tt := range tests {
		got, cycles, err := b.Update(tt.y)
		if err != nil {
			t.Fatal(err)
		}
		remaining -= tt.charge
		if got != remaining {
			t.Errorf("y=%d: budget %d, want %d", tt.y, got, remaining)
		}
		totalCycles += cycles
		if cycles > 100 {
			t.Errorf("y=%d: %d cycles for a budget update is implausible", tt.y, cycles)
		}
	}
	t.Logf("average budget update: %.1f cycles", float64(totalCycles)/float64(len(tests)))
	// Clamping: the out-of-band output was rewritten to the edge.
	if _, _, err := b.Update(999); err != nil {
		t.Fatal(err)
	}
	if y := int16(b.cpu.ReadWord(AddrOut)); y != 140 {
		t.Errorf("clamped output %d, want 140", y)
	}
	if _, _, err := b.Update(-999); err != nil {
		t.Fatal(err)
	}
	if y := int16(b.cpu.ReadWord(AddrOut)); y != -40 {
		t.Errorf("clamped output %d, want -40", y)
	}
}

func TestBudgetUpdateSaturatesAtZero(t *testing.T) {
	b, err := NewBudgetUpdater(5, 20, 40, 8, 10, 16, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := b.Update(50)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("budget %d, want 0 (saturated)", got)
	}
}

func TestDeterministicReplay(t *testing.T) {
	a, err := NewSoftNoiser(FixedPoint20, 123)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSoftNoiser(FixedPoint20, 123)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		va, ca, err := a.Noise(5, 64, -3000, 3000)
		if err != nil {
			t.Fatal(err)
		}
		vb, cb, err := b.Noise(5, 64, -3000, 3000)
		if err != nil {
			t.Fatal(err)
		}
		if va != vb || ca != cb {
			t.Fatalf("replay diverged at %d: (%d,%d) vs (%d,%d)", i, va, ca, vb, cb)
		}
	}
}
