package msp430

import (
	"fmt"
	"math"
)

// This file contains the software noising routines of Section III-D:
// the Laplace mechanism implemented entirely in MSP430 assembly, in
// two precision flavours. The paper measured 4043 cycles for a
// 20-bit fixed-point software implementation and 1436 cycles for
// half-precision floating point, against 2-4 cycles for the DP-Box.
// These routines reproduce that three-orders-of-magnitude gap with
// the same algorithm structure: software Tausworthe URNG →
// normalization → table-interpolated logarithm → scale multiply →
// guard clamp.
//
// Memory map (word addresses):
//
//	0x0200 input x (signed, steps)
//	0x0202 input λ (unsigned, steps)
//	0x0204 window low bound  (lo − n_th, signed)
//	0x0206 window high bound (hi + n_th, signed)
//	0x0208 Tausworthe state s1 (lo, hi)
//	0x020C Tausworthe state s2 (lo, hi)
//	0x0210 Tausworthe state s3 (lo, hi)
//	0x0220 output y (signed, steps)
//
// The log tables live at 0x7000 (32-bit Q6.26 entries for the
// fixed-point routine) and 0x7400 (16-bit Q4.12 entries for the
// half-precision routine).

// Memory-map addresses shared by both routines.
const (
	AddrX      = 0x0200
	AddrLambda = 0x0202
	AddrLo     = 0x0204
	AddrHi     = 0x0206
	AddrSeed   = 0x0208 // 6 words
	AddrOut    = 0x0220

	addrScratch = 0x0230 // routine-private scratch words
	addrTable32 = 0x7000
	addrTable16 = 0x7400
)

// Scratch slots (word addresses).
const (
	scLnLo   = addrScratch + 0 // -ln(u) low word (Q6.26)
	scLnHi   = addrScratch + 2 // -ln(u) high word
	scSign   = addrScratch + 4 // noise sign (0 = +, 1 = -)
	scMagLo  = addrScratch + 6 // magnitude accumulator
	scMagHi  = addrScratch + 8
	scShifts = addrScratch + 10 // normalization shift count
)

// emitShl32 shifts the 32-bit pair (lo, hi) left by k bits.
func emitShl32(p *Program, lo, hi int, k int) {
	for k >= 16 {
		p.Mov(Reg(lo), Reg(hi))
		p.Clr(Reg(lo))
		k -= 16
	}
	for i := 0; i < k; i++ {
		p.Rla(Reg(lo))
		p.Rlc(Reg(hi))
	}
}

// emitShr32 shifts the 32-bit pair (lo, hi) right logically by k.
func emitShr32(p *Program, lo, hi int, k int) {
	for k >= 16 {
		p.Mov(Reg(hi), Reg(lo))
		p.Clr(Reg(hi))
		k -= 16
	}
	for i := 0; i < k; i++ {
		p.Bic(Imm(1), Reg(SR)) // clear carry
		p.Rrc(Reg(hi))
		p.Rrc(Reg(lo))
	}
}

// emitShr16 shifts a single register right logically by k bits.
func emitShr16(p *Program, reg int, k int) {
	for i := 0; i < k; i++ {
		p.Bic(Imm(1), Reg(SR))
		p.Rrc(Reg(reg))
	}
}

// emitTausComponent advances one 32-bit Tausworthe component at
// stateAddr: b = ((s << q) ^ s) >> r; s = ((s & mask) << t) ^ b.
// The new s is XORed into the running output in (R13, R14).
// Clobbers R6-R9.
func emitTausComponent(p *Program, stateAddr uint16, q, r, t int, maskLo uint16) {
	p.Mov(Abs(stateAddr), Reg(6))   // s lo
	p.Mov(Abs(stateAddr+2), Reg(7)) // s hi
	p.Mov(Reg(6), Reg(8))
	p.Mov(Reg(7), Reg(9))
	emitShl32(p, 8, 9, q)
	p.Xor(Reg(6), Reg(8))
	p.Xor(Reg(7), Reg(9))
	emitShr32(p, 8, 9, r)
	p.And(Imm(int(int16(maskLo))), Reg(6))
	emitShl32(p, 6, 7, t)
	p.Xor(Reg(8), Reg(6))
	p.Xor(Reg(9), Reg(7))
	p.Mov(Reg(6), Abs(stateAddr))
	p.Mov(Reg(7), Abs(stateAddr+2))
	p.Xor(Reg(6), Reg(13))
	p.Xor(Reg(7), Reg(14))
}

// emitTaus88 emits the full three-component Taus88 step leaving the
// 32-bit output in (R13, R14).
func emitTaus88(p *Program) {
	p.Clr(Reg(13))
	p.Clr(Reg(14))
	emitTausComponent(p, AddrSeed, 13, 19, 12, 0xFFFE)
	emitTausComponent(p, AddrSeed+4, 2, 25, 4, 0xFFF8)
	emitTausComponent(p, AddrSeed+8, 3, 11, 17, 0xFFF0)
}

// emitMul16 emits the shared unsigned 16x16 -> 32 multiply
// subroutine: operands in R10, R11; product in (R6 lo, R7 hi).
// Clobbers R5, R8, R9, R11.
func emitMul16(p *Program) {
	p.Label("mul16")
	p.Clr(Reg(6))
	p.Clr(Reg(7))
	p.Mov(Reg(10), Reg(8))
	p.Clr(Reg(9))
	p.Label("mul16_loop")
	p.Tst(Reg(11))
	p.Jeq("mul16_done")
	p.Bit(Imm(1), Reg(11))
	p.Jeq("mul16_skip")
	p.Add(Reg(8), Reg(6))
	p.Addc(Reg(9), Reg(7))
	p.Label("mul16_skip")
	p.Rla(Reg(8))
	p.Rlc(Reg(9))
	p.Bic(Imm(1), Reg(SR))
	p.Rrc(Reg(11))
	p.Jmp("mul16_loop")
	p.Label("mul16_done")
	p.Ret()
}

// buBits is the URNG magnitude width both routines implement: the
// 17-bit draw of the paper's synthesized DP-Box.
const buBits = 17

// ln2Q26 is ln 2 in Q6.26.
var ln2Q26 = uint32(math.Round(math.Ln2 * (1 << 26)))

// BuildFixedPointNoising assembles the 20-bit fixed-point software
// noising routine ("FxP20"): Q6.26 logarithm from a 64-segment
// linearly interpolated table, a 17-bit uniform draw from a software
// Taus88, and a 48-bit scale multiply — the precision the paper's
// 4043-cycle figure refers to.
func BuildFixedPointNoising() (*Program, error) {
	p := NewProgram(0x4000)

	p.Label("noise_fxp")
	emitTaus88(p)

	// Sign from bit 15 of the high word.
	p.Clr(Reg(12))
	p.Bit(Imm(0x8000), Reg(14))
	p.Jeq("sign_done")
	p.Mov(Imm(1), Reg(12))
	p.Label("sign_done")
	p.Mov(Reg(12), Abs(scSign))

	// m = u & (2^17 - 1): R13 low 16 bits, R14 keeps bit 16.
	p.And(Imm(1), Reg(14))

	// m == 0 means u = 1 -> -ln(u) = 0 -> zero noise.
	p.Tst(Reg(14))
	p.Jne("normalize")
	p.Tst(Reg(13))
	p.Jne("normalize")
	p.Clr(Abs(scMagLo))
	p.Clr(Abs(scMagHi))
	p.Jmp("apply")

	// Normalize m to 1.f * 2^16: count left shifts until bit 16 set.
	p.Label("normalize")
	p.Clr(Reg(15)) // shift count s
	p.Label("norm_loop")
	p.Bit(Imm(1), Reg(14))
	p.Jne("norm_done")
	p.Rla(Reg(13))
	p.Rlc(Reg(14))
	p.Inc(Reg(15))
	p.Jmp("norm_loop")
	p.Label("norm_done")
	p.Mov(Reg(15), Abs(scShifts))

	// -ln(u) = (1+s)*ln2 - ln(1.f), all Q6.26.
	// Segment index: top 6 bits of the 16 fraction bits in R13.
	p.Mov(Reg(13), Reg(10))
	emitShr16(p, 10, 10) // R10 = top 6 bits (0..63)
	// Table byte offset = idx*4 (32-bit entries).
	p.Rla(Reg(10))
	p.Rla(Reg(10)) // idx*4
	p.Mov(Imm(addrTable32), Reg(9))
	p.Add(Reg(10), Reg(9)) // entry address

	// frac10 = low 10 bits of R13.
	p.Mov(Reg(13), Reg(11))
	p.And(Imm(0x03FF), Reg(11))

	// diff = T[idx+1] - T[idx] (fits in 21 bits; Q6.26).
	p.Mov(Idx(4, 9), Reg(6)) // next lo
	p.Mov(Idx(6, 9), Reg(7)) // next hi
	p.Sub(Ind(9), Reg(6))
	p.Subc(Idx(2, 9), Reg(7))
	// interp = diff * frac10 >> 10. diff fits 21 bits: split as
	// lo word (R6) and hi word (R7 <= 0x1F).
	p.Push(Reg(9))         // save entry address
	p.Mov(Reg(6), Reg(10)) // diff lo
	p.Push(Reg(7))         // save diff hi
	p.Push(Reg(11))        // save frac
	p.CallLabel("mul16")   // (diff_lo * frac) in R6:R7
	p.Mov(Reg(6), Abs(scLnLo))
	p.Mov(Reg(7), Abs(scLnHi))
	p.Pop(Reg(11))       // frac
	p.Pop(Reg(10))       // diff hi
	p.CallLabel("mul16") // diff_hi * frac (fits 16 bits in R6)
	// total = (scLn) + (R6 << 16); then >> 10.
	p.Add(Reg(6), Abs(scLnHi))
	p.Mov(Abs(scLnLo), Reg(6))
	p.Mov(Abs(scLnHi), Reg(7))
	emitShr32(p, 6, 7, 10)
	// lnw = T[idx] + interp.
	p.Pop(Reg(9))
	p.Add(Ind(9), Reg(6))
	p.Addc(Idx(2, 9), Reg(7))
	// R6:R7 = ln(1.f) in Q6.26.

	// acc = (1+s)*ln2 via repeated 32-bit add.
	p.Clr(Abs(scLnLo))
	p.Clr(Abs(scLnHi))
	p.Mov(Abs(scShifts), Reg(15))
	p.Inc(Reg(15))
	p.Label("ln2_loop")
	p.Add(Imm(int(int16(uint16(ln2Q26&0xFFFF)))), Abs(scLnLo))
	p.Addc(Imm(int(int16(uint16(ln2Q26>>16)))), Abs(scLnHi))
	p.Dec(Reg(15))
	p.Jne("ln2_loop")
	// -ln(u) = acc - lnw.
	p.Sub(Reg(6), Abs(scLnLo))
	p.Subc(Reg(7), Abs(scLnHi))

	// magnitude = (lambda * -ln(u)) >> 26, rounded.
	// lambda*L and lambda*H partial products.
	p.Mov(Abs(AddrLambda), Reg(10))
	p.Mov(Abs(scLnHi), Reg(11))
	p.Push(Reg(10))
	p.CallLabel("mul16") // lambda*H -> R6:R7, contributes >> 10
	p.Mov(Reg(6), Abs(scMagLo))
	p.Mov(Reg(7), Abs(scMagHi))
	p.Pop(Reg(10))
	p.Mov(Abs(scLnLo), Reg(11))
	p.CallLabel("mul16") // lambda*L -> contributes >> 26; keep hi>>10
	emitShr32(p, 6, 7, 16)
	p.Add(Reg(6), Abs(scMagLo))
	p.Addc(Imm(0), Abs(scMagHi))
	// Now scMag = lambda * -ln(u) in Q?.10 (after the >>16 merge);
	// shift right 10 with rounding: add 1<<9 first.
	p.Mov(Abs(scMagLo), Reg(6))
	p.Mov(Abs(scMagHi), Reg(7))
	p.Add(Imm(0x0200), Reg(6))
	p.Addc(Imm(0), Reg(7))
	emitShr32(p, 6, 7, 10)
	p.Mov(Reg(6), Abs(scMagLo)) // magnitude in steps (16 bits enough)

	// apply: y = x ± mag, clamp to [window lo, window hi].
	p.Label("apply")
	p.Mov(Abs(AddrX), Reg(4))
	p.Mov(Abs(scMagLo), Reg(6))
	p.Tst(Abs(scSign))
	p.Jeq("positive")
	p.Sub(Reg(6), Reg(4))
	p.Jmp("clamp")
	p.Label("positive")
	p.Add(Reg(6), Reg(4))
	p.Label("clamp")
	p.Cmp(Abs(AddrLo), Reg(4)) // R4 - lo
	p.Jge("clamp_hi")
	p.Mov(Abs(AddrLo), Reg(4))
	p.Label("clamp_hi")
	p.Cmp(Reg(4), Abs(AddrHi)) // hi - R4
	p.Jge("store")
	p.Mov(Abs(AddrHi), Reg(4))
	p.Label("store")
	p.Mov(Reg(4), Abs(AddrOut))
	p.Ret()

	emitMul16(p)

	if p.Err() != nil {
		return nil, p.Err()
	}
	return p, nil
}

// BuildHalfPrecisionNoising assembles the reduced-precision software
// routine ("F16"): an 11-bit uniform draw from a single Tausworthe
// component, a 32-segment Q4.12 log table with 5-bit interpolation
// and a single 16x16 scale multiply — the cheaper software path whose
// 1436-cycle figure the paper contrasts with fixed point.
func BuildHalfPrecisionNoising() (*Program, error) {
	p := NewProgram(0x4000)

	p.Label("noise_f16")
	// One Tausworthe component only.
	p.Clr(Reg(13))
	p.Clr(Reg(14))
	emitTausComponent(p, AddrSeed, 13, 19, 12, 0xFFFE)

	// Sign from bit 15 of the high word.
	p.Clr(Reg(12))
	p.Bit(Imm(0x8000), Reg(14))
	p.Jeq("sign_done")
	p.Mov(Imm(1), Reg(12))
	p.Label("sign_done")
	p.Mov(Reg(12), Abs(scSign))

	// m = u & (2^11 - 1), held entirely in R13.
	p.And(Imm(0x07FF), Reg(13))
	p.Tst(Reg(13))
	p.Jne("normalize")
	p.Clr(Abs(scMagLo))
	p.Jmp("apply")

	// Normalize m to 1.f * 2^10 (bit 10 set): count shifts.
	p.Label("normalize")
	p.Clr(Reg(15))
	p.Label("norm_loop")
	p.Bit(Imm(0x0400), Reg(13))
	p.Jne("norm_done")
	p.Rla(Reg(13))
	p.Inc(Reg(15))
	p.Jmp("norm_loop")
	p.Label("norm_done")

	// fraction f = low 10 bits; segment = top 5, interp = low 5.
	p.And(Imm(0x03FF), Reg(13))
	p.Mov(Reg(13), Reg(10))
	emitShr16(p, 10, 5) // top 5 bits -> idx
	p.Rla(Reg(10))      // idx*2 (word table)
	p.Mov(Imm(addrTable16), Reg(9))
	p.Add(Reg(10), Reg(9))
	p.Mov(Reg(13), Reg(11))
	p.And(Imm(0x001F), Reg(11)) // interp bits

	// diff * interp >> 5 (diff < 2^7: product fits a word).
	p.Mov(Idx(2, 9), Reg(10))
	p.Sub(Ind(9), Reg(10))
	p.Push(Reg(9))
	p.CallLabel("mul16")
	p.Pop(Reg(9))
	emitShr32(p, 6, 7, 5)
	p.Add(Ind(9), Reg(6)) // lnw Q4.12 in R6

	// -ln(u) = (1+s)*ln2 - lnw, Q4.12 single word.
	ln2Q12 := int(math.Round(math.Ln2 * (1 << 12)))
	p.Clr(Reg(7))
	p.Inc(Reg(15))
	p.Label("ln2_loop")
	p.Add(Imm(ln2Q12), Reg(7))
	p.Dec(Reg(15))
	p.Jne("ln2_loop")
	p.Sub(Reg(6), Reg(7))

	// magnitude = (lambda * -ln(u) + 1<<11) >> 12.
	p.Mov(Abs(AddrLambda), Reg(10))
	p.Mov(Reg(7), Reg(11))
	p.CallLabel("mul16")
	p.Add(Imm(0x0800), Reg(6))
	p.Addc(Imm(0), Reg(7))
	emitShr32(p, 6, 7, 12)
	p.Mov(Reg(6), Abs(scMagLo))

	// apply: identical guard to the fixed-point routine.
	p.Label("apply")
	p.Mov(Abs(AddrX), Reg(4))
	p.Mov(Abs(scMagLo), Reg(6))
	p.Tst(Abs(scSign))
	p.Jeq("positive")
	p.Sub(Reg(6), Reg(4))
	p.Jmp("clamp")
	p.Label("positive")
	p.Add(Reg(6), Reg(4))
	p.Label("clamp")
	p.Cmp(Abs(AddrLo), Reg(4))
	p.Jge("clamp_hi")
	p.Mov(Abs(AddrLo), Reg(4))
	p.Label("clamp_hi")
	p.Cmp(Reg(4), Abs(AddrHi))
	p.Jge("store")
	p.Mov(Abs(AddrHi), Reg(4))
	p.Label("store")
	p.Mov(Reg(4), Abs(AddrOut))
	p.Ret()

	emitMul16(p)

	if p.Err() != nil {
		return nil, p.Err()
	}
	return p, nil
}

// Budget-update routine memory map (extends the shared map above).
const (
	AddrBudget = 0x0240 // remaining budget, sixteenth-nat units
	AddrSeg1   = 0x0242 // first segment boundary offset (steps)
	AddrSeg2   = 0x0244 // second segment boundary offset (steps)
	AddrChg0   = 0x0246 // in-range charge (units)
	AddrChg1   = 0x0248 // first-band charge
	AddrChg2   = 0x024A // top charge
	AddrRngLo  = 0x024C // sensor range lower bound (steps)
	AddrRngHi  = 0x024E // sensor range upper bound (steps)
)

// BuildBudgetUpdate assembles the software version of Algorithm 1's
// per-request bookkeeping: classify the raw noised output (AddrOut)
// into in-range / first band / beyond, subtract the band's charge
// from the budget word, saturating at zero. The paper's software
// latencies exclude this step ("without any budget update
// computation"); this routine measures what it would add.
func BuildBudgetUpdate() (*Program, error) {
	p := NewProgram(0x6000)
	p.Label("budget_update")
	p.Mov(Abs(AddrOut), Reg(4)) // y
	// offset = distance beyond [lo, hi]; 0 if inside.
	p.Clr(Reg(5))
	p.Cmp(Abs(AddrRngLo), Reg(4)) // y - lo
	p.Jge("check_hi")
	p.Mov(Abs(AddrRngLo), Reg(5))
	p.Sub(Reg(4), Reg(5)) // lo - y
	p.Jmp("classify")
	p.Label("check_hi")
	p.Cmp(Reg(4), Abs(AddrRngHi)) // hi - y
	p.Jge("classify")             // inside: offset stays 0
	p.Mov(Reg(4), Reg(5))
	p.Sub(Abs(AddrRngHi), Reg(5)) // y - hi
	p.Label("classify")
	p.Tst(Reg(5))
	p.Jne("outside")
	p.Mov(Abs(AddrChg0), Reg(6))
	p.Jmp("charge")
	p.Label("outside")
	p.Cmp(Abs(AddrSeg1), Reg(5)) // offset - seg1
	p.Jge("band2")
	p.Mov(Abs(AddrChg1), Reg(6))
	p.Jmp("charge")
	p.Label("band2")
	p.Mov(Abs(AddrChg2), Reg(6))
	p.Cmp(Abs(AddrSeg2), Reg(5)) // offset - seg2
	p.Jl("charge")
	// Beyond the last band: Algorithm 1 clamps the output to the
	// window edge (y = M+n2 / m-n2) while charging the top band.
	p.Cmp(Abs(AddrRngHi), Reg(4)) // y - hi
	p.Jl("clamp_lo")
	p.Mov(Abs(AddrRngHi), Reg(4))
	p.Add(Abs(AddrSeg2), Reg(4))
	p.Jmp("clamp_store")
	p.Label("clamp_lo")
	p.Mov(Abs(AddrRngLo), Reg(4))
	p.Sub(Abs(AddrSeg2), Reg(4))
	p.Label("clamp_store")
	p.Mov(Reg(4), Abs(AddrOut))
	p.Label("charge")
	p.Mov(Abs(AddrBudget), Reg(7))
	p.Sub(Reg(6), Reg(7))
	p.Jge("store")
	p.Clr(Reg(7)) // saturate at zero
	p.Label("store")
	p.Mov(Reg(7), Abs(AddrBudget))
	p.Ret()
	if p.Err() != nil {
		return nil, p.Err()
	}
	return p, nil
}

// BudgetUpdater runs the software budget-update routine.
type BudgetUpdater struct {
	cpu   *CPU
	entry uint16
}

// NewBudgetUpdater assembles and loads the routine with the given
// band configuration (offsets in steps, charges in sixteenth-nats).
func NewBudgetUpdater(budget, seg1, seg2, chg0, chg1, chg2 uint16, rngLo, rngHi int16) (*BudgetUpdater, error) {
	prog, err := BuildBudgetUpdate()
	if err != nil {
		return nil, err
	}
	words, err := prog.Assemble()
	if err != nil {
		return nil, err
	}
	entry, err := prog.LabelAddr("budget_update")
	if err != nil {
		return nil, err
	}
	c := New()
	c.LoadWords(prog.Org(), words)
	c.WriteWord(AddrBudget, budget)
	c.WriteWord(AddrSeg1, seg1)
	c.WriteWord(AddrSeg2, seg2)
	c.WriteWord(AddrChg0, chg0)
	c.WriteWord(AddrChg1, chg1)
	c.WriteWord(AddrChg2, chg2)
	c.WriteWord(AddrRngLo, uint16(rngLo))
	c.WriteWord(AddrRngHi, uint16(rngHi))
	return &BudgetUpdater{cpu: c, entry: entry}, nil
}

// Update charges the budget for the noised output y and returns the
// remaining budget and the cycle cost.
func (b *BudgetUpdater) Update(y int16) (uint16, uint64, error) {
	b.cpu.WriteWord(AddrOut, uint16(y))
	b.cpu.Instrs = 0
	cycles, err := b.cpu.Call(b.entry, 10_000)
	if err != nil {
		return 0, 0, err
	}
	return b.cpu.ReadWord(AddrBudget), cycles, nil
}

// lnTable32 builds the Q6.26 table of ln(1 + i/64), i = 0..64, as
// (lo, hi) word pairs.
func lnTable32() []uint16 {
	out := make([]uint16, 0, 130)
	for i := 0; i <= 64; i++ {
		v := uint32(math.Round(math.Log(1+float64(i)/64) * (1 << 26)))
		out = append(out, uint16(v), uint16(v>>16))
	}
	return out
}

// lnTable16 builds the Q4.12 table of ln(1 + i/32), i = 0..32.
func lnTable16() []uint16 {
	out := make([]uint16, 0, 33)
	for i := 0; i <= 32; i++ {
		out = append(out, uint16(math.Round(math.Log(1+float64(i)/32)*(1<<12))))
	}
	return out
}

// Precision selects a software noising flavour.
type Precision int

const (
	// FixedPoint20 is the 20-bit fixed-point routine.
	FixedPoint20 Precision = iota
	// HalfPrecision is the reduced-precision routine.
	HalfPrecision
)

// String implements fmt.Stringer.
func (pr Precision) String() string {
	if pr == HalfPrecision {
		return "half-precision"
	}
	return "fixed-point-20"
}

// SoftNoiser runs a software noising routine on an emulated MSP430.
type SoftNoiser struct {
	cpu   *CPU
	entry uint16
	prec  Precision
}

// NewSoftNoiser assembles and loads the routine for the given
// precision, seeding the software Tausworthe state.
func NewSoftNoiser(prec Precision, seed uint64) (*SoftNoiser, error) {
	var prog *Program
	var err error
	switch prec {
	case FixedPoint20:
		prog, err = BuildFixedPointNoising()
	case HalfPrecision:
		prog, err = BuildHalfPrecisionNoising()
	default:
		return nil, fmt.Errorf("msp430: unknown precision %d", prec)
	}
	if err != nil {
		return nil, err
	}
	words, err := prog.Assemble()
	if err != nil {
		return nil, err
	}
	entry, err := prog.LabelAddr(entryLabel(prec))
	if err != nil {
		return nil, err
	}
	c := New()
	c.LoadWords(prog.Org(), words)
	c.LoadWords(addrTable32, lnTable32())
	c.LoadWords(addrTable16, lnTable16())
	// Seed the three Tausworthe components with the component
	// minimums enforced.
	s0 := uint32(seed)*2654435761 + 7
	s1 := uint32(seed>>16)*2246822519 + 11
	s2 := uint32(seed>>32)*3266489917 + 19
	if s0 < 2 {
		s0 += 2
	}
	if s1 < 8 {
		s1 += 8
	}
	if s2 < 16 {
		s2 += 16
	}
	c.WriteWord(AddrSeed, uint16(s0))
	c.WriteWord(AddrSeed+2, uint16(s0>>16))
	c.WriteWord(AddrSeed+4, uint16(s1))
	c.WriteWord(AddrSeed+6, uint16(s1>>16))
	c.WriteWord(AddrSeed+8, uint16(s2))
	c.WriteWord(AddrSeed+10, uint16(s2>>16))
	return &SoftNoiser{cpu: c, entry: entry, prec: prec}, nil
}

func entryLabel(prec Precision) string {
	if prec == HalfPrecision {
		return "noise_f16"
	}
	return "noise_fxp"
}

// Noise runs one software noising transaction: noise x (in steps)
// with scale lambda (steps), clamping the result to [lo, hi]. It
// returns the noised value and the cycle count of the routine.
func (s *SoftNoiser) Noise(x int16, lambda uint16, lo, hi int16) (int16, uint64, error) {
	s.cpu.WriteWord(AddrX, uint16(x))
	s.cpu.WriteWord(AddrLambda, lambda)
	s.cpu.WriteWord(AddrLo, uint16(lo))
	s.cpu.WriteWord(AddrHi, uint16(hi))
	s.cpu.Instrs = 0
	cycles, err := s.cpu.Call(s.entry, 2_000_000)
	if err != nil {
		return 0, 0, err
	}
	return int16(s.cpu.ReadWord(AddrOut)), cycles, nil
}

// Precision returns the routine flavour.
func (s *SoftNoiser) Precision() Precision { return s.prec }
