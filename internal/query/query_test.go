package query

import (
	"math"
	"testing"
	"testing/quick"

	"ulpdp/internal/core"
	"ulpdp/internal/urng"
)

func TestBasicQueries(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 10}
	if got := MeanOf(xs); got != 4 {
		t.Errorf("mean = %g", got)
	}
	if got := MedianOf(xs); got != 3 {
		t.Errorf("median = %g", got)
	}
	if got := VarianceOf(xs); math.Abs(got-10) > 1e-12 {
		t.Errorf("variance = %g", got)
	}
	if got := CountAbove(xs, 2.5); got != 3 {
		t.Errorf("count = %g", got)
	}
}

func TestMedianEven(t *testing.T) {
	if got := MedianOf([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("median = %g", got)
	}
	// MedianOf must not reorder its input.
	xs := []float64{9, 1, 5}
	MedianOf(xs)
	if xs[0] != 9 || xs[2] != 5 {
		t.Error("median mutated input")
	}
}

func TestEmptyInputs(t *testing.T) {
	if MeanOf(nil) != 0 || MedianOf(nil) != 0 || VarianceOf(nil) != 0 || CountAbove(nil, 0) != 0 {
		t.Error("empty queries should be 0")
	}
}

func TestApplyDispatch(t *testing.T) {
	xs := []float64{0, 10}
	if Apply(Mean, xs, 0) != 5 || Apply(Median, xs, 0) != 5 ||
		Apply(Variance, xs, 0) != 25 || Apply(Count, xs, 5) != 1 {
		t.Error("apply dispatch wrong")
	}
}

func TestApplyPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Apply(Kind(99), []float64{1}, 0)
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		Mean: "mean", Median: "median", Variance: "variance", Count: "count", Kind(9): "Kind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("String = %q", got)
		}
	}
}

func TestQuickMeanBounds(t *testing.T) {
	prop := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		m := MeanOf(xs)
		return m >= lo-1e-9 && m <= hi+1e-9 && VarianceOf(xs) >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMedianIsOrderStatistic(t *testing.T) {
	prop := func(raw []int8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		med := MedianOf(xs)
		below, above := 0, 0
		for _, x := range xs {
			if x < med {
				below++
			}
			if x > med {
				above++
			}
		}
		n := len(xs)
		return below <= n/2 && above <= n/2
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

var testPar = core.Params{Lo: 0, Hi: 16, Eps: 0.5, Bu: 12, By: 10, Delta: 1}

func TestEvaluateMAEIdealMechanism(t *testing.T) {
	data := make([]float64, 200)
	for i := range data {
		data[i] = float64(i % 17)
	}
	mech, err := core.NewIdealLaplace(testPar, 3)
	if err != nil {
		t.Fatal(err)
	}
	u := EvaluateMAE(mech, Mean, data, 50, testPar.Range())
	if u.Trials != 50 {
		t.Errorf("trials = %d", u.Trials)
	}
	// Mean of 200 noised entries with Lap(32): std of mean ≈
	// 32·√2/√200 ≈ 3.2; MAE around 2.5. Loose bounds.
	if u.MAE <= 0.3 || u.MAE > 10 {
		t.Errorf("mean MAE = %g implausible", u.MAE)
	}
	if u.RelErr <= 0 || u.RelErr > 1 {
		t.Errorf("rel err = %g", u.RelErr)
	}
}

func TestEvaluateMAEBaselineSimilarToIdeal(t *testing.T) {
	// The paper's Tables II-V observation: the FxP baseline matches
	// the ideal mechanism's utility even though it has infinite
	// privacy loss.
	data := make([]float64, 300)
	for i := range data {
		data[i] = float64(i % 17)
	}
	idealMech, err := core.NewIdealLaplace(testPar, 5)
	if err != nil {
		t.Fatal(err)
	}
	baseMech, err := core.NewBaseline(testPar, nil, urng.NewTaus88(5))
	if err != nil {
		t.Fatal(err)
	}
	ideal := EvaluateMAE(idealMech, Mean, data, 60, testPar.Range())
	baseline := EvaluateMAE(baseMech, Mean, data, 60, testPar.Range())
	ratio := baseline.MAE / ideal.MAE
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("baseline/ideal MAE ratio = %g, want ~1", ratio)
	}
}

func TestEvaluateMAEPanicsOnZeroTrials(t *testing.T) {
	mech, err := core.NewIdealLaplace(testPar, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EvaluateMAE(mech, Mean, []float64{1}, 0, 1)
}

func TestNormalizeFor(t *testing.T) {
	data := []float64{0, 2, 4, 6, 8}
	if got := NormalizeFor(Mean, data, 8); got != 8 {
		t.Errorf("mean normalizer = %g", got)
	}
	if got := NormalizeFor(Variance, data, 8); got != VarianceOf(data) {
		t.Errorf("variance normalizer = %g", got)
	}
	if got := NormalizeFor(Count, data, 8); got != 5 {
		t.Errorf("count normalizer = %g", got)
	}
}

func TestUtilityString(t *testing.T) {
	u := Utility{MAE: 3.2, StdMAE: 1.3, RelErr: 0.086}
	if got := u.String(); got != "3.2±1.3 (8.6%)" {
		t.Errorf("string = %q", got)
	}
}
