// Package query implements the statistical queries of the paper's
// utility evaluation (mean, median, variance, counting) and the
// mean-absolute-error harness behind Tables II-V: each dataset entry
// is noised independently, the query runs on the noised data, and the
// error against the true query output is averaged over repeated
// trials (the paper uses 500 repetitions per entry).
package query

import (
	"fmt"
	"math"
	"sort"

	"ulpdp/internal/core"
)

// Kind identifies a statistical query.
type Kind int

const (
	// Mean is the arithmetic mean.
	Mean Kind = iota
	// Median is the 50th percentile.
	Median
	// Variance is the population variance.
	Variance
	// Count counts entries above the dataset midpoint (a counting
	// query with sensitivity 1).
	Count
)

// Kinds lists all queries in Table order (II, III, IV, V).
var Kinds = []Kind{Mean, Median, Variance, Count}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Mean:
		return "mean"
	case Median:
		return "median"
	case Variance:
		return "variance"
	case Count:
		return "count"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Apply evaluates the query on xs. For Count, threshold is the
// predicate cut (entries > threshold are counted).
func Apply(k Kind, xs []float64, threshold float64) float64 {
	switch k {
	case Mean:
		return MeanOf(xs)
	case Median:
		return MedianOf(xs)
	case Variance:
		return VarianceOf(xs)
	case Count:
		return CountAbove(xs, threshold)
	}
	panic(fmt.Sprintf("query: unknown kind %d", int(k)))
}

// MeanOf returns the arithmetic mean (0 for empty input).
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MedianOf returns the median (0 for empty input). The input is not
// modified.
func MedianOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	n := len(tmp)
	if n%2 == 1 {
		return tmp[n/2]
	}
	return (tmp[n/2-1] + tmp[n/2]) / 2
}

// VarianceOf returns the population variance (0 for empty input).
func VarianceOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := MeanOf(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// CountAbove counts entries strictly above the threshold.
func CountAbove(xs []float64, threshold float64) float64 {
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n)
}

// Utility is the MAE summary of one (mechanism, query, dataset)
// cell: the format of Tables II-V.
type Utility struct {
	// MAE is the mean absolute error of the noised query output.
	MAE float64
	// StdMAE is the standard deviation of the absolute error.
	StdMAE float64
	// RelErr is MAE normalized to the full data range (the
	// percentage shown in the paper's tables).
	RelErr float64
	// Trials is the number of repetitions.
	Trials int
}

// String renders the cell like the paper: "3.2±1.3 (8.6%)".
func (u Utility) String() string {
	return fmt.Sprintf("%.3g±%.2g (%.2g%%)", u.MAE, u.StdMAE, u.RelErr*100)
}

// EvaluateMAE measures a mechanism's utility for one query over a
// dataset: trials independent noisy releases of the full dataset,
// query applied to each, absolute error against the true output. For
// Count the predicate threshold is the dataset midpoint. rangeLen
// normalizes RelErr (pass Hi-Lo); for Variance and Count the paper
// normalizes to the query output scale instead, so rangeLen should
// be the true output magnitude there — NormalizeFor handles this.
func EvaluateMAE(mech core.Mechanism, k Kind, data []float64, trials int, rangeLen float64) Utility {
	if trials < 1 {
		panic("query: at least one trial required")
	}
	mid := midpoint(data)
	truth := Apply(k, data, mid)
	noised := make([]float64, len(data))
	errs := make([]float64, trials)
	for t := 0; t < trials; t++ {
		for i, x := range data {
			noised[i] = mech.Noise(x).Value
		}
		errs[t] = math.Abs(Apply(k, noised, mid) - truth)
	}
	var mean float64
	for _, e := range errs {
		mean += e
	}
	mean /= float64(trials)
	var sd float64
	for _, e := range errs {
		d := e - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(trials))
	u := Utility{MAE: mean, StdMAE: sd, Trials: trials}
	if rangeLen > 0 {
		u.RelErr = mean / rangeLen
	}
	return u
}

// NormalizeFor returns the scale the paper normalizes a query's MAE
// by: the data range for mean/median, the true variance for the
// variance query, and the dataset size for counting.
func NormalizeFor(k Kind, data []float64, rangeLen float64) float64 {
	switch k {
	case Variance:
		if v := VarianceOf(data); v > 0 {
			return v
		}
		return rangeLen
	case Count:
		return float64(len(data))
	default:
		return rangeLen
	}
}

func midpoint(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return (lo + hi) / 2
}
