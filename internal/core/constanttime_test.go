package core

import (
	"math"
	"testing"

	"ulpdp/internal/laplace"
	"ulpdp/internal/urng"
)

func TestConstantTimeCertifies(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		th, err := ExactConstantTimeThreshold(small, 2, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		an := NewAnalyzer(small)
		rep := an.ConstantTimeLoss(th, k)
		if !rep.Bounded(2 * small.Eps) {
			t.Errorf("k=%d: threshold %d loss %g", k, th, rep.MaxLoss)
		}
	}
}

func TestConstantTimeThresholdComparableToResampling(t *testing.T) {
	// With enough candidates the all-miss clamp mass is negligible
	// and the certified threshold approaches plain resampling's.
	rth, err := ResamplingThreshold(small, 2)
	if err != nil {
		t.Fatal(err)
	}
	cth, err := ExactConstantTimeThreshold(small, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if cth < rth/2 {
		t.Errorf("constant-time threshold %d far below resampling %d", cth, rth)
	}
}

func TestConstantTimeSingleCandidateIsThresholdingLike(t *testing.T) {
	// k=1 degenerates to "draw once, clamp if out" — thresholding
	// with edge-specific clamping. Its exact loss must match the
	// thresholding analysis at the same threshold (the conditionals
	// coincide: one draw, clamped to the side it missed).
	an := NewAnalyzer(small)
	th, err := ThresholdingThreshold(small, 2)
	if err != nil {
		t.Fatal(err)
	}
	ct := an.ConstantTimeLoss(th, 1)
	tr := an.ThresholdingLoss(th)
	if math.Abs(ct.MaxLoss-tr.MaxLoss) > 1e-9 || ct.Infinite != tr.Infinite {
		t.Errorf("k=1 loss %g (inf=%v) vs thresholding %g (inf=%v)",
			ct.MaxLoss, ct.Infinite, tr.MaxLoss, tr.Infinite)
	}
}

func TestConstantTimeMechanismBehaviour(t *testing.T) {
	th, err := ExactConstantTimeThreshold(small, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewConstantTime(small, th, 4, nil, urng.NewTaus88(3))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "constant-time" {
		t.Errorf("name %q", m.Name())
	}
	if m.Candidates() != 4 || m.Threshold() != th {
		t.Error("accessors wrong")
	}
	lo := small.Lo - float64(th)*small.Delta
	hi := small.Hi + float64(th)*small.Delta
	for i := 0; i < 20000; i++ {
		r := m.Noise(small.Hi)
		if r.Value < lo-1e-9 || r.Value > hi+1e-9 {
			t.Fatalf("output %g outside window", r.Value)
		}
		if r.Resamples != 0 {
			t.Fatal("constant-time must not report resamples (fixed latency)")
		}
		if r.Clamped && r.Value != lo && r.Value != hi {
			t.Fatalf("clamped output %g not at an edge", r.Value)
		}
	}
}

func TestConstantTimeEmpiricalMatchesAnalysis(t *testing.T) {
	const k = 3
	th := int64(18)
	m, err := NewConstantTime(small, th, k, laplace.FloatLog{FracBits: 50}, urng.NewTaus88(11))
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(small)
	x := small.Hi
	xs := small.QuantizeInput(x)
	counts := map[int64]int{}
	const n = 300000
	for i := 0; i < n; i++ {
		counts[int64(math.Round(m.Noise(x).Value/small.Delta))]++
	}
	// Rebuild the analytical conditional for x at a few points,
	// including both edges.
	yLo := small.LoSteps() - th
	yHi := small.HiSteps() + th
	missLo := an.tailAtMost(yLo - xs - 1)
	missHi := an.tailAtLeast(yHi - xs + 1)
	q := missLo + missHi
	accept := (1 - math.Pow(q, k)) / (1 - q)
	cond := func(y int64) float64 {
		p := an.probK(y-xs) * accept
		if y == yLo {
			p += missLo * math.Pow(q, k-1)
		}
		if y == yHi {
			p += missHi * math.Pow(q, k-1)
		}
		return p
	}
	for _, y := range []int64{xs, xs - 4, yLo, yHi} {
		want := cond(y)
		got := float64(counts[y]) / n
		if math.Abs(got-want) > 5*math.Sqrt(want/n)+2e-4 {
			t.Errorf("P(y=%d) = %g, want %g", y, got, want)
		}
	}
}

func TestConstantTimePanics(t *testing.T) {
	if _, err := NewConstantTime(small, -1, 2, nil, urng.NewTaus88(1)); err == nil {
		t.Error("negative threshold should be rejected")
	}
	if _, err := NewConstantTime(small, 5, 0, nil, urng.NewTaus88(1)); err == nil {
		t.Error("k=0 should be rejected")
	}
	cases := []func(){
		func() { NewAnalyzer(small).ConstantTimeLoss(-1, 2) },
		func() { NewAnalyzer(small).ConstantTimeLoss(5, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
	if _, err := ExactConstantTimeThreshold(small, 1, 2); err == nil {
		t.Error("mult=1 should be rejected")
	}
	if _, err := ExactConstantTimeThreshold(small, 2, 0); err == nil {
		t.Error("k=0 should be rejected")
	}
}
