package core

import (
	"fmt"
	"math"
)

// The closed-form threshold calculators below are the re-derivations
// of the paper's eqs. (13) and (15) recorded in DESIGN.md. Both are
// sufficient (conservative) bounds obtained from ⌊x⌋ ∈ (x−1, x] and
// ⌈x⌉ ∈ [x, x+1); the exact Analyzer certifies the resulting
// mechanisms and the tests assert the bound is honored.
//
// Notation: d = Hi−Lo, λ = d/ε, a = εΔ/d (one noise step in units of
// λ), c = B_u·ln2, D = d/Δ (adjacent-extreme input distance in
// steps). The worst-case loss target is n·ε for a multiplier n > 1.

// pointRatioBound returns the largest real k for which the
// point-mass ratio p(k)/p(k+D) provably stays below exp(mult·ε):
//
//	p(k)   <= (E(k)·S + 1)/2^{B_u+1},  p(k+D) >= (E(k)·S·e^{-ε} − 1)/2^{B_u+1}
//
// with E(k) = exp(c − a·k) and S = e^{a/2} − e^{-a/2}, which yields
//
//	k <= (d/(εΔ))·(B_u·ln2 + ln S + ln(e^{(mult−1)ε} − 1) − ln(e^{mult·ε} + 1)).
//
// As a side effect the bound keeps the retained region hole-free:
// the derivation forces the real-valued count E(k)·S·e^{-ε} above 1,
// so every retained step has at least one URNG draw.
func pointRatioBound(par Params, mult float64) float64 {
	eps := par.Eps
	a := eps * par.Delta / par.Range()
	s := math.Exp(a/2) - math.Exp(-a/2)
	arg := math.Log(s) + math.Log(math.Expm1((mult-1)*eps)) - math.Log(math.Exp(mult*eps)+1)
	return (1 / a) * (float64(par.Bu)*math.Ln2 + arg)
}

// ResamplingThreshold returns the largest threshold (in steps of Δ)
// for which the resampling mechanism's privacy loss provably stays
// below mult·ε (the re-derived eq. 13): n_th1 = ⌊pointRatioBound⌋.
// The certified output range is [Lo − n_th1·Δ, Hi + n_th1·Δ]. An
// error is returned when no positive threshold satisfies the bound
// (the RNG resolution is too coarse for the requested multiplier —
// the regime of Fig. 15(b)).
func ResamplingThreshold(par Params, mult float64) (int64, error) {
	if err := par.Validate(); err != nil {
		return 0, err
	}
	if mult <= 1 {
		return 0, fmt.Errorf("core: loss multiplier %g must exceed 1", mult)
	}
	// When the output word saturates before the inverse-CDF bound
	// (L/Δ > 2^(B_y-1)-1), the saturation step carries the whole
	// clipped tail as one heavy atom. The acceptance window must
	// exclude it — the atom's mass is far above the neighbouring
	// point masses, so accepting it breaks the ratio bound. The
	// largest admissible threshold keeps even the extreme input's
	// window strictly below the atom: t + D <= KCap - 1.
	return clampThreshold(par, pointRatioBound(par, mult), par.FxP().KCap()-par.RangeSteps()-1)
}

// PaperThresholdingThreshold is the paper's eq. 15, verbatim: the
// largest k with the boundary-atom tail ratio
// Pr[n >= kΔ]/Pr[n >= (k+D)Δ] provably below exp(mult·ε), via
//
//	⌊m1(k)⌋/⌊m1(k+D)⌋ <= m1(k)/(m1(k)e^{-ε} − 1) <= e^{mult·ε}
//	⟹ k <= ½ + (d/(εΔ))·(B_u·ln2 + ln(e^{-ε} − e^{-mult·ε})).
//
// CAVEAT (a finding of this reproduction, recorded in DESIGN.md and
// EXPERIMENTS.md): eq. 15 constrains only the boundary atoms. For
// many parameters the resulting threshold reaches past the first
// zero-probability hole in the RNG's tail, and interior outputs in
// the hole region still reveal some inputs exactly — the exact
// analyzer reports infinite loss. Use ThresholdingThreshold, which
// additionally enforces the interior point-mass condition, for a
// sound threshold.
func PaperThresholdingThreshold(par Params, mult float64) (int64, error) {
	if err := par.Validate(); err != nil {
		return 0, err
	}
	if mult <= 1 {
		return 0, fmt.Errorf("core: loss multiplier %g must exceed 1", mult)
	}
	eps := par.Eps
	a := eps * par.Delta / par.Range()
	arg := math.Log(math.Exp(-eps) - math.Exp(-mult*eps))
	k := 0.5 + (1/a)*(float64(par.Bu)*math.Ln2+arg)
	return clampThreshold(par, k, par.FxP().MaxK())
}

// ThresholdingThreshold returns a certified threshold (in steps of Δ)
// for the thresholding mechanism: the paper's boundary condition
// (eq. 15) and the interior point-mass condition both hold, so the
// exact worst-case loss is at most mult·ε. Interior outputs at offset
// o < t need every noise step up to o+D bounded pairwise, which the
// pointRatioBound guarantees for o <= bound; hence
//
//	n_th2 = min(eq. 15, ⌊pointRatioBound⌋).
func ThresholdingThreshold(par Params, mult float64) (int64, error) {
	paper, err := PaperThresholdingThreshold(par, mult)
	if err != nil {
		return 0, err
	}
	// Interior outputs at offset o < t involve point masses up to
	// o + D, so the point-ratio bound applies; and when the output
	// word saturates, the window must keep the saturation atom on the
	// clamped boundary (t <= KCap - D) so interior outputs never see
	// it — the boundary tails themselves are unaffected by
	// saturation, which only moves mass within the tail.
	interior, err := clampThreshold(par, pointRatioBound(par, mult), par.FxP().KCap()-par.RangeSteps())
	if err != nil {
		return 0, err
	}
	if interior < paper {
		return interior, nil
	}
	return paper, nil
}

// clampThreshold floors the real-valued bound k and clamps it into
// [1, capSteps].
func clampThreshold(par Params, k float64, capSteps int64) (int64, error) {
	if math.IsNaN(k) || k < 1 || capSteps < 1 {
		return 0, fmt.Errorf("core: no positive certified threshold exists for B_u=%d, B_y=%d, Δ=%g",
			par.Bu, par.By, par.Delta)
	}
	t := int64(math.Floor(k))
	if t > capSteps {
		t = capSteps
	}
	return t, nil
}

// ExactResamplingThreshold searches for the largest threshold whose
// exact worst-case loss (per the Analyzer) is at most mult·ε. It is
// the tight counterpart of ResamplingThreshold, useful to quantify
// how conservative the closed form is. The search is monotone-bisection
// over [0, MaxK].
func ExactResamplingThreshold(par Params, mult float64) (int64, error) {
	if err := par.Validate(); err != nil {
		return 0, err
	}
	if mult <= 1 {
		return 0, fmt.Errorf("core: loss multiplier %g must exceed 1", mult)
	}
	an := CachedAnalyzer(par)
	ok := func(t int64) bool {
		return an.ResamplingLoss(t).Bounded(mult * par.Eps)
	}
	return searchThreshold(par, ok)
}

// ExactThresholdingThreshold is the exact-search counterpart of
// ThresholdingThreshold.
func ExactThresholdingThreshold(par Params, mult float64) (int64, error) {
	if err := par.Validate(); err != nil {
		return 0, err
	}
	if mult <= 1 {
		return 0, fmt.Errorf("core: loss multiplier %g must exceed 1", mult)
	}
	an := CachedAnalyzer(par)
	ok := func(t int64) bool {
		return an.ThresholdingLoss(t).Bounded(mult * par.Eps)
	}
	return searchThreshold(par, ok)
}

// ExactConstantTimeThreshold searches for the largest threshold whose
// constant-time-resampling loss (k parallel candidates) is certified
// at mult·ε by the exact analyzer.
func ExactConstantTimeThreshold(par Params, mult float64, k int) (int64, error) {
	if err := par.Validate(); err != nil {
		return 0, err
	}
	if mult <= 1 {
		return 0, fmt.Errorf("core: loss multiplier %g must exceed 1", mult)
	}
	if k < 1 {
		return 0, fmt.Errorf("core: need at least one candidate sample")
	}
	an := CachedAnalyzer(par)
	return searchThreshold(par, func(t int64) bool {
		return an.ConstantTimeLoss(t, k).Bounded(mult * par.Eps)
	})
}

func searchThreshold(par Params, ok func(int64) bool) (int64, error) {
	hi := par.FxP().MaxK()
	if !ok(1) {
		return 0, fmt.Errorf("core: no positive threshold achieves the target loss")
	}
	// Loss is monotone non-decreasing in the threshold (a larger
	// guard region only adds lower-probability outputs), so bisect.
	lo := int64(1)
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}
