// Package core implements the paper's primary contribution: local
// differential privacy mechanisms for fixed-point ultra-low-power
// hardware, the resampling and thresholding guards that restore the
// ε-LDP guarantee the naive implementation loses, the closed-form
// threshold calculators (eqs. 13 and 15, re-derived), and an exact
// privacy-loss analyzer that certifies — by enumerating the discrete
// output distributions — whether a mechanism's worst-case loss is
// finite and below a target.
package core

import (
	"fmt"
	"math"

	"ulpdp/internal/laplace"
)

// Params describes one sensor's privacy configuration: its range
// [Lo, Hi], the per-report privacy parameter ε, and the fixed-point
// RNG geometry (B_u uniform bits, B_y output bits, step Δ).
//
// Sensor values are quantized onto the Δ grid before noising — on a
// ULP system the sensor output is itself a fixed-point word sharing
// the datapath's resolution, and the privacy analysis requires the
// input and noise grids to coincide.
type Params struct {
	Lo, Hi float64 // sensor range [m, M]
	Eps    float64 // per-report privacy parameter ε
	Bu     int     // URNG magnitude bits
	By     int     // signed noise output bits
	Delta  float64 // quantization step Δ
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if !(p.Hi > p.Lo) {
		return fmt.Errorf("core: empty sensor range [%g, %g]", p.Lo, p.Hi)
	}
	if !(p.Eps > 0) {
		return fmt.Errorf("core: non-positive epsilon %g", p.Eps)
	}
	if err := p.FxP().Validate(); err != nil {
		return err
	}
	if p.RangeSteps() < 1 {
		return fmt.Errorf("core: range %g narrower than one step %g", p.Hi-p.Lo, p.Delta)
	}
	return nil
}

// Range returns the sensor range length d = Hi − Lo.
func (p Params) Range() float64 { return p.Hi - p.Lo }

// Lambda returns the Laplace scale λ = d/ε the local mechanism needs.
func (p Params) Lambda() float64 { return p.Range() / p.Eps }

// FxP returns the fixed-point RNG parameters induced by p.
func (p Params) FxP() laplace.FxPParams {
	return laplace.FxPParams{Bu: p.Bu, By: p.By, Delta: p.Delta, Lambda: p.Lambda()}
}

// RangeSteps returns d in units of Δ, rounded to the grid.
func (p Params) RangeSteps() int64 {
	return int64(math.Round(p.Range() / p.Delta))
}

// LoSteps returns Lo in units of Δ, rounded to the grid.
func (p Params) LoSteps() int64 { return int64(math.Round(p.Lo / p.Delta)) }

// HiSteps returns Hi in units of Δ, rounded to the grid.
func (p Params) HiSteps() int64 { return p.LoSteps() + p.RangeSteps() }

// QuantizeInput rounds a sensor value onto the Δ grid and clamps it
// to [Lo, Hi], returning the value in steps.
func (p Params) QuantizeInput(x float64) int64 {
	s := int64(math.Round(x / p.Delta))
	if lo := p.LoSteps(); s < lo {
		s = lo
	}
	if hi := p.HiSteps(); s > hi {
		s = hi
	}
	return s
}

// StepValue converts a step count back to a value.
func (p Params) StepValue(s int64) float64 { return float64(s) * p.Delta }
