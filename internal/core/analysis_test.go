package core

import (
	"math"
	"testing"

	"ulpdp/internal/laplace"
)

// bigGrid is large enough (output span > 2^12) that scanLoss takes
// the parallel path.
var bigGrid = Params{Lo: 0, Hi: 20, Eps: 0.5, Bu: 17, By: 14, Delta: 20.0 / 512}

func TestParallelScanMatchesSequential(t *testing.T) {
	an := NewAnalyzer(bigGrid)
	if an.MaxK() < 1<<12 {
		t.Fatalf("grid too small (%d) to exercise the parallel path", an.MaxK())
	}
	th, err := ThresholdingThreshold(bigGrid, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Parallel result (normal call).
	par := an.ThresholdingLoss(th)
	// Sequential closure-kernel reference over the same window.
	seq := an.legacyThresholdingLoss(th)
	if par != seq {
		t.Errorf("parallel %+v != sequential %+v", par, seq)
	}
}

func TestParallelBaselineInfiniteDetection(t *testing.T) {
	an := NewAnalyzer(bigGrid)
	rep := an.BaselineLoss()
	if !rep.Infinite {
		t.Fatal("baseline should be infinite")
	}
	// Deterministic worst output: the earliest infinite y.
	rep2 := an.BaselineLoss()
	if rep != rep2 {
		t.Errorf("parallel infinite detection not deterministic: %+v vs %+v", rep, rep2)
	}
}

func TestMergeLoss(t *testing.T) {
	inf1 := LossReport{Infinite: true, MaxLoss: math.Inf(1), WorstOutput: 5}
	inf2 := LossReport{Infinite: true, MaxLoss: math.Inf(1), WorstOutput: 3}
	fin1 := LossReport{MaxLoss: 1.0, WorstOutput: 9}
	fin2 := LossReport{MaxLoss: 2.0, WorstOutput: 11}
	if got := mergeLoss(inf1, inf2); got.WorstOutput != 3 {
		t.Errorf("two infinities: kept y=%d, want 3", got.WorstOutput)
	}
	if got := mergeLoss(fin1, inf1); !got.Infinite {
		t.Error("infinite must dominate")
	}
	if got := mergeLoss(inf1, fin1); !got.Infinite {
		t.Error("infinite must dominate (other order)")
	}
	if got := mergeLoss(fin1, fin2); got.MaxLoss != 2 {
		t.Error("larger loss must win")
	}
	if got := mergeLoss(fin2, fin1); got.MaxLoss != 2 {
		t.Error("larger loss must win (other order)")
	}
	// Tie: earlier (first argument) wins, matching sequential order.
	tie := LossReport{MaxLoss: 2.0, WorstOutput: 99}
	if got := mergeLoss(fin2, tie); got.WorstOutput != 11 {
		t.Error("tie should keep the earlier report")
	}
}

func TestNewAnalyzerFromPMFValidation(t *testing.T) {
	par := small
	good, maxK := laplace.NewDist(par.FxP()).PMF()
	if an := NewAnalyzerFromPMF(par, good, maxK); an.MaxK() != maxK {
		t.Error("maxK mismatch")
	}
	cases := []func(){
		func() { NewAnalyzerFromPMF(par, good[:len(good)-1], maxK) }, // wrong length
		func() {
			bad := append([]float64{}, good...)
			bad[0] = -0.1
			NewAnalyzerFromPMF(par, bad, maxK)
		},
		func() {
			bad := append([]float64{}, good...)
			bad[0] += 0.5 // mass != 1
			NewAnalyzerFromPMF(par, bad, maxK)
		},
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestAnalyzerFromPMFMatchesNative(t *testing.T) {
	pmf, maxK := laplace.NewDist(small.FxP()).PMF()
	a := NewAnalyzer(small)
	b := NewAnalyzerFromPMF(small, pmf, maxK)
	th, err := ThresholdingThreshold(small, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ra, rb := a.ThresholdingLoss(th), b.ThresholdingLoss(th); ra != rb {
		t.Errorf("native %+v vs PMF-fed %+v", ra, rb)
	}
	if a.Params() != small {
		t.Error("params accessor")
	}
}

func TestMechanismAccessors(t *testing.T) {
	// Exercise the small accessors across all mechanism types.
	type withParams interface{ Params() Params }
	ideal, err := NewIdealLaplace(small, 1)
	if err != nil {
		t.Fatal(err)
	}
	ms := []Mechanism{ideal}
	for _, m := range ms {
		if m.Name() == "" {
			t.Error("empty name")
		}
		if wp, ok := m.(withParams); ok && wp.Params() != small {
			t.Error("params accessor mismatch")
		}
	}
}
