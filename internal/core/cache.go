package core

// Process-wide analyzer cache. Every guarantee in the pipeline —
// threshold certification, the Fig. 8 profile, Algorithm 1 charging —
// funnels through an Analyzer, and the experiment suite, the budget
// controller and the public Certify entry points all rebuild the
// exact PMF for the same Params over and over. Analyzers are
// immutable after construction (the kernels only read pmf/cum), so
// one instance can serve any number of concurrent certifications;
// this cache shares them.
//
// Contract: the cache key is the full Params value (plus, for
// non-Laplace families, a comparable PMF identity), and an Analyzer
// is a pure function of its key — there is nothing to invalidate.
// Entries are evicted LRU once the cache exceeds either an entry
// count or a total-PMF-size budget, so long-running services sweeping
// many sensor configurations cannot grow it without bound.

import (
	"container/list"
	"reflect"
	"sync"
	"sync/atomic"
)

const (
	// cacheMaxEntries bounds the number of cached analyzers.
	cacheMaxEntries = 64
	// cacheMaxSteps bounds the total retained PMF length (entries are
	// ~16 bytes per step counting the prefix sums).
	cacheMaxSteps = 1 << 21
)

type cacheKey struct {
	par Params
	id  any // nil for the native Laplace RNG; family identity otherwise
}

type cacheEntry struct {
	key cacheKey
	an  *Analyzer
}

var (
	cacheMu     sync.Mutex
	cacheByKey  = map[cacheKey]*list.Element{}
	cacheLRU    list.List // front = most recently used
	cacheSteps  int64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
)

// CachedAnalyzer returns the process-wide shared Analyzer for par,
// building (and caching) it on first use. It panics on invalid
// parameters, like NewAnalyzer. The returned Analyzer is immutable
// and safe for concurrent use.
func CachedAnalyzer(par Params) *Analyzer {
	mustValidate(par)
	return cachedAnalyzer(cacheKey{par: par}, func() *Analyzer { return NewAnalyzer(par) })
}

// CachedAnalyzerPMF is the cache hook for arbitrary noise families:
// id identifies the PMF (typically the family value plus its
// geometry) and must be comparable; build materializes the PMF only
// on a miss, so a hit skips both the PMF enumeration and the analyzer
// construction. A nil or non-comparable id bypasses the cache.
func CachedAnalyzerPMF(par Params, id any, build func() ([]float64, int64)) *Analyzer {
	mustValidate(par)
	// Value-level comparability: id may be (or contain) an interface
	// whose dynamic type is not comparable, which would panic as a
	// map key even though the static type passes.
	if id == nil || !reflect.ValueOf(id).Comparable() {
		cacheMisses.Add(1)
		pmf, maxK := build()
		return NewAnalyzerFromPMF(par, pmf, maxK)
	}
	return cachedAnalyzer(cacheKey{par: par, id: id}, func() *Analyzer {
		pmf, maxK := build()
		return NewAnalyzerFromPMF(par, pmf, maxK)
	})
}

func cachedAnalyzer(key cacheKey, build func() *Analyzer) *Analyzer {
	cacheMu.Lock()
	if el, ok := cacheByKey[key]; ok {
		cacheLRU.MoveToFront(el)
		an := el.Value.(*cacheEntry).an
		cacheMu.Unlock()
		cacheHits.Add(1)
		return an
	}
	cacheMu.Unlock()
	cacheMisses.Add(1)
	// Build outside the lock so misses for different keys proceed in
	// parallel; a rare duplicate build for the same key is resolved
	// below in favor of the first instance inserted.
	an := build()
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if el, ok := cacheByKey[key]; ok {
		cacheLRU.MoveToFront(el)
		return el.Value.(*cacheEntry).an
	}
	cacheByKey[key] = cacheLRU.PushFront(&cacheEntry{key: key, an: an})
	cacheSteps += int64(len(an.pmf))
	for (len(cacheByKey) > cacheMaxEntries || cacheSteps > cacheMaxSteps) && len(cacheByKey) > 1 {
		el := cacheLRU.Back()
		ent := el.Value.(*cacheEntry)
		cacheLRU.Remove(el)
		delete(cacheByKey, ent.key)
		cacheSteps -= int64(len(ent.an.pmf))
	}
	return an
}

// AnalyzerCacheStats reports the cumulative cache hit and miss
// counts since process start (or the last ResetAnalyzerCache).
func AnalyzerCacheStats() (hits, misses uint64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// ResetAnalyzerCache empties the cache and zeroes the counters.
// Intended for tests and long-lived processes that want a clean
// measurement window.
func ResetAnalyzerCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	cacheByKey = map[cacheKey]*list.Element{}
	cacheLRU.Init()
	cacheSteps = 0
	cacheHits.Store(0)
	cacheMisses.Store(0)
}
