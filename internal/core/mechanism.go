package core

import (
	"errors"
	"math"

	"ulpdp/internal/laplace"
	"ulpdp/internal/urng"
)

// Result is one noised report.
type Result struct {
	// Value is the noised output.
	Value float64
	// Resamples counts how many extra noise draws the resampling
	// guard needed (always 0 for other mechanisms). Each resample
	// costs one additional hardware cycle.
	Resamples int
	// Clamped reports whether the thresholding guard clamped the
	// output to a boundary.
	Clamped bool
	// Degraded reports that the resampling guard exhausted its draw
	// budget and fell back to the thresholding clamp (fail-closed
	// behaviour under a faulty or adversarial RNG; see DESIGN.md §8).
	Degraded bool
}

// Mechanism is a local-DP noising mechanism for scalar sensor values.
type Mechanism interface {
	// Noise perturbs one sensor value.
	Noise(x float64) Result
	// Name identifies the mechanism in reports.
	Name() string
}

// IdealLaplace is the reference mechanism: real-valued Lap(d/ε) noise
// added to the (quantized) sensor value. It guarantees ε-LDP exactly
// but is unimplementable on finite-precision hardware — the point of
// the paper.
type IdealLaplace struct {
	par Params
	src *laplace.Ideal
}

// NewIdealLaplace returns the reference mechanism. Parameters are
// caller configuration: invalid ones are a returned error, not a
// panic (DESIGN.md §6).
func NewIdealLaplace(par Params, seed uint64) (*IdealLaplace, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	src, err := laplace.NewIdeal(par.Lambda(), seed)
	if err != nil {
		return nil, err
	}
	return &IdealLaplace{par: par, src: src}, nil
}

// Noise implements Mechanism.
func (m *IdealLaplace) Noise(x float64) Result {
	xq := m.par.StepValue(m.par.QuantizeInput(x))
	return Result{Value: xq + m.src.Sample()}
}

// Name implements Mechanism.
func (m *IdealLaplace) Name() string { return "ideal" }

// Params returns the mechanism's parameters.
func (m *IdealLaplace) Params() Params { return m.par }

// Baseline is the naive fixed-point implementation of Section III-A:
// the FxP Laplace RNG's output is added to the sensor value with no
// guard. Its utility matches the ideal mechanism, but its worst-case
// privacy loss is infinite (Analyzer proves this).
type Baseline struct {
	par Params
	rng *laplace.Sampler
}

// NewBaseline builds the naive FxP mechanism. log == nil selects the
// CORDIC datapath. Invalid parameters are a returned error.
func NewBaseline(par Params, log laplace.LogUnit, src urng.Source) (*Baseline, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	rng, err := laplace.NewSampler(par.FxP(), log, src)
	if err != nil {
		return nil, err
	}
	return &Baseline{par: par, rng: rng}, nil
}

// Noise implements Mechanism.
func (m *Baseline) Noise(x float64) Result {
	xs := m.par.QuantizeInput(x)
	return Result{Value: m.par.StepValue(xs + m.rng.SampleK())}
}

// Name implements Mechanism.
func (m *Baseline) Name() string { return "fxp-baseline" }

// Params returns the mechanism's parameters.
func (m *Baseline) Params() Params { return m.par }

// maxResampleDraws bounds the resampling loop. The acceptance region
// always contains the distribution's bulk (more than half the mass
// for any certified threshold), so an honest RNG hits this bound with
// probability below 2^-1000; reaching it indicates a faulty or
// adversarial RNG, and the mechanism degrades to the thresholding
// clamp instead of looping or panicking (fail closed; DESIGN.md §8).
const maxResampleDraws = 1024

// Resampling is the first guard of Section III-B: noise is redrawn
// until the noised output lies within [Lo − T, Hi + T]. With the
// threshold from ResamplingThreshold the worst-case privacy loss is
// bounded by n·ε.
type Resampling struct {
	par Params
	rng *laplace.Sampler
	t   int64 // threshold in steps
}

// NewResampling builds the resampling mechanism with threshold t
// expressed in steps of Δ (use ResamplingThreshold to compute the
// certified value). Invalid parameters or t < 0 are a returned error.
func NewResampling(par Params, t int64, log laplace.LogUnit, src urng.Source) (*Resampling, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	if t < 0 {
		return nil, errors.New("core: negative resampling threshold")
	}
	rng, err := laplace.NewSampler(par.FxP(), log, src)
	if err != nil {
		return nil, err
	}
	return &Resampling{par: par, rng: rng, t: t}, nil
}

// Threshold returns the threshold in steps.
func (m *Resampling) Threshold() int64 { return m.t }

// Noise implements Mechanism. If the loop exhausts maxResampleDraws —
// impossible for an honest RNG, so in practice a faulty one — the
// last sample is clamped to the window edge (the thresholding guard's
// certified behaviour) and the result is marked Degraded.
func (m *Resampling) Noise(x float64) Result {
	xs := m.par.QuantizeInput(x)
	lo := m.par.LoSteps() - m.t
	hi := m.par.HiSteps() + m.t
	var y int64
	for i := 0; i < maxResampleDraws; i++ {
		y = xs + m.rng.SampleK()
		if y >= lo && y <= hi {
			return Result{Value: m.par.StepValue(y), Resamples: i}
		}
	}
	if y < lo {
		y = lo
	} else {
		y = hi
	}
	return Result{Value: m.par.StepValue(y), Resamples: maxResampleDraws,
		Clamped: true, Degraded: true}
}

// Name implements Mechanism.
func (m *Resampling) Name() string { return "resampling" }

// Params returns the mechanism's parameters.
func (m *Resampling) Params() Params { return m.par }

// Thresholding is the second guard of Section III-B: the noised
// output is clamped to [Lo − T, Hi + T]. The boundary values absorb
// the tail mass (Fig. 7); with the threshold from
// ThresholdingThreshold the worst-case loss is bounded by n·ε. It
// needs exactly one noise draw, so it is the energy-efficient option.
type Thresholding struct {
	par Params
	rng *laplace.Sampler
	t   int64 // threshold in steps
}

// NewThresholding builds the thresholding mechanism with threshold t
// in steps of Δ (use ThresholdingThreshold for the certified value).
// t == 0 degenerates into the randomized-response configuration of
// Section VI-E. Invalid parameters or t < 0 are a returned error.
func NewThresholding(par Params, t int64, log laplace.LogUnit, src urng.Source) (*Thresholding, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	if t < 0 {
		return nil, errors.New("core: negative thresholding threshold")
	}
	rng, err := laplace.NewSampler(par.FxP(), log, src)
	if err != nil {
		return nil, err
	}
	return &Thresholding{par: par, rng: rng, t: t}, nil
}

// Threshold returns the threshold in steps.
func (m *Thresholding) Threshold() int64 { return m.t }

// Noise implements Mechanism.
func (m *Thresholding) Noise(x float64) Result {
	xs := m.par.QuantizeInput(x)
	y := xs + m.rng.SampleK()
	lo := m.par.LoSteps() - m.t
	hi := m.par.HiSteps() + m.t
	clamped := false
	if y < lo {
		y, clamped = lo, true
	}
	if y > hi {
		y, clamped = hi, true
	}
	return Result{Value: m.par.StepValue(y), Clamped: clamped}
}

// Name implements Mechanism.
func (m *Thresholding) Name() string { return "thresholding" }

// Params returns the mechanism's parameters.
func (m *Thresholding) Params() Params { return m.par }

// ConstantTime is the timing-channel-safe resampling variant of
// Section IV-C: k candidate noise samples are drawn at once (one
// cycle with k parallel RNG datapaths); the first candidate landing
// inside the window is reported, and if all miss, the last candidate
// is clamped to the window edge it fell beyond. Latency is constant —
// the number of resamples no longer depends on the sensor value.
// Certify thresholds with Analyzer.ConstantTimeLoss.
type ConstantTime struct {
	par Params
	rng *laplace.Sampler
	t   int64
	k   int
}

// NewConstantTime builds the constant-time mechanism with threshold t
// (steps of Δ) and k parallel candidates. Invalid parameters, t < 0,
// or k < 1 are a returned error.
func NewConstantTime(par Params, t int64, k int, log laplace.LogUnit, src urng.Source) (*ConstantTime, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	if t < 0 {
		return nil, errors.New("core: negative constant-time threshold")
	}
	if k < 1 {
		return nil, errors.New("core: need at least one candidate sample")
	}
	rng, err := laplace.NewSampler(par.FxP(), log, src)
	if err != nil {
		return nil, err
	}
	return &ConstantTime{par: par, rng: rng, t: t, k: k}, nil
}

// Threshold returns the threshold in steps.
func (m *ConstantTime) Threshold() int64 { return m.t }

// Candidates returns the parallel sample count k.
func (m *ConstantTime) Candidates() int { return m.k }

// Noise implements Mechanism. Resamples is always k−1 draws' worth of
// work but zero extra cycles; Clamped reports the all-missed
// fallback.
func (m *ConstantTime) Noise(x float64) Result {
	xs := m.par.QuantizeInput(x)
	lo := m.par.LoSteps() - m.t
	hi := m.par.HiSteps() + m.t
	var y int64
	for i := 0; i < m.k; i++ {
		y = xs + m.rng.SampleK()
		if y >= lo && y <= hi {
			return Result{Value: m.par.StepValue(y)}
		}
	}
	if y < lo {
		y = lo
	} else {
		y = hi
	}
	return Result{Value: m.par.StepValue(y), Clamped: true}
}

// Name implements Mechanism.
func (m *ConstantTime) Name() string { return "constant-time" }

// Params returns the mechanism's parameters.
func (m *ConstantTime) Params() Params { return m.par }

// RandomizedResponse is the DP-Box's categorical mode (Section VI-E):
// thresholding with threshold zero plus a 1-bit output stage that
// rounds the clamped value to the nearest of {Lo, Hi}. For binary
// inputs this is exactly Warner's randomized response with flip
// probability q = Pr[x + n crosses the midpoint].
type RandomizedResponse struct {
	par Params
	rng *laplace.Sampler
}

// NewRandomizedResponse builds the categorical mechanism. Inputs are
// snapped to the nearer of {Lo, Hi}. Invalid parameters are a
// returned error.
func NewRandomizedResponse(par Params, log laplace.LogUnit, src urng.Source) (*RandomizedResponse, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	rng, err := laplace.NewSampler(par.FxP(), log, src)
	if err != nil {
		return nil, err
	}
	return &RandomizedResponse{par: par, rng: rng}, nil
}

// Noise implements Mechanism. The result Value is always Lo or Hi.
func (m *RandomizedResponse) Noise(x float64) Result {
	// Snap input to the nearer category.
	xs := m.par.LoSteps()
	if x-m.par.Lo > m.par.Hi-x {
		xs = m.par.HiSteps()
	}
	y := xs + m.rng.SampleK()
	mid := float64(m.par.LoSteps()+m.par.HiSteps()) / 2
	v := m.par.Lo
	if float64(y) > mid {
		v = m.par.Hi
	}
	return Result{Value: v, Clamped: true}
}

// Name implements Mechanism.
func (m *RandomizedResponse) Name() string { return "randomized-response" }

// Params returns the mechanism's parameters.
func (m *RandomizedResponse) Params() Params { return m.par }

// FlipProbs returns the exact per-direction flip probabilities
// (qLoHi = Pr[report Hi | x = Lo], qHiLo = Pr[report Lo | x = Hi]),
// computed from the RNG's closed-form PMF. They differ only when the
// midpoint lies on the grid (even range), because a report exactly at
// the midpoint rounds to Lo.
func (m *RandomizedResponse) FlipProbs() (qLoHi, qHiLo float64) {
	d := laplace.NewDist(m.par.FxP())
	ds := m.par.RangeSteps()
	// x = Lo flips iff noise k > ds/2, i.e. k >= floor(ds/2)+1.
	qLoHi = d.TailMag(ds/2+1) / 2
	// x = Hi flips iff y <= mid, i.e. noise -k with k >= ceil(ds/2).
	qHiLo = d.TailMag((ds+1)/2) / 2
	return qLoHi, qHiLo
}

// RREpsilon returns the effective ε of the binary mechanism: the
// worst-case log likelihood ratio over both outputs and both inputs.
func (m *RandomizedResponse) RREpsilon() float64 {
	q1, q2 := m.FlipProbs()
	return math.Max(math.Log((1-q2)/q1), math.Log((1-q1)/q2))
}
