package core

// The original closure-based certification kernel, retained as the
// executable specification of the optimized kernels in kernels.go.
// It evaluates an arbitrary conditional P(y|x) cell by cell, so its
// correctness is self-evident from eq. 4; the differential tests
// (kernel_diff_test.go) assert that every optimized kernel returns
// reports identical to it field for field, tie-breaks included.

import "math"

// legacyScanLoss computes the worst-case loss given a conditional
// probability function P(y|x) over output steps [yLo, yHi] (absolute
// grid) and inputs [LoSteps, HiSteps], one closure call per cell.
func (a *Analyzer) legacyScanLoss(yLo, yHi int64, cond func(y, x int64) float64) LossReport {
	rep := LossReport{MaxLoss: 0}
	xLo, xHi := a.par.LoSteps(), a.par.HiSteps()
	for y := yLo; y <= yHi; y++ {
		pMax, pMin := math.Inf(-1), math.Inf(1)
		var xMax, xMin int64
		for x := xLo; x <= xHi; x++ {
			p := cond(y, x)
			if p > pMax {
				pMax, xMax = p, x
			}
			if p < pMin {
				pMin, xMin = p, x
			}
		}
		if pMax <= 0 {
			continue // output unreachable from every input
		}
		if pMin <= 0 {
			return LossReport{MaxLoss: math.Inf(1), Infinite: true,
				WorstOutput: y, WorstX1: xMax, WorstX2: xMin}
		}
		if loss := math.Log(pMax / pMin); loss > rep.MaxLoss {
			rep = LossReport{MaxLoss: loss, WorstOutput: y, WorstX1: xMax, WorstX2: xMin}
		}
	}
	return rep
}

// legacyBaselineLoss is BaselineLoss through the reference kernel.
func (a *Analyzer) legacyBaselineLoss() LossReport {
	yLo := a.par.LoSteps() - a.maxK
	yHi := a.par.HiSteps() + a.maxK
	return a.legacyScanLoss(yLo, yHi, func(y, x int64) float64 {
		return a.probK(y - x)
	})
}

// legacyThresholdingLoss is ThresholdingLoss through the reference
// kernel.
func (a *Analyzer) legacyThresholdingLoss(t int64) LossReport {
	if t < 0 {
		panic("core: negative threshold")
	}
	yLo := a.par.LoSteps() - t
	yHi := a.par.HiSteps() + t
	return a.legacyScanLoss(yLo, yHi, a.thresholdingCond(t))
}

// legacyResamplingLoss is ResamplingLoss through the reference
// kernel.
func (a *Analyzer) legacyResamplingLoss(t int64) LossReport {
	if t < 0 {
		panic("core: negative threshold")
	}
	yLo := a.par.LoSteps() - t
	yHi := a.par.HiSteps() + t
	xLo, xHi := a.par.LoSteps(), a.par.HiSteps()
	z := make([]float64, xHi-xLo+1)
	for x := xLo; x <= xHi; x++ {
		z[x-xLo] = a.massBetween(yLo-x, yHi-x)
	}
	return a.legacyScanLoss(yLo, yHi, func(y, x int64) float64 {
		return a.probK(y-x) / z[x-xLo]
	})
}

// legacyConstantTimeLoss is ConstantTimeLoss through the reference
// kernel, with the clamp-atom powers recomputed per boundary cell as
// the original code did.
func (a *Analyzer) legacyConstantTimeLoss(t int64, k int) LossReport {
	if t < 0 {
		panic("core: negative threshold")
	}
	if k < 1 {
		panic("core: need at least one candidate sample")
	}
	yLo := a.par.LoSteps() - t
	yHi := a.par.HiSteps() + t
	miss := a.constantTimeMiss(yLo, yHi, k)
	return a.legacyScanLoss(yLo, yHi, func(y, x int64) float64 {
		m := miss[x-a.par.LoSteps()]
		p := a.probK(y-x) * m.accept
		if y == yLo || y == yHi {
			qk := 1.0
			for i := 0; i < k-1; i++ {
				qk *= m.total
			}
			if y == yLo {
				p += m.lo * qk
			} else {
				p += m.hi * qk
			}
		}
		return p
	})
}
