package core

// Structure-aware privacy-loss kernels.
//
// The generic certification scan evaluates P(y|x) for every output y
// and every grid input x — O(|Y|·|X|) with a closure call per cell.
// Every mechanism in this package shares one structural fact, though:
// away from the boundary-atom columns the conditional is translation
// invariant, P(y|x) = pmf[y−x]. The per-output extrema over x are
// then sliding-window extrema over a fixed-width window of the PMF,
// which a monotonic-deque pass computes in O(|Y|+|X|) total. The
// kernels below exploit that for the baseline and thresholding
// conditionals, and devirtualize the remaining per-x-normalized
// conditionals (resampling, constant-time) into direct slice indexing
// with the normalization tables hoisted out of the inner loop.
//
// Exactness contract: every kernel evaluates the same float64
// expressions as the legacy closure kernel (kernels_legacy.go), in an
// order that preserves its tie-break semantics — among equal extrema
// the smallest x wins, and the smallest worst output wins overall —
// so optimized, legacy, sequential and parallel runs return identical
// LossReports bit for bit. kernel_diff_test.go asserts this.

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// kv is one sliding-window sample: the noise step k and its
// probability mass.
type kv struct {
	k int64
	v float64
}

// shiftWindow tracks the sliding-window extrema of the translation-
// invariant conditional P(y|x) = pmf[y−x] for x ∈ [xLo, xHi] as y
// advances, via a pair of monotonic deques. For output y the window
// is k ∈ [y−xHi, y−xLo]; advancing y by one pushes one new k and
// evicts at most one old k, so a full scan costs O(|Y|+|X|).
//
// Tie semantics match the legacy x-ascending strict-comparison scan:
// pushes pop equal-valued older entries, so the front entry is always
// the largest k (equivalently the smallest x) attaining the extremum.
type shiftWindow struct {
	a        *Analyzer
	xLo, xHi int64
	maxDq    []kv // values strictly decreasing front→back
	minDq    []kv // values strictly increasing front→back
	maxHead  int
	minHead  int
}

// newShiftWindow primes a window so the first step call may be for
// output yStart.
func (a *Analyzer) newShiftWindow(yStart int64) *shiftWindow {
	w := &shiftWindow{a: a, xLo: a.par.LoSteps(), xHi: a.par.HiSteps()}
	width := int(w.xHi - w.xLo + 1)
	w.maxDq = make([]kv, 0, width+1)
	w.minDq = make([]kv, 0, width+1)
	for k := yStart - w.xHi; k < yStart-w.xLo; k++ {
		w.push(k)
	}
	return w
}

// push admits noise step k into both deques. Zero-mass steps (grid
// holes and out-of-range k) enter like any other value so that
// pMin = 0 — the Infinite signal — is detected exactly where the
// legacy scan detects it.
func (w *shiftWindow) push(k int64) {
	v := w.a.probK(k)
	for len(w.maxDq) > w.maxHead && w.maxDq[len(w.maxDq)-1].v <= v {
		w.maxDq = w.maxDq[:len(w.maxDq)-1]
	}
	w.maxDq = append(w.maxDq, kv{k, v})
	for len(w.minDq) > w.minHead && w.minDq[len(w.minDq)-1].v >= v {
		w.minDq = w.minDq[:len(w.minDq)-1]
	}
	w.minDq = append(w.minDq, kv{k, v})
}

// step advances the window to output y and returns its extrema with
// the inputs attaining them.
func (w *shiftWindow) step(y int64) (pMax float64, xMax int64, pMin float64, xMin int64) {
	w.push(y - w.xLo)
	kLo := y - w.xHi
	for w.maxDq[w.maxHead].k < kLo {
		w.maxHead++
	}
	for w.minDq[w.minHead].k < kLo {
		w.minHead++
	}
	if w.maxHead > 1024 {
		n := copy(w.maxDq, w.maxDq[w.maxHead:])
		w.maxDq, w.maxHead = w.maxDq[:n], 0
	}
	if w.minHead > 1024 {
		n := copy(w.minDq, w.minDq[w.minHead:])
		w.minDq, w.minHead = w.minDq[:n], 0
	}
	m, n := w.maxDq[w.maxHead], w.minDq[w.minHead]
	return m.v, y - m.k, n.v, y - n.k
}

// accumulate folds one output column's extrema into rep, replicating
// the legacy per-output logic: unreachable outputs are skipped,
// one-sided reachability is an immediate infinite report, and ties on
// the loss keep the earlier (smaller) output. It reports true when
// the scan can stop — a later output can never override an earlier
// infinite report.
func accumulate(rep *LossReport, y int64, pMax float64, xMax int64, pMin float64, xMin int64) bool {
	if pMax <= 0 {
		return false // output unreachable from every input
	}
	if pMin <= 0 {
		*rep = LossReport{MaxLoss: math.Inf(1), Infinite: true,
			WorstOutput: y, WorstX1: xMax, WorstX2: xMin}
		return true
	}
	if loss := math.Log(pMax / pMin); loss > rep.MaxLoss {
		*rep = LossReport{MaxLoss: loss, WorstOutput: y, WorstX1: xMax, WorstX2: xMin}
	}
	return false
}

// colExtrema evaluates one output column f(x) over x ascending with
// the legacy strict-comparison tie-break (first x attaining the
// extremum wins). Used for the O(1)-per-cell boundary-atom columns.
func colExtrema(xLo, xHi int64, f func(x int64) float64) (pMax float64, xMax int64, pMin float64, xMin int64) {
	pMax, pMin = math.Inf(-1), math.Inf(1)
	for x := xLo; x <= xHi; x++ {
		p := f(x)
		if p > pMax {
			pMax, xMax = p, x
		}
		if p < pMin {
			pMin, xMin = p, x
		}
	}
	return
}

// scanShiftRange is the linear-time kernel for fully translation-
// invariant conditionals (the baseline mechanism) over outputs
// [lo, hi].
func (a *Analyzer) scanShiftRange(lo, hi int64) LossReport {
	rep := LossReport{}
	w := a.newShiftWindow(lo)
	for y := lo; y <= hi; y++ {
		pMax, xMax, pMin, xMin := w.step(y)
		if accumulate(&rep, y, pMax, xMax, pMin, xMin) {
			return rep
		}
	}
	return rep
}

// scanThresholdingRange is the linear-time thresholding kernel over
// the chunk [lo, hi] of the full output window [yLo, yHi]: the two
// boundary-atom columns are evaluated directly from the prefix sums,
// interior outputs ride the sliding window.
func (a *Analyzer) scanThresholdingRange(yLo, yHi, lo, hi int64) LossReport {
	rep := LossReport{}
	xLo, xHi := a.par.LoSteps(), a.par.HiSteps()
	if lo == yLo {
		pMax, xMax, pMin, xMin := colExtrema(xLo, xHi, func(x int64) float64 {
			return a.tailAtMost(yLo - x)
		})
		if accumulate(&rep, yLo, pMax, xMax, pMin, xMin) {
			return rep
		}
		lo++
	}
	last := hi
	if hi == yHi {
		last--
	}
	if lo <= last {
		w := a.newShiftWindow(lo)
		for y := lo; y <= last; y++ {
			pMax, xMax, pMin, xMin := w.step(y)
			if accumulate(&rep, y, pMax, xMax, pMin, xMin) {
				return rep
			}
		}
	}
	if hi == yHi {
		pMax, xMax, pMin, xMin := colExtrema(xLo, xHi, func(x int64) float64 {
			return a.tailAtLeast(yHi - x)
		})
		accumulate(&rep, yHi, pMax, xMax, pMin, xMin)
	}
	return rep
}

// scanResamplingRange is the devirtualized resampling kernel: still
// O(|Y|·|X|) — the per-input renormalization breaks translation
// invariance — but with direct slice indexing and the normalization
// table z hoisted out of the inner loop. The division (not a
// reciprocal multiply) keeps the probabilities bit-identical to the
// legacy kernel's.
func (a *Analyzer) scanResamplingRange(z []float64, lo, hi int64) LossReport {
	rep := LossReport{}
	xLo, xHi := a.par.LoSteps(), a.par.HiSteps()
	pmf := a.pmf
	for y := lo; y <= hi; y++ {
		pMax, pMin := math.Inf(-1), math.Inf(1)
		var xMax, xMin int64
		base := y + a.maxK
		for x := xLo; x <= xHi; x++ {
			p := 0.0
			if i := base - x; uint64(i) < uint64(len(pmf)) {
				p = pmf[i] / z[x-xLo]
			}
			if p > pMax {
				pMax, xMax = p, x
			}
			if p < pMin {
				pMin, xMin = p, x
			}
		}
		if accumulate(&rep, y, pMax, xMax, pMin, xMin) {
			return rep
		}
	}
	return rep
}

// scanConstantTimeRange is the devirtualized constant-time kernel:
// the acceptance factors and the k-th-power clamp atoms are hoisted
// into per-x tables, leaving one multiply per interior cell.
func (a *Analyzer) scanConstantTimeRange(yLo, yHi int64, accept, atomLo, atomHi []float64, lo, hi int64) LossReport {
	rep := LossReport{}
	xLo, xHi := a.par.LoSteps(), a.par.HiSteps()
	pmf := a.pmf
	for y := lo; y <= hi; y++ {
		pMax, pMin := math.Inf(-1), math.Inf(1)
		var xMax, xMin int64
		base := y + a.maxK
		var atom []float64
		if y == yLo {
			atom = atomLo
		} else if y == yHi {
			atom = atomHi
		}
		for x := xLo; x <= xHi; x++ {
			p := 0.0
			if i := base - x; uint64(i) < uint64(len(pmf)) {
				p = pmf[i] * accept[x-xLo]
			}
			if atom != nil {
				p += atom[x-xLo]
			}
			if p > pMax {
				pMax, xMax = p, x
			}
			if p < pMin {
				pMin, xMin = p, x
			}
		}
		if accumulate(&rep, y, pMax, xMax, pMin, xMin) {
			return rep
		}
	}
	return rep
}

// parallelCutoff is the output count below which the sequential
// kernel runs inline — goroutine fan-out costs more than it saves.
const parallelCutoff = 1 << 12

// chunkSpan picks the per-chunk output count for a parallel scan: an
// even split across the workers, capped so one chunk's PMF working
// set — the sliding window's width plus the chunk's span, 16 bytes
// per step counting the prefix sums the boundary columns read — stays
// inside a per-core L2 budget. Oversubscribing the chunk count
// beyond the worker count is deliberate: workers steal chunks off a
// shared counter, so uneven chunk costs (an early-infinite chunk
// returns immediately) still balance.
func (a *Analyzer) chunkSpan(outputs int64, workers int) int64 {
	const cacheBudget = 256 << 10 // bytes; a conservative per-core L2 share
	window := a.par.HiSteps() - a.par.LoSteps() + 1
	maxChunk := int64(cacheBudget/16) - window
	if maxChunk < 1<<10 {
		maxChunk = 1 << 10
	}
	per := (outputs + int64(workers) - 1) / int64(workers)
	if per > maxChunk {
		per = maxChunk
	}
	return per
}

// parallelScan runs scan over [yLo, yHi]. Large ranges are split into
// cache-sized chunks distributed over the machine's cores via a
// work-stealing counter; the merge is deterministic (smallest worst
// output wins ties), so parallel and sequential runs agree exactly.
// Once a chunk reports an infinite loss, chunks strictly after it are
// skipped — their results can never win the merge against an earlier
// infinite report.
func (a *Analyzer) parallelScan(yLo, yHi int64, scan func(lo, hi int64) LossReport) LossReport {
	outputs := yHi - yLo + 1
	workers := runtime.NumCPU()
	if outputs < parallelCutoff || workers < 2 {
		return scan(yLo, yHi)
	}
	chunk := a.chunkSpan(outputs, workers)
	nchunks := (outputs + chunk - 1) / chunk
	if int64(workers) > nchunks {
		workers = int(nchunks)
	}
	parts := make([]LossReport, nchunks)
	var next atomic.Int64
	var firstInf atomic.Int64
	firstInf.Store(nchunks)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := next.Add(1) - 1
				if c >= nchunks {
					return
				}
				if c > firstInf.Load() {
					continue // dominated by an earlier infinite chunk
				}
				lo := yLo + c*chunk
				hi := lo + chunk - 1
				if hi > yHi {
					hi = yHi
				}
				rep := scan(lo, hi)
				parts[c] = rep
				if rep.Infinite {
					for {
						cur := firstInf.Load()
						if c >= cur || firstInf.CompareAndSwap(cur, c) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	rep := parts[0]
	for _, p := range parts[1:] {
		rep = mergeLoss(rep, p)
	}
	return rep
}

// lossSweep computes the thresholding mechanism's per-output loss for
// every output y ∈ [yLo, yHi] in one boundary-aware sliding-window
// pass — the batched counterpart of LossAt, costing O(|Y|+|X|) for
// the whole profile instead of O(|X|) per output. Entry i of the
// returned slice is the loss at output yLo+i, with the LossAt
// conventions: 0 for unreachable outputs, +Inf for one-sided ones.
func (a *Analyzer) lossSweep(t int64) (yLo int64, losses []float64) {
	if t < 0 {
		panic("core: negative threshold")
	}
	yLo = a.par.LoSteps() - t
	yHi := a.par.HiSteps() + t
	xLo, xHi := a.par.LoSteps(), a.par.HiSteps()
	losses = make([]float64, yHi-yLo+1)
	set := func(y int64, pMax, pMin float64) {
		switch {
		case pMax <= 0:
			// unreachable output: no information, no loss
		case pMin <= 0:
			losses[y-yLo] = math.Inf(1)
		default:
			losses[y-yLo] = math.Log(pMax / pMin)
		}
	}
	pMax, _, pMin, _ := colExtrema(xLo, xHi, func(x int64) float64 {
		return a.tailAtMost(yLo - x)
	})
	set(yLo, pMax, pMin)
	if yHi == yLo {
		return yLo, losses
	}
	w := a.newShiftWindow(yLo + 1)
	for y := yLo + 1; y < yHi; y++ {
		pMax, _, pMin, _ := w.step(y)
		set(y, pMax, pMin)
	}
	pMax, _, pMin, _ = colExtrema(xLo, xHi, func(x int64) float64 {
		return a.tailAtLeast(yHi - x)
	})
	set(yHi, pMax, pMin)
	return yLo, losses
}
