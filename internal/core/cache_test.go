package core

import (
	"math"
	"sync"
	"testing"

	"ulpdp/internal/laplace"
)

func TestCachedAnalyzerHitCounter(t *testing.T) {
	ResetAnalyzerCache()
	defer ResetAnalyzerCache()
	a1 := CachedAnalyzer(small)
	a2 := CachedAnalyzer(small)
	if a1 != a2 {
		t.Error("identical Params must share one analyzer instance")
	}
	if hits, misses := AnalyzerCacheStats(); hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	other := small
	other.Eps = 0.25
	if CachedAnalyzer(other) == a1 {
		t.Error("distinct Params must not share an analyzer")
	}
	if hits, misses := AnalyzerCacheStats(); hits != 1 || misses != 2 {
		t.Errorf("hits=%d misses=%d, want 1/2", hits, misses)
	}
}

func TestCachedAnalyzerMatchesFresh(t *testing.T) {
	ResetAnalyzerCache()
	defer ResetAnalyzerCache()
	th, err := ThresholdingThreshold(small, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := CachedAnalyzer(small).ThresholdingLoss(th), NewAnalyzer(small).ThresholdingLoss(th); got != want {
		t.Errorf("cached %+v != fresh %+v", got, want)
	}
}

func TestCachedAnalyzerPMF(t *testing.T) {
	ResetAnalyzerCache()
	defer ResetAnalyzerCache()
	builds := 0
	build := func() ([]float64, int64) {
		builds++
		return laplace.NewDist(small.FxP()).PMF()
	}
	type id struct{ Name string }
	a1 := CachedAnalyzerPMF(small, id{"fam"}, build)
	a2 := CachedAnalyzerPMF(small, id{"fam"}, build)
	if a1 != a2 || builds != 1 {
		t.Errorf("cache miss on identical PMF identity (builds=%d)", builds)
	}
	// A different identity under the same Params is a distinct entry.
	if CachedAnalyzerPMF(small, id{"other"}, build) == a1 || builds != 2 {
		t.Errorf("distinct PMF identities must not collide (builds=%d)", builds)
	}
	// Non-comparable identities bypass the cache rather than panic.
	builds = 0
	b1 := CachedAnalyzerPMF(small, []string{"not", "comparable"}, build)
	b2 := CachedAnalyzerPMF(small, []string{"not", "comparable"}, build)
	if b1 == b2 || builds != 2 {
		t.Errorf("non-comparable identity should bypass the cache (builds=%d)", builds)
	}
}

func TestCachedAnalyzerEviction(t *testing.T) {
	ResetAnalyzerCache()
	defer ResetAnalyzerCache()
	par := small
	for i := 0; i < cacheMaxEntries+8; i++ {
		par.Eps = 0.1 + 0.01*float64(i)
		CachedAnalyzer(par)
	}
	cacheMu.Lock()
	n, steps := len(cacheByKey), cacheSteps
	cacheMu.Unlock()
	if n > cacheMaxEntries {
		t.Errorf("cache holds %d entries, cap %d", n, cacheMaxEntries)
	}
	if steps > cacheMaxSteps {
		t.Errorf("cache holds %d steps, cap %d", steps, cacheMaxSteps)
	}
	// The oldest entry was evicted; re-requesting it is a miss that
	// still returns a correct analyzer.
	par.Eps = 0.1
	if an := CachedAnalyzer(par); an.Params() != par {
		t.Error("post-eviction rebuild returned wrong analyzer")
	}
}

// TestCachedAnalyzerConcurrent hammers the cache from many
// goroutines mixing hits, misses and certifications — the scenario
// `go test -race` must cover.
func TestCachedAnalyzerConcurrent(t *testing.T) {
	ResetAnalyzerCache()
	defer ResetAnalyzerCache()
	params := []Params{small, {Lo: 0, Hi: 8, Eps: 0.4, Bu: 12, By: 10, Delta: 0.5}}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				par := params[(g+i)%len(params)]
				an := CachedAnalyzer(par)
				if rep := an.ThresholdingLoss(int64(1 + i%5)); rep.Infinite && rep.MaxLoss != math.Inf(1) {
					t.Error("inconsistent report")
				}
			}
		}(g)
	}
	wg.Wait()
	if hits, misses := AnalyzerCacheStats(); hits+misses != 160 || misses < uint64(len(params)) {
		t.Errorf("hits=%d misses=%d, want %d total", hits, misses, 160)
	}
}

// TestBoundedRelativeTolerance is the regression test for the bare
// 1e-12 absolute tolerance: at ε·mult products of ~1e4 nats the
// spacing between adjacent float64 values already exceeds 1e-12, so
// a loss equal to the bound up to final-log rounding must still
// certify.
func TestBoundedRelativeTolerance(t *testing.T) {
	bound := 1e4
	loss := bound * (1 + 5e-13) // one ulp-scale rounding above the bound
	if loss <= bound+1e-12 {
		t.Fatal("test vector does not exercise the regression: absolute tolerance would accept it")
	}
	if !(LossReport{MaxLoss: loss}).Bounded(bound) {
		t.Error("loss within relative rounding of the bound must certify")
	}
	if (LossReport{MaxLoss: bound * (1 + 1e-9)}).Bounded(bound) {
		t.Error("loss clearly above the bound must not certify")
	}
	if (LossReport{MaxLoss: math.Inf(1), Infinite: true}).Bounded(bound) {
		t.Error("infinite loss must never certify")
	}
	// Small bounds keep the historical absolute tolerance.
	if !(LossReport{MaxLoss: 1 + 9e-13}).Bounded(1) {
		t.Error("absolute 1e-12 slack must survive at small bounds")
	}
}

// TestSegmentsRelativeTolerance drives Segments at an ε near the top
// of the range the closed forms stay feasible for (ε = 12 with the
// widest URNG; beyond that no positive threshold certifies at all):
// the per-output staircase values are tens of nats, where a relative
// slack must not reject exact-at-the-bound losses. The derived bands
// must stay consistent with the per-output losses under the relative
// tolerance.
func TestSegmentsRelativeTolerance(t *testing.T) {
	par := Params{Lo: 0, Hi: 8, Eps: 12, Bu: 30, By: 12, Delta: 0.125}
	if err := par.Validate(); err != nil {
		t.Fatal("geometry invalid:", err)
	}
	an := NewAnalyzer(par)
	th, err := ThresholdingThreshold(par, 2)
	if err != nil {
		t.Fatal("no certified threshold at this ε:", err)
	}
	segs := an.Segments(th, []float64{1.25, 1.5, 1.75})
	if len(segs) == 0 {
		t.Fatal("no charging bands at large ε")
	}
	for _, s := range segs {
		bound := s.Mult * par.Eps
		for o := int64(0); o <= s.Offset; o++ {
			l := an.LossAt(th, par.HiSteps()+o)
			if l > bound+lossTol(bound) {
				t.Errorf("offset %d loss %g exceeds band %g·ε", o, l, s.Mult)
			}
		}
	}
}
