package core

// Differential tests: the optimized kernels (kernels.go) against the
// closure reference kernel (kernels_legacy.go), over randomized
// parameters, thresholds and synthetic PMFs — including PMFs with
// interior zero-mass entries, the grid holes whose detection the
// sliding-window pass must preserve bit for bit. Reports must agree
// field for field, WorstOutput/WorstX1/WorstX2 tie-breaks included.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// diffCompare asserts two reports are identical field for field.
func diffCompare(t *testing.T, what string, fast, legacy LossReport) {
	t.Helper()
	if fast != legacy {
		t.Errorf("%s: fast %+v != legacy %+v", what, fast, legacy)
	}
}

// randomParams draws a small valid configuration. Grids stay modest
// so the O(|Y|·|X|) reference stays fast.
func randomParams(rng *rand.Rand) Params {
	for {
		steps := 4 + rng.Intn(60)
		delta := math.Ldexp(1, rng.Intn(5)-3) // 0.125 .. 2
		lo := float64(rng.Intn(32)-16) * delta
		par := Params{
			Lo:    lo,
			Hi:    lo + float64(steps)*delta,
			Eps:   0.1 + 2.4*rng.Float64(),
			Bu:    7 + rng.Intn(8),
			By:    5 + rng.Intn(5),
			Delta: delta,
		}
		if par.Validate() == nil {
			return par
		}
	}
}

// randomThreshold draws a threshold, occasionally past MaxK so the
// kernels also agree on windows wider than the PMF support.
func randomThreshold(rng *rand.Rand, an *Analyzer) int64 {
	m := an.MaxK() + 2
	return rng.Int63n(m + 1)
}

func diffAllMechanisms(t *testing.T, what string, rng *rand.Rand, an *Analyzer) {
	t.Helper()
	diffCompare(t, what+"/baseline", an.BaselineLoss(), an.legacyBaselineLoss())
	th := randomThreshold(rng, an)
	diffCompare(t, fmt.Sprintf("%s/thresholding(t=%d)", what, th),
		an.ThresholdingLoss(th), an.legacyThresholdingLoss(th))
	diffCompare(t, fmt.Sprintf("%s/resampling(t=%d)", what, th),
		an.ResamplingLoss(th), an.legacyResamplingLoss(th))
	k := 1 + rng.Intn(4)
	diffCompare(t, fmt.Sprintf("%s/consttime(t=%d,k=%d)", what, th, k),
		an.ConstantTimeLoss(th, k), an.legacyConstantTimeLoss(th, k))

	// The batched per-output sweep against the single-output scan.
	yLo, losses := an.lossSweep(th)
	for i, l := range losses {
		if ref := an.LossAt(th, yLo+int64(i)); l != ref {
			t.Errorf("%s: sweep loss at y=%d is %g, LossAt says %g", what, yLo+int64(i), l, ref)
		}
	}
}

func TestKernelDifferentialLaplace(t *testing.T) {
	rng := rand.New(rand.NewSource(20180604))
	for trial := 0; trial < 60; trial++ {
		par := randomParams(rng)
		an := NewAnalyzer(par)
		diffAllMechanisms(t, fmt.Sprintf("trial %d %+v", trial, par), rng, an)
	}
}

// randomPMF builds a synthetic signed PMF with randomly placed
// zero-mass entries (interior holes), normalized to total mass 1.
func randomPMF(rng *rand.Rand, maxK int64) []float64 {
	n := 2*maxK + 1
	pmf := make([]float64, n)
	sum := 0.0
	for i := range pmf {
		if rng.Float64() < 0.35 {
			continue // hole
		}
		pmf[i] = rng.Float64()
		sum += pmf[i]
	}
	if sum == 0 {
		pmf[maxK] = 1
		return pmf
	}
	// Normalize, then push the residual rounding error into the
	// largest entry so the total passes the constructor's 1e-9 gate.
	big := 0
	for i := range pmf {
		pmf[i] /= sum
		if pmf[i] > pmf[big] {
			big = i
		}
	}
	total := 0.0
	for _, p := range pmf {
		total += p
	}
	pmf[big] += 1 - total
	return pmf
}

func TestKernelDifferentialSyntheticPMF(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 60; trial++ {
		par := randomParams(rng)
		maxK := 1 + rng.Int63n(96)
		an := NewAnalyzerFromPMF(par, randomPMF(rng, maxK), maxK)
		diffAllMechanisms(t, fmt.Sprintf("synthetic trial %d %+v maxK=%d", trial, par, maxK), rng, an)
	}
}

// TestKernelDifferentialParallel runs the differential comparison on
// a grid large enough that the optimized kernels take the parallel
// work-stealing path, proving the chunked merge matches the purely
// sequential reference.
func TestKernelDifferentialParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("legacy reference on the parallel-scale grid is slow")
	}
	an := NewAnalyzer(bigGrid)
	if 2*an.MaxK() < parallelCutoff {
		t.Fatalf("grid too small (%d) to exercise the parallel path", an.MaxK())
	}
	th, err := ThresholdingThreshold(bigGrid, 2)
	if err != nil {
		t.Fatal(err)
	}
	diffCompare(t, "parallel/baseline", an.BaselineLoss(), an.legacyBaselineLoss())
	diffCompare(t, "parallel/thresholding", an.ThresholdingLoss(th), an.legacyThresholdingLoss(th))
	diffCompare(t, "parallel/resampling", an.ResamplingLoss(th), an.legacyResamplingLoss(th))
	diffCompare(t, "parallel/consttime", an.ConstantTimeLoss(th, 3), an.legacyConstantTimeLoss(th, 3))
}

// TestKernelProfileMatchesLossAt pins the profile/segments/interior
// rewrites to the per-output reference on the native RNG.
func TestKernelProfileMatchesLossAt(t *testing.T) {
	par := Params{Lo: 0, Hi: 10, Eps: 0.5, Bu: 14, By: 11, Delta: 10.0 / 64}
	an := NewAnalyzer(par)
	th, err := ThresholdingThreshold(par, 2)
	if err != nil {
		t.Fatal(err)
	}
	hi := par.HiSteps()
	for _, p := range an.ThresholdingLossProfile(th) {
		if ref := an.LossAt(th, hi+p.Offset); p.Loss != ref {
			t.Errorf("profile offset %d: %g != LossAt %g", p.Offset, p.Loss, ref)
		}
	}
	worst := 0.0
	for y := par.LoSteps(); y <= hi; y++ {
		if l := an.LossAt(th, y); l > worst {
			worst = l
		}
	}
	if got := an.InteriorLoss(th); got != worst {
		t.Errorf("InteriorLoss %g != per-output max %g", got, worst)
	}
}
