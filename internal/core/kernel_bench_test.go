package core

// Kernel benchmarks: the optimized sliding-window/devirtualized
// kernels against the legacy closure kernel, at the root-level
// benchmark geometry (B_y = 12, 32-step sensor grid) and at a larger
// grid (B_y = 16, 512-step grid) where the O(|Y|·|X|) → O(|Y|+|X|)
// gap dominates. Run with
//
//	go test -run xxx -bench Kernel ./internal/core/
//
// to measure the speedup the acceptance criteria require.

import "testing"

// benchDefault mirrors the root bench_test.go benchPar geometry.
var benchDefault = Params{Lo: 0, Hi: 10, Eps: 0.5, Bu: 17, By: 12, Delta: 10.0 / 32}

// benchLarge is the wide-grid geometry: 512 input steps and a B_y=16
// output word.
var benchLarge = Params{Lo: 0, Hi: 20, Eps: 0.5, Bu: 20, By: 16, Delta: 20.0 / 512}

func benchThresholding(b *testing.B, par Params, legacy bool) {
	b.Helper()
	an := NewAnalyzer(par)
	th, err := ThresholdingThreshold(par, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rep LossReport
		if legacy {
			rep = an.legacyThresholdingLoss(th)
		} else {
			rep = an.ThresholdingLoss(th)
		}
		if rep.Infinite {
			b.Fatal("certification failed")
		}
	}
}

func BenchmarkKernelThresholdingFast(b *testing.B)   { benchThresholding(b, benchDefault, false) }
func BenchmarkKernelThresholdingLegacy(b *testing.B) { benchThresholding(b, benchDefault, true) }

func BenchmarkKernelThresholdingLargeFast(b *testing.B)   { benchThresholding(b, benchLarge, false) }
func BenchmarkKernelThresholdingLargeLegacy(b *testing.B) { benchThresholding(b, benchLarge, true) }

func benchBaseline(b *testing.B, par Params, legacy bool) {
	b.Helper()
	an := NewAnalyzer(par)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var rep LossReport
		if legacy {
			rep = an.legacyBaselineLoss()
		} else {
			rep = an.BaselineLoss()
		}
		if !rep.Infinite {
			b.Fatal("baseline should be infinite")
		}
	}
}

func BenchmarkKernelBaselineFast(b *testing.B)   { benchBaseline(b, benchDefault, false) }
func BenchmarkKernelBaselineLegacy(b *testing.B) { benchBaseline(b, benchDefault, true) }

// BenchmarkKernelProfileSweep measures the full Fig. 8 profile +
// segments + interior charge derivation (one sweep each).
func BenchmarkKernelProfileSweep(b *testing.B) {
	an := NewAnalyzer(benchDefault)
	th, err := ThresholdingThreshold(benchDefault, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an.ThresholdingLossProfile(th)
		an.Segments(th, []float64{1.25, 1.5, 1.75})
		an.InteriorLoss(th)
	}
}
