package core

import (
	"math"
	"testing"

	"ulpdp/internal/laplace"
	"ulpdp/internal/urng"
)

// fig4 mirrors the paper's running example: Lap(20) noise from a
// 17-bit URNG on a 12-bit output grid with Δ = 10/2^5, which arises
// from a sensor range of length 10 at ε = 0.5.
var fig4 = Params{Lo: 0, Hi: 10, Eps: 0.5, Bu: 17, By: 12, Delta: 10.0 / 32}

// small is a coarse configuration used where exhaustive checks must
// stay fast.
var small = Params{Lo: 0, Hi: 8, Eps: 0.5, Bu: 12, By: 10, Delta: 0.5}

func TestParamsValidate(t *testing.T) {
	tests := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"fig4", fig4, true},
		{"small", small, true},
		{"empty range", Params{Lo: 5, Hi: 5, Eps: 1, Bu: 10, By: 10, Delta: 0.1}, false},
		{"inverted range", Params{Lo: 5, Hi: 4, Eps: 1, Bu: 10, By: 10, Delta: 0.1}, false},
		{"zero eps", Params{Lo: 0, Hi: 1, Eps: 0, Bu: 10, By: 10, Delta: 0.1}, false},
		{"bad bu", Params{Lo: 0, Hi: 1, Eps: 1, Bu: 0, By: 10, Delta: 0.1}, false},
		{"range below step", Params{Lo: 0, Hi: 0.4, Eps: 1, Bu: 10, By: 10, Delta: 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err == nil) != tt.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestParamsDerived(t *testing.T) {
	if got := fig4.Lambda(); got != 20 {
		t.Errorf("lambda = %g, want 20", got)
	}
	if got := fig4.RangeSteps(); got != 32 {
		t.Errorf("range steps = %d, want 32", got)
	}
	if got := fig4.LoSteps(); got != 0 {
		t.Errorf("lo steps = %d", got)
	}
	if got := fig4.HiSteps(); got != 32 {
		t.Errorf("hi steps = %d", got)
	}
}

func TestQuantizeInputClamps(t *testing.T) {
	p := small
	if got := p.QuantizeInput(-100); got != p.LoSteps() {
		t.Errorf("below range: %d", got)
	}
	if got := p.QuantizeInput(100); got != p.HiSteps() {
		t.Errorf("above range: %d", got)
	}
	if got := p.QuantizeInput(3.24); got != 6 { // 3.24/0.5 = 6.48 -> 6
		t.Errorf("interior: %d, want 6", got)
	}
}

func TestBaselineLossIsInfinite(t *testing.T) {
	// The paper's core negative result (Section III-A3): the naive
	// FxP implementation has unbounded privacy loss.
	an := NewAnalyzer(fig4)
	rep := an.BaselineLoss()
	if !rep.Infinite {
		t.Fatalf("baseline loss should be infinite, got %g", rep.MaxLoss)
	}
}

func TestBaselineLossInfiniteForSmallToo(t *testing.T) {
	an := NewAnalyzer(small)
	if rep := an.BaselineLoss(); !rep.Infinite {
		t.Fatalf("baseline loss should be infinite, got %+v", rep)
	}
}

func TestResamplingThresholdCertifies(t *testing.T) {
	// The closed-form resampling threshold must be certified by the
	// exact analyzer: worst-case loss <= mult·ε.
	for _, par := range []Params{fig4, small} {
		an := NewAnalyzer(par)
		for _, mult := range []float64{1.5, 2, 3} {
			th, err := ResamplingThreshold(par, mult)
			if err != nil {
				t.Fatalf("params %+v mult %g: %v", par, mult, err)
			}
			if th < 1 {
				t.Fatalf("threshold %d too small", th)
			}
			rep := an.ResamplingLoss(th)
			if !rep.Bounded(mult * par.Eps) {
				t.Errorf("mult %g: threshold %d gives loss %g (inf=%v), bound %g",
					mult, th, rep.MaxLoss, rep.Infinite, mult*par.Eps)
			}
		}
	}
}

func TestThresholdingThresholdCertifies(t *testing.T) {
	for _, par := range []Params{fig4, small} {
		an := NewAnalyzer(par)
		for _, mult := range []float64{1.5, 2, 3} {
			th, err := ThresholdingThreshold(par, mult)
			if err != nil {
				t.Fatalf("params %+v mult %g: %v", par, mult, err)
			}
			rep := an.ThresholdingLoss(th)
			if !rep.Bounded(mult * par.Eps) {
				t.Errorf("mult %g: threshold %d gives loss %g (inf=%v, worst y=%d x1=%d x2=%d), bound %g",
					mult, th, rep.MaxLoss, rep.Infinite,
					rep.WorstOutput, rep.WorstX1, rep.WorstX2, mult*par.Eps)
			}
		}
	}
}

// TestPaperEq15AloneIsUnsound records a finding of this reproduction:
// the paper's eq. 15 threshold, which constrains only the boundary
// atoms, reaches past the first zero-probability hole in the RNG tail
// for these parameters, so interior outputs still have infinite
// worst-case loss. The certified ThresholdingThreshold fixes this by
// also enforcing the interior point-mass condition.
func TestPaperEq15AloneIsUnsound(t *testing.T) {
	for _, par := range []Params{fig4, small} {
		paper, err := PaperThresholdingThreshold(par, 2)
		if err != nil {
			t.Fatal(err)
		}
		cert, err := ThresholdingThreshold(par, 2)
		if err != nil {
			t.Fatal(err)
		}
		if cert >= paper {
			t.Fatalf("expected certified threshold %d below paper threshold %d", cert, paper)
		}
		an := NewAnalyzer(par)
		if rep := an.ThresholdingLoss(paper); !rep.Infinite {
			t.Errorf("params %+v: paper threshold %d unexpectedly certified (loss %g)",
				par, paper, rep.MaxLoss)
		}
	}
}

func TestExactThresholdsAtLeastClosedForm(t *testing.T) {
	for _, mult := range []float64{1.5, 2} {
		cf, err := ResamplingThreshold(small, mult)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := ExactResamplingThreshold(small, mult)
		if err != nil {
			t.Fatal(err)
		}
		if ex < cf {
			t.Errorf("resampling: exact %d < closed form %d (mult %g)", ex, cf, mult)
		}
		cf, err = ThresholdingThreshold(small, mult)
		if err != nil {
			t.Fatal(err)
		}
		ex, err = ExactThresholdingThreshold(small, mult)
		if err != nil {
			t.Fatal(err)
		}
		if ex < cf {
			t.Errorf("thresholding: exact %d < closed form %d (mult %g)", ex, cf, mult)
		}
	}
}

func TestExactThresholdCertifiesAtExactAndFailsBeyond(t *testing.T) {
	an := NewAnalyzer(small)
	const mult = 2.0
	ex, err := ExactThresholdingThreshold(small, mult)
	if err != nil {
		t.Fatal(err)
	}
	if rep := an.ThresholdingLoss(ex); !rep.Bounded(mult * small.Eps) {
		t.Errorf("exact threshold %d not certified: %+v", ex, rep)
	}
	if ex < an.MaxK() {
		if rep := an.ThresholdingLoss(ex + 1); rep.Bounded(mult * small.Eps) {
			t.Errorf("threshold %d+1 should exceed the bound", ex)
		}
	}
}

func TestThresholdCalculatorsRejectBadInput(t *testing.T) {
	if _, err := ResamplingThreshold(fig4, 1.0); err == nil {
		t.Error("mult=1 should be rejected")
	}
	if _, err := ThresholdingThreshold(fig4, 0.5); err == nil {
		t.Error("mult<1 should be rejected")
	}
	bad := Params{Lo: 0, Hi: 1, Eps: -1, Bu: 10, By: 10, Delta: 0.1}
	if _, err := ResamplingThreshold(bad, 2); err == nil {
		t.Error("invalid params should be rejected")
	}
	if _, err := ExactResamplingThreshold(bad, 2); err == nil {
		t.Error("invalid params should be rejected (exact)")
	}
}

// TestSaturatingWordThresholdsCertify covers the regime where the
// output word saturates before the inverse-CDF bound (L/Δ > KCap):
// the saturation step carries the clipped tail as one heavy atom, and
// the certified thresholds must keep it out of the guard window. This
// is a regression test — the naive closed form without the KCap cap
// yields infinite loss here.
func TestSaturatingWordThresholdsCertify(t *testing.T) {
	// 34..42 at ε=0.5 on a 256-step grid with a 12-bit noise word:
	// L/Δ ≈ 6033 ≫ KCap = 2047.
	par := Params{Lo: 34, Hi: 42, Eps: 0.5, Bu: 17, By: 12, Delta: 8.0 / 256}
	if l, c := par.FxP().MaxNoise()/par.Delta, float64(par.FxP().KCap()); l <= c {
		t.Fatalf("parameters do not saturate: L/Δ=%g, KCap=%g", l, c)
	}
	an := NewAnalyzer(par)
	for _, mult := range []float64{1.5, 2} {
		th, err := ThresholdingThreshold(par, mult)
		if err != nil {
			t.Fatalf("thresholding mult %g: %v", mult, err)
		}
		if th+par.RangeSteps() > par.FxP().KCap() {
			t.Errorf("thresholding threshold %d reaches the saturation atom", th)
		}
		if rep := an.ThresholdingLoss(th); !rep.Bounded(mult * par.Eps) {
			t.Errorf("thresholding mult %g: loss %g inf=%v at y=%d", mult, rep.MaxLoss, rep.Infinite, rep.WorstOutput)
		}
		rth, err := ResamplingThreshold(par, mult)
		if err != nil {
			t.Fatalf("resampling mult %g: %v", mult, err)
		}
		if rep := an.ResamplingLoss(rth); !rep.Bounded(mult * par.Eps) {
			t.Errorf("resampling mult %g: loss %g inf=%v at y=%d", mult, rep.MaxLoss, rep.Infinite, rep.WorstOutput)
		}
	}
}

func TestCoarseRNGHasNoThreshold(t *testing.T) {
	// With very few URNG bits no positive threshold can achieve a
	// tight loss bound — the regime behind Fig. 15(b)'s error floor.
	par := Params{Lo: 0, Hi: 8, Eps: 0.5, Bu: 4, By: 8, Delta: 0.5}
	if _, err := ResamplingThreshold(par, 1.1); err == nil {
		t.Error("expected no-threshold error for Bu=4, mult=1.1")
	}
}

func TestIdealMechanism(t *testing.T) {
	m, err := NewIdealLaplace(fig4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "ideal" {
		t.Errorf("name = %q", m.Name())
	}
	var sum float64
	const n = 50000
	for i := 0; i < n; i++ {
		sum += m.Noise(5).Value
	}
	if mean := sum / n; math.Abs(mean-5) > 0.5 {
		t.Errorf("mean of noised 5 = %g", mean)
	}
}

func TestBaselineMechanismOnGrid(t *testing.T) {
	m, err := NewBaseline(small, nil, urng.NewTaus88(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		r := m.Noise(4)
		steps := r.Value / small.Delta
		if steps != math.Trunc(steps) {
			t.Fatalf("output %g off grid", r.Value)
		}
		if r.Resamples != 0 || r.Clamped {
			t.Fatal("baseline must not resample or clamp")
		}
	}
}

func TestResamplingStaysInWindow(t *testing.T) {
	th, err := ResamplingThreshold(small, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewResampling(small, th, nil, urng.NewTaus88(5))
	if err != nil {
		t.Fatal(err)
	}
	lo := small.Lo - float64(th)*small.Delta
	hi := small.Hi + float64(th)*small.Delta
	sawResample := false
	for i := 0; i < 20000; i++ {
		r := m.Noise(small.Hi)
		if r.Value < lo-1e-9 || r.Value > hi+1e-9 {
			t.Fatalf("output %g outside window [%g, %g]", r.Value, lo, hi)
		}
		if r.Resamples > 0 {
			sawResample = true
		}
	}
	if !sawResample {
		t.Error("expected at least one resample over 20000 draws from an extreme input")
	}
}

func TestThresholdingClampsToWindow(t *testing.T) {
	th, err := ThresholdingThreshold(small, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewThresholding(small, th, nil, urng.NewTaus88(11))
	if err != nil {
		t.Fatal(err)
	}
	lo := small.Lo - float64(th)*small.Delta
	hi := small.Hi + float64(th)*small.Delta
	sawClamp := false
	for i := 0; i < 20000; i++ {
		r := m.Noise(small.Hi)
		if r.Value < lo-1e-9 || r.Value > hi+1e-9 {
			t.Fatalf("output %g outside window [%g, %g]", r.Value, lo, hi)
		}
		if r.Clamped {
			sawClamp = true
			if r.Value != lo && r.Value != hi {
				t.Fatalf("clamped output %g not at a boundary", r.Value)
			}
		}
	}
	if !sawClamp {
		t.Error("expected at least one clamp over 20000 draws from an extreme input")
	}
}

func TestMechanismRejectsNegativeThreshold(t *testing.T) {
	if _, err := NewResampling(small, -1, nil, urng.NewTaus88(1)); err == nil {
		t.Fatal("expected error for negative resampling threshold")
	}
	if _, err := NewThresholding(small, -1, nil, urng.NewTaus88(1)); err == nil {
		t.Fatal("expected error for negative thresholding threshold")
	}
}

func TestResamplingEmpiricalMatchesConditional(t *testing.T) {
	// The sampled conditional distribution must match the analyzer's
	// renormalized PMF.
	th := int64(20)
	m, err := NewResampling(small, th, laplace.FloatLog{FracBits: 50}, urng.NewTaus88(13))
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(small)
	x := small.Hi // extreme input exercises the asymmetric window
	xs := small.QuantizeInput(x)
	counts := make(map[int64]int)
	const n = 200000
	for i := 0; i < n; i++ {
		y := int64(math.Round(m.Noise(x).Value / small.Delta))
		counts[y]++
	}
	// Conditional probability of a few interior outputs.
	yLo := small.LoSteps() - th
	yHi := small.HiSteps() + th
	z := an.massBetween(yLo-xs, yHi-xs)
	for _, y := range []int64{xs, xs - 5, xs + 10, yHi} {
		want := an.probK(y-xs) / z
		got := float64(counts[y]) / n
		if math.Abs(got-want) > 5*math.Sqrt(want/n)+1e-4 {
			t.Errorf("P(y=%d|x=%d) = %g, want %g", y, xs, got, want)
		}
	}
}

func TestThresholdingEmpiricalBoundaryAtom(t *testing.T) {
	th := int64(15)
	m, err := NewThresholding(small, th, laplace.FloatLog{FracBits: 50}, urng.NewTaus88(17))
	if err != nil {
		t.Fatal(err)
	}
	an := NewAnalyzer(small)
	x := small.Hi
	xs := small.QuantizeInput(x)
	hiY := small.HiSteps() + th
	want := an.tailAtLeast(hiY - xs)
	var hits int
	const n = 200000
	for i := 0; i < n; i++ {
		if v := m.Noise(x).Value; math.Abs(v-float64(hiY)*small.Delta) < 1e-9 {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-want) > 5*math.Sqrt(want/n)+1e-4 {
		t.Errorf("boundary atom mass = %g, want %g", got, want)
	}
}

func TestRandomizedResponse(t *testing.T) {
	par := Params{Lo: 0, Hi: 1, Eps: 1, Bu: 16, By: 12, Delta: 1.0 / 16}
	m, err := NewRandomizedResponse(par, nil, urng.NewTaus88(19))
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "randomized-response" {
		t.Errorf("name = %q", m.Name())
	}
	for i := 0; i < 1000; i++ {
		v := m.Noise(0).Value
		if v != 0 && v != 1 {
			t.Fatalf("RR output %g not binary", v)
		}
	}
	q1, q2 := m.FlipProbs()
	if q1 <= 0 || q1 >= 0.5 || q2 <= 0 || q2 >= 0.5 {
		t.Errorf("flip probs out of (0, 0.5): %g, %g", q1, q2)
	}
	// Empirical flip rate from x=0 matches the closed form.
	var flips int
	const n = 200000
	for i := 0; i < n; i++ {
		if m.Noise(0).Value == 1 {
			flips++
		}
	}
	got := float64(flips) / n
	if math.Abs(got-q1) > 5*math.Sqrt(q1/n) {
		t.Errorf("empirical flip rate %g, want %g", got, q1)
	}
	if eps := m.RREpsilon(); eps <= 0 || eps > 10 {
		t.Errorf("RR epsilon = %g", eps)
	}
}

func TestLossProfileMonotoneEnough(t *testing.T) {
	an := NewAnalyzer(small)
	th, err := ThresholdingThreshold(small, 3)
	if err != nil {
		t.Fatal(err)
	}
	profile := an.ThresholdingLossProfile(th)
	if int64(len(profile)) != th+1 {
		t.Fatalf("profile length %d, want %d", len(profile), th+1)
	}
	// Loss at the range edge is near ε; loss grows toward the
	// threshold (Fig. 8's staircase).
	first, last := profile[0], profile[len(profile)-1]
	if first.Normalized < 0.5 || first.Normalized > 1.5 {
		t.Errorf("loss at range edge = %g·ε", first.Normalized)
	}
	if last.Loss <= first.Loss {
		t.Errorf("loss should grow toward the threshold: %g -> %g", first.Loss, last.Loss)
	}
}

func TestSegments(t *testing.T) {
	an := NewAnalyzer(small)
	th, err := ThresholdingThreshold(small, 3)
	if err != nil {
		t.Fatal(err)
	}
	segs := an.Segments(th, []float64{1.5, 2, 2.5, 3})
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Offset < segs[i-1].Offset {
			t.Errorf("segment offsets must be non-decreasing: %+v", segs)
		}
		if segs[i].Mult <= segs[i-1].Mult {
			t.Errorf("segment multipliers must increase: %+v", segs)
		}
	}
	// Every output within a segment must cost at most its multiplier.
	for _, s := range segs {
		for o := int64(0); o <= s.Offset; o++ {
			if l := an.LossAt(th, small.HiSteps()+o); l > s.Mult*small.Eps+1e-9 {
				t.Errorf("offset %d loss %g exceeds segment %g·ε", o, l, s.Mult)
			}
		}
	}
}

func TestInteriorLossNearEpsilon(t *testing.T) {
	an := NewAnalyzer(fig4)
	th, err := ThresholdingThreshold(fig4, 2)
	if err != nil {
		t.Fatal(err)
	}
	l := an.InteriorLoss(th)
	// In-range outputs should cost close to the nominal ε (the
	// quantized RNG inflates it slightly).
	if l < 0.8*fig4.Eps || l > 1.5*fig4.Eps {
		t.Errorf("interior loss = %g, ε = %g", l, fig4.Eps)
	}
}

func TestLossAtUnreachableIsZero(t *testing.T) {
	an := NewAnalyzer(small)
	// An output far beyond the RNG's reach is unreachable from every
	// input: no information, zero loss.
	y := small.HiSteps() + an.MaxK() + small.RangeSteps() + 10
	if l := an.LossAt(an.MaxK(), y); l != 0 {
		t.Errorf("unreachable output loss = %g", l)
	}
}
