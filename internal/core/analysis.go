package core

import (
	"fmt"
	"math"

	"ulpdp/internal/laplace"
)

// maxAnalyzerSteps bounds the materialized PMF. Realistic ULP
// configurations (B_y <= 20) stay far below it.
const maxAnalyzerSteps = 1 << 22

// LossReport is the outcome of an exact worst-case privacy-loss
// computation: the maximum over every output value and every pair of
// grid-aligned inputs of the log likelihood ratio (eq. 4).
type LossReport struct {
	// MaxLoss is the worst-case privacy loss in nats. +Inf when
	// Infinite is set.
	MaxLoss float64
	// Infinite reports that some output is producible by one input
	// but not another — the failure mode of the naive mechanism.
	Infinite bool
	// WorstOutput is an output value (in steps, absolute grid) that
	// attains MaxLoss.
	WorstOutput int64
	// WorstX1, WorstX2 are inputs (in steps) attaining MaxLoss:
	// Pr[y|x1] > Pr[y|x2].
	WorstX1, WorstX2 int64
}

// lossTol is the comparison slack for loss-vs-bound checks: relative
// in the bound once it exceeds one nat. A bare absolute 1e-12 is
// below float64's representable spacing once ε·mult grows past ~1e4,
// so exact-at-the-bound losses would be rejected by nothing more than
// the rounding of the final log.
func lossTol(bound float64) float64 {
	const rel = 1e-12
	if b := math.Abs(bound); b > 1 {
		return b * rel
	}
	return rel
}

// Bounded reports whether the loss is finite and at most bound nats
// (up to a relative rounding tolerance).
func (r LossReport) Bounded(bound float64) bool {
	return !r.Infinite && r.MaxLoss <= bound+lossTol(bound)
}

// Analyzer computes exact privacy-loss figures for mechanisms built
// on a fixed-point noise RNG, by enumerating the discrete output
// distribution for every grid-aligned input in [Lo, Hi].
type Analyzer struct {
	par  Params
	pmf  []float64 // signed PMF; index k+maxK
	cum  []float64 // cum[i] = sum of pmf[0..i-1]
	maxK int64
}

// mustValidate guards the analyzer constructors: they are always
// called with parameters a mechanism constructor already validated
// (or test fixtures), so a failure here is a programmer invariant and
// panics are the documented behaviour (DESIGN.md §6).
func mustValidate(par Params) {
	if err := par.Validate(); err != nil {
		panic(err)
	}
}

// NewAnalyzer builds an Analyzer over the fixed-point Laplace RNG
// implied by par. It panics on invalid parameters or when the
// configuration is too large to enumerate (B_y beyond any plausible
// ULP datapath).
func NewAnalyzer(par Params) *Analyzer {
	mustValidate(par)
	d := laplace.NewDist(par.FxP())
	pmf, maxK := d.PMF()
	return newAnalyzerPMF(par, pmf, maxK)
}

// NewAnalyzerFromPMF builds an Analyzer over an arbitrary symmetric
// signed noise PMF (index i corresponds to step k = i − maxK) on
// par's grid — the hook for certifying non-Laplace noise families
// (Gaussian, staircase; see internal/noisedist). The PMF must sum to
// 1 and have length 2·maxK+1. It panics on malformed input.
func NewAnalyzerFromPMF(par Params, pmf []float64, maxK int64) *Analyzer {
	mustValidate(par)
	if int64(len(pmf)) != 2*maxK+1 {
		panic(fmt.Sprintf("core: PMF length %d does not match maxK %d", len(pmf), maxK))
	}
	var sum float64
	for _, p := range pmf {
		if p < 0 {
			panic("core: negative PMF entry")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		panic(fmt.Sprintf("core: PMF sums to %g", sum))
	}
	return newAnalyzerPMF(par, pmf, maxK)
}

func newAnalyzerPMF(par Params, pmf []float64, maxK int64) *Analyzer {
	if maxK > maxAnalyzerSteps {
		panic(fmt.Sprintf("core: analyzer grid %d steps exceeds limit %d", maxK, maxAnalyzerSteps))
	}
	cum := make([]float64, len(pmf)+1)
	for i, p := range pmf {
		cum[i+1] = cum[i] + p
	}
	return &Analyzer{par: par, pmf: pmf, cum: cum, maxK: maxK}
}

// Params returns the analyzer's parameters.
func (a *Analyzer) Params() Params { return a.par }

// MaxK returns the RNG's largest reachable noise magnitude in steps.
func (a *Analyzer) MaxK() int64 { return a.maxK }

// probK returns Pr[n = kΔ] for signed k.
func (a *Analyzer) probK(k int64) float64 {
	if k < -a.maxK || k > a.maxK {
		return 0
	}
	return a.pmf[k+a.maxK]
}

// massBetween returns Pr[lo <= n/Δ <= hi] via the prefix sums.
func (a *Analyzer) massBetween(lo, hi int64) float64 {
	if lo < -a.maxK {
		lo = -a.maxK
	}
	if hi > a.maxK {
		hi = a.maxK
	}
	if lo > hi {
		return 0
	}
	return a.cum[hi+a.maxK+1] - a.cum[lo+a.maxK]
}

// tailAtLeast returns Pr[n/Δ >= k] for any signed k.
func (a *Analyzer) tailAtLeast(k int64) float64 { return a.massBetween(k, a.maxK) }

// tailAtMost returns Pr[n/Δ <= k] for any signed k.
func (a *Analyzer) tailAtMost(k int64) float64 { return a.massBetween(-a.maxK, k) }

// mergeLoss combines two partial reports: larger loss wins; ties
// (including both infinite) go to the smaller worst output, matching
// the sequential scan's first-hit semantics.
func mergeLoss(a, b LossReport) LossReport {
	switch {
	case a.Infinite && b.Infinite:
		if b.WorstOutput < a.WorstOutput {
			return b
		}
		return a
	case a.Infinite:
		return a
	case b.Infinite:
		return b
	case b.MaxLoss > a.MaxLoss:
		return b
	}
	return a
}

// BaselineLoss certifies the naive mechanism. For any usable
// configuration the result is Infinite: the RNG's bounded range means
// extreme outputs identify extreme inputs (Section III-A3). The
// conditional is fully translation invariant, so the sliding-window
// kernel certifies it in O(|Y|+|X|).
func (a *Analyzer) BaselineLoss() LossReport {
	yLo := a.par.LoSteps() - a.maxK
	yHi := a.par.HiSteps() + a.maxK
	return a.parallelScan(yLo, yHi, a.scanShiftRange)
}

// ResamplingLoss computes the exact worst-case loss of the resampling
// mechanism with threshold t steps. The conditional distribution is
// the RNG PMF restricted to the acceptance window and renormalized.
func (a *Analyzer) ResamplingLoss(t int64) LossReport {
	if t < 0 {
		panic("core: negative threshold")
	}
	yLo := a.par.LoSteps() - t
	yHi := a.par.HiSteps() + t
	// Per-input normalization Z(x) = Pr[y in window | x].
	xLo, xHi := a.par.LoSteps(), a.par.HiSteps()
	z := make([]float64, xHi-xLo+1)
	for x := xLo; x <= xHi; x++ {
		z[x-xLo] = a.massBetween(yLo-x, yHi-x)
	}
	return a.parallelScan(yLo, yHi, func(lo, hi int64) LossReport {
		return a.scanResamplingRange(z, lo, hi)
	})
}

// ThresholdingLoss computes the exact worst-case loss of the
// thresholding mechanism with threshold t steps. Boundary outputs
// carry the clamped tail mass; interior outputs are translation
// invariant and ride the O(|Y|+|X|) sliding-window kernel.
func (a *Analyzer) ThresholdingLoss(t int64) LossReport {
	if t < 0 {
		panic("core: negative threshold")
	}
	yLo := a.par.LoSteps() - t
	yHi := a.par.HiSteps() + t
	return a.parallelScan(yLo, yHi, func(lo, hi int64) LossReport {
		return a.scanThresholdingRange(yLo, yHi, lo, hi)
	})
}

func (a *Analyzer) thresholdingCond(t int64) func(y, x int64) float64 {
	yLo := a.par.LoSteps() - t
	yHi := a.par.HiSteps() + t
	return func(y, x int64) float64 {
		switch {
		case y == yLo:
			return a.tailAtMost(yLo - x)
		case y == yHi:
			return a.tailAtLeast(yHi - x)
		default:
			return a.probK(y - x)
		}
	}
}

// ConstantTimeLoss computes the exact worst-case loss of the
// constant-time resampling variant (the paper's Section IV-C timing-
// channel mitigation): k candidate samples are drawn in one cycle and
// the first one inside the window is taken; if all k miss, the last
// candidate is clamped to the window edge. The conditional
// distribution mixes a partially-renormalized resampling term with a
// k-th-power clamp term:
//
//	P(y|x) = p(y−x)·(1−q(x)^k)/(1−q(x))            interior
//	       + q_side(x)·q(x)^(k−1) at the window edges,
//
// with q(x) the per-draw miss probability and q_side its one-sided
// parts. The clamp term's likelihood ratio grows like the k-th power
// of the tail ratio, but its mass shrinks like q^(k−1); this function
// resolves the trade-off exactly.
func (a *Analyzer) ConstantTimeLoss(t int64, k int) LossReport {
	if t < 0 {
		panic("core: negative threshold")
	}
	if k < 1 {
		panic("core: need at least one candidate sample")
	}
	yLo := a.par.LoSteps() - t
	yHi := a.par.HiSteps() + t
	miss := a.constantTimeMiss(yLo, yHi, k)
	// Hoist the per-x tables the kernel indexes: the acceptance
	// factor scaling every interior cell and the clamp atoms the two
	// boundary outputs add. The atoms repeat the legacy kernel's
	// multiplication order (q^(k−1) by running product, then the
	// one-sided mass) so the sums are bit-identical.
	accept := make([]float64, len(miss))
	atomLo := make([]float64, len(miss))
	atomHi := make([]float64, len(miss))
	for i, m := range miss {
		accept[i] = m.accept
		qk := 1.0
		for j := 0; j < k-1; j++ {
			qk *= m.total
		}
		atomLo[i] = m.lo * qk
		atomHi[i] = m.hi * qk
	}
	return a.parallelScan(yLo, yHi, func(lo, hi int64) LossReport {
		return a.scanConstantTimeRange(yLo, yHi, accept, atomLo, atomHi, lo, hi)
	})
}

// missSplit is the per-input miss decomposition of the constant-time
// mechanism: one-sided miss masses, their total, and the acceptance
// factor (1−q^k)/(1−q).
type missSplit struct{ lo, hi, total, accept float64 }

// constantTimeMiss tabulates the miss decomposition for every input.
func (a *Analyzer) constantTimeMiss(yLo, yHi int64, k int) []missSplit {
	xLo, xHi := a.par.LoSteps(), a.par.HiSteps()
	miss := make([]missSplit, xHi-xLo+1)
	for x := xLo; x <= xHi; x++ {
		lo := a.tailAtMost(yLo - x - 1)
		hi := a.tailAtLeast(yHi - x + 1)
		q := lo + hi
		// accept factor (1−q^k)/(1−q), exactly; q < 1 always (the
		// window contains the bulk).
		f := 0.0
		qp := 1.0
		for i := 0; i < k; i++ {
			f += qp
			qp *= q
		}
		miss[x-xLo] = missSplit{lo: lo, hi: hi, total: q, accept: f}
	}
	return miss
}

// LossAt returns the per-output privacy loss of the thresholding
// mechanism at output step y — the quantity Fig. 8 plots and the
// budget-control algorithm charges. The result is +Inf if y is
// reachable from some inputs only.
func (a *Analyzer) LossAt(t, y int64) float64 {
	cond := a.thresholdingCond(t)
	pMax, pMin := math.Inf(-1), math.Inf(1)
	for x := a.par.LoSteps(); x <= a.par.HiSteps(); x++ {
		p := cond(y, x)
		if p > pMax {
			pMax = p
		}
		if p < pMin {
			pMin = p
		}
	}
	if pMax <= 0 {
		return 0 // unreachable output: no information, no loss
	}
	if pMin <= 0 {
		return math.Inf(1)
	}
	return math.Log(pMax / pMin)
}

// ResamplingLossAt returns the per-output privacy loss of the
// resampling mechanism with threshold t at output step y — the
// resampling counterpart of LossAt, including each input's
// acceptance-mass renormalization.
func (a *Analyzer) ResamplingLossAt(t, y int64) float64 {
	if t < 0 {
		panic("core: negative threshold")
	}
	yLo := a.par.LoSteps() - t
	yHi := a.par.HiSteps() + t
	if y < yLo || y > yHi {
		return 0
	}
	pMax, pMin := math.Inf(-1), math.Inf(1)
	for x := a.par.LoSteps(); x <= a.par.HiSteps(); x++ {
		p := a.probK(y-x) / a.massBetween(yLo-x, yHi-x)
		if p > pMax {
			pMax = p
		}
		if p < pMin {
			pMin = p
		}
	}
	if pMax <= 0 {
		return 0
	}
	if pMin <= 0 {
		return math.Inf(1)
	}
	return math.Log(pMax / pMin)
}

// LossPoint is one sample of the Fig. 8 loss profile.
type LossPoint struct {
	// Offset is the output's distance beyond Hi, in steps (0 = at Hi).
	Offset int64
	// Loss is the per-output privacy loss in nats.
	Loss float64
	// Normalized is Loss/ε, the multiplier axis of Fig. 8.
	Normalized float64
}

// ThresholdingLossProfile returns the per-output loss for outputs
// from Hi to Hi + t steps (the profile is symmetric about the range,
// so only the upper side is reported, as in Fig. 8). The whole
// profile costs one sliding-window sweep, not t+1 independent LossAt
// scans.
func (a *Analyzer) ThresholdingLossProfile(t int64) []LossPoint {
	yLo, losses := a.lossSweep(t)
	points := make([]LossPoint, 0, t+1)
	hi := a.par.HiSteps()
	for o := int64(0); o <= t; o++ {
		l := losses[hi+o-yLo]
		points = append(points, LossPoint{Offset: o, Loss: l, Normalized: l / a.par.Eps})
	}
	return points
}

// Segment is one budget-control charging band: outputs up to Offset
// steps beyond the sensor range cost at most Mult·ε.
type Segment struct {
	// Mult is the loss multiplier for this band.
	Mult float64
	// Offset is the largest distance beyond the range (in steps)
	// still charged at Mult·ε. Offsets beyond the previous segment's
	// Offset and at most this one fall in this band.
	Offset int64
}

// Segments derives the budget-control charging bands of Algorithm 1
// for the thresholding mechanism with threshold t: for each requested
// multiplier (ascending), the largest output offset whose per-output
// loss is at most mult·ε. Multipliers that admit no offset are
// dropped; the last usable multiplier is clamped to t.
func (a *Analyzer) Segments(t int64, multipliers []float64) []Segment {
	profile := a.ThresholdingLossProfile(t)
	segs := make([]Segment, 0, len(multipliers))
	for _, mult := range multipliers {
		bound := mult * a.par.Eps
		// Largest offset with every loss up to it within bound (up to
		// a relative rounding tolerance — see lossTol).
		best := int64(-1)
		for _, p := range profile {
			if p.Loss <= bound+lossTol(bound) {
				best = p.Offset
			} else {
				break
			}
		}
		if best >= 0 {
			segs = append(segs, Segment{Mult: mult, Offset: best})
		}
	}
	return segs
}

// InteriorLoss returns the worst per-output loss across outputs that
// lie inside the sensor range — the ε_RNG charge of Algorithm 1 for
// in-range reports. Like the profile, it rides one sliding-window
// sweep over the full output window.
func (a *Analyzer) InteriorLoss(t int64) float64 {
	yLo, losses := a.lossSweep(t)
	worst := 0.0
	for y := a.par.LoSteps(); y <= a.par.HiSteps(); y++ {
		if l := losses[y-yLo]; l > worst {
			worst = l
		}
	}
	return worst
}
