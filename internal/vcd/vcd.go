// Package vcd writes Value Change Dump files (IEEE 1364), the
// waveform format hardware viewers like GTKWave read. The DP-Box
// simulator can attach a Writer as its tracer, turning a Go test run
// into an inspectable waveform — the debugging workflow an RTL team
// would expect from this repository.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// Writer emits one VCD file. Declare all signals before Begin; then
// advance time with Tick and update signals with Set.
type Writer struct {
	out     *bufio.Writer
	module  string
	signals []*Signal
	began   bool
	curTime uint64
	timeSet bool
	err     error
}

// Signal is one declared wire or register.
type Signal struct {
	w       *Writer
	name    string
	id      string
	width   int
	last    uint64
	hasLast bool
}

// New starts a VCD file on out for the given module name with a 1 ns
// timescale.
func New(out io.Writer, module string) *Writer {
	return &Writer{out: bufio.NewWriter(out), module: module}
}

// Signal declares a signal of the given bit width (1..64). It panics
// after Begin or on an invalid width (wiring errors).
func (w *Writer) Signal(name string, width int) *Signal {
	if w.began {
		panic("vcd: Signal after Begin")
	}
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("vcd: width %d out of range [1,64]", width))
	}
	s := &Signal{w: w, name: name, width: width, id: idCode(len(w.signals))}
	w.signals = append(w.signals, s)
	return s
}

// idCode builds the short VCD identifier for the i-th signal.
func idCode(i int) string {
	const alphabet = "!#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	code := ""
	for {
		code += string(alphabet[i%len(alphabet)])
		i /= len(alphabet)
		if i == 0 {
			return code
		}
	}
}

// Begin writes the header. Signals declared so far become visible.
func (w *Writer) Begin() error {
	if w.began {
		return fmt.Errorf("vcd: Begin called twice")
	}
	w.began = true
	w.printf("$timescale 1ns $end\n$scope module %s $end\n", w.module)
	names := append([]*Signal{}, w.signals...)
	sort.Slice(names, func(i, j int) bool { return names[i].name < names[j].name })
	for _, s := range names {
		w.printf("$var wire %d %s %s $end\n", s.width, s.id, s.name)
	}
	w.printf("$upscope $end\n$enddefinitions $end\n")
	return w.err
}

// Tick advances simulation time (monotonically).
func (w *Writer) Tick(t uint64) {
	if !w.began {
		panic("vcd: Tick before Begin")
	}
	if w.timeSet && t < w.curTime {
		panic("vcd: time went backwards")
	}
	if !w.timeSet || t > w.curTime {
		w.printf("#%d\n", t)
		w.curTime = t
		w.timeSet = true
	}
}

// Set records a signal value at the current time; unchanged values
// are suppressed, as the format intends.
func (s *Signal) Set(v uint64) {
	if !s.w.began {
		panic("vcd: Set before Begin")
	}
	if s.width < 64 {
		v &= (1 << uint(s.width)) - 1
	}
	if s.hasLast && v == s.last {
		return
	}
	s.last, s.hasLast = v, true
	if s.width == 1 {
		s.w.printf("%d%s\n", v, s.id)
		return
	}
	s.w.printf("b%b %s\n", v, s.id)
}

// Close flushes the stream.
func (w *Writer) Close() error {
	if ferr := w.out.Flush(); ferr != nil && w.err == nil {
		w.err = ferr
	}
	return w.err
}

func (w *Writer) printf(format string, args ...any) {
	if w.err != nil {
		return
	}
	if _, err := fmt.Fprintf(w.out, format, args...); err != nil {
		w.err = err
	}
}
