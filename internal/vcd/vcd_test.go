package vcd

import (
	"bytes"
	"strings"
	"testing"
)

func TestHeaderAndChanges(t *testing.T) {
	var buf bytes.Buffer
	w := New(&buf, "dut")
	clk := w.Signal("clk", 1)
	bus := w.Signal("bus", 8)
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	w.Tick(0)
	clk.Set(0)
	bus.Set(0xA5)
	w.Tick(1)
	clk.Set(1)
	bus.Set(0xA5) // unchanged: must be suppressed
	w.Tick(2)
	bus.Set(0x5A)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module dut $end",
		"$var wire 1",
		"$var wire 8",
		"$enddefinitions $end",
		"#0", "#1", "#2",
		"b10100101 ",
		"b1011010 ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The unchanged bus value at #1 must appear exactly once.
	if strings.Count(out, "b10100101 ") != 1 {
		t.Error("unchanged value re-emitted")
	}
}

func TestOrderingAndValidation(t *testing.T) {
	var buf bytes.Buffer
	w := New(&buf, "m")
	s := w.Signal("a", 1)
	// Set before Begin panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Set before Begin should panic")
			}
		}()
		s.Set(1)
	}()
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := w.Begin(); err == nil {
		t.Error("double Begin should error")
	}
	// Signal after Begin panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Signal after Begin should panic")
			}
		}()
		w.Signal("late", 1)
	}()
	w.Tick(5)
	// Time going backwards panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("backwards time should panic")
			}
		}()
		w.Tick(4)
	}()
}

func TestWidthValidation(t *testing.T) {
	w := New(&bytes.Buffer{}, "m")
	for _, width := range []int{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d should panic", width)
				}
			}()
			w.Signal("x", width)
		}()
	}
}

func TestIDCodesUnique(t *testing.T) {
	w := New(&bytes.Buffer{}, "m")
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		s := w.Signal("s", 1)
		if seen[s.id] {
			t.Fatalf("duplicate id %q at %d", s.id, i)
		}
		seen[s.id] = true
	}
}

func TestValueMasking(t *testing.T) {
	var buf bytes.Buffer
	w := New(&buf, "m")
	s := w.Signal("nibble", 4)
	if err := w.Begin(); err != nil {
		t.Fatal(err)
	}
	w.Tick(0)
	s.Set(0xFF) // masked to 0xF
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "b1111 ") {
		t.Errorf("masking failed:\n%s", buf.String())
	}
}
