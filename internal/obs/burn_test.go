package obs

import (
	"math"
	"testing"
)

// newTestAlerter builds an alerter planning 1 nat over 1000 charges
// (1000 µnat per charge).
func newTestAlerter(t *testing.T) *BurnAlerter {
	t.Helper()
	ba, err := NewBurnAlerter(BurnConfig{
		EnvelopeMicroNats: 1_000_000,
		HorizonCharges:    1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ba
}

func TestBurnAlerterOnPlanNeverTrips(t *testing.T) {
	ba := newTestAlerter(t)
	r := NewRegistry()
	ba.Bind(NewBurnMetrics(r), nil)
	odo := r.Odometer("budget.odometer", 4)
	odo.SetBurn(ba)
	for i := 0; i < 1000; i++ {
		odo.Charge(i%4, 0.001*1e-6*1e6) // 1000 µnat = exactly the plan
	}
	if ba.Tripped() {
		t.Fatal("on-plan spend tripped the alert")
	}
	s := ba.Snapshot()
	if s.Charges != 1000 {
		t.Fatalf("charges = %d, want 1000", s.Charges)
	}
	// Burn should hover at 1.000× the plan.
	if s.FastBurnMilli < 900 || s.FastBurnMilli > 1100 {
		t.Fatalf("fast burn %d milli, want ≈1000", s.FastBurnMilli)
	}
	if got := r.Snapshot().Counters["burn.alerts"]; got != 0 {
		t.Fatalf("burn.alerts = %d, want 0", got)
	}
}

func TestBurnAlerterOverspendTripsBeforeEnvelope(t *testing.T) {
	ba := newTestAlerter(t)
	r := NewRegistry()
	trace := r.Trace("trace", 64)
	ba.Bind(NewBurnMetrics(r), trace)
	odo := r.Odometer("budget.odometer", 1)
	odo.SetBurn(ba)

	// Synthetic overspend fault: 10× the planned rate, every charge.
	for i := 0; i < 200 && !ba.Tripped(); i++ {
		odo.Charge(0, 0.01) // 10000 µnat vs 1000 planned
	}
	if !ba.Tripped() {
		t.Fatal("sustained 10× overspend never tripped")
	}
	s := ba.Snapshot()
	if s.TrippedAtMicroNats >= ba.Config().EnvelopeMicroNats {
		t.Fatalf("tripped at %d µnat — after the %d µnat envelope", s.TrippedAtMicroNats, ba.Config().EnvelopeMicroNats)
	}
	if s.Alerts == 0 || !s.Active {
		t.Fatalf("snapshot: %+v", s)
	}
	// The alert event must land in the trace ring.
	found := false
	for _, e := range trace.Events() {
		if e.Kind == EvBurnAlert {
			found = true
			if e.B != s.TrippedAtMicroNats {
				t.Errorf("alert event B = %d, want trip spend %d", e.B, s.TrippedAtMicroNats)
			}
		}
	}
	if !found {
		t.Fatal("no burn.alert event in the trace ring")
	}
	snap := r.Snapshot()
	if snap.Counters["burn.alerts"] != s.Alerts {
		t.Errorf("burn.alerts counter %d != snapshot alerts %d", snap.Counters["burn.alerts"], s.Alerts)
	}
	if snap.Gauges["burn.alert_active"] != 1 {
		t.Errorf("burn.alert_active = %d, want 1", snap.Gauges["burn.alert_active"])
	}
}

func TestBurnAlerterSpikeRejected(t *testing.T) {
	ba := newTestAlerter(t)
	odo := NewRegistry().Odometer("o", 1)
	odo.SetBurn(ba)
	// One giant spike inside an otherwise on-plan stream: the fast
	// window dilutes it below threshold before the slow window heats.
	odo.Charge(0, 0.02) // 20× plan, once
	for i := 0; i < 500; i++ {
		odo.Charge(0, 0.001)
	}
	if ba.Tripped() {
		t.Fatal("a single spike should not trip the multi-window alert")
	}
}

func TestBurnAlerterConfigValidation(t *testing.T) {
	if _, err := NewBurnAlerter(BurnConfig{HorizonCharges: 10}); err == nil {
		t.Error("zero envelope accepted")
	}
	if _, err := NewBurnAlerter(BurnConfig{EnvelopeMicroNats: 1}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := NewBurnAlerter(BurnConfig{EnvelopeMicroNats: 1, HorizonCharges: 1, FastWindow: 8, SlowWindow: 8}); err == nil {
		t.Error("fast == slow accepted")
	}
	if _, err := NewBurnAlerter(BurnConfig{EnvelopeMicroNats: 1, HorizonCharges: 1, FastBurn: -1}); err == nil {
		t.Error("negative threshold accepted")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()

	t.Run("empty is NaN", func(t *testing.T) {
		h := r.Histogram("q.empty", []int64{1, 2, 4})
		if q := h.snapshot().Quantile(0.5); !math.IsNaN(q) {
			t.Fatalf("empty quantile = %v, want NaN", q)
		}
	})

	t.Run("NaN q is NaN", func(t *testing.T) {
		h := r.Histogram("q.nan", []int64{1, 2})
		h.Observe(1)
		if q := h.snapshot().Quantile(math.NaN()); !math.IsNaN(q) {
			t.Fatalf("Quantile(NaN) = %v, want NaN", q)
		}
	})

	t.Run("single bucket is exact for constant stream", func(t *testing.T) {
		h := r.Histogram("q.single", []int64{10, 100, 1000})
		for i := 0; i < 50; i++ {
			h.Observe(40) // all land in (10, 100]
		}
		s := h.snapshot()
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := s.Quantile(q); got != 40 {
				t.Fatalf("Quantile(%v) = %v, want exactly 40", q, got)
			}
		}
	})

	t.Run("monotone across q", func(t *testing.T) {
		h := r.Histogram("q.mono", []int64{1, 2, 4, 8, 16, 32})
		vals := []int64{1, 1, 2, 3, 5, 8, 13, 21, 30, 40}
		for _, v := range vals {
			h.Observe(v)
		}
		s := h.snapshot()
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			cur := s.Quantile(q)
			if math.IsNaN(cur) || cur < prev {
				t.Fatalf("Quantile(%v) = %v not monotone (prev %v)", q, cur, prev)
			}
			prev = cur
		}
	})

	t.Run("overflow mass pins to last bound", func(t *testing.T) {
		h := r.Histogram("q.over", []int64{1, 2, 4})
		h.Observe(1)
		h.Observe(1000) // overflow bucket
		if got := h.snapshot().Quantile(0.99); got != 4 {
			t.Fatalf("Quantile(0.99) = %v, want 4 (last bound)", got)
		}
	})

	t.Run("clamps out-of-range q", func(t *testing.T) {
		h := r.Histogram("q.clamp", []int64{1, 2, 4})
		h.Observe(1)
		h.Observe(3)
		s := h.snapshot()
		if lo, hi := s.Quantile(-0.5), s.Quantile(1.5); math.IsNaN(lo) || math.IsNaN(hi) || lo > hi {
			t.Fatalf("clamped quantiles lo=%v hi=%v", lo, hi)
		}
	})
}
