package obs

import (
	"sort"
	"sync/atomic"
	"time"
)

// Stage is one step in a report's causal life. The chain stages
// (Noised … Ack) happen in order for a healthy report; the terminal
// stages mark the exceptional exits. Stage values index the per-span
// stamp and hit arrays, so adding a stage is a schema change (see
// DESIGN.md §13).
type Stage uint8

const (
	// StageNoised: the report entered the DP-Box noising transaction.
	StageNoised Stage = iota
	// StageJournal: the budget journal committed the (seq, value)
	// release record — the charge is durable from here on.
	StageJournal
	// StageTx: one link transmission attempt (hits count attempts).
	StageTx
	// StageLinkRx: a copy of the report frame landed in the collector
	// end's receive ring (hits count duplicate landings).
	StageLinkRx
	// StageAdmit: a collector shard passed breaker + dedup and decided
	// to admit the report.
	StageAdmit
	// StageCheckpoint: the shard's durable admission record committed
	// (only stamped on journaled collectors).
	StageCheckpoint
	// StageAck: the node saw the collector's ACK — the span is
	// complete.
	StageAck
	// StageDegraded: the resample watchdog tripped and the report was
	// released via the certified degraded clamp.
	StageDegraded
	// StageReplayed: noising was answered from the journaled release
	// (post-crash replay) at zero charge.
	StageReplayed
	// StageAbandoned: delivery gave up (attempts exhausted or context
	// expired); a later Resume may still complete the span.
	StageAbandoned

	// NumStages sizes the per-span stage arrays.
	NumStages
)

// String names a stage as it appears in trace exports.
func (s Stage) String() string {
	switch s {
	case StageNoised:
		return "noised"
	case StageJournal:
		return "journal-commit"
	case StageTx:
		return "tx-attempt"
	case StageLinkRx:
		return "link-rx"
	case StageAdmit:
		return "shard-admit"
	case StageCheckpoint:
		return "checkpoint-commit"
	case StageAck:
		return "ack"
	case StageDegraded:
		return "degraded"
	case StageReplayed:
		return "replayed"
	case StageAbandoned:
		return "abandoned"
	}
	return "unknown"
}

// chainStages is the happy-path causal order; exporters and the
// completeness validator walk it.
var chainStages = [...]Stage{StageNoised, StageJournal, StageTx, StageLinkRx, StageAdmit, StageCheckpoint, StageAck}

// flightSlot is one span's storage: an atomically claimed key plus
// per-stage first-occurrence stamps and hit counts. The arrays are
// fixed at NumStages, so a slot never allocates after the table is
// built.
type flightSlot struct {
	key   atomic.Uint64 // packed (node, seq) + 1; 0 = free
	stamp [NumStages]atomic.Int64
	hits  [NumStages]atomic.Uint32
}

// maxProbe bounds the linear-probe walk; past it the record is counted
// as dropped rather than degrading every Record into a table scan.
const maxProbe = 64

// FlightRecorder is the per-report flight recorder: a lock-free,
// fixed-capacity open-addressed table of spans keyed by (node, seq).
// Record is wait-free apart from one bounded CAS loop, performs no
// allocation, and is safe on a nil receiver, so every layer hooks it
// behind the usual `if m := c.obs; m != nil` guard at zero cost when
// telemetry is off.
//
// Capacity is fixed at construction: when the table is full (or a
// probe chain exceeds maxProbe), further spans are counted in Dropped
// instead of silently evicting history — the operator sees the
// truncation.
type FlightRecorder struct {
	slots   []flightSlot
	mask    uint64
	epoch   time.Time
	dropped atomic.Uint64
	metrics atomic.Pointer[FlightMetrics]
}

// NewFlightRecorder builds a recorder with capacity for at least n
// spans (rounded up to a power of two, minimum 256).
func NewFlightRecorder(n int) *FlightRecorder {
	capacity := 256
	for capacity < n {
		capacity <<= 1
	}
	return &FlightRecorder{
		slots: make([]flightSlot, capacity),
		mask:  uint64(capacity - 1),
		epoch: time.Now(),
	}
}

// SetMetrics mirrors the recorder's internal tallies onto registry
// instruments (span opens/completions/drops and stage events).
func (fr *FlightRecorder) SetMetrics(m *FlightMetrics) {
	if fr == nil {
		return
	}
	fr.metrics.Store(m)
}

// Capacity returns the span table size.
func (fr *FlightRecorder) Capacity() int {
	if fr == nil {
		return 0
	}
	return len(fr.slots)
}

// packSpanKey packs (node, seq) into a non-zero table key. Sequence
// numbers are bounded far below 2^48 in practice; node ids are the
// transport's 16-bit address space.
func packSpanKey(node int64, seq uint64) uint64 {
	return (uint64(uint16(node))<<48 | (seq & (1<<48 - 1))) + 1
}

func unpackSpanKey(key uint64) (node uint16, seq uint64) {
	k := key - 1
	return uint16(k >> 48), k & (1<<48 - 1)
}

// hashSpanKey is splitmix64's finalizer — enough to spread sequential
// (node, seq) keys across the table.
func hashSpanKey(k uint64) uint64 {
	k ^= k >> 30
	k *= 0xbf58476d1ce4e5b9
	k ^= k >> 27
	k *= 0x94d049bb133111eb
	k ^= k >> 31
	return k
}

// Record stamps a stage on the (node, seq) span, claiming a slot on
// first sight. The first occurrence of a stage fixes its timestamp;
// repeats only bump the stage's hit count (so retransmissions and
// duplicate landings are counted without disturbing latency
// attribution). Nil receivers and out-of-range stages are no-ops.
func (fr *FlightRecorder) Record(node int64, seq uint64, st Stage) {
	if fr == nil || st >= NumStages {
		return
	}
	key := packSpanKey(node, seq)
	h := hashSpanKey(key)
	probes := maxProbe
	if probes > len(fr.slots) {
		probes = len(fr.slots)
	}
	for i := 0; i < probes; i++ {
		s := &fr.slots[(h+uint64(i))&fr.mask]
		k := s.key.Load()
		if k == 0 {
			if s.key.CompareAndSwap(0, key) {
				k = key
				if m := fr.metrics.Load(); m != nil {
					m.SpansOpen.Add(1)
				}
			} else {
				k = s.key.Load()
			}
		}
		if k != key {
			continue
		}
		// +1 keeps a stamp taken exactly at the epoch distinguishable
		// from "never stamped".
		now := time.Since(fr.epoch).Nanoseconds() + 1
		s.stamp[st].CompareAndSwap(0, now)
		first := s.hits[st].Add(1) == 1
		if m := fr.metrics.Load(); m != nil {
			m.StageEvents.Inc()
			if st == StageAck && first {
				m.SpansCompleted.Inc()
				m.SpansOpen.Add(-1)
			}
		}
		return
	}
	fr.dropped.Add(1)
	if m := fr.metrics.Load(); m != nil {
		m.SpansDropped.Inc()
	}
}

// Dropped returns the number of Record calls that found no slot.
func (fr *FlightRecorder) Dropped() uint64 {
	if fr == nil {
		return 0
	}
	return fr.dropped.Load()
}

// SpanView is one span's frozen state.
type SpanView struct {
	// Node and Seq identify the report.
	Node uint16 `json:"node"`
	Seq  uint64 `json:"seq"`
	// StampNs holds each stage's first-occurrence time in nanoseconds
	// since the recorder epoch (0 = never reached), indexed by Stage.
	StampNs [NumStages]int64 `json:"stamp_ns"`
	// Hits counts each stage's occurrences (tx attempts, duplicate
	// link landings), indexed by Stage.
	Hits [NumStages]uint32 `json:"hits"`
}

// Acked reports whether the span completed (the node saw an ACK).
func (v SpanView) Acked() bool { return v.StampNs[StageAck] != 0 }

// Retransmits returns the extra transmissions beyond the first.
func (v SpanView) Retransmits() int {
	if h := v.Hits[StageTx]; h > 1 {
		return int(h - 1)
	}
	return 0
}

// FlightSnapshot is the recorder's frozen state: every claimed span
// sorted by (node, seq), plus the drop tally.
type FlightSnapshot struct {
	Spans    []SpanView `json:"spans"`
	Dropped  uint64     `json:"dropped"`
	Capacity int        `json:"capacity"`
}

// Snapshot freezes the recorder. Concurrent Record calls may land
// half-in: a stage stamped during the copy can appear with its hit
// count but not its stamp or vice versa — callers snapshot after
// quiescing for exact chains.
func (fr *FlightRecorder) Snapshot() *FlightSnapshot {
	if fr == nil {
		return nil
	}
	s := &FlightSnapshot{Dropped: fr.dropped.Load(), Capacity: len(fr.slots)}
	for i := range fr.slots {
		sl := &fr.slots[i]
		key := sl.key.Load()
		if key == 0 {
			continue
		}
		var v SpanView
		v.Node, v.Seq = unpackSpanKey(key)
		for st := Stage(0); st < NumStages; st++ {
			v.StampNs[st] = sl.stamp[st].Load()
			v.Hits[st] = sl.hits[st].Load()
		}
		s.Spans = append(s.Spans, v)
	}
	sort.Slice(s.Spans, func(i, j int) bool {
		if s.Spans[i].Node != s.Spans[j].Node {
			return s.Spans[i].Node < s.Spans[j].Node
		}
		return s.Spans[i].Seq < s.Spans[j].Seq
	})
	return s
}

// FlightMetrics mirrors the recorder's tallies onto the registry so
// span health is visible in the ordinary metrics snapshot.
type FlightMetrics struct {
	SpansOpen      *Gauge   // spans claimed but not yet ACKed
	SpansCompleted *Counter // spans that reached ACK
	SpansDropped   *Counter // Record calls that found no slot
	StageEvents    *Counter // total stage records
}

// NewFlightMetrics registers (or re-binds) the flight-recorder metric
// schema.
func NewFlightMetrics(r *Registry) *FlightMetrics {
	return &FlightMetrics{
		SpansOpen:      r.Gauge("flight.spans_open"),
		SpansCompleted: r.Counter("flight.spans_completed"),
		SpansDropped:   r.Counter("flight.spans_dropped"),
		StageEvents:    r.Counter("flight.stage_events"),
	}
}

// ValidateFlight checks span-chain completeness and causal order:
// every ACKed span must have stamped the full chain — noised, journal
// commit (when journaled), tx, link rx, shard admit, checkpoint commit
// (when durable), ack — with non-decreasing timestamps. It returns one
// message per violation (empty = clean).
func ValidateFlight(s *FlightSnapshot, journaled, durable bool) []string {
	if s == nil {
		return []string{"flight: nil snapshot"}
	}
	var violations []string
	required := []Stage{StageNoised, StageTx, StageLinkRx, StageAdmit, StageAck}
	if journaled {
		required = append(required, StageJournal)
	}
	if durable {
		required = append(required, StageCheckpoint)
	}
	for _, v := range s.Spans {
		if !v.Acked() {
			continue
		}
		for _, st := range required {
			if v.StampNs[st] == 0 {
				violations = append(violations,
					"flight: node "+itoa(int64(v.Node))+" seq "+itoa(int64(v.Seq))+" acked without "+st.String())
			}
		}
		last := int64(0)
		for _, st := range chainStages {
			ts := v.StampNs[st]
			if ts == 0 {
				continue
			}
			if ts < last {
				violations = append(violations,
					"flight: node "+itoa(int64(v.Node))+" seq "+itoa(int64(v.Seq))+" stage "+st.String()+" out of causal order")
			}
			last = ts
		}
	}
	return violations
}

// itoa is a tiny strconv.FormatInt(…, 10) stand-in that keeps the
// validator free of fmt in hot test loops.
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
