package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestFlightRecorderSpanLifecycle(t *testing.T) {
	fr := NewFlightRecorder(64)
	r := NewRegistry()
	fr.SetMetrics(NewFlightMetrics(r))

	// A healthy report with one retransmit and a duplicate landing.
	fr.Record(3, 7, StageNoised)
	fr.Record(3, 7, StageJournal)
	fr.Record(3, 7, StageTx)
	fr.Record(3, 7, StageTx)
	fr.Record(3, 7, StageLinkRx)
	fr.Record(3, 7, StageLinkRx)
	fr.Record(3, 7, StageAdmit)
	fr.Record(3, 7, StageCheckpoint)
	fr.Record(3, 7, StageAck)

	s := fr.Snapshot()
	if len(s.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(s.Spans))
	}
	v := s.Spans[0]
	if v.Node != 3 || v.Seq != 7 {
		t.Fatalf("span key = (%d, %d), want (3, 7)", v.Node, v.Seq)
	}
	if !v.Acked() {
		t.Fatal("span not acked")
	}
	if v.Retransmits() != 1 {
		t.Fatalf("retransmits = %d, want 1", v.Retransmits())
	}
	if v.Hits[StageLinkRx] != 2 {
		t.Fatalf("link-rx hits = %d, want 2", v.Hits[StageLinkRx])
	}
	// Chain stamps must be monotone in recording order.
	last := int64(0)
	for _, st := range chainStages {
		if v.StampNs[st] == 0 {
			t.Fatalf("stage %v unstamped", st)
		}
		if v.StampNs[st] < last {
			t.Fatalf("stage %v stamp %d < previous %d", st, v.StampNs[st], last)
		}
		last = v.StampNs[st]
	}
	if got := ValidateFlight(s, true, true); len(got) != 0 {
		t.Fatalf("validator flagged a clean span: %v", got)
	}

	snap := r.Snapshot()
	if snap.Counters["flight.spans_completed"] != 1 {
		t.Errorf("spans_completed = %d, want 1", snap.Counters["flight.spans_completed"])
	}
	if snap.Gauges["flight.spans_open"] != 0 {
		t.Errorf("spans_open = %d, want 0", snap.Gauges["flight.spans_open"])
	}
	if snap.Counters["flight.stage_events"] != 9 {
		t.Errorf("stage_events = %d, want 9", snap.Counters["flight.stage_events"])
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var fr *FlightRecorder
	fr.Record(1, 2, StageNoised) // must not panic
	fr.SetMetrics(nil)
	if fr.Snapshot() != nil {
		t.Fatal("nil recorder snapshot should be nil")
	}
	if fr.Dropped() != 0 || fr.Capacity() != 0 {
		t.Fatal("nil recorder should report zeros")
	}
}

func TestFlightRecorderFirstStampSticks(t *testing.T) {
	fr := NewFlightRecorder(16)
	fr.Record(1, 1, StageTx)
	first := fr.Snapshot().Spans[0].StampNs[StageTx]
	fr.Record(1, 1, StageTx)
	s := fr.Snapshot().Spans[0]
	if s.StampNs[StageTx] != first {
		t.Fatalf("first stamp moved: %d -> %d", first, s.StampNs[StageTx])
	}
	if s.Hits[StageTx] != 2 {
		t.Fatalf("hits = %d, want 2", s.Hits[StageTx])
	}
}

func TestFlightRecorderDropsWhenFull(t *testing.T) {
	fr := NewFlightRecorder(1) // rounds up to the 256 minimum
	capn := fr.Capacity()
	for i := 0; i < capn+100; i++ {
		fr.Record(int64(i%16), uint64(i), StageNoised)
	}
	if fr.Dropped() == 0 {
		t.Fatal("over-capacity recording should drop")
	}
	s := fr.Snapshot()
	if len(s.Spans)+int(s.Dropped) != capn+100 {
		t.Fatalf("spans %d + dropped %d != %d records", len(s.Spans), s.Dropped, capn+100)
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(4096)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for seq := uint64(0); seq < 256; seq++ {
				for st := Stage(0); st < NumStages; st++ {
					fr.Record(int64(g), seq, st)
				}
			}
		}(g)
	}
	wg.Wait()
	s := fr.Snapshot()
	if len(s.Spans) != 8*256 {
		t.Fatalf("spans = %d, want %d", len(s.Spans), 8*256)
	}
	if s.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0", s.Dropped)
	}
	for _, v := range s.Spans {
		for st := Stage(0); st < NumStages; st++ {
			if v.Hits[st] != 1 || v.StampNs[st] == 0 {
				t.Fatalf("span (%d,%d) stage %v: hits %d stamp %d", v.Node, v.Seq, st, v.Hits[st], v.StampNs[st])
			}
		}
	}
}

func TestValidateFlightCatchesIncompleteChain(t *testing.T) {
	fr := NewFlightRecorder(16)
	fr.Record(2, 5, StageNoised)
	fr.Record(2, 5, StageAck) // acked without tx/link-rx/admit
	got := ValidateFlight(fr.Snapshot(), true, false)
	if len(got) == 0 {
		t.Fatal("validator missed an incomplete acked chain")
	}
	joined := strings.Join(got, "\n")
	for _, want := range []string{"tx-attempt", "link-rx", "shard-admit", "journal-commit"} {
		if !strings.Contains(joined, want) {
			t.Errorf("violations missing %q:\n%s", want, joined)
		}
	}
}
