package obs

import (
	"fmt"
	"sync"
)

// EvBurnAlert: the privacy burn-rate alerter tripped. Node = the
// channel whose charge crossed the threshold, A = fast-window burn
// rate in milli-multiples of the planned rate, B = cumulative spend in
// µnats at the trip.
const EvBurnAlert = "burn.alert"

// BurnConfig parameterises the burn-rate alerter. The planned spend
// rate is EnvelopeMicroNats / HorizonCharges: the certified n·ε
// envelope amortised over the expected charge count. Burn is the
// observed per-charge spend divided by that plan; the alert trips when
// the fast AND slow window burns both exceed their thresholds —
// the SRE multi-window pattern, which rejects single-charge spikes but
// catches sustained overspend long before the envelope is exhausted.
//
// Windows are measured in charge events, not wall time, so the alerter
// is deterministic for a deterministic charge stream.
type BurnConfig struct {
	// EnvelopeMicroNats is the certified cumulative spend ceiling
	// (n·ε as µnats). Must be positive.
	EnvelopeMicroNats int64
	// HorizonCharges is the number of charges the envelope is planned
	// to last. Must be positive.
	HorizonCharges uint64
	// FastWindow and SlowWindow are window lengths in charges
	// (defaults 8 and 64; fast must be shorter than slow).
	FastWindow, SlowWindow int
	// FastBurn and SlowBurn are the trip thresholds as multiples of
	// the planned rate (defaults 4 and 2).
	FastBurn, SlowBurn float64
}

// BurnAlerter watches the odometer's charge stream and trips when the
// spend derivative exceeds the plan in both windows. It attaches to an
// Odometer via SetBurn; each charge costs one mutex-guarded ring
// update (no allocation). The trip is latched: Tripped stays true for
// the rest of the run even if the burn rate later subsides, while
// Active follows the instantaneous state.
type BurnAlerter struct {
	cfg BurnConfig

	mu        sync.Mutex
	ring      []int64 // last SlowWindow charges, µnats
	n         uint64  // charges observed
	fastSum   int64
	slowSum   int64
	active    bool
	tripped   bool
	trippedAt int64 // cumulative µnats when first tripped
	alerts    uint64

	metrics *BurnMetrics
	trace   *Trace
}

// NewBurnAlerter validates the config (applying defaults) and builds
// an alerter.
func NewBurnAlerter(cfg BurnConfig) (*BurnAlerter, error) {
	if cfg.EnvelopeMicroNats <= 0 {
		return nil, fmt.Errorf("obs: burn alerter needs a positive envelope, got %d µnat", cfg.EnvelopeMicroNats)
	}
	if cfg.HorizonCharges == 0 {
		return nil, fmt.Errorf("obs: burn alerter needs a positive charge horizon")
	}
	if cfg.FastWindow == 0 {
		cfg.FastWindow = 8
	}
	if cfg.SlowWindow == 0 {
		cfg.SlowWindow = 64
	}
	if cfg.FastBurn == 0 {
		cfg.FastBurn = 4
	}
	if cfg.SlowBurn == 0 {
		cfg.SlowBurn = 2
	}
	if cfg.FastWindow < 1 || cfg.FastWindow >= cfg.SlowWindow {
		return nil, fmt.Errorf("obs: burn windows must satisfy 1 <= fast (%d) < slow (%d)", cfg.FastWindow, cfg.SlowWindow)
	}
	if cfg.FastBurn <= 0 || cfg.SlowBurn <= 0 {
		return nil, fmt.Errorf("obs: burn thresholds must be positive")
	}
	return &BurnAlerter{cfg: cfg, ring: make([]int64, cfg.SlowWindow)}, nil
}

// Bind attaches registry instruments and the trace ring that alert
// events are emitted into. Either may be nil.
func (b *BurnAlerter) Bind(m *BurnMetrics, t *Trace) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.metrics = m
	b.trace = t
	b.mu.Unlock()
}

// Config returns the validated configuration (defaults applied).
func (b *BurnAlerter) Config() BurnConfig { return b.cfg }

// observe folds one charge into the windows; called by the Odometer
// with the charge size and the new cumulative total.
func (b *BurnAlerter) observe(ch int, micro, total int64) {
	b.mu.Lock()
	defer b.mu.Unlock()

	i := int(b.n % uint64(len(b.ring)))
	if b.n >= uint64(len(b.ring)) {
		b.slowSum -= b.ring[i]
	}
	if b.n >= uint64(b.cfg.FastWindow) {
		j := int((b.n - uint64(b.cfg.FastWindow)) % uint64(len(b.ring)))
		b.fastSum -= b.ring[j]
	}
	b.ring[i] = micro
	b.slowSum += micro
	b.fastSum += micro
	b.n++

	// Planned per-charge spend; both windows compare against it.
	plan := float64(b.cfg.EnvelopeMicroNats) / float64(b.cfg.HorizonCharges)
	fastN := b.n
	if fastN > uint64(b.cfg.FastWindow) {
		fastN = uint64(b.cfg.FastWindow)
	}
	slowN := b.n
	if slowN > uint64(len(b.ring)) {
		slowN = uint64(len(b.ring))
	}
	fastBurn := float64(b.fastSum) / float64(fastN) / plan
	slowBurn := float64(b.slowSum) / float64(slowN) / plan

	if m := b.metrics; m != nil {
		m.FastBurnMilli.Set(int64(fastBurn * 1000))
		m.SlowBurnMilli.Set(int64(slowBurn * 1000))
	}

	// Both windows must be hot; the fast window must be full so a
	// single early charge cannot trip the alert on a cold start.
	active := b.n >= uint64(b.cfg.FastWindow) &&
		fastBurn >= b.cfg.FastBurn && slowBurn >= b.cfg.SlowBurn
	if active && !b.active {
		b.alerts++
		if !b.tripped {
			b.tripped = true
			b.trippedAt = total
		}
		if m := b.metrics; m != nil {
			m.Alerts.Inc()
			m.AlertActive.Set(1)
		}
		if t := b.trace; t != nil {
			t.Emit(EvBurnAlert, 0, int64(ch), int64(fastBurn*1000), total)
		}
	}
	if !active && b.active {
		if m := b.metrics; m != nil {
			m.AlertActive.Set(0)
		}
	}
	b.active = active
}

// Tripped reports whether the alert has ever fired (latched).
func (b *BurnAlerter) Tripped() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tripped
}

// BurnSnapshot is the alerter's frozen state.
type BurnSnapshot struct {
	// Tripped is the latched alert status; Active the instantaneous
	// one.
	Tripped bool `json:"tripped"`
	Active  bool `json:"active"`
	// Alerts counts rising edges (quiet → alerting transitions).
	Alerts uint64 `json:"alerts"`
	// Charges is the number of charge events observed.
	Charges uint64 `json:"charges"`
	// TrippedAtMicroNats is the cumulative spend when the alert first
	// fired (0 if never).
	TrippedAtMicroNats int64 `json:"tripped_at_micro_nats"`
	// FastBurnMilli and SlowBurnMilli are the last computed window
	// burns in milli-multiples of the planned rate.
	FastBurnMilli int64 `json:"fast_burn_milli"`
	SlowBurnMilli int64 `json:"slow_burn_milli"`
}

// Snapshot freezes the alerter.
func (b *BurnAlerter) Snapshot() *BurnSnapshot {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &BurnSnapshot{
		Tripped:            b.tripped,
		Active:             b.active,
		Alerts:             b.alerts,
		Charges:            b.n,
		TrippedAtMicroNats: b.trippedAt,
	}
	if b.n > 0 {
		plan := float64(b.cfg.EnvelopeMicroNats) / float64(b.cfg.HorizonCharges)
		fastN := b.n
		if fastN > uint64(b.cfg.FastWindow) {
			fastN = uint64(b.cfg.FastWindow)
		}
		slowN := b.n
		if slowN > uint64(len(b.ring)) {
			slowN = uint64(len(b.ring))
		}
		s.FastBurnMilli = int64(float64(b.fastSum) / float64(fastN) / plan * 1000)
		s.SlowBurnMilli = int64(float64(b.slowSum) / float64(slowN) / plan * 1000)
	}
	return s
}

// BurnMetrics mirrors the alerter onto the registry.
type BurnMetrics struct {
	Alerts        *Counter // rising-edge alert count
	AlertActive   *Gauge   // 1 while the alert condition holds
	FastBurnMilli *Gauge   // fast-window burn, milli-multiples of plan
	SlowBurnMilli *Gauge   // slow-window burn, milli-multiples of plan
}

// NewBurnMetrics registers (or re-binds) the burn-alerter metric
// schema.
func NewBurnMetrics(r *Registry) *BurnMetrics {
	return &BurnMetrics{
		Alerts:        r.Counter("burn.alerts"),
		AlertActive:   r.Gauge("burn.alert_active"),
		FastBurnMilli: r.Gauge("burn.fast_burn_milli"),
		SlowBurnMilli: r.Gauge("burn.slow_burn_milli"),
	}
}
