package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync/atomic"
)

// perfettoEvent is one Chrome trace-event (the JSON array format that
// chrome://tracing and ui.perfetto.dev both load). Timestamps and
// durations are microseconds.
type perfettoEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoFile is the top-level trace-event JSON object.
type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// perfettoPid groups every span track under one "fleet" process row.
const perfettoPid = 1

// PerfettoJSON renders a flight snapshot as Chrome/Perfetto
// trace-event JSON: one thread track per node, a complete ("X") slice
// per traversed chain stage (noised → journal → tx → link rx → admit
// → checkpoint, each lasting until the next stamped stage), an instant
// for the ACK, and instants for the terminal degraded / replayed /
// abandoned stages. Burn-alert events from the shared trace ring may
// be appended with alerts (nil is fine). Events are ordered by
// (track, ts) so per-track timestamps are monotone by construction.
func PerfettoJSON(fs *FlightSnapshot, alerts []Event) ([]byte, error) {
	if fs == nil {
		return nil, fmt.Errorf("obs: nil flight snapshot")
	}
	var events []perfettoEvent
	seenNode := make(map[uint16]bool)
	for _, v := range fs.Spans {
		if !seenNode[v.Node] {
			seenNode[v.Node] = true
			events = append(events, perfettoEvent{
				Name: "thread_name", Ph: "M", Pid: perfettoPid, Tid: int64(v.Node),
				Args: map[string]any{"name": fmt.Sprintf("node %d", v.Node)},
			})
		}
		// Slices between consecutive stamped chain stages.
		stamped := make([]Stage, 0, len(chainStages))
		for _, st := range chainStages {
			if v.StampNs[st] != 0 {
				stamped = append(stamped, st)
			}
		}
		for i, st := range stamped {
			ts := float64(v.StampNs[st]) / 1e3
			if st == StageAck {
				events = append(events, perfettoEvent{
					Name: "ack", Cat: "report", Ph: "i", Ts: ts,
					Pid: perfettoPid, Tid: int64(v.Node), S: "t",
					Args: map[string]any{"seq": v.Seq},
				})
				continue
			}
			var dur float64
			if i+1 < len(stamped) {
				dur = float64(v.StampNs[stamped[i+1]])/1e3 - ts
			}
			ev := perfettoEvent{
				Name: st.String(), Cat: "report", Ph: "X", Ts: ts, Dur: dur,
				Pid: perfettoPid, Tid: int64(v.Node),
				Args: map[string]any{"seq": v.Seq, "hits": v.Hits[st]},
			}
			if st == StageNoised {
				ev.Args["tx_attempts"] = v.Hits[StageTx]
				ev.Args["retransmits"] = v.Retransmits()
			}
			events = append(events, ev)
		}
		for _, st := range []Stage{StageDegraded, StageReplayed, StageAbandoned} {
			if ts := v.StampNs[st]; ts != 0 {
				events = append(events, perfettoEvent{
					Name: st.String(), Cat: "report", Ph: "i", Ts: float64(ts) / 1e3,
					Pid: perfettoPid, Tid: int64(v.Node), S: "t",
					Args: map[string]any{"seq": v.Seq, "hits": v.Hits[st]},
				})
			}
		}
	}
	for _, e := range alerts {
		if e.Kind != EvBurnAlert {
			continue
		}
		events = append(events, perfettoEvent{
			Name: EvBurnAlert, Cat: "privacy", Ph: "i",
			// Trace events carry no flight-recorder clock; order them
			// by ring sequence at the track origin.
			Ts: float64(e.Seq), Pid: perfettoPid, Tid: -1, S: "g",
			Args: map[string]any{"fast_burn_milli": e.A, "spent_micro_nats": e.B},
		})
	}
	// Metadata first, then (track, ts): per-track monotonicity is the
	// shape the golden test pins.
	sort.SliceStable(events, func(i, j int) bool {
		if mi, mj := events[i].Ph == "M", events[j].Ph == "M"; mi != mj {
			return mi
		}
		if events[i].Tid != events[j].Tid {
			return events[i].Tid < events[j].Tid
		}
		return events[i].Ts < events[j].Ts
	})
	return json.MarshalIndent(perfettoFile{TraceEvents: events, DisplayTimeUnit: "ms"}, "", " ")
}

// ValidatePerfettoJSON structurally checks exported trace JSON: it
// must parse, and within each (pid, tid) track the non-metadata events
// must carry non-negative monotone timestamps and durations. Returns
// one message per violation.
func ValidatePerfettoJSON(data []byte) []string {
	var f perfettoFile
	if err := json.Unmarshal(data, &f); err != nil {
		return []string{"perfetto: invalid JSON: " + err.Error()}
	}
	var violations []string
	lastTs := make(map[[2]int64]float64)
	for i, e := range f.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		track := [2]int64{int64(e.Pid), e.Tid}
		if e.Ts < 0 || e.Dur < 0 {
			violations = append(violations, fmt.Sprintf("perfetto: event %d (%s) has negative ts/dur", i, e.Name))
		}
		if last, ok := lastTs[track]; ok && e.Ts < last {
			violations = append(violations, fmt.Sprintf("perfetto: event %d (%s) ts %.3f < previous %.3f on track %v", i, e.Name, e.Ts, last, track))
		}
		lastTs[track] = e.Ts
	}
	return violations
}

// AttributionRow is one line of the per-stage latency report: the
// latency distribution of a single stage transition, restricted to
// spans in one retransmit stratum.
type AttributionRow struct {
	// Transition names the stage pair, e.g. "tx-attempt→link-rx".
	Transition string `json:"transition"`
	// Stratum is the span's retransmit count bucket: "0", "1" or "2+".
	Stratum string `json:"stratum"`
	// Count is the number of spans contributing.
	Count uint64 `json:"count"`
	// P50/P95/P99 are interpolated latency quantiles in microseconds.
	P50 float64 `json:"p50_us"`
	P95 float64 `json:"p95_us"`
	P99 float64 `json:"p99_us"`
}

// attributionBounds buckets stage latencies (µs) for quantile
// estimation; wide enough for multi-second retry tails.
var attributionBounds = []int64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000, 10_000_000}

// Attribute builds the per-stage latency attribution report from a
// flight snapshot: for every consecutive stamped chain-stage pair of
// every ACKed span, the transition latency lands in a histogram keyed
// by (transition, retransmit stratum); rows carry interpolated
// p50/p95/p99. Rows are sorted by chain position, then stratum.
func Attribute(fs *FlightSnapshot) []AttributionRow {
	if fs == nil {
		return nil
	}
	type key struct {
		order   int
		name    string
		stratum string
	}
	hists := make(map[key]*Histogram)
	for _, v := range fs.Spans {
		if !v.Acked() {
			continue
		}
		stratum := "0"
		switch r := v.Retransmits(); {
		case r == 1:
			stratum = "1"
		case r >= 2:
			stratum = "2+"
		}
		prev, prevIdx := Stage(0), -1
		for idx, st := range chainStages {
			if v.StampNs[st] == 0 {
				continue
			}
			if prevIdx >= 0 {
				k := key{order: idx, name: prev.String() + "→" + st.String(), stratum: stratum}
				h := hists[k]
				if h == nil {
					h = &Histogram{bounds: attributionBounds, counts: make([]atomic.Uint64, len(attributionBounds)+1)}
					hists[k] = h
				}
				h.Observe((v.StampNs[st] - v.StampNs[prev]) / 1_000)
			}
			prev, prevIdx = st, idx
		}
		// End-to-end row, ordered after every per-stage transition.
		k := key{order: len(chainStages), name: "noised→ack (total)", stratum: stratum}
		h := hists[k]
		if h == nil {
			h = &Histogram{bounds: attributionBounds, counts: make([]atomic.Uint64, len(attributionBounds)+1)}
			hists[k] = h
		}
		h.Observe((v.StampNs[StageAck] - v.StampNs[StageNoised]) / 1_000)
	}
	keys := make([]key, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].order != keys[j].order {
			return keys[i].order < keys[j].order
		}
		if keys[i].name != keys[j].name {
			return keys[i].name < keys[j].name
		}
		return keys[i].stratum < keys[j].stratum
	})
	rows := make([]AttributionRow, 0, len(keys))
	for _, k := range keys {
		s := hists[k].snapshot()
		rows = append(rows, AttributionRow{
			Transition: k.name,
			Stratum:    k.stratum,
			Count:      s.Count,
			P50:        s.Quantile(0.50),
			P95:        s.Quantile(0.95),
			P99:        s.Quantile(0.99),
		})
	}
	return rows
}
