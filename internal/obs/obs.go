// Package obs is the telemetry plane: atomic counters, fixed-bucket
// histograms, a ring-buffer event tracer, and a privacy odometer,
// collected in a process-wide Registry snapshotable to JSON and
// expvar.
//
// The package follows the same zero-cost-when-nil hook discipline as
// internal/fault: a component holds a pointer to its (pre-registered)
// metrics struct, and every hook site is
//
//	if m := c.obs; m != nil { m.Something.Inc() }
//
// so a disabled plane costs one pointer load and a nil compare on the
// hot path and allocates nothing. An enabled plane costs atomic
// adds on pre-allocated instruments — no allocation either, so
// telemetry can stay on in production without touching the noise
// path's allocation profile (the Benchmark gate in bench_test.go pins
// both claims).
//
// Instruments are registered by name; registration is idempotent
// (asking for an existing name returns the existing instrument), which
// lets many components — every link of a fleet, every channel of a
// bank — share one instrument by agreeing on its name. Registering
// the same name as two different instrument kinds, or with conflicting
// shape (histogram bounds, odometer channels), panics: that is a
// wiring error, caught at configuration time like a mis-declared VCD
// signal (DESIGN.md §6).
package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram over int64 observations. The
// bounds are inclusive upper bucket edges; one extra overflow bucket
// catches everything above the last bound. Buckets are atomic, so
// concurrent Observe calls never lock, and the bucket count is fixed
// at registration, so Observe never allocates.
type Histogram struct {
	bounds []int64
	counts []atomic.Uint64
	sum    atomic.Int64
	n      atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// snapshot copies the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.n.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// odoUnit is the odometer's fixed-point resolution: one micronat.
// The DP-Box's sixteenth-nat charge unit is an exact multiple
// (62500 µnat), so hardware charges accumulate without rounding; the
// software budget controller's real-valued charges round to the
// nearest micronat (documented loss well below any ε of interest).
const odoUnit = 1e-6

// Odometer is the privacy odometer: cumulative privacy loss charged
// per channel, in micronats, monotone by construction — an odometer
// never rolls back, even when the budget it mirrors is replenished
// (replenish events are counted separately). It is the operator-facing
// dual of the budget ledger: the ledger says what may still be spent,
// the odometer proves what was spent.
type Odometer struct {
	channels []atomic.Int64 // spent µnats per channel
	total    atomic.Int64
	charges  atomic.Uint64
	repl     atomic.Uint64
	burn     atomic.Pointer[BurnAlerter] // optional burn-rate sink
}

// MicroNats converts nats to the odometer's integer resolution.
func MicroNats(nats float64) int64 { return int64(math.Round(nats / odoUnit)) }

// Charge records a privacy charge of the given size against a channel
// (clamped into the registered channel range).
func (o *Odometer) Charge(ch int, nats float64) {
	if ch < 0 {
		ch = 0
	}
	if ch >= len(o.channels) {
		ch = len(o.channels) - 1
	}
	u := MicroNats(nats)
	o.channels[ch].Add(u)
	t := o.total.Add(u)
	o.charges.Add(1)
	if ba := o.burn.Load(); ba != nil {
		ba.observe(ch, u, t)
	}
}

// SetBurn attaches (or detaches, with nil) a burn-rate alerter: every
// subsequent Charge is folded into its sliding windows. Without a
// sink, the extra cost is one atomic pointer load per charge.
func (o *Odometer) SetBurn(ba *BurnAlerter) { o.burn.Store(ba) }

// Replenish counts one budget refill event. The cumulative spend is
// untouched: replenishment restores the ledger, not history.
func (o *Odometer) Replenish() { o.repl.Add(1) }

// Channels returns the registered channel count.
func (o *Odometer) Channels() int { return len(o.channels) }

// SpentMicro returns a channel's cumulative spend in micronats.
func (o *Odometer) SpentMicro(ch int) int64 {
	if ch < 0 || ch >= len(o.channels) {
		return 0
	}
	return o.channels[ch].Load()
}

// SpentNats returns a channel's cumulative spend in nats.
func (o *Odometer) SpentNats(ch int) float64 {
	return float64(o.SpentMicro(ch)) * odoUnit
}

// TotalMicro returns the cumulative spend across all channels in
// micronats.
func (o *Odometer) TotalMicro() int64 { return o.total.Load() }

// TotalNats returns the cumulative spend across all channels in nats.
func (o *Odometer) TotalNats() float64 { return float64(o.total.Load()) * odoUnit }

// Charges returns the number of charge events recorded.
func (o *Odometer) Charges() uint64 { return o.charges.Load() }

// Replenishes returns the number of refill events recorded.
func (o *Odometer) Replenishes() uint64 { return o.repl.Load() }

func (o *Odometer) snapshot() OdometerSnapshot {
	s := OdometerSnapshot{
		ChannelMicroNats: make([]int64, len(o.channels)),
		TotalMicroNats:   o.total.Load(),
		Charges:          o.charges.Load(),
		Replenishes:      o.repl.Load(),
	}
	for i := range o.channels {
		s.ChannelMicroNats[i] = o.channels[i].Load()
	}
	s.TotalNats = float64(s.TotalMicroNats) * odoUnit
	return s
}

// Event is one entry in a trace ring: a named occurrence with its
// emitter's clock and three small operands whose meaning is
// per-kind (documented in docs/observability.md).
type Event struct {
	// Seq is the event's global position in the ring's history
	// (monotone even after the ring wraps).
	Seq uint64 `json:"seq"`
	// Cycle is the emitter's clock at emission (device cycles for
	// DP-Box events, 0 where the emitter has no cycle counter).
	Cycle uint64 `json:"cycle"`
	// Kind names the event (a package-level constant string, so
	// emission does not allocate).
	Kind string `json:"kind"`
	// Node identifies the channel/node the event belongs to (-1 when
	// not applicable).
	Node int64 `json:"node"`
	// A and B are per-kind operands (a charge in budget units, a
	// sequence number, a latency, ...).
	A int64 `json:"a"`
	B int64 `json:"b"`
}

// Trace is a fixed-capacity ring buffer of events: the most recent
// capacity events survive, older ones are overwritten. Emission is a
// mutex-guarded copy into a preallocated slot — no allocation, and
// cheap enough to leave on in production.
type Trace struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever emitted
}

// Emit appends one event to the ring.
func (t *Trace) Emit(kind string, cycle uint64, node, a, b int64) {
	t.mu.Lock()
	i := t.next % uint64(len(t.buf))
	t.buf[i] = Event{Seq: t.next, Cycle: cycle, Kind: kind, Node: node, A: a, B: b}
	t.next++
	t.mu.Unlock()
}

// Emitted returns the total number of events ever emitted.
func (t *Trace) Emitted() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.next
}

// Events returns the surviving events, oldest first.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	cap64 := uint64(len(t.buf))
	count := n
	if count > cap64 {
		count = cap64
	}
	out := make([]Event, 0, count)
	for i := n - count; i < n; i++ {
		out = append(out, t.buf[i%cap64])
	}
	return out
}

func (t *Trace) snapshot() TraceSnapshot {
	return TraceSnapshot{Emitted: t.Emitted(), Events: t.Events()}
}

// Registry is the process-wide instrument namespace. All methods are
// safe for concurrent use; instrument registration is idempotent by
// (name, kind, shape).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	odos     map[string]*Odometer
	traces   map[string]*Trace
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		odos:     make(map[string]*Odometer),
		traces:   make(map[string]*Trace),
	}
}

// checkFresh panics if name is already registered as another kind.
func (r *Registry) checkFresh(name, kind string) {
	for k, taken := range map[string]bool{
		"counter":   r.counters[name] != nil,
		"gauge":     r.gauges[name] != nil,
		"histogram": r.hists[name] != nil,
		"odometer":  r.odos[name] != nil,
		"trace":     r.traces[name] != nil,
	} {
		if taken && k != kind {
			panic(fmt.Sprintf("obs: metric %q already registered as a %s, requested as a %s", name, k, kind))
		}
	}
}

// Counter returns (registering if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[name]; c != nil {
		return c
	}
	r.checkFresh(name, "counter")
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns (registering if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g := r.gauges[name]; g != nil {
		return g
	}
	r.checkFresh(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns (registering if needed) the named histogram with
// the given ascending inclusive upper bucket bounds. Re-registration
// with different bounds panics.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h := r.hists[name]; h != nil {
		if len(h.bounds) != len(bounds) {
			panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
		}
		for i := range bounds {
			if h.bounds[i] != bounds[i] {
				panic(fmt.Sprintf("obs: histogram %q re-registered with different bounds", name))
			}
		}
		return h
	}
	r.checkFresh(name, "histogram")
	h := &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.hists[name] = h
	return h
}

// Odometer returns (registering if needed) the named odometer with the
// given channel count. Re-registration with a different channel count
// panics.
func (r *Registry) Odometer(name string, channels int) *Odometer {
	if channels < 1 {
		channels = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if o := r.odos[name]; o != nil {
		if len(o.channels) != channels {
			panic(fmt.Sprintf("obs: odometer %q re-registered with %d channels, have %d", name, channels, len(o.channels)))
		}
		return o
	}
	r.checkFresh(name, "odometer")
	o := &Odometer{channels: make([]atomic.Int64, channels)}
	r.odos[name] = o
	return o
}

// Trace returns (registering if needed) the named trace ring with the
// given capacity (minimum 16; the first registration wins the
// capacity, later ones reuse the ring).
func (r *Registry) Trace(name string, capacity int) *Trace {
	if capacity < 16 {
		capacity = 16
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t := r.traces[name]; t != nil {
		return t
	}
	r.checkFresh(name, "trace")
	t := &Trace{buf: make([]Event, capacity)}
	r.traces[name] = t
	return t
}

// Names returns every registered metric name, sorted — the schema the
// golden test pins.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0,
		len(r.counters)+len(r.gauges)+len(r.hists)+len(r.odos)+len(r.traces))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	for n := range r.odos {
		names = append(names, n)
	}
	for n := range r.traces {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramSnapshot is one histogram's frozen state.
type HistogramSnapshot struct {
	// Bounds are the inclusive upper bucket edges.
	Bounds []int64 `json:"bounds"`
	// Counts has len(Bounds)+1 entries; the last is the overflow
	// bucket.
	Counts []uint64 `json:"counts"`
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum int64 `json:"sum"`
}

// Quantile estimates the q-quantile (q in [0, 1], clamped) by linear
// interpolation inside the target bucket, the standard Prometheus
// histogram_quantile estimator. Special cases keep it honest at the
// edges:
//
//   - an empty histogram returns NaN (as does a NaN q);
//   - when all mass sits in a single bucket, the mean Sum/Count —
//     exact for a constant stream — is returned, clamped into the
//     bucket;
//   - mass in the overflow bucket pins the estimate to the last bound
//     (the histogram cannot see further).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	occupied, multi := -1, false
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if occupied >= 0 {
			multi = true
			break
		}
		occupied = i
	}
	if !multi {
		lo, hi := s.bucketEdges(occupied)
		mean := float64(s.Sum) / float64(s.Count)
		if mean < lo {
			return lo
		}
		if mean > hi {
			return hi
		}
		return mean
	}
	target := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			lo, hi := s.bucketEdges(i)
			if i == len(s.Counts)-1 {
				return hi // overflow bucket: pin to the last bound
			}
			return lo + (hi-lo)*(target-cum)/float64(c)
		}
		cum = next
	}
	_, hi := s.bucketEdges(len(s.Counts) - 1)
	return hi
}

// bucketEdges returns bucket i's [lower, upper] value range. The first
// bucket's lower edge is 0 for non-negative bound sets (the common
// latency/count case) and the bound itself otherwise; the overflow
// bucket collapses to the last bound.
func (s HistogramSnapshot) bucketEdges(i int) (lo, hi float64) {
	last := float64(s.Bounds[len(s.Bounds)-1])
	if i >= len(s.Bounds) {
		return last, last
	}
	hi = float64(s.Bounds[i])
	switch {
	case i > 0:
		lo = float64(s.Bounds[i-1])
	case s.Bounds[0] >= 0:
		lo = 0
	default:
		lo = hi
	}
	return lo, hi
}

// OdometerSnapshot is one odometer's frozen state.
type OdometerSnapshot struct {
	// ChannelMicroNats is the cumulative spend per channel, µnats.
	ChannelMicroNats []int64 `json:"channel_micro_nats"`
	// TotalMicroNats is the cumulative spend across channels, µnats.
	TotalMicroNats int64 `json:"total_micro_nats"`
	// TotalNats is TotalMicroNats in nats, for human eyes.
	TotalNats float64 `json:"total_nats"`
	// Charges counts charge events.
	Charges uint64 `json:"charges"`
	// Replenishes counts budget refill events.
	Replenishes uint64 `json:"replenishes"`
}

// TraceSnapshot is one trace ring's frozen state.
type TraceSnapshot struct {
	// Emitted is the total number of events ever emitted.
	Emitted uint64 `json:"emitted"`
	// Events are the surviving events, oldest first.
	Events []Event `json:"events"`
}

// Snapshot is a point-in-time copy of every instrument in a registry.
// Counters and gauges are plain values; maps marshal with sorted keys,
// so the JSON form is deterministic given deterministic values.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Odometers  map[string]OdometerSnapshot  `json:"odometers,omitempty"`
	Traces     map[string]TraceSnapshot     `json:"traces,omitempty"`
}

// Snapshot freezes the registry. Instruments keep counting afterwards;
// the snapshot is a copy.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Counters: make(map[string]uint64, len(r.counters))}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for n, h := range r.hists {
			s.Histograms[n] = h.snapshot()
		}
	}
	if len(r.odos) > 0 {
		s.Odometers = make(map[string]OdometerSnapshot, len(r.odos))
		for n, o := range r.odos {
			s.Odometers[n] = o.snapshot()
		}
	}
	if len(r.traces) > 0 {
		s.Traces = make(map[string]TraceSnapshot, len(r.traces))
		for n, t := range r.traces {
			s.Traces[n] = t.snapshot()
		}
	}
	return s
}

// MarshalJSON renders a snapshot of the registry.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// PublishExpvar exposes the registry under the given expvar name
// (visible on /debug/vars when an HTTP server runs). Publishing the
// same name twice is a no-op rather than the expvar panic, so
// simulators can wire it unconditionally.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
