package obs

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentInstruments hammers every instrument kind from many
// goroutines; run under -race this is the plane's concurrency gate.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", []int64{1, 2, 4, 8})
	o := r.Odometer("o", 4)
	tr := r.Trace("t", 32)

	const (
		workers = 8
		iters   = 1000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(int64(i % 10))
				o.Charge(w%4, 0.0625)
				tr.Emit("tick", uint64(i), int64(w), int64(i), 0)
				// Concurrent re-registration must return the same
				// instruments, not fresh ones.
				if r.Counter("c") != c || r.Odometer("o", 4) != o {
					panic("registry returned a different instrument")
				}
				_ = r.Snapshot()
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*iters {
		t.Fatalf("counter %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Fatalf("gauge %d, want %d", g.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Fatalf("histogram count %d, want %d", h.Count(), workers*iters)
	}
	if o.Charges() != workers*iters {
		t.Fatalf("odometer charges %d, want %d", o.Charges(), workers*iters)
	}
	wantMicro := int64(workers * iters * 62500)
	if o.TotalMicro() != wantMicro {
		t.Fatalf("odometer total %d µnat, want %d", o.TotalMicro(), wantMicro)
	}
	if tr.Emitted() != workers*iters {
		t.Fatalf("trace emitted %d, want %d", tr.Emitted(), workers*iters)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []int64{0, 10, 100})
	for _, v := range []int64{-5, 0, 1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	s := h.snapshot()
	// Bounds are inclusive upper edges: (-inf,0], (0,10], (10,100], (100,inf).
	want := []uint64{2, 2, 2, 2}
	if !reflect.DeepEqual(s.Counts, want) {
		t.Fatalf("bucket counts %v, want %v", s.Counts, want)
	}
	if s.Count != 8 || s.Sum != -5+0+1+10+11+100+101+5000 {
		t.Fatalf("count/sum %d/%d", s.Count, s.Sum)
	}
}

func TestTraceRingWraps(t *testing.T) {
	r := NewRegistry()
	tr := r.Trace("ring", 16)
	for i := 0; i < 40; i++ {
		tr.Emit("e", uint64(i), 0, int64(i), 0)
	}
	ev := tr.Events()
	if len(ev) != 16 {
		t.Fatalf("ring kept %d events, want 16", len(ev))
	}
	for i, e := range ev {
		wantSeq := uint64(40 - 16 + i)
		if e.Seq != wantSeq || e.A != int64(wantSeq) {
			t.Fatalf("event %d: %+v, want seq %d", i, e, wantSeq)
		}
	}
	if tr.Emitted() != 40 {
		t.Fatalf("emitted %d, want 40", tr.Emitted())
	}
}

func TestOdometerMonotoneAndClamped(t *testing.T) {
	r := NewRegistry()
	o := r.Odometer("odo", 2)
	o.Charge(0, 0.5)
	o.Charge(1, 0.25)
	o.Charge(-3, 0.125) // clamps to channel 0
	o.Charge(99, 0.125) // clamps to channel 1
	o.Replenish()
	if got := o.SpentMicro(0); got != 625000 {
		t.Fatalf("channel 0: %d µnat", got)
	}
	if got := o.SpentMicro(1); got != 375000 {
		t.Fatalf("channel 1: %d µnat", got)
	}
	if o.TotalNats() != 1.0 {
		t.Fatalf("total %g nats", o.TotalNats())
	}
	if o.Replenishes() != 1 {
		t.Fatalf("replenishes %d", o.Replenishes())
	}
	// A replenish never shrinks the odometer.
	if o.TotalMicro() != 1000000 {
		t.Fatalf("replenish rolled back the odometer: %d", o.TotalMicro())
	}
	// Sixteenth-nat hardware charge units are exact in micronats.
	for u := 1; u <= 32; u++ {
		if MicroNats(float64(u)/16)%62500 != 0 {
			t.Fatalf("charge unit %d not exact in µnat", u)
		}
	}
}

func TestRegistryShapeConflictsPanic(t *testing.T) {
	mustPanic := func(what string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", what)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("x")
	mustPanic("kind conflict", func() { r.Gauge("x") })
	r.Histogram("h", []int64{1, 2})
	mustPanic("bounds conflict", func() { r.Histogram("h", []int64{1, 3}) })
	mustPanic("bounds length conflict", func() { r.Histogram("h", []int64{1}) })
	mustPanic("unordered bounds", func() { r.Histogram("h2", []int64{2, 2}) })
	mustPanic("empty bounds", func() { r.Histogram("h3", nil) })
	r.Odometer("o", 3)
	mustPanic("channel conflict", func() { r.Odometer("o", 4) })
}

func TestNamesSortedAndSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count")
	r.Gauge("a.gauge")
	r.Histogram("c.hist", []int64{1})
	r.Odometer("d.odo", 1).Charge(0, 0.5)
	r.Trace("e.trace", 16).Emit("boot", 7, 1, 2, 3)

	want := []string{"a.gauge", "b.count", "c.hist", "d.odo", "e.trace"}
	if got := r.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}

	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v\n%s", err, raw)
	}
	if back.Odometers["d.odo"].TotalMicroNats != 500000 {
		t.Fatalf("odometer lost in JSON: %s", raw)
	}
	if ev := back.Traces["e.trace"].Events; len(ev) != 1 || ev[0].Kind != "boot" || ev[0].Cycle != 7 {
		t.Fatalf("trace lost in JSON: %s", raw)
	}
	// Marshalling twice yields identical bytes (sorted map keys), the
	// property the golden schema test relies on.
	raw2, _ := json.Marshal(r)
	if string(raw) != string(raw2) {
		t.Fatal("snapshot JSON not deterministic")
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	r := NewRegistry()
	r.Counter("pub.count").Add(3)
	// Publishing twice must not panic (expvar.Publish would).
	r.PublishExpvar("ulpdp-test")
	r.PublishExpvar("ulpdp-test")
}

// TestTraceEventsOldestFirst pins the ordering contract before the
// ring wraps too.
func TestTraceEventsOldestFirst(t *testing.T) {
	r := NewRegistry()
	tr := r.Trace("small", 16)
	for i := 0; i < 5; i++ {
		tr.Emit(fmt.Sprintf("k%d", i), uint64(i), 0, 0, 0)
	}
	ev := tr.Events()
	if len(ev) != 5 {
		t.Fatalf("got %d events", len(ev))
	}
	for i, e := range ev {
		if e.Kind != fmt.Sprintf("k%d", i) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
}
