package obs

import (
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("dpbox.transactions").Add(9)
	r.Gauge("collector.queue_depth").Set(-2)
	h := r.Histogram("node.report_latency_us", []int64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000) // overflow
	o := r.Odometer("budget.odometer", 2)
	o.Charge(0, 0.5)
	o.Charge(1, 0.25)
	o.Replenish()
	r.Trace("trace", 16).Emit("x", 0, 0, 0, 0)

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# TYPE dpbox_transactions counter\ndpbox_transactions 9\n",
		"# TYPE collector_queue_depth gauge\ncollector_queue_depth -2\n",
		"# TYPE node_report_latency_us histogram\n",
		"node_report_latency_us_bucket{le=\"10\"} 1\n",
		"node_report_latency_us_bucket{le=\"100\"} 2\n",
		"node_report_latency_us_bucket{le=\"+Inf\"} 3\n",
		"node_report_latency_us_sum 5055\n",
		"node_report_latency_us_count 3\n",
		"budget_odometer_micro_nats{channel=\"0\"} 500000\n",
		"budget_odometer_micro_nats{channel=\"1\"} 250000\n",
		"budget_odometer_total_micro_nats 750000\n",
		"budget_odometer_charges 2\n",
		"budget_odometer_replenishes 1\n",
		"# TYPE trace_events_emitted counter\ntrace_events_emitted 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}

	// Every line is either a comment or `name{labels} value`, and
	// every metric name sticks to the Prometheus charset.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, _, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed sample line %q", line)
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		for _, c := range name {
			if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':') {
				t.Fatalf("metric name %q contains invalid rune %q", name, c)
			}
		}
	}
}

func TestPromNameMangling(t *testing.T) {
	for in, want := range map[string]string{
		"dpbox.urng_draws": "dpbox_urng_draws",
		"9lives":           "_9lives",
		"a-b.c":            "a_b_c",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
