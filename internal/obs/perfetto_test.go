package obs

import (
	"encoding/json"
	"testing"
)

// recordChain stamps a full healthy chain for (node, seq).
func recordChain(fr *FlightRecorder, node int64, seq uint64, retransmits int) {
	fr.Record(node, seq, StageNoised)
	fr.Record(node, seq, StageJournal)
	for i := 0; i <= retransmits; i++ {
		fr.Record(node, seq, StageTx)
	}
	fr.Record(node, seq, StageLinkRx)
	fr.Record(node, seq, StageAdmit)
	fr.Record(node, seq, StageCheckpoint)
	fr.Record(node, seq, StageAck)
}

func TestPerfettoJSONShape(t *testing.T) {
	fr := NewFlightRecorder(64)
	for n := int64(0); n < 3; n++ {
		for s := uint64(0); s < 4; s++ {
			recordChain(fr, n, s, int(n))
		}
	}
	alerts := []Event{{Kind: EvBurnAlert, Seq: 1, Node: 0, A: 5000, B: 123}}
	data, err := PerfettoJSON(fr.Snapshot(), alerts)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatal("exporter emitted invalid JSON")
	}
	if got := ValidatePerfettoJSON(data); len(got) != 0 {
		t.Fatalf("shape violations: %v", got)
	}

	var f perfettoFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	// One thread-name metadata event per node, one ack instant per
	// span, one burn-alert instant.
	meta, acks, burns := 0, 0, 0
	for _, e := range f.TraceEvents {
		switch {
		case e.Ph == "M":
			meta++
		case e.Name == "ack":
			acks++
		case e.Name == EvBurnAlert:
			burns++
		}
	}
	if meta != 3 {
		t.Errorf("metadata events = %d, want 3", meta)
	}
	if acks != 12 {
		t.Errorf("ack instants = %d, want 12", acks)
	}
	if burns != 1 {
		t.Errorf("burn instants = %d, want 1", burns)
	}
}

func TestValidatePerfettoJSONCatchesDisorder(t *testing.T) {
	bad := []byte(`{"traceEvents":[
		{"name":"a","ph":"X","ts":10,"pid":1,"tid":1},
		{"name":"b","ph":"X","ts":5,"pid":1,"tid":1}
	]}`)
	if got := ValidatePerfettoJSON(bad); len(got) == 0 {
		t.Fatal("validator missed out-of-order timestamps")
	}
	if got := ValidatePerfettoJSON([]byte("not json")); len(got) == 0 {
		t.Fatal("validator accepted garbage")
	}
}

func TestAttributeReport(t *testing.T) {
	fr := NewFlightRecorder(64)
	recordChain(fr, 0, 0, 0)
	recordChain(fr, 0, 1, 0)
	recordChain(fr, 1, 0, 1)
	recordChain(fr, 1, 1, 3)
	// An unacked span must not contribute.
	fr.Record(2, 0, StageNoised)
	fr.Record(2, 0, StageTx)

	rows := Attribute(fr.Snapshot())
	if len(rows) == 0 {
		t.Fatal("no attribution rows")
	}
	strata := map[string]uint64{}
	totalRows := 0
	for _, r := range rows {
		if r.Count == 0 {
			t.Errorf("row %+v has zero count", r)
		}
		if r.P50 > r.P95 || r.P95 > r.P99 {
			t.Errorf("row %+v quantiles not monotone", r)
		}
		if r.Transition == "noised→ack (total)" {
			strata[r.Stratum] += r.Count
			totalRows++
		}
	}
	// 2 spans with 0 retransmits, 1 with 1, 1 with 2+.
	if strata["0"] != 2 || strata["1"] != 1 || strata["2+"] != 1 {
		t.Fatalf("stratum totals = %v, want 0:2 1:1 2+:1", strata)
	}
	if totalRows != 3 {
		t.Fatalf("total rows = %d, want 3 strata", totalRows)
	}
}
