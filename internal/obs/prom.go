package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// PrometheusContentType is the Content-Type of the text exposition
// format version 0.0.4 served at /metrics.
const PrometheusContentType = "text/plain; version=0.0.4"

// promName mangles a registry metric name into the Prometheus metric
// name charset [a-zA-Z0-9_:] ('.' and anything else become '_').
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders a registry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as plain
// samples, histograms as cumulative `_bucket{le=…}` series plus
// `_sum`/`_count`, odometers as per-channel labeled series, and trace
// rings as their emitted-event counters. Families are emitted in
// sorted name order, so the output is deterministic for a
// deterministic snapshot.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, name := range sortedKeys(s.Counters) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, bound, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			n, h.Count, n, h.Sum, n, h.Count); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Odometers) {
		o := s.Odometers[name]
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s_micro_nats counter\n", n); err != nil {
			return err
		}
		for ch, spent := range o.ChannelMicroNats {
			if _, err := fmt.Fprintf(w, "%s_micro_nats{channel=\"%d\"} %d\n", n, ch, spent); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w,
			"# TYPE %s_total_micro_nats counter\n%s_total_micro_nats %d\n"+
				"# TYPE %s_charges counter\n%s_charges %d\n"+
				"# TYPE %s_replenishes counter\n%s_replenishes %d\n",
			n, n, o.TotalMicroNats, n, n, o.Charges, n, n, o.Replenishes); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Traces) {
		n := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s_events_emitted counter\n%s_events_emitted %d\n",
			n, n, s.Traces[name].Emitted); err != nil {
			return err
		}
	}
	return nil
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
