package experiments

import (
	"io"

	"ulpdp/internal/dpbox"
	"ulpdp/internal/hwmodel"
	"ulpdp/internal/msp430"
	"ulpdp/internal/node"
	"ulpdp/internal/urng"
)

// SectionIIIDResult reproduces the Section III-D software-vs-hardware
// comparison: cycles to noise one sensor value in software (20-bit
// fixed point and half precision, on the MSP430 emulator) against the
// DP-Box (2 cycles, conservatively 4 with the MSP430's memory write
// and read), plus the implied energy ratios.
type SectionIIIDResult struct {
	// FxPCycles and F16Cycles are the measured average software
	// latencies (the paper's numbers are 4043 and 1436).
	FxPCycles, F16Cycles float64
	// HWCycles is the DP-Box transaction latency (thresholding).
	HWCycles float64
	// HWConservativeCycles adds the MSP430 write/read (the paper's
	// conservative 4-cycle figure).
	HWConservativeCycles float64
	// EnergyRatioFxP and EnergyRatioF16 are software/hardware energy
	// ratios at equal power draw (the paper reports 894x and 318x,
	// noting the true hardware power is far below the MCU's — the
	// ratio grows once that is accounted for).
	EnergyRatioFxP, EnergyRatioF16 float64
	// BudgetUpdateCycles is the software cost of Algorithm 1's
	// per-request bookkeeping, which the paper's software latencies
	// exclude; the DP-Box performs it in the same noising cycle.
	BudgetUpdateCycles float64
	// FirmwareCycles is the measured end-to-end cost of a noising
	// transaction driven by real MSP430 firmware over the memory-
	// mapped DP-Box (internal/node) — the empirical version of the
	// paper's conservative 4-cycle assumption, including all MMIO
	// writes and ready-polling.
	FirmwareCycles float64
}

// SectionIIID runs both software routines and a DP-Box side by side.
func SectionIIID(cfg Config) (SectionIIIDResult, error) {
	if err := cfg.Validate(); err != nil {
		return SectionIIIDResult{}, err
	}
	iters := 50 * cfg.Trials
	avgSW := func(prec msp430.Precision) (float64, error) {
		n, err := msp430.NewSoftNoiser(prec, cfg.Seed)
		if err != nil {
			return 0, err
		}
		var total uint64
		for i := 0; i < iters; i++ {
			_, cycles, err := n.Noise(100, 64, -3000, 3000)
			if err != nil {
				return 0, err
			}
			total += cycles
		}
		return float64(total) / float64(iters), nil
	}
	fxp, err := avgSW(msp430.FixedPoint20)
	if err != nil {
		return SectionIIIDResult{}, err
	}
	f16, err := avgSW(msp430.HalfPrecision)
	if err != nil {
		return SectionIIIDResult{}, err
	}

	box, err := dpbox.New(dpbox.Config{Bu: rngBu, By: rngBy, Mult: cfg.Mult, Source: urng.NewTaus88(cfg.Seed)})
	if err != nil {
		return SectionIIIDResult{}, err
	}
	if err := box.Initialize(1e9, 0); err != nil {
		return SectionIIIDResult{}, err
	}
	if err := box.Configure(1, 0, 256); err != nil {
		return SectionIIIDResult{}, err
	}
	var totalHW uint64
	for i := 0; i < iters; i++ {
		r, err := box.NoiseValue(100)
		if err != nil {
			return SectionIIIDResult{}, err
		}
		totalHW += uint64(r.Cycles)
	}
	hw := float64(totalHW) / float64(iters)
	cons := hw + 2 // one MSP430 memory write + one read

	// Software budget update (Algorithm 1 bookkeeping) over a spread
	// of outputs.
	bu, err := msp430.NewBudgetUpdater(60000, 50, 120, 8, 10, 16, 0, 256)
	if err != nil {
		return SectionIIIDResult{}, err
	}
	var buTotal uint64
	buOutputs := []int16{-300, -60, 10, 128, 250, 290, 360, 1000}
	for i := 0; i < iters; i++ {
		_, cycles, err := bu.Update(buOutputs[i%len(buOutputs)])
		if err != nil {
			return SectionIIIDResult{}, err
		}
		buTotal += cycles
	}

	// Full-node measurement: real firmware driving the DP-Box over
	// its register file.
	fwBox, err := dpbox.New(dpbox.Config{Bu: rngBu, By: rngBy, Mult: cfg.Mult, Source: urng.NewTaus88(cfg.Seed + 7)})
	if err != nil {
		return SectionIIIDResult{}, err
	}
	if err := fwBox.Initialize(1e9, 0); err != nil {
		return SectionIIIDResult{}, err
	}
	nd := node.New(fwBox, 0x0180)
	drv, err := node.NewDriver(nd, 1, 0, 256)
	if err != nil {
		return SectionIIIDResult{}, err
	}
	if err := drv.Configure(); err != nil {
		return SectionIIIDResult{}, err
	}
	var fwTotal uint64
	for i := 0; i < iters; i++ {
		_, cycles, err := drv.Noise(100)
		if err != nil {
			return SectionIIIDResult{}, err
		}
		fwTotal += cycles
	}

	return SectionIIIDResult{
		FirmwareCycles:     float64(fwTotal) / float64(iters),
		BudgetUpdateCycles: float64(buTotal) / float64(iters),
		FxPCycles:          fxp, F16Cycles: f16,
		HWCycles: hw, HWConservativeCycles: cons,
		EnergyRatioFxP: fxp / cons, EnergyRatioF16: f16 / cons,
	}, nil
}

// Print renders the result.
func (r SectionIIIDResult) Print(w io.Writer) {
	fprintf(w, "Section III-D: software vs hardware noising latency\n")
	fprintf(w, "%-36s %10s\n", "implementation", "cycles")
	fprintf(w, "%-36s %10.0f   (paper: 4043)\n", "MSP430 software, 20-bit fixed point", r.FxPCycles)
	fprintf(w, "%-36s %10.0f   (paper: 1436)\n", "MSP430 software, half precision", r.F16Cycles)
	fprintf(w, "%-36s %10.1f   (paper: 1-2)\n", "DP-Box (hardware)", r.HWCycles)
	fprintf(w, "%-36s %10.1f   (paper: 4)\n", "DP-Box + MCU write/read", r.HWConservativeCycles)
	fprintf(w, "%-36s %10.1f   (excluded from the paper's figures)\n",
		"software budget update (Algorithm 1)", r.BudgetUpdateCycles)
	fprintf(w, "%-36s %10.1f   (measured: MMIO writes + polling)\n",
		"MSP430 firmware driving DP-Box", r.FirmwareCycles)
	fprintf(w, "energy ratio (equal power): fixed point %.0fx, half precision %.0fx (paper: 894x, 318x)\n",
		r.EnergyRatioFxP, r.EnergyRatioF16)
}

// SectionVVariant is one synthesized design point.
type SectionVVariant struct {
	Label  string
	Config hwmodel.Config
	Report hwmodel.Report
}

// SectionVResult reproduces the Section V synthesis exploration: the
// published design point plus the latency/area trade-off variants
// (pipelining, tighter timing, no budget logic).
type SectionVResult struct {
	Variants []SectionVVariant
}

// SectionV sweeps the synthesis model.
func SectionV(cfg Config) (SectionVResult, error) {
	if err := cfg.Validate(); err != nil {
		return SectionVResult{}, err
	}
	base := hwmodel.Baseline
	variants := []SectionVVariant{
		{Label: "baseline (paper's point)", Config: base},
	}
	noBudget := base
	noBudget.BudgetLogic = false
	variants = append(variants, SectionVVariant{Label: "without budget logic", Config: noBudget})
	tight := base
	tight.TargetNs = 30
	variants = append(variants, SectionVVariant{Label: "30 ns timing constraint", Config: tight})
	for _, depth := range []int{2, 4} {
		piped := base
		piped.PipelineDepth = depth
		variants = append(variants, SectionVVariant{
			Label: "pipelined x" + string(rune('0'+depth)), Config: piped,
		})
	}
	narrow := base
	narrow.Width = 16
	variants = append(variants, SectionVVariant{Label: "16-bit datapath", Config: narrow})

	var res SectionVResult
	for _, v := range variants {
		rep, err := hwmodel.Synthesize(v.Config, 16)
		if err != nil {
			return SectionVResult{}, err
		}
		v.Report = rep
		res.Variants = append(res.Variants, v)
	}
	return res, nil
}

// Print renders the result.
func (r SectionVResult) Print(w io.Writer) {
	fprintf(w, "Section V: DP-Box synthesis variants (65 nm, 16 MHz)\n")
	fprintf(w, "%-28s %8s %10s %9s %8s %6s\n", "variant", "gates", "crit (ns)", "fmax MHz", "power µW", "met?")
	for _, v := range r.Variants {
		met := "yes"
		if !v.Report.MeetsTarget {
			met = "no"
		}
		fprintf(w, "%-28s %8d %10.2f %9.1f %8.1f %6s\n",
			v.Label, v.Report.Gates, v.Report.CritPathNs, v.Report.FMaxMHz, v.Report.PowerUW, met)
	}
	fprintf(w, "(paper's published point: 10431 gates, 58.66 ns, 158.3 µW; budget logic = 11%% of area)\n")
}
