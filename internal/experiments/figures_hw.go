package experiments

import (
	"fmt"
	"io"
	"math"

	"ulpdp/internal/dataset"
	"ulpdp/internal/dpbox"
	"ulpdp/internal/urng"
)

// Fig11Row is one dataset's latency measurement.
type Fig11Row struct {
	// Dataset is the Table I name.
	Dataset string
	// ThresholdingCycles is the average transaction latency with
	// thresholding (always 2).
	ThresholdingCycles float64
	// ResamplingCycles is the average latency with resampling.
	ResamplingCycles float64
	// MaxResamples is the worst observed resample count.
	MaxResamples int
}

// Fig11Result reproduces Fig. 11: per-dataset DP-Box latency for the
// two guards. The paper's observation: resampling adds less than one
// cycle on average.
type Fig11Result struct {
	Rows []Fig11Row
	// Eps is the privacy setting used (the paper uses 0.5).
	Eps float64
}

// Figure11 replays every dataset through a cycle-level DP-Box in both
// guard modes and measures transaction latency.
func Figure11(cfg Config) (Fig11Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig11Result{}, err
	}
	res := Fig11Result{Eps: cfg.Eps}
	epsShift := epsToShift(cfg.Eps)
	for di, m := range dataset.Catalog() {
		data := loadData(cfg, m)
		row := Fig11Row{Dataset: m.Name, ThresholdingCycles: 0}

		for _, resampling := range []bool{false, true} {
			box, err := dpbox.New(dpbox.Config{
				Bu: rngBu, By: rngBy, Mult: cfg.Mult,
				Source: urng.NewTaus88(cfg.Seed + uint64(di)),
			})
			if err != nil {
				return Fig11Result{}, err
			}
			if err := box.Initialize(math.MaxInt32, 0); err != nil {
				return Fig11Result{}, err
			}
			lo, hi := gridBounds(m)
			if err := box.Configure(epsShift, lo, hi); err != nil {
				return Fig11Result{}, err
			}
			if resampling {
				if err := box.SetResampling(true); err != nil {
					return Fig11Result{}, err
				}
			}
			var total uint64
			var n int
			step := m.Range() / (1 << sensorGridBits)
			for _, x := range data {
				xs := int64(math.Round(x / step))
				r, err := box.NoiseValue(xs)
				if err != nil {
					return Fig11Result{}, fmt.Errorf("%s: %w", m.Name, err)
				}
				total += uint64(r.Cycles)
				n++
				if resampling && r.Resamples > row.MaxResamples {
					row.MaxResamples = r.Resamples
				}
			}
			avg := float64(total) / float64(n)
			if resampling {
				row.ResamplingCycles = avg
			} else {
				row.ThresholdingCycles = avg
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// gridBounds maps a dataset's range onto the sensor step grid.
func gridBounds(m dataset.Meta) (lo, hi int64) {
	step := m.Range() / (1 << sensorGridBits)
	lo = int64(math.Round(m.Min / step))
	return lo, lo + (1 << sensorGridBits)
}

// epsToShift returns n_m with ε = 2^-n_m; it panics if ε is not a
// power of two (the DP-Box register constraint of eq. 19).
func epsToShift(eps float64) int {
	shift := -math.Log2(eps)
	if shift != math.Trunc(shift) {
		panic(fmt.Sprintf("experiments: ε=%g is not a power of two", eps))
	}
	return int(shift)
}

// Print renders the result.
func (r Fig11Result) Print(w io.Writer) {
	fprintf(w, "Figure 11: DP-Box latency per dataset (ε=%g; cycles per noised output)\n", r.Eps)
	fprintf(w, "%-24s %12s %12s %13s\n", "dataset", "thresholding", "resampling", "max resamples")
	for _, row := range r.Rows {
		fprintf(w, "%-24s %12.3f %12.3f %13d\n",
			row.Dataset, row.ThresholdingCycles, row.ResamplingCycles, row.MaxResamples)
	}
}

// Fig12Result reproduces Fig. 12: output histograms of the DP-Box
// with the guard disabled for two Statlog heart-rate values at ε = 1.
// In the bulk the histograms overlap (a); in the tail there are
// outputs only one value can produce (b) — the privacy failure.
type Fig12Result struct {
	// X1 and X2 are the two sensor values (steps).
	X1, X2 int64
	// Bins maps output step -> counts for each value.
	Counts1, Counts2 map[int64]int
	// Draws is the number of noised outputs per value.
	Draws int
	// ExclusiveOutputs counts outputs produced by exactly one of the
	// two values across the run (the distinguishable region).
	ExclusiveOutputs int
	// ExampleExclusive is one such output (0 if none).
	ExampleExclusive int64
}

// Figure12 runs the naive-mode DP-Box histogram experiment.
func Figure12(cfg Config) (Fig12Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig12Result{}, err
	}
	m, err := dataset.ByName("Statlog (Heart)")
	if err != nil {
		return Fig12Result{}, err
	}
	// Two blood-pressure readings from opposite ends of the range.
	step := m.Range() / (1 << sensorGridBits)
	x1 := int64(math.Round(110 / step))
	x2 := int64(math.Round(180 / step))

	box, err := dpbox.New(dpbox.Config{
		Bu: rngBu, By: rngBy, Mult: cfg.Mult, GuardDisabled: true,
		Source: urng.NewTaus88(cfg.Seed),
	})
	if err != nil {
		return Fig12Result{}, err
	}
	if err := box.Initialize(math.MaxInt32, 0); err != nil {
		return Fig12Result{}, err
	}
	lo, hi := gridBounds(m)
	if err := box.Configure(0, lo, hi); err != nil { // ε = 1 (Fig. 12)
		return Fig12Result{}, err
	}
	draws := 200 * cfg.Trials
	res := Fig12Result{
		X1: x1, X2: x2, Draws: draws,
		Counts1: map[int64]int{}, Counts2: map[int64]int{},
	}
	for i := 0; i < draws; i++ {
		r1, err := box.NoiseValue(x1)
		if err != nil {
			return Fig12Result{}, err
		}
		res.Counts1[r1.Value]++
		r2, err := box.NoiseValue(x2)
		if err != nil {
			return Fig12Result{}, err
		}
		res.Counts2[r2.Value]++
	}
	// Deterministic accounting: the example is the smallest exclusive
	// output (map iteration order must not leak into the report).
	haveExample := false
	for y := range res.Counts1 {
		if res.Counts2[y] == 0 {
			res.ExclusiveOutputs++
			if !haveExample || y < res.ExampleExclusive {
				res.ExampleExclusive = y
				haveExample = true
			}
		}
	}
	for y := range res.Counts2 {
		if res.Counts1[y] == 0 {
			res.ExclusiveOutputs++
			if !haveExample || y < res.ExampleExclusive {
				res.ExampleExclusive = y
				haveExample = true
			}
		}
	}
	return res, nil
}

// Print renders the result.
func (r Fig12Result) Print(w io.Writer) {
	fprintf(w, "Figure 12: naive DP-Box output histograms (ε=1, no guard), %d draws per value\n", r.Draws)
	fprintf(w, "x1=%d, x2=%d (steps); outputs producible by only one value: %d (e.g. %d)\n",
		r.X1, r.X2, r.ExclusiveOutputs, r.ExampleExclusive)
	fprintf(w, "histogram around the bulk (output: count1 count2):\n")
	mid := (r.X1 + r.X2) / 2
	for y := mid - 40; y <= mid+40; y += 8 {
		fprintf(w, "%6d: %6d %6d\n", y, r.Counts1[y], r.Counts2[y])
	}
}
