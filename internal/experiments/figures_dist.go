package experiments

import (
	"io"
	"math"

	"ulpdp/internal/core"
	"ulpdp/internal/laplace"
)

// fig4Params are the paper's Fig. 4 parameters: Lap(20) noise from a
// B_u = 17 URNG on a B_y = 12 grid with Δ = 10/2^5 (sensor range of
// length 10 at ε = 0.5).
var fig4Params = core.Params{Lo: 0, Hi: 10, Eps: 0.5, Bu: 17, By: 12, Delta: 10.0 / 32}

// Fig4Point is one grid point of the Fig. 4 comparison.
type Fig4Point struct {
	// Noise is the value kΔ.
	Noise float64
	// Ideal is the ideal Laplace probability of the surrounding bin.
	Ideal float64
	// FxP is the exact FxP RNG probability mass at kΔ.
	FxP float64
}

// Fig4Result reproduces Fig. 4: the ideal Lap(20) distribution versus
// the exact fixed-point RNG PMF, with the zoomed tail region where
// they diverge (bounded range, zero-probability holes).
type Fig4Result struct {
	// Bulk samples the high-density region (|noise| <= 2λ).
	Bulk []Fig4Point
	// Tail samples the divergent region near the RNG's maximum.
	Tail []Fig4Point
	// MaxNoise is the FxP RNG's bound L = λ·B_u·ln2.
	MaxNoise float64
	// FirstHole is the smallest positive noise step with zero
	// probability (the Fig. 4(b) holes); -1 if none.
	FirstHole float64
	// HolesInTail counts zero-probability steps below the maximum.
	HolesInTail int
}

// Figure4 computes the Fig. 4 comparison.
func Figure4(cfg Config) (Fig4Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig4Result{}, err
	}
	par := fig4Params
	d := laplace.NewDist(par.FxP())
	lambda := par.Lambda()
	res := Fig4Result{MaxNoise: par.FxP().MaxNoise(), FirstHole: -1}

	maxK := d.MaxK()
	bulkK := int64(2 * lambda / par.Delta)
	stride := bulkK / 64
	if stride < 1 {
		stride = 1
	}
	for k := -bulkK; k <= bulkK; k += stride {
		x := float64(k) * par.Delta
		res.Bulk = append(res.Bulk, Fig4Point{
			Noise: x,
			Ideal: idealBin(x, par.Delta, lambda),
			FxP:   d.Prob(k),
		})
	}
	// Tail: the last 15% of the support, where quantization bites.
	start := maxK - maxK*15/100
	for k := start; k <= maxK; k++ {
		x := float64(k) * par.Delta
		res.Tail = append(res.Tail, Fig4Point{
			Noise: x,
			Ideal: idealBin(x, par.Delta, lambda),
			FxP:   d.Prob(k),
		})
	}
	if hole, ok := d.FirstZeroHole(); ok {
		res.FirstHole = float64(hole) * par.Delta
	}
	for k := int64(1); k < maxK; k++ {
		if d.Prob(k) == 0 {
			res.HolesInTail++
		}
	}
	return res, nil
}

// idealBin integrates the ideal Laplace density over one Δ bin.
func idealBin(x, delta, lambda float64) float64 {
	return laplace.CDF(x+delta/2, lambda) - laplace.CDF(x-delta/2, lambda)
}

// Print renders the result.
func (r Fig4Result) Print(w io.Writer) {
	fprintf(w, "Figure 4: ideal Lap(20) vs fixed-point RNG (Bu=17, By=12, Δ=0.3125)\n")
	fprintf(w, "max representable noise L = %.1f; first tail hole at %.1f; %d holes below L\n",
		r.MaxNoise, r.FirstHole, r.HolesInTail)
	fprintf(w, "\n(a) bulk (|n| <= 2λ): noise  ideal  fxp\n")
	for _, p := range sampleEvery(r.Bulk, 8) {
		fprintf(w, "%8.2f  %.3e  %.3e\n", p.Noise, p.Ideal, p.FxP)
	}
	fprintf(w, "\n(b) tail zoom: noise  ideal  fxp\n")
	for _, p := range sampleEvery(r.Tail, 6) {
		fprintf(w, "%8.2f  %.3e  %.3e\n", p.Noise, p.Ideal, p.FxP)
	}
}

func sampleEvery(ps []Fig4Point, n int) []Fig4Point {
	if n <= 1 || len(ps) <= n {
		return ps
	}
	out := make([]Fig4Point, 0, len(ps)/n+1)
	for i := 0; i < len(ps); i += n {
		out = append(out, ps[i])
	}
	return out
}

// GuardDistResult reproduces Figs. 6 and 7: the conditional noised-
// output distribution of a guarded mechanism for the two extreme
// sensor values, showing the shared bounded support (and, for
// thresholding, the boundary atoms).
type GuardDistResult struct {
	// Setting is SettingResampling (Fig. 6) or SettingThresholding
	// (Fig. 7).
	Setting Setting
	// Threshold is the certified guard threshold in steps.
	Threshold int64
	// Outputs lists the output grid (absolute steps).
	Outputs []int64
	// ProbLo and ProbHi are P(y | x = Lo) and P(y | x = Hi).
	ProbLo, ProbHi []float64
	// WorstLoss is the exact worst-case privacy loss.
	WorstLoss float64
	// BoundaryAtomLo/Hi are the clamp atoms for x = Hi at the two
	// window edges (thresholding only).
	BoundaryAtomLo, BoundaryAtomHi float64
}

// Figure6 computes the resampling output distribution.
func Figure6(cfg Config) (GuardDistResult, error) {
	return guardDist(cfg, SettingResampling)
}

// Figure7 computes the thresholding output distribution.
func Figure7(cfg Config) (GuardDistResult, error) {
	return guardDist(cfg, SettingThresholding)
}

func guardDist(cfg Config, s Setting) (GuardDistResult, error) {
	if err := cfg.Validate(); err != nil {
		return GuardDistResult{}, err
	}
	par := fig4Params
	an := core.CachedAnalyzer(par)
	var th int64
	var err error
	if s == SettingResampling {
		th, err = core.ResamplingThreshold(par, cfg.Mult)
	} else {
		th, err = core.ThresholdingThreshold(par, cfg.Mult)
	}
	if err != nil {
		return GuardDistResult{}, err
	}
	res := GuardDistResult{Setting: s, Threshold: th}
	yLo := par.LoSteps() - th
	yHi := par.HiSteps() + th
	condLo := guardCond(an, par, s, th, par.LoSteps())
	condHi := guardCond(an, par, s, th, par.HiSteps())
	for y := yLo; y <= yHi; y++ {
		res.Outputs = append(res.Outputs, y)
		res.ProbLo = append(res.ProbLo, condLo(y))
		res.ProbHi = append(res.ProbHi, condHi(y))
	}
	if s == SettingResampling {
		res.WorstLoss = an.ResamplingLoss(th).MaxLoss
	} else {
		res.WorstLoss = an.ThresholdingLoss(th).MaxLoss
		res.BoundaryAtomLo = condHi(yLo)
		res.BoundaryAtomHi = condHi(yHi)
	}
	return res, nil
}

// guardCond builds P(y|x) for one guarded mechanism via the exact
// distribution (probabilities via the analyzer's loss machinery).
func guardCond(an *core.Analyzer, par core.Params, s Setting, th, x int64) func(int64) float64 {
	d := laplace.NewDist(par.FxP())
	yLo := par.LoSteps() - th
	yHi := par.HiSteps() + th
	if s == SettingResampling {
		var z float64
		for k := yLo - x; k <= yHi-x; k++ {
			z += d.Prob(k)
		}
		return func(y int64) float64 { return d.Prob(y-x) / z }
	}
	return func(y int64) float64 {
		switch {
		case y == yLo:
			return tailAtMost(d, yLo-x)
		case y == yHi:
			return tailAtLeast(d, yHi-x)
		default:
			return d.Prob(y - x)
		}
	}
}

func tailAtLeast(d laplace.Dist, k int64) float64 {
	if k <= 0 {
		return 1 - tailAtLeast(d, -k+1)
	}
	return d.TailMag(k) / 2
}

func tailAtMost(d laplace.Dist, k int64) float64 { return tailAtLeast(d, -k) }

// Print renders the result.
func (r GuardDistResult) Print(w io.Writer) {
	fig := "6 (resampling)"
	if r.Setting == SettingThresholding {
		fig = "7 (thresholding)"
	}
	fprintf(w, "Figure %s: noised output distribution, threshold %d steps, worst-case loss %.4f nats\n",
		fig, r.Threshold, r.WorstLoss)
	if r.Setting == SettingThresholding {
		fprintf(w, "boundary atoms for x=Hi: P(lo edge)=%.3e  P(hi edge)=%.3e\n",
			r.BoundaryAtomLo, r.BoundaryAtomHi)
	}
	fprintf(w, "output  P(y|x=Lo)  P(y|x=Hi)\n")
	stride := len(r.Outputs) / 24
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(r.Outputs); i += stride {
		fprintf(w, "%6d  %.3e  %.3e\n", r.Outputs[i], r.ProbLo[i], r.ProbHi[i])
	}
	last := len(r.Outputs) - 1
	fprintf(w, "%6d  %.3e  %.3e\n", r.Outputs[last], r.ProbLo[last], r.ProbHi[last])
}

// Fig8Result reproduces Fig. 8: the normalized per-output privacy
// loss of the thresholding mechanism as a function of the noised
// output's distance beyond the sensor range, with the segment
// boundaries the budget controller charges at.
type Fig8Result struct {
	// Threshold is the certified guard threshold in steps.
	Threshold int64
	// Profile is the per-offset loss staircase.
	Profile []core.LossPoint
	// Segments are the charging bands for multipliers {1.25, 1.5,
	// 1.75} (bounded by cfg.Mult).
	Segments []core.Segment
	// InteriorLoss is ε_RNG, the in-range charge.
	InteriorLoss float64
	// Eps is the nominal ε.
	Eps float64
}

// Figure8 computes the loss profile and segments.
func Figure8(cfg Config) (Fig8Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig8Result{}, err
	}
	par := fig4Params
	an := core.CachedAnalyzer(par)
	th, err := core.ThresholdingThreshold(par, cfg.Mult)
	if err != nil {
		return Fig8Result{}, err
	}
	var mults []float64
	for _, m := range []float64{1.25, 1.5, 1.75} {
		if m < cfg.Mult {
			mults = append(mults, m)
		}
	}
	return Fig8Result{
		Threshold:    th,
		Profile:      an.ThresholdingLossProfile(th),
		Segments:     an.Segments(th, mults),
		InteriorLoss: an.InteriorLoss(th),
		Eps:          par.Eps,
	}, nil
}

// Print renders the result.
func (r Fig8Result) Print(w io.Writer) {
	fprintf(w, "Figure 8: normalized privacy loss vs output offset beyond M (threshold %d steps)\n", r.Threshold)
	fprintf(w, "interior (in-range) loss: %.4f nats = %.3f·ε\n", r.InteriorLoss, r.InteriorLoss/r.Eps)
	for _, s := range r.Segments {
		fprintf(w, "outputs in (M, M+%d steps] cost at most %.2f·ε\n", s.Offset, s.Mult)
	}
	fprintf(w, "offset  loss/ε\n")
	stride := len(r.Profile) / 24
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(r.Profile); i += stride {
		p := r.Profile[i]
		norm := p.Normalized
		if math.IsInf(norm, 1) {
			fprintf(w, "%6d  inf\n", p.Offset)
			continue
		}
		fprintf(w, "%6d  %.4f\n", p.Offset, norm)
	}
}
