// Package experiments reproduces every data-bearing table and figure
// of the paper. Each exhibit has a Run function returning structured
// results plus a text renderer printing the same rows/series the
// paper reports; cmd/dpbench drives them and the root bench_test.go
// wraps each in a testing.B benchmark.
//
// Absolute values depend on the substituted substrates (synthetic
// datasets, simulated hardware), so the criteria are the paper's
// shapes: who wins, by what order, and where behaviour changes. Those
// shape claims are asserted by this package's tests; EXPERIMENTS.md
// records paper-vs-measured numbers side by side.
package experiments

import (
	"fmt"
	"io"
	"math"
	"sync"

	"ulpdp/internal/core"
	"ulpdp/internal/dataset"
	"ulpdp/internal/laplace"
	"ulpdp/internal/urng"
)

// Config tunes experiment scale. The zero value is invalid; use
// Default() or Quick().
type Config struct {
	// Seed makes every experiment deterministic.
	Seed uint64
	// Trials is the number of repeated noisy releases per utility
	// cell. The paper uses 500; Default uses fewer to keep the whole
	// suite in CPU-minutes.
	Trials int
	// MaxEntries caps each dataset's size in utility loops (the
	// largest Table I dataset has 164,860 rows). 0 = no cap.
	MaxEntries int
	// Eps is the per-report privacy parameter for the utility suite
	// (the paper's tables use ε = 0.5).
	Eps float64
	// Mult is the guard loss multiplier (worst case Mult·ε).
	Mult float64
	// DataDir optionally points at a directory of real dataset CSVs
	// (one per Table I dataset, named per dataset.Meta.FileName).
	// When a file exists there it replaces the synthetic regenerator,
	// letting the utility suite run on the true UCI data.
	DataDir string
}

// Default returns the full-scale configuration.
func Default() Config {
	return Config{Seed: 2018, Trials: 40, MaxEntries: 20000, Eps: 0.5, Mult: 2}
}

// Quick returns a configuration small enough for unit tests.
func Quick() Config {
	return Config{Seed: 2018, Trials: 4, MaxEntries: 1500, Eps: 0.5, Mult: 2}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Trials < 1 {
		return fmt.Errorf("experiments: trials %d < 1", c.Trials)
	}
	if !(c.Eps > 0) {
		return fmt.Errorf("experiments: eps %g <= 0", c.Eps)
	}
	if c.Mult <= 1 {
		return fmt.Errorf("experiments: mult %g <= 1", c.Mult)
	}
	if c.MaxEntries < 0 {
		return fmt.Errorf("experiments: negative entry cap")
	}
	return nil
}

// sensorGridBits is the sensor quantization used across the utility
// suite: every dataset attribute is mapped onto a 2^8-step grid
// (Δ = d/256), the paper's "sensors with resolution up to 13 bits"
// regime scaled to keep exact analysis cheap.
const sensorGridBits = 8

// rngBu and rngBy are the synthesized DP-Box RNG geometry used by the
// utility suite. B_y = 14 keeps the output word from saturating the
// inverse-CDF bound for ε >= 0.5 (L/Δ ≈ 6030 < 2^13).
const (
	rngBu = 17
	rngBy = 14
)

// paramsFor builds the privacy parameters for one dataset.
func paramsFor(m dataset.Meta, eps float64) core.Params {
	d := m.Range()
	return core.Params{
		Lo:    m.Min,
		Hi:    m.Max,
		Eps:   eps,
		Bu:    rngBu,
		By:    rngBy,
		Delta: d / (1 << sensorGridBits),
	}
}

// loadData returns a dataset's values: the real CSV from cfg.DataDir
// when present, the synthetic regenerator otherwise. The entry cap
// applies to both.
func loadData(cfg Config, m dataset.Meta) []float64 {
	if cfg.DataDir != "" {
		if xs, err := m.Load(cfg.DataDir); err == nil {
			return capEntries(xs, cfg.MaxEntries)
		}
	}
	return capEntries(m.Generate(cfg.Seed), cfg.MaxEntries)
}

// capEntries truncates data to the configured cap.
func capEntries(xs []float64, cap int) []float64 {
	if cap > 0 && len(xs) > cap {
		return xs[:cap]
	}
	return xs
}

// Setting identifies one of the four compared noising settings of
// Tables II-V.
type Setting int

const (
	// SettingIdeal is the real-valued Laplace reference.
	SettingIdeal Setting = iota
	// SettingBaseline is the naive FxP implementation (no guard).
	SettingBaseline
	// SettingResampling is the FxP implementation with resampling.
	SettingResampling
	// SettingThresholding is the FxP implementation with thresholding.
	SettingThresholding
)

// Settings lists the four settings in the tables' column order.
var Settings = []Setting{SettingIdeal, SettingBaseline, SettingResampling, SettingThresholding}

// String implements fmt.Stringer.
func (s Setting) String() string {
	switch s {
	case SettingIdeal:
		return "Ideal Local DP"
	case SettingBaseline:
		return "FxP HW Baseline"
	case SettingResampling:
		return "Resampling"
	case SettingThresholding:
		return "Thresholding"
	}
	return fmt.Sprintf("Setting(%d)", int(s))
}

// LDP reports whether the setting guarantees local DP (the "LDP?"
// column of Tables II-V).
func (s Setting) LDP() bool { return s != SettingBaseline }

// mechanismFor constructs the mechanism for a setting. The guard
// thresholds are the certified closed forms.
func mechanismFor(s Setting, par core.Params, mult float64, seed uint64) (core.Mechanism, error) {
	switch s {
	case SettingIdeal:
		m, err := core.NewIdealLaplace(par, seed)
		if err != nil {
			return nil, err
		}
		return m, nil
	case SettingBaseline:
		m, err := core.NewBaseline(par, nil, urng.NewTaus88(seed))
		if err != nil {
			return nil, err
		}
		return m, nil
	case SettingResampling:
		th, err := core.ResamplingThreshold(par, mult)
		if err != nil {
			return nil, err
		}
		m, err := core.NewResampling(par, th, nil, urng.NewTaus88(seed))
		if err != nil {
			return nil, err
		}
		return m, nil
	case SettingThresholding:
		th, err := core.ThresholdingThreshold(par, mult)
		if err != nil {
			return nil, err
		}
		m, err := core.NewThresholding(par, th, nil, urng.NewTaus88(seed))
		if err != nil {
			return nil, err
		}
		return m, nil
	}
	return nil, fmt.Errorf("experiments: unknown setting %d", int(s))
}

// ldpCache memoizes per-parameter LDP certification verdicts: the
// exact analyzer run is the expensive part of the utility tables.
var (
	ldpMu    sync.Mutex
	ldpCache = map[core.Params]map[Setting]bool{}
)

// fastLog is the exact float64 log unit used where datapath fidelity
// is not under test (large utility sweeps); the CORDIC unit is used
// wherever the hardware path itself is the subject.
var fastLog = laplace.FloatLog{FracBits: 50}

// fprintf writes formatted output, ignoring errors (report rendering
// is best-effort on the way to a terminal).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}

// fmtG formats a float compactly for tables.
func fmtG(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case v != 0 && (math.Abs(v) >= 1e5 || math.Abs(v) < 1e-3):
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
