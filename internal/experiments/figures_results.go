package experiments

import (
	"io"
	"math"

	"ulpdp/internal/attack"
	"ulpdp/internal/budget"
	"ulpdp/internal/core"
	"ulpdp/internal/dataset"
	"ulpdp/internal/query"
	"ulpdp/internal/urng"
)

// Fig13Curve is one budget configuration's attack trace.
type Fig13Curve struct {
	// Label names the configuration.
	Label string
	// Budget is the total privacy budget (0 = unlimited).
	Budget float64
	// Requests and RelErrs are the recorded attack progress.
	Requests []int
	RelErrs  []float64
}

// Fig13Result reproduces Fig. 13: the averaging adversary's relative
// estimation error versus the number of requests, with no budget and
// with two finite budgets (caching floors the error).
type Fig13Result struct {
	Curves []Fig13Curve
	// Truth is the private value under attack.
	Truth float64
}

// Figure13 runs the budget-control attack experiment at ε = 0.5.
func Figure13(cfg Config) (Fig13Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig13Result{}, err
	}
	par := fig4Params // d = 10 at ε = 0.5
	const truth = 7.0
	points := []int{1, 3, 10, 30, 100, 300, 1000, 3000, 10000}
	n := 10000
	if cfg.Trials < 10 {
		n, points = 2000, []int{1, 3, 10, 30, 100, 300, 1000, 2000}
	}
	res := Fig13Result{Truth: truth}

	// Each curve is averaged over cfg.Trials independent runs: one
	// run's error floor is the luck of its cached value; the average
	// exposes the budget ordering the paper plots.
	runs := cfg.Trials
	th, err := core.ThresholdingThreshold(par, cfg.Mult)
	if err != nil {
		return Fig13Result{}, err
	}
	average := func(label string, b float64, mk func(run int) (attack.Requester, error)) error {
		sum := make([]float64, len(points))
		var reqs []int
		for r := 0; r < runs; r++ {
			req, err := mk(r)
			if err != nil {
				return err
			}
			tr, err := attack.RunDedup(req, n, truth, par.Range(), points)
			if err != nil {
				return err
			}
			reqs = tr.Requests
			for i, e := range tr.RelErrs {
				sum[i] += e
			}
		}
		for i := range sum {
			sum[i] /= float64(runs)
		}
		res.Curves = append(res.Curves, Fig13Curve{
			Label: label, Budget: b, Requests: reqs, RelErrs: sum[:len(reqs)],
		})
		return nil
	}

	if err := average("no budget", 0, func(r int) (attack.Requester, error) {
		mech, err := core.NewThresholding(par, th, fastLog, urng.NewTaus88(cfg.Seed+uint64(r)))
		if err != nil {
			return nil, err
		}
		return func() (float64, error) { return mech.Noise(truth).Value, nil }, nil
	}); err != nil {
		return Fig13Result{}, err
	}
	for _, b := range []float64{50, 10} {
		b := b
		if err := average("budget "+fmtG(b), b, func(r int) (attack.Requester, error) {
			ctl, err := budget.New(par, budget.Config{
				Budget: b, Mult: cfg.Mult, Log: fastLog,
				Source: urng.NewTaus88(cfg.Seed + uint64(b) + uint64(r)*97),
			})
			if err != nil {
				return nil, err
			}
			return func() (float64, error) {
				resp, err := ctl.Request(truth)
				return resp.Value, err
			}, nil
		}); err != nil {
			return Fig13Result{}, err
		}
	}
	return res, nil
}

// Print renders the result.
func (r Fig13Result) Print(w io.Writer) {
	fprintf(w, "Figure 13: averaging-attack relative error vs requests (ε=0.5)\n")
	fprintf(w, "%10s", "requests")
	for _, c := range r.Curves {
		fprintf(w, " %14s", c.Label)
	}
	fprintf(w, "\n")
	for i := range r.Curves[0].Requests {
		fprintf(w, "%10d", r.Curves[0].Requests[i])
		for _, c := range r.Curves {
			fprintf(w, " %14.5f", c.RelErrs[i])
		}
		fprintf(w, "\n")
	}
}

// Fig14Point is one dataset-size measurement of the randomized-
// response experiment.
type Fig14Point struct {
	// N is the dataset size.
	N int
	// MAE is the absolute error of the estimated count of the
	// positive category, averaged over trials.
	MAE float64
	// RelErr is MAE / N.
	RelErr float64
}

// Fig14Result reproduces Fig. 14: randomized response (DP-Box with
// threshold zero) estimating a binary population count; the error
// shrinks as the dataset grows.
type Fig14Result struct {
	Points []Fig14Point
	// FlipProb is the mechanism's exact flip probability.
	FlipProb float64
	// RREps is the effective ε of the binary mechanism.
	RREps float64
}

// Figure14 runs the randomized-response utility sweep.
func Figure14(cfg Config) (Fig14Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig14Result{}, err
	}
	// Binary attribute (e.g. the Statlog dataset's sex column):
	// categories {0, 1} with a 68% positive rate.
	par := core.Params{Lo: 0, Hi: 1, Eps: cfg.Eps, Bu: rngBu, By: rngBy, Delta: 1.0 / 64}
	mech, err := core.NewRandomizedResponse(par, fastLog, urng.NewTaus88(cfg.Seed))
	if err != nil {
		return Fig14Result{}, err
	}
	q1, q2 := mech.FlipProbs()
	res := Fig14Result{FlipProb: (q1 + q2) / 2, RREps: mech.RREpsilon()}
	rng := urng.NewSplitMix64(cfg.Seed)
	sizes := []int{100, 300, 1000, 3000, 10000}
	if max := cfg.MaxEntries * 2; max > sizes[len(sizes)-1] {
		sizes = append(sizes, max)
	}
	for _, n := range sizes {
		var sumErr float64
		for t := 0; t < cfg.Trials; t++ {
			truthCount := 0
			reported := 0
			for i := 0; i < n; i++ {
				x := 0.0
				if rng.Float64() < 0.68 {
					x = 1
					truthCount++
				}
				if mech.Noise(x).Value == 1 {
					reported++
				}
			}
			// Unbiased RR estimator: (reported/n - q)/(1 - 2q)·n,
			// with q the average flip probability.
			q := res.FlipProb
			est := (float64(reported) - q*float64(n)) / (1 - 2*q)
			sumErr += math.Abs(est - float64(truthCount))
		}
		mae := sumErr / float64(cfg.Trials)
		res.Points = append(res.Points, Fig14Point{N: n, MAE: mae, RelErr: mae / float64(n)})
	}
	return res, nil
}

// Print renders the result.
func (r Fig14Result) Print(w io.Writer) {
	fprintf(w, "Figure 14: randomized response via DP-Box threshold-0 (flip prob %.4f, effective ε %.3f)\n",
		r.FlipProb, r.RREps)
	fprintf(w, "%10s %12s %10s\n", "N", "count MAE", "MAE/N")
	for _, p := range r.Points {
		fprintf(w, "%10d %12.2f %10.5f\n", p.N, p.MAE, p.RelErr)
	}
}

// Fig15Point is one (size, setting) cell.
type Fig15Point struct {
	N   int
	MAE [4]float64 // indexed by Setting
}

// Fig15Result reproduces Fig. 15: mean-query MAE versus dataset size
// for all four settings, with (a) a fine RNG where the error of every
// setting vanishes as N grows, and (b) a coarse RNG where the guarded
// mechanisms hit an error floor.
type Fig15Result struct {
	// FineBy/CoarseBy are the RNG output resolutions compared.
	FineBu, CoarseBu int
	Fine             []Fig15Point
	Coarse           []Fig15Point
	// CoarseFloor reports the guarded mechanisms' MAE at the largest
	// size with the coarse RNG (the error floor of Fig. 15(b)).
	CoarseFloor float64
}

// Figure15 runs the size sweep on a synthetic Statlog-like attribute.
func Figure15(cfg Config) (Fig15Result, error) {
	if err := cfg.Validate(); err != nil {
		return Fig15Result{}, err
	}
	m, err := dataset.ByName("Statlog (Heart)")
	if err != nil {
		return Fig15Result{}, err
	}
	sizes := []int{100, 300, 1000, 3000}
	if cfg.MaxEntries >= 10000 {
		sizes = append(sizes, 10000)
	}
	res := Fig15Result{FineBu: rngBu, CoarseBu: 8}

	run := func(bu, gridBits int, mult float64) ([]Fig15Point, error) {
		par := core.Params{
			Lo: m.Min, Hi: m.Max, Eps: cfg.Eps, Bu: bu, By: rngBy,
			Delta: m.Range() / float64(int64(1)<<gridBits),
		}
		var points []Fig15Point
		for _, n := range sizes {
			data := m.GenerateN(n, cfg.Seed)
			var pt Fig15Point
			pt.N = n
			for _, s := range Settings {
				mech, err := mechanismForMult(s, par, mult, cfg.Seed+uint64(n))
				if err != nil {
					return nil, err
				}
				u := query.EvaluateMAE(mech, query.Mean, data, cfg.Trials, par.Range())
				pt.MAE[s] = u.MAE
			}
			points = append(points, pt)
		}
		return points, nil
	}

	var errFine, errCoarse error
	res.Fine, errFine = run(rngBu, sensorGridBits, cfg.Mult)
	if errFine != nil {
		return Fig15Result{}, errFine
	}
	// The coarse RNG cannot certify tight multipliers at a fine grid
	// (too few bits spread over too many steps): a coarser grid and a
	// larger multiplier are required, and even then the guard
	// thresholds end up tiny — exactly the paper's Fig. 15(b) regime.
	res.Coarse, errCoarse = run(res.CoarseBu, 5, coarseMult)
	if errCoarse != nil {
		return Fig15Result{}, errCoarse
	}
	last := res.Coarse[len(res.Coarse)-1]
	res.CoarseFloor = math.Max(last.MAE[SettingResampling], last.MAE[SettingThresholding])
	return res, nil
}

// coarseMult is the loss multiplier used for the coarse-RNG arm of
// Fig. 15(b): an 8-bit URNG cannot certify tight multipliers.
const coarseMult = 4.0

// mechanismForMult is mechanismFor with the guard log unit forced to
// the fast exact log (these sweeps measure utility, not datapath).
func mechanismForMult(s Setting, par core.Params, mult float64, seed uint64) (core.Mechanism, error) {
	switch s {
	case SettingIdeal:
		m, err := core.NewIdealLaplace(par, seed)
		if err != nil {
			return nil, err
		}
		return m, nil
	case SettingBaseline:
		m, err := core.NewBaseline(par, fastLog, urng.NewTaus88(seed))
		if err != nil {
			return nil, err
		}
		return m, nil
	case SettingResampling:
		th, err := core.ResamplingThreshold(par, mult)
		if err != nil {
			return nil, err
		}
		m, err := core.NewResampling(par, th, fastLog, urng.NewTaus88(seed))
		if err != nil {
			return nil, err
		}
		return m, nil
	default:
		th, err := core.ThresholdingThreshold(par, mult)
		if err != nil {
			return nil, err
		}
		m, err := core.NewThresholding(par, th, fastLog, urng.NewTaus88(seed))
		if err != nil {
			return nil, err
		}
		return m, nil
	}
}

// Print renders the result.
func (r Fig15Result) Print(w io.Writer) {
	fprintf(w, "Figure 15: mean-query MAE vs dataset size\n")
	render := func(label string, pts []Fig15Point) {
		fprintf(w, "\n(%s)\n%8s", label, "N")
		for _, s := range Settings {
			fprintf(w, " %16s", s)
		}
		fprintf(w, "\n")
		for _, p := range pts {
			fprintf(w, "%8d", p.N)
			for _, s := range Settings {
				fprintf(w, " %16.4f", p.MAE[s])
			}
			fprintf(w, "\n")
		}
	}
	render("a: fine RNG, Bu=17", r.Fine)
	render("b: coarse RNG, Bu=8", r.Coarse)
	fprintf(w, "\ncoarse-RNG guarded error floor at largest N: %.4f\n", r.CoarseFloor)
}
