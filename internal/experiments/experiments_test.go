package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// shapeCfg is large enough that the paper's qualitative claims are
// statistically visible, small enough for CI.
func shapeCfg() Config {
	return Config{Seed: 2018, Trials: 12, MaxEntries: 3000, Eps: 0.5, Mult: 2}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{Trials: 0, Eps: 0.5, Mult: 2},
		{Trials: 1, Eps: 0, Mult: 2},
		{Trials: 1, Eps: 0.5, Mult: 1},
		{Trials: 1, Eps: 0.5, Mult: 2, MaxEntries: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if err := Default().Validate(); err != nil {
		t.Error(err)
	}
	if err := Quick().Validate(); err != nil {
		t.Error(err)
	}
}

func TestSettingMeta(t *testing.T) {
	if len(Settings) != 4 {
		t.Fatal("four settings expected")
	}
	if SettingBaseline.LDP() {
		t.Error("baseline must not claim LDP")
	}
	for _, s := range []Setting{SettingIdeal, SettingResampling, SettingThresholding} {
		if !s.LDP() {
			t.Errorf("%v should claim LDP", s)
		}
	}
	if Setting(9).String() != "Setting(9)" {
		t.Error("unknown setting string")
	}
}

func TestFigure4Shape(t *testing.T) {
	r, err := Figure4(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Bulk: FxP matches ideal within 1% everywhere the density is
	// high (the paper's Fig. 4(a) observation).
	for _, p := range r.Bulk {
		if p.Ideal < 1e-4 {
			continue
		}
		if math.Abs(p.FxP-p.Ideal)/p.Ideal > 0.01 {
			t.Errorf("bulk divergence at %g: fxp %g vs ideal %g", p.Noise, p.FxP, p.Ideal)
		}
	}
	// Tail: bounded support and holes (Fig. 4(b)).
	if r.MaxNoise <= 0 || r.MaxNoise > 300 {
		t.Errorf("max noise = %g", r.MaxNoise)
	}
	if r.FirstHole < 0 {
		t.Error("expected tail holes")
	}
	if r.HolesInTail == 0 {
		t.Error("expected hole count > 0")
	}
	// Beyond L the ideal density is still positive but FxP is zero.
	last := r.Tail[len(r.Tail)-1]
	if last.Ideal <= 0 {
		t.Error("ideal density should be positive at the FxP boundary")
	}
}

func TestFigure6And7Shape(t *testing.T) {
	cfg := Quick()
	r6, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r7, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both certified below mult·ε.
	for _, r := range []GuardDistResult{r6, r7} {
		if r.WorstLoss > cfg.Mult*0.5+1e-9 {
			t.Errorf("%v worst loss %g exceeds %g", r.Setting, r.WorstLoss, cfg.Mult*0.5)
		}
		// Every output is producible by both extreme inputs.
		for i := range r.Outputs {
			if r.ProbLo[i] <= 0 || r.ProbHi[i] <= 0 {
				t.Fatalf("%v output %d not in both supports", r.Setting, r.Outputs[i])
			}
		}
		var sumLo, sumHi float64
		for i := range r.Outputs {
			sumLo += r.ProbLo[i]
			sumHi += r.ProbHi[i]
		}
		if math.Abs(sumLo-1) > 1e-9 || math.Abs(sumHi-1) > 1e-9 {
			t.Errorf("%v distributions sum to %g, %g", r.Setting, sumLo, sumHi)
		}
	}
	// Thresholding has boundary atoms much heavier than the adjacent
	// interior mass (the spikes of Fig. 7).
	interiorNear := r7.ProbHi[len(r7.ProbHi)-2]
	if r7.BoundaryAtomHi <= interiorNear {
		t.Errorf("boundary atom %g not heavier than interior %g", r7.BoundaryAtomHi, interiorNear)
	}
}

func TestFigure8Shape(t *testing.T) {
	r, err := Figure8(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Segments) == 0 {
		t.Fatal("no charging segments")
	}
	// Segments nested by multiplier.
	for i := 1; i < len(r.Segments); i++ {
		if r.Segments[i].Offset < r.Segments[i-1].Offset {
			t.Error("segment offsets must be non-decreasing")
		}
	}
	// The profile starts near ε and ends below mult·ε.
	first := r.Profile[0]
	if first.Normalized < 0.5 || first.Normalized > 1.5 {
		t.Errorf("loss at range edge %g·ε", first.Normalized)
	}
	last := r.Profile[len(r.Profile)-1]
	if last.Normalized > 2+1e-9 {
		t.Errorf("loss at threshold %g·ε exceeds the certified bound", last.Normalized)
	}
}

func TestFigure11Shape(t *testing.T) {
	r, err := Figure11(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("%d datasets", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.ThresholdingCycles != 2 {
			t.Errorf("%s: thresholding %g cycles, want exactly 2", row.Dataset, row.ThresholdingCycles)
		}
		if row.ResamplingCycles < 2 {
			t.Errorf("%s: resampling %g cycles < 2", row.Dataset, row.ResamplingCycles)
		}
		// The paper's claim: resampling adds less than one cycle on
		// average.
		if row.ResamplingCycles >= 3 {
			t.Errorf("%s: resampling averages %g cycles", row.Dataset, row.ResamplingCycles)
		}
	}
}

func TestFigure12Shape(t *testing.T) {
	r, err := Figure12(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.ExclusiveOutputs == 0 {
		t.Error("naive mode should produce outputs attributable to a single value")
	}
	// The bulk overlaps: many outputs hit by both.
	overlap := 0
	for y, c1 := range r.Counts1 {
		if c1 > 0 && r.Counts2[y] > 0 {
			overlap++
		}
	}
	if overlap < 50 {
		t.Errorf("bulk overlap too small: %d shared outputs", overlap)
	}
}

func TestFigure13Shape(t *testing.T) {
	r, err := Figure13(shapeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 3 {
		t.Fatalf("%d curves", len(r.Curves))
	}
	noBudget, b50, b10 := r.Curves[0], r.Curves[1], r.Curves[2]
	last := len(noBudget.RelErrs) - 1
	// No budget: error keeps shrinking toward zero.
	if noBudget.RelErrs[last] > 0.15 {
		t.Errorf("no-budget final error %g too large", noBudget.RelErrs[last])
	}
	// Budgets floor the error, larger budget = lower floor, and both
	// floors sit clearly above the unbounded curve.
	if b50.RelErrs[last] <= noBudget.RelErrs[last] {
		t.Error("budget 50 should floor above the unbounded curve")
	}
	if b10.RelErrs[last] <= b50.RelErrs[last] {
		t.Errorf("smaller budget should floor higher: %g vs %g", b10.RelErrs[last], b50.RelErrs[last])
	}
	// Flat after exhaustion: final two samples nearly equal.
	if math.Abs(b10.RelErrs[last]-b10.RelErrs[last-1]) > 0.02 {
		t.Error("budget-10 curve should be flat at the end")
	}
}

func TestFigure14Shape(t *testing.T) {
	r, err := Figure14(shapeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.FlipProb <= 0 || r.FlipProb >= 0.5 {
		t.Fatalf("flip prob %g", r.FlipProb)
	}
	if r.RREps <= 0 {
		t.Fatalf("effective ε %g", r.RREps)
	}
	// Relative error shrinks with N (compare first and last).
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if last.RelErr >= first.RelErr {
		t.Errorf("relative error should shrink: %g -> %g", first.RelErr, last.RelErr)
	}
}

func TestFigure15Shape(t *testing.T) {
	// The coarse-RNG floor only separates from sampling noise at
	// large N, so this test runs the sweep to N = 10000.
	cfg := shapeCfg()
	cfg.MaxEntries = 10000
	r, err := Figure15(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fine RNG: every setting's error shrinks with N.
	firstFine, lastFine := r.Fine[0], r.Fine[len(r.Fine)-1]
	for _, s := range Settings {
		if lastFine.MAE[s] >= firstFine.MAE[s] {
			t.Errorf("fine RNG %v: MAE %g -> %g did not shrink", s, firstFine.MAE[s], lastFine.MAE[s])
		}
	}
	// Coarse RNG: the guarded mechanisms floor well above the fine
	// guarded error at the largest N (the Fig. 15(b) floor).
	fineGuard := math.Max(lastFine.MAE[SettingResampling], lastFine.MAE[SettingThresholding])
	if r.CoarseFloor < 1.5*fineGuard {
		t.Errorf("coarse floor %g not clearly above fine guarded error %g", r.CoarseFloor, fineGuard)
	}
}

func TestTableIShape(t *testing.T) {
	r, err := TableI(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Stats.N != row.Meta.Entries {
			t.Errorf("%s: %d entries, want %d", row.Meta.Name, row.Stats.N, row.Meta.Entries)
		}
	}
}

func TestTableIIShape(t *testing.T) {
	r, err := TableII(shapeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 7 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		// LDP verdicts: baseline N, guards and ideal Y — certified by
		// the exact analyzer per dataset.
		if row.Cells[SettingBaseline].LDP {
			t.Errorf("%s: baseline certified LDP", row.Dataset)
		}
		for _, s := range []Setting{SettingIdeal, SettingResampling, SettingThresholding} {
			if !row.Cells[s].LDP {
				t.Errorf("%s: %v not certified LDP", row.Dataset, s)
			}
		}
		// Utilities of all four settings are within an order of
		// magnitude of each other (the paper's "similar utility").
		ideal := row.Cells[SettingIdeal].Utility.MAE
		for _, s := range Settings {
			m := row.Cells[s].Utility.MAE
			if m > 10*ideal+1e-9 || ideal > 10*m+1e-9 {
				t.Errorf("%s: %v MAE %g vs ideal %g beyond 10x", row.Dataset, s, m, ideal)
			}
		}
	}
}

func TestTableVIShape(t *testing.T) {
	r, err := TableVI(shapeCfg())
	if err != nil {
		t.Fatal(err)
	}
	lastSize := len(r.Sizes) - 1
	noDP := len(r.Eps) - 1 // sentinel 0 is last
	// No-DP accuracy dominates every noised column at every size.
	for si := range r.Sizes {
		clean := r.Cells[si][noDP]
		if clean < 0.97 {
			t.Errorf("clean accuracy %g at size %d", clean, r.Sizes[si])
		}
		for ei := 0; ei < noDP; ei++ {
			if r.Cells[si][ei] > clean+0.01 {
				t.Errorf("noised (ε=%g) beats clean at size %d", r.Eps[ei], r.Sizes[si])
			}
		}
	}
	// More data helps the most-private column (ε = 0.5).
	if r.Cells[lastSize][0] <= r.Cells[0][0]-0.02 {
		t.Errorf("ε=0.5 accuracy did not improve with size: %g -> %g",
			r.Cells[0][0], r.Cells[lastSize][0])
	}
	// Less privacy helps at the largest size.
	if r.Cells[lastSize][2] < r.Cells[lastSize][0]-0.02 {
		t.Errorf("ε=2 (%g) should beat ε=0.5 (%g)",
			r.Cells[lastSize][2], r.Cells[lastSize][0])
	}
}

func TestSectionIIIDShape(t *testing.T) {
	r, err := SectionIIID(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.FxPCycles <= r.F16Cycles {
		t.Errorf("fixed point (%g) should cost more than half precision (%g)", r.FxPCycles, r.F16Cycles)
	}
	if r.HWCycles != 2 {
		t.Errorf("hardware latency %g, want 2", r.HWCycles)
	}
	if r.EnergyRatioFxP < 100 {
		t.Errorf("fxp energy ratio only %gx", r.EnergyRatioFxP)
	}
	if r.EnergyRatioF16 >= r.EnergyRatioFxP {
		t.Error("half precision should have the smaller ratio")
	}
}

func TestSectionVShape(t *testing.T) {
	r, err := SectionV(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Variants) < 5 {
		t.Fatalf("%d variants", len(r.Variants))
	}
	base := r.Variants[0].Report
	if base.Gates != 10431 {
		t.Errorf("baseline gates %d, want the paper's 10431", base.Gates)
	}
	for _, v := range r.Variants[1:] {
		switch {
		case strings.HasPrefix(v.Label, "pipelined"):
			if v.Report.CritPathNs >= base.CritPathNs || v.Report.Gates <= base.Gates {
				t.Errorf("%s: expected faster and larger than baseline", v.Label)
			}
		case v.Label == "without budget logic":
			if v.Report.Gates >= base.Gates {
				t.Errorf("%s: expected smaller", v.Label)
			}
		case v.Label == "30 ns timing constraint":
			if v.Report.Gates <= base.Gates || v.Report.PowerUW <= base.PowerUW {
				t.Errorf("%s: expected area and power cost", v.Label)
			}
		}
	}
}

func TestAblateRNGShape(t *testing.T) {
	r, err := AblateRNG(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 5 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	// Narrow URNGs are infeasible; wide ones certified with larger
	// guards.
	if r.Rows[0].Feasible {
		t.Error("Bu=6 should not admit a certified threshold at this grid")
	}
	last := r.Rows[len(r.Rows)-1]
	if !last.Feasible {
		t.Fatal("Bu=20 should be feasible")
	}
	for _, row := range r.Rows {
		if row.Feasible && row.ExactLoss > r.Mult*fig4Params.Eps+1e-9 {
			t.Errorf("Bu=%d: exact loss %g above target", row.Bu, row.ExactLoss)
		}
	}
	// Monotone guard growth with width among feasible rows.
	prev := int64(-1)
	for _, row := range r.Rows {
		if !row.Feasible {
			continue
		}
		if row.Threshold < prev {
			t.Errorf("threshold shrank with width at Bu=%d", row.Bu)
		}
		prev = row.Threshold
	}
}

func TestAblateChargingShape(t *testing.T) {
	r, err := AblateCharging(shapeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.FreshSegmented <= r.FreshFlat {
		t.Errorf("segmented charging (%d) should beat flat (%d)", r.FreshSegmented, r.FreshFlat)
	}
	if r.MeanChargeSegmented >= r.FlatCharge {
		t.Errorf("mean charge %g should be below the flat charge %g", r.MeanChargeSegmented, r.FlatCharge)
	}
}

func TestAblateLogShape(t *testing.T) {
	r, err := AblateLog(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 4 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.MismatchPerMille >= first.MismatchPerMille {
		t.Errorf("deeper CORDIC should agree more: %g -> %g ‰", first.MismatchPerMille, last.MismatchPerMille)
	}
	if last.MismatchPerMille > 1 {
		t.Errorf("30 stages should be near-exact, got %g ‰", last.MismatchPerMille)
	}
	if last.MaxStepError > 1 {
		t.Errorf("30-stage max error %d steps", last.MaxStepError)
	}
}

func TestAblateFamilyShape(t *testing.T) {
	r, err := AblateFamily(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("%d families", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.NaiveInfinite {
			t.Errorf("%s: naive loss should be infinite", row.Family)
		}
		if row.FirstHole < 0 {
			t.Errorf("%s: expected tail holes", row.Family)
		}
		if row.IdealTailBeyond <= 0 {
			t.Errorf("%s: ideal tail should extend past the hardware bound", row.Family)
		}
		if row.CertifiedThreshold < 1 {
			t.Errorf("%s: no certified guard found", row.Family)
		}
		if row.CertifiedLoss > 2*r.Eps+1e-9 {
			t.Errorf("%s: certified loss %g above 2\u03b5", row.Family, row.CertifiedLoss)
		}
	}
}

func TestAblateFloatShape(t *testing.T) {
	r, err := AblateFloat(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.RevealRate01 <= 0.01 || r.RevealRate10 <= 0.01 {
		t.Errorf("naive float should leak: rates %g, %g", r.RevealRate01, r.RevealRate10)
	}
	if r.GuardedInfinite {
		t.Error("certified fixed point must not have identifying outputs")
	}
}

func TestExtRapporShape(t *testing.T) {
	r, err := ExtRappor(shapeCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Eps <= 0 {
		t.Fatalf("per-report \u03b5 %g", r.Eps)
	}
	first, last := r.Points[0], r.Points[len(r.Points)-1]
	if last.MAE >= first.MAE {
		t.Errorf("frequency MAE should shrink with N: %g -> %g", first.MAE, last.MAE)
	}
}

func TestSectionIIIDBudgetUpdate(t *testing.T) {
	r, err := SectionIIID(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// The software bookkeeping alone costs an order of magnitude more
	// than the whole hardware transaction.
	if r.BudgetUpdateCycles < 20 || r.BudgetUpdateCycles > 200 {
		t.Errorf("budget update %g cycles implausible", r.BudgetUpdateCycles)
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if len(Registry) != 23 {
		t.Fatalf("registry has %d exhibits, want 23", len(Registry))
	}
	var buf bytes.Buffer
	if err := RunAll(Quick(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Figure 4", "Figure 6", "Figure 7", "Figure 8", "Figure 11",
		"Figure 12", "Figure 13", "Figure 14", "Figure 15",
		"Table I:", "Table II:", "Table III:", "Table IV:", "Table V:", "Table VI:",
		"Section III-D", "Section V",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestOutputsAreDeterministic(t *testing.T) {
	// The suite parallelizes internally (analyzer scans, utility
	// tables); two runs with the same config must render
	// byte-identical reports.
	cfg := Quick()
	var a, b bytes.Buffer
	if err := RunAll(cfg, &a); err != nil {
		t.Fatal(err)
	}
	if err := RunAll(cfg, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two identical runs rendered different reports")
	}
}

func TestJSONOutputsParse(t *testing.T) {
	cfg := Quick()
	for _, name := range Names() {
		var buf bytes.Buffer
		if err := RunJSON(name, cfg, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var decoded struct {
			Exhibit string `json:"exhibit"`
			Result  any    `json:"result"`
		}
		if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
			t.Fatalf("%s: invalid JSON: %v", name, err)
		}
		if decoded.Exhibit != name {
			t.Errorf("%s: exhibit field %q", name, decoded.Exhibit)
		}
		if decoded.Result == nil {
			t.Errorf("%s: empty result", name)
		}
	}
}

func TestRunnersRejectInvalidConfig(t *testing.T) {
	var bad Config
	for name, run := range Registry {
		if err := run(bad, &bytes.Buffer{}); err == nil {
			t.Errorf("%s accepted an invalid config", name)
		}
	}
}
