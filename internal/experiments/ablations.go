package experiments

import (
	"io"

	"ulpdp/internal/budget"
	"ulpdp/internal/cordic"
	"ulpdp/internal/core"
	"ulpdp/internal/floatleak"
	"ulpdp/internal/laplace"
	"ulpdp/internal/noisedist"
	"ulpdp/internal/rappor"
	"ulpdp/internal/urng"
)

// This file contains ablations of the design choices the paper fixes
// without exploring: the URNG width (B_u = 17), the single-cycle
// 30-stage CORDIC, and the segmented (rather than flat worst-case)
// budget charging. They are not paper exhibits, but they answer the
// "why these numbers" questions a hardware team would ask.

// AblateRNGRow is one URNG width data point.
type AblateRNGRow struct {
	// Bu is the URNG magnitude width.
	Bu int
	// Threshold is the certified thresholding guard (steps), 0 if no
	// positive threshold exists at this width.
	Threshold int64
	// Feasible reports whether a certified threshold exists.
	Feasible bool
	// ExactLoss is the enumerated worst-case loss at the threshold.
	ExactLoss float64
	// FirstHole is the first zero-probability noise step (-1: none).
	FirstHole int64
	// TailMass is the probability the guard clips/redraws for a
	// centred input (the resampling energy cost driver).
	TailMass float64
}

// AblateRNGResult sweeps the URNG width at the Fig. 4 geometry.
type AblateRNGResult struct {
	Rows []AblateRNGRow
	Mult float64
}

// AblateRNG runs the width sweep.
func AblateRNG(cfg Config) (AblateRNGResult, error) {
	if err := cfg.Validate(); err != nil {
		return AblateRNGResult{}, err
	}
	res := AblateRNGResult{Mult: cfg.Mult}
	for bu := 6; bu <= 20; bu += 2 {
		par := fig4Params
		par.Bu = bu
		row := AblateRNGRow{Bu: bu, FirstHole: -1}
		d := laplace.NewDist(par.FxP())
		if hole, ok := d.FirstZeroHole(); ok {
			row.FirstHole = hole
		}
		th, err := core.ThresholdingThreshold(par, cfg.Mult)
		if err == nil {
			row.Feasible = true
			row.Threshold = th
			an := core.CachedAnalyzer(par)
			row.ExactLoss = an.ThresholdingLoss(th).MaxLoss
			row.TailMass = d.TailMag(th)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the result.
func (r AblateRNGResult) Print(w io.Writer) {
	fprintf(w, "Ablation: URNG width vs certified guard (Fig. 4 geometry, target %.2g·ε)\n", r.Mult)
	fprintf(w, "%4s %10s %12s %12s %12s\n", "Bu", "threshold", "exact loss", "first hole", "tail mass")
	for _, row := range r.Rows {
		if !row.Feasible {
			fprintf(w, "%4d %10s %12s %12d %12s\n", row.Bu, "none", "-", row.FirstHole, "-")
			continue
		}
		fprintf(w, "%4d %10d %12.4f %12d %12.3e\n",
			row.Bu, row.Threshold, row.ExactLoss, row.FirstHole, row.TailMass)
	}
	fprintf(w, "(wider URNGs push the hole onset out and admit larger guards;\n")
	fprintf(w, " below ~10 bits no certified guard exists at this grid)\n")
}

// AblateChargingResult compares Algorithm 1's segmented charging with
// flat worst-case charging: fresh responses served from one budget.
type AblateChargingResult struct {
	Budget float64
	// FreshSegmented / FreshFlat are the fresh responses served.
	FreshSegmented, FreshFlat int
	// MeanChargeSegmented is the average per-response charge.
	MeanChargeSegmented float64
	// FlatCharge is the flat worst-case charge Mult·ε.
	FlatCharge float64
}

// AblateCharging measures the benefit of output-dependent charging.
func AblateCharging(cfg Config) (AblateChargingResult, error) {
	if err := cfg.Validate(); err != nil {
		return AblateChargingResult{}, err
	}
	par := fig4Params
	const budgetNats = 60.0
	res := AblateChargingResult{Budget: budgetNats, FlatCharge: cfg.Mult * par.Eps}

	// Segmented: the real controller.
	ctl, err := budget.New(par, budget.Config{
		Budget: budgetNats, Mult: cfg.Mult, Multipliers: []float64{1.25, 1.5},
		Log: fastLog, Source: urng.NewTaus88(cfg.Seed),
	})
	if err != nil {
		return AblateChargingResult{}, err
	}
	var spent float64
	for i := 0; i < 100000; i++ {
		r, err := ctl.Request(5)
		if err != nil {
			return AblateChargingResult{}, err
		}
		if r.FromCache {
			break
		}
		res.FreshSegmented++
		spent += r.Charged
	}
	if res.FreshSegmented > 0 {
		res.MeanChargeSegmented = spent / float64(res.FreshSegmented)
	}
	// Flat: every response costs the worst case.
	res.FreshFlat = int(budgetNats / res.FlatCharge)
	return res, nil
}

// Print renders the result.
func (r AblateChargingResult) Print(w io.Writer) {
	fprintf(w, "Ablation: segmented vs flat worst-case budget charging (budget %.0f nats)\n", r.Budget)
	fprintf(w, "flat worst-case charging:  %6d fresh responses (%.4f nats each)\n", r.FreshFlat, r.FlatCharge)
	fprintf(w, "Algorithm 1 segments:      %6d fresh responses (%.4f nats mean)\n",
		r.FreshSegmented, r.MeanChargeSegmented)
	fprintf(w, "-> adaptive charging serves %.2fx more responses from the same budget\n",
		float64(r.FreshSegmented)/float64(r.FreshFlat))
}

// AblateFamilyRow is one noise family's finite-precision audit.
type AblateFamilyRow struct {
	// Family names the distribution.
	Family string
	// MaxK is the largest representable noise step.
	MaxK int64
	// IdealTailBeyond is the ideal probability mass past the
	// hardware's reach — the bounded-support pathology.
	IdealTailBeyond float64
	// FirstHole is the first zero-probability step (-1 if none).
	FirstHole int64
	// NaiveInfinite reports the unguarded mechanism's infinite loss.
	NaiveInfinite bool
	// CertifiedThreshold is the exact-search thresholding guard for
	// 2ε (0 if none exists).
	CertifiedThreshold int64
	// CertifiedLoss is the exact loss at that threshold.
	CertifiedLoss float64
}

// AblateFamilyResult executes Section III-A4's generalization claim:
// the Laplace, Gaussian and staircase mechanisms all lose DP on
// fixed-point hardware, and the thresholding guard (with an exactly
// certified threshold) restores a bound for each.
type AblateFamilyResult struct {
	Rows []AblateFamilyRow
	Eps  float64
}

// AblateFamily runs the cross-family audit on a common geometry.
func AblateFamily(cfg Config) (AblateFamilyResult, error) {
	if err := cfg.Validate(); err != nil {
		return AblateFamilyResult{}, err
	}
	geo := noisedist.Geometry{Bu: 14, By: 12, Delta: 0.25}
	par := core.Params{Lo: 0, Hi: 8, Eps: cfg.Eps, Bu: geo.Bu, By: geo.By, Delta: geo.Delta}
	lambda := par.Lambda()
	fams := []noisedist.Family{
		noisedist.Laplace{Lambda: lambda},
		// Gaussian scaled for (ε, δ=1e-5)-DP: σ = d·sqrt(2 ln(1.25/δ))/ε.
		noisedist.Gaussian{Sigma: par.Range() * 4.84 / par.Eps},
		noisedist.Staircase{Eps: par.Eps, D: par.Range(), Gamma: noisedist.OptimalGamma(par.Eps)},
	}
	res := AblateFamilyResult{Eps: par.Eps}
	type famKey struct {
		Fam noisedist.Family
		Geo noisedist.Geometry
	}
	for _, fam := range fams {
		d, err := noisedist.NewDist(fam, geo)
		if err != nil {
			return AblateFamilyResult{}, err
		}
		an := core.CachedAnalyzerPMF(par, famKey{Fam: fam, Geo: geo}, d.PMF)
		maxK := an.MaxK()
		row := AblateFamilyRow{
			Family:          fam.Name(),
			MaxK:            maxK,
			IdealTailBeyond: fam.Survival((float64(maxK) + 0.5) * geo.Delta),
			FirstHole:       -1,
			NaiveInfinite:   an.BaselineLoss().Infinite,
		}
		if hole, ok := d.FirstZeroHole(); ok {
			row.FirstHole = hole
		}
		// Exact search (descending) for the largest certified guard.
		target := 2 * par.Eps
		for step := maxK; step >= 1; step-- {
			if rep := an.ThresholdingLoss(step); rep.Bounded(target) {
				row.CertifiedThreshold = step
				row.CertifiedLoss = rep.MaxLoss
				break
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the result.
func (r AblateFamilyResult) Print(w io.Writer) {
	fprintf(w, "Ablation: finite-precision pathology across noise families (ε=%g, target 2ε)\n", r.Eps)
	fprintf(w, "%-10s %7s %12s %11s %7s %10s %10s\n",
		"family", "maxK", "ideal tail>", "first hole", "naive∞", "cert. thr", "cert. loss")
	for _, row := range r.Rows {
		fprintf(w, "%-10s %7d %12.3e %11d %7v %10d %10.4f\n",
			row.Family, row.MaxK, row.IdealTailBeyond, row.FirstHole,
			row.NaiveInfinite, row.CertifiedThreshold, row.CertifiedLoss)
	}
	fprintf(w, "(Section III-A4 generalization: every DP noise family is bounded and\n")
	fprintf(w, " holed on fixed-point hardware; exact-certified thresholds restore LDP)\n")
}

// AblateFloatResult executes the other half of Section III-A4 (the
// paper's reference [27], Mironov's attack): naive double-precision
// software noising leaks through the floating-point grid's gaps,
// while the certified fixed-point guard leaks nothing.
type AblateFloatResult struct {
	// RevealRate01 / RevealRate10 are the fractions of naive float64
	// outputs from x=0 (resp. x=d) that are unreachable from the
	// other input — each one identifies the secret exactly.
	RevealRate01, RevealRate10 float64
	// Lambda and D are the mechanism scale and input distance.
	Lambda, D float64
	// GuardedInfinite reports whether the certified fixed-point
	// thresholding mechanism has any identifying output (it must
	// not).
	GuardedInfinite bool
	// GuardedLoss is its exact worst-case loss.
	GuardedLoss float64
}

// AblateFloat measures the float64 leak and the fixed-point fix.
func AblateFloat(cfg Config) (AblateFloatResult, error) {
	if err := cfg.Validate(); err != nil {
		return AblateFloatResult{}, err
	}
	const lambda, d = 2.0, 1.0
	n := 40 * cfg.Trials
	res := AblateFloatResult{
		Lambda:       lambda,
		D:            d,
		RevealRate01: floatleak.RevealRate(0, d, lambda, n, cfg.Seed),
		RevealRate10: floatleak.RevealRate(d, 0, lambda, n, cfg.Seed+1),
	}
	par := core.Params{Lo: 0, Hi: d, Eps: d / lambda, Bu: rngBu, By: rngBy, Delta: d / 64}
	th, err := core.ThresholdingThreshold(par, cfg.Mult)
	if err != nil {
		return AblateFloatResult{}, err
	}
	rep := core.CachedAnalyzer(par).ThresholdingLoss(th)
	res.GuardedInfinite = rep.Infinite
	res.GuardedLoss = rep.MaxLoss
	return res, nil
}

// Print renders the result.
func (r AblateFloatResult) Print(w io.Writer) {
	fprintf(w, "Ablation: naive float64 Laplace (Mironov's attack) vs certified fixed point\n")
	fprintf(w, "naive float64, λ=%g, inputs %g apart:\n", r.Lambda, r.D)
	fprintf(w, "  %.1f%% of outputs from x=0 identify the input exactly\n", 100*r.RevealRate01)
	fprintf(w, "  %.1f%% of outputs from x=%g identify the input exactly\n", 100*r.RevealRate10, r.D)
	fprintf(w, "certified fixed-point thresholding on the same task:\n")
	fprintf(w, "  identifying outputs: %v; exact worst-case loss %.4f nats\n", r.GuardedInfinite, r.GuardedLoss)
}

// RapporPoint is one (N, flip-prob) cell of the RAPPOR sweep.
type RapporPoint struct {
	// N is the number of reports.
	N int
	// MAE is the mean absolute frequency-estimate error across
	// candidates.
	MAE float64
}

// RapporResult is the RAPPOR extension exhibit: categorical frequency
// estimation over Bloom-encoded randomized-response reports — the
// mechanism the paper's Section VI-E cites — with accuracy improving
// in N, like Fig. 14 but for an open category set.
type RapporResult struct {
	Points []RapporPoint
	// Eps is the per-report privacy parameter of the configuration.
	Eps float64
	// Candidates is the decoded candidate count.
	Candidates int
}

// ExtRappor runs the RAPPOR sweep.
func ExtRappor(cfg Config) (RapporResult, error) {
	if err := cfg.Validate(); err != nil {
		return RapporResult{}, err
	}
	par := rappor.Params{Bits: 128, Hashes: 2, FlipProb: 0.3}
	candidates := []string{"maps", "mail", "news", "video", "music", "other"}
	truth := []float64{0.3, 0.25, 0.2, 0.15, 0.1, 0}
	res := RapporResult{Eps: par.Epsilon(), Candidates: len(candidates)}
	sizes := []int{500, 2000, 8000, 32000}
	for _, n := range sizes {
		var mae float64
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := cfg.Seed + uint64(trial)*31 + uint64(n)
			client := rappor.NewClient(par, seed)
			agg := rappor.NewAggregator(par)
			rng := urng.NewSplitMix64(seed ^ 0xABCD)
			for i := 0; i < n; i++ {
				u := rng.Float64()
				cat := candidates[0]
				acc := 0.0
				for j, f := range truth {
					acc += f
					if u < acc {
						cat = candidates[j]
						break
					}
				}
				agg.Add(client.Report(cat))
			}
			est, err := agg.Decode(candidates)
			if err != nil {
				return RapporResult{}, err
			}
			for j := range est {
				mae += absF(est[j] - truth[j])
			}
		}
		mae /= float64(cfg.Trials * len(candidates))
		res.Points = append(res.Points, RapporPoint{N: n, MAE: mae})
	}
	return res, nil
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Print renders the result.
func (r RapporResult) Print(w io.Writer) {
	fprintf(w, "Extension: RAPPOR categorical frequency estimation (%d candidates, per-report ε = %.2f)\n",
		r.Candidates, r.Eps)
	fprintf(w, "%10s %16s\n", "N", "frequency MAE")
	for _, p := range r.Points {
		fprintf(w, "%10d %16.4f\n", p.N, p.MAE)
	}
	fprintf(w, "(the Bloom-encoded generalization of the DP-Box randomized-response mode)\n")
}

// AblateLogRow is one CORDIC depth data point.
type AblateLogRow struct {
	// Iterations is the CORDIC stage count.
	Iterations int
	// MismatchPerMille is how many of 1000·(draws) magnitude mappings
	// differ from the exact-log datapath, in ‰.
	MismatchPerMille float64
	// MaxStepError is the largest magnitude difference in steps.
	MaxStepError int64
}

// AblateLogResult sweeps the CORDIC depth and compares the hardware
// datapath against exact logarithms, justifying the 30-stage choice.
type AblateLogResult struct {
	Rows []AblateLogRow
	// Draws is the number of URNG inputs compared per depth.
	Draws int
}

// AblateLog runs the depth sweep.
func AblateLog(cfg Config) (AblateLogResult, error) {
	if err := cfg.Validate(); err != nil {
		return AblateLogResult{}, err
	}
	par := fig4Params.FxP()
	exact, err := laplace.NewSampler(par, laplace.FloatLog{FracBits: 50}, urng.NewTaus88(1))
	if err != nil {
		return AblateLogResult{}, err
	}
	draws := 1 << par.Bu
	res := AblateLogResult{Draws: draws}
	for _, iters := range []int{8, 12, 16, 20, 24, 30} {
		c := cordic.New(cordic.Config{Iterations: iters, Frac: 40})
		s, err := laplace.NewSampler(par, c, urng.NewTaus88(1))
		if err != nil {
			return AblateLogResult{}, err
		}
		var mismatches int
		var maxErr int64
		for m := uint64(1); m <= uint64(draws); m++ {
			a := s.MagnitudeForDraw(m)
			b := exact.MagnitudeForDraw(m)
			if a != b {
				mismatches++
				d := a - b
				if d < 0 {
					d = -d
				}
				if d > maxErr {
					maxErr = d
				}
			}
		}
		res.Rows = append(res.Rows, AblateLogRow{
			Iterations:       iters,
			MismatchPerMille: 1000 * float64(mismatches) / float64(draws),
			MaxStepError:     maxErr,
		})
	}
	return res, nil
}

// Print renders the result.
func (r AblateLogResult) Print(w io.Writer) {
	fprintf(w, "Ablation: CORDIC depth vs exact-log datapath agreement (%d draws)\n", r.Draws)
	fprintf(w, "%6s %16s %16s\n", "stages", "mismatch (‰)", "max error (steps)")
	for _, row := range r.Rows {
		fprintf(w, "%6d %16.3f %16d\n", row.Iterations, row.MismatchPerMille, row.MaxStepError)
	}
	fprintf(w, "(the paper's single-cycle unrolled CORDIC uses ~30 stages: at that\n")
	fprintf(w, " depth the hardware reproduces the analyzed distribution bit-for-bit\n")
	fprintf(w, " on all but a vanishing fraction of rounding-boundary draws)\n")
}
