package experiments

import (
	"io"
	"sync"

	"ulpdp/internal/core"
	"ulpdp/internal/dataset"
	"ulpdp/internal/query"
	"ulpdp/internal/svm"
	"ulpdp/internal/urng"
)

// TableIRow is one dataset's summary.
type TableIRow struct {
	Meta  dataset.Meta
	Stats dataset.Stats
}

// TableIResult reproduces Table I: the dataset inventory with the
// generated samples' actual statistics next to the targets.
type TableIResult struct {
	Rows []TableIRow
}

// TableI generates all seven datasets and summarizes them.
func TableI(cfg Config) (TableIResult, error) {
	if err := cfg.Validate(); err != nil {
		return TableIResult{}, err
	}
	var res TableIResult
	for _, m := range dataset.Catalog() {
		xs := m.Generate(cfg.Seed)
		res.Rows = append(res.Rows, TableIRow{Meta: m, Stats: dataset.Describe(xs)})
	}
	return res, nil
}

// Print renders the result.
func (r TableIResult) Print(w io.Writer) {
	fprintf(w, "Table I: datasets (synthetic regenerations; target vs generated)\n")
	fprintf(w, "%-24s %8s %20s %18s %18s\n", "dataset", "entries", "min/max", "mean (tgt/gen)", "std (tgt/gen)")
	for _, row := range r.Rows {
		m, s := row.Meta, row.Stats
		fprintf(w, "%-24s %8d %9s/%-10s %8s/%-9s %8s/%-9s\n",
			m.Name, s.N,
			fmtG(m.Min), fmtG(m.Max),
			fmtG(m.Mean), fmtG(s.Mean),
			fmtG(m.Std), fmtG(s.Std))
	}
}

// UtilityCell is one (dataset, setting) utility measurement.
type UtilityCell struct {
	Setting Setting
	Utility query.Utility
	// LDP reports whether the setting guarantees local DP, verified
	// by the exact analyzer for this dataset's parameters (not just
	// asserted).
	LDP bool
}

// UtilityRow is one dataset's row in a utility table.
type UtilityRow struct {
	Dataset string
	Cells   [4]UtilityCell // indexed by Setting
}

// UtilityTableResult reproduces one of Tables II-V.
type UtilityTableResult struct {
	Query query.Kind
	Eps   float64
	Rows  []UtilityRow
}

// TableII measures mean-query utility (ε = cfg.Eps).
func TableII(cfg Config) (UtilityTableResult, error) { return utilityTable(cfg, query.Mean) }

// TableIII measures median-query utility.
func TableIII(cfg Config) (UtilityTableResult, error) { return utilityTable(cfg, query.Median) }

// TableIV measures variance-query utility.
func TableIV(cfg Config) (UtilityTableResult, error) { return utilityTable(cfg, query.Variance) }

// TableV measures counting-query utility.
func TableV(cfg Config) (UtilityTableResult, error) { return utilityTable(cfg, query.Count) }

func utilityTable(cfg Config, k query.Kind) (UtilityTableResult, error) {
	if err := cfg.Validate(); err != nil {
		return UtilityTableResult{}, err
	}
	cat := dataset.Catalog()
	res := UtilityTableResult{Query: k, Eps: cfg.Eps, Rows: make([]UtilityRow, len(cat))}
	errs := make([]error, len(cat))
	var wg sync.WaitGroup
	// Datasets are independent (seeded per dataset and setting), so
	// the table fans out across cores; results land in fixed slots,
	// keeping the output deterministic.
	for di, m := range cat {
		wg.Add(1)
		go func(di int, m dataset.Meta) {
			defer wg.Done()
			data := loadData(cfg, m)
			par := paramsFor(m, cfg.Eps)
			ldp := certifyLDP(par, cfg.Mult)
			row := UtilityRow{Dataset: m.Name}
			for _, s := range Settings {
				mech, err := mechanismForMult(s, par, cfg.Mult, cfg.Seed+uint64(di*7)+uint64(s))
				if err != nil {
					errs[di] = err
					return
				}
				norm := query.NormalizeFor(k, data, par.Range())
				row.Cells[s] = UtilityCell{
					Setting: s,
					Utility: query.EvaluateMAE(mech, k, data, cfg.Trials, norm),
					LDP:     ldp[s],
				}
			}
			res.Rows[di] = row
		}(di, m)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return UtilityTableResult{}, err
		}
	}
	return res, nil
}

// certifyLDP runs the exact analyzer once per dataset configuration
// and reports, per setting, whether local DP actually holds — the
// "LDP?" column. The analyzer verdicts are cached per parameter set.
func certifyLDP(par core.Params, mult float64) map[Setting]bool {
	ldpMu.Lock()
	defer ldpMu.Unlock()
	if v, ok := ldpCache[par]; ok {
		return v
	}
	an := core.CachedAnalyzer(par)
	out := map[Setting]bool{
		SettingIdeal:    true, // analytic guarantee
		SettingBaseline: !an.BaselineLoss().Infinite,
	}
	if th, err := core.ResamplingThreshold(par, mult); err == nil {
		out[SettingResampling] = an.ResamplingLoss(th).Bounded(mult * par.Eps)
	}
	if th, err := core.ThresholdingThreshold(par, mult); err == nil {
		out[SettingThresholding] = an.ThresholdingLoss(th).Bounded(mult * par.Eps)
	}
	ldpCache[par] = out
	return out
}

// Print renders the result.
func (r UtilityTableResult) Print(w io.Writer) {
	num := map[query.Kind]string{
		query.Mean: "II", query.Median: "III", query.Variance: "IV", query.Count: "V",
	}[r.Query]
	fprintf(w, "Table %s: MAE for %s query (ε=%g); cell = MAE±σ (rel%%) [LDP?]\n", num, r.Query, r.Eps)
	fprintf(w, "%-24s", "dataset")
	for _, s := range Settings {
		fprintf(w, " %-26s", s)
	}
	fprintf(w, "\n")
	// The paper prints relative error only for mean and count; the
	// median and variance rows show raw MAE (the variance query's
	// error is dominated by the additive-noise variance 2λ², so a
	// range-relative percentage is not meaningful).
	showRel := r.Query == query.Mean || r.Query == query.Count
	for _, row := range r.Rows {
		fprintf(w, "%-24s", row.Dataset)
		for _, s := range Settings {
			c := row.Cells[s]
			flag := "N"
			if c.LDP {
				flag = "Y"
			}
			cell := c.Utility.String()
			if !showRel {
				cell = fmtG(c.Utility.MAE) + "±" + fmtG(c.Utility.StdMAE)
			}
			fprintf(w, " %-22s [%s]", cell, flag)
		}
		fprintf(w, "\n")
	}
}

// TableVICell is one (training size, privacy) accuracy.
type TableVICell struct {
	Size     int
	Eps      float64 // 0 = no DP
	Accuracy float64
}

// TableVIResult reproduces Table VI: SVM classification accuracy
// versus training-set size and privacy parameter.
type TableVIResult struct {
	Sizes []int
	Eps   []float64 // 0 sentinel = no DP
	// Cells is indexed [size][eps].
	Cells [][]float64
}

// TableVI trains SVMs on noised synthetic halfspace data.
func TableVI(cfg Config) (TableVIResult, error) {
	if err := cfg.Validate(); err != nil {
		return TableVIResult{}, err
	}
	sizes := []int{1000, 2000, 3000, 4000, 5000}
	reps := 5
	if cfg.Trials < 10 { // quick mode
		sizes = []int{300, 1000, 2000}
		reps = 2
	}
	epsList := []float64{0.5, 1, 2, 0}
	const dim = 16
	const testN = 2000

	maxSize := sizes[len(sizes)-1]
	res := TableVIResult{Sizes: sizes, Eps: epsList, Cells: make([][]float64, len(sizes))}
	for si := range res.Cells {
		res.Cells[si] = make([]float64, len(epsList))
	}
	// Paired design: per repetition one halfspace, one point stream
	// and one noise realization; size cells use nested prefixes of
	// the same noised data against a fixed test set, so the
	// more-data-helps trend is not drowned by draw-to-draw variance.
	// Cells take the median across repetitions.
	cellAccs := make([][][]float64, len(sizes))
	for si := range cellAccs {
		cellAccs[si] = make([][]float64, len(epsList))
	}
	for r := 0; r < reps; r++ {
		all := svm.GenerateHalfspace(maxSize+testN, dim, 0.15, cfg.Seed+uint64(r)*1009)
		train := svm.Dataset{X: all.X[:maxSize], Y: all.Y[:maxSize]}
		test := svm.Dataset{X: all.X[maxSize:], Y: all.Y[maxSize:]}
		for ei, eps := range epsList {
			data := train
			if eps != 0 {
				par := core.Params{Lo: -1, Hi: 1, Eps: eps, Bu: rngBu, By: rngBy, Delta: 2.0 / 256}
				th, err := core.ThresholdingThreshold(par, cfg.Mult)
				if err != nil {
					return TableVIResult{}, err
				}
				src := urng.NewTaus88(cfg.Seed + uint64(ei*10+r))
				mech, err := core.NewThresholding(par, th, fastLog, src)
				if err != nil {
					return TableVIResult{}, err
				}
				// One mechanism shared across columns: the noise stream
				// lives in src, so this draws the same sequence the
				// per-column construction used to.
				data = svm.NoiseFeatures(train, func(int) core.Mechanism { return mech })
			}
			for si, n := range sizes {
				sub := svm.Dataset{X: data.X[:n], Y: data.Y[:n]}
				model := svm.TrainLSSVM(sub, 1e-3)
				cellAccs[si][ei] = append(cellAccs[si][ei], svm.Accuracy(model, test))
			}
		}
	}
	for si := range cellAccs {
		for ei := range cellAccs[si] {
			res.Cells[si][ei] = query.MedianOf(cellAccs[si][ei])
		}
	}
	return res, nil
}

// Print renders the result.
func (r TableVIResult) Print(w io.Writer) {
	fprintf(w, "Table VI: SVM classification accuracy vs training size and ε\n")
	fprintf(w, "%10s", "size")
	for _, e := range r.Eps {
		if e == 0 {
			fprintf(w, " %8s", "No DP")
		} else {
			fprintf(w, "    ε=%-4g", e)
		}
	}
	fprintf(w, "\n")
	for si, n := range r.Sizes {
		fprintf(w, "%10d", n)
		for ei := range r.Eps {
			fprintf(w, " %7.1f%%", 100*r.Cells[si][ei])
		}
		fprintf(w, "\n")
	}
}
