package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Runner executes one exhibit and prints its rows/series.
type Runner func(cfg Config, w io.Writer) error

// printable is any exhibit result.
type printable interface{ Print(io.Writer) }

// typed adapts a typed experiment to the registry's common shape.
func typed[T printable](f func(Config) (T, error)) func(Config) (printable, error) {
	return func(cfg Config) (printable, error) {
		r, err := f(cfg)
		if err != nil {
			return nil, err
		}
		return r, nil
	}
}

// typedRegistry maps exhibit identifiers to result producers.
var typedRegistry = map[string]func(Config) (printable, error){
	"fig4":   typed(Figure4),
	"fig6":   typed(Figure6),
	"fig7":   typed(Figure7),
	"fig8":   typed(Figure8),
	"fig11":  typed(Figure11),
	"fig12":  typed(Figure12),
	"fig13":  typed(Figure13),
	"fig14":  typed(Figure14),
	"fig15":  typed(Figure15),
	"table1": typed(TableI),
	"table2": typed(TableII),
	"table3": typed(TableIII),
	"table4": typed(TableIV),
	"table5": typed(TableV),
	"table6": typed(TableVI),
	"sec3d":  typed(SectionIIID),
	"sec5":   typed(SectionV),
	// Ablations and extensions (not paper exhibits; see ablations.go).
	"ablate-rng":      typed(AblateRNG),
	"ablate-charging": typed(AblateCharging),
	"ablate-log":      typed(AblateLog),
	"ablate-family":   typed(AblateFamily),
	"ablate-float":    typed(AblateFloat),
	"ext-rappor":      typed(ExtRappor),
}

// Registry maps exhibit identifiers to text runners.
var Registry = func() map[string]Runner {
	out := make(map[string]Runner, len(typedRegistry))
	for name, f := range typedRegistry {
		f := f
		out[name] = func(cfg Config, w io.Writer) error {
			r, err := f(cfg)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}
	}
	return out
}()

// RunJSON executes one exhibit and writes its result struct as
// indented JSON — the machine-readable form of the same data the
// text runner prints.
func RunJSON(name string, cfg Config, w io.Writer) error {
	f, ok := typedRegistry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown exhibit %q", name)
	}
	r, err := f(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Exhibit string `json:"exhibit"`
		Result  any    `json:"result"`
	}{Exhibit: name, Result: r})
}

// Names returns the registry keys in stable order.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// RunAll executes every exhibit in order, separating them with
// headers; it stops at the first error.
func RunAll(cfg Config, w io.Writer) error {
	for _, name := range Names() {
		fprintf(w, "==== %s ====\n", name)
		if err := Registry[name](cfg, w); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		fprintf(w, "\n")
	}
	return nil
}
