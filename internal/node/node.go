// Package node assembles the complete ULP node the paper sketches in
// Fig. 10: an MSP430 microcontroller with a DP-Box attached as a
// memory-mapped peripheral. Firmware (real emulated MSP430 code)
// configures the DP-Box through its register file and requests noised
// sensor readings; the DP-Box enforces privacy in hardware regardless
// of what the software does — the paper's integrity argument made
// runnable.
//
// Register map (word registers at Base):
//
//	+0  CMD    write: low 3 bits are the DP-Box command port; the
//	           current DATA register is presented as the data word
//	+2  DATA   read/write: the data port
//	+4  OUT    read: the noised output (valid when STATUS.ready)
//	+6  STATUS read: bit0 ready, bits1-2 phase (3 = dead), bit3
//	           cache-hit, bit4 URNG-unhealthy, bit5 degraded
//	           (resample watchdog tripped); reading STATUS while
//	           noising steps the DP-Box one cycle (models the
//	           polling clock)
//	+8  BUDGET read: remaining budget in sixteenth-nats (saturated
//	           to 16 bits)
package node

import (
	"ulpdp/internal/dpbox"
	"ulpdp/internal/msp430"
)

// Register offsets from Base.
const (
	RegCmd    = 0
	RegData   = 2
	RegOut    = 4
	RegStatus = 6
	RegBudget = 8
	regSpan   = 10
)

// Status bits. The two-bit phase field reports dpbox.PhaseDead (3)
// after a power-rail failure; firmware can distinguish "busy" from
// "gone" without a side channel.
const (
	StatusReady     = 1 << 0
	StatusPhaseLo   = 1 << 1 // two-bit phase field
	StatusCache     = 1 << 3
	StatusUnhealthy = 1 << 4 // URNG health gate tripped: box serves cache only
	StatusDegraded  = 1 << 5 // resample watchdog tripped: output is the certified clamp
)

// Port maps a DP-Box into an MSP430's data space.
type Port struct {
	// Box is the attached hardware module.
	Box *dpbox.DPBox
	// Base is the first mapped address (word aligned).
	Base uint16

	data    int64
	lastErr error
}

// NewPort builds the mapping. It panics on a nil box or unaligned
// base (construction-time wiring errors).
func NewPort(box *dpbox.DPBox, base uint16) *Port {
	if box == nil {
		panic("node: nil DP-Box")
	}
	if base%2 != 0 {
		panic("node: unaligned peripheral base")
	}
	return &Port{Box: box, Base: base}
}

// Contains implements msp430.Peripheral.
func (p *Port) Contains(addr uint16) bool {
	return addr >= p.Base && addr < p.Base+regSpan
}

// ReadWord implements msp430.Peripheral.
func (p *Port) ReadWord(addr uint16) uint16 {
	switch addr - p.Base {
	case RegData:
		return uint16(p.data)
	case RegOut:
		return uint16(p.Box.Output())
	case RegStatus:
		// Polling the status register advances the peripheral clock
		// while a transaction is in flight (resampling cycles).
		if p.Box.Phase() == dpbox.PhaseNoising {
			p.Box.Step()
		}
		var s uint16
		if p.Box.Ready() {
			s |= StatusReady
		}
		s |= uint16(p.Box.Phase()) << 1
		if p.Box.Ready() && p.Box.LastFromCache() {
			s |= StatusCache
		}
		if !p.Box.Healthy() {
			s |= StatusUnhealthy
		}
		if p.Box.Ready() && p.Box.LastDegraded() {
			s |= StatusDegraded
		}
		return s
	case RegBudget:
		units := p.Box.BudgetRemaining() * 16
		if units > 0xFFFF {
			return 0xFFFF
		}
		if units < 0 {
			return 0
		}
		return uint16(units)
	}
	return 0
}

// WriteWord implements msp430.Peripheral.
func (p *Port) WriteWord(addr uint16, v uint16) {
	switch addr - p.Base {
	case RegData:
		p.data = int64(int16(v)) // sign-extended data port
	case RegCmd:
		// Errors surface as a sticky zero STATUS (the firmware sees
		// never-ready); the Go-level driver can still inspect them.
		p.lastErr = p.Box.Command(dpbox.Command(v&7), p.data)
	}
}

// LastErr returns the most recent command error (nil if none): the
// hardware swallows bad commands — firmware only sees a never-ready
// status — but tests and Go-level drivers can inspect the cause.
func (p *Port) LastErr() error { return p.lastErr }

// Node is the assembled system: CPU + DP-Box port.
type Node struct {
	CPU  *msp430.CPU
	Port *Port
}

// New assembles a node with the DP-Box mapped at base.
func New(box *dpbox.DPBox, base uint16) *Node {
	cpu := msp430.New()
	port := NewPort(box, base)
	cpu.AttachPeripheral(port)
	return &Node{CPU: cpu, Port: port}
}
