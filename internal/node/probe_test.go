package node

import "ulpdp/internal/msp430"

// probeProgram is a tiny test fixture: MOV.B &(base+RegData), R4.
func probeProgram() *msp430.Program {
	p := msp430.NewProgram(0x5000)
	p.MovB(msp430.Abs(base+RegData), msp430.Reg(4))
	p.Ret()
	return p
}
