package node

import "ulpdp/internal/obs"

// Trace event kinds for the report span: a report's life from noising
// to ACK is traced by its (node, seq) pair, so the ring shows the
// end-to-end path of every recent report.
const (
	// EvNoised: a report's noise was drawn (or replayed) and delivery
	// begins. A = report seq, B = noised value.
	EvNoised = "report.noised"
	// EvAcked: the collector's ACK arrived. A = report seq,
	// B = end-to-end latency in µs since noising.
	EvAcked = "report.acked"
	// EvAbandoned: delivery gave up (attempts exhausted or context
	// expired). A = report seq, B = attempts made.
	EvAbandoned = "report.abandoned"
)

// Metrics is the node agent's slice of the telemetry plane, shared by
// every agent of a fleet (trace events carry the node id).
type Metrics struct {
	Reports     *obs.Counter   // reports entered (noised or replayed)
	Resumes     *obs.Counter   // post-crash Resume deliveries
	Retransmits *obs.Counter   // extra transmissions beyond the first
	Abandoned   *obs.Counter   // deliveries that gave up
	BackoffNs   *obs.Counter   // total backoff slept, nanoseconds
	LatencyUs   *obs.Histogram // noise → ACK end-to-end span, µs
	Trace       *obs.Trace

	// Flight, when non-nil, receives per-report span stamps (noised,
	// tx attempts, ack, degraded, abandoned) keyed by (node, seq).
	// Wired by the fleet; nil keeps every stamp a single nil check.
	Flight *obs.FlightRecorder
}

// NewMetrics registers (or re-binds) the node agent metric schema.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Reports:     r.Counter("node.reports"),
		Resumes:     r.Counter("node.resumes"),
		Retransmits: r.Counter("node.retransmits"),
		Abandoned:   r.Counter("node.abandoned"),
		BackoffNs:   r.Counter("node.backoff_ns"),
		LatencyUs:   r.Histogram("node.report_latency_us", []int64{50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 1_000_000}),
		Trace:       r.Trace("trace", 1024),
	}
}
