package node

import (
	"testing"

	"ulpdp/internal/dpbox"
	"ulpdp/internal/fault"
	"ulpdp/internal/urng"
)

const base = 0x0180

func newNode(t *testing.T, budget float64) (*Node, *Driver) {
	t.Helper()
	box, err := dpbox.New(dpbox.Config{Bu: 12, By: 10, Mult: 2, Source: urng.NewTaus88(5)})
	if err != nil {
		t.Fatal(err)
	}
	if err := box.Initialize(budget, 0); err != nil {
		t.Fatal(err)
	}
	n := New(box, base)
	d, err := NewDriver(n, 1, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Configure(); err != nil {
		t.Fatal(err)
	}
	return n, d
}

func TestFirmwareNoisesThroughMMIO(t *testing.T) {
	n, d := newNode(t, 1e6)
	// One priming transaction derives the threshold.
	if _, _, err := d.Noise(8); err != nil {
		t.Fatal(err)
	}
	th := n.Port.Box.Threshold()
	if th <= 0 {
		t.Fatal("threshold not derived through the register file")
	}
	for i := 0; i < 500; i++ {
		y, cycles, err := d.Noise(8)
		if err != nil {
			t.Fatal(err)
		}
		if int64(y) < -th || int64(y) > 16+th {
			t.Fatalf("firmware got out-of-window output %d", y)
		}
		// Firmware cost: a handful of MMIO writes + polling; far
		// below the thousands of software-noising cycles.
		if cycles > 200 {
			t.Fatalf("firmware transaction took %d cycles", cycles)
		}
	}
}

func TestFirmwareVsSoftwareCycleGap(t *testing.T) {
	_, d := newNode(t, 1e6)
	_, cycles, err := d.Noise(8)
	if err != nil {
		t.Fatal(err)
	}
	// The whole hardware-assisted transaction (MMIO + polling)
	// costs tens of cycles; pure software noising costs ~1100.
	if cycles >= 300 {
		t.Errorf("hardware-assisted noising took %d CPU cycles", cycles)
	}
	t.Logf("firmware transaction: %d CPU cycles (vs ~1100 software)", cycles)
}

func TestFirmwareResamplingMode(t *testing.T) {
	n, d := newNode(t, 1e6)
	if err := d.ToggleResampling(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		y, _, err := d.Noise(16) // extreme input
		if err != nil {
			t.Fatal(err)
		}
		th := n.Port.Box.Threshold()
		if int64(y) < -th || int64(y) > 16+th {
			t.Fatalf("resampling output %d outside window", y)
		}
	}
}

func TestBudgetVisibleThroughRegister(t *testing.T) {
	n, d := newNode(t, 3)
	before := n.Port.ReadWord(base + RegBudget)
	if before != 3*16 {
		t.Fatalf("budget register = %d, want 48", before)
	}
	if _, _, err := d.Noise(8); err != nil {
		t.Fatal(err)
	}
	after := n.Port.ReadWord(base + RegBudget)
	if after >= before {
		t.Errorf("budget register did not decrease: %d -> %d", before, after)
	}
}

func TestCacheBitAfterExhaustion(t *testing.T) {
	n, d := newNode(t, 0.8)
	for i := 0; i < 50; i++ {
		if _, _, err := d.Noise(8); err != nil {
			t.Fatal(err)
		}
	}
	if n.Port.ReadWord(base+RegBudget) != 0 {
		t.Fatal("budget should be exhausted")
	}
	if _, _, err := d.Noise(8); err != nil {
		t.Fatal(err)
	}
	if n.Port.ReadWord(base+RegStatus)&StatusCache == 0 {
		t.Error("cache bit not set after exhaustion")
	}
}

func TestMaliciousFirmwareCannotRaiseBudget(t *testing.T) {
	// The integrity story: once initialized, no software action can
	// touch the budget registers. A hostile write sequence leaves the
	// budget untouched.
	n, d := newNode(t, 5)
	if _, _, err := d.Noise(8); err != nil {
		t.Fatal(err)
	}
	spent := n.Port.Box.BudgetRemaining()
	// Try to reprogram the budget through every register.
	n.Port.WriteWord(base+RegData, 0x7FFF)
	n.Port.WriteWord(base+RegCmd, 2) // SetEpsilon: now sets n_m, not budget
	n.Port.WriteWord(base+RegCmd, 1) // StartNoising from waiting
	for n.Port.Box.Phase() == dpbox.PhaseNoising {
		n.Port.Box.Step()
	}
	if got := n.Port.Box.BudgetRemaining(); got > spent {
		t.Errorf("firmware raised the budget: %g -> %g", spent, got)
	}
}

func TestPortValidation(t *testing.T) {
	box, err := dpbox.New(dpbox.Config{Bu: 12, By: 10, Mult: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range []func(){
		func() { NewPort(nil, 0x100) },
		func() { NewPort(box, 0x101) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestUnmappedRegisterReadsZero(t *testing.T) {
	box, err := dpbox.New(dpbox.Config{Bu: 12, By: 10, Mult: 2})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPort(box, base)
	if !p.Contains(base) || !p.Contains(base+regSpan-1) {
		t.Error("port does not claim its own registers")
	}
	if p.Contains(base-1) || p.Contains(base+regSpan) {
		t.Error("port claims foreign addresses")
	}
}

func TestByteAccessToRegisters(t *testing.T) {
	// Byte-wise MMIO access must read/modify the containing word.
	n, _ := newNode(t, 10)
	n.Port.WriteWord(base+RegData, 0x1234)
	cpu := n.CPU
	// MOV.B &DATA, R4 reads the low byte.
	prog := buildByteProbe(t)
	cpu.LoadWords(0x5000, prog)
	if _, err := cpu.Call(0x5000, 1000); err != nil {
		t.Fatal(err)
	}
	if cpu.R[4] != 0x34 {
		t.Errorf("byte read = %#x, want 0x34", cpu.R[4])
	}
}

func buildByteProbe(t *testing.T) []uint16 {
	t.Helper()
	// Assembled separately to avoid clobbering the firmware image.
	p := probeProgram()
	words, err := p.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	return words
}

func TestFirmwareWatchdogOnDeadBox(t *testing.T) {
	fp := fault.NewPlane()
	box, err := dpbox.New(dpbox.Config{Bu: 12, By: 10, Mult: 2, Source: urng.NewTaus88(5), Faults: fp})
	if err != nil {
		t.Fatal(err)
	}
	if err := box.Initialize(1e6, 0); err != nil {
		t.Fatal(err)
	}
	n := New(box, base)
	d, err := NewDriver(n, 1, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Configure(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Noise(8); err != nil {
		t.Fatal(err)
	}
	// Kill the power rail mid-flight: the firmware must not hang on
	// the dead peripheral — the R10 watchdog bounds the poll loop.
	fp.SchedulePowerLoss(fp.Cycle() + 1)
	if _, _, err := d.Noise(8); err == nil {
		t.Fatal("expected an error noising through a dead DP-Box")
	}
	if box.Phase() != dpbox.PhaseDead {
		t.Fatalf("phase = %v, want dead", box.Phase())
	}
	// The status register exposes the dead phase to firmware.
	if s := n.Port.ReadWord(base + RegStatus); (s>>1)&3 != uint16(dpbox.PhaseDead) {
		t.Errorf("status %#x does not report the dead phase", s)
	}
}

func TestFirmwareWatchdogOnUnhealthyBox(t *testing.T) {
	fp := fault.NewPlane()
	fp.SetURNGFault(fault.StuckWord(0)) // fails the monobit test immediately
	box, err := dpbox.New(dpbox.Config{
		Bu: 12, By: 10, Mult: 2, Source: urng.NewTaus88(5),
		Faults: fp, HealthEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := box.Initialize(1e6, 0); err != nil {
		t.Fatal(err)
	}
	n := New(box, base)
	d, err := NewDriver(n, 1, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Configure(); err != nil {
		t.Fatal(err)
	}
	// The health gate refuses StartNoising (no cache to serve), so
	// ready never rises; the firmware watchdog must trip, not spin.
	if _, _, err := d.Noise(8); err == nil {
		t.Fatal("expected a firmware error on an unhealthy DP-Box")
	}
	if s := n.Port.ReadWord(base + RegStatus); s&StatusUnhealthy == 0 {
		t.Errorf("status %#x missing the unhealthy bit", s)
	}
	if box.Phase() == dpbox.PhaseDead {
		t.Error("unhealthy box must stay alive (fail closed, not dead)")
	}
}

// TestDegradedBitReachesFirmwareBoundary trips the resample watchdog
// with an adversarial URNG and checks the trip is visible both in the
// STATUS word (bit 5) and in the decoded driver outcome — firmware and
// fleet transport can tell a certified-degraded release from a normal
// one.
func TestDegradedBitReachesFirmwareBoundary(t *testing.T) {
	fp := fault.NewPlane()
	box, err := dpbox.New(dpbox.Config{Bu: 12, By: 10, Mult: 2, Source: urng.NewTaus88(9), Faults: fp})
	if err != nil {
		t.Fatal(err)
	}
	if err := box.Initialize(1e6, 0); err != nil {
		t.Fatal(err)
	}
	n := New(box, base)
	d, err := NewDriver(n, 1, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Configure(); err != nil {
		t.Fatal(err)
	}
	if err := d.ToggleResampling(); err != nil {
		t.Fatal(err)
	}
	// Honest transaction first: threshold + watchdog derived, no
	// degraded bit.
	o, err := d.NoiseOutcome(8)
	if err != nil {
		t.Fatal(err)
	}
	if o.Degraded {
		t.Fatal("honest transaction reported degraded")
	}
	if s := n.Port.ReadWord(base + RegStatus); s&StatusDegraded != 0 {
		t.Fatal("STATUS degraded bit set after honest transaction")
	}

	// Stuck word 1: maximal noise magnitude with sign 1 on every draw —
	// never inside the window, so the watchdog must trip.
	fp.SetURNGFault(fault.StuckWord(1))
	o, err = d.NoiseOutcome(8)
	if err != nil {
		t.Fatal(err)
	}
	if !o.Degraded {
		t.Fatal("watchdog trip invisible in the driver outcome")
	}
	if s := n.Port.ReadWord(base + RegStatus); s&StatusDegraded == 0 {
		t.Fatal("watchdog trip invisible in the STATUS word")
	}

	// Clearing the fault clears the bit on the next transaction.
	fp.SetURNGFault(nil)
	o, err = d.NoiseOutcome(8)
	if err != nil {
		t.Fatal(err)
	}
	if o.Degraded {
		t.Fatal("degraded bit sticky after the fault cleared")
	}
}
