package node

import (
	"testing"

	"ulpdp/internal/dpbox"
	"ulpdp/internal/msp430"
	"ulpdp/internal/urng"
)

func newSampler(t *testing.T, period uint64) *SamplerNode {
	t.Helper()
	box, err := dpbox.New(dpbox.Config{Bu: 12, By: 10, Mult: 2, Source: urng.NewTaus88(3)})
	if err != nil {
		t.Fatal(err)
	}
	if err := box.Initialize(1e6, 0); err != nil {
		t.Fatal(err)
	}
	n := New(box, 0x0180)
	trace := make([]int16, 31)
	for i := range trace {
		trace[i] = int16(i % 17)
	}
	s, err := NewSampler(n, SamplerConfig{
		SensorAddr: 0x01A0,
		Trace:      trace,
		Period:     period,
		Vector:     4,
		EpsShift:   1,
		RangeLo:    0, RangeHi: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDutyCycledSampling(t *testing.T) {
	s := newSampler(t, 500)
	if err := s.Run(20_000); err != nil {
		t.Fatal(err)
	}
	// ~40 timer fires in 20k cycles.
	if s.Timer.Fires < 30 {
		t.Fatalf("timer fired only %d times", s.Timer.Fires)
	}
	samples := s.Samples()
	if len(samples) < 30 {
		t.Fatalf("collected %d samples", len(samples))
	}
	// Every serviced ISR consumed exactly one sensor reading (the
	// final fire may still be pending at the cycle cutoff).
	if s.Sensor.Reads != s.Timer.Fires && s.Sensor.Reads != s.Timer.Fires-1 {
		t.Errorf("sensor reads %d vs timer fires %d", s.Sensor.Reads, s.Timer.Fires)
	}
	// Every stored value is inside the certified window.
	th := s.Node.Port.Box.Threshold()
	if th <= 0 {
		t.Fatal("threshold not derived")
	}
	for i, y := range samples {
		if int64(y) < -th || int64(y) > 16+th {
			t.Fatalf("sample %d = %d outside window (threshold %d)", i, y, th)
		}
	}
}

func TestNodeSleepsBetweenSamples(t *testing.T) {
	s := newSampler(t, 1000)
	if err := s.Run(50_000); err != nil {
		t.Fatal(err)
	}
	cpu := s.Node.CPU
	idleFrac := float64(cpu.IdleCycles()) / float64(cpu.Cycles)
	// The whole point of hardware noising: the core sleeps almost all
	// the time (ISR ~45 cycles per 1000-cycle period).
	if idleFrac < 0.9 {
		t.Errorf("idle fraction %.2f; the core should sleep >90%% of the time", idleFrac)
	}
	t.Logf("idle %.1f%% of %d cycles (%d interrupts served)",
		100*idleFrac, cpu.Cycles, s.Timer.Fires)
}

func TestRingWraps(t *testing.T) {
	s := newSampler(t, 100)
	// 100-cycle period over 30k cycles: ~300 fires > 128-slot ring.
	if err := s.Run(30_000); err != nil {
		t.Fatal(err)
	}
	samples := s.Samples()
	if len(samples) != RingBytes/2 {
		t.Fatalf("wrapped ring should report %d samples, got %d", RingBytes/2, len(samples))
	}
}

func TestSamplerValidation(t *testing.T) {
	box, err := dpbox.New(dpbox.Config{Bu: 12, By: 10, Mult: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := box.Initialize(10, 0); err != nil {
		t.Fatal(err)
	}
	n := New(box, 0x0180)
	if _, err := NewSampler(n, SamplerConfig{
		SensorAddr: 0x01A0, Trace: []int16{1}, Period: 10, Vector: 99,
		EpsShift: 1, RangeLo: 0, RangeHi: 16,
	}); err == nil {
		t.Error("bad vector accepted")
	}
	for i, f := range []func(){
		func() { NewTimer(msp430.New(), 0, 1) },
		func() { NewTimer(msp430.New(), 10, -1) },
		func() { NewTraceSensor(0x200, nil) },
		func() { NewTraceSensor(0x201, []int16{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestInterruptMasking(t *testing.T) {
	// With GIE clear the timer request stays pending and the core
	// never wakes into the ISR.
	cpu := msp430.New()
	timer := NewTimer(cpu, 50, 2)
	p := msp430.NewProgram(0x4000)
	p.Label("main")
	p.Label("spin")
	p.Mov(msp430.Reg(4), msp430.Reg(4)) // NOP
	p.Jmp("spin")
	words, err := p.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	cpu.LoadWords(0x4000, words)
	cpu.R[msp430.PC] = 0x4000
	if err := cpu.RunCycles(1000, 100000); err != nil {
		t.Fatal(err)
	}
	if timer.Fires == 0 {
		t.Fatal("timer never fired")
	}
	if !cpu.InterruptsPending() {
		t.Error("request should stay latched with GIE clear")
	}
}
