package node

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ulpdp/internal/collector"
	"ulpdp/internal/dpbox"
	"ulpdp/internal/fault"
	"ulpdp/internal/transport"
	"ulpdp/internal/urng"
)

// newAgentBox builds a journaled DP-Box ready for sequence-labelled
// noising.
func newAgentBox(t *testing.T, seed uint64, budget float64) (*dpbox.DPBox, *dpbox.Journal) {
	t.Helper()
	j := dpbox.NewJournal()
	box, err := dpbox.New(dpbox.Config{
		Bu: 12, By: 10, Mult: 2,
		Multipliers: []float64{1.25, 1.5},
		Source:      urng.NewTaus88(seed),
		Journal:     j,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := box.Initialize(budget, 0); err != nil {
		t.Fatal(err)
	}
	if err := box.Configure(1, 0, 16); err != nil {
		t.Fatal(err)
	}
	return box, j
}

// echoCollector ACKs every report and records the last value seen per
// sequence number. Stop it by cancelling ctx.
type echoCollector struct {
	mu   sync.Mutex
	seen map[uint64]int64
	done chan struct{}
}

func runEchoCollector(ctx context.Context, end *transport.Endpoint, id transport.NodeID) *echoCollector {
	c := &echoCollector{seen: make(map[uint64]int64), done: make(chan struct{})}
	go func() {
		defer close(c.done)
		for ctx.Err() == nil {
			p, ok := end.Recv(5 * time.Millisecond)
			if !ok {
				continue
			}
			if p.Kind != transport.KindReport || p.Node != id {
				continue
			}
			c.mu.Lock()
			c.seen[p.Seq] = p.Value
			c.mu.Unlock()
			end.Send(transport.Packet{Kind: transport.KindAck, Node: p.Node, Seq: p.Seq})
		}
	}()
	return c
}

func (c *echoCollector) values(ctx context.Context) map[uint64]int64 {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint64]int64, len(c.seen))
	for s, v := range c.seen {
		out[s] = v
	}
	return out
}

func TestReportAgentDeliversOverLossyLink(t *testing.T) {
	fp := fault.NewPlane()
	fp.SetPacketFault(fault.LossyLink(0xA11CE, fault.LinkProfile{
		Drop: 0.3, Duplicate: 0.2, Reorder: 0.15, Corrupt: 0.1, MaxDelay: 2,
	}))
	link := transport.NewLink(transport.LinkConfig{Plane: fp})

	box, _ := newAgentBox(t, 7, 1e6)
	agent := NewReportAgent(box, link.NodeEnd(), AgentConfig{ID: 4})

	colCtx, stopCol := context.WithCancel(context.Background())
	col := runEchoCollector(colCtx, link.CollectorEnd(), 4)

	const n = 20
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		out, err := agent.Report(ctx, int64(4+i%8))
		if err != nil {
			t.Fatalf("report %d: %v", i, err)
		}
		if out.Seq != uint64(i) {
			t.Fatalf("report %d got seq %d", i, out.Seq)
		}
		if out.Replayed {
			t.Fatalf("fresh report %d marked replayed", i)
		}
	}
	stopCol()
	got := col.values(colCtx)

	// Every delivered value must match the journaled release — drops,
	// retries, duplicates and reordering never change what a sequence
	// number means.
	if len(got) != n {
		t.Fatalf("collector saw %d seqs, want %d", len(got), n)
	}
	for seq, v := range got {
		rel, ok := box.ReleaseFor(seq)
		if !ok {
			t.Fatalf("seq %d delivered but not journaled", seq)
		}
		if rel.Value != v {
			t.Fatalf("seq %d: delivered %d, journal says %d", seq, v, rel.Value)
		}
	}
	if agent.NextSeq() != n {
		t.Fatalf("NextSeq = %d, want %d", agent.NextSeq(), n)
	}
}

func TestCrashMidRetryReplaysSameValue(t *testing.T) {
	// Phase 1: a black-hole uplink — every report frame drops, so the
	// report is noised, journaled, retransmitted, and never ACKed.
	fp := fault.NewPlane()
	fp.SetPacketFault(func(n uint64, dir uint8, payload []byte) fault.PacketFate {
		if dir == fault.DirUp {
			return fault.PacketFate{Drop: true}
		}
		return fault.PacketFate{}
	})
	deadLink := transport.NewLink(transport.LinkConfig{Plane: fp})

	box, j := newAgentBox(t, 7, 1e6)
	agent := NewReportAgent(box, deadLink.NodeEnd(), AgentConfig{
		ID: 9, MaxAttempts: 3, AckWait: time.Millisecond,
	})
	out, err := agent.Report(context.Background(), 11)
	if err == nil {
		t.Fatal("report over a black-hole link succeeded")
	}
	rel, ok := box.ReleaseFor(0)
	if !ok {
		t.Fatal("undelivered report not journaled")
	}
	if rel.Value != out.Value {
		t.Fatalf("journal %d vs outcome %d", rel.Value, out.Value)
	}
	spent := 1e6 - box.BudgetRemaining()

	// Crash mid-retry.
	j.Kill()

	// Phase 2: recover with a DIFFERENT urng seed — if the recovered
	// node redrew noise for seq 0, the value would change.
	recovered, err := dpbox.Recover(dpbox.Config{
		Bu: 12, By: 10, Mult: 2,
		Multipliers: []float64{1.25, 1.5},
		Source:      urng.NewTaus88(9999),
	}, j)
	if err != nil {
		t.Fatal(err)
	}
	if err := recovered.Configure(1, 0, 16); err != nil {
		t.Fatal(err)
	}

	goodLink := transport.NewLink(transport.LinkConfig{})
	agent2 := NewReportAgent(recovered, goodLink.NodeEnd(), AgentConfig{ID: 9})
	if agent2.NextSeq() != 1 {
		t.Fatalf("recovered NextSeq = %d, want 1", agent2.NextSeq())
	}

	colCtx, stopCol := context.WithCancel(context.Background())
	col := runEchoCollector(colCtx, goodLink.CollectorEnd(), 9)
	if err := agent2.Resume(context.Background()); err != nil {
		t.Fatalf("resume: %v", err)
	}
	stopCol()
	got := col.values(colCtx)

	if v, ok := got[0]; !ok || v != out.Value {
		t.Fatalf("resumed delivery: got %v/%d, want %d", ok, v, out.Value)
	}
	// The crash and resume charged nothing extra.
	if nowSpent := 1e6 - recovered.BudgetRemaining(); nowSpent != spent {
		t.Fatalf("resume changed spend: %g -> %g nats", spent, nowSpent)
	}
	// And a sequence-labelled re-ask still replays bit-exactly.
	res, err := recovered.NoiseValueSeq(0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replayed || res.Value != out.Value {
		t.Fatalf("post-recovery replay: %+v, want value %d", res, out.Value)
	}
}

// TestAbandonedReportRedeliveredAfterCollectorRecovery is the
// sustained-outage arc: the collector's checkpoint store dies, the
// shard fails closed (no ACKs), the report exhausts its total attempt
// cap and turns terminally abandoned — then the collector recovers
// from its checkpoints, Resume re-delivers the identical journaled
// value under a fresh lease, and a second Resume is absorbed by the
// recovered dedup state as a duplicate.
func TestAbandonedReportRedeliveredAfterCollectorRecovery(t *testing.T) {
	const id = transport.NodeID(7)
	store := collector.NewStore(1)
	col, err := collector.NewDurable(collector.Config{BreakerThreshold: 1 << 20}, store)
	if err != nil {
		t.Fatal(err)
	}
	link := transport.NewLink(transport.LinkConfig{})
	if err := col.Attach(id, link.CollectorEnd()); err != nil {
		t.Fatal(err)
	}

	box, _ := newAgentBox(t, 21, 1e6)
	agent := NewReportAgent(box, link.NodeEnd(), AgentConfig{
		ID: id, MaxAttempts: 3, MaxTotalAttempts: 6, AckWait: time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Seq 0 lands normally and its admission is checkpointed.
	out0, err := agent.Report(ctx, 5)
	if err != nil {
		t.Fatalf("seq 0: %v", err)
	}

	// The collector crashes (checkpoint NVM power lost). The shard
	// fails closed: seq 1 is journaled on the node, transmitted up to
	// the total cap, never ACKed, and terminally abandoned.
	store.Kill()
	out1, err := agent.Report(ctx, 9)
	if !errors.Is(err, ErrAbandoned) {
		t.Fatalf("outage report error = %v, want ErrAbandoned", err)
	}
	if out1.Attempts != 6 {
		t.Fatalf("abandoned after %d attempts, want the total cap 6", out1.Attempts)
	}
	if st := col.Stats(); st.FailClosed == 0 {
		t.Fatalf("dead store but no fail-closed drops: %+v", st)
	}
	col.Close()

	// Restart: recover from the checkpoints, re-bind the same link.
	col2, err := collector.Recover(collector.Config{BreakerThreshold: 1 << 20}, store)
	if err != nil {
		t.Fatal(err)
	}
	defer col2.Close()
	if err := col2.Attach(id, link.CollectorEnd()); err != nil {
		t.Fatal(err)
	}
	if v, ok := col2.Node(id); !ok || !v.Have || v.Seq != 0 || v.Value != out0.Value {
		t.Fatalf("recovered view %+v ok=%v, want seq 0 value %d", v, ok, out0.Value)
	}

	// The parked report gets a fresh lease and lands; a second Resume
	// of the same seq is a pure duplicate, re-ACKed but not re-counted.
	if err := agent.Resume(ctx); err != nil {
		t.Fatalf("resume after recovery: %v", err)
	}
	if err := agent.Resume(ctx); err != nil {
		t.Fatalf("second resume: %v", err)
	}
	got := col2.Values(id)
	if len(got) != 2 || got[0] != out0.Value || got[1] != out1.Value {
		t.Fatalf("recovered values %v, want {0:%d 1:%d}", got, out0.Value, out1.Value)
	}
	if st := col2.Stats(); st.Accepted != 1 || st.Duplicates == 0 {
		t.Fatalf("post-recovery stats %+v, want 1 fresh admission and >=1 duplicate", st)
	}
}

func TestReportAgentContextDeadline(t *testing.T) {
	fp := fault.NewPlane()
	fp.SetPacketFault(func(n uint64, dir uint8, payload []byte) fault.PacketFate {
		return fault.PacketFate{Drop: true}
	})
	link := transport.NewLink(transport.LinkConfig{Plane: fp})
	box, _ := newAgentBox(t, 3, 1e6)
	agent := NewReportAgent(box, link.NodeEnd(), AgentConfig{ID: 1, AckWait: time.Millisecond})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := agent.Report(ctx, 8); err == nil {
		t.Fatal("report outlived its context")
	}
	// The noised value survives the abandonment: delivery failed,
	// noising did not, and the binding is durable.
	if _, ok := box.ReleaseFor(0); !ok {
		t.Fatal("abandoned report lost its journaled release")
	}
}
