package node

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ulpdp/internal/dpbox"
	"ulpdp/internal/obs"
	"ulpdp/internal/transport"
)

// ErrAbandoned marks a report whose total transmission budget ran out
// during a sustained collector outage: the (seq, value) binding is
// durable in the node's journal and the report is parked, not lost —
// a later Resume (typically after the collector recovers) re-delivers
// the identical value under a fresh attempt lease, and the
// collector's recovered dedup state absorbs any copies that did land.
var ErrAbandoned = errors.New("node: report abandoned (total attempt cap)")

// AgentConfig parameterizes a ReportAgent's retry policy. The zero
// value gets simulation-friendly defaults (sub-millisecond backoff);
// a real radio stack would scale every duration up.
type AgentConfig struct {
	// ID is this node's fleet identity.
	ID transport.NodeID
	// MaxAttempts bounds transmissions per delivery call (default 24).
	MaxAttempts int
	// MaxTotalAttempts caps a report's cumulative transmissions across
	// its first delivery and every in-place retry before the outcome
	// turns terminally abandoned (ErrAbandoned). Resume is exempt: it
	// grants the parked report a fresh lease, so a report abandoned
	// during a collector outage is still re-deliverable after the
	// collector recovers. Default 4×MaxAttempts.
	MaxTotalAttempts int
	// AckWait is the per-attempt ACK wait (default 2ms).
	AckWait time.Duration
	// BackoffBase seeds the capped exponential backoff (default 200µs).
	BackoffBase time.Duration
	// BackoffCap caps the backoff (default 4ms).
	BackoffCap time.Duration
	// JitterSeed seeds the deterministic backoff jitter.
	JitterSeed uint64
	// Obs is an optional telemetry plane, usually shared across every
	// agent of a fleet. Nil costs one nil check per report.
	Obs *Metrics
}

// ReportOutcome describes one delivered (or abandoned) report.
type ReportOutcome struct {
	// Seq is the report's sequence number.
	Seq uint64
	// Value is the noised value that was (re)transmitted.
	Value int64
	// Attempts counts transmissions, including the successful one.
	Attempts int
	// Charged is the budget charge in nats (0 for replays and
	// cache serves).
	Charged float64
	// Degraded, FromCache, Replayed mirror dpbox.NoiseResult.
	Degraded  bool
	FromCache bool
	Replayed  bool
}

// ReportAgent is the node-side half of the fleet protocol: at-most-
// once noising, at-least-once delivery.
//
// Each report gets the next monotonic sequence number and is noised
// through dpbox.NoiseValueSeq, which journals the (seq, value)
// binding inside the budget charge transaction. Every retransmission
// of that sequence number carries the journaled value verbatim —
// after any schedule of drops, timeouts, and even a node crash, the
// value on the air for a given seq never changes and the budget is
// charged exactly once. Delivery retries with capped exponential
// backoff plus deterministic jitter until the collector ACKs
// (node, seq) or the context expires.
//
// An agent is single-goroutine: one outstanding report at a time, by
// construction (the paper's DP-Box serves one transaction at a time
// anyway).
type ReportAgent struct {
	box *dpbox.DPBox
	end *transport.Endpoint
	cfg AgentConfig

	next      uint64
	jitter    uint64
	lastAcked uint64
	anyAcked  bool
}

// NewReportAgent wires an agent to its DP-Box and link endpoint. The
// next sequence number resumes from the box's journal, so an agent
// built on a crash-recovered box continues the numbering instead of
// reusing (and re-noising) old sequence numbers.
func NewReportAgent(box *dpbox.DPBox, end *transport.Endpoint, cfg AgentConfig) *ReportAgent {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 24
	}
	if cfg.MaxTotalAttempts <= 0 {
		cfg.MaxTotalAttempts = 4 * cfg.MaxAttempts
	}
	if cfg.AckWait <= 0 {
		cfg.AckWait = 2 * time.Millisecond
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 200 * time.Microsecond
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = 4 * time.Millisecond
	}
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = uint64(cfg.ID)*0x9E3779B97F4A7C15 + 1
	}
	return &ReportAgent{
		box:    box,
		end:    end,
		cfg:    cfg,
		next:   box.NextSeq(),
		jitter: cfg.JitterSeed,
	}
}

// NextSeq returns the sequence number the next Report will use.
func (a *ReportAgent) NextSeq() uint64 { return a.next }

// rand steps the agent's private xorshift64* jitter stream.
func (a *ReportAgent) rand() uint64 {
	a.jitter ^= a.jitter >> 12
	a.jitter ^= a.jitter << 25
	a.jitter ^= a.jitter >> 27
	return a.jitter * 0x2545F4914F6CDD1D
}

// backoff returns the pause before attempt k (k ≥ 1): capped
// exponential with full jitter, so colliding nodes desynchronize.
func (a *ReportAgent) backoff(k int) time.Duration {
	d := a.cfg.BackoffBase << uint(k-1)
	if d > a.cfg.BackoffCap || d <= 0 {
		d = a.cfg.BackoffCap
	}
	// Full jitter in [d/2, d].
	half := d / 2
	return half + time.Duration(a.rand()%uint64(half+1))
}

// Report noises x exactly once under the next sequence number and
// delivers it at-least-once. On error the (seq, value) binding is
// already durable; Resume (or a fresh agent on the recovered box)
// retransmits the identical value later.
func (a *ReportAgent) Report(ctx context.Context, x int64) (ReportOutcome, error) {
	seq := a.next
	var noisedAt time.Time
	if m := a.cfg.Obs; m != nil {
		noisedAt = time.Now()
		// The span opens before the noising transaction so the journal
		// commit inside it lands after the noised stamp.
		m.Flight.Record(int64(a.cfg.ID), seq, obs.StageNoised)
	}
	res, err := a.box.NoiseValueSeq(seq, x)
	if err != nil {
		return ReportOutcome{Seq: seq}, fmt.Errorf("node: noising seq %d: %w", seq, err)
	}
	a.next = seq + 1
	if m := a.cfg.Obs; m != nil {
		m.Reports.Inc()
		m.Trace.Emit(EvNoised, a.box.Cycles(), int64(a.cfg.ID), int64(seq), res.Value)
		if res.Degraded {
			m.Flight.Record(int64(a.cfg.ID), seq, obs.StageDegraded)
		}
	}

	out := ReportOutcome{
		Seq:       seq,
		Value:     res.Value,
		Charged:   res.Charged,
		Degraded:  res.Degraded,
		FromCache: res.FromCache,
		Replayed:  res.Replayed,
	}
	// A report rides out a collector outage up to the total cap, then
	// abandons terminally (ErrAbandoned); the journaled binding keeps
	// it re-deliverable through Resume once the collector is back.
	attempts, err := a.deliver(ctx, a.packet(seq, res.Value, res.Degraded, res.FromCache), a.cfg.MaxTotalAttempts)
	out.Attempts = attempts
	if m := a.cfg.Obs; m != nil && err == nil {
		// The (node, seq) span closes: noise drawn → ACK recorded.
		lat := time.Since(noisedAt).Microseconds()
		m.LatencyUs.Observe(lat)
		m.Trace.Emit(EvAcked, a.box.Cycles(), int64(a.cfg.ID), int64(seq), lat)
	}
	return out, err
}

// Resume retransmits the most recent journaled release until ACKed.
// Call it after crash recovery (node or collector side), or to
// re-deliver a report Report abandoned at its total attempt cap: each
// Resume grants a fresh MaxAttempts lease, at most one report can be
// outstanding (the agent is sequential), and re-delivering an
// already-ACKed sequence number is harmless — the collector dedups by
// (node, seq), and a restarted collector's recovered dedup state
// re-ACKs it bit-exactly.
func (a *ReportAgent) Resume(ctx context.Context) error {
	if a.next == 0 {
		return nil // nothing ever released
	}
	seq := a.next - 1
	rel, ok := a.box.ReleaseFor(seq)
	if !ok {
		return fmt.Errorf("node: no journaled release for seq %d", seq)
	}
	if m := a.cfg.Obs; m != nil {
		m.Resumes.Inc()
	}
	_, err := a.deliver(ctx, a.packet(seq, rel.Value, rel.Degraded, rel.FromCache), a.cfg.MaxAttempts)
	return err
}

func (a *ReportAgent) packet(seq uint64, value int64, degraded, fromCache bool) transport.Packet {
	var flags uint8
	if degraded {
		flags |= transport.FlagDegraded
	}
	if fromCache {
		flags |= transport.FlagFromCache
	}
	if !a.box.Healthy() {
		flags |= transport.FlagUnhealthy
	}
	return transport.Packet{
		Kind:  transport.KindReport,
		Node:  a.cfg.ID,
		Seq:   seq,
		Value: value,
		Flags: flags,
	}
}

// deliver retransmits pkt verbatim until an ACK for (node, seq)
// arrives, the attempt budget runs out, or the context expires.
func (a *ReportAgent) deliver(ctx context.Context, pkt transport.Packet, budget int) (int, error) {
	attempts, err := a.deliverLoop(ctx, pkt, budget)
	if m := a.cfg.Obs; m != nil {
		if attempts > 1 {
			m.Retransmits.Add(uint64(attempts - 1))
		}
		if err != nil {
			m.Abandoned.Inc()
			m.Trace.Emit(EvAbandoned, a.box.Cycles(), int64(a.cfg.ID), int64(pkt.Seq), int64(attempts))
			m.Flight.Record(int64(a.cfg.ID), pkt.Seq, obs.StageAbandoned)
		} else {
			m.Flight.Record(int64(a.cfg.ID), pkt.Seq, obs.StageAck)
		}
	}
	return attempts, err
}

func (a *ReportAgent) deliverLoop(ctx context.Context, pkt transport.Packet, budget int) (int, error) {
	// The per-window backoff exponent stays capped at MaxAttempts so a
	// long total budget keeps pausing at BackoffCap, not beyond.
	for attempt := 1; attempt <= budget; attempt++ {
		if err := ctx.Err(); err != nil {
			return attempt - 1, fmt.Errorf("node: delivering seq %d: %w", pkt.Seq, err)
		}
		if m := a.cfg.Obs; m != nil {
			m.Flight.Record(int64(a.cfg.ID), pkt.Seq, obs.StageTx)
		}
		a.end.Send(pkt)
		if a.awaitAck(ctx, pkt.Seq) {
			return attempt, nil
		}
		if attempt < budget {
			pause := a.backoff(attempt)
			if m := a.cfg.Obs; m != nil {
				m.BackoffNs.Add(uint64(pause))
			}
			if !sleepCtx(ctx, pause) {
				return attempt, fmt.Errorf("node: delivering seq %d: %w", pkt.Seq, ctx.Err())
			}
		}
	}
	return budget, fmt.Errorf("node: seq %d unacked after %d attempts: %w", pkt.Seq, budget, ErrAbandoned)
}

// awaitAck waits one AckWait window for an ACK of seq, absorbing
// stale ACKs (earlier sequence numbers, duplicate deliveries) without
// giving up the window.
func (a *ReportAgent) awaitAck(ctx context.Context, seq uint64) bool {
	deadline := time.Now().Add(a.cfg.AckWait)
	for {
		remain := time.Until(deadline)
		if remain <= 0 || ctx.Err() != nil {
			return false
		}
		ack, ok := a.end.Recv(remain)
		if !ok {
			return false
		}
		if ack.Kind != transport.KindAck || ack.Node != a.cfg.ID {
			continue
		}
		if !a.anyAcked || ack.Seq > a.lastAcked {
			a.anyAcked = true
			a.lastAcked = ack.Seq
		}
		if ack.Seq == seq {
			return true
		}
	}
}

// sleepCtx pauses for d unless the context expires first; it reports
// whether the full pause completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
