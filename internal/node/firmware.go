package node

import (
	"fmt"

	"ulpdp/internal/msp430"
)

// Firmware memory map: the driver exchanges values with the host
// through three RAM words.
const (
	AddrX   = 0x0200 // input: sensor value (steps)
	AddrOut = 0x0202 // output: noised value
	AddrErr = 0x0204 // status: 0 ok, ErrCode* otherwise
)

// Firmware error codes stored at AddrErr.
const (
	// ErrCodePollTimeout means the DP-Box never raised STATUS.ready
	// within PollBudget polls: the box is wedged, dead, or refusing
	// the request. The firmware gives up instead of spinning forever.
	ErrCodePollTimeout = 1
)

// PollBudget bounds the firmware's ready-poll loop. Each STATUS read
// steps the DP-Box one cycle while noising, so the budget must exceed
// the box's resample watchdog cap (at most 2048 cycles) plus FSM
// overhead; 4096 leaves 2x slack. A healthy transaction is orders of
// magnitude shorter, so the bound never fires in normal operation.
const PollBudget = 4096

// BuildFirmware assembles the MSP430 driver for a DP-Box mapped at
// base: a configuration routine (ε shift, sensor range) and a noising
// routine (load sensor value, start, poll ready, store output).
func BuildFirmware(base uint16, epsShift int, rangeLo, rangeHi int16) (*msp430.Program, error) {
	if base%2 != 0 {
		return nil, fmt.Errorf("node: unaligned base %#x", base)
	}
	cmd := base + RegCmd
	data := base + RegData
	out := base + RegOut
	status := base + RegStatus

	p := msp430.NewProgram(0x4000)

	// configure: write ε and the range registers once.
	p.Label("configure")
	p.Mov(msp430.Imm(epsShift), msp430.Abs(data))
	p.Mov(msp430.Imm(2), msp430.Abs(cmd)) // SetEpsilon
	p.Mov(msp430.Imm(int(rangeLo)), msp430.Abs(data))
	p.Mov(msp430.Imm(5), msp430.Abs(cmd)) // SetRangeLower
	p.Mov(msp430.Imm(int(rangeHi)), msp430.Abs(data))
	p.Mov(msp430.Imm(4), msp430.Abs(cmd)) // SetRangeUpper
	p.Ret()

	// noise: one full transaction. The poll loop is bounded by a
	// software watchdog in R10: an embedded driver must not hang on a
	// wedged peripheral, and the fail-closed DP-Box can legitimately
	// refuse to ever raise ready (dead phase, unhealthy URNG).
	p.Label("noise")
	p.Mov(msp430.Abs(AddrX), msp430.Abs(data))
	p.Mov(msp430.Imm(3), msp430.Abs(cmd)) // SetSensorValue
	p.Mov(msp430.Imm(1), msp430.Abs(cmd)) // StartNoising
	p.Clr(msp430.Abs(AddrErr))
	p.Mov(msp430.Imm(PollBudget), msp430.Reg(10))
	p.Label("poll")
	p.Bit(msp430.Imm(StatusReady), msp430.Abs(status))
	p.Jne("ready")
	p.Dec(msp430.Reg(10))
	p.Jne("poll")
	p.Mov(msp430.Imm(ErrCodePollTimeout), msp430.Abs(AddrErr))
	p.Ret()
	p.Label("ready")
	p.Mov(msp430.Abs(out), msp430.Abs(AddrOut))
	p.Ret()

	// mode_resample: toggle the guard mode.
	p.Label("mode_resample")
	p.Mov(msp430.Imm(-1), msp430.Abs(data))
	p.Mov(msp430.Imm(6), msp430.Abs(cmd)) // SetThreshold (toggle)
	p.Ret()

	if p.Err() != nil {
		return nil, p.Err()
	}
	return p, nil
}

// Driver couples a Node with its loaded firmware.
type Driver struct {
	node      *Node
	configure uint16
	noise     uint16
	resample  uint16
}

// NewDriver assembles the firmware, loads it, and returns a driver.
func NewDriver(n *Node, epsShift int, rangeLo, rangeHi int16) (*Driver, error) {
	prog, err := BuildFirmware(n.Port.Base, epsShift, rangeLo, rangeHi)
	if err != nil {
		return nil, err
	}
	words, err := prog.Assemble()
	if err != nil {
		return nil, err
	}
	n.CPU.LoadWords(prog.Org(), words)
	d := &Driver{node: n}
	for name, dst := range map[string]*uint16{
		"configure": &d.configure, "noise": &d.noise, "mode_resample": &d.resample,
	} {
		addr, err := prog.LabelAddr(name)
		if err != nil {
			return nil, err
		}
		*dst = addr
	}
	return d, nil
}

// Configure runs the configuration routine.
func (d *Driver) Configure() error {
	if _, err := d.node.CPU.Call(d.configure, 10_000); err != nil {
		return err
	}
	return d.node.Port.LastErr()
}

// ToggleResampling runs the mode-toggle routine.
func (d *Driver) ToggleResampling() error {
	if _, err := d.node.CPU.Call(d.resample, 10_000); err != nil {
		return err
	}
	return d.node.Port.LastErr()
}

// Noise runs one firmware noising transaction and returns the noised
// value and the CPU cycles spent (including MMIO polling). When the
// firmware's poll watchdog expires — the DP-Box is wedged, dead, or
// refusing to serve — the error reports the firmware code and any
// underlying command error.
func (d *Driver) Noise(x int16) (int16, uint64, error) {
	o, err := d.NoiseOutcome(x)
	return o.Value, o.Cycles, err
}

// Outcome is one firmware noising transaction with the STATUS-word
// quality bits decoded: firmware (and the fleet transport above it)
// can tell a certified-but-degraded release from a normal one.
type Outcome struct {
	// Value is the noised output.
	Value int16
	// Cycles is the CPU cycles spent, including MMIO polling.
	Cycles uint64
	// Degraded reports STATUS.degraded: the resample watchdog tripped
	// and the output came from the certified thresholding clamp.
	Degraded bool
	// FromCache reports STATUS.cache: the output replays the budget
	// cache rather than fresh noise.
	FromCache bool
	// Unhealthy reports STATUS.unhealthy: the URNG health gate is
	// closed and the box is serving its cache only.
	Unhealthy bool
}

// NoiseOutcome runs one firmware noising transaction and decodes the
// final STATUS word alongside the value. The quality bits come from
// the same memory-mapped register the firmware polls, so everything
// reported here is visible to real MSP430 code too.
func (d *Driver) NoiseOutcome(x int16) (Outcome, error) {
	d.node.CPU.WriteWord(AddrX, uint16(x))
	d.node.CPU.Instrs = 0
	cycles, err := d.node.CPU.Call(d.noise, 100_000)
	if err != nil {
		return Outcome{}, err
	}
	if code := d.node.CPU.ReadWord(AddrErr); code != 0 {
		if err := d.node.Port.LastErr(); err != nil {
			return Outcome{Cycles: cycles}, fmt.Errorf("node: firmware error %d after %d polls: %w", code, PollBudget, err)
		}
		return Outcome{Cycles: cycles}, fmt.Errorf("node: firmware error %d (DP-Box never ready within %d polls)", code, PollBudget)
	}
	if err := d.node.Port.LastErr(); err != nil {
		return Outcome{}, err
	}
	// The transaction is over (the box is back in its waiting phase),
	// so this read cannot step a noising cycle; it reports the sticky
	// per-transaction quality bits.
	status := d.node.Port.ReadWord(d.node.Port.Base + RegStatus)
	return Outcome{
		Value:     int16(d.node.CPU.ReadWord(AddrOut)),
		Cycles:    cycles,
		Degraded:  status&StatusDegraded != 0,
		FromCache: status&StatusCache != 0,
		Unhealthy: status&StatusUnhealthy != 0,
	}, nil
}
