package node

import (
	"fmt"

	"ulpdp/internal/msp430"
)

// This file assembles the paper's duty-cycled sampling story: the CPU
// sleeps in LPM0; a hardware timer wakes it periodically; the ISR
// reads the sensor, pushes the value through the memory-mapped DP-Box
// and stores the noised result, then drops back to sleep. The DP-Box
// doing the noising in two cycles is what keeps the wake window — and
// the node's energy — small.

// Timer is a periodic interrupt source clocked by the CPU.
type Timer struct {
	cpu    *msp430.CPU
	period uint64
	acc    uint64
	vector int
	// Fires counts raised interrupts.
	Fires uint64
}

// NewTimer attaches a timer with the given period (CPU cycles) firing
// the given interrupt vector. It panics on a non-positive period or
// bad vector.
func NewTimer(cpu *msp430.CPU, period uint64, vector int) *Timer {
	if period == 0 {
		panic("node: zero timer period")
	}
	if vector < 0 || vector >= msp430.NumVectors {
		panic(fmt.Sprintf("node: timer vector %d out of range", vector))
	}
	t := &Timer{cpu: cpu, period: period, vector: vector}
	cpu.AttachClocked(t)
	return t
}

// ClockTick implements msp430.ClockedPeripheral.
func (t *Timer) ClockTick(n uint64) {
	t.acc += n
	for t.acc >= t.period {
		t.acc -= t.period
		t.cpu.RequestInterrupt(t.vector)
		t.Fires++
	}
}

// TraceSensor is a memory-mapped sensor data register: every read
// returns the next sample of a recorded trace (cycling at the end).
type TraceSensor struct {
	// Addr is the register address (word aligned).
	Addr uint16
	// Trace is the sample sequence (steps).
	Trace []int16
	// Reads counts register reads.
	Reads uint64
	pos   int
}

// NewTraceSensor builds the sensor register. It panics on an empty
// trace or unaligned address.
func NewTraceSensor(addr uint16, trace []int16) *TraceSensor {
	if len(trace) == 0 {
		panic("node: empty sensor trace")
	}
	if addr%2 != 0 {
		panic("node: unaligned sensor register")
	}
	return &TraceSensor{Addr: addr, Trace: trace}
}

// Contains implements msp430.Peripheral.
func (s *TraceSensor) Contains(addr uint16) bool { return addr == s.Addr || addr == s.Addr+1 }

// ReadWord implements msp430.Peripheral: each read consumes a sample.
func (s *TraceSensor) ReadWord(uint16) uint16 {
	v := uint16(s.Trace[s.pos])
	s.pos = (s.pos + 1) % len(s.Trace)
	s.Reads++
	return v
}

// WriteWord implements msp430.Peripheral (the register is read-only).
func (s *TraceSensor) WriteWord(uint16, uint16) {}

// Sampler firmware memory map.
const (
	AddrRingIdx = 0x02FE // ring write offset (bytes)
	AddrRing    = 0x0300 // noised sample ring buffer
	RingBytes   = 0x0100 // ring capacity in bytes (128 words)
)

// BuildSamplerFirmware assembles the interrupt-driven node firmware:
// main configures the DP-Box and sleeps; the timer ISR samples,
// noises, stores and returns to sleep.
func BuildSamplerFirmware(dpboxBase, sensorAddr uint16, epsShift int, rangeLo, rangeHi int16, vector int) (*msp430.Program, error) {
	if vector < 0 || vector >= msp430.NumVectors {
		return nil, fmt.Errorf("node: vector %d out of range", vector)
	}
	cmd := dpboxBase + RegCmd
	data := dpboxBase + RegData
	out := dpboxBase + RegOut
	status := dpboxBase + RegStatus

	p := msp430.NewProgram(0x4000)

	p.Label("main")
	// Configure the DP-Box once.
	p.Mov(msp430.Imm(epsShift), msp430.Abs(data))
	p.Mov(msp430.Imm(2), msp430.Abs(cmd)) // SetEpsilon
	p.Mov(msp430.Imm(int(rangeLo)), msp430.Abs(data))
	p.Mov(msp430.Imm(5), msp430.Abs(cmd)) // SetRangeLower
	p.Mov(msp430.Imm(int(rangeHi)), msp430.Abs(data))
	p.Mov(msp430.Imm(4), msp430.Abs(cmd)) // SetRangeUpper
	p.Clr(msp430.Abs(AddrRingIdx))
	// Sleep loop: LPM0 with interrupts enabled. After every ISR the
	// core re-enters sleep.
	p.Label("sleep")
	p.Bis(msp430.Imm(int(msp430.FlagGIE|msp430.FlagCPUOFF)), msp430.Reg(msp430.SR))
	p.Jmp("sleep")

	// Timer ISR: sample -> noise -> store.
	p.Label("isr")
	p.Push(msp430.Reg(12))
	p.Mov(msp430.Abs(sensorAddr), msp430.Abs(data))
	p.Mov(msp430.Imm(3), msp430.Abs(cmd)) // SetSensorValue
	p.Mov(msp430.Imm(1), msp430.Abs(cmd)) // StartNoising
	p.Label("isr_poll")
	p.Bit(msp430.Imm(StatusReady), msp430.Abs(status))
	p.Jeq("isr_poll")
	p.Mov(msp430.Abs(AddrRingIdx), msp430.Reg(12))
	p.Mov(msp430.Abs(out), msp430.Idx(int16(AddrRing), 12))
	p.Add(msp430.Imm(2), msp430.Reg(12))
	p.And(msp430.Imm(RingBytes-1), msp430.Reg(12)) // wrap the ring
	p.Mov(msp430.Reg(12), msp430.Abs(AddrRingIdx))
	p.Pop(msp430.Reg(12))
	p.Reti()

	if p.Err() != nil {
		return nil, p.Err()
	}
	return p, nil
}

// SamplerNode is the assembled duty-cycled system.
type SamplerNode struct {
	Node   *Node
	Timer  *Timer
	Sensor *TraceSensor
	isr    uint16
	main   uint16
}

// SamplerConfig assembles the firmware, vector table and peripherals
// for a duty-cycled sampling node.
type SamplerConfig struct {
	// SensorAddr is the sensor register address.
	SensorAddr uint16
	// Trace is the sensor sample stream (steps).
	Trace []int16
	// Period is the sampling period in CPU cycles.
	Period uint64
	// Vector is the timer interrupt vector.
	Vector int
	// EpsShift, RangeLo, RangeHi configure the DP-Box.
	EpsShift         int
	RangeLo, RangeHi int16
}

// NewSampler wires the node: CPU + DP-Box port + timer + sensor +
// firmware + vector table.
func NewSampler(n *Node, cfg SamplerConfig) (*SamplerNode, error) {
	prog, err := BuildSamplerFirmware(n.Port.Base, cfg.SensorAddr, cfg.EpsShift, cfg.RangeLo, cfg.RangeHi, cfg.Vector)
	if err != nil {
		return nil, err
	}
	words, err := prog.Assemble()
	if err != nil {
		return nil, err
	}
	n.CPU.LoadWords(prog.Org(), words)
	isr, err := prog.LabelAddr("isr")
	if err != nil {
		return nil, err
	}
	main, err := prog.LabelAddr("main")
	if err != nil {
		return nil, err
	}
	n.CPU.WriteWord(msp430.VectorTable+uint16(2*cfg.Vector), isr)
	sensor := NewTraceSensor(cfg.SensorAddr, cfg.Trace)
	n.CPU.AttachPeripheral(sensor)
	timer := NewTimer(n.CPU, cfg.Period, cfg.Vector)
	return &SamplerNode{Node: n, Timer: timer, Sensor: sensor, isr: isr, main: main}, nil
}

// Run boots the firmware and runs for the given number of CPU cycles.
func (s *SamplerNode) Run(cycles uint64) error {
	cpu := s.Node.CPU
	cpu.R[msp430.PC] = s.main
	return cpu.RunCycles(cpu.Cycles+cycles, 10_000_000)
}

// Samples returns the noised values collected in the ring buffer so
// far (up to the ring capacity).
func (s *SamplerNode) Samples() []int16 {
	cpu := s.Node.CPU
	idx := cpu.ReadWord(AddrRingIdx)
	n := int(idx) / 2
	if s.Timer.Fires >= RingBytes/2 {
		n = RingBytes / 2 // ring has wrapped; everything is valid
	}
	outVals := make([]int16, 0, n)
	for i := 0; i < n; i++ {
		outVals = append(outVals, int16(cpu.ReadWord(AddrRing+uint16(2*i))))
	}
	return outVals
}
