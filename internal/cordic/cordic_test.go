package cordic

import (
	"math"
	"testing"
	"testing/quick"

	"ulpdp/internal/fixed"
)

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"default", DefaultConfig, true},
		{"min", Config{Iterations: 4, Frac: 8}, true},
		{"max", Config{Iterations: 60, Frac: 58}, true},
		{"too few iters", Config{Iterations: 3, Frac: 20}, false},
		{"too many iters", Config{Iterations: 61, Frac: 20}, false},
		{"frac low", Config{Iterations: 20, Frac: 7}, false},
		{"frac high", Config{Iterations: 20, Frac: 59}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); (err == nil) != tt.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Iterations: 1, Frac: 1})
}

func TestLnRawAccuracy(t *testing.T) {
	c := New(DefaultConfig)
	// Sweep mantissa values with 20 fractional bits across several
	// decades.
	const frac = 20
	for _, x := range []float64{1, 1.5, 2, 2.718281828, 3.999, 10, 100, 1000, 0.5, 0.25, 0.001, 1e-5} {
		v := int64(math.Round(math.Ldexp(x, frac)))
		if v <= 0 {
			continue
		}
		got := math.Ldexp(float64(c.LnRaw(v, frac)), -c.Frac())
		want := math.Log(math.Ldexp(float64(v), -frac))
		if math.Abs(got-want) > 1e-7 {
			t.Errorf("LnRaw(%g) = %.10f, want %.10f", x, got, want)
		}
	}
}

func TestLnRawPanicsNonPositive(t *testing.T) {
	c := New(DefaultConfig)
	for _, v := range []int64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("LnRaw(%d) should panic", v)
				}
			}()
			c.LnRaw(v, 10)
		}()
	}
}

func TestLnUnitMatchesFloat(t *testing.T) {
	c := New(DefaultConfig)
	// u = m·2^-b for the b used by the paper's example (B_u = 17).
	const b = 17
	for _, m := range []uint64{1, 2, 3, 100, 1 << 10, 1<<17 - 1, 1 << 17} {
		got := math.Ldexp(float64(c.LnUnit(m, b)), -c.Frac())
		want := math.Log(math.Ldexp(float64(m), -b))
		if math.Abs(got-want) > 1e-7 {
			t.Errorf("LnUnit(%d) = %.10f, want %.10f", m, got, want)
		}
	}
}

func TestLnQuantized(t *testing.T) {
	c := New(DefaultConfig)
	out := fixed.Q(5, 12)
	x := fixed.FromFloat(2.5, fixed.Q(5, 12), fixed.RoundNearestAway)
	got := c.Ln(x, out, fixed.RoundNearestAway).Float()
	want := math.Log(2.5)
	if math.Abs(got-want) > out.Step() {
		t.Errorf("Ln(2.5) = %g, want %g within one step", got, want)
	}
}

func TestLnMonotone(t *testing.T) {
	// ln must be monotone over the URNG's input grid — a property the
	// privacy analysis relies on (noise magnitude decreases as m
	// increases).
	c := New(Config{Iterations: 24, Frac: 32})
	const b = 12
	prev := int64(math.MinInt64)
	for m := uint64(1); m <= 1<<b; m += 7 {
		v := c.LnUnit(m, b)
		if v < prev {
			t.Fatalf("ln not monotone at m=%d: %d < %d", m, v, prev)
		}
		prev = v
	}
}

func TestQuickLnAgainstMath(t *testing.T) {
	c := New(DefaultConfig)
	prop := func(raw uint32) bool {
		v := int64(raw%0xFFFFF) + 1 // 1 .. 2^20
		got := math.Ldexp(float64(c.LnRaw(v, 20)), -c.Frac())
		want := math.Log(math.Ldexp(float64(v), -20))
		return math.Abs(got-want) <= 1e-7
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPolyLogAccuracy(t *testing.T) {
	p := NewPolyLog(6, 30)
	const frac = 20
	for _, x := range []float64{1, 1.1, 1.5, 1.99, 2, 3, 7.7, 100, 0.5, 0.01} {
		v := int64(math.Round(math.Ldexp(x, frac)))
		got := math.Ldexp(float64(p.LnRaw(v, frac)), -p.Frac())
		want := math.Log(math.Ldexp(float64(v), -frac))
		// Quadratic over 64 segments: error well below 1e-5.
		if math.Abs(got-want) > 2e-5 {
			t.Errorf("PolyLog(%g) = %.8f, want %.8f", x, got, want)
		}
	}
}

func TestPolyLogPanics(t *testing.T) {
	cases := []func(){
		func() { NewPolyLog(0, 20) },
		func() { NewPolyLog(11, 20) },
		func() { NewPolyLog(4, 7) },
		func() { NewPolyLog(4, 41) },
		func() { NewPolyLog(4, 20).LnRaw(0, 10) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestPolyVsCordicAgree(t *testing.T) {
	c := New(DefaultConfig)
	p := NewPolyLog(8, 36)
	prop := func(raw uint32) bool {
		v := int64(raw%0x3FFFF) + 1
		a := math.Ldexp(float64(c.LnRaw(v, 17)), -c.Frac())
		b := math.Ldexp(float64(p.LnRaw(v, 17)), -p.Frac())
		return math.Abs(a-b) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFxMul(t *testing.T) {
	tests := []struct {
		a, b float64
		frac int
	}{
		{1.5, 2.25, 30}, {-1.5, 2.25, 30}, {1.5, -2.25, 30}, {-3, -4, 20},
		{0.0001, 0.0001, 40}, {1000, 1000, 20},
	}
	for _, tt := range tests {
		a := toFixed(tt.a, tt.frac)
		b := toFixed(tt.b, tt.frac)
		got := math.Ldexp(float64(fxMul(a, b, tt.frac)), -tt.frac)
		want := tt.a * tt.b
		if math.Abs(got-want) > math.Ldexp(2, -tt.frac)*math.Abs(want)+math.Ldexp(2, -tt.frac) {
			t.Errorf("fxMul(%g,%g) = %g, want %g", tt.a, tt.b, got, want)
		}
	}
}

func TestLnRoundModes(t *testing.T) {
	// ln(2.5) = 0.916291: quantize into a coarse grid under every
	// mode and compare against exact float rounding.
	c := New(DefaultConfig)
	x := fixed.FromFloat(2.5, fixed.Q(5, 16), fixed.RoundNearestAway)
	out := fixed.Q(3, 4)        // step 1/16
	exact := math.Log(2.5) * 16 // 14.66 steps
	tests := []struct {
		m    fixed.RoundMode
		want float64
	}{
		{fixed.RoundNearestAway, math.Round(exact) / 16},
		{fixed.RoundNearestEven, math.RoundToEven(exact) / 16},
		{fixed.RoundDown, math.Floor(exact) / 16},
		{fixed.RoundUp, math.Ceil(exact) / 16},
		{fixed.RoundZero, math.Trunc(exact) / 16},
	}
	for _, tt := range tests {
		if got := c.Ln(x, out, tt.m).Float(); got != tt.want {
			t.Errorf("Ln mode %v = %g, want %g", tt.m, got, tt.want)
		}
	}
	// Negative ln (x < 1): direction-sensitive modes flip.
	y := fixed.FromFloat(0.4, fixed.Q(5, 16), fixed.RoundNearestAway)
	lnY := math.Log(0.4) * 16 // about -14.66 steps
	if got := c.Ln(y, out, fixed.RoundDown).Float(); got != math.Floor(lnY)/16 {
		t.Errorf("neg Ln down = %g, want %g", got, math.Floor(lnY)/16)
	}
	if got := c.Ln(y, out, fixed.RoundUp).Float(); got != math.Ceil(lnY)/16 {
		t.Errorf("neg Ln up = %g, want %g", got, math.Ceil(lnY)/16)
	}
	if got := c.Ln(y, out, fixed.RoundZero).Float(); got != math.Trunc(lnY)/16 {
		t.Errorf("neg Ln zero = %g, want %g", got, math.Trunc(lnY)/16)
	}
}

func TestLnQuantizeWidening(t *testing.T) {
	// An output format finer than the core's internal resolution
	// takes the left-shift path in quantize.
	c := New(Config{Iterations: 30, Frac: 20})
	out := fixed.Q(5, 24)
	x := fixed.FromFloat(3, fixed.Q(5, 8), fixed.RoundNearestAway)
	got := c.Ln(x, out, fixed.RoundNearestAway).Float()
	if math.Abs(got-math.Log(3)) > math.Ldexp(1, -19) {
		t.Errorf("widened Ln(3) = %g", got)
	}
}

func TestRoundQuotTies(t *testing.T) {
	// Exercise exact .5 ties through roundQuot via a contrived shift.
	cases := []struct {
		a, b int64
		m    fixed.RoundMode
		want int64
	}{
		{5, 2, fixed.RoundNearestAway, 3},
		{-5, 2, fixed.RoundNearestAway, -3},
		{5, 2, fixed.RoundNearestEven, 2},
		{7, 2, fixed.RoundNearestEven, 4},
		{-5, 2, fixed.RoundNearestEven, -2},
		{-7, 2, fixed.RoundNearestEven, -4},
	}
	for _, tt := range cases {
		if got := roundQuot(tt.a, tt.b, tt.m); got != tt.want {
			t.Errorf("roundQuot(%d,%d,%v) = %d, want %d", tt.a, tt.b, tt.m, got, tt.want)
		}
	}
}

func BenchmarkCordicLn(b *testing.B) {
	c := New(DefaultConfig)
	for i := 0; i < b.N; i++ {
		c.LnUnit(uint64(i%(1<<17))+1, 17)
	}
}

func BenchmarkPolyLn(b *testing.B) {
	p := NewPolyLog(6, 30)
	for i := 0; i < b.N; i++ {
		p.LnRaw(int64(i%(1<<17))+1, 17)
	}
}
