// Package cordic implements the fixed-point natural-logarithm
// datapaths available to an ultra-low-power RNG: a hyperbolic CORDIC
// core (the option DP-Box uses, single-cycle when fully unrolled) and
// a piecewise-polynomial approximation (the alternative the paper
// mentions for energy-efficient fixed-point RNGs).
//
// Both evaluate ln(x) for x > 0 by normalizing x = w·2^p with
// w ∈ [1, 2) and computing ln(x) = ln(w) + p·ln 2. All internal
// arithmetic is integer (two's-complement fixed point with guard
// bits), so the result is bit-reproducible — exactly what the privacy
// analysis of the FxP RNG requires.
package cordic

import (
	"fmt"
	"math"
	"math/bits"

	"ulpdp/internal/fixed"
)

// Config parameterizes the CORDIC core.
type Config struct {
	// Iterations is the number of hyperbolic rotations. Each adds
	// roughly one bit of precision; DP-Box unrolls all of them into
	// one combinational cycle. Valid range [4, 60].
	Iterations int
	// Frac is the number of fractional bits of the internal datapath.
	// Valid range [8, 58].
	Frac int
}

// DefaultConfig is sized for the paper's 20-bit datapath: enough
// iterations and guard bits that CORDIC error is below half an output
// LSB for every B_u <= 24.
var DefaultConfig = Config{Iterations: 30, Frac: 40}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Iterations < 4 || c.Iterations > 60 {
		return fmt.Errorf("cordic: iterations %d out of range [4,60]", c.Iterations)
	}
	if c.Frac < 8 || c.Frac > 58 {
		return fmt.Errorf("cordic: frac %d out of range [8,58]", c.Frac)
	}
	return nil
}

// Core is a hyperbolic-vectoring CORDIC logarithm unit with a
// precomputed atanh(2^-i) table quantized to the datapath width.
type Core struct {
	cfg   Config
	atanh []int64 // atanh(2^-i), i = 1..Iterations, in cfg.Frac fixed point
	ln2   int64   // ln 2 in cfg.Frac fixed point
}

// New builds a Core. It panics if cfg is invalid (a construction-time
// programming error, not a runtime condition).
func New(cfg Config) *Core {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Core{cfg: cfg}
	c.atanh = make([]int64, cfg.Iterations+1)
	for i := 1; i <= cfg.Iterations; i++ {
		c.atanh[i] = toFixed(math.Atanh(math.Ldexp(1, -i)), cfg.Frac)
	}
	c.ln2 = toFixed(math.Ln2, cfg.Frac)
	return c
}

func toFixed(x float64, frac int) int64 {
	return int64(math.Round(math.Ldexp(x, frac)))
}

// LnRaw computes ln(v·2^-frac) for a positive integer mantissa v,
// returning the result in the core's internal fixed point (Frac
// fractional bits). It panics if v <= 0: the FxP RNG never feeds the
// log unit zero (the URNG output u is in (0, 1]).
func (c *Core) LnRaw(v int64, frac int) int64 {
	if v <= 0 {
		panic("cordic: ln of non-positive value")
	}
	// Normalize: v·2^-frac = w·2^p with w in [1, 2).
	msb := 63 - bits.LeadingZeros64(uint64(v))
	p := msb - frac
	// Mantissa w with cfg.Frac fractional bits.
	var w int64
	if shift := c.cfg.Frac - msb; shift >= 0 {
		w = v << uint(shift)
	} else {
		w = v >> uint(-shift)
	}
	return c.lnMantissa(w) + int64(p)*c.ln2
}

// lnMantissa computes ln(w) for w in [1,2) with cfg.Frac fractional
// bits via atanh: ln w = 2·atanh((w-1)/(w+1)).
func (c *Core) lnMantissa(w int64) int64 {
	one := int64(1) << uint(c.cfg.Frac)
	x := w + one
	y := w - one
	var z int64
	// Hyperbolic vectoring with the classical repeated iterations at
	// i = 4, 13, 40 to guarantee convergence.
	i := 1
	next := 4
	for n := 0; n < c.cfg.Iterations; n++ {
		xi := x >> uint(i)
		yi := y >> uint(i)
		if y >= 0 {
			x -= yi
			y -= xi
			z += c.atanh[i]
		} else {
			x += yi
			y += xi
			z -= c.atanh[i]
		}
		if i == next && n+1 < c.cfg.Iterations {
			// Repeat this i once; schedule the following repeat.
			next = 3*next + 1
			continue
		}
		i++
		if i > c.cfg.Iterations {
			break
		}
	}
	return 2 * z
}

// Ln computes ln(x) for a positive fixed-point x and returns the
// result quantized into format out with rounding mode m.
func (c *Core) Ln(x fixed.Num, out fixed.Format, m fixed.RoundMode) fixed.Num {
	r := c.LnRaw(x.Raw(), x.Format().Frac)
	return quantize(r, c.cfg.Frac, out, m)
}

// LnUnit computes ln(u) for u = mVal·2^-b ∈ (0, 1] (the URNG output)
// and returns it in the core's internal fixed point. This is the
// exact operation in the inverse-CDF stage of Fig. 3.
func (c *Core) LnUnit(mVal uint64, b int) int64 {
	return c.LnRaw(int64(mVal), b)
}

// Frac returns the internal fixed-point resolution.
func (c *Core) Frac() int { return c.cfg.Frac }

func quantize(raw int64, frac int, out fixed.Format, m fixed.RoundMode) fixed.Num {
	shift := frac - out.Frac
	if shift <= 0 {
		return fixed.FromRaw(raw<<uint(-shift), out)
	}
	// Round raw/2^shift under m, manually: the guard-bit value can be
	// wider than any fixed.Format permits.
	div := int64(1) << uint(shift)
	q := roundQuot(raw, div, m)
	return fixed.FromRaw(q, out)
}

// roundQuot computes round(a / b) for b > 0 under mode m.
func roundQuot(a, b int64, m fixed.RoundMode) int64 {
	q := a / b
	r := a % b
	if r == 0 {
		return q
	}
	switch m {
	case fixed.RoundZero:
		return q
	case fixed.RoundDown:
		if a < 0 {
			return q - 1
		}
		return q
	case fixed.RoundUp:
		if a > 0 {
			return q + 1
		}
		return q
	default: // nearest (away / even collapse for our use: ties are rare)
		ra := r
		if ra < 0 {
			ra = -ra
		}
		twice := 2 * ra
		if twice > b || (twice == b && m == fixed.RoundNearestAway) {
			if a < 0 {
				return q - 1
			}
			return q + 1
		}
		if twice == b && m == fixed.RoundNearestEven {
			lo, hi := q, q
			if a < 0 {
				lo = q - 1
			} else {
				hi = q + 1
			}
			if lo%2 == 0 {
				return lo
			}
			return hi
		}
		return q
	}
}
