package cordic

import (
	"fmt"
	"math"
	"math/bits"
)

// PolyLog evaluates ln(x) with a piecewise quadratic over the
// mantissa range [1, 2): the "number of polynomial segments of low
// degree" alternative the paper cites for energy-efficient fixed-
// point RNG hardware. Coefficients are least-squares-like fits at
// segment endpoints/midpoint (exact interpolation), stored quantized
// to the datapath resolution; evaluation is two multiplies and two
// adds (Horner), cheaper in area than an unrolled CORDIC but with a
// coarser error floor.
type PolyLog struct {
	segBits int // 2^segBits segments over [1,2)
	frac    int
	// Per-segment coefficients of ln(1 + (s+t)/2^segBits) as a
	// quadratic in t ∈ [0,1), fixed point with frac fractional bits.
	c0, c1, c2 []int64
	ln2        int64
}

// NewPolyLog builds a PolyLog with 2^segBits segments and frac
// fractional bits of internal resolution. It panics on invalid
// parameters (construction-time programming error).
func NewPolyLog(segBits, frac int) *PolyLog {
	if segBits < 1 || segBits > 10 {
		panic(fmt.Sprintf("cordic: segBits %d out of range [1,10]", segBits))
	}
	if frac < 8 || frac > 40 {
		panic(fmt.Sprintf("cordic: poly frac %d out of range [8,40]", frac))
	}
	n := 1 << uint(segBits)
	p := &PolyLog{
		segBits: segBits,
		frac:    frac,
		c0:      make([]int64, n),
		c1:      make([]int64, n),
		c2:      make([]int64, n),
		ln2:     toFixed(math.Ln2, frac),
	}
	for s := 0; s < n; s++ {
		// Interpolate ln(w) at t = 0, 1/2, 1 within the segment
		// w = 1 + (s+t)/n.
		f := func(t float64) float64 { return math.Log(1 + (float64(s)+t)/float64(n)) }
		y0, ym, y1 := f(0), f(0.5), f(1)
		a := 2*y0 - 4*ym + 2*y1 // t^2 coefficient
		b := -3*y0 + 4*ym - y1  // t coefficient
		p.c0[s] = toFixed(y0, frac)
		p.c1[s] = toFixed(b, frac)
		p.c2[s] = toFixed(a, frac)
	}
	return p
}

// LnRaw computes ln(v·2^-frac) for positive v, returning the result
// with p.frac fractional bits. Panics if v <= 0.
func (p *PolyLog) LnRaw(v int64, frac int) int64 {
	if v <= 0 {
		panic("cordic: poly ln of non-positive value")
	}
	msb := 63 - bits.LeadingZeros64(uint64(v))
	e := msb - frac
	// Mantissa fraction bits: w = 1.mantissa, keep p.frac bits of it.
	var mant int64
	if shift := p.frac - msb; shift >= 0 {
		mant = (v << uint(shift)) & ((int64(1) << uint(p.frac)) - 1)
	} else {
		mant = (v >> uint(-shift)) & ((int64(1) << uint(p.frac)) - 1)
	}
	// Segment index = top segBits of the mantissa; t = remainder
	// rescaled to [0,1) with p.frac fractional bits.
	s := mant >> uint(p.frac-p.segBits)
	t := (mant & ((int64(1) << uint(p.frac-p.segBits)) - 1)) << uint(p.segBits)
	// Horner: c0 + t*(c1 + t*c2), t in [0,1) fixed point.
	acc := p.c2[s]
	acc = p.c1[s] + fxMul(acc, t, p.frac)
	acc = p.c0[s] + fxMul(acc, t, p.frac)
	return acc + int64(e)*p.ln2
}

// Frac returns the internal fixed-point resolution.
func (p *PolyLog) Frac() int { return p.frac }

// fxMul multiplies two fixed-point values with frac fractional bits,
// truncating (hardware-cheap) the extra fractional bits. The full
// 128-bit product is formed so no intermediate overflow is possible.
func fxMul(a, b int64, frac int) int64 {
	neg := (a < 0) != (b < 0)
	ua, ub := uint64(absI64(a)), uint64(absI64(b))
	hi, lo := bits.Mul64(ua, ub)
	res := hi<<uint(64-frac) | lo>>uint(frac)
	if neg {
		return -int64(res)
	}
	return int64(res)
}

func absI64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
