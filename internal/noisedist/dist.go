package noisedist

import (
	"fmt"
	"math"

	"ulpdp/internal/urng"
)

// Geometry is the fixed-point RNG geometry shared by every family:
// a B_u-bit uniform magnitude draw, rounding to the Δ grid, and
// saturation at the signed B_y-bit output word.
type Geometry struct {
	Bu    int
	By    int
	Delta float64
}

// Validate reports whether the geometry is usable.
func (g Geometry) Validate() error {
	if g.Bu < 2 || g.Bu > 30 {
		return fmt.Errorf("noisedist: Bu %d out of range [2,30]", g.Bu)
	}
	if g.By < 2 || g.By > 30 {
		return fmt.Errorf("noisedist: By %d out of range [2,30]", g.By)
	}
	if !(g.Delta > 0) {
		return fmt.Errorf("noisedist: Delta %g must be positive", g.Delta)
	}
	return nil
}

// KCap returns the output-word magnitude cap.
func (g Geometry) KCap() int64 { return int64(1)<<(g.By-1) - 1 }

// Dist is the exact output distribution of a family's fixed-point
// inverse-CDF implementation. The derivation generalizes eq. 11: the
// draw m maps to magnitude step k iff
// m ∈ (2^B_u·S((k+½)Δ), 2^B_u·S((k−½)Δ)] with S the ideal survival
// function, so the integer count is the difference of floors.
type Dist struct {
	fam Family
	geo Geometry
}

// NewDist builds the exact distribution. The geometry is caller
// configuration, so an invalid one is a returned error, not a panic
// (DESIGN.md §6).
func NewDist(fam Family, geo Geometry) (Dist, error) {
	if err := geo.Validate(); err != nil {
		return Dist{}, err
	}
	return Dist{fam: fam, geo: geo}, nil
}

// Family returns the ideal family.
func (d Dist) Family() Family { return d.fam }

// Geometry returns the RNG geometry.
func (d Dist) Geometry() Geometry { return d.geo }

// floorAtLeast returns ⌊2^B_u · S((k−½)Δ)⌋ clipped to [0, 2^B_u]:
// the number of draws whose raw magnitude rounds to step k or higher.
func (d Dist) floorAtLeast(k int64) float64 {
	x := (float64(k) - 0.5) * d.geo.Delta
	if x <= 0 {
		return math.Ldexp(1, d.geo.Bu)
	}
	v := math.Ldexp(d.fam.Survival(x), d.geo.Bu)
	cap := math.Ldexp(1, d.geo.Bu)
	if v >= cap {
		return cap
	}
	return math.Floor(v)
}

// CountMag returns the exact number of draws mapping to magnitude
// step k (the saturation step absorbs the clipped tail).
func (d Dist) CountMag(k int64) float64 {
	if k < 0 || k > d.geo.KCap() {
		return 0
	}
	if k == d.geo.KCap() {
		return d.floorAtLeast(k)
	}
	return d.floorAtLeast(k) - d.floorAtLeast(k+1)
}

// ProbMag returns Pr[|n| = kΔ].
func (d Dist) ProbMag(k int64) float64 {
	return d.CountMag(k) * math.Ldexp(1, -d.geo.Bu)
}

// Prob returns Pr[n = kΔ] for signed k (sign bit splits non-zero
// magnitudes).
func (d Dist) Prob(k int64) float64 {
	mag := k
	if mag < 0 {
		mag = -mag
	}
	p := d.ProbMag(mag)
	if k == 0 {
		return p
	}
	return p / 2
}

// TailMag returns Pr[|n| >= kΔ] for k >= 1.
func (d Dist) TailMag(k int64) float64 {
	if k <= 0 {
		return 1
	}
	if k > d.geo.KCap() {
		return 0
	}
	return d.floorAtLeast(k) * math.Ldexp(1, -d.geo.Bu)
}

// MaxK returns the largest magnitude step with non-zero probability.
func (d Dist) MaxK() int64 {
	k := d.geo.KCap()
	for k > 0 && d.CountMag(k) == 0 {
		k--
	}
	return k
}

// FirstZeroHole returns the smallest positive k below MaxK with zero
// probability — the finite-precision pathology Section III-A4 claims
// for every family.
func (d Dist) FirstZeroHole() (int64, bool) {
	maxK := d.MaxK()
	for k := int64(1); k < maxK; k++ {
		if d.CountMag(k) == 0 {
			return k, true
		}
	}
	return 0, false
}

// PMF materializes the signed PMF over k = -MaxK..MaxK; index i is
// k = i − MaxK.
func (d Dist) PMF() ([]float64, int64) {
	maxK := d.MaxK()
	pmf := make([]float64, 2*maxK+1)
	for k := -maxK; k <= maxK; k++ {
		pmf[k+maxK] = d.Prob(k)
	}
	return pmf, maxK
}

// TotalMass sums the signed PMF (exactly 1 by construction).
func (d Dist) TotalMass() float64 {
	var total float64
	for k := int64(0); k <= d.geo.KCap(); k++ {
		total += d.ProbMag(k)
	}
	return total
}

// Sampler draws from the family's fixed-point implementation, for
// empirical cross-checks against the exact Dist.
type Sampler struct {
	d   Dist
	src urng.Source
}

// NewSampler builds a sampler over the distribution.
func NewSampler(d Dist, src urng.Source) *Sampler {
	return &Sampler{d: d, src: src}
}

// MagnitudeForDraw maps one URNG draw to its magnitude step — the
// deterministic datapath.
func (s *Sampler) MagnitudeForDraw(m uint64) int64 {
	u := math.Ldexp(float64(m), -s.d.geo.Bu)
	k := int64(math.Round(s.d.fam.Quantile(u) / s.d.geo.Delta))
	if cap := s.d.geo.KCap(); k > cap {
		k = cap
	}
	if k < 0 {
		k = 0
	}
	return k
}

// SampleK draws one signed noise step.
func (s *Sampler) SampleK() int64 {
	m := urng.Bits(s.src, s.d.geo.Bu)
	k := s.MagnitudeForDraw(m)
	if s.src.Uint32()&1 == 1 {
		return -k
	}
	return k
}
