package noisedist

import (
	"math"
	"testing"
	"testing/quick"

	"ulpdp/internal/core"
	"ulpdp/internal/laplace"
	"ulpdp/internal/urng"
)

var geo = Geometry{Bu: 14, By: 12, Delta: 0.25}

func families() []Family {
	return []Family{
		Laplace{Lambda: 16},
		Gaussian{Sigma: 12},
		Staircase{Eps: 0.5, D: 8, Gamma: OptimalGamma(0.5)},
	}
}

func TestGeometryValidate(t *testing.T) {
	bad := []Geometry{
		{Bu: 1, By: 12, Delta: 1},
		{Bu: 31, By: 12, Delta: 1},
		{Bu: 14, By: 1, Delta: 1},
		{Bu: 14, By: 12, Delta: 0},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Errorf("geometry %d should be invalid", i)
		}
	}
	if geo.Validate() != nil {
		t.Error("valid geometry rejected")
	}
}

func TestQuantileSurvivalRoundTrip(t *testing.T) {
	for _, fam := range families() {
		fam := fam
		t.Run(fam.Name(), func(t *testing.T) {
			prop := func(raw uint16) bool {
				u := (float64(raw) + 1) / 65537
				x := fam.Quantile(u)
				return math.Abs(fam.Survival(x)-u) < 1e-6
			}
			if err := quick.Check(prop, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestQuantileMonotoneNonIncreasing(t *testing.T) {
	for _, fam := range families() {
		prev := math.Inf(1)
		for u := 0.001; u <= 1; u += 0.001 {
			q := fam.Quantile(u)
			if q > prev+1e-9 {
				t.Fatalf("%s: quantile not non-increasing at u=%g", fam.Name(), u)
			}
			prev = q
		}
		if q := fam.Quantile(1); q != 0 {
			t.Errorf("%s: Quantile(1) = %g, want 0", fam.Name(), q)
		}
	}
}

func TestDensityIntegratesToOne(t *testing.T) {
	for _, fam := range families() {
		var integral float64
		const h = 0.01
		for x := -400.0; x <= 400; x += h {
			integral += fam.Density(x) * h
		}
		if math.Abs(integral-1) > 1e-2 {
			t.Errorf("%s: density integrates to %g", fam.Name(), integral)
		}
	}
}

func TestSurvivalMatchesDensityIntegral(t *testing.T) {
	for _, fam := range families() {
		for _, x := range []float64{0.5, 2, 8, 20, 50} {
			var integral float64
			const h = 0.005
			for v := x; v <= 500; v += h {
				integral += 2 * fam.Density(v) * h
			}
			if got := fam.Survival(x); math.Abs(got-integral) > 2e-3 {
				t.Errorf("%s: survival(%g) = %g, integral %g", fam.Name(), x, got, integral)
			}
		}
	}
}

func TestTotalMassIsOne(t *testing.T) {
	for _, fam := range families() {
		d, err := NewDist(fam, geo)
		if err != nil {
			t.Fatal(err)
		}
		if m := d.TotalMass(); math.Abs(m-1) > 1e-12 {
			t.Errorf("%s: total mass %.15f", fam.Name(), m)
		}
	}
}

func TestLaplaceMatchesSpecializedDist(t *testing.T) {
	// The generic machinery must agree exactly with the specialized
	// closed form in internal/laplace.
	par := laplace.FxPParams{Bu: geo.Bu, By: geo.By, Delta: geo.Delta, Lambda: 16}
	spec := laplace.NewDist(par)
	gen, err := NewDist(Laplace{Lambda: 16}, geo)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k <= geo.KCap(); k++ {
		if a, b := gen.CountMag(k), spec.CountMag(k); a != b {
			t.Fatalf("CountMag(%d): generic %g vs specialized %g", k, a, b)
		}
	}
	if a, b := gen.MaxK(), spec.MaxK(); a != b {
		t.Errorf("MaxK: %d vs %d", a, b)
	}
}

func TestSamplerMatchesDistExhaustive(t *testing.T) {
	small := Geometry{Bu: 11, By: 10, Delta: 0.5}
	for _, fam := range families() {
		fam := fam
		t.Run(fam.Name(), func(t *testing.T) {
			d, err := NewDist(fam, small)
			if err != nil {
				t.Fatal(err)
			}
			s := NewSampler(d, urng.NewTaus88(1))
			counts := map[int64]float64{}
			for m := uint64(1); m <= 1<<small.Bu; m++ {
				counts[s.MagnitudeForDraw(m)]++
			}
			for k := int64(0); k <= small.KCap(); k++ {
				if got, want := counts[k], d.CountMag(k); got != want {
					t.Errorf("CountMag(%d): sampler %g vs closed form %g", k, got, want)
				}
			}
		})
	}
}

// TestEveryFamilyHasFinitePrecisionPathology is Section III-A4 made
// executable: Laplace, Gaussian and staircase all end up with bounded
// support and zero-probability tail holes on fixed-point hardware.
func TestEveryFamilyHasFinitePrecisionPathology(t *testing.T) {
	for _, fam := range families() {
		d, err := NewDist(fam, geo)
		if err != nil {
			t.Fatal(err)
		}
		maxK := d.MaxK()
		if maxK <= 0 {
			t.Fatalf("%s: degenerate support", fam.Name())
		}
		// Bounded: the ideal distribution still has mass beyond the
		// largest representable output.
		beyond := fam.Survival((float64(maxK) + 1) * geo.Delta)
		if beyond <= 0 {
			t.Errorf("%s: ideal tail vanished before the hardware bound", fam.Name())
		}
		if _, ok := d.FirstZeroHole(); !ok {
			t.Errorf("%s: expected tail holes", fam.Name())
		}
	}
}

// TestNaiveMechanismLeaksForEveryFamily runs the exact analyzer over
// each family's PMF: the unguarded mechanism has infinite loss, and
// an exact-search threshold restores a certified bound.
func TestNaiveMechanismLeaksForEveryFamily(t *testing.T) {
	par := core.Params{Lo: 0, Hi: 8, Eps: 0.5, Bu: geo.Bu, By: geo.By, Delta: geo.Delta}
	for _, fam := range families() {
		fam := fam
		t.Run(fam.Name(), func(t *testing.T) {
			d, err := NewDist(fam, geo)
			if err != nil {
				t.Fatal(err)
			}
			pmf, maxK := d.PMF()
			an := core.NewAnalyzerFromPMF(par, pmf, maxK)
			if rep := an.BaselineLoss(); !rep.Infinite {
				t.Fatalf("naive %s loss should be infinite, got %g", fam.Name(), rep.MaxLoss)
			}
			// Exact-search a certified thresholding guard at 2ε.
			target := 2 * par.Eps
			var best int64 = -1
			for step := maxK; step >= 1; step-- {
				if rep := an.ThresholdingLoss(step); rep.Bounded(target) {
					best = step
					break
				}
			}
			if best < 1 {
				t.Fatalf("%s: no certified threshold found", fam.Name())
			}
			if rep := an.ThresholdingLoss(best); !rep.Bounded(target) {
				t.Fatalf("%s: threshold %d not certified", fam.Name(), best)
			}
		})
	}
}

func TestStaircaseValidate(t *testing.T) {
	bad := []Staircase{
		{Eps: 0, D: 1, Gamma: 0.5},
		{Eps: 1, D: 0, Gamma: 0.5},
		{Eps: 1, D: 1, Gamma: 0},
		{Eps: 1, D: 1, Gamma: 1},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("staircase %d should be invalid", i)
		}
	}
	if (Staircase{Eps: 1, D: 1, Gamma: 0.5}).Validate() != nil {
		t.Error("valid staircase rejected")
	}
	if g := OptimalGamma(1); g <= 0 || g >= 0.5 {
		t.Errorf("optimal gamma %g", g)
	}
}

func TestStaircaseDPRatio(t *testing.T) {
	// The defining staircase property: density(x)/density(x+D) = e^ε
	// (exactly, everywhere) — the optimal ε-DP noise.
	s := Staircase{Eps: 0.5, D: 8, Gamma: OptimalGamma(0.5)}
	for _, x := range []float64{0, 1, 3.3, 7.9, 12, 25.5} {
		ratio := s.Density(x) / s.Density(x+s.D)
		if math.Abs(ratio-math.Exp(s.Eps)) > 1e-9 {
			t.Errorf("density ratio at %g = %g, want e^ε", x, ratio)
		}
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	for _, fam := range families() {
		for _, u := range []float64{0, -1, 1.5} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: Quantile(%g) should panic", fam.Name(), u)
					}
				}()
				fam.Quantile(u)
			}()
		}
	}
}

func TestSampleKSigns(t *testing.T) {
	d, err := NewDist(Gaussian{Sigma: 12}, geo)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSampler(d, urng.NewLFSR113(9))
	var pos, neg int
	for i := 0; i < 20000; i++ {
		if k := s.SampleK(); k > 0 {
			pos++
		} else if k < 0 {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		t.Fatal("degenerate signs")
	}
	if r := float64(pos) / float64(pos+neg); r < 0.45 || r > 0.55 {
		t.Errorf("sign ratio %g", r)
	}
}
