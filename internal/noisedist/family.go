// Package noisedist generalizes the fixed-point RNG analysis beyond
// the Laplace distribution. Section III-A4 of the paper argues that
// *any* DP-guaranteeing noise distribution — Laplace, Gaussian, or
// the staircase mechanism — fails on finite-precision hardware for
// the same two reasons (bounded range, quantized tail probabilities).
// This package makes that claim executable: a Family abstracts the
// ideal magnitude distribution, Dist derives the exact PMF of its
// inverse-CDF fixed-point implementation, and the tests show the
// bounded-support/tail-hole pathology for every family.
package noisedist

import (
	"fmt"
	"math"
)

// Family is an ideal symmetric noise distribution, described through
// its positive magnitude half: the hardware draws a sign bit and a
// magnitude mag = Quantile(u) from a uniform u ∈ (0, 1].
type Family interface {
	// Name identifies the family.
	Name() string
	// Quantile maps a uniform draw u ∈ (0, 1] to the magnitude with
	// survival probability u: Pr[mag >= Quantile(u)] = u. It must be
	// non-increasing in u with Quantile(1) = 0.
	Quantile(u float64) float64
	// Survival is the inverse map: Pr[mag >= x] for x >= 0.
	Survival(x float64) float64
	// Density is the signed noise density at x (for plots and bulk
	// comparisons).
	Density(x float64) float64
}

// Laplace is the Lap(λ) family (the paper's default).
type Laplace struct {
	// Lambda is the scale λ = d/ε.
	Lambda float64
}

// Name implements Family.
func (l Laplace) Name() string { return "laplace" }

// Quantile implements Family: mag = −λ·ln(u).
func (l Laplace) Quantile(u float64) float64 {
	if u <= 0 || u > 1 {
		panic(fmt.Sprintf("noisedist: uniform draw %g out of (0,1]", u))
	}
	return -l.Lambda * math.Log(u)
}

// Survival implements Family.
func (l Laplace) Survival(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Exp(-x / l.Lambda)
}

// Density implements Family.
func (l Laplace) Density(x float64) float64 {
	return math.Exp(-math.Abs(x)/l.Lambda) / (2 * l.Lambda)
}

// Gaussian is the N(0, σ²) family. For (ε, δ)-DP the scale is
// σ = d·sqrt(2·ln(1.25/δ))/ε; the caller supplies σ directly.
type Gaussian struct {
	// Sigma is the standard deviation.
	Sigma float64
}

// Name implements Family.
func (g Gaussian) Name() string { return "gaussian" }

// Quantile implements Family: the half-normal inverse survival,
// mag = σ·√2·erfinv(1−u) (so u = erfc(mag/(σ√2))).
func (g Gaussian) Quantile(u float64) float64 {
	if u <= 0 || u > 1 {
		panic(fmt.Sprintf("noisedist: uniform draw %g out of (0,1]", u))
	}
	if u == 1 {
		return 0
	}
	return g.Sigma * math.Sqrt2 * math.Erfinv(1-u)
}

// Survival implements Family.
func (g Gaussian) Survival(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Erfc(x / (g.Sigma * math.Sqrt2))
}

// Density implements Family.
func (g Gaussian) Density(x float64) float64 {
	return math.Exp(-x*x/(2*g.Sigma*g.Sigma)) / (g.Sigma * math.Sqrt(2*math.Pi))
}

// Staircase is the geometric-mixture staircase mechanism of Geng &
// Viswanath, the optimal ε-DP additive noise: the density is a
// staircase with steps of width γ·d and (1−γ)·d, dropping by e^−ε
// every period d. Gamma in (0, 1); γ* = 1/(1+e^{ε/2}) minimizes the
// expected magnitude.
type Staircase struct {
	// Eps is the privacy parameter ε.
	Eps float64
	// D is the query sensitivity (the sensor range length).
	D float64
	// Gamma is the step-split parameter in (0, 1).
	Gamma float64
}

// OptimalGamma returns γ* = 1/(1+e^{ε/2}).
func OptimalGamma(eps float64) float64 { return 1 / (1 + math.Exp(eps/2)) }

// Name implements Family.
func (s Staircase) Name() string { return "staircase" }

// a returns e^{-ε}.
func (s Staircase) a() float64 { return math.Exp(-s.Eps) }

// normalization returns the density value on the first (highest)
// stair so the signed density integrates to 1:
// 2·h·Σ_k a^k·(γd + (1−γ)d·a) = 1.
func (s Staircase) height() float64 {
	a := s.a()
	return (1 - a) / (2 * s.D * (s.Gamma + (1-s.Gamma)*a))
}

// Density implements Family. The stair holding |x| ∈ [kd, (k+1)d)
// has value h·a^k on [kd, kd+γd) and h·a^{k+1} on [kd+γd, (k+1)d).
func (s Staircase) Density(x float64) float64 {
	ax := math.Abs(x)
	k := math.Floor(ax / s.D)
	h := s.height() * math.Pow(s.a(), k)
	if ax-k*s.D >= s.Gamma*s.D {
		h *= s.a()
	}
	return h
}

// Survival implements Family: closed-form integral of the staircase
// tail.
func (s Staircase) Survival(x float64) float64 {
	if x <= 0 {
		return 1
	}
	a := s.a()
	h := s.height()
	k := math.Floor(x / s.D)
	// Tail beyond the next period boundary: full periods sum.
	hk := h * math.Pow(a, k)
	perPeriod := s.Gamma*s.D + (1-s.Gamma)*s.D*a
	tailBeyond := hk * a * perPeriod / (1 - a)
	// Remainder of the current period from x to (k+1)d.
	frac := x - k*s.D
	var rest float64
	if frac < s.Gamma*s.D {
		rest = hk*(s.Gamma*s.D-frac) + hk*a*(1-s.Gamma)*s.D
	} else {
		rest = hk * a * (s.D - frac)
	}
	// One-sided survival of |n| counts both signs: the density here
	// is the signed one, magnitudes double it.
	return 2 * (rest + tailBeyond)
}

// Quantile implements Family by numerically inverting Survival
// (monotone bisection; the staircase has no closed-form inverse in
// this parameterization worth hand-rolling).
func (s Staircase) Quantile(u float64) float64 {
	if u <= 0 || u > 1 {
		panic(fmt.Sprintf("noisedist: uniform draw %g out of (0,1]", u))
	}
	if u == 1 {
		return 0
	}
	// Bracket: survival decays by e^-ε per period.
	hi := s.D
	for s.Survival(hi) > u {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	lo := 0.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if s.Survival(mid) > u {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Validate reports whether the staircase parameters are usable.
func (s Staircase) Validate() error {
	if !(s.Eps > 0) {
		return fmt.Errorf("noisedist: staircase eps %g <= 0", s.Eps)
	}
	if !(s.D > 0) {
		return fmt.Errorf("noisedist: staircase sensitivity %g <= 0", s.D)
	}
	if !(s.Gamma > 0 && s.Gamma < 1) {
		return fmt.Errorf("noisedist: staircase gamma %g out of (0,1)", s.Gamma)
	}
	return nil
}
