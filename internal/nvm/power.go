package nvm

import "sync/atomic"

// Power is the supply cell shared by every bank of a region: a crash
// takes the whole region down between two word writes, so the fail
// countdown is global, not per bank. Clients journal concurrently
// (the collector's shards share one cell across reactors) and every
// admission costs a dozen-plus permit checks, so the cell is
// lock-free: with no failure armed (the steady state) a permit is one
// load and one relaxed counter bump, never a shared mutex.
type Power struct {
	failAfter atomic.Int64 // remaining allowed word writes; -1 = no scheduled failure
	dead      atomic.Bool
	writes    atomic.Uint64 // total durable words across every bank
}

// NewPower returns a live cell with no scheduled failure.
func NewPower() *Power {
	p := &Power{}
	p.failAfter.Store(-1)
	return p
}

// Allow consumes one word-write permit, honouring a scheduled
// failure. False means the supply is (now) dead: the write must not
// happen and the region fails closed.
func (p *Power) Allow() bool {
	if p.dead.Load() {
		return false
	}
	for {
		n := p.failAfter.Load()
		if n < 0 {
			p.writes.Add(1)
			return true
		}
		if n == 0 {
			p.dead.Store(true)
			return false
		}
		if p.failAfter.CompareAndSwap(n, n-1) {
			p.writes.Add(1)
			return true
		}
	}
}

// FailAfterWrites schedules a power failure after n more successful
// word writes (n = 0 kills the next write). Pass a negative n to
// disarm.
func (p *Power) FailAfterWrites(n int) {
	if n < 0 {
		n = -1
	}
	p.failAfter.Store(int64(n))
}

// Kill drops power immediately; all further writes fail.
func (p *Power) Kill() { p.dead.Store(true) }

// Dead reports whether the cell has lost power.
func (p *Power) Dead() bool { return p.dead.Load() }

// Revive restores power (secure boot) and disarms any scheduled
// failure.
func (p *Power) Revive() {
	p.dead.Store(false)
	p.failAfter.Store(-1)
}

// Writes returns the cumulative successful word writes — the
// crash-sweep axis ("fail after the w-th word write").
func (p *Power) Writes() uint64 { return p.writes.Load() }
