package nvm

// Banked is the double-banked snapshot discipline over a two-bank
// region, modelled on real flash: the live bank opens with a
// generation-tagged snapshot and accumulates a WAL tail; compaction
// writes generation+1's snapshot into the idle bank and only a
// durable sealing record flips it live. A crash mid-compaction leaves
// the old bank complete — recovery elects the highest complete
// generation and erases the loser.
type Banked struct {
	r    *Region
	live int   // region-relative bank holding the current snapshot + tail
	gen  int64 // generation of the live bank's snapshot
}

// NewBanked wraps a two-bank region; bank 0 starts live at
// generation 0 (callers seed or elect before use).
func NewBanked(r *Region) *Banked { return &Banked{r: r} }

// Live returns the live bank (region-relative).
func (bk *Banked) Live() int { return bk.live }

// Idle returns the idle bank (region-relative).
func (bk *Banked) Idle() int { return 1 - bk.live }

// Gen returns the live bank's snapshot generation.
func (bk *Banked) Gen() int64 { return bk.gen }

// SetLive installs an election result (recovery) or a seed: bank b is
// live at generation gen. It does not touch the media.
func (bk *Banked) SetLive(b int, gen int64) {
	bk.live = b
	bk.gen = gen
}

// Compact erases the idle bank, has write lay down the
// next-generation snapshot there (write must end with the
// generation-sealing record and report durability), and flips on
// success. On failure the old bank stays live and complete; nothing
// is lost, and the next attempt (or recovery) simply retries. It
// reports whether the flip happened.
func (bk *Banked) Compact(write func(idle int, gen int64) bool) bool {
	idle := 1 - bk.live
	bk.r.Erase(idle)
	if !write(idle, bk.gen+1) {
		return false
	}
	// The sealing word is durable: the new bank is authoritative from
	// here even if the erase below never happens (recovery picks the
	// higher generation).
	bk.gen++
	bk.live = idle
	bk.r.Erase(1 - idle)
	bk.r.NoteCompaction()
	return true
}
