package nvm

import (
	"sync/atomic"

	"ulpdp/internal/obs"
)

// Layout is a client's record dialect: its checksum salt and its
// tag → payload-length table. The wire format itself is fixed —
// hdr = tag<<12 | (seq & 0x0FFF), payload words, XOR checksum — only
// the salt and the tag space vary per client.
type Layout struct {
	// Salt is XORed into every record checksum (see SaltBudget /
	// SaltCheckpoint).
	Salt uint16
	// PayloadLen maps a tag to its payload word count, or -1 for an
	// unknown tag.
	PayloadLen func(tag uint16) int
}

// Checksum is the record checksum: XOR of the header and payload
// words, XOR the layout salt.
func Checksum(salt, hdr uint16, payload []uint16) uint16 {
	c := hdr ^ salt
	for _, w := range payload {
		c ^= w
	}
	return c
}

// Enc64 encodes a 64-bit value as 4 little-endian 16-bit words.
func Enc64(v int64) [4]uint16 {
	u := uint64(v)
	return [4]uint16{uint16(u), uint16(u >> 16), uint16(u >> 32), uint16(u >> 48)}
}

// Dec64 decodes 4 little-endian 16-bit words into a 64-bit value.
func Dec64(w []uint16) int64 {
	return int64(uint64(w[0]) | uint64(w[1])<<16 | uint64(w[2])<<32 | uint64(w[3])<<48)
}

// Region is one client's durable record log: a bank range of a
// Medium, a supply cell, a record layout, and the 12-bit wrapping
// record sequence the two-phase pairing rides on. All mutation
// happens under the owning client's lock (or single-threaded
// recovery); only the power cell and the compaction counter are
// shared-safe.
type Region struct {
	med  Medium
	pw   *Power
	lay  Layout
	base int // first medium bank owned by this region
	n    int // bank count
	seq  uint16

	compactions atomic.Uint64

	// Optional journal telemetry: bumped on durable TxnBegin/TxnCommit
	// so every two-phase client reports intents/commits from one place
	// instead of hand-counting at call sites. Nil-safe (zero cost when
	// unbound).
	intents *obs.Counter
	commits *obs.Counter
}

// NewRegion returns a region over all of med's banks.
func NewRegion(med Medium, pw *Power, lay Layout) *Region {
	return NewRegionBanks(med, pw, lay, 0, med.Banks())
}

// NewRegionBanks returns a region over n banks of med starting at
// base — how a multi-shard store carves one medium into per-shard
// regions (shard i owning banks [2i, 2i+1]) that still share a single
// supply cell. Bank arguments to the region's methods are
// region-relative.
func NewRegionBanks(med Medium, pw *Power, lay Layout, base, n int) *Region {
	return &Region{med: med, pw: pw, lay: lay, base: base, n: n}
}

// Power returns the region's supply cell.
func (r *Region) Power() *Power { return r.pw }

// Medium returns the underlying medium (lifecycle: Close).
func (r *Region) Medium() Medium { return r.med }

// Seq returns the record sequence counter.
func (r *Region) Seq() uint16 { return r.seq }

// SetSeq resets the record sequence counter (compaction restart).
func (r *Region) SetSeq(s uint16) { r.seq = s }

// Len returns bank b's durable word count.
func (r *Region) Len(b int) int { return r.med.Len(r.base + b) }

// Words returns bank b's durable words (aliasing the medium; see
// Medium.Words).
func (r *Region) Words(b int) []uint16 { return r.med.Words(r.base + b) }

// Erase clears bank b.
func (r *Region) Erase(b int) { _ = r.med.Erase(r.base + b) }

// Put writes one raw word to bank b through the power cell. It
// reports whether the word became durable; a medium failure kills the
// cell (fail closed).
func (r *Region) Put(b int, w uint16) bool {
	if !r.pw.Allow() {
		return false
	}
	if r.med.Append(r.base+b, w) != nil {
		r.pw.Kill()
		return false
	}
	return true
}

// Append writes one record — header, payload, checksum — word by
// word into bank b. False means power failed partway: the tail is
// torn and the region dead.
func (r *Region) Append(b int, tag uint16, payload []uint16) bool {
	hdr := tag<<12 | (r.seq & 0x0FFF)
	r.seq++
	if !r.Put(b, hdr) {
		return false
	}
	for _, w := range payload {
		if !r.Put(b, w) {
			return false
		}
	}
	return r.Put(b, Checksum(r.lay.Salt, hdr, payload))
}

// TxnBegin opens a two-phase transaction: it notes the pairing
// sequence, writes the intent record, and returns the pairing value
// for TxnCommit. Records appended between begin and commit ride
// inside the transaction — replay applies them only if the matching
// commit is durable.
func (r *Region) TxnBegin(b int, tag uint16, payload []uint16) (pair uint16, ok bool) {
	pair = r.seq
	if !r.Append(b, tag, payload) {
		return pair, false
	}
	if r.intents != nil {
		r.intents.Inc()
	}
	return pair, true
}

// TxnCommit seals a transaction: the commit record reuses the
// intent's sequence number so replay can pair them. Only after it
// returns true is the transaction durable.
func (r *Region) TxnCommit(b int, tag uint16, pair uint16) bool {
	r.seq = pair
	if !r.Append(b, tag, nil) {
		return false
	}
	if r.commits != nil {
		r.commits.Inc()
	}
	return true
}

// BindCounters attaches (or detaches, with nils) the journal
// intent/commit telemetry counters.
func (r *Region) BindCounters(intents, commits *obs.Counter) {
	r.intents, r.commits = intents, commits
}

// Counters returns the bound telemetry counters (nil when unbound),
// so a client can suspend them across a recovery-time rewrite.
func (r *Region) Counters() (intents, commits *obs.Counter) {
	return r.intents, r.commits
}

// NoteCompaction bumps the compaction statistic.
func (r *Region) NoteCompaction() { r.compactions.Add(1) }

// Stats returns the region's introspection surface.
func (r *Region) Stats() Stats {
	words := 0
	for b := 0; b < r.n; b++ {
		words += r.med.Len(r.base + b)
	}
	return Stats{
		Words:       words,
		Banks:       r.n,
		Writes:      r.pw.Writes(),
		Compactions: r.compactions.Load(),
		FailClosed:  r.pw.Dead(),
	}
}

// ScanStatus classifies one Scanner step. Clients map statuses to
// their own recovery policy: the budget journal treats anything but
// ScanRecord as end-of-log (lenient — its log is single-writer and
// short), the collector refuses ScanBadTag/ScanBadSumMid fail-closed
// (a silently shortened log would re-admit ACKed reports) while
// accepting ScanTorn/ScanBadSumTail as the torn tail the protocol is
// designed around.
type ScanStatus int

const (
	// ScanRecord: a complete, checksum-valid record was parsed.
	ScanRecord ScanStatus = iota
	// ScanEnd: the log's words are exhausted.
	ScanEnd
	// ScanTorn: the final record is truncated mid-write.
	ScanTorn
	// ScanBadTag: the header names a tag outside the layout.
	ScanBadTag
	// ScanBadSumTail: checksum mismatch on a record whose words all
	// fit exactly at the end of the log — a flip in the final record
	// and a torn write at the checksum word are indistinguishable.
	ScanBadSumTail
	// ScanBadSumMid: checksum mismatch with more log after it — not
	// explainable as a torn tail; mid-log corruption.
	ScanBadSumMid
)

// Scanner walks a word stream record by record. It never advances
// past a non-ScanRecord status, never panics on arbitrary input, and
// is deterministic — the FuzzNVMRecordCodec contract.
type Scanner struct {
	lay Layout
	w   []uint16
	i   int
}

// NewScanner returns a scanner over words with the given layout.
func NewScanner(lay Layout, words []uint16) *Scanner {
	return &Scanner{lay: lay, w: words}
}

// Offset returns the word index of the next unparsed record.
func (s *Scanner) Offset() int { return s.i }

// Next parses the next record. tag is valid for every status except
// ScanEnd (error paths report it); seq and payload only for
// ScanRecord and the checksum-mismatch statuses.
func (s *Scanner) Next() (tag, seq uint16, payload []uint16, status ScanStatus) {
	if s.i >= len(s.w) {
		return 0, 0, nil, ScanEnd
	}
	hdr := s.w[s.i]
	tag, seq = hdr>>12, hdr&0x0FFF
	n := s.lay.PayloadLen(tag)
	if n < 0 {
		return tag, seq, nil, ScanBadTag
	}
	if s.i+1+n+1 > len(s.w) {
		return tag, seq, nil, ScanTorn
	}
	payload = s.w[s.i+1 : s.i+1+n]
	if s.w[s.i+1+n] != Checksum(s.lay.Salt, hdr, payload) {
		if s.i+1+n+1 == len(s.w) {
			return tag, seq, payload, ScanBadSumTail
		}
		return tag, seq, payload, ScanBadSumMid
	}
	s.i += 1 + n + 1
	return tag, seq, payload, ScanRecord
}
