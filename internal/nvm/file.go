package nvm

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

// FileMedium persists each bank as one little-endian word file under
// a directory, with write-through word durability: every Append is
// issued to the file before it is acknowledged, so a killed process
// (SIGKILL mid-run) finds every acknowledged word on restart — the
// kernel completes in-flight page-cache writes even when the process
// dies. That is the durability the restart-survival contract needs;
// it is weaker than a powerfail-safe disk (no fsync per word — a
// whole-machine power cut could drop the page-cache tail, which the
// torn-tail replay then rolls back, exactly like a simulated cut).
//
// A file with an odd byte length holds a torn word — the process was
// killed between the two bytes of one word write — and is truncated
// back to the last whole word at open, the file analogue of a torn
// NVM word never reaching its cell.
type FileMedium struct {
	dir    string
	files  []*os.File
	mirror [][]uint16 // in-RAM copy of each bank for zero-copy reads
}

// bankPath names bank b's backing file.
func bankPath(dir string, b int) string {
	return filepath.Join(dir, fmt.Sprintf("bank-%04d.nvm", b))
}

// OpenFileMedium opens (creating as needed) a file-backed medium with
// the given bank count under dir, loading any existing durable words.
func OpenFileMedium(dir string, banks int) (*FileMedium, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("nvm: open file medium: %w", err)
	}
	m := &FileMedium{
		dir:    dir,
		files:  make([]*os.File, banks),
		mirror: make([][]uint16, banks),
	}
	for b := 0; b < banks; b++ {
		f, err := os.OpenFile(bankPath(dir, b), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("nvm: open bank %d: %w", b, err)
		}
		m.files[b] = f
		raw, err := os.ReadFile(bankPath(dir, b))
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("nvm: read bank %d: %w", b, err)
		}
		if len(raw)%2 != 0 {
			// Torn word: the kill landed between the two bytes of one
			// word write. Drop the half-word, as NVM drops a half-
			// written cell.
			raw = raw[:len(raw)-1]
			if err := f.Truncate(int64(len(raw))); err != nil {
				m.Close()
				return nil, fmt.Errorf("nvm: trim torn word in bank %d: %w", b, err)
			}
		}
		words := make([]uint16, len(raw)/2)
		for i := range words {
			words[i] = binary.LittleEndian.Uint16(raw[2*i:])
		}
		m.mirror[b] = words
	}
	return m, nil
}

// CountFileBanks reports how many bank files an existing file-backed
// medium directory holds (0 when the directory is absent or empty) —
// how a reopening store discovers its prior geometry instead of
// trusting the caller's.
func CountFileBanks(dir string) int {
	n := 0
	for {
		if _, err := os.Stat(bankPath(dir, n)); err != nil {
			return n
		}
		n++
	}
}

// Banks returns the bank count.
func (m *FileMedium) Banks() int { return len(m.mirror) }

// Append writes one word through to bank b's file, then mirrors it.
func (m *FileMedium) Append(b int, w uint16) error {
	var buf [2]byte
	binary.LittleEndian.PutUint16(buf[:], w)
	if _, err := m.files[b].WriteAt(buf[:], int64(2*len(m.mirror[b]))); err != nil {
		return fmt.Errorf("nvm: write bank %d: %w", b, err)
	}
	m.mirror[b] = append(m.mirror[b], w)
	return nil
}

// Len returns bank b's word count.
func (m *FileMedium) Len(b int) int { return len(m.mirror[b]) }

// Words returns bank b's words (the in-RAM mirror).
func (m *FileMedium) Words(b int) []uint16 { return m.mirror[b] }

// Erase truncates bank b's file and clears its mirror.
func (m *FileMedium) Erase(b int) error {
	if err := m.files[b].Truncate(0); err != nil {
		return fmt.Errorf("nvm: erase bank %d: %w", b, err)
	}
	m.mirror[b] = m.mirror[b][:0]
	return nil
}

// Close closes every bank file.
func (m *FileMedium) Close() error {
	var first error
	for _, f := range m.files {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	m.files = nil
	return first
}
