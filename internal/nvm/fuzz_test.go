package nvm

import (
	"encoding/binary"
	"testing"
)

// fuzzWords reassembles fuzz bytes into a word stream (odd trailing
// byte = torn word, dropped). Kept local: nvmtest imports this
// package, so the fuzzer cannot import nvmtest back.
func fuzzWords(raw []byte) []uint16 {
	words := make([]uint16, len(raw)/2)
	for i := range words {
		words[i] = binary.LittleEndian.Uint16(raw[2*i:])
	}
	return words
}

// FuzzNVMRecordCodec is the shared record-codec fuzzer both journals
// used to carry separately: arbitrary word streams go through the
// Scanner and the replay must never panic, must be deterministic,
// must either parse records that re-encode bit-exactly or refuse
// (non-record status), and a fresh record appended after the valid
// prefix must scan back intact.
func FuzzNVMRecordCodec(f *testing.F) {
	lay := testLayout()
	// Corpus: a clean log, a torn one, a flipped one, junk.
	r := NewRegion(NewMemMedium(1), NewPower(), lay)
	p := Enc64(-99)
	pair, _ := r.TxnBegin(0, 1, p[:])
	r.Append(0, 3, []uint16{0xAB, 0xCD})
	r.TxnCommit(0, 2, pair)
	clean := make([]byte, 2*len(r.Words(0)))
	for i, w := range r.Words(0) {
		binary.LittleEndian.PutUint16(clean[2*i:], w)
	}
	f.Add(clean, uint16(0x1234))
	f.Add(clean[:len(clean)-3], uint16(0x1234))
	flipped := append([]byte(nil), clean...)
	flipped[5] ^= 0x80
	f.Add(flipped, uint16(0xC011))
	f.Add([]byte{}, uint16(0x5AA5))
	f.Add([]byte{0xFF, 0xFF, 0x01}, uint16(0))

	f.Fuzz(func(t *testing.T, raw []byte, salt uint16) {
		if len(raw) > 1<<16 {
			return
		}
		lay := testLayout()
		lay.Salt = salt
		words := fuzzWords(raw)

		type rec struct {
			tag, seq uint16
			payload  []uint16
		}
		var recs []rec
		sc := NewScanner(lay, words)
		for {
			tag, seq, payload, status := sc.Next()
			if status != ScanRecord {
				// Refusal branch: whatever the damage, the scanner stops
				// without panicking; the offset never passes the bad spot.
				if sc.Offset() > len(words) {
					t.Fatalf("offset %d past end %d", sc.Offset(), len(words))
				}
				break
			}
			recs = append(recs, rec{tag, seq, append([]uint16(nil), payload...)})
		}
		parsed := sc.Offset()

		// Determinism: a second scan sees the identical prefix.
		sc2 := NewScanner(lay, words)
		for i := 0; ; i++ {
			_, _, _, status := sc2.Next()
			if status != ScanRecord {
				if i != len(recs) || sc2.Offset() != parsed {
					t.Fatalf("second scan parsed %d records to %d, first %d to %d", i, sc2.Offset(), len(recs), parsed)
				}
				break
			}
		}

		// Recover exactly: re-encoding the parsed records with their
		// own seqs reproduces the parsed prefix bit-for-bit.
		re := NewRegion(NewMemMedium(1), NewPower(), lay)
		for _, rc := range recs {
			re.SetSeq(rc.seq)
			if !re.Append(0, rc.tag, rc.payload) {
				t.Fatal("re-append failed with live power")
			}
		}
		got := re.Words(0)
		if len(got) != parsed {
			t.Fatalf("re-encoded %d words, parsed prefix %d", len(got), parsed)
		}
		for i := range got {
			if got[i] != words[i] {
				t.Fatalf("re-encoded word %d = %#04x, original %#04x", i, got[i], words[i])
			}
		}

		// Still usable: appending a fresh record after the valid prefix
		// scans back intact.
		probe := NewRegion(NewMemMedium(1), NewPower(), lay)
		for i := 0; i < parsed; i++ {
			probe.Put(0, words[i])
		}
		probe.SetSeq(0x7FF)
		if !probe.Append(0, 3, []uint16{0x55, 0xAA}) {
			t.Fatal("probe append failed")
		}
		sc3 := NewScanner(lay, probe.Words(0))
		found := false
		for {
			tag, seq, payload, status := sc3.Next()
			if status != ScanRecord {
				break
			}
			if tag == 3 && seq == 0x7FF && len(payload) == 2 && payload[0] == 0x55 && payload[1] == 0xAA {
				found = true
			}
		}
		if !found {
			t.Fatal("fresh record after valid prefix lost")
		}
	})
}
