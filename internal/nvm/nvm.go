// Package nvm is the shared word-granular non-volatile storage engine
// under every durable region in the repo: the DP-Box budget/release
// journal (internal/dpbox) and the collector's per-shard checkpoint
// store (internal/collector) are both thin clients of this package.
//
// The media model is the paper's: an append-only NVM region written
// one 16-bit word at a time, where power can fail between any two
// word writes. A record whose tail never landed ("torn") must be
// indistinguishable from a record that was never written — that
// atomicity, plus the two-phase intent→commit protocol layered on
// top, is what lets a client replay a power-loss trace at any cut
// point without double-spending budget or re-admitting an
// already-acknowledged report.
//
// The engine splits into four pieces:
//
//   - Medium: raw word banks (append/read/erase). MemMedium is the
//     simulated in-RAM array every test sweeps; FileMedium persists
//     each bank to a file with write-through word durability so a
//     killed-and-restarted process recovers real state.
//   - Power: the shared supply cell. One cell powers every bank of a
//     region (a crash is one event); writes fail closed once the cell
//     dies, and a scheduled FailAfterWrites drives the torn-write
//     sweeps.
//   - Region: the record codec (hdr tag<<12|seq, tag-dependent
//     payload, XOR checksum with a per-client salt) plus the
//     two-phase transaction helpers and the replay Scanner.
//   - Banked: double-banked generation-tagged snapshot/compaction
//     arithmetic for clients that checkpoint by rewriting (the
//     collector).
package nvm

// Per-client checksum salts. Every region XORs its salt into every
// record checksum, so a word stream from one region can never replay
// as a valid record stream in another: a collector checkpoint pasted
// into a budget journal (or vice versa) fails its first checksum and
// reads as a torn tail or corruption instead of silently applying
// someone else's transactions. New regions must pick a fresh salt —
// two regions sharing one would re-open exactly that confusion.
const (
	// SaltBudget salts the DP-Box budget/release journal
	// (internal/dpbox).
	SaltBudget uint16 = 0x5AA5
	// SaltCheckpoint salts the collector's shard checkpoint store
	// (internal/collector).
	SaltCheckpoint uint16 = 0xC011
)

// Medium is a bank-addressed word array: the raw NVM. Appends are
// word-scalar — the engine feeds records through one word at a time
// so the medium never sees (or allocates for) a record boundary.
// Implementations are not goroutine-safe; callers serialize access
// per bank (shard locks, the ledger mutex, single-threaded recovery).
type Medium interface {
	// Banks returns the number of banks.
	Banks() int
	// Append makes one word durable at the end of bank b. An error
	// means the medium failed mid-write; the engine treats it as a
	// power event and kills the supply cell.
	Append(b int, w uint16) error
	// Len returns bank b's durable word count.
	Len(b int) int
	// Words returns bank b's durable words. The slice aliases the
	// medium's buffer (zero-copy replay); callers must not hold it
	// across mutations. Tests corrupt media in place through it.
	Words(b int) []uint16
	// Erase clears bank b.
	Erase(b int) error
	// Close releases any resources (file handles). The in-memory
	// medium has none.
	Close() error
}

// MemMedium is the simulated in-memory NVM every crash-sweep test
// runs against: plain word slices, erase keeps capacity so steady
// append/erase cycles allocate nothing.
type MemMedium struct {
	banks [][]uint16
}

// NewMemMedium returns an empty in-memory medium with the given bank
// count.
func NewMemMedium(banks int) *MemMedium {
	return &MemMedium{banks: make([][]uint16, banks)}
}

// Banks returns the bank count.
func (m *MemMedium) Banks() int { return len(m.banks) }

// Append appends one word to bank b.
func (m *MemMedium) Append(b int, w uint16) error {
	m.banks[b] = append(m.banks[b], w)
	return nil
}

// Len returns bank b's word count.
func (m *MemMedium) Len(b int) int { return len(m.banks[b]) }

// Words returns bank b's words (aliasing the live buffer).
func (m *MemMedium) Words(b int) []uint16 { return m.banks[b] }

// Erase clears bank b, keeping its capacity.
func (m *MemMedium) Erase(b int) error {
	m.banks[b] = m.banks[b][:0]
	return nil
}

// Load replaces bank b's contents wholesale (fuzz and test harnesses
// installing arbitrary word streams; not part of the Medium model).
func (m *MemMedium) Load(b int, words []uint16) {
	m.banks[b] = append(m.banks[b][:0], words...)
}

// Close is a no-op.
func (m *MemMedium) Close() error { return nil }

// Stats is the one introspection surface every NVM-backed region
// exposes, replacing the old per-client asymmetry (collector
// Journal.Words vs dpbox Journal.Writes).
type Stats struct {
	// Words is the current durable word count across the region's
	// banks (what a fresh replay would scan).
	Words int
	// Banks is the region's bank count.
	Banks int
	// Writes is the cumulative successful word writes through the
	// region's power cell since boot (monotone; survives erases).
	Writes uint64
	// Compactions counts snapshot/compaction rewrites.
	Compactions uint64
	// FailClosed reports a dead supply cell: every further write is
	// refused.
	FailClosed bool
}
