package nvm

import (
	"os"
	"path/filepath"
	"testing"
)

// testLayout is a small representative dialect: tag 1 carries 4
// words, tag 2 none, tag 3 carries 2, everything else is unknown.
func testLayout() Layout {
	return Layout{Salt: 0x1234, PayloadLen: func(tag uint16) int {
		switch tag {
		case 1:
			return 4
		case 2:
			return 0
		case 3:
			return 2
		}
		return -1
	}}
}

func TestRecordRoundTrip(t *testing.T) {
	r := NewRegion(NewMemMedium(1), NewPower(), testLayout())
	p := Enc64(-123456789)
	if !r.Append(0, 1, p[:]) || !r.Append(0, 2, nil) || !r.Append(0, 3, []uint16{7, 9}) {
		t.Fatal("append failed with live power")
	}
	sc := NewScanner(testLayout(), r.Words(0))
	tag, seq, payload, status := sc.Next()
	if status != ScanRecord || tag != 1 || seq != 0 || Dec64(payload) != -123456789 {
		t.Fatalf("record 1: tag %d seq %d status %v", tag, seq, status)
	}
	if tag, seq, _, status = sc.Next(); status != ScanRecord || tag != 2 || seq != 1 {
		t.Fatalf("record 2: tag %d seq %d status %v", tag, seq, status)
	}
	if tag, _, payload, status = sc.Next(); status != ScanRecord || tag != 3 || payload[1] != 9 {
		t.Fatalf("record 3: tag %d status %v", tag, status)
	}
	if _, _, _, status = sc.Next(); status != ScanEnd {
		t.Fatalf("end: status %v", status)
	}
}

func TestScannerStatuses(t *testing.T) {
	lay := testLayout()
	build := func() []uint16 {
		r := NewRegion(NewMemMedium(1), NewPower(), lay)
		p := Enc64(42)
		r.Append(0, 1, p[:])
		r.Append(0, 2, nil)
		return append([]uint16(nil), r.Words(0)...)
	}

	w := build()
	sc := NewScanner(lay, w[:len(w)-1]) // torn final record
	if _, _, _, status := sc.Next(); status != ScanRecord {
		t.Fatal("first record should parse")
	}
	if _, _, _, status := sc.Next(); status != ScanTorn {
		t.Fatal("truncated tail should scan torn")
	}

	w = build()
	w[0] = 0xF<<12 | w[0]&0x0FFF
	if _, _, _, status := NewScanner(lay, w).Next(); status != ScanBadTag {
		t.Fatal("unknown tag should scan bad-tag")
	}

	w = build()
	w[len(w)-1] ^= 1 // flip the final record's checksum word
	sc = NewScanner(lay, w)
	sc.Next()
	if _, _, _, status := sc.Next(); status != ScanBadSumTail {
		t.Fatal("final-record flip should scan bad-sum-tail")
	}

	w = build()
	w[2] ^= 1 // flip inside the first record's payload
	if _, _, _, status := NewScanner(lay, w).Next(); status != ScanBadSumMid {
		t.Fatal("mid-log flip should scan bad-sum-mid")
	}
}

func TestTxnPairing(t *testing.T) {
	r := NewRegion(NewMemMedium(1), NewPower(), testLayout())
	p := Enc64(5)
	pair, ok := r.TxnBegin(0, 1, p[:])
	if !ok || pair != 0 {
		t.Fatalf("begin: pair %d ok %v", pair, ok)
	}
	if !r.Append(0, 3, []uint16{1, 2}) {
		t.Fatal("inner append failed")
	}
	if !r.TxnCommit(0, 2, pair) {
		t.Fatal("commit failed")
	}
	// Intent and commit share the pairing seq; the next record gets
	// pair+1 — the wrapping discipline both journals' replay pins on.
	sc := NewScanner(testLayout(), r.Words(0))
	_, s0, _, _ := sc.Next()
	_, s1, _, _ := sc.Next()
	_, s2, _, _ := sc.Next()
	if s0 != 0 || s1 != 1 || s2 != 0 {
		t.Fatalf("seqs %d %d %d, want 0 1 0", s0, s1, s2)
	}
	if r.Seq() != 1 {
		t.Fatalf("post-commit seq %d, want 1", r.Seq())
	}
}

func TestPowerScheduledFailure(t *testing.T) {
	pw := NewPower()
	pw.FailAfterWrites(3)
	r := NewRegion(NewMemMedium(1), pw, testLayout())
	p := Enc64(1)
	if r.Append(0, 1, p[:]) {
		t.Fatal("append should die at word 4")
	}
	if !pw.Dead() || r.Len(0) != 3 {
		t.Fatalf("dead %v len %d, want true 3", pw.Dead(), r.Len(0))
	}
	if r.Put(0, 1) {
		t.Fatal("dead cell accepted a write")
	}
	pw.Revive()
	if !r.Append(0, 2, nil) {
		t.Fatal("revived cell refused a write")
	}
}

func TestStats(t *testing.T) {
	r := NewRegion(NewMemMedium(2), NewPower(), testLayout())
	r.Append(0, 2, nil)
	r.Append(1, 2, nil)
	r.NoteCompaction()
	st := r.Stats()
	if st.Words != 4 || st.Banks != 2 || st.Writes != 4 || st.Compactions != 1 || st.FailClosed {
		t.Fatalf("stats %+v", st)
	}
}

func TestBankedCompactFlipsOnlyOnSuccess(t *testing.T) {
	pw := NewPower()
	r := NewRegion(NewMemMedium(2), pw, testLayout())
	bk := NewBanked(r)
	bk.SetLive(0, 1)
	r.Append(0, 2, nil)
	if !bk.Compact(func(idle int, gen int64) bool {
		if idle != 1 || gen != 2 {
			t.Fatalf("compact args idle %d gen %d", idle, gen)
		}
		return r.Append(idle, 2, nil)
	}) {
		t.Fatal("compact failed")
	}
	if bk.Live() != 1 || bk.Gen() != 2 || r.Len(0) != 0 {
		t.Fatalf("live %d gen %d oldLen %d", bk.Live(), bk.Gen(), r.Len(0))
	}
	pw.FailAfterWrites(0)
	if bk.Compact(func(idle int, gen int64) bool { return r.Append(idle, 2, nil) }) {
		t.Fatal("compact claimed success under dying power")
	}
	if bk.Live() != 1 || bk.Gen() != 2 {
		t.Fatal("failed compact moved the live bank")
	}
}

func TestFileMediumSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	med, err := OpenFileMedium(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range []uint16{0xBEEF, 0x1234, 0xFFFF} {
		if err := med.Append(i%2, w); err != nil {
			t.Fatal(err)
		}
	}
	if err := med.Erase(1); err != nil {
		t.Fatal(err)
	}
	if err := med.Append(1, 0x5678); err != nil {
		t.Fatal(err)
	}
	if err := med.Close(); err != nil {
		t.Fatal(err)
	}

	if n := CountFileBanks(dir); n != 2 {
		t.Fatalf("CountFileBanks = %d, want 2", n)
	}
	med2, err := OpenFileMedium(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer med2.Close()
	if w := med2.Words(0); len(w) != 2 || w[0] != 0xBEEF || w[1] != 0xFFFF {
		t.Fatalf("bank 0 reopened as %v", w)
	}
	if w := med2.Words(1); len(w) != 1 || w[0] != 0x5678 {
		t.Fatalf("bank 1 reopened as %v (erase must persist)", w)
	}
}

func TestFileMediumTrimsTornWord(t *testing.T) {
	dir := t.TempDir()
	med, err := OpenFileMedium(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	med.Append(0, 0xAAAA)
	med.Close()
	// Simulate a kill between the two bytes of the next word write.
	f, err := os.OpenFile(filepath.Join(dir, "bank-0000.nvm"), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0xBB})
	f.Close()
	med2, err := OpenFileMedium(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer med2.Close()
	if w := med2.Words(0); len(w) != 1 || w[0] != 0xAAAA {
		t.Fatalf("torn word not trimmed: %v", w)
	}
}

// BenchmarkNVMPut is the engine's hot-path guard: one record append
// on the in-memory medium must stay allocation-free (CI greps the
// 0 allocs/op line), since both journals' charge/admission paths sit
// directly on it.
func BenchmarkNVMPut(b *testing.B) {
	r := NewRegion(NewMemMedium(1), NewPower(), testLayout())
	payload := Enc64(1 << 40)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.Append(0, 1, payload[:]) {
			b.Fatal("append failed")
		}
		if r.Len(0) >= 1<<12 {
			r.Erase(0)
		}
	}
}
