// Package nvmtest holds the property-test scaffolding shared by every
// package that builds on the internal/nvm engine, so the torn-write
// sweep and the fuzz byte↔word plumbing are written once instead of
// re-grown per journal.
package nvmtest

import (
	"encoding/binary"
	"testing"

	"ulpdp/internal/nvm"
)

// CrashSweep is the torn-write sweep at every word boundary: it runs
// the scripted workload once on an unarmed supply cell (cut == -1) to
// measure its total durable word-write count, then re-runs it once
// per cut point w ∈ [0, total] on a fresh cell armed to kill the
// (w+1)-th write. run must build its journal/store on pw, drive its
// script tolerating power death at any word, and verify its own
// recovery invariant before returning. The baseline pass must write
// at least one word (a sweep over nothing would vacuously pass).
func CrashSweep(t testing.TB, run func(t testing.TB, pw *nvm.Power, cut int)) {
	t.Helper()
	base := nvm.NewPower()
	run(t, base, -1)
	total := int(base.Writes())
	if total == 0 {
		t.Fatalf("nvmtest: baseline sweep pass wrote no words; nothing to sweep")
	}
	for w := 0; w <= total; w++ {
		pw := nvm.NewPower()
		pw.FailAfterWrites(w)
		run(t, pw, w)
	}
}

// WordsToBytes flattens a word stream little-endian for fuzz corpora.
func WordsToBytes(words []uint16) []byte {
	out := make([]byte, 2*len(words))
	for i, w := range words {
		binary.LittleEndian.PutUint16(out[2*i:], w)
	}
	return out
}

// BytesToWords reassembles a fuzz byte string into words, dropping a
// trailing odd byte (a torn word).
func BytesToWords(raw []byte) []uint16 {
	words := make([]uint16, len(raw)/2)
	for i := range words {
		words[i] = binary.LittleEndian.Uint16(raw[2*i:])
	}
	return words
}
