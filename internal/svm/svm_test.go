package svm

import (
	"testing"

	"ulpdp/internal/core"
	"ulpdp/internal/urng"
)

func TestGenerateHalfspace(t *testing.T) {
	d := GenerateHalfspace(500, 4, 0.1, 1)
	if d.Len() != 500 {
		t.Fatalf("len = %d", d.Len())
	}
	var pos, neg int
	for i, x := range d.X {
		if len(x) != 4 {
			t.Fatalf("dim = %d", len(x))
		}
		for _, v := range x {
			if v < -1 || v > 1 {
				t.Fatalf("feature %g out of [-1,1]", v)
			}
		}
		switch d.Y[i] {
		case 1:
			pos++
		case -1:
			neg++
		default:
			t.Fatalf("label %d", d.Y[i])
		}
	}
	if pos == 0 || neg == 0 {
		t.Errorf("degenerate labels: +%d -%d", pos, neg)
	}
}

func TestGeneratePanics(t *testing.T) {
	cases := []func(){
		func() { GenerateHalfspace(0, 2, 0.1, 1) },
		func() { GenerateHalfspace(10, 0, 0.1, 1) },
		func() { GenerateHalfspace(10, 2, 0.6, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestTrainSeparableReachesHighAccuracy(t *testing.T) {
	train := GenerateHalfspace(2000, 4, 0.1, 2)
	test := GenerateHalfspace(1000, 4, 0.1, 3)
	// Same seed for the halfspace? Different seeds give different
	// halfspaces — train/test must share one. Regenerate jointly.
	all := GenerateHalfspace(3000, 4, 0.1, 5)
	train = Dataset{X: all.X[:2000], Y: all.Y[:2000]}
	test = Dataset{X: all.X[2000:], Y: all.Y[2000:]}
	m := TrainPegasos(train, 1e-4, 10, 7)
	acc := Accuracy(m, test)
	if acc < 0.97 {
		t.Errorf("clean accuracy = %g, want >= 0.97", acc)
	}
}

func TestTrainPanics(t *testing.T) {
	d := GenerateHalfspace(10, 2, 0.1, 1)
	cases := []func(){
		func() { TrainPegasos(Dataset{}, 1e-3, 1, 1) },
		func() { TrainPegasos(d, 0, 1, 1) },
		func() { TrainPegasos(d, 1e-3, 0, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNoiseFeaturesPreservesLabelsAndShape(t *testing.T) {
	d := GenerateHalfspace(100, 3, 0.1, 9)
	par := core.Params{Lo: -1, Hi: 1, Eps: 1, Bu: 14, By: 12, Delta: 2.0 / 256}
	src := urng.NewTaus88(3)
	th, err := core.ThresholdingThreshold(par, 2)
	if err != nil {
		t.Fatal(err)
	}
	mech, err := core.NewThresholding(par, th, nil, src)
	if err != nil {
		t.Fatal(err)
	}
	noised := NoiseFeatures(d, func(dim int) core.Mechanism { return mech })
	if noised.Len() != d.Len() {
		t.Fatal("length changed")
	}
	changed := 0
	for i := range d.X {
		if noised.Y[i] != d.Y[i] {
			t.Fatal("labels must not change")
		}
		for j := range d.X[i] {
			if noised.X[i][j] != d.X[i][j] {
				changed++
			}
		}
	}
	if changed == 0 {
		t.Error("no feature was noised")
	}
}

func TestNoisedTrainingDegradesGracefully(t *testing.T) {
	// Table VI's shape: noised training beats chance, clean training
	// beats noised, and higher ε (less noise) helps.
	all := GenerateHalfspace(6000, 3, 0.1, 11)
	train := Dataset{X: all.X[:5000], Y: all.Y[:5000]}
	test := Dataset{X: all.X[5000:], Y: all.Y[5000:]}

	clean := Accuracy(TrainPegasos(train, 1e-4, 8, 13), test)

	accAt := func(eps float64, seed uint64) float64 {
		par := core.Params{Lo: -1, Hi: 1, Eps: eps, Bu: 14, By: 12, Delta: 2.0 / 256}
		src := urng.NewTaus88(seed)
		th, err := core.ThresholdingThreshold(par, 2)
		if err != nil {
			t.Fatal(err)
		}
		mech, err := core.NewThresholding(par, th, nil, src)
		if err != nil {
			t.Fatal(err)
		}
		noised := NoiseFeatures(train, func(int) core.Mechanism { return mech })
		return Accuracy(TrainPegasos(noised, 1e-4, 8, 13), test)
	}
	lowPriv := accAt(4, 17) // mild noise
	hiPriv := accAt(0.5, 19)

	if clean < lowPriv-0.02 {
		t.Errorf("clean (%g) should be at least as good as noised (%g)", clean, lowPriv)
	}
	if lowPriv <= 0.55 {
		t.Errorf("mildly noised accuracy %g should beat chance clearly", lowPriv)
	}
	if hiPriv > lowPriv+0.05 {
		t.Errorf("more privacy (%g) should not beat less privacy (%g)", hiPriv, lowPriv)
	}
}

func TestLSSVMCleanData(t *testing.T) {
	all := GenerateHalfspace(4000, 8, 0.15, 21)
	train := Dataset{X: all.X[:3000], Y: all.Y[:3000]}
	test := Dataset{X: all.X[3000:], Y: all.Y[3000:]}
	m := TrainLSSVM(train, 1e-3)
	if acc := Accuracy(m, test); acc < 0.97 {
		t.Errorf("LS-SVM clean accuracy %g", acc)
	}
}

func TestLSSVMPanics(t *testing.T) {
	d := GenerateHalfspace(10, 2, 0.1, 1)
	cases := []func(){
		func() { TrainLSSVM(Dataset{}, 1e-3) },
		func() { TrainLSSVM(d, 0) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestLSSVMDeterministic(t *testing.T) {
	d := GenerateHalfspace(500, 4, 0.1, 5)
	a := TrainLSSVM(d, 1e-3)
	b := TrainLSSVM(d, 1e-3)
	for j := range a.W {
		if a.W[j] != b.W[j] {
			t.Fatal("LS-SVM must be deterministic")
		}
	}
	if a.B != b.B {
		t.Fatal("bias differs")
	}
}

func TestLSSVMConsistentUnderFeatureNoise(t *testing.T) {
	// The property Table VI relies on: with zero-mean feature noise,
	// more data recovers the direction — accuracy grows with n.
	all := GenerateHalfspace(9000, 8, 0.15, 31)
	test := Dataset{X: all.X[8000:], Y: all.Y[8000:]}
	rng := urng.NewSplitMix64(7)
	noisy := Dataset{X: make([][]float64, 8000), Y: all.Y[:8000]}
	for i := 0; i < 8000; i++ {
		x := make([]float64, 8)
		for j := range x {
			// Laplace-ish noise of scale 2 (difference of exponentials).
			x[j] = all.X[i][j] + 2*(rng.ExpFloat64()-rng.ExpFloat64())
		}
		noisy.X[i] = x
	}
	small := TrainLSSVM(Dataset{X: noisy.X[:500], Y: noisy.Y[:500]}, 1e-3)
	large := TrainLSSVM(noisy, 1e-3)
	accSmall, accLarge := Accuracy(small, test), Accuracy(large, test)
	if accLarge <= accSmall {
		t.Errorf("more noisy data should help: %g -> %g", accSmall, accLarge)
	}
	if accLarge < 0.85 {
		t.Errorf("8000 noisy examples should recover the direction, got %g", accLarge)
	}
}

func TestPegasosProjectedCleanData(t *testing.T) {
	all := GenerateHalfspace(4000, 4, 0.15, 41)
	train := Dataset{X: all.X[:3000], Y: all.Y[:3000]}
	test := Dataset{X: all.X[3000:], Y: all.Y[3000:]}
	m := TrainPegasosProjected(train, 1e-2, 10, 3)
	if acc := Accuracy(m, test); acc < 0.95 {
		t.Errorf("projected Pegasos clean accuracy %g", acc)
	}
}

func TestPegasosProjectedPanics(t *testing.T) {
	d := GenerateHalfspace(10, 2, 0.1, 1)
	cases := []func(){
		func() { TrainPegasosProjected(Dataset{}, 1e-3, 1, 1) },
		func() { TrainPegasosProjected(d, 0, 1, 1) },
		func() { TrainPegasosProjected(d, 1e-3, 0, 1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNoiseFeaturesEmpty(t *testing.T) {
	out := NoiseFeatures(Dataset{}, nil)
	if out.Len() != 0 {
		t.Error("empty dataset should stay empty")
	}
}

func TestAccuracyEmpty(t *testing.T) {
	if Accuracy(&Model{W: []float64{1}}, Dataset{}) != 0 {
		t.Error("empty accuracy should be 0")
	}
}
