// Package svm implements the privacy-preserving learning experiment
// of the paper's Section VI-F (Table VI): a linear support vector
// machine trained with the Pegasos subgradient method on a synthetic
// halfspace-separable dataset, comparing accuracy when the training
// features are released through a local-DP mechanism at different
// privacy levels.
package svm

import (
	"fmt"
	"math"

	"ulpdp/internal/core"
	"ulpdp/internal/urng"
)

// Model is a linear classifier sign(w·x + b).
type Model struct {
	W []float64
	B float64
}

// Predict returns the predicted label (+1 or -1).
func (m *Model) Predict(x []float64) int {
	s := m.B
	for i, w := range m.W {
		s += w * x[i]
	}
	if s >= 0 {
		return 1
	}
	return -1
}

// Dataset is a labelled feature matrix.
type Dataset struct {
	X [][]float64
	Y []int
}

// Len returns the number of examples.
func (d Dataset) Len() int { return len(d.X) }

// GenerateHalfspace draws n points uniformly in [-1, 1]^dim labelled
// by a random halfspace through the origin with the given margin:
// points closer than margin to the boundary are resampled, so the
// data is separable (the paper's setup: accuracy approaches 100% with
// enough clean data). It panics on invalid parameters.
func GenerateHalfspace(n, dim int, margin float64, seed uint64) Dataset {
	if n < 1 || dim < 1 {
		panic(fmt.Sprintf("svm: bad size n=%d dim=%d", n, dim))
	}
	if margin < 0 || margin >= 0.5 {
		panic(fmt.Sprintf("svm: margin %g out of [0, 0.5)", margin))
	}
	rng := urng.NewSplitMix64(seed)
	// Random unit normal vector.
	w := make([]float64, dim)
	var norm float64
	for i := range w {
		w[i] = rng.NormFloat64()
		norm += w[i] * w[i]
	}
	norm = math.Sqrt(norm)
	for i := range w {
		w[i] /= norm
	}
	d := Dataset{X: make([][]float64, 0, n), Y: make([]int, 0, n)}
	for len(d.X) < n {
		x := make([]float64, dim)
		var dot float64
		for i := range x {
			x[i] = 2*rng.Float64() - 1
			dot += w[i] * x[i]
		}
		if math.Abs(dot) < margin {
			continue
		}
		label := 1
		if dot < 0 {
			label = -1
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, label)
	}
	return d
}

// NoiseFeatures releases every feature of every example through the
// mechanism factory (one mechanism per feature dimension, matching a
// per-sensor DP-Box). The privacy budget ε in par applies per
// feature; by composition the per-example loss is dim·ε.
func NoiseFeatures(d Dataset, newMech func(dim int) core.Mechanism) Dataset {
	if d.Len() == 0 {
		return d
	}
	dim := len(d.X[0])
	mechs := make([]core.Mechanism, dim)
	for j := range mechs {
		mechs[j] = newMech(j)
	}
	out := Dataset{X: make([][]float64, d.Len()), Y: make([]int, d.Len())}
	copy(out.Y, d.Y)
	for i, x := range d.X {
		nx := make([]float64, dim)
		for j, v := range x {
			nx[j] = mechs[j].Noise(v).Value
		}
		out.X[i] = nx
	}
	return out
}

// TrainPegasos runs the Pegasos stochastic subgradient solver for the
// SVM objective with regularization lambda over the given number of
// epochs. It panics on an empty dataset or non-positive lambda.
func TrainPegasos(d Dataset, lambda float64, epochs int, seed uint64) *Model {
	if d.Len() == 0 {
		panic("svm: empty training set")
	}
	if lambda <= 0 || epochs < 1 {
		panic(fmt.Sprintf("svm: bad hyperparameters lambda=%g epochs=%d", lambda, epochs))
	}
	dim := len(d.X[0])
	w := make([]float64, dim)
	var b float64
	rng := urng.NewSplitMix64(seed)
	t := 1
	for e := 0; e < epochs; e++ {
		for _, i := range rng.Perm(d.Len()) {
			eta := 1 / (lambda * float64(t))
			x, y := d.X[i], float64(d.Y[i])
			var dot float64
			for j := range w {
				dot += w[j] * x[j]
			}
			if y*(dot+b) < 1 {
				for j := range w {
					w[j] = (1-eta*lambda)*w[j] + eta*y*x[j]
				}
				b += eta * y
			} else {
				for j := range w {
					w[j] = (1 - eta*lambda) * w[j]
				}
			}
			t++
		}
	}
	return &Model{W: w, B: b}
}

// TrainPegasosProjected runs the Pegasos solver with the three
// stabilizations the noisy-feature regime of Table VI needs: features
// are pre-scaled to unit max-magnitude (local-DP noise inflates their
// range), iterates are projected onto the ball of radius 1/√λ after
// every step (the projection variant of the original Pegasos paper),
// and the returned model averages the iterates of the second half of
// training (averaged SGD). On clean data it behaves like TrainPegasos;
// on heavily noised data it converges where the plain solver thrashes.
func TrainPegasosProjected(d Dataset, lambda float64, epochs int, seed uint64) *Model {
	if d.Len() == 0 {
		panic("svm: empty training set")
	}
	if lambda <= 0 || epochs < 1 {
		panic(fmt.Sprintf("svm: bad hyperparameters lambda=%g epochs=%d", lambda, epochs))
	}
	dim := len(d.X[0])
	maxAbs := 1e-9
	for _, x := range d.X {
		for _, v := range x {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
	}
	w := make([]float64, dim)
	avgW := make([]float64, dim)
	var b, avgB float64
	rng := urng.NewSplitMix64(seed)
	t := 1
	count := 0
	bound := 1 / math.Sqrt(lambda)
	for e := 0; e < epochs; e++ {
		for _, i := range rng.Perm(d.Len()) {
			eta := 1 / (lambda * float64(t))
			y := float64(d.Y[i])
			x := d.X[i]
			var dot float64
			for j := range w {
				dot += w[j] * x[j] / maxAbs
			}
			if y*(dot+b) < 1 {
				for j := range w {
					w[j] = (1-eta*lambda)*w[j] + eta*y*x[j]/maxAbs
				}
				b += eta * y
			} else {
				for j := range w {
					w[j] = (1 - eta*lambda) * w[j]
				}
			}
			var norm float64
			for j := range w {
				norm += w[j] * w[j]
			}
			norm = math.Sqrt(norm + b*b)
			if norm > bound {
				s := bound / norm
				for j := range w {
					w[j] *= s
				}
				b *= s
			}
			t++
			if e >= epochs/2 {
				for j := range w {
					avgW[j] += w[j]
				}
				avgB += b
				count++
			}
		}
	}
	for j := range avgW {
		avgW[j] /= float64(count) * maxAbs // undo the feature scaling
	}
	return &Model{W: avgW, B: avgB / float64(count)}
}

// TrainLSSVM trains the least-squares SVM (Suykens & Vandewalle):
// ridge regression of the ±1 labels on the (bias-augmented) features,
// solved exactly. Under zero-mean feature noise the estimated
// direction is consistent — the estimator the heavily-noised regime
// of Table VI needs, free of stochastic-subgradient luck. gamma is
// the ridge regularizer (per-example). It panics on an empty dataset,
// non-positive gamma, or a singular system (impossible for gamma > 0).
func TrainLSSVM(d Dataset, gamma float64) *Model {
	if d.Len() == 0 {
		panic("svm: empty training set")
	}
	if gamma <= 0 {
		panic(fmt.Sprintf("svm: non-positive gamma %g", gamma))
	}
	dim := len(d.X[0])
	n := dim + 1 // bias column
	// Normal equations A = X'X + γ·N·I (bias unregularized), v = X'y.
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
	}
	for r, x := range d.X {
		y := float64(d.Y[r])
		for i := 0; i < dim; i++ {
			for j := i; j < dim; j++ {
				a[i][j] += x[i] * x[j]
			}
			a[i][dim] += x[i] // bias cross terms accumulate below
			a[i][n] += x[i] * y
		}
		a[dim][n] += y
	}
	for i := 0; i < dim; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
		a[dim][i] = a[i][dim]
	}
	a[dim][dim] = float64(d.Len())
	reg := gamma * float64(d.Len())
	for i := 0; i < dim; i++ {
		a[i][i] += reg
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < n; col++ {
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		if a[col][col] == 0 {
			panic("svm: singular normal equations")
		}
		for r := col + 1; r < n; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= n; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	sol := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := a[r][n]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * sol[c]
		}
		sol[r] = s / a[r][r]
	}
	return &Model{W: sol[:dim], B: sol[dim]}
}

// Accuracy evaluates the model on a test set.
func Accuracy(m *Model, d Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	correct := 0
	for i, x := range d.X {
		if m.Predict(x) == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}
