package transport

import "ulpdp/internal/obs"

// Metrics is the link layer's slice of the telemetry plane. One
// Metrics is typically shared by every link of a fleet (the counters
// are atomic and names are registry-global), aggregating the radio
// picture across nodes; per-link numbers remain available via
// Link.Stats.
type Metrics struct {
	Sent            *obs.Counter
	Delivered       *obs.Counter
	Dropped         *obs.Counter
	Duplicated      *obs.Counter
	Reordered       *obs.Counter
	Corrupted       *obs.Counter
	Overflow        *obs.Counter
	RejectedCorrupt *obs.Counter

	// Flight, when non-nil, receives a link-rx span stamp for every
	// report frame copy that lands in a receive ring. Wired by the
	// fleet; nil keeps the stamp a single nil check.
	Flight *obs.FlightRecorder
}

// NewMetrics registers (or re-binds) the transport metric schema.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Sent:            r.Counter("transport.sent"),
		Delivered:       r.Counter("transport.delivered"),
		Dropped:         r.Counter("transport.dropped"),
		Duplicated:      r.Counter("transport.duplicated"),
		Reordered:       r.Counter("transport.reordered"),
		Corrupted:       r.Counter("transport.corrupted"),
		Overflow:        r.Counter("transport.overflow"),
		RejectedCorrupt: r.Counter("transport.rejected_corrupt"),
	}
}
