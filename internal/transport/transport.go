// Package transport is the fleet's in-process lossy link: a simulated
// radio hop between one ULP node and the collector, with drops,
// duplication, reordering, corruption and latency jitter injected
// through the internal/fault packet site so chaos schedules are seeded
// and reproducible.
//
// The link carries 22-byte frames (one report or ACK each) on two
// directions — up (node → collector) and down (collector → node) —
// through bounded queues. A full queue behaves like the air going
// busy: the frame vanishes and the sender's retry loop recovers it,
// exactly as it recovers a chaos drop. Nothing on the link is
// reliable; reliability is the ReportAgent/Collector protocol's job
// (at-least-once delivery, at-most-once noising, idempotent dedup).
//
// Reordering is slot-based rather than wall-clock-based: a delayed
// frame is held back until a configured number of later frames pass
// it (or the direction drains), which models latency jitter without
// timers and keeps chaos sweeps deterministic per seed.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ulpdp/internal/fault"
	"ulpdp/internal/obs"
)

// NodeID identifies one fleet node.
type NodeID uint16

// Kind is the frame type.
type Kind uint8

const (
	// KindReport is a node → collector noised report.
	KindReport Kind = 1
	// KindAck is a collector → node acknowledgement of (node, seq).
	KindAck Kind = 2
)

// Report flag bits, mirroring the DP-Box STATUS quality bits.
const (
	// FlagDegraded marks a release from the resample watchdog's
	// certified thresholding clamp.
	FlagDegraded = 1 << 0
	// FlagFromCache marks a zero-charge cache replay (budget
	// exhausted or URNG gate closed).
	FlagFromCache = 1 << 1
	// FlagUnhealthy marks a report sent while the node's URNG health
	// battery was failing.
	FlagUnhealthy = 1 << 2
)

// Packet is one decoded frame.
type Packet struct {
	// Kind is the frame type.
	Kind Kind
	// Node is the sending (for reports) or addressed (for ACKs) node.
	Node NodeID
	// Seq is the per-node monotonic report sequence number.
	Seq uint64
	// Value is the noised reading (reports only; 0 in ACKs).
	Value int64
	// Flags carries the report quality bits.
	Flags uint8
}

// frameLen is the wire size of one frame:
// kind(1) flags(1) node(2) seq(8) value(8) checksum(2).
const frameLen = 22

// frame is one wire buffer. Frames are pooled: Send draws from
// framePool, ownership travels through the receive queue, and the
// receiving end returns the buffer after decoding — the steady-state
// per-frame path allocates nothing.
type frame [frameLen]byte

var framePool = sync.Pool{New: func() any { return new(frame) }}

// ErrCorrupt reports a frame whose checksum does not match: bits were
// flipped in flight and the frame must be discarded.
var ErrCorrupt = errors.New("transport: corrupt frame")

// fletcher16 is the frame checksum (two running sums mod 255, the
// classic serial-link integrity check — cheap enough for a radio MCU
// and it catches all single-bit flips).
func fletcher16(b []byte) uint16 {
	// Deferred-modulo Fletcher: accumulate in 32-bit registers and
	// reduce once per block instead of twice per byte. s2 grows at
	// most n(n+1)/2·255 per block, so 4096-byte blocks cannot
	// overflow uint32; the congruence (and thus the checksum) is
	// identical to the byte-at-a-time form.
	var s1, s2 uint32
	for len(b) > 0 {
		n := len(b)
		if n > 4096 {
			n = 4096
		}
		for _, x := range b[:n] {
			s1 += uint32(x)
			s2 += s1
		}
		s1 %= 255
		s2 %= 255
		b = b[n:]
	}
	return uint16(s2)<<8 | uint16(s1)
}

// marshalInto encodes a packet into a pooled wire buffer. The layout
// is little-endian throughout, so the multi-byte fields compile to
// single stores.
func marshalInto(p Packet, b *frame) {
	b[0] = byte(p.Kind)
	b[1] = p.Flags
	binary.LittleEndian.PutUint16(b[2:4], uint16(p.Node))
	binary.LittleEndian.PutUint64(b[4:12], p.Seq)
	binary.LittleEndian.PutUint64(b[12:20], uint64(p.Value))
	sum := fletcher16(b[:frameLen-2])
	binary.LittleEndian.PutUint16(b[frameLen-2:frameLen], sum)
}

// Marshal encodes a packet into a fresh frame.
func Marshal(p Packet) []byte {
	var f frame
	marshalInto(p, &f)
	return append([]byte(nil), f[:]...)
}

// Unmarshal decodes a frame, verifying length and checksum.
func Unmarshal(b []byte) (Packet, error) {
	if len(b) != frameLen {
		return Packet{}, fmt.Errorf("transport: frame length %d, want %d: %w", len(b), frameLen, ErrCorrupt)
	}
	sum := binary.LittleEndian.Uint16(b[frameLen-2 : frameLen])
	if fletcher16(b[:frameLen-2]) != sum {
		return Packet{}, ErrCorrupt
	}
	var p Packet
	p.Kind = Kind(b[0])
	p.Flags = b[1]
	p.Node = NodeID(binary.LittleEndian.Uint16(b[2:4]))
	p.Seq = binary.LittleEndian.Uint64(b[4:12])
	p.Value = int64(binary.LittleEndian.Uint64(b[12:20]))
	if p.Kind != KindReport && p.Kind != KindAck {
		return Packet{}, fmt.Errorf("transport: unknown frame kind %d: %w", b[0], ErrCorrupt)
	}
	return p, nil
}

// Stats counts link events; read a snapshot with Link.Stats.
type Stats struct {
	// Sent counts frames offered to the link (both directions).
	Sent uint64
	// Delivered counts frames that reached a receive queue.
	Delivered uint64
	// Dropped counts chaos drops.
	Dropped uint64
	// Duplicated counts extra chaos copies delivered.
	Duplicated uint64
	// Reordered counts frames held back for later delivery.
	Reordered uint64
	// CorruptedInFlight counts frames whose payload was perturbed.
	CorruptedInFlight uint64
	// Overflow counts frames lost to a full receive queue
	// (backpressure; the sender's retry recovers them).
	Overflow uint64
	// RejectedCorrupt counts received frames discarded by checksum.
	RejectedCorrupt uint64
}

// LinkConfig parameterizes a Link.
type LinkConfig struct {
	// Plane supplies the packet injector (nil or no injector = a
	// perfect link). Install fault.LossyLink for probabilistic chaos
	// or a custom PacketFault for scripted schedules.
	Plane *fault.Plane
	// QueueCap bounds each direction's receive queue (default 64).
	QueueCap int
	// Obs is an optional telemetry plane, usually shared across every
	// link of a fleet. Nil costs one nil check per event.
	Obs *Metrics
}

// held is a frame waiting out its reorder delay.
type held struct {
	frame     *frame
	remaining int
}

// pipe is one direction of the link. Queued frames live in a bounded
// ring under mu — not a channel — so the event-driven receive path
// (TryRecv from the collector's reactor) is one mutexed pointer pop
// with no channel machinery. Blocking receivers announce themselves
// in waiters and park on the bell, which senders ring only on an
// empty→nonempty transition with a waiter present.
type pipe struct {
	mu   sync.Mutex
	held []held

	buf  []*frame // bounded receive ring
	head int      // buf[head] is the next frame out
	n    int      // frames queued

	waiters atomic.Int32  // blocked Recv calls
	bell    chan struct{} // cap-1 doorbell for those waiters

	// notify, when set, is fired (outside mu) after one or more frames
	// land in the ring: the receiving end's readiness hook. See
	// Endpoint.SetNotify.
	notify func()
}

// popLocked removes and returns the oldest queued frame (nil when
// empty). Callers hold mu.
func (p *pipe) popLocked() *frame {
	if p.n == 0 {
		return nil
	}
	f := p.buf[p.head]
	p.buf[p.head] = nil
	p.head = (p.head + 1) % len(p.buf)
	p.n--
	return f
}

// linkStats is the Stats schema with atomic fields: the per-frame
// hot path bumps counters without a shared mutex (four lock/unlock
// pairs per ACKed report on the old guarded struct).
type linkStats struct {
	sent, delivered, dropped, duplicated     atomic.Uint64
	reordered, corrupted, overflow, rejected atomic.Uint64
}

// Link is a bidirectional lossy hop between one node and the
// collector. Both ends may be driven from different goroutines; a
// single end must not be shared.
type Link struct {
	plane *fault.Plane
	obs   *Metrics
	up    *pipe
	down  *pipe
	stats linkStats
}

// NewLink builds a link.
func NewLink(cfg LinkConfig) *Link {
	cap := cfg.QueueCap
	if cap <= 0 {
		cap = 64
	}
	return &Link{
		plane: cfg.Plane,
		obs:   cfg.Obs,
		up:    &pipe{buf: make([]*frame, cap), bell: make(chan struct{}, 1)},
		down:  &pipe{buf: make([]*frame, cap), bell: make(chan struct{}, 1)},
	}
}

// Stats returns a snapshot of the link counters. Each counter is
// read atomically; the snapshot as a whole is not a single instant,
// which only matters while frames are still in flight.
func (l *Link) Stats() Stats {
	return Stats{
		Sent:              l.stats.sent.Load(),
		Delivered:         l.stats.delivered.Load(),
		Dropped:           l.stats.dropped.Load(),
		Duplicated:        l.stats.duplicated.Load(),
		Reordered:         l.stats.reordered.Load(),
		CorruptedInFlight: l.stats.corrupted.Load(),
		Overflow:          l.stats.overflow.Load(),
		RejectedCorrupt:   l.stats.rejected.Load(),
	}
}

// Endpoint is one end of a link. The node end sends up and receives
// down; the collector end is the mirror image. Endpoints are
// goroutine-safe: Send and Recv may run concurrently (the collector
// ACKs from its processor while a per-node goroutine receives).
type Endpoint struct {
	link     *Link
	sendPipe *pipe
	recvPipe *pipe
	sendDir  uint8
}

// NodeEnd returns the node-side endpoint.
func (l *Link) NodeEnd() *Endpoint {
	return &Endpoint{link: l, sendPipe: l.up, recvPipe: l.down, sendDir: fault.DirUp}
}

// CollectorEnd returns the collector-side endpoint.
func (l *Link) CollectorEnd() *Endpoint {
	return &Endpoint{link: l, sendPipe: l.down, recvPipe: l.up, sendDir: fault.DirDown}
}

// SetNotify installs a readiness hook on this end's receive
// direction: fn fires after one or more frames land in the receive
// queue (at most once per Send or flush, however many frames it
// delivered). The collector's reactor uses this to replace per-node
// busy-polling — it only touches links that announced pending frames.
//
// fn runs on the *sender's* goroutine (or whichever goroutine flushed
// holdbacks) and must be non-blocking and must not call back into
// this endpoint; the canonical implementation sets an atomic "armed"
// bit and does a non-blocking channel send. Passing nil removes the
// hook.
func (e *Endpoint) SetNotify(fn func()) {
	p := e.recvPipe
	p.mu.Lock()
	p.notify = fn
	p.mu.Unlock()
}

// Send offers one packet to the air. It never blocks and reports
// nothing about delivery — drops, duplication, reordering, corruption
// and queue overflow all look identical from the sender's side, which
// is exactly why the protocol above must retransmit until ACKed.
func (e *Endpoint) Send(p Packet) {
	l := e.link
	buf := framePool.Get().(*frame)
	marshalInto(p, buf)
	l.stats.sent.Add(1)
	if m := l.obs; m != nil {
		m.Sent.Inc()
	}

	var fate fault.PacketFate
	if l.plane != nil {
		fate = l.plane.PerturbPacket(e.sendDir, buf[:])
	}
	if fate.Corrupt {
		buf[(fate.FlipBit/8)%frameLen] ^= 1 << (fate.FlipBit % 8)
		l.stats.corrupted.Add(1)
		if m := l.obs; m != nil {
			m.Corrupted.Inc()
		}
	}

	p2 := e.sendPipe
	p2.mu.Lock()
	// Every send ages the holdbacks; expired frames deliver first so
	// a delayed frame lands behind at most Delay successors.
	landed := e.ageHeldLocked(p2)
	if fate.Drop {
		fn := p2.notify
		p2.mu.Unlock()
		framePool.Put(buf)
		l.stats.dropped.Add(1)
		if m := l.obs; m != nil {
			m.Dropped.Inc()
		}
		if landed > 0 && fn != nil {
			fn()
		}
		return
	}
	selfLanded := 0
	if fate.Delay > 0 {
		p2.held = append(p2.held, held{frame: buf, remaining: fate.Delay})
		l.stats.reordered.Add(1)
		if m := l.obs; m != nil {
			m.Reordered.Inc()
		}
	} else {
		n := e.enqueueLocked(p2, buf)
		landed += n
		selfLanded += n
	}
	for i := 0; i < fate.Duplicates; i++ {
		d := framePool.Get().(*frame)
		*d = *buf
		n := e.enqueueLocked(p2, d)
		landed += n
		selfLanded += n
		l.stats.duplicated.Add(1)
		if m := l.obs; m != nil {
			m.Duplicated.Inc()
		}
	}
	// A receivable copy of a report landed: stamp its span's link-rx
	// stage (p still holds the pre-corruption identity). The stamp must
	// precede the mutex release — the receiver can pop the frame the
	// instant the pipe unlocks, and the shard-admit stamp must not be
	// able to land before this one.
	if m := l.obs; m != nil && selfLanded > 0 && !fate.Corrupt && p.Kind == KindReport {
		m.Flight.Record(int64(p.Node), p.Seq, obs.StageLinkRx)
	}
	fn := p2.notify
	p2.mu.Unlock()
	if landed > 0 && fn != nil {
		fn()
	}
}

// ageHeldLocked decrements reorder holds and delivers the expired
// ones, reporting how many landed. Callers hold p.mu.
func (e *Endpoint) ageHeldLocked(p *pipe) int {
	landed := 0
	kept := p.held[:0]
	for _, h := range p.held {
		h.remaining--
		if h.remaining <= 0 {
			landed += e.landHeldLocked(p, h.frame)
		} else {
			kept = append(kept, h)
		}
	}
	p.held = kept
	return landed
}

// landHeldLocked delivers a held-back frame, stamping its report
// span's link-rx stage when a flight recorder is attached. The frame
// must be decoded *before* it enters the ring: once enqueued, the
// receiver owns the buffer and may return it to the pool. Held frames
// are rare (reorder chaos only), so the extra decode stays off the
// healthy path. Callers hold p.mu.
func (e *Endpoint) landHeldLocked(p *pipe, f *frame) int {
	var pk Packet
	stamp := false
	if m := e.link.obs; m != nil && m.Flight != nil {
		if q, err := Unmarshal(f[:]); err == nil && q.Kind == KindReport {
			pk, stamp = q, true
		}
	}
	n := e.enqueueLocked(p, f)
	if n == 1 && stamp {
		e.link.obs.Flight.Record(int64(pk.Node), pk.Seq, obs.StageLinkRx)
	}
	return n
}

// enqueueLocked pushes a frame into the receive ring, dropping on
// overflow (bounded queue backpressure), and reports 1 if the frame
// landed. The bell rings only when the ring turns nonempty with a
// blocked Recv present — the event-driven path pays no doorbell cost.
// Callers hold p.mu.
func (e *Endpoint) enqueueLocked(p *pipe, f *frame) int {
	if p.n == len(p.buf) {
		framePool.Put(f)
		e.link.stats.overflow.Add(1)
		if m := e.link.obs; m != nil {
			m.Overflow.Inc()
		}
		return 0
	}
	p.buf[(p.head+p.n)%len(p.buf)] = f
	p.n++
	e.link.stats.delivered.Add(1)
	if m := e.link.obs; m != nil {
		m.Delivered.Inc()
	}
	if p.n == 1 && p.waiters.Load() != 0 {
		select {
		case p.bell <- struct{}{}:
		default:
		}
	}
	return 1
}

// FlushHeld releases every holdback on this end's receive direction
// immediately: the direction has drained, so "wait for later frames"
// can no longer complete and the delayed frames simply arrive late.
// Recv does this implicitly at its deadline; event-driven receivers
// (which never block in Recv) call it from their idle tick so a
// reorder holdback on a now-silent link is late, never lost.
func (e *Endpoint) FlushHeld() { e.flushHeld() }

func (e *Endpoint) flushHeld() {
	p := e.recvPipe
	p.mu.Lock()
	landed := 0
	for _, h := range p.held {
		landed += e.landHeldLocked(p, h.frame)
	}
	p.held = nil
	fn := p.notify
	p.mu.Unlock()
	if landed > 0 && fn != nil {
		fn()
	}
}

// Recv waits up to timeout for the next valid frame on this end.
// Corrupt frames are discarded (counted in Stats) without consuming
// the timeout budget's purpose: the wait continues until a valid frame
// or the deadline. When the queue idles past the deadline, any frames
// still held back for reordering are flushed and collected — a delayed
// frame is late, never lost.
func (e *Endpoint) Recv(timeout time.Duration) (Packet, bool) {
	if p, ok := e.TryRecv(); ok {
		return p, true
	}
	pi := e.recvPipe
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	// Announce the wait before the re-check: a sender that enqueued
	// after our TryRecv either sees waiters != 0 and rings the bell,
	// or enqueued before the re-check sees its frame. Stale bell
	// tokens from past waits only cause one spurious loop.
	pi.waiters.Add(1)
	defer pi.waiters.Add(-1)
	for {
		if p, ok := e.TryRecv(); ok {
			return p, true
		}
		select {
		case <-pi.bell:
			// The ring went nonempty at some point; re-check.
		case <-deadline.C:
			// Last chance: release holdbacks and drain what is
			// already queued. Never re-enter the select here — the
			// timer has fired and would never fire again.
			e.flushHeld()
			return e.TryRecv()
		}
	}
}

// Pending reports the number of frames queued or held back on this
// end's receive direction — the fleet's quiesce loop polls it to know
// when the air has gone truly silent before taking final snapshots.
func (e *Endpoint) Pending() int {
	p := e.recvPipe
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n + len(p.held)
}

// TryRecv is Recv without waiting: it drains at most the frames
// already queued.
func (e *Endpoint) TryRecv() (Packet, bool) {
	pi := e.recvPipe
	for {
		pi.mu.Lock()
		f := pi.popLocked()
		pi.mu.Unlock()
		if f == nil {
			return Packet{}, false
		}
		if p, ok := e.decode(f); ok {
			return p, true
		}
	}
}

// decode unmarshals a received frame and returns its buffer to the
// pool; corrupt frames are counted and reported as !ok.
func (e *Endpoint) decode(f *frame) (Packet, bool) {
	p, err := Unmarshal(f[:])
	framePool.Put(f)
	if err != nil {
		e.link.stats.rejected.Add(1)
		if m := e.link.obs; m != nil {
			m.RejectedCorrupt.Inc()
		}
		return Packet{}, false
	}
	return p, true
}
