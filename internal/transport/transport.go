// Package transport is the fleet's in-process lossy link: a simulated
// radio hop between one ULP node and the collector, with drops,
// duplication, reordering, corruption and latency jitter injected
// through the internal/fault packet site so chaos schedules are seeded
// and reproducible.
//
// The link carries 22-byte frames (one report or ACK each) on two
// directions — up (node → collector) and down (collector → node) —
// through bounded queues. A full queue behaves like the air going
// busy: the frame vanishes and the sender's retry loop recovers it,
// exactly as it recovers a chaos drop. Nothing on the link is
// reliable; reliability is the ReportAgent/Collector protocol's job
// (at-least-once delivery, at-most-once noising, idempotent dedup).
//
// Reordering is slot-based rather than wall-clock-based: a delayed
// frame is held back until a configured number of later frames pass
// it (or the direction drains), which models latency jitter without
// timers and keeps chaos sweeps deterministic per seed.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ulpdp/internal/fault"
)

// NodeID identifies one fleet node.
type NodeID uint16

// Kind is the frame type.
type Kind uint8

const (
	// KindReport is a node → collector noised report.
	KindReport Kind = 1
	// KindAck is a collector → node acknowledgement of (node, seq).
	KindAck Kind = 2
)

// Report flag bits, mirroring the DP-Box STATUS quality bits.
const (
	// FlagDegraded marks a release from the resample watchdog's
	// certified thresholding clamp.
	FlagDegraded = 1 << 0
	// FlagFromCache marks a zero-charge cache replay (budget
	// exhausted or URNG gate closed).
	FlagFromCache = 1 << 1
	// FlagUnhealthy marks a report sent while the node's URNG health
	// battery was failing.
	FlagUnhealthy = 1 << 2
)

// Packet is one decoded frame.
type Packet struct {
	// Kind is the frame type.
	Kind Kind
	// Node is the sending (for reports) or addressed (for ACKs) node.
	Node NodeID
	// Seq is the per-node monotonic report sequence number.
	Seq uint64
	// Value is the noised reading (reports only; 0 in ACKs).
	Value int64
	// Flags carries the report quality bits.
	Flags uint8
}

// frameLen is the wire size of one frame:
// kind(1) flags(1) node(2) seq(8) value(8) checksum(2).
const frameLen = 22

// ErrCorrupt reports a frame whose checksum does not match: bits were
// flipped in flight and the frame must be discarded.
var ErrCorrupt = errors.New("transport: corrupt frame")

// fletcher16 is the frame checksum (two running sums mod 255, the
// classic serial-link integrity check — cheap enough for a radio MCU
// and it catches all single-bit flips).
func fletcher16(b []byte) uint16 {
	var s1, s2 uint16
	for _, x := range b {
		s1 = (s1 + uint16(x)) % 255
		s2 = (s2 + s1) % 255
	}
	return s2<<8 | s1
}

// Marshal encodes a packet into a fresh frame.
func Marshal(p Packet) []byte {
	b := make([]byte, frameLen)
	b[0] = byte(p.Kind)
	b[1] = p.Flags
	b[2], b[3] = byte(p.Node), byte(p.Node>>8)
	for i := 0; i < 8; i++ {
		b[4+i] = byte(p.Seq >> (8 * i))
	}
	u := uint64(p.Value)
	for i := 0; i < 8; i++ {
		b[12+i] = byte(u >> (8 * i))
	}
	sum := fletcher16(b[:frameLen-2])
	b[frameLen-2], b[frameLen-1] = byte(sum), byte(sum>>8)
	return b
}

// Unmarshal decodes a frame, verifying length and checksum.
func Unmarshal(b []byte) (Packet, error) {
	if len(b) != frameLen {
		return Packet{}, fmt.Errorf("transport: frame length %d, want %d: %w", len(b), frameLen, ErrCorrupt)
	}
	sum := uint16(b[frameLen-2]) | uint16(b[frameLen-1])<<8
	if fletcher16(b[:frameLen-2]) != sum {
		return Packet{}, ErrCorrupt
	}
	var p Packet
	p.Kind = Kind(b[0])
	p.Flags = b[1]
	p.Node = NodeID(uint16(b[2]) | uint16(b[3])<<8)
	for i := 0; i < 8; i++ {
		p.Seq |= uint64(b[4+i]) << (8 * i)
	}
	var u uint64
	for i := 0; i < 8; i++ {
		u |= uint64(b[12+i]) << (8 * i)
	}
	p.Value = int64(u)
	if p.Kind != KindReport && p.Kind != KindAck {
		return Packet{}, fmt.Errorf("transport: unknown frame kind %d: %w", b[0], ErrCorrupt)
	}
	return p, nil
}

// Stats counts link events; read a snapshot with Link.Stats.
type Stats struct {
	// Sent counts frames offered to the link (both directions).
	Sent uint64
	// Delivered counts frames that reached a receive queue.
	Delivered uint64
	// Dropped counts chaos drops.
	Dropped uint64
	// Duplicated counts extra chaos copies delivered.
	Duplicated uint64
	// Reordered counts frames held back for later delivery.
	Reordered uint64
	// CorruptedInFlight counts frames whose payload was perturbed.
	CorruptedInFlight uint64
	// Overflow counts frames lost to a full receive queue
	// (backpressure; the sender's retry recovers them).
	Overflow uint64
	// RejectedCorrupt counts received frames discarded by checksum.
	RejectedCorrupt uint64
}

// LinkConfig parameterizes a Link.
type LinkConfig struct {
	// Plane supplies the packet injector (nil or no injector = a
	// perfect link). Install fault.LossyLink for probabilistic chaos
	// or a custom PacketFault for scripted schedules.
	Plane *fault.Plane
	// QueueCap bounds each direction's receive queue (default 64).
	QueueCap int
	// Obs is an optional telemetry plane, usually shared across every
	// link of a fleet. Nil costs one nil check per event.
	Obs *Metrics
}

// held is a frame waiting out its reorder delay.
type held struct {
	frame     []byte
	remaining int
}

// pipe is one direction of the link.
type pipe struct {
	mu   sync.Mutex
	held []held
	ch   chan []byte
}

// Link is a bidirectional lossy hop between one node and the
// collector. Both ends may be driven from different goroutines; a
// single end must not be shared.
type Link struct {
	plane *fault.Plane
	obs   *Metrics
	up    *pipe
	down  *pipe

	statMu sync.Mutex
	stats  Stats
}

// NewLink builds a link.
func NewLink(cfg LinkConfig) *Link {
	cap := cfg.QueueCap
	if cap <= 0 {
		cap = 64
	}
	return &Link{
		plane: cfg.Plane,
		obs:   cfg.Obs,
		up:    &pipe{ch: make(chan []byte, cap)},
		down:  &pipe{ch: make(chan []byte, cap)},
	}
}

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() Stats {
	l.statMu.Lock()
	defer l.statMu.Unlock()
	return l.stats
}

func (l *Link) count(f func(*Stats)) {
	l.statMu.Lock()
	f(&l.stats)
	l.statMu.Unlock()
}

// Endpoint is one end of a link. The node end sends up and receives
// down; the collector end is the mirror image. Endpoints are
// goroutine-safe: Send and Recv may run concurrently (the collector
// ACKs from its processor while a per-node goroutine receives).
type Endpoint struct {
	link     *Link
	sendPipe *pipe
	recvPipe *pipe
	sendDir  uint8
}

// NodeEnd returns the node-side endpoint.
func (l *Link) NodeEnd() *Endpoint {
	return &Endpoint{link: l, sendPipe: l.up, recvPipe: l.down, sendDir: fault.DirUp}
}

// CollectorEnd returns the collector-side endpoint.
func (l *Link) CollectorEnd() *Endpoint {
	return &Endpoint{link: l, sendPipe: l.down, recvPipe: l.up, sendDir: fault.DirDown}
}

// Send offers one packet to the air. It never blocks and reports
// nothing about delivery — drops, duplication, reordering, corruption
// and queue overflow all look identical from the sender's side, which
// is exactly why the protocol above must retransmit until ACKed.
func (e *Endpoint) Send(p Packet) {
	l := e.link
	frame := Marshal(p)
	l.count(func(s *Stats) { s.Sent++ })
	if m := l.obs; m != nil {
		m.Sent.Inc()
	}

	var fate fault.PacketFate
	if l.plane != nil {
		fate = l.plane.PerturbPacket(e.sendDir, frame)
	}
	if fate.Corrupt {
		frame[(fate.FlipBit/8)%frameLen] ^= 1 << (fate.FlipBit % 8)
		l.count(func(s *Stats) { s.CorruptedInFlight++ })
		if m := l.obs; m != nil {
			m.Corrupted.Inc()
		}
	}

	p2 := e.sendPipe
	p2.mu.Lock()
	// Every send ages the holdbacks; expired frames deliver first so
	// a delayed frame lands behind at most Delay successors.
	e.ageHeldLocked(p2)
	if fate.Drop {
		p2.mu.Unlock()
		l.count(func(s *Stats) { s.Dropped++ })
		if m := l.obs; m != nil {
			m.Dropped.Inc()
		}
		return
	}
	if fate.Delay > 0 {
		p2.held = append(p2.held, held{frame: frame, remaining: fate.Delay})
		l.count(func(s *Stats) { s.Reordered++ })
		if m := l.obs; m != nil {
			m.Reordered.Inc()
		}
	} else {
		e.enqueueLocked(p2, frame)
	}
	for i := 0; i < fate.Duplicates; i++ {
		e.enqueueLocked(p2, append([]byte(nil), frame...))
		l.count(func(s *Stats) { s.Duplicated++ })
		if m := l.obs; m != nil {
			m.Duplicated.Inc()
		}
	}
	p2.mu.Unlock()
}

// ageHeldLocked decrements reorder holds and delivers the expired
// ones. Callers hold p.mu.
func (e *Endpoint) ageHeldLocked(p *pipe) {
	kept := p.held[:0]
	for _, h := range p.held {
		h.remaining--
		if h.remaining <= 0 {
			e.enqueueLocked(p, h.frame)
		} else {
			kept = append(kept, h)
		}
	}
	p.held = kept
}

// enqueueLocked pushes a frame into the receive queue, dropping on
// overflow (bounded queue backpressure). Callers hold p.mu.
func (e *Endpoint) enqueueLocked(p *pipe, frame []byte) {
	select {
	case p.ch <- frame:
		e.link.count(func(s *Stats) { s.Delivered++ })
		if m := e.link.obs; m != nil {
			m.Delivered.Inc()
		}
	default:
		e.link.count(func(s *Stats) { s.Overflow++ })
		if m := e.link.obs; m != nil {
			m.Overflow.Inc()
		}
	}
}

// flushHeld releases every holdback immediately: the direction has
// drained, so "wait for later frames" can no longer complete and the
// delayed frames simply arrive late.
func (e *Endpoint) flushHeld() {
	p := e.recvPipe
	p.mu.Lock()
	for _, h := range p.held {
		e.enqueueLocked(p, h.frame)
	}
	p.held = nil
	p.mu.Unlock()
}

// Recv waits up to timeout for the next valid frame on this end.
// Corrupt frames are discarded (counted in Stats) without consuming
// the timeout budget's purpose: the wait continues until a valid frame
// or the deadline. When the queue idles past the deadline, any frames
// still held back for reordering are flushed and collected — a delayed
// frame is late, never lost.
func (e *Endpoint) Recv(timeout time.Duration) (Packet, bool) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case frame := <-e.recvPipe.ch:
			p, err := Unmarshal(frame)
			if err != nil {
				e.link.count(func(s *Stats) { s.RejectedCorrupt++ })
				if m := e.link.obs; m != nil {
					m.RejectedCorrupt.Inc()
				}
				continue
			}
			return p, true
		case <-deadline.C:
			// Last chance: release holdbacks and drain what is
			// already queued. Never re-enter the select here — the
			// timer has fired and would never fire again.
			e.flushHeld()
			return e.TryRecv()
		}
	}
}

// TryRecv is Recv without waiting: it drains at most the frames
// already queued.
func (e *Endpoint) TryRecv() (Packet, bool) {
	for {
		select {
		case frame := <-e.recvPipe.ch:
			p, err := Unmarshal(frame)
			if err != nil {
				e.link.count(func(s *Stats) { s.RejectedCorrupt++ })
				if m := e.link.obs; m != nil {
					m.RejectedCorrupt.Inc()
				}
				continue
			}
			return p, true
		default:
			return Packet{}, false
		}
	}
}
