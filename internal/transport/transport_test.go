package transport

import (
	"testing"
	"time"

	"ulpdp/internal/fault"
)

func TestMarshalRoundTrip(t *testing.T) {
	pkts := []Packet{
		{Kind: KindReport, Node: 7, Seq: 0, Value: -123, Flags: FlagDegraded},
		{Kind: KindReport, Node: 65535, Seq: 1<<63 + 17, Value: 1<<40 + 5, Flags: FlagFromCache | FlagUnhealthy},
		{Kind: KindAck, Node: 0, Seq: 42},
	}
	for _, want := range pkts {
		got, err := Unmarshal(Marshal(want))
		if err != nil {
			t.Fatalf("unmarshal(%+v): %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	frame := Marshal(Packet{Kind: KindReport, Node: 3, Seq: 9, Value: 77})
	for bit := 0; bit < len(frame)*8; bit++ {
		mut := append([]byte(nil), frame...)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, err := Unmarshal(mut); err == nil {
			t.Fatalf("bit flip %d accepted", bit)
		}
	}
	if _, err := Unmarshal(frame[:frameLen-1]); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestPerfectLinkDelivers(t *testing.T) {
	l := NewLink(LinkConfig{})
	nodeEnd, collEnd := l.NodeEnd(), l.CollectorEnd()

	for seq := uint64(0); seq < 10; seq++ {
		nodeEnd.Send(Packet{Kind: KindReport, Node: 1, Seq: seq, Value: int64(seq) * 3})
	}
	for seq := uint64(0); seq < 10; seq++ {
		p, ok := collEnd.Recv(time.Second)
		if !ok {
			t.Fatalf("seq %d: no frame", seq)
		}
		if p.Seq != seq || p.Value != int64(seq)*3 {
			t.Fatalf("seq %d: got %+v", seq, p)
		}
	}
	collEnd.Send(Packet{Kind: KindAck, Node: 1, Seq: 9})
	ack, ok := nodeEnd.Recv(time.Second)
	if !ok || ack.Kind != KindAck || ack.Seq != 9 {
		t.Fatalf("ack: ok=%v %+v", ok, ack)
	}
	st := l.Stats()
	if st.Dropped != 0 || st.Duplicated != 0 || st.Reordered != 0 || st.Overflow != 0 || st.RejectedCorrupt != 0 {
		t.Fatalf("perfect link perturbed something: %+v", st)
	}
	if st.Sent != 11 || st.Delivered != 11 {
		t.Fatalf("sent/delivered: %+v", st)
	}
}

// chaosLink builds a link over a seeded lossy profile.
func chaosLink(seed uint64, prof fault.LinkProfile, queueCap int) *Link {
	fp := fault.NewPlane()
	fp.SetPacketFault(fault.LossyLink(seed, prof))
	return NewLink(LinkConfig{Plane: fp, QueueCap: queueCap})
}

func TestLossyLinkLosesAndCorrupts(t *testing.T) {
	prof := fault.LinkProfile{Drop: 0.3, Duplicate: 0.2, Reorder: 0.2, Corrupt: 0.1, MaxDelay: 3}
	l := chaosLink(0xC0FFEE, prof, 4096)
	nodeEnd, collEnd := l.NodeEnd(), l.CollectorEnd()

	const n = 2000
	for seq := uint64(0); seq < n; seq++ {
		nodeEnd.Send(Packet{Kind: KindReport, Node: 1, Seq: seq, Value: int64(seq)})
	}
	seen := make(map[uint64]int)
	for {
		p, ok := collEnd.Recv(20 * time.Millisecond)
		if !ok {
			break
		}
		if p.Value != int64(p.Seq) {
			t.Fatalf("valid frame with mismatched payload: %+v", p)
		}
		seen[p.Seq]++
	}

	st := l.Stats()
	if st.Dropped == 0 || st.Duplicated == 0 || st.Reordered == 0 || st.CorruptedInFlight == 0 {
		t.Fatalf("chaos injected nothing: %+v", st)
	}
	// Frames that were neither dropped nor corrupted must arrive;
	// corrupt ones must be rejected by checksum, never mis-decoded.
	if st.RejectedCorrupt == 0 {
		t.Fatalf("no corrupt frame reached the checksum: %+v", st)
	}
	delivered := uint64(len(seen))
	if delivered == 0 || delivered == n {
		t.Fatalf("implausible delivery count %d of %d (%+v)", delivered, n, st)
	}
	dups := 0
	for _, c := range seen {
		if c > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Fatalf("no duplicate deliveries observed: %+v", st)
	}
}

func TestReorderedFrameIsLateNeverLost(t *testing.T) {
	// Scripted fate: delay the first up-frame by 2 slots, deliver the
	// rest untouched.
	fp := fault.NewPlane()
	first := true
	fp.SetPacketFault(func(n uint64, dir uint8, payload []byte) fault.PacketFate {
		if dir == fault.DirUp && first {
			first = false
			return fault.PacketFate{Delay: 2}
		}
		return fault.PacketFate{}
	})
	l := NewLink(LinkConfig{Plane: fp})
	nodeEnd, collEnd := l.NodeEnd(), l.CollectorEnd()

	nodeEnd.Send(Packet{Kind: KindReport, Node: 1, Seq: 0})
	nodeEnd.Send(Packet{Kind: KindReport, Node: 1, Seq: 1})

	// Seq 1 overtakes seq 0, which is still held back (only one
	// subsequent send has aged it).
	p, ok := collEnd.Recv(time.Second)
	if !ok || p.Seq != 1 {
		t.Fatalf("first delivery: ok=%v %+v", ok, p)
	}
	// The direction has drained; the Recv deadline flushes the held
	// frame rather than losing it.
	p, ok = collEnd.Recv(20 * time.Millisecond)
	if !ok || p.Seq != 0 {
		t.Fatalf("held frame not flushed: ok=%v %+v", ok, p)
	}
}

func TestBoundedQueueOverflows(t *testing.T) {
	l := NewLink(LinkConfig{QueueCap: 4})
	nodeEnd, collEnd := l.NodeEnd(), l.CollectorEnd()
	for seq := uint64(0); seq < 10; seq++ {
		nodeEnd.Send(Packet{Kind: KindReport, Node: 1, Seq: seq})
	}
	st := l.Stats()
	if st.Overflow != 6 || st.Delivered != 4 {
		t.Fatalf("overflow accounting: %+v", st)
	}
	for seq := uint64(0); seq < 4; seq++ {
		p, ok := collEnd.TryRecv()
		if !ok || p.Seq != seq {
			t.Fatalf("queued frame %d: ok=%v %+v", seq, ok, p)
		}
	}
	if _, ok := collEnd.TryRecv(); ok {
		t.Fatal("overflowed frame delivered")
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	prof := fault.LinkProfile{Drop: 0.25, Duplicate: 0.15, Reorder: 0.2, Corrupt: 0.05, MaxDelay: 4}
	run := func() []Packet {
		l := chaosLink(42, prof, 4096)
		nodeEnd, collEnd := l.NodeEnd(), l.CollectorEnd()
		for seq := uint64(0); seq < 500; seq++ {
			nodeEnd.Send(Packet{Kind: KindReport, Node: 9, Seq: seq, Value: int64(seq) * 7})
		}
		var got []Packet
		for {
			p, ok := collEnd.Recv(10 * time.Millisecond)
			if !ok {
				return got
			}
			got = append(got, p)
		}
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
