package fixed

import (
	"fmt"
	"math"
)

// Num is a value in a fixed-point Format. The zero Num is the value 0
// in the degenerate zero Format and is not usable for arithmetic;
// construct Nums with FromRaw, FromFloat or FromInt.
type Num struct {
	raw int64
	fmt Format
}

// FromRaw builds a Num from a raw integer, saturating to the format's
// range.
func FromRaw(raw int64, f Format) Num {
	return Num{raw: clampRaw(raw, f), fmt: f}
}

// FromFloat quantizes x onto f's grid with rounding mode m,
// saturating at the representable range. NaN maps to zero.
func FromFloat(x float64, f Format, m RoundMode) Num {
	if math.IsNaN(x) {
		return Num{fmt: f}
	}
	scaled := roundScaled(math.Ldexp(x, f.Frac), m)
	if scaled > float64(f.MaxRaw()) {
		return Num{raw: f.MaxRaw(), fmt: f}
	}
	if scaled < float64(f.MinRaw()) {
		return Num{raw: f.MinRaw(), fmt: f}
	}
	return Num{raw: int64(scaled), fmt: f}
}

// FromInt builds the Num representing the integer v, saturating.
func FromInt(v int64, f Format) Num {
	if shiftWouldOverflow(v, f) {
		if v > 0 {
			return Num{raw: f.MaxRaw(), fmt: f}
		}
		return Num{raw: f.MinRaw(), fmt: f}
	}
	return Num{raw: v << uint(f.Frac), fmt: f}
}

func shiftWouldOverflow(v int64, f Format) bool {
	shifted := v << uint(f.Frac)
	return shifted>>uint(f.Frac) != v || shifted > f.MaxRaw() || shifted < f.MinRaw()
}

func clampRaw(raw int64, f Format) int64 {
	if raw > f.MaxRaw() {
		return f.MaxRaw()
	}
	if raw < f.MinRaw() {
		return f.MinRaw()
	}
	return raw
}

// Raw returns the underlying integer representation.
func (n Num) Raw() int64 { return n.raw }

// Format returns the Num's format.
func (n Num) Format() Format { return n.fmt }

// Float returns the value as a float64. Exact for Width <= 53.
func (n Num) Float() float64 { return math.Ldexp(float64(n.raw), -n.fmt.Frac) }

// Int returns the value truncated toward zero to an integer.
func (n Num) Int() int64 {
	if n.raw >= 0 {
		return n.raw >> uint(n.fmt.Frac)
	}
	return -((-n.raw) >> uint(n.fmt.Frac))
}

// IsZero reports whether the value is exactly zero.
func (n Num) IsZero() bool { return n.raw == 0 }

// Sign returns -1, 0 or +1.
func (n Num) Sign() int {
	switch {
	case n.raw < 0:
		return -1
	case n.raw > 0:
		return 1
	}
	return 0
}

// Neg returns -n, saturating (the minimum raw value has no negation).
func (n Num) Neg() Num { return Num{raw: clampRaw(-n.raw, n.fmt), fmt: n.fmt} }

// Abs returns |n|, saturating.
func (n Num) Abs() Num {
	if n.raw < 0 {
		return n.Neg()
	}
	return n
}

// Cmp compares two Nums of the same format: -1 if n < o, 0 if equal,
// +1 if n > o. It panics on format mismatch, which always indicates a
// wiring bug in the datapath model.
func (n Num) Cmp(o Num) int {
	mustSameFormat(n, o)
	switch {
	case n.raw < o.raw:
		return -1
	case n.raw > o.raw:
		return 1
	}
	return 0
}

func mustSameFormat(a, b Num) {
	if a.fmt != b.fmt {
		panic(fmt.Sprintf("fixed: format mismatch %v vs %v", a.fmt, b.fmt))
	}
}

// Add returns n+o with saturation. Formats must match.
func (n Num) Add(o Num) Num {
	mustSameFormat(n, o)
	return Num{raw: clampRaw(n.raw+o.raw, n.fmt), fmt: n.fmt}
}

// Sub returns n-o with saturation. Formats must match.
func (n Num) Sub(o Num) Num {
	mustSameFormat(n, o)
	return Num{raw: clampRaw(n.raw-o.raw, n.fmt), fmt: n.fmt}
}

// Mul returns n*o rounded with mode m and saturated, in n's format.
// The intermediate product is exact (both operands are <= MaxWidth
// bits so the int64 product cannot overflow).
func (n Num) Mul(o Num, m RoundMode) Num {
	mustSameFormat(n, o)
	prod := n.raw * o.raw // value = prod * 2^(-2*Frac)
	return Num{raw: clampRaw(rshiftRound(prod, n.fmt.Frac, m), n.fmt), fmt: n.fmt}
}

// Div returns n/o rounded with mode m and saturated, in n's format.
// Division by zero saturates to the sign of n (hardware dividers
// typically flag this; the DP-Box never divides by zero by design).
func (n Num) Div(o Num, m RoundMode) Num {
	mustSameFormat(n, o)
	if o.raw == 0 {
		if n.raw >= 0 {
			return Num{raw: n.fmt.MaxRaw(), fmt: n.fmt}
		}
		return Num{raw: n.fmt.MinRaw(), fmt: n.fmt}
	}
	// value = (n.raw / o.raw); to keep Frac fractional bits compute
	// (n.raw << Frac) / o.raw with rounding.
	num := n.raw << uint(n.fmt.Frac)
	q := divRound(num, o.raw, m)
	return Num{raw: clampRaw(q, n.fmt), fmt: n.fmt}
}

// Shl returns n << k (multiply by 2^k), saturating.
func (n Num) Shl(k int) Num {
	if k < 0 {
		return n.Shr(-k, RoundZero)
	}
	raw := n.raw
	for i := 0; i < k; i++ {
		raw <<= 1
		if raw > n.fmt.MaxRaw() {
			return Num{raw: n.fmt.MaxRaw(), fmt: n.fmt}
		}
		if raw < n.fmt.MinRaw() {
			return Num{raw: n.fmt.MinRaw(), fmt: n.fmt}
		}
	}
	return Num{raw: raw, fmt: n.fmt}
}

// Shr returns n >> k (divide by 2^k) with rounding mode m.
func (n Num) Shr(k int, m RoundMode) Num {
	if k < 0 {
		return n.Shl(-k)
	}
	return Num{raw: clampRaw(rshiftRound(n.raw, k, m), n.fmt), fmt: n.fmt}
}

// Convert re-quantizes n into format f with rounding mode m,
// saturating.
func (n Num) Convert(f Format, m RoundMode) Num {
	if f == n.fmt {
		return n
	}
	shift := f.Frac - n.fmt.Frac
	var raw int64
	if shift >= 0 {
		if shift >= 63 {
			raw = 0
		} else {
			raw = n.raw << uint(shift)
			if raw>>uint(shift) != n.raw { // overflow in the shift
				if n.raw > 0 {
					raw = f.MaxRaw() + 1 // force saturation below
				} else {
					raw = f.MinRaw() - 1
				}
			}
		}
	} else {
		raw = rshiftRound(n.raw, -shift, m)
	}
	return Num{raw: clampRaw(raw, f), fmt: f}
}

// String implements fmt.Stringer.
func (n Num) String() string {
	return fmt.Sprintf("%g[%v]", n.Float(), n.fmt)
}

// rshiftRound computes round(v / 2^k) under mode m, exactly.
func rshiftRound(v int64, k int, m RoundMode) int64 {
	if k <= 0 {
		return v << uint(-k)
	}
	if k >= 63 {
		// Degenerate: the quotient magnitude is < 1 for any int64.
		switch m {
		case RoundDown:
			if v < 0 {
				return -1
			}
			return 0
		case RoundUp:
			if v > 0 {
				return 1
			}
			return 0
		default:
			return 0
		}
	}
	div := int64(1) << uint(k)
	return divRound(v, div, m)
}

// divRound computes round(a/b) under mode m, exactly, for b != 0.
func divRound(a, b int64, m RoundMode) int64 {
	q := a / b
	r := a % b
	if r == 0 {
		return q
	}
	neg := (a < 0) != (b < 0)
	switch m {
	case RoundZero:
		return q
	case RoundDown:
		if neg {
			return q - 1
		}
		return q
	case RoundUp:
		if neg {
			return q
		}
		return q + 1
	case RoundNearestAway, RoundNearestEven:
		// Compare |2r| against |b|.
		r2 := r
		if r2 < 0 {
			r2 = -r2
		}
		babs := b
		if babs < 0 {
			babs = -babs
		}
		twice := 2 * r2
		if twice > babs || (twice == babs && m == RoundNearestAway) {
			if neg {
				return q - 1
			}
			return q + 1
		}
		if twice == babs && m == RoundNearestEven {
			// Tie: choose the even neighbour.
			lo, hi := q, q
			if neg {
				lo = q - 1
			} else {
				hi = q + 1
			}
			if lo%2 == 0 {
				return lo
			}
			return hi
		}
		return q
	}
	return q
}
