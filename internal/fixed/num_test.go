package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFormatValidate(t *testing.T) {
	tests := []struct {
		name string
		f    Format
		ok   bool
	}{
		{"q4.15", Q(4, 15), true},
		{"minimal", Format{Width: 2, Frac: 0}, true},
		{"max width", Format{Width: MaxWidth, Frac: 10}, true},
		{"too narrow", Format{Width: 1, Frac: 0}, false},
		{"too wide", Format{Width: MaxWidth + 1, Frac: 0}, false},
		{"frac eats sign", Format{Width: 8, Frac: 8}, false},
		{"negative frac", Format{Width: 8, Frac: -1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.f.Validate()
			if (err == nil) != tt.ok {
				t.Fatalf("Validate(%v) = %v, want ok=%v", tt.f, err, tt.ok)
			}
		})
	}
}

func TestFormatDerived(t *testing.T) {
	f := Q(4, 15) // width 20
	if f.Width != 20 {
		t.Errorf("width = %d, want 20", f.Width)
	}
	if f.IntBits() != 4 {
		t.Errorf("int bits = %d, want 4", f.IntBits())
	}
	if got := f.Step(); got != math.Ldexp(1, -15) {
		t.Errorf("step = %g", got)
	}
	if f.MaxRaw() != (1<<19)-1 {
		t.Errorf("max raw = %d", f.MaxRaw())
	}
	if f.MinRaw() != -(1 << 19) {
		t.Errorf("min raw = %d", f.MinRaw())
	}
	if f.MaxValue() <= 15.9 || f.MaxValue() >= 16 {
		t.Errorf("max value = %g, want just under 16", f.MaxValue())
	}
	if f.MinValue() != -16 {
		t.Errorf("min value = %g, want -16", f.MinValue())
	}
}

func TestFromFloatRounding(t *testing.T) {
	f := Q(6, 2) // step 0.25
	tests := []struct {
		x    float64
		m    RoundMode
		want float64
	}{
		{1.30, RoundNearestAway, 1.25},
		{1.375, RoundNearestAway, 1.5},
		{-1.375, RoundNearestAway, -1.5},
		{1.375, RoundNearestEven, 1.5},
		{1.125, RoundNearestEven, 1.0},
		{1.30, RoundDown, 1.25},
		{-1.30, RoundDown, -1.5},
		{1.30, RoundUp, 1.5},
		{-1.30, RoundUp, -1.25},
		{1.99, RoundZero, 1.75},
		{-1.99, RoundZero, -1.75},
	}
	for _, tt := range tests {
		got := FromFloat(tt.x, f, tt.m).Float()
		if got != tt.want {
			t.Errorf("FromFloat(%g,%v) = %g, want %g", tt.x, tt.m, got, tt.want)
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	f := Q(3, 4)
	if got := FromFloat(1000, f, RoundNearestAway); got.Raw() != f.MaxRaw() {
		t.Errorf("overflow: raw = %d, want %d", got.Raw(), f.MaxRaw())
	}
	if got := FromFloat(-1000, f, RoundNearestAway); got.Raw() != f.MinRaw() {
		t.Errorf("underflow: raw = %d, want %d", got.Raw(), f.MinRaw())
	}
	if got := FromFloat(math.NaN(), f, RoundNearestAway); !got.IsZero() {
		t.Errorf("NaN should map to zero, got %v", got)
	}
	if got := FromFloat(math.Inf(1), f, RoundNearestAway); got.Raw() != f.MaxRaw() {
		t.Errorf("+inf should saturate, got %v", got)
	}
}

func TestFromInt(t *testing.T) {
	f := Q(5, 8)
	if got := FromInt(7, f).Float(); got != 7 {
		t.Errorf("FromInt(7) = %g", got)
	}
	if got := FromInt(-3, f).Float(); got != -3 {
		t.Errorf("FromInt(-3) = %g", got)
	}
	if got := FromInt(1<<40, f); got.Raw() != f.MaxRaw() {
		t.Errorf("FromInt huge should saturate, got %v", got)
	}
	if got := FromInt(-(1 << 40), f); got.Raw() != f.MinRaw() {
		t.Errorf("FromInt -huge should saturate, got %v", got)
	}
}

func TestAddSubSaturate(t *testing.T) {
	f := Q(3, 4)
	max := FromRaw(f.MaxRaw(), f)
	one := FromInt(1, f)
	if got := max.Add(one); got.Raw() != f.MaxRaw() {
		t.Errorf("max+1 should saturate, got %v", got)
	}
	min := FromRaw(f.MinRaw(), f)
	if got := min.Sub(one); got.Raw() != f.MinRaw() {
		t.Errorf("min-1 should saturate, got %v", got)
	}
	a := FromFloat(2.5, f, RoundNearestAway)
	b := FromFloat(1.25, f, RoundNearestAway)
	if got := a.Add(b).Float(); got != 3.75 {
		t.Errorf("2.5+1.25 = %g", got)
	}
	if got := a.Sub(b).Float(); got != 1.25 {
		t.Errorf("2.5-1.25 = %g", got)
	}
}

func TestMul(t *testing.T) {
	f := Q(6, 8)
	a := FromFloat(1.5, f, RoundNearestAway)
	b := FromFloat(-2.25, f, RoundNearestAway)
	if got := a.Mul(b, RoundNearestAway).Float(); got != -3.375 {
		t.Errorf("1.5*-2.25 = %g", got)
	}
	big := FromFloat(60, f, RoundNearestAway)
	if got := big.Mul(big, RoundNearestAway); got.Raw() != f.MaxRaw() {
		t.Errorf("60*60 should saturate, got %v", got)
	}
}

func TestDiv(t *testing.T) {
	f := Q(6, 8)
	a := FromFloat(3, f, RoundNearestAway)
	b := FromFloat(2, f, RoundNearestAway)
	if got := a.Div(b, RoundNearestAway).Float(); got != 1.5 {
		t.Errorf("3/2 = %g", got)
	}
	zero := FromInt(0, f)
	if got := a.Div(zero, RoundNearestAway); got.Raw() != f.MaxRaw() {
		t.Errorf("3/0 should saturate positive, got %v", got)
	}
	if got := a.Neg().Div(zero, RoundNearestAway); got.Raw() != f.MinRaw() {
		t.Errorf("-3/0 should saturate negative, got %v", got)
	}
}

func TestNegAbsSign(t *testing.T) {
	f := Q(3, 4)
	n := FromFloat(-2.5, f, RoundNearestAway)
	if n.Sign() != -1 {
		t.Errorf("sign = %d", n.Sign())
	}
	if got := n.Neg().Float(); got != 2.5 {
		t.Errorf("neg = %g", got)
	}
	if got := n.Abs().Float(); got != 2.5 {
		t.Errorf("abs = %g", got)
	}
	// Negating the most negative value saturates to max.
	min := FromRaw(f.MinRaw(), f)
	if got := min.Neg(); got.Raw() != f.MaxRaw() {
		t.Errorf("neg(min) = %v, want saturation to max", got)
	}
	if FromInt(0, f).Sign() != 0 {
		t.Error("sign(0) != 0")
	}
}

func TestShifts(t *testing.T) {
	f := Q(6, 4)
	n := FromFloat(1.5, f, RoundNearestAway)
	if got := n.Shl(2).Float(); got != 6 {
		t.Errorf("1.5<<2 = %g", got)
	}
	if got := n.Shr(1, RoundNearestAway).Float(); got != 0.75 {
		t.Errorf("1.5>>1 = %g", got)
	}
	if got := n.Shl(20); got.Raw() != f.MaxRaw() {
		t.Errorf("huge shl should saturate, got %v", got)
	}
	if got := n.Neg().Shl(20); got.Raw() != f.MinRaw() {
		t.Errorf("huge negative shl should saturate, got %v", got)
	}
	// Shl with negative count delegates to Shr and vice versa.
	if got := n.Shl(-1).Float(); got != 0.75 {
		t.Errorf("shl(-1) = %g", got)
	}
	if got := n.Shr(-2, RoundZero).Float(); got != 6 {
		t.Errorf("shr(-2) = %g", got)
	}
}

func TestConvert(t *testing.T) {
	src := Q(6, 8)
	dst := Q(6, 2)
	n := FromFloat(1.3671875, src, RoundNearestAway) // 350/256
	if got := n.Convert(dst, RoundNearestAway).Float(); got != 1.25 {
		t.Errorf("convert down = %g, want 1.25", got)
	}
	up := n.Convert(Q(6, 12), RoundNearestAway)
	if got := up.Float(); got != n.Float() {
		t.Errorf("convert up changed value: %g != %g", got, n.Float())
	}
	// Narrowing the integer part saturates.
	wide := FromFloat(30, Q(6, 4), RoundNearestAway)
	narrow := wide.Convert(Q(2, 4), RoundNearestAway)
	if narrow.Raw() != Q(2, 4).MaxRaw() {
		t.Errorf("narrowing should saturate, got %v", narrow)
	}
}

func TestCmpPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on format mismatch")
		}
	}()
	FromInt(1, Q(3, 4)).Cmp(FromInt(1, Q(4, 4)))
}

func TestInt(t *testing.T) {
	f := Q(6, 4)
	tests := []struct {
		x    float64
		want int64
	}{
		{3.75, 3}, {-3.75, -3}, {0.5, 0}, {-0.5, 0}, {5, 5},
	}
	for _, tt := range tests {
		if got := FromFloat(tt.x, f, RoundNearestAway).Int(); got != tt.want {
			t.Errorf("Int(%g) = %d, want %d", tt.x, got, tt.want)
		}
	}
}

func TestDivRoundExhaustiveSmall(t *testing.T) {
	// Cross-check divRound against float math for every mode over a
	// small exhaustive grid.
	modes := []RoundMode{RoundNearestAway, RoundNearestEven, RoundDown, RoundUp, RoundZero}
	for a := int64(-40); a <= 40; a++ {
		for b := int64(-7); b <= 7; b++ {
			if b == 0 {
				continue
			}
			exact := float64(a) / float64(b)
			for _, m := range modes {
				want := int64(roundScaled(exact, m))
				if got := divRound(a, b, m); got != want {
					t.Fatalf("divRound(%d,%d,%v) = %d, want %d", a, b, m, got, want)
				}
			}
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := Q(10, 12)
	// Any value already on the grid survives a float round trip.
	prop := func(raw int32) bool {
		r := int64(raw) % (f.MaxRaw() + 1)
		n := FromRaw(r, f)
		return FromFloat(n.Float(), f, RoundNearestAway).Raw() == n.Raw()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddCommutes(t *testing.T) {
	f := Q(12, 10)
	prop := func(a, b int32) bool {
		x := FromRaw(int64(a)%f.MaxRaw(), f)
		y := FromRaw(int64(b)%f.MaxRaw(), f)
		return x.Add(y).Raw() == y.Add(x).Raw()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMulMatchesFloatWithinStep(t *testing.T) {
	f := Q(10, 10)
	prop := func(a, b int16) bool {
		x := FromRaw(int64(a), f)
		y := FromRaw(int64(b), f)
		got := x.Mul(y, RoundNearestAway).Float()
		exact := x.Float() * y.Float()
		if exact > f.MaxValue() || exact < f.MinValue() {
			return true // saturation regime, checked elsewhere
		}
		return math.Abs(got-exact) <= f.Step()/2+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickConvertNeverWidensError(t *testing.T) {
	src := Q(8, 14)
	dst := Q(8, 6)
	prop := func(a int32) bool {
		n := FromRaw(int64(a)%src.MaxRaw(), src)
		c := n.Convert(dst, RoundNearestAway)
		return math.Abs(c.Float()-n.Float()) <= dst.Step()/2+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStringForms(t *testing.T) {
	f := Q(4, 15)
	if got := f.String(); got != "Q4.15/20" {
		t.Errorf("format string = %q", got)
	}
	n := FromFloat(1.5, Q(3, 2), RoundNearestAway)
	if got := n.String(); got != "1.5[Q3.2/6]" {
		t.Errorf("num string = %q", got)
	}
	if got := RoundNearestEven.String(); got != "nearest-even" {
		t.Errorf("mode string = %q", got)
	}
	if got := RoundMode(99).String(); got != "RoundMode(99)" {
		t.Errorf("unknown mode string = %q", got)
	}
}
