// Package fixed implements signed two's-complement fixed-point
// arithmetic in the Q notation used by ultra-low-power hardware.
//
// A Format describes a word: its total width in bits and how many of
// those bits sit to the right of the binary point. A Num is a value in
// a particular Format. All arithmetic is exact where the format
// permits and otherwise behaves like hardware: results are rounded
// with an explicit RoundMode and saturate (or wrap, if requested) at
// the representable range.
//
// The package is the substrate for the DP-Box datapath model: the
// uniform random numbers, the CORDIC logarithm, the Laplace samples
// and the noised sensor outputs are all Nums.
package fixed

import (
	"fmt"
	"math"
)

// MaxWidth is the widest word the package supports. Internal
// arithmetic is carried in int64, so products of two MaxWidth-bit
// values still fit when widened.
const MaxWidth = 31

// Format describes a signed fixed-point word: Width total bits
// (including the sign bit) of which Frac are fractional.
type Format struct {
	Width int // total bits, including sign; 2..MaxWidth
	Frac  int // fractional bits; 0..Width-1
}

// Q returns the Format with i integer bits (excluding sign) and f
// fractional bits, i.e. the Q(i.f) format of width 1+i+f.
func Q(i, f int) Format { return Format{Width: 1 + i + f, Frac: f} }

// Validate reports whether the format is usable.
func (f Format) Validate() error {
	if f.Width < 2 || f.Width > MaxWidth {
		return fmt.Errorf("fixed: width %d out of range [2,%d]", f.Width, MaxWidth)
	}
	if f.Frac < 0 || f.Frac >= f.Width {
		return fmt.Errorf("fixed: %d fractional bits invalid for width %d", f.Frac, f.Width)
	}
	return nil
}

// IntBits returns the number of integer (magnitude) bits.
func (f Format) IntBits() int { return f.Width - 1 - f.Frac }

// Step returns the quantization step 2^-Frac as a float64.
func (f Format) Step() float64 { return math.Ldexp(1, -f.Frac) }

// MaxRaw returns the largest representable raw integer, 2^(Width-1)-1.
func (f Format) MaxRaw() int64 { return int64(1)<<(f.Width-1) - 1 }

// MinRaw returns the smallest representable raw integer, -2^(Width-1).
func (f Format) MinRaw() int64 { return -(int64(1) << (f.Width - 1)) }

// MaxValue returns the largest representable value as a float64.
func (f Format) MaxValue() float64 { return float64(f.MaxRaw()) * f.Step() }

// MinValue returns the smallest (most negative) representable value.
func (f Format) MinValue() float64 { return float64(f.MinRaw()) * f.Step() }

// String implements fmt.Stringer, e.g. "Q4.15/20".
func (f Format) String() string {
	return fmt.Sprintf("Q%d.%d/%d", f.IntBits(), f.Frac, f.Width)
}

// RoundMode selects how out-of-grid values are mapped onto the grid.
type RoundMode int

const (
	// RoundNearestAway rounds to the nearest grid point, ties away
	// from zero. This matches the "round to nearest value" behaviour
	// the paper assumes for the FxP RNG output stage.
	RoundNearestAway RoundMode = iota
	// RoundNearestEven rounds to nearest, ties to even (IEEE style).
	RoundNearestEven
	// RoundDown rounds toward negative infinity (floor).
	RoundDown
	// RoundUp rounds toward positive infinity (ceil).
	RoundUp
	// RoundZero truncates toward zero, the cheapest in hardware.
	RoundZero
)

// String implements fmt.Stringer.
func (m RoundMode) String() string {
	switch m {
	case RoundNearestAway:
		return "nearest-away"
	case RoundNearestEven:
		return "nearest-even"
	case RoundDown:
		return "down"
	case RoundUp:
		return "up"
	case RoundZero:
		return "zero"
	}
	return fmt.Sprintf("RoundMode(%d)", int(m))
}

// roundScaled rounds the real number x to an integer according to m.
func roundScaled(x float64, m RoundMode) float64 {
	switch m {
	case RoundNearestAway:
		return math.Round(x)
	case RoundNearestEven:
		return math.RoundToEven(x)
	case RoundDown:
		return math.Floor(x)
	case RoundUp:
		return math.Ceil(x)
	case RoundZero:
		return math.Trunc(x)
	}
	return math.Round(x)
}
