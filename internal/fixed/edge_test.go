package fixed

import (
	"math"
	"testing"
)

func TestCmpOrdering(t *testing.T) {
	f := Q(4, 4)
	a := FromFloat(1.5, f, RoundNearestAway)
	b := FromFloat(-2.25, f, RoundNearestAway)
	if a.Cmp(b) != 1 || b.Cmp(a) != -1 || a.Cmp(a) != 0 {
		t.Error("Cmp ordering wrong")
	}
	if a.Format() != f {
		t.Error("Format accessor")
	}
}

func TestAbsPositiveIsIdentity(t *testing.T) {
	f := Q(4, 4)
	n := FromFloat(3.25, f, RoundNearestAway)
	if n.Abs() != n {
		t.Error("Abs of positive changed value")
	}
	if n.Sign() != 1 {
		t.Error("Sign of positive")
	}
}

func TestRoundModeStringsAll(t *testing.T) {
	for m, want := range map[RoundMode]string{
		RoundNearestAway: "nearest-away",
		RoundDown:        "down",
		RoundUp:          "up",
		RoundZero:        "zero",
	} {
		if got := m.String(); got != want {
			t.Errorf("String(%d) = %q", int(m), got)
		}
	}
}

func TestConvertDownModes(t *testing.T) {
	src := Q(6, 6)
	dst := Q(6, 2)
	// 1.171875 = 75/64: in dst steps (0.25) it is 4.6875 steps.
	n := FromFloat(75.0/64, src, RoundNearestAway)
	tests := []struct {
		m    RoundMode
		want float64
	}{
		{RoundNearestAway, 1.25},
		{RoundNearestEven, 1.25},
		{RoundDown, 1.0},
		{RoundUp, 1.25},
		{RoundZero, 1.0},
	}
	for _, tt := range tests {
		if got := n.Convert(dst, tt.m).Float(); got != tt.want {
			t.Errorf("convert(%v) = %g, want %g", tt.m, got, tt.want)
		}
	}
	// Negative value, direction-sensitive modes.
	neg := n.Neg()
	if got := neg.Convert(dst, RoundDown).Float(); got != -1.25 {
		t.Errorf("neg convert down = %g", got)
	}
	if got := neg.Convert(dst, RoundUp).Float(); got != -1.0 {
		t.Errorf("neg convert up = %g", got)
	}
	if got := neg.Convert(dst, RoundZero).Float(); got != -1.0 {
		t.Errorf("neg convert zero = %g", got)
	}
}

func TestConvertTieToEven(t *testing.T) {
	src := Q(6, 4)
	dst := Q(6, 1)
	// 1.25 = 2.5 steps of 0.5: tie.
	n := FromFloat(1.25, src, RoundNearestAway)
	if got := n.Convert(dst, RoundNearestEven).Float(); got != 1.0 {
		t.Errorf("tie-to-even = %g, want 1.0 (even step)", got)
	}
	if got := n.Convert(dst, RoundNearestAway).Float(); got != 1.5 {
		t.Errorf("tie-away = %g, want 1.5", got)
	}
	// 1.75 = 3.5 steps: even neighbour is 4 steps = 2.0.
	m := FromFloat(1.75, src, RoundNearestAway)
	if got := m.Convert(dst, RoundNearestEven).Float(); got != 2.0 {
		t.Errorf("tie-to-even (odd base) = %g, want 2.0", got)
	}
	// Negative ties.
	if got := n.Neg().Convert(dst, RoundNearestEven).Float(); got != -1.0 {
		t.Errorf("neg tie-to-even = %g, want -1.0", got)
	}
	if got := n.Neg().Convert(dst, RoundNearestAway).Float(); got != -1.5 {
		t.Errorf("neg tie-away = %g, want -1.5", got)
	}
}

func TestShrLargeCounts(t *testing.T) {
	f := Q(10, 4)
	n := FromFloat(100, f, RoundNearestAway)
	// Shifting beyond the word: result collapses per mode.
	if got := n.Shr(70, RoundZero).Float(); got != 0 {
		t.Errorf("shr 70 zero = %g", got)
	}
	if got := n.Shr(70, RoundUp).Float(); got != f.Step() {
		t.Errorf("shr 70 up = %g, want one step", got)
	}
	if got := n.Neg().Shr(70, RoundDown).Float(); got != -f.Step() {
		t.Errorf("neg shr 70 down = %g", got)
	}
	if got := n.Neg().Shr(70, RoundZero).Float(); got != 0 {
		t.Errorf("neg shr 70 zero = %g", got)
	}
	if got := n.Shr(70, RoundNearestAway).Float(); got != 0 {
		t.Errorf("shr 70 nearest = %g", got)
	}
}

func TestConvertSameFormatIsIdentity(t *testing.T) {
	f := Q(5, 5)
	n := FromFloat(2.71875, f, RoundNearestAway)
	if n.Convert(f, RoundZero) != n {
		t.Error("same-format convert changed value")
	}
}

func TestConvertUpOverflowSaturates(t *testing.T) {
	// Widening the fraction while narrowing the total width must
	// saturate, not wrap.
	src := Q(20, 2)
	dst := Q(2, 20)
	big := FromFloat(1000, src, RoundNearestAway)
	if got := big.Convert(dst, RoundNearestAway); got.Raw() != dst.MaxRaw() {
		t.Errorf("overflowing widen = %v, want saturation", got)
	}
	if got := big.Neg().Convert(dst, RoundNearestAway); got.Raw() != dst.MinRaw() {
		t.Errorf("negative overflowing widen = %v", got)
	}
}

func TestFromFloatNegInf(t *testing.T) {
	f := Q(3, 3)
	if got := FromFloat(math.Inf(-1), f, RoundZero); got.Raw() != f.MinRaw() {
		t.Errorf("-inf = %v", got)
	}
}
