// Package floatleak demonstrates the floating-point half of the
// paper's Section III-A4 generalization: a textbook software Laplace
// mechanism using float64 arithmetic (the Mironov attack, the paper's
// reference [27]) leaks through the *irregular gaps* of the floating-
// point grid — some observed outputs are producible from one secret
// input but from no uniform draw at another, identifying the input
// exactly, just like the fixed-point tail holes.
//
// The attack here is constructive: Producible decides by inverting
// the mechanism over the float grid whether a given output can be
// generated from a given input at all, and RevealRate measures how
// often a real output betrays its input against an alternative.
package floatleak

import (
	"math"

	"ulpdp/internal/urng"
)

// Mechanism is the naive software Laplace mechanism: y = x ± λ·ln(1/u)
// with u drawn uniformly from the float64 grid in (0, 1], every
// operation in double precision — exactly what a careless
// implementation computes.
type Mechanism struct {
	// X is the private value.
	X float64
	// Lambda is the Laplace scale.
	Lambda float64
	src    *urng.SplitMix64
}

// NewMechanism builds the naive mechanism. It panics on a
// non-positive scale.
func NewMechanism(x, lambda float64, seed uint64) *Mechanism {
	if !(lambda > 0) {
		panic("floatleak: non-positive scale")
	}
	return &Mechanism{X: x, Lambda: lambda, src: urng.NewSplitMix64(seed)}
}

// Noise draws one report.
func (m *Mechanism) Noise() float64 {
	u := m.uniform()
	y := forward(m.X, m.Lambda, u, m.src.Uint64()&1 == 1)
	return y
}

// uniform draws u in (0, 1] on the standard 2^-53 grid.
func (m *Mechanism) uniform() float64 {
	for {
		u := float64(m.src.Uint64()>>11+1) / (1 << 53)
		if u > 0 && u <= 1 {
			return u
		}
	}
}

// forward is the deterministic datapath: y = fl(x ± fl(λ·fl(ln u))).
func forward(x, lambda, u float64, negative bool) float64 {
	n := lambda * math.Log(u)
	if !negative {
		n = -n
	}
	return x + n
}

// Producible reports whether output y is reachable from input x: is
// there ANY grid point u ∈ (0, 1] and sign for which forward(x, λ, u)
// rounds to exactly y? The search exploits that forward is monotone
// in u per sign branch (composition of correctly-rounded monotone
// operations), bisecting to the candidate region and then scanning
// the few neighbouring grid points.
func Producible(y, x, lambda float64) bool {
	return producibleBranch(y, x, lambda, false) || producibleBranch(y, x, lambda, true)
}

func producibleBranch(y, x, lambda float64, negative bool) bool {
	// Positive branch is non-increasing in u (noise −λ·ln u ↓ 0);
	// negative branch is non-decreasing. Bisect on the u grid.
	lo, hi := uint64(1), uint64(1)<<53 // u = k / 2^53
	f := func(k uint64) float64 {
		return forward(x, lambda, float64(k)/(1<<53), negative)
	}
	target := y
	increasing := negative
	for lo < hi {
		mid := lo + (hi-lo)/2
		v := f(mid)
		switch {
		case v == target:
			return true
		case (v < target) == increasing:
			lo = mid + 1
		default:
			if mid == 0 {
				return false
			}
			hi = mid
		}
	}
	// Scan a small neighbourhood: monotonicity of float compositions
	// is non-strict, so plateaus can hide the target next door.
	const span = 64
	start := int64(lo) - span
	if start < 1 {
		start = 1
	}
	for k := start; k <= int64(lo)+span && k <= 1<<53; k++ {
		if f(uint64(k)) == target {
			return true
		}
	}
	return false
}

// RevealRate draws n reports from x1 and returns the fraction whose
// output is not producible from x2 — each such report identifies the
// secret as x1 with certainty. A correct ε-DP mechanism would have
// rate exactly 0.
func RevealRate(x1, x2, lambda float64, n int, seed uint64) float64 {
	m := NewMechanism(x1, lambda, seed)
	revealed := 0
	for i := 0; i < n; i++ {
		y := m.Noise()
		if !Producible(y, x2, lambda) {
			revealed++
		}
	}
	return float64(revealed) / float64(n)
}
