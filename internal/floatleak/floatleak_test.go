package floatleak

import (
	"math"
	"testing"
)

func TestNewPanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMechanism(0, 0, 1)
}

func TestNoiseIsLaplaceLike(t *testing.T) {
	m := NewMechanism(10, 4, 7)
	var sum, sumAbs float64
	const n = 100000
	for i := 0; i < n; i++ {
		y := m.Noise()
		sum += y
		sumAbs += math.Abs(y - 10)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.1 {
		t.Errorf("mean %g", mean)
	}
	if meanAbs := sumAbs / n; math.Abs(meanAbs-4) > 0.1 {
		t.Errorf("E|noise| = %g, want ~4", meanAbs)
	}
}

func TestProducibleFindsOwnOutputs(t *testing.T) {
	// Every output the mechanism actually produces must be reported
	// producible from its own input — the detector has no false
	// negatives on the generating input.
	m := NewMechanism(3, 2, 11)
	for i := 0; i < 300; i++ {
		y := m.Noise()
		if !Producible(y, 3, 2) {
			t.Fatalf("own output %v reported unreachable", y)
		}
	}
}

func TestProducibleRejectsAbsurdOutputs(t *testing.T) {
	// An output beyond the largest reachable noise cannot be
	// produced: max |noise| = λ·ln(2^53) ≈ 36.7λ.
	if Producible(1e6, 0, 2) {
		t.Error("output beyond the float mechanism's range reported producible")
	}
}

// TestMironovLeak is the paper's [27] reference made executable: a
// measurable fraction of naive float64 Laplace outputs identify their
// input exactly.
func TestMironovLeak(t *testing.T) {
	rate := RevealRate(0, 1, 2, 400, 13)
	if rate <= 0 {
		t.Fatal("expected a positive reveal rate from the naive float mechanism")
	}
	t.Logf("reveal rate: %.1f%% of outputs identify the input exactly", 100*rate)
	// Mironov reports a substantial artifact fraction; ours must be
	// clearly non-negligible.
	if rate < 0.01 {
		t.Errorf("reveal rate %g implausibly low", rate)
	}
}

func TestRevealRateSymmetricallyPositive(t *testing.T) {
	a := RevealRate(0, 1, 2, 200, 17)
	b := RevealRate(1, 0, 2, 200, 19)
	if a <= 0 || b <= 0 {
		t.Errorf("both directions should leak: %g, %g", a, b)
	}
}
