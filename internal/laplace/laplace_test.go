package laplace

import (
	"math"
	"testing"
	"testing/quick"

	"ulpdp/internal/cordic"
	"ulpdp/internal/urng"
)

func TestNewIdealRejectsBadScale(t *testing.T) {
	if _, err := NewIdeal(0, 1); err == nil {
		t.Fatal("expected error on non-positive scale")
	}
}

func TestIdealMoments(t *testing.T) {
	const lambda = 20.0
	l, err := NewIdeal(lambda, 42)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400000
	var sum, sumAbs, sumSq float64
	for i := 0; i < n; i++ {
		x := l.Sample()
		sum += x
		sumAbs += math.Abs(x)
		sumSq += x * x
	}
	mean := sum / n
	meanAbs := sumAbs / n
	variance := sumSq / n
	if math.Abs(mean) > 0.25 {
		t.Errorf("mean = %g, want ~0", mean)
	}
	if math.Abs(meanAbs-lambda) > 0.3 {
		t.Errorf("E|X| = %g, want ~%g", meanAbs, lambda)
	}
	if math.Abs(variance-2*lambda*lambda)/(2*lambda*lambda) > 0.02 {
		t.Errorf("var = %g, want ~%g", variance, 2*lambda*lambda)
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	const lambda = 3.0
	var integral float64
	const h = 0.001
	for x := -60.0; x <= 60; x += h {
		integral += PDF(x, lambda) * h
	}
	if math.Abs(integral-1) > 1e-3 {
		t.Errorf("integral = %g", integral)
	}
}

func TestCDFQuantileRoundTrip(t *testing.T) {
	const lambda = 7.5
	prop := func(raw uint16) bool {
		p := (float64(raw) + 1) / 65537 // (0,1)
		x := Quantile(p, lambda)
		return math.Abs(CDF(x, lambda)-p) < 1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%g) should panic", p)
				}
			}()
			Quantile(p, 1)
		}()
	}
}

func TestCDFSymmetry(t *testing.T) {
	prop := func(raw int16) bool {
		x := float64(raw) / 100
		return math.Abs(CDF(x, 5)+CDF(-x, 5)-1) < 1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// fig4Params are the parameters of the paper's Fig. 4: Lap(20) with
// B_u = 17, B_y = 12, Δ = 10/2^5.
var fig4Params = FxPParams{Bu: 17, By: 12, Delta: 10.0 / 32, Lambda: 20}

func TestFxPParamsValidate(t *testing.T) {
	tests := []struct {
		name string
		p    FxPParams
		ok   bool
	}{
		{"fig4", fig4Params, true},
		{"bu low", FxPParams{Bu: 1, By: 12, Delta: 1, Lambda: 1}, false},
		{"bu high", FxPParams{Bu: 31, By: 12, Delta: 1, Lambda: 1}, false},
		{"by low", FxPParams{Bu: 10, By: 1, Delta: 1, Lambda: 1}, false},
		{"delta zero", FxPParams{Bu: 10, By: 10, Delta: 0, Lambda: 1}, false},
		{"lambda neg", FxPParams{Bu: 10, By: 10, Delta: 1, Lambda: -1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.p.Validate(); (err == nil) != tt.ok {
				t.Fatalf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestMaxNoiseMatchesPaper(t *testing.T) {
	// L = λ·B_u·ln2 = 20·17·ln2 ≈ 235.7 for Fig. 4's parameters.
	got := fig4Params.MaxNoise()
	if math.Abs(got-20*17*math.Ln2) > 1e-9 {
		t.Errorf("MaxNoise = %g", got)
	}
	if fig4Params.KCap() != 2047 {
		t.Errorf("KCap = %d, want 2047", fig4Params.KCap())
	}
	// No saturation for Fig. 4: the ICDF bound is below the word cap.
	if fig4Params.MaxK() >= fig4Params.KCap() {
		t.Errorf("MaxK = %d should be below KCap", fig4Params.MaxK())
	}
}

func TestDistTotalMassIsOne(t *testing.T) {
	for _, par := range []FxPParams{
		fig4Params,
		{Bu: 8, By: 8, Delta: 0.5, Lambda: 4},
		{Bu: 12, By: 6, Delta: 0.25, Lambda: 10}, // saturating word
		{Bu: 20, By: 16, Delta: 0.125, Lambda: 2},
	} {
		d := NewDist(par)
		if m := d.TotalMass(); math.Abs(m-1) > 1e-12 {
			t.Errorf("params %+v: total mass = %.15f", par, m)
		}
	}
}

// TestDistMatchesEnumeration enumerates every URNG draw through the
// reference datapath and checks the closed-form counts exactly.
func TestDistMatchesEnumeration(t *testing.T) {
	par := FxPParams{Bu: 12, By: 10, Delta: 0.5, Lambda: 8}
	d := NewDist(par)
	counts := make(map[int64]int64)
	for m := int64(1); m <= 1<<par.Bu; m++ {
		mag := -par.Lambda * math.Log(math.Ldexp(float64(m), -par.Bu))
		k := int64(math.Round(mag / par.Delta))
		if cap := par.KCap(); k > cap {
			k = cap
		}
		counts[k]++
	}
	for k := int64(0); k <= par.KCap(); k++ {
		want := float64(counts[k])
		if got := d.CountMag(k); got != want {
			t.Errorf("CountMag(%d) = %g, want %g", k, got, want)
		}
	}
}

// TestDistMatchesEnumerationSaturating repeats the enumeration with a
// narrow output word so the saturation path is exercised.
func TestDistMatchesEnumerationSaturating(t *testing.T) {
	par := FxPParams{Bu: 11, By: 5, Delta: 0.5, Lambda: 8}
	if par.MaxNoise() <= float64(par.KCap())*par.Delta {
		t.Fatal("test parameters do not saturate")
	}
	d := NewDist(par)
	counts := make(map[int64]int64)
	for m := int64(1); m <= 1<<par.Bu; m++ {
		mag := -par.Lambda * math.Log(math.Ldexp(float64(m), -par.Bu))
		k := int64(math.Round(mag / par.Delta))
		if cap := par.KCap(); k > cap {
			k = cap
		}
		counts[k]++
	}
	for k := int64(0); k <= par.KCap(); k++ {
		if got, want := d.CountMag(k), float64(counts[k]); got != want {
			t.Errorf("CountMag(%d) = %g, want %g", k, got, want)
		}
	}
}

func TestSamplerMatchesDistExhaustive(t *testing.T) {
	// The sampler's deterministic URNG→magnitude map, with the exact
	// float log unit, must reproduce the closed-form counts draw for
	// draw.
	par := FxPParams{Bu: 12, By: 10, Delta: 0.5, Lambda: 8}
	s, err := NewSampler(par, FloatLog{FracBits: 50}, urng.NewTaus88(1))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDist(par)
	counts := make(map[int64]int64)
	for m := uint64(1); m <= 1<<par.Bu; m++ {
		counts[s.MagnitudeForDraw(m)]++
	}
	for k := int64(0); k <= par.KCap(); k++ {
		if got, want := float64(counts[k]), d.CountMag(k); got != want {
			t.Errorf("sampler CountMag(%d) = %g, closed form %g", k, got, want)
		}
	}
}

func TestSamplerCordicAgreesWithFloat(t *testing.T) {
	// The CORDIC datapath may disagree with the exact log only at
	// rounding-boundary draws; over an exhaustive small sweep the
	// disagreement rate must be negligible and at most one step.
	par := FxPParams{Bu: 12, By: 10, Delta: 0.5, Lambda: 8}
	sc, err := NewSampler(par, cordic.New(cordic.DefaultConfig), urng.NewTaus88(1))
	if err != nil {
		t.Fatal(err)
	}
	sf, err := NewSampler(par, FloatLog{FracBits: 50}, urng.NewTaus88(1))
	if err != nil {
		t.Fatal(err)
	}
	var diff int
	for m := uint64(1); m <= 1<<par.Bu; m++ {
		a, b := sc.MagnitudeForDraw(m), sf.MagnitudeForDraw(m)
		if a != b {
			diff++
			if d := a - b; d < -1 || d > 1 {
				t.Fatalf("m=%d: cordic k=%d vs float k=%d", m, a, b)
			}
		}
	}
	if diff > 4 {
		t.Errorf("cordic and float disagree on %d of %d draws", diff, 1<<par.Bu)
	}
}

func TestSampleOnGrid(t *testing.T) {
	s, err := NewSampler(fig4Params, nil, urng.NewTaus88(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		x := s.Sample()
		k := x / fig4Params.Delta
		if k != math.Trunc(k) {
			t.Fatalf("sample %g is off-grid", x)
		}
		if math.Abs(x) > float64(fig4Params.KCap())*fig4Params.Delta {
			t.Fatalf("sample %g beyond saturation", x)
		}
	}
}

func TestSampleSignBalance(t *testing.T) {
	s, err := NewSampler(fig4Params, nil, urng.NewLFSR113(3))
	if err != nil {
		t.Fatal(err)
	}
	var pos, neg int
	const n = 60000
	for i := 0; i < n; i++ {
		if k := s.SampleK(); k > 0 {
			pos++
		} else if k < 0 {
			neg++
		}
	}
	if math.Abs(float64(pos-neg)) > 6*math.Sqrt(n) {
		t.Errorf("sign imbalance: +%d vs -%d", pos, neg)
	}
}

func TestFig4TailHolesExist(t *testing.T) {
	// The core claim of Section III-A3: the FxP RNG tail has zero-
	// probability values below the max — naive noising cannot be DP.
	d := NewDist(fig4Params)
	hole, ok := d.FirstZeroHole()
	if !ok {
		t.Fatal("expected tail holes in Fig. 4 parameters")
	}
	if hole <= 0 || hole >= d.MaxK() {
		t.Errorf("hole at %d outside (0, %d)", hole, d.MaxK())
	}
	// And the bulk matches the ideal distribution closely.
	ideal := 2 * (CDF(fig4Params.Delta/2, fig4Params.Lambda) - 0.5)
	if got := d.Prob(0); math.Abs(got-ideal) > 1e-3 {
		t.Errorf("P(0) = %g, ideal %g", got, ideal)
	}
}

func TestDistBulkMatchesIdeal(t *testing.T) {
	d := NewDist(fig4Params)
	// In the high-density region the FxP PMF approximates the ideal
	// density times Δ (Fig. 4a).
	for _, k := range []int64{1, 5, 10, 50, 100} {
		x := float64(k) * fig4Params.Delta
		want := PDF(x, fig4Params.Lambda) * fig4Params.Delta
		got := d.Prob(k)
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("P(k=%d) = %g, ideal %g", k, got, want)
		}
	}
}

func TestProbSymmetric(t *testing.T) {
	d := NewDist(fig4Params)
	prop := func(raw uint16) bool {
		k := int64(raw % 2047)
		return d.Prob(k) == d.Prob(-k)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTailMagMatchesSum(t *testing.T) {
	par := FxPParams{Bu: 10, By: 8, Delta: 0.5, Lambda: 4}
	d := NewDist(par)
	for _, k := range []int64{1, 3, 10, 50, par.KCap()} {
		var sum float64
		for j := k; j <= par.KCap(); j++ {
			sum += d.ProbMag(j)
		}
		if got := d.TailMag(k); math.Abs(got-sum) > 1e-12 {
			t.Errorf("TailMag(%d) = %g, sum %g", k, got, sum)
		}
	}
	if d.TailMag(0) != 1 {
		t.Error("TailMag(0) != 1")
	}
	if d.TailMag(par.KCap()+1) != 0 {
		t.Error("TailMag beyond cap != 0")
	}
}

func TestPMFShape(t *testing.T) {
	d := NewDist(FxPParams{Bu: 10, By: 10, Delta: 0.5, Lambda: 4})
	pmf, maxK := d.PMF()
	if int64(len(pmf)) != 2*maxK+1 {
		t.Fatalf("len = %d, maxK = %d", len(pmf), maxK)
	}
	var sum float64
	for _, p := range pmf {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("pmf sums to %g", sum)
	}
	if pmf[maxK] != d.Prob(0) {
		t.Error("center of PMF is not P(0)")
	}
}

func BenchmarkFxPSampleCordic(b *testing.B) {
	s, err := NewSampler(fig4Params, nil, urng.NewTaus88(1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s.SampleK()
	}
}

func BenchmarkFxPSampleFloatLog(b *testing.B) {
	s, err := NewSampler(fig4Params, FloatLog{FracBits: 50}, urng.NewTaus88(1))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		s.SampleK()
	}
}

func BenchmarkIdealSample(b *testing.B) {
	l, err := NewIdeal(20, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		l.Sample()
	}
}

func TestHWSamplerMatchesFloatExhaustive(t *testing.T) {
	// With a dyadic λ/Δ (the DP-Box case: ε = 2^-n_m, grid steps),
	// the integer scaling datapath must agree with the float64
	// reference on every URNG draw.
	for _, par := range []FxPParams{
		{Bu: 12, By: 10, Delta: 1, Lambda: 64},       // λ/Δ integer
		{Bu: 12, By: 12, Delta: 0.25, Lambda: 56},    // ratio 224
		{Bu: 13, By: 12, Delta: 1, Lambda: 12.5},     // ratio 12.5 = 25·2^-1
		{Bu: 11, By: 10, Delta: 0.5, Lambda: 0.8125}, // ratio 1.625 = 13·2^-3
	} {
		hw, err := NewHWSampler(par, FloatLog{FracBits: 44}, urng.NewTaus88(1))
		if err != nil {
			t.Fatalf("%+v: %v", par, err)
		}
		fl, err := NewSampler(par, FloatLog{FracBits: 44}, urng.NewTaus88(1))
		if err != nil {
			t.Fatal(err)
		}
		for m := uint64(1); m <= 1<<par.Bu; m++ {
			a, b := hw.MagnitudeForDraw(m), fl.MagnitudeForDraw(m)
			if a != b {
				t.Fatalf("params %+v draw %d: integer %d vs float %d", par, m, a, b)
			}
		}
	}
}

func TestHWSamplerMatchesDistExhaustive(t *testing.T) {
	par := FxPParams{Bu: 12, By: 10, Delta: 0.5, Lambda: 8}
	hw, err := NewHWSampler(par, FloatLog{FracBits: 50}, urng.NewTaus88(1))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDist(par)
	counts := map[int64]float64{}
	for m := uint64(1); m <= 1<<par.Bu; m++ {
		counts[hw.MagnitudeForDraw(m)]++
	}
	for k := int64(0); k <= par.KCap(); k++ {
		if got, want := counts[k], d.CountMag(k); got != want {
			t.Errorf("CountMag(%d): hw %g vs closed form %g", k, got, want)
		}
	}
}

func TestHWSamplerRejectsNonDyadic(t *testing.T) {
	par := FxPParams{Bu: 12, By: 10, Delta: 0.3, Lambda: 20} // ratio 66.67
	if _, err := NewHWSamppler_guard(par); err == nil {
		t.Fatal("non-dyadic ratio accepted")
	}
}

// NewHWSamppler_guard keeps the rejection test readable.
func NewHWSamppler_guard(par FxPParams) (*Sampler, error) {
	return NewHWSampler(par, FloatLog{FracBits: 50}, urng.NewTaus88(1))
}

func TestHWSamplerCordicPath(t *testing.T) {
	// The full hardware stack: Tausworthe -> CORDIC -> integer scale.
	par := FxPParams{Bu: 12, By: 10, Delta: 1, Lambda: 64}
	hw, err := NewHWSampler(par, nil, urng.NewTaus88(5))
	if err != nil {
		t.Fatal(err)
	}
	var sumAbs float64
	const n = 50000
	for i := 0; i < n; i++ {
		sumAbs += math.Abs(float64(hw.SampleK()))
	}
	// E|noise| in steps ≈ λ/Δ = 64 (minus a little truncation).
	if meanAbs := sumAbs / n; math.Abs(meanAbs-64)/64 > 0.05 {
		t.Errorf("E|k| = %g, want ~64", meanAbs)
	}
}
