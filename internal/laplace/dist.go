package laplace

import "math"

// Dist is the exact output distribution of the fixed-point Laplace
// RNG — the closed form of eq. 11. All probabilities are exact
// rationals count/2^(B_u+1) evaluated in float64 (counts are below
// 2^30 so the division is exact).
//
// With c = B_u·ln2 and a = Δ/λ, the URNG draw m maps to magnitude
// step k iff m ∈ (m2(k), m1(k)] where m1(k) = exp(c − a(k−½)),
// m2(k) = exp(c − a(k+½)); the integer count in that interval is
// ⌊m1⌋ − ⌊m2⌋. The saturation step KCap additionally absorbs every
// draw whose raw magnitude exceeds the output word.
type Dist struct {
	par FxPParams
}

// NewDist returns the exact distribution of the RNG with parameters
// par. It panics on invalid parameters.
func NewDist(par FxPParams) Dist {
	if err := par.Validate(); err != nil {
		panic(err)
	}
	return Dist{par: par}
}

// Params returns the distribution's parameters.
func (d Dist) Params() FxPParams { return d.par }

// a returns Δ/λ, the grid step expressed in units of the scale.
func (d Dist) a() float64 { return d.par.Delta / d.par.Lambda }

// c returns B_u·ln2.
func (d Dist) c() float64 { return float64(d.par.Bu) * math.Ln2 }

// floorM1 returns ⌊m1(k)⌋ clipped to [0, 2^B_u]: the number of draws
// whose raw (pre-saturation) magnitude rounds to step k or higher.
func (d Dist) floorM1(k int64) float64 {
	e := d.c() - d.a()*(float64(k)-0.5)
	m1 := math.Exp(e)
	cap := math.Ldexp(1, d.par.Bu)
	if m1 >= cap {
		return cap
	}
	return math.Floor(m1)
}

// CountMag returns the exact number of URNG draws m whose output
// magnitude is k steps, including the mass the saturation cap
// absorbs at k = KCap.
func (d Dist) CountMag(k int64) float64 {
	if k < 0 || k > d.par.KCap() {
		return 0
	}
	if k == d.par.KCap() {
		// Everything at or beyond the cap's lower rounding boundary.
		return d.floorM1(k)
	}
	return d.floorM1(k) - d.floorM1(k+1)
}

// ProbMag returns Pr[|n| = kΔ before sign] = CountMag(k)/2^B_u.
func (d Dist) ProbMag(k int64) float64 {
	return d.CountMag(k) * math.Ldexp(1, -d.par.Bu)
}

// Prob returns Pr[n = kΔ] for signed k. The sign bit splits each
// non-zero magnitude in half; k = 0 keeps its full mass.
func (d Dist) Prob(k int64) float64 {
	mag := k
	if mag < 0 {
		mag = -mag
	}
	p := d.ProbMag(mag)
	if k == 0 {
		return p
	}
	return p / 2
}

// TailMag returns Pr[|n| >= kΔ] for k >= 1 — the quantity the
// thresholding analysis bounds (⌊m1(k)⌋/2^B_u on magnitudes).
func (d Dist) TailMag(k int64) float64 {
	if k <= 0 {
		return 1
	}
	if k > d.par.KCap() {
		return 0
	}
	return d.floorM1(k) * math.Ldexp(1, -d.par.Bu)
}

// MaxK returns the largest magnitude step with non-zero probability.
func (d Dist) MaxK() int64 {
	k := d.par.MaxK()
	// Walk down past any zero-probability fringe produced by
	// rounding at the extreme tail.
	for k > 0 && d.CountMag(k) == 0 {
		k--
	}
	return k
}

// PMF materializes the signed probability mass function over
// k = -MaxK .. +MaxK. The slice index i corresponds to k = i - MaxK.
func (d Dist) PMF() ([]float64, int64) {
	maxK := d.MaxK()
	pmf := make([]float64, 2*maxK+1)
	for k := -maxK; k <= maxK; k++ {
		pmf[k+maxK] = d.Prob(k)
	}
	return pmf, maxK
}

// FirstZeroHole returns the smallest positive k <= MaxK() whose
// probability is zero while some k' > k has non-zero probability —
// the "holes" in the tail of Fig. 4(b) that make naive FxP noising
// unable to guarantee DP. The boolean reports whether a hole exists.
func (d Dist) FirstZeroHole() (int64, bool) {
	maxK := d.MaxK()
	for k := int64(1); k < maxK; k++ {
		if d.CountMag(k) == 0 {
			return k, true
		}
	}
	return 0, false
}

// TotalMass sums the full signed PMF; exactly 1 by construction, the
// tests assert it to guard the closed form.
func (d Dist) TotalMass() float64 {
	total := 0.0
	maxK := d.par.KCap()
	for k := int64(0); k <= maxK; k++ {
		total += d.ProbMag(k)
	}
	return total
}
