// Package laplace implements the noise sources of the paper: the
// ideal (real-valued) Laplace distribution used as the privacy
// reference, and the fixed-point inverse-CDF Laplace RNG of Fig. 3
// whose quantized, bounded output is the root cause of the infinite
// privacy loss the paper demonstrates.
//
// The fixed-point RNG is modelled twice, deliberately:
//
//   - Sampler draws concrete noise values through a hardware-faithful
//     datapath (Tausworthe URNG → log unit → scale → round → sign).
//   - Dist is the exact probability mass function of that datapath
//     (the closed form of eq. 11), computed without sampling. The
//     privacy analysis in internal/core consumes Dist; tests check
//     Sampler and Dist agree bit-for-bit by enumerating the URNG
//     input space.
package laplace

import (
	"fmt"
	"math"

	"ulpdp/internal/urng"
)

// Ideal is a real-valued Laplace noise source with mean zero and
// scale lambda (density 1/(2λ)·exp(-|x|/λ)).
type Ideal struct {
	lambda float64
	src    *urng.SplitMix64
}

// NewIdeal returns an ideal Laplace sampler. The scale is caller
// configuration, so a non-positive lambda is a returned error, not a
// panic (DESIGN.md §6).
func NewIdeal(lambda float64, seed uint64) (*Ideal, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("laplace: non-positive scale %g", lambda)
	}
	return &Ideal{lambda: lambda, src: urng.NewSplitMix64(seed)}, nil
}

// Sample draws one variate.
func (l *Ideal) Sample() float64 {
	u := l.src.Float64()
	// Inverse CDF on (−1/2, 1/2]: F⁻¹(p) = −λ·sgn(p)·ln(1−2|p|).
	p := u - 0.5
	if p == 0 {
		return 0
	}
	mag := -l.lambda * math.Log(1-2*math.Abs(p))
	if p < 0 {
		return -mag
	}
	return mag
}

// Scale returns λ.
func (l *Ideal) Scale() float64 { return l.lambda }

// PDF evaluates the Laplace density with scale lambda at x.
func PDF(x, lambda float64) float64 {
	return math.Exp(-math.Abs(x)/lambda) / (2 * lambda)
}

// CDF evaluates the Laplace cumulative distribution at x.
func CDF(x, lambda float64) float64 {
	if x < 0 {
		return 0.5 * math.Exp(x/lambda)
	}
	return 1 - 0.5*math.Exp(-x/lambda)
}

// Quantile is the inverse CDF for p in (0, 1).
func Quantile(p, lambda float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("laplace: quantile of p=%g", p))
	}
	if p < 0.5 {
		return lambda * math.Log(2*p)
	}
	return -lambda * math.Log(2*(1-p))
}
