package laplace

import (
	"fmt"
	"math"
	"math/bits"

	"ulpdp/internal/cordic"
	"ulpdp/internal/urng"
)

// FxPParams describes a fixed-point Laplace RNG in the terms of
// Section III-A2: a B_u-bit uniform magnitude draw u = m·2^-B_u, an
// inverse-CDF map -λ·ln(u), rounding to the nearest multiple of the
// quantization step Δ, saturation at the B_y-bit signed output word,
// and an independent sign bit.
type FxPParams struct {
	Bu     int     // URNG magnitude bits, 2..30
	By     int     // signed output bits, 2..30
	Delta  float64 // quantization step Δ > 0
	Lambda float64 // Laplace scale λ = d/ε > 0
}

// Validate reports whether the parameters are usable.
func (p FxPParams) Validate() error {
	if p.Bu < 2 || p.Bu > 30 {
		return fmt.Errorf("laplace: Bu %d out of range [2,30]", p.Bu)
	}
	if p.By < 2 || p.By > 30 {
		return fmt.Errorf("laplace: By %d out of range [2,30]", p.By)
	}
	if !(p.Delta > 0) {
		return fmt.Errorf("laplace: Delta %g must be positive", p.Delta)
	}
	if !(p.Lambda > 0) {
		return fmt.Errorf("laplace: Lambda %g must be positive", p.Lambda)
	}
	return nil
}

// KCap returns the saturation limit of the output magnitude in steps:
// |k| <= KCap.
func (p FxPParams) KCap() int64 { return int64(1)<<(p.By-1) - 1 }

// MaxNoise returns L = λ·B_u·ln2, the largest magnitude the inverse
// CDF can produce before output saturation (the paper's bound on the
// FxP RNG range).
func (p FxPParams) MaxNoise() float64 {
	return p.Lambda * float64(p.Bu) * math.Ln2
}

// MaxK returns the largest k the RNG actually emits: the inverse-CDF
// bound and the output-word bound, whichever is smaller.
func (p FxPParams) MaxK() int64 {
	k := int64(math.Round(p.MaxNoise() / p.Delta))
	if cap := p.KCap(); k > cap {
		return cap
	}
	return k
}

// LogUnit is the log datapath the sampler uses: the CORDIC core, the
// polynomial approximation, or an exact float64 log (the idealized
// datapath the closed-form analysis assumes).
type LogUnit interface {
	// LnRaw returns ln(v·2^-frac) with Frac() fractional bits.
	LnRaw(v int64, frac int) int64
	// Frac is the fixed-point resolution of the result.
	Frac() int
}

// FloatLog is a LogUnit evaluating ln exactly in float64 and
// quantizing to Frac fractional bits — the reference datapath.
type FloatLog struct{ FracBits int }

// LnRaw implements LogUnit.
func (f FloatLog) LnRaw(v int64, frac int) int64 {
	if v <= 0 {
		panic("laplace: ln of non-positive value")
	}
	return int64(math.Round(math.Ldexp(math.Log(math.Ldexp(float64(v), -frac)), f.FracBits)))
}

// Frac implements LogUnit.
func (f FloatLog) Frac() int { return f.FracBits }

// Sampler is the fixed-point Laplace RNG datapath of Fig. 3.
type Sampler struct {
	par FxPParams
	log LogUnit
	src urng.Source
	// buLn2 is B_u·ln2 in the log unit's fixed point, so the
	// magnitude -λ·ln(m·2^-Bu) = λ·(B_u·ln2 - ln m) is formed with a
	// single subtract, as the hardware does.
	buLn2 int64
	// Integer scaling datapath (hardware mode): the ratio λ/Δ as
	// scaleNum·2^-scaleShift, applied with a 128-bit multiply and a
	// round-half-up shift — the DP-Box's shift-based ε = 2^-n_m
	// multiply. Zero scaleNum selects the float64 reference scaling.
	scaleNum   int64
	scaleShift uint
}

// NewSampler wires a fixed-point Laplace RNG from its parameters, a
// log unit and a uniform source. Pass log == nil for the default
// CORDIC core. Parameters are caller configuration, so invalid ones
// are a returned error, not a panic (DESIGN.md §6).
func NewSampler(par FxPParams, log LogUnit, src urng.Source) (*Sampler, error) {
	if err := par.Validate(); err != nil {
		return nil, err
	}
	if log == nil {
		log = cordic.New(cordic.DefaultConfig)
	}
	return &Sampler{
		par:   par,
		log:   log,
		src:   src,
		buLn2: int64(math.Round(math.Ldexp(float64(par.Bu)*math.Ln2, log.Frac()))),
	}, nil
}

// Params returns the sampler's parameters.
func (s *Sampler) Params() FxPParams { return s.par }

// SampleK draws one noise value and returns it as the signed step
// count k (the noise value is k·Δ).
func (s *Sampler) SampleK() int64 {
	m := urng.Bits(s.src, s.par.Bu)
	k := s.magnitudeK(m)
	if s.signBit() {
		return -k
	}
	return k
}

// Sample draws one noise value k·Δ as a float64 (exactly on the grid).
func (s *Sampler) Sample() float64 { return float64(s.SampleK()) * s.par.Delta }

// NewHWSampler wires the sampler with the integer scaling datapath:
// the ratio λ/Δ must be exactly representable as num·2^-shift with
// num < 2^40 (the DP-Box always satisfies this — its ε is a power of
// two and its port values are grid steps, eq. 19). Bit-for-bit
// reproducibility then extends through the entire datapath: no
// float64 operation touches the noise.
func NewHWSampler(par FxPParams, log LogUnit, src urng.Source) (*Sampler, error) {
	s, err := NewSampler(par, log, src)
	if err != nil {
		return nil, err
	}
	ratio := par.Lambda / par.Delta
	num, shift, ok := dyadic(ratio)
	if !ok {
		return nil, fmt.Errorf("laplace: λ/Δ = %g is not exactly dyadic; use NewSampler", ratio)
	}
	s.scaleNum, s.scaleShift = num, shift
	return s, nil
}

// dyadic decomposes v into num·2^-shift exactly, with num < 2^40 and
// shift <= 40.
func dyadic(v float64) (int64, uint, bool) {
	if !(v > 0) || math.IsInf(v, 0) {
		return 0, 0, false
	}
	for shift := uint(0); shift <= 40; shift++ {
		scaled := math.Ldexp(v, int(shift))
		if scaled != math.Trunc(scaled) {
			continue
		}
		if scaled >= 1<<40 {
			return 0, 0, false
		}
		return int64(scaled), shift, true
	}
	return 0, 0, false
}

// magnitudeK maps the URNG draw m to the rounded, saturated magnitude
// in steps — the deterministic part of the datapath. Exposed to tests
// via MagnitudeForDraw.
func (s *Sampler) magnitudeK(m uint64) int64 {
	lnU := s.log.LnRaw(int64(m), s.par.Bu) // ln(m·2^-Bu) <= 0
	var k int64
	if s.scaleNum != 0 {
		k = s.integerScale(-lnU)
	} else {
		mag := -math.Ldexp(float64(lnU), -s.log.Frac()) * s.par.Lambda
		k = int64(math.Round(mag / s.par.Delta))
	}
	if cap := s.par.KCap(); k > cap {
		k = cap
	}
	if k < 0 {
		k = 0
	}
	return k
}

// integerScale computes round_half_up((scaleNum × negLn) >>
// (scaleShift + log.Frac())) with a full 128-bit product.
func (s *Sampler) integerScale(negLn int64) int64 {
	if negLn <= 0 {
		return 0
	}
	hi, lo := bits.Mul64(uint64(s.scaleNum), uint64(negLn))
	shift := s.scaleShift + uint(s.log.Frac())
	// Add half an output step before shifting for round-half-up.
	halfHi, halfLo := uint64(0), uint64(0)
	if shift > 0 {
		if shift <= 64 {
			halfLo = 1 << (shift - 1)
		} else {
			halfHi = 1 << (shift - 65)
		}
	}
	var carry uint64
	lo, carry = bits.Add64(lo, halfLo, 0)
	hi, _ = bits.Add64(hi, halfHi, carry)
	if shift >= 64 {
		return int64(hi >> (shift - 64))
	}
	return int64(hi<<(64-shift) | lo>>shift)
}

// MagnitudeForDraw exposes the deterministic URNG→magnitude map for
// exhaustive equivalence tests against Dist.
func (s *Sampler) MagnitudeForDraw(m uint64) int64 { return s.magnitudeK(m) }

func (s *Sampler) signBit() bool { return s.src.Uint32()&1 == 1 }
