package fault

import "testing"

type fixedSource struct{ w uint32 }

func (s *fixedSource) Uint32() uint32 { return s.w }

type fixedLog struct{ raw int64 }

func (l *fixedLog) LnRaw(int64, int) int64 { return l.raw }
func (l *fixedLog) Frac() int              { return 14 }

func TestNilInjectorsPassThrough(t *testing.T) {
	p := NewPlane()
	src := p.WrapSource(&fixedSource{w: 0xDEADBEEF})
	if got := src.Uint32(); got != 0xDEADBEEF {
		t.Fatalf("wrapped source perturbed with no injector: %#x", got)
	}
	lg := p.WrapLog(&fixedLog{raw: -42})
	if got := lg.LnRaw(1, 14); got != -42 {
		t.Fatalf("wrapped log perturbed with no injector: %d", got)
	}
	if lg.Frac() != 14 {
		t.Fatalf("Frac not forwarded")
	}
	if c, d := p.PerturbCommand(3, 7); c != 3 || d != 7 {
		t.Fatalf("command perturbed with no injector: %d %d", c, d)
	}
	for k := KindURNG; k <= KindPower; k++ {
		if p.Injections(k) != 0 {
			t.Fatalf("spurious injection count for %v", k)
		}
	}
}

func TestURNGInjectors(t *testing.T) {
	cases := []struct {
		name string
		f    URNGFault
		in   uint32
		want uint32
	}{
		{"stuck", StuckWord(5), 0xFFFF, 5},
		{"flip", BitFlip(0b1010), 0b0110, 0b1100},
		{"ones", BiasOnes(0x8000_0000), 1, 0x8000_0001},
		{"zeros", BiasZeros(0xFF), 0x1234, 0x1200},
	}
	for _, tc := range cases {
		p := NewPlane()
		p.SetURNGFault(tc.f)
		src := p.WrapSource(&fixedSource{w: tc.in})
		if got := src.Uint32(); got != tc.want {
			t.Errorf("%s: got %#x want %#x", tc.name, got, tc.want)
		}
		if p.Injections(KindURNG) != 1 {
			t.Errorf("%s: injection count %d", tc.name, p.Injections(KindURNG))
		}
	}
}

func TestScheduleThenPassThrough(t *testing.T) {
	p := NewPlane()
	p.SetURNGFault(Schedule([]uint32{9, 8}))
	src := p.WrapSource(&fixedSource{w: 100})
	for i, want := range []uint32{9, 8, 100, 100} {
		if got := src.Uint32(); got != want {
			t.Fatalf("draw %d: got %d want %d", i, got, want)
		}
	}
}

func TestIntermittent(t *testing.T) {
	p := NewPlane()
	p.SetURNGFault(Intermittent(3, StuckWord(0)))
	src := p.WrapSource(&fixedSource{w: 7})
	got := []uint32{src.Uint32(), src.Uint32(), src.Uint32(), src.Uint32()}
	want := []uint32{7, 7, 0, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestLogInjectors(t *testing.T) {
	p := NewPlane()
	p.SetLogFault(LogOffset(10))
	lg := p.WrapLog(&fixedLog{raw: -100})
	if got := lg.LnRaw(1, 14); got != -90 {
		t.Fatalf("offset: got %d", got)
	}
	p.SetLogFault(LogStuck(-1))
	if got := lg.LnRaw(1, 14); got != -1 {
		t.Fatalf("stuck: got %d", got)
	}
	if p.Injections(KindLog) != 2 {
		t.Fatalf("injection count %d", p.Injections(KindLog))
	}
}

func TestCommandBitFlipPeriod(t *testing.T) {
	p := NewPlane()
	p.SetCommandFault(CommandBitFlip(0b100, 1, 2))
	c1, d1 := p.PerturbCommand(1, 0)
	c2, d2 := p.PerturbCommand(1, 0)
	if c1 != 1 || d1 != 0 {
		t.Fatalf("first transaction perturbed: %d %d", c1, d1)
	}
	if c2 != 0b101 || d2 != 1 {
		t.Fatalf("second transaction not perturbed: %d %d", c2, d2)
	}
	if p.Injections(KindCommand) != 1 {
		t.Fatalf("injection count %d", p.Injections(KindCommand))
	}
}

func TestPowerLossSchedule(t *testing.T) {
	p := NewPlane()
	p.SchedulePowerLoss(2)
	for c := 0; c < 2; c++ {
		if p.Tick() {
			t.Fatalf("power lost early at cycle %d", c)
		}
	}
	if !p.Tick() {
		t.Fatal("power loss not delivered at scheduled cycle")
	}
	if p.Tick() {
		t.Fatal("power loss delivered twice")
	}
	if p.Injections(KindPower) != 1 {
		t.Fatalf("injection count %d", p.Injections(KindPower))
	}
	// Scheduling in the past fires on the next tick.
	p.SchedulePowerLoss(0)
	if !p.Tick() {
		t.Fatal("past-cycle schedule did not fire")
	}
}

func TestNilPlaneSemantics(t *testing.T) {
	// A zero plane injects nothing and never loses power.
	var p Plane
	if p.Tick() {
		t.Fatal("zero plane lost power")
	}
	if c, d := p.PerturbCommand(2, 3); c != 2 || d != 3 {
		t.Fatal("zero plane perturbed command")
	}
}

func TestPacketSitePassThrough(t *testing.T) {
	p := NewPlane()
	fate := p.PerturbPacket(DirUp, []byte{1, 2, 3})
	if fate.Drop || fate.Duplicates != 0 || fate.Delay != 0 || fate.Corrupt {
		t.Fatalf("non-zero fate with no injector: %+v", fate)
	}
	if p.Injections(KindPacket) != 0 {
		t.Fatalf("spurious packet injection count")
	}
}

func TestLossyLinkDeterministicSchedule(t *testing.T) {
	// Two planes with the same seed and profile must hand every frame
	// the same fate, frame for frame.
	prof := LinkProfile{Drop: 0.3, Duplicate: 0.2, Reorder: 0.2, Corrupt: 0.2, MaxDelay: 4}
	a, b := NewPlane(), NewPlane()
	a.SetPacketFault(LossyLink(7, prof))
	b.SetPacketFault(LossyLink(7, prof))
	payload := []byte{0xAB, 0xCD, 0xEF, 0x01}
	for i := 0; i < 512; i++ {
		fa := a.PerturbPacket(DirUp, payload)
		fb := b.PerturbPacket(DirUp, payload)
		if fa != fb {
			t.Fatalf("frame %d: fates diverge: %+v vs %+v", i, fa, fb)
		}
		if fa.Delay < 0 || fa.Delay > prof.MaxDelay {
			t.Fatalf("frame %d: delay %d outside [0, %d]", i, fa.Delay, prof.MaxDelay)
		}
		if fa.Corrupt && (fa.FlipBit < 0 || fa.FlipBit >= len(payload)*8) {
			t.Fatalf("frame %d: flip bit %d out of payload range", i, fa.FlipBit)
		}
	}
	if a.Injections(KindPacket) != b.Injections(KindPacket) {
		t.Fatalf("injection counts diverge: %d vs %d",
			a.Injections(KindPacket), b.Injections(KindPacket))
	}
	if a.Injections(KindPacket) == 0 {
		t.Fatal("profile with 0.3 drop delivered zero injections over 512 frames")
	}
}

func TestLossyLinkRates(t *testing.T) {
	// Loose sanity band on the empirical drop rate over many frames.
	p := NewPlane()
	p.SetPacketFault(LossyLink(11, LinkProfile{Drop: 0.25}))
	const n = 20000
	drops := 0
	for i := 0; i < n; i++ {
		if p.PerturbPacket(DirUp, []byte{1}).Drop {
			drops++
		}
	}
	rate := float64(drops) / n
	if rate < 0.22 || rate > 0.28 {
		t.Fatalf("empirical drop rate %.3f far from configured 0.25", rate)
	}
}

func TestZeroProfileIsPerfectLink(t *testing.T) {
	p := NewPlane()
	p.SetPacketFault(LossyLink(3, LinkProfile{}))
	for i := 0; i < 256; i++ {
		if fate := p.PerturbPacket(DirDown, []byte{9, 9}); fate != (PacketFate{}) {
			t.Fatalf("zero profile perturbed frame %d: %+v", i, fate)
		}
	}
	if p.Injections(KindPacket) != 0 {
		t.Fatal("zero profile counted injections")
	}
}
