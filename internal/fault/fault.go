// Package fault is the injectable fault plane for the DP-Box pipeline.
//
// A *Plane carries at most one injector per fault site — the URNG word
// stream, the CORDIC/log datapath, the command register, and the power
// rail — and is threaded through the simulator by the owning component
// (dpbox wires it into urng.Source and laplace.LogUnit wrappers and
// into its command decoder and cycle counter). Every hook is
// zero-cost-when-nil: with no injector installed a wrapped call is one
// pointer load and a nil compare on top of the real draw, and nothing
// allocates on the hot path.
//
// The plane is deliberately single-owner, single-goroutine state, like
// the cycle-level simulator it perturbs. It is not safe for concurrent
// use.
package fault

// Kind labels a fault site for the injection counters.
type Kind int

const (
	// KindURNG counts perturbed uniform random words.
	KindURNG Kind = iota
	// KindLog counts perturbed CORDIC/log outputs.
	KindLog
	// KindCommand counts perturbed command-register transactions.
	KindCommand
	// KindPower counts delivered power-loss events.
	KindPower

	kindCount
)

// String names the fault site.
func (k Kind) String() string {
	switch k {
	case KindURNG:
		return "urng"
	case KindLog:
		return "log"
	case KindCommand:
		return "command"
	case KindPower:
		return "power"
	}
	return "unknown"
}

// URNGFault perturbs one uniform random word. cycle is the owning
// device's cycle counter at the time of the draw.
type URNGFault func(cycle uint64, word uint32) uint32

// LogFault perturbs one raw fixed-point log/CORDIC output.
type LogFault func(cycle uint64, raw int64) int64

// CommandFault perturbs one command-port transaction (3-bit opcode
// plus data word) before the device decodes it.
type CommandFault func(cycle uint64, cmd uint8, data int64) (uint8, int64)

// Plane is one device's fault plane. The zero value (and a nil *Plane)
// injects nothing.
type Plane struct {
	cycle uint64

	urngFault URNGFault
	logFault  LogFault
	cmdFault  CommandFault

	powerArmed bool
	powerCycle uint64

	counts [kindCount]uint64
}

// NewPlane returns an empty fault plane.
func NewPlane() *Plane { return &Plane{} }

// SetURNGFault installs (or, with nil, removes) the URNG injector.
func (p *Plane) SetURNGFault(f URNGFault) { p.urngFault = f }

// SetLogFault installs (or removes) the CORDIC/log injector.
func (p *Plane) SetLogFault(f LogFault) { p.logFault = f }

// SetCommandFault installs (or removes) the command-register injector.
func (p *Plane) SetCommandFault(f CommandFault) { p.cmdFault = f }

// SchedulePowerLoss arms a power-loss event at the given device cycle
// (0-based: cycle 0 kills the first tick). At most one event is armed
// at a time; re-arming replaces the previous schedule.
func (p *Plane) SchedulePowerLoss(cycle uint64) {
	p.powerArmed = true
	p.powerCycle = cycle
}

// DisarmPowerLoss cancels a scheduled power loss.
func (p *Plane) DisarmPowerLoss() { p.powerArmed = false }

// Tick advances the plane's cycle counter and reports whether the
// power rail fails on this cycle. The owning device calls it once per
// device cycle and must treat a true return as an immediate loss of
// all volatile state.
func (p *Plane) Tick() (powerLost bool) {
	c := p.cycle
	p.cycle++
	if p.powerArmed && c >= p.powerCycle {
		p.powerArmed = false
		p.counts[KindPower]++
		return true
	}
	return false
}

// Cycle returns the plane's current cycle counter.
func (p *Plane) Cycle() uint64 { return p.cycle }

// Injections returns how many faults have been delivered at a site.
func (p *Plane) Injections(k Kind) uint64 {
	if k < 0 || k >= kindCount {
		return 0
	}
	return p.counts[k]
}

// PerturbCommand applies the command-register injector, if any.
func (p *Plane) PerturbCommand(cmd uint8, data int64) (uint8, int64) {
	if f := p.cmdFault; f != nil {
		c2, d2 := f(p.cycle, cmd, data)
		if c2 != cmd || d2 != data {
			p.counts[KindCommand]++
		}
		return c2, d2
	}
	return cmd, data
}

// uint32Source matches urng.Source without importing it, keeping this
// package dependency-free; dpbox adapts the concrete interface.
type uint32Source interface {
	Uint32() uint32
}

// wrappedSource applies the plane's URNG injector to an inner source.
type wrappedSource struct {
	p     *Plane
	inner uint32Source
}

// Uint32 draws from the inner source and perturbs the word if an
// injector is installed.
func (s *wrappedSource) Uint32() uint32 {
	w := s.inner.Uint32()
	if f := s.p.urngFault; f != nil {
		w2 := f(s.p.cycle, w)
		if w2 != w {
			s.p.counts[KindURNG]++
		}
		return w2
	}
	return w
}

// WrapSource returns a source that feeds inner through the plane's
// URNG injector. The wrapper is allocated once at configuration time;
// per-draw it costs one nil check when no injector is installed.
func (p *Plane) WrapSource(inner uint32Source) interface{ Uint32() uint32 } {
	return &wrappedSource{p: p, inner: inner}
}

// logUnit matches laplace.LogUnit without importing it.
type logUnit interface {
	LnRaw(v int64, frac int) int64
	Frac() int
}

// wrappedLog applies the plane's log injector to an inner log unit.
type wrappedLog struct {
	p     *Plane
	inner logUnit
}

// LnRaw evaluates the inner unit and perturbs the raw output if an
// injector is installed.
func (l *wrappedLog) LnRaw(v int64, frac int) int64 {
	r := l.inner.LnRaw(v, frac)
	if f := l.p.logFault; f != nil {
		r2 := f(l.p.cycle, r)
		if r2 != r {
			l.p.counts[KindLog]++
		}
		return r2
	}
	return r
}

// Frac forwards the inner unit's fraction width.
func (l *wrappedLog) Frac() int { return l.inner.Frac() }

// WrapLog returns a log unit that feeds inner through the plane's
// CORDIC/log injector.
func (p *Plane) WrapLog(inner logUnit) interface {
	LnRaw(v int64, frac int) int64
	Frac() int
} {
	return &wrappedLog{p: p, inner: inner}
}

// --- canned injectors ---

// StuckWord returns a URNG fault that replaces every draw with a
// constant word (a stuck-at fault on the whole register).
func StuckWord(w uint32) URNGFault {
	return func(uint64, uint32) uint32 { return w }
}

// BitFlip returns a URNG fault that XORs the given mask into every
// draw (stuck-at / coupling faults on individual bit lines).
func BitFlip(mask uint32) URNGFault {
	return func(_ uint64, w uint32) uint32 { return w ^ mask }
}

// BiasOnes returns a URNG fault that ORs the mask into every draw,
// biasing the masked bits toward 1.
func BiasOnes(mask uint32) URNGFault {
	return func(_ uint64, w uint32) uint32 { return w | mask }
}

// BiasZeros returns a URNG fault that ANDs the complement of the mask
// into every draw, biasing the masked bits toward 0.
func BiasZeros(mask uint32) URNGFault {
	return func(_ uint64, w uint32) uint32 { return w &^ mask }
}

// Schedule returns a URNG fault that substitutes an adversarial word
// sequence for the real stream. After the schedule is exhausted the
// real stream passes through unperturbed.
func Schedule(words []uint32) URNGFault {
	seq := append([]uint32(nil), words...)
	i := 0
	return func(_ uint64, w uint32) uint32 {
		if i < len(seq) {
			w = seq[i]
			i++
		}
		return w
	}
}

// Intermittent returns a URNG fault that applies inner only on every
// period-th draw (transient upset model).
func Intermittent(period uint64, inner URNGFault) URNGFault {
	if period == 0 {
		period = 1
	}
	var n uint64
	return func(cycle uint64, w uint32) uint32 {
		n++
		if n%period == 0 {
			return inner(cycle, w)
		}
		return w
	}
}

// LogOffset returns a log fault that adds a constant raw offset to
// every CORDIC output (systematic datapath error).
func LogOffset(delta int64) LogFault {
	return func(_ uint64, r int64) int64 { return r + delta }
}

// LogStuck returns a log fault that replaces every CORDIC output with
// a constant raw value.
func LogStuck(raw int64) LogFault {
	return func(uint64, int64) int64 { return raw }
}

// CommandBitFlip returns a command fault that XORs cmdMask into the
// opcode and dataMask into the data word on every period-th
// transaction (period 0 or 1 means every transaction).
func CommandBitFlip(cmdMask uint8, dataMask int64, period uint64) CommandFault {
	if period == 0 {
		period = 1
	}
	var n uint64
	return func(_ uint64, cmd uint8, data int64) (uint8, int64) {
		n++
		if n%period == 0 {
			return cmd ^ cmdMask, data ^ dataMask
		}
		return cmd, data
	}
}
