// Package fault is the injectable fault plane for the DP-Box pipeline
// and the fleet transport above it.
//
// A *Plane carries at most one injector per fault site — the URNG word
// stream, the CORDIC/log datapath, the command register, the power
// rail, and the packet link — and is threaded through the simulator by
// the owning component (dpbox wires it into urng.Source and
// laplace.LogUnit wrappers and into its command decoder and cycle
// counter; transport.Link wires it into its frame scheduler). Every
// hook is zero-cost-when-nil: with no injector installed a wrapped
// call is one pointer load and a nil compare on top of the real draw,
// and nothing allocates on the hot path.
//
// The device sites are deliberately single-owner, single-goroutine
// state, like the cycle-level simulator they perturb. The packet site
// is the one exception: transport links carry frames between
// goroutines, so PerturbPacket serializes itself internally and an
// installed PacketFault must be safe under that serialization (the
// canned LossyLink injector is).
package fault

import "sync"

// Kind labels a fault site for the injection counters.
type Kind int

const (
	// KindURNG counts perturbed uniform random words.
	KindURNG Kind = iota
	// KindLog counts perturbed CORDIC/log outputs.
	KindLog
	// KindCommand counts perturbed command-register transactions.
	KindCommand
	// KindPower counts delivered power-loss events.
	KindPower
	// KindPacket counts perturbed transport frames (dropped,
	// duplicated, delayed or corrupted).
	KindPacket

	kindCount
)

// String names the fault site.
func (k Kind) String() string {
	switch k {
	case KindURNG:
		return "urng"
	case KindLog:
		return "log"
	case KindCommand:
		return "command"
	case KindPower:
		return "power"
	case KindPacket:
		return "packet"
	}
	return "unknown"
}

// URNGFault perturbs one uniform random word. cycle is the owning
// device's cycle counter at the time of the draw.
type URNGFault func(cycle uint64, word uint32) uint32

// LogFault perturbs one raw fixed-point log/CORDIC output.
type LogFault func(cycle uint64, raw int64) int64

// CommandFault perturbs one command-port transaction (3-bit opcode
// plus data word) before the device decodes it.
type CommandFault func(cycle uint64, cmd uint8, data int64) (uint8, int64)

// Link directions for the packet site.
const (
	// DirUp labels node→collector frames (reports).
	DirUp uint8 = 0
	// DirDown labels collector→node frames (ACKs).
	DirDown uint8 = 1
)

// PacketFate is the verdict of the packet injector on one frame. The
// zero value delivers the frame untouched, exactly once, in order.
type PacketFate struct {
	// Drop discards the frame entirely.
	Drop bool
	// Duplicates is the number of extra copies delivered after the
	// original.
	Duplicates int
	// Delay holds the frame back until that many later frames have
	// been offered on the same direction (reordering). The link
	// releases held frames when the hold expires or the direction
	// drains, so a delayed frame is late, never lost.
	Delay int
	// Corrupt flips FlipBit (an index into the payload's bits, taken
	// modulo its length) in flight; the receiver's checksum is
	// expected to catch it.
	Corrupt bool
	// FlipBit selects the corrupted bit when Corrupt is set.
	FlipBit int
}

// PacketFault decides the fate of one transport frame. n counts frames
// offered on the plane's packet site (both directions), and payload is
// the marshalled frame — the fault must not mutate it (corruption goes
// through FlipBit so the link can corrupt a copy).
type PacketFault func(n uint64, dir uint8, payload []byte) PacketFate

// Plane is one device's fault plane. The zero value (and a nil *Plane)
// injects nothing.
type Plane struct {
	cycle uint64

	urngFault URNGFault
	logFault  LogFault
	cmdFault  CommandFault

	powerArmed bool
	powerCycle uint64
	powerSink  PowerSink

	counts [kindCount]uint64

	// The packet site crosses goroutines (transport links are
	// concurrent); its injector, frame counter and injection count are
	// guarded separately so the single-goroutine device sites stay
	// lock-free.
	pktMu    sync.Mutex
	pktFault PacketFault
	pktN     uint64
	pktCount uint64
}

// NewPlane returns an empty fault plane.
func NewPlane() *Plane { return &Plane{} }

// SetURNGFault installs (or, with nil, removes) the URNG injector.
func (p *Plane) SetURNGFault(f URNGFault) { p.urngFault = f }

// SetLogFault installs (or removes) the CORDIC/log injector.
func (p *Plane) SetLogFault(f LogFault) { p.logFault = f }

// SetCommandFault installs (or removes) the command-register injector.
func (p *Plane) SetCommandFault(f CommandFault) { p.cmdFault = f }

// SchedulePowerLoss arms a power-loss event at the given device cycle
// (0-based: cycle 0 kills the first tick). At most one event is armed
// at a time; re-arming replaces the previous schedule.
func (p *Plane) SchedulePowerLoss(cycle uint64) {
	p.powerArmed = true
	p.powerCycle = cycle
}

// DisarmPowerLoss cancels a scheduled power loss.
func (p *Plane) DisarmPowerLoss() { p.powerArmed = false }

// PowerSink is a non-volatile store that must lose power with the
// rail — in practice an internal/nvm supply cell. It is an interface
// here only to keep the fault plane's dependency arrow pointing
// outward.
type PowerSink interface {
	// Kill drops the store's power; all further writes fail closed.
	Kill()
}

// BindPowerSink attaches the store the power-loss site kills when the
// rail fails (nil detaches). The owning device still loses its own
// volatile state via Tick's return value; the sink binding guarantees
// the NVM dies at the same instant even if the device's failure path
// is itself faulty.
func (p *Plane) BindPowerSink(s PowerSink) { p.powerSink = s }

// Tick advances the plane's cycle counter and reports whether the
// power rail fails on this cycle. The owning device calls it once per
// device cycle and must treat a true return as an immediate loss of
// all volatile state.
func (p *Plane) Tick() (powerLost bool) {
	c := p.cycle
	p.cycle++
	if p.powerArmed && c >= p.powerCycle {
		p.powerArmed = false
		p.counts[KindPower]++
		if p.powerSink != nil {
			p.powerSink.Kill()
		}
		return true
	}
	return false
}

// Cycle returns the plane's current cycle counter.
func (p *Plane) Cycle() uint64 { return p.cycle }

// Injections returns how many faults have been delivered at a site.
func (p *Plane) Injections(k Kind) uint64 {
	if k < 0 || k >= kindCount {
		return 0
	}
	if k == KindPacket {
		p.pktMu.Lock()
		defer p.pktMu.Unlock()
		return p.pktCount
	}
	return p.counts[k]
}

// SetPacketFault installs (or, with nil, removes) the packet injector.
// Safe to call concurrently with link traffic.
func (p *Plane) SetPacketFault(f PacketFault) {
	p.pktMu.Lock()
	p.pktFault = f
	p.pktMu.Unlock()
}

// PerturbPacket applies the packet injector, if any, to one frame and
// returns its fate. Frames from concurrent senders are serialized, so
// the injector sees a total order and deterministic schedules stay
// deterministic per-stream. The zero fate (deliver untouched) is
// returned when no injector is installed.
func (p *Plane) PerturbPacket(dir uint8, payload []byte) PacketFate {
	p.pktMu.Lock()
	defer p.pktMu.Unlock()
	f := p.pktFault
	if f == nil {
		return PacketFate{}
	}
	n := p.pktN
	p.pktN++
	fate := f(n, dir, payload)
	if fate.Drop || fate.Duplicates != 0 || fate.Delay != 0 || fate.Corrupt {
		p.pktCount++
	}
	return fate
}

// PerturbCommand applies the command-register injector, if any.
func (p *Plane) PerturbCommand(cmd uint8, data int64) (uint8, int64) {
	if f := p.cmdFault; f != nil {
		c2, d2 := f(p.cycle, cmd, data)
		if c2 != cmd || d2 != data {
			p.counts[KindCommand]++
		}
		return c2, d2
	}
	return cmd, data
}

// uint32Source matches urng.Source without importing it, keeping this
// package dependency-free; dpbox adapts the concrete interface.
type uint32Source interface {
	Uint32() uint32
}

// wrappedSource applies the plane's URNG injector to an inner source.
type wrappedSource struct {
	p     *Plane
	inner uint32Source
}

// Uint32 draws from the inner source and perturbs the word if an
// injector is installed.
func (s *wrappedSource) Uint32() uint32 {
	w := s.inner.Uint32()
	if f := s.p.urngFault; f != nil {
		w2 := f(s.p.cycle, w)
		if w2 != w {
			s.p.counts[KindURNG]++
		}
		return w2
	}
	return w
}

// WrapSource returns a source that feeds inner through the plane's
// URNG injector. The wrapper is allocated once at configuration time;
// per-draw it costs one nil check when no injector is installed.
func (p *Plane) WrapSource(inner uint32Source) interface{ Uint32() uint32 } {
	return &wrappedSource{p: p, inner: inner}
}

// logUnit matches laplace.LogUnit without importing it.
type logUnit interface {
	LnRaw(v int64, frac int) int64
	Frac() int
}

// wrappedLog applies the plane's log injector to an inner log unit.
type wrappedLog struct {
	p     *Plane
	inner logUnit
}

// LnRaw evaluates the inner unit and perturbs the raw output if an
// injector is installed.
func (l *wrappedLog) LnRaw(v int64, frac int) int64 {
	r := l.inner.LnRaw(v, frac)
	if f := l.p.logFault; f != nil {
		r2 := f(l.p.cycle, r)
		if r2 != r {
			l.p.counts[KindLog]++
		}
		return r2
	}
	return r
}

// Frac forwards the inner unit's fraction width.
func (l *wrappedLog) Frac() int { return l.inner.Frac() }

// WrapLog returns a log unit that feeds inner through the plane's
// CORDIC/log injector.
func (p *Plane) WrapLog(inner logUnit) interface {
	LnRaw(v int64, frac int) int64
	Frac() int
} {
	return &wrappedLog{p: p, inner: inner}
}

// --- canned injectors ---

// StuckWord returns a URNG fault that replaces every draw with a
// constant word (a stuck-at fault on the whole register).
func StuckWord(w uint32) URNGFault {
	return func(uint64, uint32) uint32 { return w }
}

// BitFlip returns a URNG fault that XORs the given mask into every
// draw (stuck-at / coupling faults on individual bit lines).
func BitFlip(mask uint32) URNGFault {
	return func(_ uint64, w uint32) uint32 { return w ^ mask }
}

// BiasOnes returns a URNG fault that ORs the mask into every draw,
// biasing the masked bits toward 1.
func BiasOnes(mask uint32) URNGFault {
	return func(_ uint64, w uint32) uint32 { return w | mask }
}

// BiasZeros returns a URNG fault that ANDs the complement of the mask
// into every draw, biasing the masked bits toward 0.
func BiasZeros(mask uint32) URNGFault {
	return func(_ uint64, w uint32) uint32 { return w &^ mask }
}

// Schedule returns a URNG fault that substitutes an adversarial word
// sequence for the real stream. After the schedule is exhausted the
// real stream passes through unperturbed.
func Schedule(words []uint32) URNGFault {
	seq := append([]uint32(nil), words...)
	i := 0
	return func(_ uint64, w uint32) uint32 {
		if i < len(seq) {
			w = seq[i]
			i++
		}
		return w
	}
}

// Intermittent returns a URNG fault that applies inner only on every
// period-th draw (transient upset model).
func Intermittent(period uint64, inner URNGFault) URNGFault {
	if period == 0 {
		period = 1
	}
	var n uint64
	return func(cycle uint64, w uint32) uint32 {
		n++
		if n%period == 0 {
			return inner(cycle, w)
		}
		return w
	}
}

// LogOffset returns a log fault that adds a constant raw offset to
// every CORDIC output (systematic datapath error).
func LogOffset(delta int64) LogFault {
	return func(_ uint64, r int64) int64 { return r + delta }
}

// LogStuck returns a log fault that replaces every CORDIC output with
// a constant raw value.
func LogStuck(raw int64) LogFault {
	return func(uint64, int64) int64 { return raw }
}

// LinkProfile parameterizes the canned lossy-link packet injector.
// All probabilities are per-frame and independent; the zero profile is
// a perfect link.
type LinkProfile struct {
	// Drop is the probability a frame is discarded.
	Drop float64
	// Duplicate is the probability one extra copy is delivered.
	Duplicate float64
	// Reorder is the probability a frame is held back behind later
	// frames (delayed by 1..MaxDelay slots).
	Reorder float64
	// Corrupt is the probability one payload bit is flipped in flight.
	Corrupt float64
	// MaxDelay caps the reorder holdback in frames (default 3).
	MaxDelay int
}

// LossyLink returns a packet fault drawing each frame's fate from the
// profile with a dedicated seeded generator (an xorshift64*, so the
// schedule is reproducible and independent of every device RNG). The
// returned fault owns its generator and must be installed on exactly
// one plane; PerturbPacket's serialization makes it concurrency-safe.
func LossyLink(seed uint64, prof LinkProfile) PacketFault {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	maxDelay := prof.MaxDelay
	if maxDelay <= 0 {
		maxDelay = 3
	}
	state := seed
	next := func() uint64 {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return state * 0x2545F4914F6CDD1D
	}
	unit := func() float64 {
		return float64(next()>>11) / (1 << 53)
	}
	return func(_ uint64, _ uint8, payload []byte) PacketFate {
		var fate PacketFate
		// Every frame draws drop, duplicate and reorder exactly once,
		// so one frame's fate never shifts the draws of the next.
		if unit() < prof.Drop {
			fate.Drop = true
		}
		if unit() < prof.Duplicate {
			fate.Duplicates = 1
		}
		if unit() < prof.Reorder {
			fate.Delay = 1 + int(next()%uint64(maxDelay))
		}
		if unit() < prof.Corrupt && len(payload) > 0 {
			fate.Corrupt = true
			fate.FlipBit = int(next() % uint64(len(payload)*8))
		}
		return fate
	}
}

// CommandBitFlip returns a command fault that XORs cmdMask into the
// opcode and dataMask into the data word on every period-th
// transaction (period 0 or 1 means every transaction).
func CommandBitFlip(cmdMask uint8, dataMask int64, period uint64) CommandFault {
	if period == 0 {
		period = 1
	}
	var n uint64
	return func(_ uint64, cmd uint8, data int64) (uint8, int64) {
		n++
		if n%period == 0 {
			return cmd ^ cmdMask, data ^ dataMask
		}
		return cmd, data
	}
}
