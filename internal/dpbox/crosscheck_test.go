package dpbox

import (
	"math"
	"testing"
	"testing/quick"

	"ulpdp/internal/budget"
	"ulpdp/internal/core"
	"ulpdp/internal/urng"
)

// TestChargeTableMatchesReferenceController cross-validates the two
// implementations of Algorithm 1: the DP-Box's fixed-point embedded
// charging must never charge less than the reference controller
// (rounding up to sixteenth-nat units is the only allowed
// difference).
func TestChargeTableMatchesReferenceController(t *testing.T) {
	par := core.Params{Lo: 0, Hi: 16, Eps: 0.5, Bu: 12, By: 10, Delta: 1}
	ref, err := budget.New(par, budget.Config{
		Budget: 1e6, Mult: 2, Multipliers: []float64{1.25, 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	box := boot(t, Config{Bu: 12, By: 10, Mult: 2, Multipliers: []float64{1.25, 1.5},
		Source: urng.NewTaus88(77)}, 1e6)
	if _, err := box.NoiseValue(8); err != nil {
		t.Fatal(err) // derive tables
	}
	if box.Threshold() != ref.Threshold() {
		t.Fatalf("thresholds differ: dpbox %d vs controller %d", box.Threshold(), ref.Threshold())
	}
	for y := -box.Threshold(); y <= 16+box.Threshold(); y++ {
		hw := float64(box.chargeUnitsFor(y)) * chargeUnit
		sw := ref.ChargeFor(y)
		if hw < sw-1e-12 {
			t.Errorf("output %d: hardware charge %g below reference %g", y, hw, sw)
		}
		if hw > sw+chargeUnit+1e-12 {
			t.Errorf("output %d: hardware charge %g over-rounds reference %g", y, hw, sw)
		}
	}
}

// TestQuickCertifiedThresholdsAlwaysHold fuzzes the privacy
// configuration space: whenever the closed-form calculators accept a
// configuration, the exact analyzer must certify the result.
func TestQuickCertifiedThresholdsAlwaysHold(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzer fuzzing is slow")
	}
	prop := func(buRaw, rangeRaw, epsRaw, multRaw uint8) bool {
		bu := 8 + int(buRaw%9)               // 8..16
		rangeSteps := 4 + int(rangeRaw%60)   // 4..63
		eps := math.Ldexp(1, -int(epsRaw%3)) // 1, 0.5, 0.25
		mult := 1.5 + float64(multRaw%3)*0.5 // 1.5, 2, 2.5
		par := core.Params{
			Lo: 0, Hi: float64(rangeSteps), Eps: eps,
			Bu: bu, By: 12, Delta: 1,
		}
		if par.Validate() != nil {
			return true
		}
		an := core.NewAnalyzer(par)
		if th, err := core.ThresholdingThreshold(par, mult); err == nil {
			if !an.ThresholdingLoss(th).Bounded(mult * eps) {
				t.Logf("thresholding violation: %+v mult=%g th=%d", par, mult, th)
				return false
			}
		}
		if th, err := core.ResamplingThreshold(par, mult); err == nil {
			if !an.ResamplingLoss(th).Bounded(mult * eps) {
				t.Logf("resampling violation: %+v mult=%g th=%d", par, mult, th)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
