package dpbox

import (
	"errors"
	"math"
	"testing"

	"ulpdp/internal/core"
	"ulpdp/internal/fault"
	"ulpdp/internal/laplace"
)

// constSource is a urng.Source stuck at a single word — the software
// twin of the fault plane's StuckWord injector, used to predict what
// the hardware must emit under that fault.
type constSource uint32

func (c constSource) Uint32() uint32 { return uint32(c) }

// faultCfg is smallCfg with a fresh fault plane attached.
func faultCfg(seed uint64) (Config, *fault.Plane) {
	fp := fault.NewPlane()
	cfg := smallCfg(seed)
	cfg.Faults = fp
	return cfg, fp
}

// bootResampling powers up a resampling-mode box and runs one honest
// transaction so the guard threshold and watchdog are derived.
func bootResampling(t *testing.T, cfg Config) *DPBox {
	t.Helper()
	b := boot(t, cfg, 1e9)
	if err := b.SetResampling(true); err != nil {
		t.Fatal(err)
	}
	if _, err := b.NoiseValue(8); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestWatchdogBoundsAdversarialResampling is the tentpole termination
// guarantee: an always-out-of-window URNG (stuck at the minimal word,
// i.e. the maximal noise magnitude every draw) must not stall the
// resampling loop. The watchdog trips within its analytically derived
// cap and the transaction degrades to the certified thresholding
// clamp.
func TestWatchdogBoundsAdversarialResampling(t *testing.T) {
	cfg, fp := faultCfg(21)
	b := bootResampling(t, cfg)

	cap := b.ResampleCap()
	if cap < 4 || cap > 2048 {
		t.Fatalf("resample cap %d outside [4, 2048]", cap)
	}
	degTh, ok := b.DegradeThreshold()
	if !ok {
		t.Fatal("no certified degrade threshold derived")
	}

	// Stuck word 1: magnitude draw m=1 (the largest noise step count)
	// and sign bit 1 on every draw — never inside the window.
	fp.SetURNGFault(fault.StuckWord(1))
	r, err := b.NoiseValue(8)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded || !b.LastDegraded() {
		t.Fatal("adversarial URNG must trip the resample watchdog")
	}
	if r.Resamples != cap {
		t.Errorf("tripped after %d resamples, watchdog cap is %d", r.Resamples, cap)
	}
	if r.Cycles > cap+4 {
		t.Errorf("transaction took %d cycles, cap+overhead is %d", r.Cycles, cap+4)
	}
	if got, lo, hi := r.Value, -degTh, 16+degTh; got < lo || got > hi {
		t.Errorf("degraded output %d outside the certified window [%d, %d]", got, lo, hi)
	}
	// The degraded path must charge at least the certified worst case.
	if r.Charged < cfg.Mult*0.5-1e-9 {
		t.Errorf("degraded transaction charged %g nats, want >= Mult·ε = %g", r.Charged, cfg.Mult*0.5)
	}
	if fp.Injections(fault.KindURNG) == 0 {
		t.Error("fault plane recorded no URNG injections")
	}

	// After the fault clears, the box recovers on its own: the next
	// transaction resamples normally.
	fp.SetURNGFault(nil)
	r, err = b.NoiseValue(8)
	if err != nil {
		t.Fatal(err)
	}
	if r.Degraded {
		t.Error("healthy URNG must not trip the watchdog")
	}
}

// TestDegradedOutputMatchesCertifiedThresholdingPMF pins the landing
// distribution of a watchdog trip: the degraded output is exactly the
// thresholding clamp (at the separately certified threshold) of the
// final adversarial sample, and that clamp's full output PMF is
// certified <= Mult·ε by the exact analyzer. Every fault path lands
// on an already-certified distribution.
func TestDegradedOutputMatchesCertifiedThresholdingPMF(t *testing.T) {
	par := core.Params{Lo: 0, Hi: 16, Eps: 0.5, Bu: 12, By: 10, Delta: 1}

	// Stuck word 1 draws sign 1 (negative); stuck word 2 draws sign 0
	// (positive). Both magnitudes are far outside every window, so the
	// degraded outputs must be the two thresholding boundary atoms.
	for _, stuck := range []uint32{1, 2} {
		cfg, fp := faultCfg(23)
		b := bootResampling(t, cfg)
		degTh, ok := b.DegradeThreshold()
		if !ok {
			t.Fatal("no certified degrade threshold")
		}

		// Predict the hardware: the same sampler geometry over the
		// same stuck source gives the raw sample the clamp sees.
		s, err := laplace.NewSampler(par.FxP(), nil, constSource(stuck))
		if err != nil {
			t.Fatal(err)
		}
		raw := 8 + s.SampleK()
		want := raw
		if lo := -degTh; want < lo {
			want = lo
		}
		if hi := int64(16) + degTh; want > hi {
			want = hi
		}
		if want != -degTh && want != 16+degTh {
			t.Fatalf("stuck=%d: test premise broken; raw sample %d is inside the window", stuck, raw)
		}

		fp.SetURNGFault(fault.StuckWord(stuck))
		for i := 0; i < 25; i++ {
			r, err := b.NoiseValue(8)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Degraded {
				t.Fatal("expected every transaction to degrade")
			}
			if r.Value != want {
				t.Fatalf("stuck=%d: degraded output %d, thresholding clamp gives %d", stuck, r.Value, want)
			}
		}
	}

	// The acceptance certificate: the degrade threshold's whole output
	// distribution is bounded by the exact analyzer at Mult·ε.
	cfg, _ := faultCfg(23)
	b := bootResampling(t, cfg)
	degTh, _ := b.DegradeThreshold()
	rep := core.CachedAnalyzer(par).ThresholdingLoss(degTh)
	if rep.Infinite || !rep.Bounded(cfg.Mult*par.Eps) {
		t.Errorf("degrade threshold %d not certified: loss %g (infinite=%v), budget %g",
			degTh, rep.MaxLoss, rep.Infinite, cfg.Mult*par.Eps)
	}
}

// replayScript drives a fixed six-transaction trace against a box
// whose ledger is backed by j. It returns the charge (in sixteenth-nat
// units) of every output that was actually emitted before the box
// died, and the error that killed it (nil if it ran to completion).
func replayScript(t *testing.T, j *Journal, fp *fault.Plane) (emitted []int64, runErr error) {
	t.Helper()
	cfg := smallCfg(33)
	cfg.Journal = j
	cfg.Faults = fp
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Initialize(1e6, 0); err != nil {
		return nil, err
	}
	if err := b.Configure(1, 0, 16); err != nil {
		return nil, err
	}
	for i := 0; i < 6; i++ {
		r, err := b.NoiseValue(int64(2 + 2*i))
		if err != nil {
			return emitted, err
		}
		if !r.FromCache {
			emitted = append(emitted, int64(math.Round(r.Charged/chargeUnit)))
		}
	}
	return emitted, nil
}

// checkRecovery replays the journal at secure boot and verifies the
// crash-consistency invariant: the recovered ledger has durably
// charged every emitted output (never an uncharged emission), and has
// over-charged by at most one transaction (the charge committed just
// before the output would have been emitted). The recovered box must
// then continue serving.
func checkRecovery(t *testing.T, j *Journal, emitted []int64, maxCharge int64, label string) {
	t.Helper()
	b, err := Recover(smallCfg(33), j)
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	switch b.Phase() {
	case PhaseInit:
		// Died before the budget lock: nothing may have been emitted.
		if len(emitted) != 0 {
			t.Fatalf("%s: %d outputs emitted before the budget lock", label, len(emitted))
		}
		if err := b.Initialize(1e6, 0); err != nil {
			t.Fatalf("%s: fresh boot failed: %v", label, err)
		}
	case PhaseWaiting:
		spent := int64(math.Round(1e6/chargeUnit)) - int64(math.Round(b.BudgetRemaining()/chargeUnit))
		var sum int64
		for _, u := range emitted {
			sum += u
		}
		if spent < sum {
			t.Fatalf("%s: emitted %d units but only %d durably spent (uncharged output)", label, sum, spent)
		}
		if spent > sum+maxCharge {
			t.Fatalf("%s: %d units durably spent for %d emitted (+%d max single charge): double-spend",
				label, spent, sum, maxCharge)
		}
	default:
		t.Fatalf("%s: recovered into phase %v", label, b.Phase())
	}
	// Continuation: the recovered box keeps serving and keeps
	// journaling into the compacted log.
	if err := b.Configure(1, 0, 16); err != nil {
		t.Fatalf("%s: post-recovery configure: %v", label, err)
	}
	before := b.BudgetRemaining()
	r, err := b.NoiseValue(5)
	if err != nil {
		t.Fatalf("%s: post-recovery noising: %v", label, err)
	}
	if r.FromCache || r.Charged <= 0 {
		t.Fatalf("%s: post-recovery transaction not freshly charged", label)
	}
	if b.BudgetRemaining() >= before {
		t.Fatalf("%s: post-recovery charge did not debit the ledger", label)
	}
}

// TestPowerLossReplayAtEveryJournalCut is the tentpole crash-
// consistency sweep: the scripted trace is re-run with NVM power cut
// after every possible journal word write, recovered, and checked for
// double-spends and uncharged outputs at each cut point. The word-
// write stream is the only surface where a cut can tear a record, so
// this sweep covers every distinguishable NVM crash state.
func TestPowerLossReplayAtEveryJournalCut(t *testing.T) {
	ref := NewJournal()
	refEmitted, err := replayScript(t, ref, nil)
	if err != nil {
		t.Fatalf("reference run failed: %v", err)
	}
	if len(refEmitted) != 6 {
		t.Fatalf("reference run emitted %d of 6 outputs", len(refEmitted))
	}
	var maxCharge int64
	for _, u := range refEmitted {
		if u > maxCharge {
			maxCharge = u
		}
	}
	total := ref.Writes()
	if total < 20 {
		t.Fatalf("reference journal only %d words; script too small to sweep", total)
	}

	for cut := 0; cut <= total; cut++ {
		j := NewJournal()
		j.FailAfterWrites(cut)
		emitted, runErr := replayScript(t, j, nil)
		if cut < total && runErr == nil {
			t.Fatalf("cut=%d: script survived a power cut before the last write", cut)
		}
		if runErr != nil && !errors.Is(runErr, ErrPowerLost) {
			t.Fatalf("cut=%d: unexpected error %v", cut, runErr)
		}
		checkRecovery(t, j, emitted, maxCharge, "cut="+itoa(cut))
	}
}

// TestPowerLossReplayAtEveryCycle sweeps the other crash surface: the
// device clock. A fault-plane power loss scheduled at every cycle of
// the trace kills CPU-visible state and the NVM together; recovery
// must hold the same ledger invariant.
func TestPowerLossReplayAtEveryCycle(t *testing.T) {
	refPlane := fault.NewPlane()
	ref := NewJournal()
	refEmitted, err := replayScript(t, ref, refPlane)
	if err != nil {
		t.Fatalf("reference run failed: %v", err)
	}
	var maxCharge int64
	for _, u := range refEmitted {
		if u > maxCharge {
			maxCharge = u
		}
	}
	totalCycles := refPlane.Cycle()

	for cut := uint64(0); cut < totalCycles; cut++ {
		fp := fault.NewPlane()
		fp.SchedulePowerLoss(cut)
		j := NewJournal()
		emitted, runErr := replayScript(t, j, fp)
		if runErr == nil {
			t.Fatalf("cycle=%d: script survived a scheduled power loss", cut)
		}
		if !errors.Is(runErr, ErrPowerLost) {
			t.Fatalf("cycle=%d: unexpected error %v", cut, runErr)
		}
		checkRecovery(t, j, emitted, maxCharge, "cycle="+itoa(int(cut)))
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestJournalTornTailRollsBack exercises the replay parser directly:
// an intent whose commit never became durable must be rolled back, and
// a torn record must silently end the scan instead of corrupting the
// ledger.
func TestJournalTornTailRollsBack(t *testing.T) {
	j := NewJournal()
	if !j.appendConfig(100, 0) {
		t.Fatal("config write failed")
	}
	if !j.appendCharge(16) {
		t.Fatal("charge write failed")
	}
	// Intent without commit: power dies between the phases.
	j.FailAfterWrites(6) // intent record is hdr+4+chk = 6 words
	if j.appendCharge(40) {
		t.Fatal("second charge should have been cut")
	}
	j.revive()
	st, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Configured || st.InitialUnits != 100 {
		t.Fatalf("config not recovered: %+v", st)
	}
	if st.Units != 84 {
		t.Fatalf("recovered %d units, want 100-16=84 (uncommitted intent must roll back)", st.Units)
	}
	// A half-written word inside the intent must behave identically.
	j2 := NewJournal()
	j2.appendConfig(100, 0)
	j2.FailAfterWrites(3)
	j2.appendCharge(16)
	j2.revive()
	st2, err := j2.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if st2.Units != 100 {
		t.Fatalf("torn intent changed the balance: %d", st2.Units)
	}
}

// TestHealthGateRefusesFreshNoise wires the online URNG battery as the
// noising gate: while the battery fails the box serves only its
// cache; with no cache it refuses outright; and the gate reopens as
// soon as the fault clears.
func TestHealthGateRefusesFreshNoise(t *testing.T) {
	cfg, fp := faultCfg(29)
	cfg.HealthEvery = 1 // re-check at every StartNoising
	b := boot(t, cfg, 1e9)

	// Healthy boot: the first transaction passes the battery.
	r, err := b.NoiseValue(8)
	if err != nil {
		t.Fatal(err)
	}
	if r.FromCache || !b.Healthy() {
		t.Fatal("healthy URNG must pass the gate")
	}
	cached := b.Output()

	// Break the URNG: an all-zero stream fails the monobit test.
	fp.SetURNGFault(fault.StuckWord(0))
	r, err = b.NoiseValue(8)
	if err != nil {
		t.Fatal(err)
	}
	if !r.FromCache || r.Charged != 0 {
		t.Fatalf("unhealthy URNG must serve only the cache (got fresh output, charged %g)", r.Charged)
	}
	if r.Value != cached {
		t.Errorf("cache replay returned %d, cached value is %d", r.Value, cached)
	}
	if b.Healthy() {
		t.Fatal("health gate did not record the failing battery")
	}
	if len(b.HealthResults()) == 0 {
		t.Error("no battery results recorded")
	}

	// Clear the fault: the gate re-runs the battery and reopens.
	fp.SetURNGFault(nil)
	r, err = b.NoiseValue(8)
	if err != nil {
		t.Fatal(err)
	}
	if r.FromCache {
		t.Fatal("gate did not reopen after the fault cleared")
	}
	if !b.Healthy() {
		t.Error("battery passed but Healthy() is false")
	}
}

// TestHealthGateFailsClosedWithoutCache covers the no-cache corner: a
// box whose URNG is broken from the first transaction has nothing
// certified to replay, so it must refuse rather than emit anything.
func TestHealthGateFailsClosedWithoutCache(t *testing.T) {
	cfg, fp := faultCfg(31)
	cfg.HealthEvery = 1
	fp.SetURNGFault(fault.StuckWord(0))
	b := boot(t, cfg, 1e9)
	if _, err := b.NoiseValue(8); !errors.Is(err, ErrUnhealthy) {
		t.Fatalf("expected ErrUnhealthy, got %v", err)
	}
	if b.Ready() {
		t.Fatal("refused transaction must not raise ready")
	}
}

// TestFaultHooksZeroAllocWhenIdle pins the zero-cost-when-nil claim:
// a steady-state transaction allocates nothing, with or without a
// fault plane installed (as long as no injector is).
func TestFaultHooksZeroAllocWhenIdle(t *testing.T) {
	for _, withPlane := range []struct {
		name string
		on   bool
	}{{"no-plane", false}, {"empty-plane", true}} {
		t.Run(withPlane.name, func(t *testing.T) {
			cfg := smallCfg(37)
			if withPlane.on {
				cfg.Faults = fault.NewPlane()
			}
			b := boot(t, cfg, 1e15)
			if _, err := b.NoiseValue(8); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(200, func() {
				if _, err := b.NoiseValue(8); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%g allocations per steady-state transaction, want 0", allocs)
			}
		})
	}
}

// TestLogFaultStaysInWindow: a corrupted CORDIC datapath changes the
// noise distribution but can never push an output past the certified
// clamp — the guard sits behind the log unit.
func TestLogFaultStaysInWindow(t *testing.T) {
	cfg, fp := faultCfg(41)
	b := boot(t, cfg, 1e9)
	if _, err := b.NoiseValue(8); err != nil {
		t.Fatal(err)
	}
	th := b.Threshold()
	fp.SetLogFault(fault.LogOffset(1 << 16))
	for i := 0; i < 300; i++ {
		r, err := b.NoiseValue(8)
		if err != nil {
			t.Fatal(err)
		}
		if r.Value < -th || r.Value > 16+th {
			t.Fatalf("log fault leaked output %d past the clamp (±%d)", r.Value, th)
		}
	}
	if fp.Injections(fault.KindLog) == 0 {
		t.Error("log injector never fired")
	}
}

// TestPowerLossDuringNoisingEmitsNothing: a power cut mid-transaction
// must never leave a half-noised value on the output port.
func TestPowerLossDuringNoisingEmitsNothing(t *testing.T) {
	cfg, fp := faultCfg(43)
	b := bootResampling(t, cfg)
	fp.SetURNGFault(fault.StuckWord(1))  // force a long resample loop
	fp.SchedulePowerLoss(fp.Cycle() + 5) // die inside it
	if _, err := b.NoiseValue(8); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("expected ErrPowerLost, got %v", err)
	}
	if b.Ready() {
		t.Fatal("dead box advertises a ready output")
	}
	if b.Phase() != PhaseDead {
		t.Fatalf("phase %v after power loss", b.Phase())
	}
	if err := b.Command(CmdSetSensorValue, 3); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("dead box accepted a command: %v", err)
	}
}
