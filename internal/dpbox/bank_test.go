package dpbox

import (
	"math"
	"testing"

	"ulpdp/internal/core"
)

func newBank(t *testing.T, n int, budget float64, replenish uint64) *Bank {
	t.Helper()
	bank, err := NewBank(Config{Bu: 12, By: 10, Mult: 2}, n, 99)
	if err != nil {
		t.Fatal(err)
	}
	if err := bank.Initialize(budget, replenish); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := bank.Box(i).Configure(1, 0, 16); err != nil {
			t.Fatal(err)
		}
	}
	return bank
}

func TestBankValidation(t *testing.T) {
	if _, err := NewBank(Config{Bu: 12, By: 10}, 0, 1); err == nil {
		t.Error("zero channels should be rejected")
	}
	cfg := smallCfg(1)
	if _, err := NewBank(cfg, 2, 1); err == nil {
		t.Error("shared source should be rejected")
	}
}

func TestBankChannelsShareBudget(t *testing.T) {
	bank := newBank(t, 3, 4, 0)
	before := bank.BudgetRemaining()
	if math.Abs(before-4) > 1e-9 {
		t.Fatalf("budget = %g", before)
	}
	// A charge on any channel reduces the shared budget.
	r, err := bank.Box(0).NoiseValue(8)
	if err != nil {
		t.Fatal(err)
	}
	after := bank.BudgetRemaining()
	if math.Abs(before-after-r.Charged) > 1e-9 {
		t.Errorf("shared ledger not charged: %g -> %g (charge %g)", before, after, r.Charged)
	}
	// Every channel sees the same remaining budget.
	for i := 0; i < 3; i++ {
		if got := bank.Box(i).BudgetRemaining(); got != after {
			t.Errorf("channel %d sees %g, want %g", i, got, after)
		}
	}
}

func TestBankExhaustionAffectsAllChannels(t *testing.T) {
	bank := newBank(t, 2, 1.2, 0)
	// Drain the budget through channel 0 only.
	for bank.BudgetRemaining() > 0 {
		if _, err := bank.Box(0).NoiseValue(8); err != nil {
			t.Fatal(err)
		}
	}
	// Channel 1 must now cache-serve even though it never spent: the
	// combined-sensors attack the paper cites is blocked.
	r, err := bank.Box(1).NoiseValue(4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.FromCache {
		t.Error("channel 1 served fresh output from an exhausted shared budget")
	}
	if r.Charged != 0 {
		t.Error("cache service charged")
	}
}

func TestBankChannelsHaveIndependentNoise(t *testing.T) {
	bank := newBank(t, 2, 1e6, 0)
	same := 0
	const n = 300
	for i := 0; i < n; i++ {
		a, err := bank.Box(0).NoiseValue(8)
		if err != nil {
			t.Fatal(err)
		}
		b, err := bank.Box(1).NoiseValue(8)
		if err != nil {
			t.Fatal(err)
		}
		if a.Value == b.Value {
			same++
		}
	}
	// Identical streams would match always; independent ones collide
	// only by chance.
	if same > n/2 {
		t.Errorf("channels produced identical outputs %d/%d times", same, n)
	}
}

func TestBankReplenishment(t *testing.T) {
	bank := newBank(t, 2, 1, 100)
	for bank.BudgetRemaining() > 0 {
		if _, err := bank.Box(0).NoiseValue(8); err != nil {
			t.Fatal(err)
		}
	}
	// Box-level activity must NOT advance the shared timer...
	for i := 0; i < 300; i++ {
		bank.Box(1).Step()
	}
	if bank.BudgetRemaining() != 0 {
		t.Fatal("channel clock advanced the shared replenishment timer")
	}
	// ...only the Bank clock does.
	bank.Tick(100)
	if got := bank.BudgetRemaining(); math.Abs(got-1) > 1e-9 {
		t.Errorf("after bank tick: budget %g, want 1", got)
	}
	if bank.Cycles() != 100 {
		t.Errorf("bank cycles %d", bank.Cycles())
	}
}

func TestBankChannelCount(t *testing.T) {
	bank := newBank(t, 5, 10, 0)
	if bank.Channels() != 5 {
		t.Errorf("channels = %d", bank.Channels())
	}
}

func TestConstantTimeModeFixedLatency(t *testing.T) {
	cfg := smallCfg(31)
	cfg.ConstantTime = true
	cfg.Candidates = 4
	box := boot(t, cfg, 1e9)
	if err := box.SetResampling(true); err != nil {
		t.Fatal(err)
	}
	lo, hi := int64(0), int64(16)
	sawClamp := false
	for i := 0; i < 20000; i++ {
		r, err := box.NoiseValue(16) // extreme input
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles != 2 {
			t.Fatalf("constant-time latency %d cycles, want exactly 2", r.Cycles)
		}
		if r.Resamples != 0 {
			t.Fatal("constant-time mode must not report data-dependent resamples")
		}
		if r.Value < lo-box.Threshold() || r.Value > hi+box.Threshold() {
			t.Fatalf("output %d outside window", r.Value)
		}
		if r.Value == lo-box.Threshold() || r.Value == hi+box.Threshold() {
			sawClamp = true
		}
	}
	_ = sawClamp // edge hits are rare but legal; nothing to assert
}

func TestConstantTimeThresholdCertified(t *testing.T) {
	cfg := smallCfg(33)
	cfg.ConstantTime = true
	cfg.Candidates = 4
	box := boot(t, cfg, 1e9)
	if err := box.SetResampling(true); err != nil {
		t.Fatal(err)
	}
	if _, err := box.NoiseValue(8); err != nil {
		t.Fatal(err)
	}
	// The derived threshold must be certified by the constant-time
	// analysis at the configured multiplier.
	rep := box.an.ConstantTimeLoss(box.Threshold(), cfg.Candidates)
	if !rep.Bounded(cfg.Mult * 0.5) {
		t.Errorf("constant-time threshold %d not certified: %+v", box.Threshold(), rep)
	}
}

func TestOverrideChargesAreExactDriven(t *testing.T) {
	// Randomized-response mode (threshold 0): charges must dominate
	// the mode's exact worst-case loss, even though no closed-form
	// certificate exists for the override.
	box := boot(t, smallCfg(71), 1e6)
	if err := box.OverrideThreshold(0); err != nil {
		t.Fatal(err)
	}
	r, err := box.NoiseValue(0)
	if err != nil {
		t.Fatal(err)
	}
	exact := box.an.ThresholdingLoss(0)
	if exact.Infinite {
		t.Fatal("t=0 on this range should be finite")
	}
	if r.Charged < exact.MaxLoss-1e-9 {
		t.Errorf("RR charge %g below exact loss %g", r.Charged, exact.MaxLoss)
	}
}

func TestUncertifiedOverrideChargesPerOutputSound(t *testing.T) {
	// Forcing a threshold deep into the hole region makes the exact
	// worst-case loss infinite. Algorithm 1 charges per realized
	// output, so bulk outputs stay cheap — but every possible output's
	// charge must dominate its exact per-output loss, and outputs in
	// the uncertified band must drain the entire budget.
	box := boot(t, smallCfg(73), 50)
	if _, err := box.NoiseValue(8); err != nil { // derive once
		t.Fatal(err)
	}
	tOver := box.an.MaxK() - 1
	if err := box.OverrideThreshold(tOver); err != nil {
		t.Fatal(err)
	}
	if _, err := box.NoiseValue(8); err != nil { // re-derive with override
		t.Fatal(err)
	}
	an := core.NewAnalyzer(core.Params{Lo: 0, Hi: 16, Eps: 0.5, Bu: 12, By: 10, Delta: 1})
	if !an.ThresholdingLoss(tOver).Infinite {
		t.Skip("override not in the hole region for these parameters")
	}
	sawInfinite := false
	for y := -tOver; y <= 16+tOver; y += 7 {
		loss := an.LossAt(tOver, y)
		charge := float64(box.chargeUnitsFor(y)) * chargeUnit
		if math.IsInf(loss, 1) {
			sawInfinite = true
			if box.chargeUnitsFor(y) != math.MaxInt32 {
				t.Errorf("output %d has infinite loss but finite charge %g", y, charge)
			}
			continue
		}
		if charge < loss-1e-9 {
			t.Errorf("output %d: charge %g below exact loss %g", y, charge, loss)
		}
	}
	if !sawInfinite {
		t.Error("expected some infinite-loss outputs in the scanned grid")
	}
}

func TestCandidateValidation(t *testing.T) {
	cfg := smallCfg(35)
	cfg.Candidates = 99
	if _, err := New(cfg); err == nil {
		t.Error("excessive candidate count accepted")
	}
}
