package dpbox

import (
	"math/rand"
	"testing"
)

// This file pins the budget journal's on-media word format across the
// internal/nvm refactor: legacyJournal is a frozen, verbatim copy of
// the pre-refactor write path (put/appendRecord/append*/compact as
// they stood when the format was introduced), and the differential
// tests drive it in lockstep with the real Journal over seeded
// operation sequences, asserting bit-identical word streams. A fixed
// canonical script is additionally fingerprinted, so a simultaneous
// drift of both implementations still trips the pin.

type legacyJournal struct {
	words []uint16
	seq   uint16
}

func legacyChecksum(hdr uint16, payload []uint16) uint16 {
	c := hdr ^ uint16(0x5AA5)
	for _, w := range payload {
		c ^= w
	}
	return c
}

func legacyEnc64(v int64) [4]uint16 {
	u := uint64(v)
	return [4]uint16{uint16(u), uint16(u >> 16), uint16(u >> 32), uint16(u >> 48)}
}

func (j *legacyJournal) put(w uint16) { j.words = append(j.words, w) }

func (j *legacyJournal) appendRecord(tag uint16, payload []uint16) {
	hdr := tag<<12 | (j.seq & 0x0FFF)
	j.seq++
	j.put(hdr)
	for _, w := range payload {
		j.put(w)
	}
	j.put(legacyChecksum(hdr, payload))
}

func (j *legacyJournal) appendConfig(initialUnits int64, replenishEvery uint64) {
	a, b := legacyEnc64(initialUnits), legacyEnc64(int64(replenishEvery))
	j.appendRecord(tagConfig, []uint16{a[0], a[1], a[2], a[3], b[0], b[1], b[2], b[3]})
}

func (j *legacyJournal) appendCharge(units int64) {
	p := legacyEnc64(units)
	seq := j.seq
	j.appendRecord(tagIntent, p[:])
	j.seq = seq
	j.appendRecord(tagCommit, nil)
}

func (j *legacyJournal) appendChargeRelease(units int64, reportSeq uint64, value int64, flags uint16) {
	p := legacyEnc64(units)
	seq := j.seq
	j.appendRecord(tagIntent, p[:])
	s, v := legacyEnc64(int64(reportSeq)), legacyEnc64(value)
	j.appendRecord(tagRelease, []uint16{s[0], s[1], s[2], s[3], v[0], v[1], v[2], v[3], flags})
	j.seq = seq
	j.appendRecord(tagCommit, nil)
}

func (j *legacyJournal) appendReplenish() { j.appendRecord(tagReplenish, nil) }

func (j *legacyJournal) appendCheckpoint(units int64) {
	p := legacyEnc64(units)
	j.appendRecord(tagCheckpoint, p[:])
}

func requireWordsEqual(t *testing.T, step string, got, want []uint16) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: word stream length %d, legacy %d", step, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: word %d = %#04x, legacy %#04x", step, i, got[i], want[i])
		}
	}
}

// TestJournalGoldenWordStream drives the refactored journal and the
// frozen legacy encoder through seeded random operation sequences and
// requires bit-identical NVM contents after every single operation.
func TestJournalGoldenWordStream(t *testing.T) {
	for _, seed := range []int64{1, 7, 20260807} {
		rng := rand.New(rand.NewSource(seed))
		j := NewJournal()
		ref := &legacyJournal{}
		j.appendConfig(1<<20, 4096)
		ref.appendConfig(1<<20, 4096)
		requireWordsEqual(t, "config", j.Snapshot(), ref.words)
		reportSeq := uint64(0)
		for op := 0; op < 400; op++ {
			switch rng.Intn(5) {
			case 0:
				u := rng.Int63n(1 << 30)
				j.appendCharge(u)
				ref.appendCharge(u)
			case 1:
				u, v := rng.Int63n(1<<30), rng.Int63()-rng.Int63()
				flags := uint16(rng.Intn(4))
				j.appendChargeRelease(u, reportSeq, v, flags)
				ref.appendChargeRelease(u, reportSeq, v, flags)
				reportSeq++
			case 2:
				j.appendReplenish()
				ref.appendReplenish()
			case 3:
				u := rng.Int63n(1 << 30)
				j.appendCheckpoint(u)
				ref.appendCheckpoint(u)
			case 4:
				// Recovery boundary: replay and compact both journals
				// from the same recovered state (the write path under
				// test is the compaction rewrite itself).
				st, err := j.Replay()
				if err != nil {
					t.Fatalf("seed %d op %d: replay: %v", seed, op, err)
				}
				if err := j.compact(st); err != nil {
					t.Fatalf("seed %d op %d: compact: %v", seed, op, err)
				}
				ref.words = ref.words[:0]
				ref.seq = 0
				ref.appendConfig(st.InitialUnits, st.ReplenishEvery)
				ref.appendCheckpoint(st.Units)
				for _, s := range compactOrder(st) {
					rel := st.Releases[s]
					ref.appendChargeRelease(0, s, rel.Value, rel.flags())
				}
			}
			requireWordsEqual(t, "op", j.Snapshot(), ref.words)
		}
	}
}

// compactOrder reproduces compact's release ordering: ascending seq,
// trimmed to the newest compactReleaseCap.
func compactOrder(st LedgerState) []uint64 {
	seqs := make([]uint64, 0, len(st.Releases))
	for s := range st.Releases {
		seqs = append(seqs, s)
	}
	for i := 1; i < len(seqs); i++ {
		for k := i; k > 0 && seqs[k] < seqs[k-1]; k-- {
			seqs[k], seqs[k-1] = seqs[k-1], seqs[k]
		}
	}
	if len(seqs) > compactReleaseCap {
		seqs = seqs[len(seqs)-compactReleaseCap:]
	}
	return seqs
}

// goldenBudgetFingerprint is the FNV-1a fingerprint of the canonical
// script's word stream, frozen at the format's introduction. It must
// never change: a new value here means the on-media format moved and
// every deployed journal just became unreadable.
const goldenBudgetFingerprint uint64 = 0xf9906c765ef3ebae

// TestJournalGoldenFingerprint replays a fixed canonical script and
// checks the resulting word stream against the frozen fingerprint —
// the backstop for a simultaneous edit of both encoders above.
func TestJournalGoldenFingerprint(t *testing.T) {
	j := NewJournal()
	j.appendConfig(800, 1000)
	j.appendCharge(16)
	j.appendChargeRelease(32, 0, -5, relFlagDegraded)
	j.appendChargeRelease(0, 1, 7, relFlagFromCache)
	j.appendReplenish()
	j.appendCheckpoint(784)
	j.appendCharge(48)
	var h uint64 = 0xcbf29ce484222325
	for _, w := range j.Snapshot() {
		for _, b := range []byte{byte(w), byte(w >> 8)} {
			h ^= uint64(b)
			h *= 0x100000001b3
		}
	}
	if h != goldenBudgetFingerprint {
		t.Fatalf("canonical word stream fingerprint %#x, frozen %#x — the on-media format changed", h, goldenBudgetFingerprint)
	}
}
