package dpbox

import (
	"bytes"
	"strings"
	"testing"

	"ulpdp/internal/urng"
)

// recorder captures trace states for assertions.
type recorder struct {
	states []TraceState
	cycles []uint64
}

func (r *recorder) Cycle(c uint64, s TraceState) {
	r.cycles = append(r.cycles, c)
	r.states = append(r.states, s)
}

func TestTracerSeesEveryCycle(t *testing.T) {
	box := boot(t, smallCfg(41), 100)
	rec := &recorder{}
	box.SetTracer(rec)
	before := box.Cycles()
	if _, err := box.NoiseValue(8); err != nil {
		t.Fatal(err)
	}
	if got := box.Cycles() - before; uint64(len(rec.cycles)) != got {
		t.Errorf("tracer saw %d cycles, clock advanced %d", len(rec.cycles), got)
	}
	// Cycles are monotone and the last state is ready with an output.
	for i := 1; i < len(rec.cycles); i++ {
		if rec.cycles[i] <= rec.cycles[i-1] {
			t.Fatal("trace cycles not monotone")
		}
	}
	last := rec.states[len(rec.states)-1]
	if !last.Ready {
		t.Error("final cycle should be ready")
	}
	if last.Phase != PhaseWaiting {
		t.Errorf("final phase %v", last.Phase)
	}
}

func TestTracerBudgetVisible(t *testing.T) {
	box := boot(t, smallCfg(43), 2)
	rec := &recorder{}
	box.SetTracer(rec)
	if _, err := box.NoiseValue(8); err != nil {
		t.Fatal(err)
	}
	start := rec.states[0].BudgetUnits
	end := rec.states[len(rec.states)-1].BudgetUnits
	if end >= start {
		t.Errorf("traced budget did not decrease: %d -> %d", start, end)
	}
}

func TestVCDTracerProducesWaveform(t *testing.T) {
	var buf bytes.Buffer
	tr, err := NewVCDTracer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	box := boot(t, Config{Bu: 12, By: 10, Mult: 2, Source: urng.NewTaus88(47)}, 1000)
	box.SetTracer(tr)
	if err := box.SetResampling(true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := box.NoiseValue(16); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$scope module dpbox $end",
		"noised_out", "budget_units", "mode_resampling", "ready",
		"$enddefinitions $end",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("waveform missing %q", want)
		}
	}
	// Real activity: many timestamped changes.
	if strings.Count(out, "#") < 20 {
		t.Error("waveform has too few time steps")
	}
}

func TestDetachTracer(t *testing.T) {
	box := boot(t, smallCfg(49), 100)
	rec := &recorder{}
	box.SetTracer(rec)
	if _, err := box.NoiseValue(8); err != nil {
		t.Fatal(err)
	}
	n := len(rec.states)
	box.SetTracer(nil)
	if _, err := box.NoiseValue(8); err != nil {
		t.Fatal(err)
	}
	if len(rec.states) != n {
		t.Error("detached tracer still receiving cycles")
	}
}
