package dpbox

import (
	"ulpdp/internal/laplace"
	"ulpdp/internal/obs"
	"ulpdp/internal/urng"
)

// Telemetry event kinds emitted to the shared trace ring. They are
// package-level constants so emission never allocates; operand
// semantics are documented in docs/observability.md.
const (
	// EvResample: one resample cycle. A = resample count so far this
	// transaction.
	EvResample = "dpbox.resample"
	// EvCharge: a budget charge committed. A = charge in sixteenth-nat
	// units, B = released output in steps.
	EvCharge = "budget.charge"
	// EvDegrade: the resample watchdog tripped. A = resamples burned.
	EvDegrade = "dpbox.degrade"
	// EvCacheReplay: an output served from the exhausted-budget /
	// health-gate cache at zero charge. B = replayed value.
	EvCacheReplay = "dpbox.cache_replay"
	// EvSeqReplay: a sequence-labelled request replayed its journaled
	// release. A = report seq, B = replayed value.
	EvSeqReplay = "dpbox.seq_replay"
	// EvPowerLoss: the power rail failed; the module is dead.
	EvPowerLoss = "dpbox.power_loss"
	// EvBattery: an online URNG battery run. A = 1 healthy / 0 failing,
	// B = worst |z| statistic in milli-sigma.
	EvBattery = "urng.battery"
	// EvRecover: secure boot replayed the journal. A = recovered
	// balance in units, B = recovered release count.
	EvRecover = "budget.recover"
	// EvReplenish: the replenishment timer refilled the ledger.
	EvReplenish = "budget.replenish"
)

// Metrics is the DP-Box's slice of the telemetry plane: every
// instrument the module and its budget ledger touch, pre-registered so
// hook sites are single atomic operations. A nil *Metrics disables the
// plane at the cost of one nil check per hook site and zero
// allocations (gated by BenchmarkDPBoxObsDisabled).
//
// One Metrics may be shared by many boxes — a Bank's channels or a
// fleet's nodes — distinguished by Config.ObsChannel, which indexes
// the privacy odometer and labels trace events.
type Metrics struct {
	// Transaction counters.
	Transactions    *obs.Counter   // completed noising transactions
	Resamples       *obs.Counter   // total resample cycles
	ResamplesPerTxn *obs.Histogram // resamples per transaction
	Degraded        *obs.Counter   // watchdog trips → certified clamp
	CacheReplays    *obs.Counter   // zero-charge cache outputs
	SeqReplays      *obs.Counter   // per-seq release replays
	PowerLosses     *obs.Counter   // power-rail failures

	// Datapath counters (CORDIC/log evaluations and URNG draws).
	URNGDraws *obs.Counter
	LogEvals  *obs.Counter

	// URNG health battery.
	BatteryRuns   *obs.Counter
	BatteryFails  *obs.Counter
	BatteryWorstZ *obs.Gauge // worst |z| of the last run, milli-sigma

	// Privacy odometer and its decomposition: cumulative ε spent per
	// channel plus histograms of the charge sizes (sixteenth-nat
	// units) and charge bands (0 = interior, 1..n = segment bands,
	// n+1 = top band).
	Odometer    *obs.Odometer
	ChargeUnits *obs.Histogram
	ChargeBands *obs.Histogram
	Replenishes *obs.Counter

	// Journal protocol counters.
	JournalIntents     *obs.Counter
	JournalCommits     *obs.Counter
	JournalReplenishes *obs.Counter
	JournalRecovers    *obs.Counter

	// Trace is the shared event ring (kinds Ev*).
	Trace *obs.Trace

	// Flight, when non-nil, receives per-report span stamps (journal
	// commit, replay) keyed by (ObsChannel, seq). It is wired by the
	// fleet, not registered here: a nil recorder keeps every stamp a
	// single nil check.
	Flight *obs.FlightRecorder
}

// NewMetrics registers (or re-binds, idempotently) the DP-Box metric
// schema on a registry. channels sizes the privacy odometer — one
// channel per Bank sensor or fleet node.
func NewMetrics(r *obs.Registry, channels int) *Metrics {
	return &Metrics{
		Transactions:    r.Counter("dpbox.transactions"),
		Resamples:       r.Counter("dpbox.resamples"),
		ResamplesPerTxn: r.Histogram("dpbox.resamples_per_txn", []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048}),
		Degraded:        r.Counter("dpbox.degraded"),
		CacheReplays:    r.Counter("dpbox.cache_replays"),
		SeqReplays:      r.Counter("dpbox.seq_replays"),
		PowerLosses:     r.Counter("dpbox.power_losses"),

		URNGDraws: r.Counter("dpbox.urng_draws"),
		LogEvals:  r.Counter("dpbox.log_evals"),

		BatteryRuns:   r.Counter("urng.battery_runs"),
		BatteryFails:  r.Counter("urng.battery_fails"),
		BatteryWorstZ: r.Gauge("urng.battery_worst_z_milli"),

		Odometer:    r.Odometer("budget.odometer", channels),
		ChargeUnits: r.Histogram("budget.charge_units", []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}),
		ChargeBands: r.Histogram("budget.charge_bands", []int64{0, 1, 2, 3, 4, 5, 6, 7}),
		Replenishes: r.Counter("budget.replenishes"),

		JournalIntents:     r.Counter("budget.journal.intents"),
		JournalCommits:     r.Counter("budget.journal.commits"),
		JournalReplenishes: r.Counter("budget.journal.replenishes"),
		JournalRecovers:    r.Counter("budget.journal.recovers"),

		Trace: r.Trace("trace", 1024),
	}
}

// worstZ extracts the largest |z| statistic of a battery run in
// milli-sigma (0 for an empty run).
func worstZ(res []urng.BatteryResult) int64 {
	worst := 0.0
	for _, r := range res {
		s := r.Statistic
		if s < 0 {
			s = -s
		}
		if s > worst {
			worst = s
		}
	}
	return int64(worst * 1000)
}

// countingSource counts URNG word draws on the way through. The
// wrapper is built once at power-up, only when a Metrics is attached,
// so the disabled path never sees it.
type countingSource struct {
	src urng.Source
	c   *obs.Counter
}

func (s countingSource) Uint32() uint32 {
	s.c.Inc()
	return s.src.Uint32()
}

// countingLog counts logarithm-datapath evaluations (one per CORDIC
// activation in the synthesized hardware).
type countingLog struct {
	log laplace.LogUnit
	c   *obs.Counter
}

func (l countingLog) LnRaw(v int64, frac int) int64 {
	l.c.Inc()
	return l.log.LnRaw(v, frac)
}

func (l countingLog) Frac() int { return l.log.Frac() }
