// Package dpbox is a cycle-level simulator of DP-Box, the paper's
// hardware module for local differential privacy (Section IV). It
// models the 3-bit command port, the three-phase FSM (initialization
// → waiting → noising), the precomputation of the next Laplace sample
// during the waiting phase, per-cycle resampling, the embedded
// budget-control logic with caching and periodic replenishment, and
// the randomized-response reconfiguration (threshold zero).
//
// All port values are integers on the datapath's quantization grid
// (steps of Δ): the sensor value, the range registers and the noised
// output are step counts. The privacy parameter is set as the
// exponent n_m of ε = 2^-n_m (eq. 19), so the noise scaling
// multiplication reduces to a bit shift in hardware.
//
// Latency follows Section V exactly: a noised output takes 2 cycles
// (one to load the sensor register, one to noise); thresholding adds
// no cycles; every resample adds one cycle.
package dpbox

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"ulpdp/internal/core"
	"ulpdp/internal/cordic"
	"ulpdp/internal/fault"
	"ulpdp/internal/laplace"
	"ulpdp/internal/obs"
	"ulpdp/internal/urng"
)

// Fail-closed sentinel errors.
var (
	// ErrPowerLost reports a command or transaction addressed to a
	// DP-Box whose power rail failed; volatile state is gone and only
	// Recover (secure boot) can bring the module back.
	ErrPowerLost = errors.New("dpbox: power lost")
	// ErrUnhealthy reports a refused StartNoising: the online URNG
	// battery is failing and no cached output exists to replay.
	ErrUnhealthy = errors.New("dpbox: urng health battery failing; noising refused")
)

// Command is the 3-bit command port encoding.
type Command uint8

const (
	// CmdDoNothing holds the DP-Box in its current phase.
	CmdDoNothing Command = iota
	// CmdStartNoising starts a noising transaction; from the
	// initialization phase it instead locks the budget configuration
	// and transitions to the waiting phase.
	CmdStartNoising
	// CmdSetEpsilon sets n_m (ε = 2^-n_m) for the next reading; in
	// the initialization phase it sets the privacy budget (data is in
	// sixteenths of a nat).
	CmdSetEpsilon
	// CmdSetSensorValue loads the value to noise.
	CmdSetSensorValue
	// CmdSetRangeUpper sets the sensor range upper bound; in the
	// initialization phase it sets the replenishment period (cycles).
	CmdSetRangeUpper
	// CmdSetRangeLower sets the sensor range lower bound.
	CmdSetRangeLower
	// CmdSetThreshold toggles between resampling and thresholding
	// when data < 0 (the paper's behaviour). With data >= 0 it
	// additionally overrides the guard threshold: data = 0 selects
	// the randomized-response configuration of Section VI-E; data > 0
	// forces an explicit threshold instead of the internally computed
	// certified one.
	CmdSetThreshold
)

// String implements fmt.Stringer.
func (c Command) String() string {
	switch c {
	case CmdDoNothing:
		return "DoNothing"
	case CmdStartNoising:
		return "StartNoising"
	case CmdSetEpsilon:
		return "SetEpsilon"
	case CmdSetSensorValue:
		return "SetSensorValue"
	case CmdSetRangeUpper:
		return "SetRangeUpper"
	case CmdSetRangeLower:
		return "SetRangeLower"
	case CmdSetThreshold:
		return "SetThreshold"
	}
	return fmt.Sprintf("Command(%d)", uint8(c))
}

// Phase is the FSM state.
type Phase int

const (
	// PhaseInit is entered at power-up; budget and replenishment
	// period are configurable only here (secure-boot integrity).
	PhaseInit Phase = iota
	// PhaseWaiting is the idle-from-outside phase: the replenishment
	// timer runs and the next Laplace sample is precomputed.
	PhaseWaiting
	// PhaseNoising computes (and possibly resamples) the output.
	PhaseNoising
	// PhaseDead is entered on a power-rail failure: all volatile state
	// is lost and every port returns ErrPowerLost until the module is
	// brought back through Recover (secure boot).
	PhaseDead
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseInit:
		return "init"
	case PhaseWaiting:
		return "waiting"
	case PhaseNoising:
		return "noising"
	case PhaseDead:
		return "dead"
	}
	return fmt.Sprintf("Phase(%d)", int(p))
}

// Config fixes the synthesized hardware's geometry. The zero value is
// unusable; use DefaultConfig as a starting point.
type Config struct {
	// Bu is the URNG magnitude bit width.
	Bu int
	// By is the signed noise output bit width.
	By int
	// Mult is the loss multiplier the internally computed guard
	// threshold certifies (worst-case loss Mult·ε).
	Mult float64
	// Multipliers are the budget charging bands (ascending, < Mult).
	Multipliers []float64
	// Log is the logarithm datapath; nil selects the CORDIC core the
	// DP-Box ships (single-cycle, fully unrolled).
	Log laplace.LogUnit
	// Source is the Tausworthe URNG; nil selects Taus88 seeded with 1.
	Source urng.Source
	// GuardDisabled bypasses resampling/thresholding entirely —
	// the naive mode of Fig. 12. Never use it for real data.
	GuardDisabled bool
	// ConstantTime applies the Section IV-C timing-channel
	// mitigation to resampling mode: Candidates samples are drawn in
	// parallel in a single cycle and the first in-window one is
	// taken (all-miss falls back to an edge clamp), so the latency
	// no longer depends on the sensor value. The guard threshold is
	// certified against the exact constant-time analysis.
	ConstantTime bool
	// Candidates is the parallel sampler count for ConstantTime
	// (default 4; costs RNG area, see hwmodel).
	Candidates int
	// Faults is an optional fault plane. When set, the URNG and log
	// datapaths are routed through its injectors, the command register
	// can be perturbed, and scheduled power losses kill the module
	// mid-transaction. Nil costs nothing on the hot path.
	Faults *fault.Plane
	// Journal is the optional NVM write-ahead log backing the budget
	// ledger. With a journal attached every charge runs a two-phase
	// commit before the output is emitted, and Recover can replay the
	// log after a power loss without double-spending.
	Journal *Journal
	// HealthEvery, when nonzero, runs the urng battery as an online
	// health gate at StartNoising whenever that many cycles have
	// passed since the last check. While the battery fails, fresh
	// noising is refused and only the cache is served.
	HealthEvery uint64
	// HealthWords is the sample size per battery run (default 2048,
	// minimum 1024).
	HealthWords int
	// WatchdogDisabled turns off the resample watchdog (testing only;
	// an adversarial URNG can then stall noising indefinitely).
	WatchdogDisabled bool
	// Obs is an optional telemetry plane (counters, histograms, the
	// privacy odometer, the trace ring). Nil costs one nil check per
	// hook site and zero allocations on the noising hot path.
	Obs *Metrics
	// ObsChannel labels this box's telemetry: it indexes the privacy
	// odometer and tags trace events (a Bank channel index or a fleet
	// node id). Ignored when Obs is nil.
	ObsChannel int
}

// DefaultConfig mirrors the synthesized 20-bit DP-Box: a 17-bit
// URNG magnitude draw and a 12-bit noise word.
var DefaultConfig = Config{Bu: 17, By: 12, Mult: 2, Multipliers: []float64{1.25, 1.5}}

// chargeUnit is the budget fixed-point resolution: one sixteenth of a
// nat. Charges are rounded up to it, keeping the accounting sound.
const chargeUnit = 1.0 / 16

// DPBox is one instance of the hardware module.
type DPBox struct {
	cfg Config

	phase  Phase
	cycles uint64 // total elapsed clock cycles

	// Registers (all in steps of Δ except where noted).
	epsShift   int   // n_m; ε = 2^-n_m
	sensor     int64 // value to noise
	rangeUpper int64
	rangeLower int64
	haveEps    bool
	haveUpper  bool
	haveLower  bool
	haveSensor bool
	resampling bool  // Set Threshold toggle: true = resampling mode
	thOverride int64 // -1 = auto; 0 = randomized response; >0 explicit

	// Budget state (initialization-locked). The ledger may be shared
	// between the sensors of a Bank; ownTimer marks the box that
	// advances the replenishment timer (standalone boxes own theirs;
	// a Bank's clock drives its shared ledger).
	ledger   *budgetLedger
	ownTimer bool

	// Derived noising state.
	dirty     bool  // registers changed since last derivation
	threshold int64 // guard threshold in steps
	segs      []core.Segment
	interiorU int64 // interior charge in budget units
	topU      int64 // top charge in budget units
	segU      []int64
	sampler   *laplace.Sampler
	an        *core.Analyzer

	// Resample watchdog (resampling mode): cap on resample cycles and
	// the certified thresholding clamp the trip degrades to.
	resampleCap int   // 0 = watchdog off
	degradeTh   int64 // certified thresholding threshold in steps
	degradeU    int64 // degrade charge in budget units
	degradeOK   bool  // degradeTh carries a certificate

	// Fault plane and URNG health gate.
	fp            *fault.Plane
	healthy       bool
	healthChecked bool
	healthAt      uint64
	healthRes     []urng.BatteryResult

	// Precomputed noise (waiting phase).
	pendingK int64
	haveK    bool

	// Output port.
	out        int64
	ready      bool
	resamples  int // resamples used by the last transaction
	lastCharge int64
	fromCache  bool
	degraded   bool // last transaction tripped the resample watchdog
	cache      int64
	haveCache  bool

	// Per-sequence release cache (fleet at-most-once noising): every
	// value released under a report sequence number, mirrored from the
	// journal so NoiseValueSeq can replay instead of redrawing. The
	// map grows with the power cycle's releases; recovery compaction
	// trims it to the retransmission window.
	releases  map[uint64]Release
	maxRelSeq uint64
	seqArmed  bool   // the in-flight transaction carries a report seq
	armedSeq  uint64 // that seq

	// Telemetry plane (nil = disabled) and this box's odometer
	// channel / trace label.
	obs      *Metrics
	obsCh    int
	lastBand int64 // charge band of the last chargeUnitsFor call

	// Per-cycle telemetry event wires, mirrored into the VCD trace as
	// marker signals so waveform dumps line up with the trace ring.
	// Reset at every clock edge; independent of obs so waveforms carry
	// markers even without a Metrics attached.
	evResample    int   // resample count this cycle (0 = none)
	evCharge      bool  // a budget charge committed this cycle
	evChargeUnits int64 // its size in sixteenth-nat units
	evDegrade     bool  // the resample watchdog tripped this cycle

	tracer Tracer
}

// New powers up a DP-Box in the initialization phase.
func New(cfg Config) (*DPBox, error) {
	if cfg.Bu == 0 && cfg.By == 0 {
		// Default the geometry only: wholesale cfg = DefaultConfig
		// would silently drop the caller's Source, Faults, Journal,
		// and Obs wiring.
		cfg.Bu, cfg.By = DefaultConfig.Bu, DefaultConfig.By
	}
	if cfg.Mult == 0 {
		cfg.Mult = 2
	}
	if cfg.Mult <= 1 {
		return nil, fmt.Errorf("dpbox: loss multiplier %g must exceed 1", cfg.Mult)
	}
	if cfg.Multipliers == nil {
		cfg.Multipliers = []float64{1.25, 1.5}
	}
	if cfg.Source == nil {
		cfg.Source = urng.NewTaus88(1)
	}
	if cfg.Candidates == 0 {
		cfg.Candidates = 4
	}
	if cfg.Candidates < 1 || cfg.Candidates > 16 {
		return nil, fmt.Errorf("dpbox: candidate count %d out of range [1,16]", cfg.Candidates)
	}
	if cfg.HealthWords == 0 {
		cfg.HealthWords = 2048
	}
	if cfg.HealthWords < 1024 {
		return nil, fmt.Errorf("dpbox: health battery sample %d below minimum 1024", cfg.HealthWords)
	}
	if fp := cfg.Faults; fp != nil {
		// Route the datapaths through the fault plane. The wrappers
		// are built once here; per-draw they cost one nil check.
		if cfg.Log == nil {
			cfg.Log = cordic.New(cordic.DefaultConfig)
		}
		cfg.Log = fp.WrapLog(cfg.Log)
		cfg.Source = fp.WrapSource(cfg.Source)
	}
	if m := cfg.Obs; m != nil {
		// Telemetry counting wrappers sit outside the fault wrappers,
		// so they count logical datapath activations regardless of
		// injected faults. Built once here; nil Obs never sees them.
		if cfg.Log == nil {
			cfg.Log = cordic.New(cordic.DefaultConfig)
		}
		cfg.Log = countingLog{log: cfg.Log, c: m.LogEvals}
		cfg.Source = countingSource{src: cfg.Source, c: m.URNGDraws}
	}
	b := &DPBox{cfg: cfg, fp: cfg.Faults, phase: PhaseInit, thOverride: -1, dirty: true,
		ledger: &budgetLedger{j: cfg.Journal, obs: cfg.Obs}, ownTimer: true, healthy: true,
		obs: cfg.Obs, obsCh: cfg.ObsChannel}
	if j := cfg.Journal; j != nil {
		// The storage engine counts journal intents/commits itself;
		// route them into this box's metrics (nil detaches), and give
		// the fault plane's power rail a direct line to the supply
		// cell so a scheduled power loss kills the NVM at the engine
		// layer, not only through the box's own powerFail path.
		j.bindObs(cfg.Obs)
		if fp := cfg.Faults; fp != nil {
			fp.BindPowerSink(j.Power())
		}
	}
	return b, nil
}

// Phase returns the current FSM phase.
func (b *DPBox) Phase() Phase { return b.phase }

// Cycles returns the total elapsed clock cycles.
func (b *DPBox) Cycles() uint64 { return b.cycles }

// Ready reports whether a noised output is available on the output
// port.
func (b *DPBox) Ready() bool { return b.ready }

// Output returns the output port value (valid when Ready).
func (b *DPBox) Output() int64 { return b.out }

// budgetLedger is the budget register file: remaining and initial
// budget in sixteenth-nat units plus the replenishment timer. A Bank
// shares one ledger across all its sensors, implementing the paper's
// Section IV requirement that multiple sensors must share a budget
// (their readings could be combined to compromise privacy).
//
// The mutex serializes balance movements (and the journal writes
// backing them) so a Bank's channels may be driven from concurrent
// goroutines: each charge is atomic against the shared balance and
// the NVM log. Each DPBox itself remains single-goroutine state —
// only the ledger is shared.
type budgetLedger struct {
	mu             sync.Mutex
	units          int64
	initial        int64
	replenishEvery uint64
	since          uint64
	locked         bool
	j              *Journal // nil = volatile ledger (no crash consistency)
	obs            *Metrics // nil = telemetry disabled
}

// tick advances the replenishment timer by one cycle. False means the
// journal write backing a refill failed (NVM power lost): the refill
// must not take effect and the owner must fail closed.
func (l *budgetLedger) tick() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.locked || l.replenishEvery == 0 {
		return true
	}
	l.since++
	if l.since >= l.replenishEvery {
		if l.j != nil && !l.j.appendReplenish() {
			return false
		}
		l.since = 0
		l.units = l.initial
		if m := l.obs; m != nil {
			m.Replenishes.Inc()
			m.Odometer.Replenish()
			if l.j != nil {
				m.JournalReplenishes.Inc()
			}
			// The ledger has no clock of its own; refill events from a
			// shared (Bank) ledger carry cycle 0.
			m.Trace.Emit(EvReplenish, 0, -1, l.initial, 0)
		}
	}
	return true
}

// charge deducts units, saturating at zero. With a journal attached
// the two-phase record (intent, commit) must be durable before the
// volatile balance moves; false means it is not, and the caller must
// not emit the output it was about to charge for.
func (l *budgetLedger) charge(units int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.j != nil && !l.j.appendCharge(units) {
		return false
	}
	l.deduct(units)
	return true
}

// chargeRelease is charge with a (reportSeq, value) release binding
// riding inside the same journal transaction: the binding and the
// charge become durable together or not at all.
func (l *budgetLedger) chargeRelease(units int64, reportSeq uint64, rel Release) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.j != nil && !l.j.appendChargeRelease(units, reportSeq, rel.Value, rel.flags()) {
		return false
	}
	l.deduct(units)
	return true
}

// deduct moves the volatile balance; callers hold l.mu.
func (l *budgetLedger) deduct(units int64) {
	l.units -= units
	if l.units < 0 {
		l.units = 0
	}
}

// balance returns the current unspent units.
func (l *budgetLedger) balance() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.units
}

// BudgetRemaining returns the unspent budget in nats.
func (b *DPBox) BudgetRemaining() float64 {
	return float64(b.ledger.balance()) * chargeUnit
}

// Threshold returns the guard threshold currently in effect, in
// steps. Valid after the first noising transaction.
func (b *DPBox) Threshold() int64 { return b.threshold }

// Epsilon returns the configured per-report ε.
func (b *DPBox) Epsilon() float64 { return math.Ldexp(1, -b.epsShift) }

// Command presents one command word and data word on the ports; it
// consumes one clock cycle.
func (b *DPBox) Command(cmd Command, data int64) error {
	if b.phase == PhaseDead {
		return ErrPowerLost
	}
	if b.fp != nil {
		// The command register latches through the fault plane before
		// the clock edge decodes it.
		c, d := b.fp.PerturbCommand(uint8(cmd)&7, data)
		cmd, data = Command(c&7), d
	}
	b.tick()
	if b.phase == PhaseDead {
		// Power failed on this edge; the command is lost with it.
		return ErrPowerLost
	}
	defer b.trace()
	switch b.phase {
	case PhaseInit:
		return b.commandInit(cmd, data)
	case PhaseWaiting:
		return b.commandWaiting(cmd, data)
	case PhaseNoising:
		// Hardware ignores commands while busy.
		return errors.New("dpbox: busy noising; command ignored")
	}
	return nil
}

func (b *DPBox) commandInit(cmd Command, data int64) error {
	switch cmd {
	case CmdSetEpsilon:
		if data < 0 {
			return errors.New("dpbox: negative budget")
		}
		b.ledger.initial = data
		b.ledger.units = data
	case CmdSetRangeUpper:
		if data < 0 {
			return errors.New("dpbox: negative replenishment period")
		}
		b.ledger.replenishEvery = uint64(data)
	case CmdStartNoising:
		if b.ledger.initial == 0 {
			return errors.New("dpbox: budget not configured")
		}
		// A shared (Bank) ledger is locked by its first channel; the
		// remaining channels only transition phase — a second config
		// record would corrupt the journal replay.
		if !b.ledger.locked {
			if b.ledger.j != nil && !b.ledger.j.appendConfig(b.ledger.initial, b.ledger.replenishEvery) {
				b.powerFail()
				return ErrPowerLost
			}
			b.ledger.locked = true
		}
		b.phase = PhaseWaiting
	case CmdDoNothing:
	default:
		return fmt.Errorf("dpbox: command %v invalid in initialization phase", cmd)
	}
	return nil
}

func (b *DPBox) commandWaiting(cmd Command, data int64) error {
	switch cmd {
	case CmdDoNothing:
	case CmdSetEpsilon:
		if data < -8 || data > 16 {
			return fmt.Errorf("dpbox: epsilon shift %d out of range [-8,16]", data)
		}
		b.epsShift = int(data)
		b.haveEps = true
		b.dirty = true
	case CmdSetSensorValue:
		b.sensor = data
		b.haveSensor = true
	case CmdSetRangeUpper:
		b.rangeUpper = data
		b.haveUpper = true
		b.dirty = true
	case CmdSetRangeLower:
		b.rangeLower = data
		b.haveLower = true
		b.dirty = true
	case CmdSetThreshold:
		if data < 0 {
			b.resampling = !b.resampling
		} else {
			b.thOverride = data
		}
		b.dirty = true
	case CmdStartNoising:
		if !b.healthGate() {
			// Fail closed: no fresh noise from a suspect URNG. The
			// cache was charged and certified when produced, so
			// replaying it leaks nothing new.
			if b.haveCache {
				b.resamples = 0
				b.degraded = false
				b.finish(b.cache, 0, true)
				return nil
			}
			return ErrUnhealthy
		}
		if err := b.beginNoising(); err != nil {
			return err
		}
		// The first noising attempt is combinational with the command
		// (the Laplace sample was precomputed in the waiting phase),
		// so a guard-free transaction completes in this same cycle —
		// the paper's 2-cycle total including the register load.
		b.noisingCycle()
	default:
		return fmt.Errorf("dpbox: unknown command %v", cmd)
	}
	return nil
}

// beginNoising validates configuration, derives the guard threshold
// and charge table if stale, and enters the noising phase.
func (b *DPBox) beginNoising() error {
	if !(b.haveEps && b.haveUpper && b.haveLower && b.haveSensor) {
		return errors.New("dpbox: epsilon, range and sensor value must be set before noising")
	}
	if b.rangeUpper <= b.rangeLower {
		return errors.New("dpbox: empty sensor range")
	}
	if b.dirty {
		if err := b.derive(); err != nil {
			return err
		}
		b.dirty = false
	}
	b.phase = PhaseNoising
	b.ready = false
	b.resamples = 0
	b.fromCache = false
	b.degraded = false
	return nil
}

// healthGate runs the online URNG battery when due and reports
// whether fresh noising is allowed. Gating is off (always true) when
// HealthEvery is zero. A failing battery is re-run on every
// subsequent StartNoising, so the gate reopens as soon as the fault
// clears.
func (b *DPBox) healthGate() bool {
	if b.cfg.HealthEvery == 0 {
		return true
	}
	if !b.healthChecked || !b.healthy || b.cycles-b.healthAt >= b.cfg.HealthEvery {
		res, err := urng.RunBattery(b.cfg.Source, b.cfg.HealthWords)
		b.healthChecked = true
		b.healthAt = b.cycles
		b.healthRes = res
		b.healthy = err == nil && urng.Passed(res)
		if m := b.obs; m != nil {
			m.BatteryRuns.Inc()
			z := worstZ(res)
			m.BatteryWorstZ.Set(z)
			pass := int64(1)
			if !b.healthy {
				pass = 0
				m.BatteryFails.Inc()
			}
			m.Trace.Emit(EvBattery, b.cycles, int64(b.obsCh), pass, z)
		}
	}
	return b.healthy
}

// Healthy reports the online URNG battery verdict (true when health
// gating is disabled or no check has run yet).
func (b *DPBox) Healthy() bool { return b.cfg.HealthEvery == 0 || b.healthy }

// HealthResults returns the most recent battery run (nil before the
// first check).
func (b *DPBox) HealthResults() []urng.BatteryResult { return b.healthRes }

// params assembles the core parameters implied by the registers
// (Δ = 1: port values are already in steps).
func (b *DPBox) params() core.Params {
	return core.Params{
		Lo:    float64(b.rangeLower),
		Hi:    float64(b.rangeUpper),
		Eps:   b.Epsilon(),
		Bu:    b.cfg.Bu,
		By:    b.cfg.By,
		Delta: 1,
	}
}

func (b *DPBox) derive() error {
	par := b.params()
	if err := par.Validate(); err != nil {
		return err
	}
	// The DP-Box's λ/Δ = d·2^n_m is always dyadic (eq. 19), so the
	// all-integer scaling datapath applies: no float64 operation
	// touches the noise, matching the synthesized hardware bit for
	// bit. Negative n_m beyond the dyadic window (never reachable
	// through the validated port range) falls back to the reference
	// scaler.
	hw, err := laplace.NewHWSampler(par.FxP(), b.cfg.Log, b.cfg.Source)
	if err != nil {
		if hw, err = laplace.NewSampler(par.FxP(), b.cfg.Log, b.cfg.Source); err != nil {
			return err
		}
	}
	b.sampler = hw
	switch {
	case b.cfg.GuardDisabled:
		b.threshold = laplace.NewDist(par.FxP()).MaxK()
		b.an = nil
		b.segs = nil
	case b.thOverride >= 0:
		b.threshold = b.thOverride
		b.an = core.CachedAnalyzer(par)
	default:
		var th int64
		var err error
		switch {
		case b.resampling && b.cfg.ConstantTime:
			th, err = core.ExactConstantTimeThreshold(par, b.cfg.Mult, b.cfg.Candidates)
		case b.resampling:
			th, err = core.ResamplingThreshold(par, b.cfg.Mult)
		default:
			th, err = core.ThresholdingThreshold(par, b.cfg.Mult)
		}
		if err != nil {
			return err
		}
		b.threshold = th
		b.an = core.CachedAnalyzer(par)
	}
	// Resample watchdog: cap the resample loop at a bound derived from
	// the exact miss probability, and precompute the certified
	// thresholding clamp the trip degrades to.
	b.resampleCap, b.degradeOK = 0, false
	if b.resampling && !b.cfg.ConstantTime && !b.cfg.GuardDisabled && !b.cfg.WatchdogDisabled {
		pMiss := laplace.NewDist(par.FxP()).TailMag(b.threshold + 1)
		b.resampleCap = watchdogCap(pMiss)
		if th, err := core.ThresholdingThreshold(par, b.cfg.Mult); err == nil {
			b.degradeTh = th
			b.degradeU = ceilUnits(b.cfg.Mult * par.Eps)
			b.degradeOK = true
		}
	}
	if b.an != nil {
		// Resampling renormalizes each input's conditional by its
		// acceptance mass; the per-output charges (derived from the
		// thresholding profile) absorb that slack explicitly, capped
		// at the certified top charge.
		zSlack := 0.0
		if b.resampling {
			tail := laplace.NewDist(par.FxP()).TailMag(b.threshold)
			zSlack = -math.Log1p(-2 * tail)
		}
		b.segs = b.an.Segments(b.threshold, b.cfg.Multipliers)
		b.interiorU = ceilUnits(b.an.InteriorLoss(b.threshold) + zSlack)
		if b.thOverride < 0 {
			// Certified threshold: the exact worst case is below
			// Mult·ε, so Mult·ε is a sound top band and caps every
			// other charge.
			b.topU = ceilUnits(b.cfg.Mult * par.Eps)
			b.interiorU = minI64(b.interiorU, b.topU)
		} else {
			// Override (e.g. randomized-response mode): the threshold
			// carries no certificate, so the charge table must come
			// from the exact analysis. An infinite worst case (an
			// override into the hole region) drains the entire budget
			// on first use — the honest price of an uncertified
			// configuration.
			rep := b.an.ThresholdingLoss(b.threshold)
			if rep.Infinite {
				b.topU = math.MaxInt32
			} else {
				b.topU = ceilUnits(rep.MaxLoss)
			}
			if b.interiorU > b.topU {
				b.topU = b.interiorU
			}
		}
		b.segU = make([]int64, len(b.segs))
		for i, s := range b.segs {
			b.segU[i] = minI64(ceilUnits(s.Mult*par.Eps+zSlack), b.topU)
		}
	} else {
		// Naive mode: flat nominal charge (and no guarantee — the
		// entire point of Fig. 12).
		b.interiorU = ceilUnits(par.Eps)
		b.topU = b.interiorU
		b.segU = nil
	}
	return nil
}

// watchdogCap converts the per-cycle miss probability of the resample
// loop into the watchdog's cycle cap: the smallest n with
// pMiss^n ≤ 2^-64, clamped to [4, 2048]. An honest URNG therefore
// trips the watchdog with probability at most 2^-64 per transaction;
// any trip in practice indicates a faulty or adversarial RNG, and the
// transaction degrades to the certified thresholding clamp instead of
// looping forever.
func watchdogCap(pMiss float64) int {
	const failBits = 64
	if !(pMiss > 0) {
		// A miss is impossible for an honest RNG; keep a small cap as
		// a backstop against fault-induced misses.
		return 4
	}
	if pMiss >= 1 {
		return 2048
	}
	n := int(math.Ceil(failBits * math.Ln2 / -math.Log(pMiss)))
	if n < 4 {
		n = 4
	}
	if n > 2048 {
		n = 2048
	}
	return n
}

func ceilUnits(nats float64) int64 {
	// Infinite or absurd losses saturate to the budget-draining
	// charge: converting +Inf to int64 directly would wrap negative
	// and *credit* the ledger.
	if math.IsNaN(nats) || nats >= float64(math.MaxInt32)*chargeUnit {
		return math.MaxInt32
	}
	return int64(math.Ceil(nats / chargeUnit))
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// chargeUnitsFor maps a raw (pre-clamp) output step to its budget
// charge in sixteenth-nat units, mirroring budget.Controller.
func (b *DPBox) chargeUnitsFor(y int64) int64 {
	if y >= b.rangeLower && y <= b.rangeUpper {
		b.lastBand = 0
		return b.interiorU
	}
	var offset int64
	if y > b.rangeUpper {
		offset = y - b.rangeUpper
	} else {
		offset = b.rangeLower - y
	}
	for i, s := range b.segs {
		if offset <= s.Offset {
			b.lastBand = int64(i) + 1
			return b.segU[i]
		}
	}
	b.lastBand = int64(len(b.segs)) + 1
	return b.topU
}

// Step advances the clock one cycle. A dead module has no clock; the
// call is a no-op.
func (b *DPBox) Step() {
	if b.phase == PhaseDead {
		return
	}
	b.tick()
	if b.phase == PhaseDead {
		return
	}
	defer b.trace()
	switch b.phase {
	case PhaseWaiting:
		if !b.haveK && b.sampler != nil {
			// Precompute the next Laplace sample so noising can
			// complete in a single cycle (Section IV-C2).
			b.pendingK = b.sampler.SampleK()
			b.haveK = true
		}
	case PhaseNoising:
		b.noisingCycle()
	}
}

// tick advances time bookkeeping common to every cycle: the fault
// plane's power schedule and the replenishment timer.
func (b *DPBox) tick() {
	b.cycles++
	// Telemetry event wires are combinational: they pulse for the
	// cycle that produced them and clear at the next edge.
	b.evResample, b.evCharge, b.evChargeUnits, b.evDegrade = 0, false, 0, false
	if b.fp != nil && b.fp.Tick() {
		b.powerFail()
		return
	}
	if b.ownTimer && !b.ledger.tick() {
		b.powerFail()
	}
}

// powerFail kills the module: volatile state is gone, the NVM journal
// stops accepting writes, and every port returns ErrPowerLost until
// Recover.
func (b *DPBox) powerFail() {
	if b.phase == PhaseDead {
		return
	}
	b.phase = PhaseDead
	b.ready = false
	b.haveK = false
	if b.ledger.j != nil {
		b.ledger.j.Kill()
	}
	if m := b.obs; m != nil {
		m.PowerLosses.Inc()
		m.Trace.Emit(EvPowerLoss, b.cycles, int64(b.obsCh), 0, 0)
	}
}

// noisingCycle performs one cycle of the noising phase: one guard
// attempt with the pending sample.
func (b *DPBox) noisingCycle() {
	if b.ledger.balance() <= 0 && !b.cfg.GuardDisabled {
		// Budget exhausted: replay the cache (free) or emit the
		// clamped lower bound if nothing was ever produced.
		if b.haveCache {
			b.finish(b.cache, 0, true)
		} else {
			b.finish(b.rangeLower, 0, true)
		}
		return
	}
	if !b.haveK {
		b.pendingK = b.sampler.SampleK()
		b.haveK = true
	}
	y := b.sensor + b.pendingK
	b.haveK = false // sample consumed
	lo := b.rangeLower - b.threshold
	hi := b.rangeUpper + b.threshold
	if b.resampling && !b.cfg.GuardDisabled {
		if b.cfg.ConstantTime {
			// All candidates are drawn this same cycle by parallel
			// RNG datapaths; take the first in-window one, clamp the
			// last to the edge it missed if all fail.
			for i := 1; i < b.cfg.Candidates && (y < lo || y > hi); i++ {
				y = b.sensor + b.sampler.SampleK()
			}
			charge := b.chargeUnitsFor(y)
			if y < lo {
				y = lo
			}
			if y > hi {
				y = hi
			}
			b.finish(y, charge, false)
			return
		}
		if y < lo || y > hi {
			b.resamples++
			b.evResample = b.resamples
			if m := b.obs; m != nil {
				m.Resamples.Inc()
				m.Trace.Emit(EvResample, b.cycles, int64(b.obsCh), int64(b.resamples), 0)
			}
			if b.resampleCap > 0 && b.resamples >= b.resampleCap {
				b.degrade(y)
				return
			}
			return // next cycle draws a fresh sample
		}
		b.finish(y, b.chargeUnitsFor(y), false)
		return
	}
	// Thresholding (or naive) path: clamp, charge for the raw value's
	// band, done in this cycle.
	charge := b.chargeUnitsFor(y)
	if !b.cfg.GuardDisabled {
		if y < lo {
			y = lo
		}
		if y > hi {
			y = hi
		}
		if b.threshold == 0 {
			// Randomized-response configuration: 1-bit output stage.
			if 2*y > b.rangeLower+b.rangeUpper {
				y = b.rangeUpper
			} else {
				y = b.rangeLower
			}
		}
	}
	b.finish(y, charge, false)
}

// degrade is the resample watchdog's trip handler: the loop has used
// its full cycle budget, so the RNG is suspect and the transaction
// falls back to a distribution that is certified without any
// acceptance assumption. With a certified thresholding threshold
// available the last sample is clamped into its window and charged
// the thresholding top band (≥ Mult·ε, which the analyzer certifies
// as the worst case); otherwise the module fails closed onto the
// cache.
func (b *DPBox) degrade(y int64) {
	b.degraded = true
	b.evDegrade = true
	if m := b.obs; m != nil {
		m.Degraded.Inc()
		m.Trace.Emit(EvDegrade, b.cycles, int64(b.obsCh), int64(b.resamples), 0)
	}
	if !b.degradeOK {
		if b.haveCache {
			b.finish(b.cache, 0, true)
		} else {
			b.finish(b.rangeLower, 0, true)
		}
		return
	}
	charge := b.topU
	if b.degradeU > charge {
		charge = b.degradeU
	}
	b.lastBand = int64(len(b.segs)) + 1 // degrade always pays the top band
	lo := b.rangeLower - b.degradeTh
	hi := b.rangeUpper + b.degradeTh
	if y < lo {
		y = lo
	}
	if y > hi {
		y = hi
	}
	b.finish(y, charge, false)
}

// ResampleCap returns the watchdog's resample-cycle cap (0 when the
// watchdog is inactive). Valid after the first noising transaction.
func (b *DPBox) ResampleCap() int { return b.resampleCap }

// DegradeThreshold returns the certified thresholding clamp the
// watchdog degrades to, and whether one is available.
func (b *DPBox) DegradeThreshold() (int64, bool) { return b.degradeTh, b.degradeOK }

// LastDegraded reports whether the most recent transaction tripped
// the resample watchdog.
func (b *DPBox) LastDegraded() bool { return b.degraded }

func (b *DPBox) finish(y, chargeU int64, fromCache bool) {
	if b.seqArmed {
		// Sequence-labelled transaction: the (seq, value) binding is
		// journaled atomically with the charge — for cache replays too
		// (at zero charge), so a retransmitted sequence recovers the
		// same value after a crash instead of redrawing.
		u := chargeU
		if fromCache {
			u = 0
		}
		rel := Release{Value: y, Degraded: b.degraded, FromCache: fromCache}
		if !b.ledger.chargeRelease(u, b.armedSeq, rel) {
			b.powerFail()
			return
		}
		b.recordRelease(b.armedSeq, rel)
		if m := b.obs; m != nil {
			m.Flight.Record(int64(b.obsCh), b.armedSeq, obs.StageJournal)
		}
		b.seqArmed = false
		if !fromCache {
			b.cache = y
			b.haveCache = true
		}
	} else if !fromCache {
		if !b.ledger.charge(chargeU) {
			// The two-phase journal write did not become durable: NVM
			// power is gone. Fail closed — no output is emitted for a
			// charge that was never committed.
			b.powerFail()
			return
		}
		b.cache = y
		b.haveCache = true
	}
	b.lastCharge = chargeU
	b.fromCache = fromCache
	b.out = y
	b.ready = true
	b.phase = PhaseWaiting
	if !fromCache {
		b.evCharge, b.evChargeUnits = true, chargeU
	}
	if m := b.obs; m != nil {
		m.Transactions.Inc()
		m.ResamplesPerTxn.Observe(int64(b.resamples))
		if fromCache {
			m.CacheReplays.Inc()
			m.Trace.Emit(EvCacheReplay, b.cycles, int64(b.obsCh), 0, y)
		} else {
			m.ChargeUnits.Observe(chargeU)
			m.ChargeBands.Observe(b.lastBand)
			m.Odometer.Charge(b.obsCh, float64(chargeU)*chargeUnit)
			m.Trace.Emit(EvCharge, b.cycles, int64(b.obsCh), chargeU, y)
		}
	}
}

// recordRelease mirrors a durable release binding into the in-memory
// cache.
func (b *DPBox) recordRelease(seq uint64, rel Release) {
	if b.releases == nil {
		b.releases = make(map[uint64]Release)
	}
	b.releases[seq] = rel
	if seq >= b.maxRelSeq {
		b.maxRelSeq = seq
	}
}

// NoiseResult summarizes one complete noising transaction.
type NoiseResult struct {
	// Value is the noised output in steps.
	Value int64
	// Cycles is the transaction latency: 2 + resamples.
	Cycles int
	// Resamples counts extra noise draws.
	Resamples int
	// Charged is the budget charge in nats (0 when FromCache).
	Charged float64
	// FromCache reports a replayed cached output.
	FromCache bool
	// Degraded reports that the resample watchdog tripped and the
	// output came from the certified thresholding clamp instead of
	// the resampling loop.
	Degraded bool
	// Replayed reports that a sequence-labelled request matched an
	// already-released sequence and the journaled value was returned
	// verbatim — no noise drawn, no budget charged.
	Replayed bool
}

// NoiseValue drives a full transaction: load the sensor value, start
// noising, and step the clock until the output is ready. The DP-Box
// must be in the waiting phase with ε and range configured.
func (b *DPBox) NoiseValue(x int64) (NoiseResult, error) {
	if b.phase != PhaseWaiting {
		return NoiseResult{}, fmt.Errorf("dpbox: NoiseValue in phase %v", b.phase)
	}
	cycles := 0
	if err := b.Command(CmdSetSensorValue, x); err != nil {
		return NoiseResult{}, err
	}
	cycles++
	if err := b.Command(CmdStartNoising, 0); err != nil {
		return NoiseResult{}, err
	}
	cycles++
	for !b.ready {
		if b.phase == PhaseDead {
			return NoiseResult{}, ErrPowerLost
		}
		b.Step()
		cycles++
		if cycles > 4096 {
			return NoiseResult{}, errors.New("dpbox: noising did not converge")
		}
	}
	charge := float64(b.lastCharge) * chargeUnit
	if b.fromCache {
		charge = 0
	}
	return NoiseResult{
		Value:     b.out,
		Cycles:    cycles,
		Resamples: b.resamples,
		Charged:   charge,
		FromCache: b.fromCache,
		Degraded:  b.degraded,
	}, nil
}

// NoiseValueSeq is NoiseValue for a report labelled with a per-node
// monotonic sequence number: noise for a sequence is drawn at most
// once, ever. The first call for seq runs a normal transaction whose
// (seq, value) binding is journaled atomically with its budget charge;
// any later call for the same seq — a retry loop re-asking after a
// lost ACK, or a fresh boot replaying after a crash mid-retry —
// returns the recorded value verbatim with Replayed set, drawing no
// noise and charging nothing. Retransmitting a release is therefore
// privacy-free: the wire never carries two noisings of one reading.
func (b *DPBox) NoiseValueSeq(seq uint64, x int64) (NoiseResult, error) {
	if rel, ok := b.releases[seq]; ok {
		if m := b.obs; m != nil {
			m.SeqReplays.Inc()
			m.Trace.Emit(EvSeqReplay, b.cycles, int64(b.obsCh), int64(seq), rel.Value)
			m.Flight.Record(int64(b.obsCh), seq, obs.StageReplayed)
		}
		return NoiseResult{
			Value:     rel.Value,
			Charged:   0,
			FromCache: true,
			Degraded:  rel.Degraded,
			Replayed:  true,
		}, nil
	}
	b.seqArmed, b.armedSeq = true, seq
	r, err := b.NoiseValue(x)
	b.seqArmed = false
	return r, err
}

// ReleaseFor returns the durably released value for a sequence, if
// one exists (in this power cycle or recovered from the journal).
func (b *DPBox) ReleaseFor(seq uint64) (Release, bool) {
	rel, ok := b.releases[seq]
	return rel, ok
}

// Releases returns a copy of the known (sequence → release) bindings.
func (b *DPBox) Releases() map[uint64]Release {
	out := make(map[uint64]Release, len(b.releases))
	for s, r := range b.releases {
		out[s] = r
	}
	return out
}

// NextSeq returns the smallest sequence number strictly above every
// known release (0 on a box that has never released).
func (b *DPBox) NextSeq() uint64 {
	if len(b.releases) == 0 {
		return 0
	}
	return b.maxRelSeq + 1
}

// Initialize drives the boot-time configuration: budget (in nats) and
// replenishment period (cycles; 0 disables), then locks and enters
// the waiting phase.
func (b *DPBox) Initialize(budgetNats float64, replenishEvery uint64) error {
	if b.phase != PhaseInit {
		return errors.New("dpbox: already initialized (power cycle required)")
	}
	if err := b.Command(CmdSetEpsilon, int64(math.Round(budgetNats/chargeUnit))); err != nil {
		return err
	}
	if err := b.Command(CmdSetRangeUpper, int64(replenishEvery)); err != nil {
		return err
	}
	return b.Command(CmdStartNoising, 0)
}

// Configure sets the per-reading registers from the waiting phase:
// ε = 2^-epsShift and the sensor range [lower, upper] in steps.
func (b *DPBox) Configure(epsShift int, lower, upper int64) error {
	if b.phase != PhaseWaiting {
		return fmt.Errorf("dpbox: Configure in phase %v", b.phase)
	}
	if err := b.Command(CmdSetEpsilon, int64(epsShift)); err != nil {
		return err
	}
	if err := b.Command(CmdSetRangeLower, lower); err != nil {
		return err
	}
	return b.Command(CmdSetRangeUpper, upper)
}

// SetResampling selects resampling (true) or thresholding (false).
func (b *DPBox) SetResampling(on bool) error {
	if b.resampling == on {
		return nil
	}
	return b.Command(CmdSetThreshold, -1)
}

// OverrideThreshold forces an explicit guard threshold in steps
// (0 = randomized-response mode). Pass through CmdSetThreshold.
// Overridden thresholds carry no closed-form certificate: the charge
// table switches to the exact analysis, and an override whose worst-
// case loss is infinite drains the entire budget on first use.
func (b *DPBox) OverrideThreshold(t int64) error {
	if t < 0 {
		return errors.New("dpbox: negative threshold override")
	}
	return b.Command(CmdSetThreshold, t)
}

// ClearThresholdOverride returns to the internally computed certified
// threshold. (A Go-level convenience: the 3-bit command port has no
// spare encoding for it; real hardware would power cycle.)
func (b *DPBox) ClearThresholdOverride() {
	b.thOverride = -1
	b.dirty = true
}

// LastFromCache reports whether the most recent output was served
// from the exhausted-budget cache.
func (b *DPBox) LastFromCache() bool { return b.fromCache }
