package dpbox

import (
	"io"

	"ulpdp/internal/vcd"
)

// TraceState is the DP-Box state visible to a tracer at the end of a
// clock cycle — the module's output-facing registers and wires.
type TraceState struct {
	Phase       Phase
	Ready       bool
	Out         int64
	Sensor      int64
	BudgetUnits int64
	Resampling  bool
	FromCache   bool
	// Degraded mirrors NoiseResult.Degraded: the resample watchdog
	// tripped and the output came from the certified clamp.
	Degraded bool
	// Healthy mirrors the online URNG battery verdict.
	Healthy bool
}

// Tracer observes the module cycle by cycle.
type Tracer interface {
	// Cycle is called once per clock with the end-of-cycle state.
	Cycle(cycle uint64, s TraceState)
}

// SetTracer attaches a tracer (nil detaches).
func (b *DPBox) SetTracer(t Tracer) { b.tracer = t }

// trace emits the current state to the attached tracer.
func (b *DPBox) trace() {
	if b.tracer == nil {
		return
	}
	b.tracer.Cycle(b.cycles, TraceState{
		Phase:       b.phase,
		Ready:       b.ready,
		Out:         b.out,
		Sensor:      b.sensor,
		BudgetUnits: b.ledger.units,
		Resampling:  b.resampling,
		FromCache:   b.fromCache,
		Degraded:    b.degraded,
		Healthy:     b.Healthy(),
	})
}

// VCDTracer streams DP-Box state into a VCD waveform readable by
// GTKWave and friends.
type VCDTracer struct {
	w      *vcd.Writer
	phase  *vcd.Signal
	ready  *vcd.Signal
	out    *vcd.Signal
	sensor *vcd.Signal
	budget *vcd.Signal
	resamp *vcd.Signal
	cache  *vcd.Signal
	degr   *vcd.Signal
	health *vcd.Signal
}

// NewVCDTracer builds a tracer writing a waveform to out.
func NewVCDTracer(out io.Writer) (*VCDTracer, error) {
	w := vcd.New(out, "dpbox")
	t := &VCDTracer{
		w:      w,
		phase:  w.Signal("phase", 2),
		ready:  w.Signal("ready", 1),
		out:    w.Signal("noised_out", 20),
		sensor: w.Signal("sensor", 20),
		budget: w.Signal("budget_units", 32),
		resamp: w.Signal("mode_resampling", 1),
		cache:  w.Signal("from_cache", 1),
		degr:   w.Signal("degraded", 1),
		health: w.Signal("urng_healthy", 1),
	}
	if err := w.Begin(); err != nil {
		return nil, err
	}
	return t, nil
}

// Cycle implements Tracer.
func (t *VCDTracer) Cycle(cycle uint64, s TraceState) {
	t.w.Tick(cycle)
	t.phase.Set(uint64(s.Phase))
	t.ready.Set(boolBit(s.Ready))
	t.out.Set(uint64(s.Out) & 0xFFFFF)
	t.sensor.Set(uint64(s.Sensor) & 0xFFFFF)
	t.budget.Set(uint64(s.BudgetUnits) & 0xFFFFFFFF)
	t.resamp.Set(boolBit(s.Resampling))
	t.cache.Set(boolBit(s.FromCache))
	t.degr.Set(boolBit(s.Degraded))
	t.health.Set(boolBit(s.Healthy))
}

// Close flushes the waveform.
func (t *VCDTracer) Close() error { return t.w.Close() }

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
