package dpbox

import (
	"io"

	"ulpdp/internal/vcd"
)

// TraceState is the DP-Box state visible to a tracer at the end of a
// clock cycle — the module's output-facing registers and wires.
type TraceState struct {
	Phase       Phase
	Ready       bool
	Out         int64
	Sensor      int64
	BudgetUnits int64
	Resampling  bool
	FromCache   bool
	// Degraded mirrors NoiseResult.Degraded: the resample watchdog
	// tripped and the output came from the certified clamp.
	Degraded bool
	// Healthy mirrors the online URNG battery verdict.
	Healthy bool
	// Telemetry event wires, valid for this cycle only (cleared at
	// the next edge): they mirror the obs trace-ring events so VCD
	// markers and the ring line up cycle for cycle.
	EvResample    int   // resample count after this cycle's miss (0 = no miss)
	EvCharge      bool  // a budget charge committed this cycle
	EvChargeUnits int64 // its size in sixteenth-nat units
	EvDegrade     bool  // the resample watchdog tripped this cycle
}

// Tracer observes the module cycle by cycle.
type Tracer interface {
	// Cycle is called once per clock with the end-of-cycle state.
	Cycle(cycle uint64, s TraceState)
}

// SetTracer attaches a tracer (nil detaches).
func (b *DPBox) SetTracer(t Tracer) { b.tracer = t }

// trace emits the current state to the attached tracer.
func (b *DPBox) trace() {
	if b.tracer == nil {
		return
	}
	b.tracer.Cycle(b.cycles, TraceState{
		Phase:         b.phase,
		Ready:         b.ready,
		Out:           b.out,
		Sensor:        b.sensor,
		BudgetUnits:   b.ledger.units,
		Resampling:    b.resampling,
		FromCache:     b.fromCache,
		Degraded:      b.degraded,
		Healthy:       b.Healthy(),
		EvResample:    b.evResample,
		EvCharge:      b.evCharge,
		EvChargeUnits: b.evChargeUnits,
		EvDegrade:     b.evDegrade,
	})
}

// VCDTracer streams DP-Box state into a VCD waveform readable by
// GTKWave and friends.
type VCDTracer struct {
	w      *vcd.Writer
	phase  *vcd.Signal
	ready  *vcd.Signal
	out    *vcd.Signal
	sensor *vcd.Signal
	budget *vcd.Signal
	resamp *vcd.Signal
	cache  *vcd.Signal
	degr   *vcd.Signal
	health *vcd.Signal
	// Telemetry marker signals mirroring the obs trace ring: each
	// event pulses for exactly the cycle it occurred in, so a waveform
	// viewer lines up with the ring's Cycle stamps.
	evResamp *vcd.Signal // resample count this cycle (0 between misses)
	evCharge *vcd.Signal // 1-cycle pulse per committed charge
	chargeU  *vcd.Signal // charge size (units) during the pulse
	evDegr   *vcd.Signal // 1-cycle pulse per watchdog trip
}

// NewVCDTracer builds a tracer writing a waveform to out.
func NewVCDTracer(out io.Writer) (*VCDTracer, error) {
	w := vcd.New(out, "dpbox")
	t := &VCDTracer{
		w:        w,
		phase:    w.Signal("phase", 2),
		ready:    w.Signal("ready", 1),
		out:      w.Signal("noised_out", 20),
		sensor:   w.Signal("sensor", 20),
		budget:   w.Signal("budget_units", 32),
		resamp:   w.Signal("mode_resampling", 1),
		cache:    w.Signal("from_cache", 1),
		degr:     w.Signal("degraded", 1),
		health:   w.Signal("urng_healthy", 1),
		evResamp: w.Signal("evt_resample", 16),
		evCharge: w.Signal("evt_charge", 1),
		chargeU:  w.Signal("evt_charge_units", 32),
		evDegr:   w.Signal("evt_degrade", 1),
	}
	if err := w.Begin(); err != nil {
		return nil, err
	}
	return t, nil
}

// Cycle implements Tracer.
func (t *VCDTracer) Cycle(cycle uint64, s TraceState) {
	t.w.Tick(cycle)
	t.phase.Set(uint64(s.Phase))
	t.ready.Set(boolBit(s.Ready))
	t.out.Set(uint64(s.Out) & 0xFFFFF)
	t.sensor.Set(uint64(s.Sensor) & 0xFFFFF)
	t.budget.Set(uint64(s.BudgetUnits) & 0xFFFFFFFF)
	t.resamp.Set(boolBit(s.Resampling))
	t.cache.Set(boolBit(s.FromCache))
	t.degr.Set(boolBit(s.Degraded))
	t.health.Set(boolBit(s.Healthy))
	t.evResamp.Set(uint64(s.EvResample) & 0xFFFF)
	t.evCharge.Set(boolBit(s.EvCharge))
	t.chargeU.Set(uint64(s.EvChargeUnits) & 0xFFFFFFFF)
	t.evDegr.Set(boolBit(s.EvDegrade))
}

// Close flushes the waveform.
func (t *VCDTracer) Close() error { return t.w.Close() }

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
