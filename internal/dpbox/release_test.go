package dpbox

import (
	"math"
	"sync"
	"testing"

	"ulpdp/internal/nvm"
	"ulpdp/internal/nvm/nvmtest"
)

// journalCfg is smallCfg with a fresh journal attached.
func journalCfg(seed uint64) (Config, *Journal) {
	j := NewJournal()
	cfg := smallCfg(seed)
	cfg.Journal = j
	return cfg, j
}

func TestNoiseValueSeqAtMostOnce(t *testing.T) {
	cfg, _ := journalCfg(5)
	b := boot(t, cfg, 1e6)

	first, err := b.NoiseValueSeq(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if first.Replayed || first.FromCache {
		t.Fatalf("first release marked replayed/cached: %+v", first)
	}
	if first.Charged <= 0 {
		t.Fatal("first release not charged")
	}
	budget := b.BudgetRemaining()

	// Every re-ask for the same sequence — the retry loop after a lost
	// ACK — replays the identical value free of charge.
	for i := 0; i < 5; i++ {
		again, err := b.NoiseValueSeq(0, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !again.Replayed {
			t.Fatalf("retry %d not marked replayed", i)
		}
		if again.Value != first.Value {
			t.Fatalf("retry %d redrew noise: %d != %d", i, again.Value, first.Value)
		}
		if again.Charged != 0 {
			t.Fatalf("retry %d charged %g nats", i, again.Charged)
		}
	}
	if got := b.BudgetRemaining(); got != budget {
		t.Fatalf("retries moved the budget: %g -> %g", budget, got)
	}

	// A new sequence draws fresh noise and charges again.
	second, err := b.NoiseValueSeq(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if second.Replayed {
		t.Fatal("fresh sequence marked replayed")
	}
	if second.Charged <= 0 {
		t.Fatal("fresh sequence not charged")
	}
	if b.NextSeq() != 2 {
		t.Fatalf("NextSeq = %d, want 2", b.NextSeq())
	}
}

func TestRecoveredReplayIsBitExact(t *testing.T) {
	cfg, j := journalCfg(7)
	b := boot(t, cfg, 1e6)

	want := make(map[uint64]int64)
	for seq := uint64(0); seq < 6; seq++ {
		r, err := b.NoiseValueSeq(seq, int64(2*seq))
		if err != nil {
			t.Fatal(err)
		}
		want[seq] = r.Value
	}

	// Crash: volatile state (including the noise stream position and
	// the release map) is gone; only the journal survives.
	j.Kill()
	b2, err := Recover(smallCfg(999), j) // different URNG seed on purpose
	if err != nil {
		t.Fatal(err)
	}
	if err := b2.Configure(1, 0, 16); err != nil {
		t.Fatal(err)
	}
	spentBefore := b2.BudgetRemaining()
	for seq := uint64(0); seq < 6; seq++ {
		r, err := b2.NoiseValueSeq(seq, int64(2*seq))
		if err != nil {
			t.Fatal(err)
		}
		if !r.Replayed {
			t.Fatalf("seq %d redrew after recovery", seq)
		}
		if r.Value != want[seq] {
			t.Fatalf("seq %d: recovered replay %d != pre-crash release %d", seq, r.Value, want[seq])
		}
	}
	if got := b2.BudgetRemaining(); got != spentBefore {
		t.Fatalf("recovered replays charged the ledger: %g -> %g", spentBefore, got)
	}
	if b2.NextSeq() != 6 {
		t.Fatalf("recovered NextSeq = %d, want 6", b2.NextSeq())
	}
}

// TestSeqReleasePowerLossSweep cuts NVM power after every journal word
// write across a sequence-labelled trace and checks the at-most-once
// invariant at each cut: a sequence whose value was handed to the
// caller must replay bit-exactly after recovery, and a recovered
// release must have its charge durably applied (no uncharged binding).
// The cut schedule comes from nvmtest.CrashSweep, the same word-level
// sweep harness the collector's checkpoint tests use.
func TestSeqReleasePowerLossSweep(t *testing.T) {
	type emission struct {
		seq    uint64
		value  int64
		charge int64
	}
	var refEmitted []emission
	nvmtest.CrashSweep(t, func(t testing.TB, pw *nvm.Power, cut int) {
		j := newJournalWith(nvm.NewMemMedium(1), pw)
		cfg := smallCfg(41)
		cfg.Journal = j
		b, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var emitted []emission
		runScript := func() error {
			if err := b.Initialize(1e6, 0); err != nil {
				return err
			}
			if err := b.Configure(1, 0, 16); err != nil {
				return err
			}
			for seq := uint64(0); seq < 5; seq++ {
				r, err := b.NoiseValueSeq(seq, int64(3*seq))
				if err != nil {
					return err
				}
				emitted = append(emitted, emission{seq, r.Value, int64(math.Round(r.Charged / chargeUnit))})
			}
			return nil
		}
		_ = runScript() // death partway is the point
		if cut < 0 {
			// Baseline pass: full power, full trace — record the
			// reference emissions the armed cuts compare against.
			refEmitted = append(refEmitted[:0], emitted...)
		}

		rec, err := Recover(smallCfg(41), j)
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		if rec.Phase() == PhaseInit {
			if len(emitted) != 0 {
				t.Fatalf("cut %d: %d emissions before budget lock", cut, len(emitted))
			}
			return
		}
		// Invariant A: everything emitted pre-crash replays bit-exactly.
		for _, e := range emitted {
			rel, ok := rec.ReleaseFor(e.seq)
			if !ok {
				t.Fatalf("cut %d: emitted seq %d lost by recovery (redraw risk)", cut, e.seq)
			}
			if rel.Value != e.value {
				t.Fatalf("cut %d: seq %d recovered as %d, emitted %d", cut, e.seq, rel.Value, e.value)
			}
		}
		// Invariant B: the durable spend covers every emitted charge and
		// at most one extra in-flight transaction (charged, not emitted).
		var emittedUnits int64
		for _, e := range emitted {
			emittedUnits += e.charge
		}
		spent := int64(math.Round(1e6/chargeUnit)) - int64(math.Round(rec.BudgetRemaining()/chargeUnit))
		if spent < emittedUnits {
			t.Fatalf("cut %d: %d units spent for %d emitted (uncharged release)", cut, spent, emittedUnits)
		}
		var maxCharge int64
		for _, e := range refEmitted {
			if e.charge > maxCharge {
				maxCharge = e.charge
			}
		}
		if spent > emittedUnits+maxCharge {
			t.Fatalf("cut %d: %d units spent for %d emitted (+%d max): double-spend", cut, spent, emittedUnits, maxCharge)
		}
		// Invariant C: a recovered release the caller never saw is the
		// one allowed charged-but-unemitted transaction; it must still
		// replay consistently if re-asked.
		rels := rec.Releases()
		if extra := len(rels) - len(emitted); extra < 0 || extra > 1 {
			t.Fatalf("cut %d: %d recovered releases for %d emissions", cut, len(rels), len(emitted))
		}
		if err := rec.Configure(1, 0, 16); err != nil {
			t.Fatalf("cut %d: post-recovery configure: %v", cut, err)
		}
		for seq, rel := range rels {
			r, err := rec.NoiseValueSeq(seq, 0)
			if err != nil {
				t.Fatalf("cut %d: post-recovery replay of seq %d: %v", cut, seq, err)
			}
			if !r.Replayed || r.Value != rel.Value {
				t.Fatalf("cut %d: post-recovery replay of seq %d diverged", cut, seq)
			}
		}
	})
}

// TestCompactionKeepsRetransmissionWindow drives more releases than
// the compaction cap and verifies the most recent window survives two
// crashes.
func TestCompactionKeepsRetransmissionWindow(t *testing.T) {
	cfg, j := journalCfg(13)
	b := boot(t, cfg, 1e9)
	const n = compactReleaseCap + 20
	want := make(map[uint64]int64)
	for seq := uint64(0); seq < n; seq++ {
		r, err := b.NoiseValueSeq(seq, 4)
		if err != nil {
			t.Fatal(err)
		}
		want[seq] = r.Value
	}
	j.Kill()
	b2, err := Recover(smallCfg(13), j)
	if err != nil {
		t.Fatal(err)
	}
	// First recovery: the in-memory cache holds everything replayed.
	if got := len(b2.Releases()); got != n {
		t.Fatalf("first recovery holds %d releases, want %d", got, n)
	}
	// Second crash: only the compacted window survived on NVM.
	j.Kill()
	b3, err := Recover(smallCfg(13), j)
	if err != nil {
		t.Fatal(err)
	}
	rels := b3.Releases()
	if got := len(rels); got != compactReleaseCap {
		t.Fatalf("second recovery holds %d releases, want the %d-entry window", got, compactReleaseCap)
	}
	for seq := uint64(n - compactReleaseCap); seq < n; seq++ {
		rel, ok := rels[seq]
		if !ok {
			t.Fatalf("window release %d dropped by compaction", seq)
		}
		if rel.Value != want[seq] {
			t.Fatalf("window release %d corrupted: %d != %d", seq, rel.Value, want[seq])
		}
	}
	if b3.NextSeq() != n {
		t.Fatalf("NextSeq after double recovery = %d, want %d", b3.NextSeq(), n)
	}
}

// TestBudgetExhaustedSeqReleaseJournaled: once the budget is spent, a
// sequence-labelled request serves the cache — and that zero-charge
// binding is still journaled, so even exhausted-path retries replay
// identically across a crash.
func TestBudgetExhaustedSeqReleaseJournaled(t *testing.T) {
	cfg, j := journalCfg(17)
	b := boot(t, cfg, 0.5) // room for one fresh release only
	first, err := b.NoiseValueSeq(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if first.FromCache {
		t.Fatal("first release unexpectedly from cache")
	}
	starved, err := b.NoiseValueSeq(1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !starved.FromCache || starved.Charged != 0 {
		t.Fatalf("exhausted release not served from cache: %+v", starved)
	}
	if starved.Value != first.Value {
		t.Fatalf("cache served %d, cached value is %d", starved.Value, first.Value)
	}
	j.Kill()
	rec, err := Recover(smallCfg(17), j)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Configure(1, 0, 16); err != nil {
		t.Fatal(err)
	}
	r, err := rec.NoiseValueSeq(1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Replayed || r.Value != starved.Value {
		t.Fatalf("exhausted-path release not replayed after crash: %+v", r)
	}
}

// TestBankConcurrentChannels is the satellite -race hammer: every
// channel of a journaled Bank noising concurrently while the Bank
// clock ticks the shared replenishment timer. The shared ledger must
// neither race nor lose accounting.
func TestBankConcurrentChannels(t *testing.T) {
	const channels = 8
	const perChannel = 40
	j := NewJournal()
	bank, err := NewBank(Config{Bu: 12, By: 10, Mult: 2, Journal: j}, channels, 99)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 1e6
	if err := bank.Initialize(budget, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < channels; i++ {
		if err := bank.Box(i).Configure(1, 0, 16); err != nil {
			t.Fatal(err)
		}
	}

	charges := make([]float64, channels)
	errs := make([]error, channels)
	stop := make(chan struct{})
	tickerDone := make(chan struct{})
	go func() { // the Bank clock runs alongside the channels
		defer close(tickerDone)
		for {
			select {
			case <-stop:
				return
			default:
				bank.Tick(16)
			}
		}
	}()
	var workers sync.WaitGroup
	for i := 0; i < channels; i++ {
		workers.Add(1)
		go func(ch int) {
			defer workers.Done()
			box := bank.Box(ch)
			for k := 0; k < perChannel; k++ {
				r, err := box.NoiseValue(8)
				if err != nil {
					errs[ch] = err
					return
				}
				charges[ch] += r.Charged
			}
		}(i)
	}
	workers.Wait()
	close(stop)
	<-tickerDone

	for i, err := range errs {
		if err != nil {
			t.Fatalf("channel %d: %v", i, err)
		}
	}
	var sum float64
	for _, c := range charges {
		sum += c
	}
	spent := budget - bank.BudgetRemaining()
	if math.Abs(spent-sum) > 1e-6 {
		t.Fatalf("ledger spent %g nats, channels charged %g (lost update)", spent, sum)
	}
	// The journal replay agrees with the volatile ledger bit for bit.
	st, err := j.Replay()
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(st.Units) * chargeUnit; math.Abs(got-bank.BudgetRemaining()) > 1e-9 {
		t.Fatalf("journal replay %g nats != live ledger %g", got, bank.BudgetRemaining())
	}
}
