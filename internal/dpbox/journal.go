package dpbox

import (
	"errors"
	"fmt"
	"sort"

	"ulpdp/internal/nvm"
)

// Journal is the DP-Box budget ledger's write-ahead log: a
// single-bank region of the shared internal/nvm engine, modelling a
// small append-only NVM area with 16-bit word-granular writes. Power
// can fail between any two word writes (FailAfterWrites), leaving a
// torn record at the tail; the replay parser stops at the first
// record that is truncated or fails its checksum, so a torn tail is
// indistinguishable from "never written" — exactly the atomicity the
// two-phase charge protocol needs.
//
// Record format (each field one 16-bit word):
//
//	hdr      tag<<12 | seq (seq is a 12-bit wrapping sequence number)
//	payload  0, 1 or 4 words depending on tag (64-bit values are 4
//	         little-endian 16-bit words)
//	chk      xor of hdr and payload words, xor nvm.SaltBudget
//
// Tags:
//
//	config      payload initialUnits(4) replenishEvery(4): written when
//	            the budget configuration is locked at secure boot
//	intent      payload chargeUnits(4): phase 1 of a charge
//	commit      no payload: phase 2; the charge whose intent has the
//	            same seq and immediately precedes it is durable
//	replenish   no payload: timer refill to initialUnits
//	checkpoint  payload units(4): absolute balance snapshot, written by
//	            recovery when compacting the log
//	release     payload reportSeq(4) value(4) flags(1): the noised
//	            value bound to one report sequence number, written
//	            between a charge's intent and commit so the
//	            (seq, value) binding becomes durable atomically with
//	            the charge that paid for it
//
// A charge is applied at replay only when its intent is directly
// followed by a matching commit (a release record may sit between the
// two and commits with them); an intent without its commit is rolled
// back, and with it any release it carried. The DP-Box emits an output
// only after the commit word is durable, so replaying a power-loss
// trace at every cut point can lose at most one
// fully-charged-but-unemitted output and can never double-spend or
// emit an uncharged output. Because the release travels inside the
// charge transaction, recovery either knows a sequence's exact noised
// value (and the budget paid for it) or knows the sequence was never
// released — the at-most-once-noising guarantee the fleet transport
// retries against.
type Journal struct {
	r *nvm.Region
}

// budgetLayout is the budget journal's record dialect over the
// shared engine.
func budgetLayout() nvm.Layout {
	return nvm.Layout{Salt: nvm.SaltBudget, PayloadLen: payloadLen}
}

// NewJournal returns an empty, powered journal on the simulated
// in-memory medium.
func NewJournal() *Journal {
	return newJournalWith(nvm.NewMemMedium(1), nvm.NewPower())
}

// newJournalWith builds a journal over an explicit medium and supply
// cell (crash sweeps arm the cell before the journal exists).
func newJournalWith(med nvm.Medium, pw *nvm.Power) *Journal {
	return &Journal{r: nvm.NewRegion(med, pw, budgetLayout())}
}

// OpenJournal opens (or creates) a file-backed journal under dir, so
// a killed-and-restarted process recovers the budget ledger and
// release cache from disk. Pass a non-empty journal to Recover; a
// fresh one goes straight to DPBox.Initialize.
func OpenJournal(dir string) (*Journal, error) {
	med, err := nvm.OpenFileMedium(dir, 1)
	if err != nil {
		return nil, err
	}
	return newJournalWith(med, nvm.NewPower()), nil
}

// Close releases the journal's medium (file handles; a no-op for the
// in-memory medium).
func (j *Journal) Close() error { return j.r.Medium().Close() }

// journal record tags.
const (
	tagConfig     = 1
	tagIntent     = 2
	tagCommit     = 3
	tagReplenish  = 4
	tagCheckpoint = 5
	tagRelease    = 6
)

// Release flag bits (the flags word of a release record).
const (
	relFlagDegraded  = 1 << 0
	relFlagFromCache = 1 << 1
)

// compactReleaseCap bounds how many release records recovery carries
// into the compacted journal: the highest-seq entries survive, older
// ones are dropped. A node's retransmission window (un-ACKed
// sequences that may still be asked for after a crash) must stay
// below this cap; the sequential ReportAgent keeps exactly one
// report outstanding, far under it.
const compactReleaseCap = 64

// payloadLen returns the payload word count for a tag, or -1 for an
// unknown tag.
func payloadLen(tag uint16) int {
	switch tag {
	case tagConfig:
		return 8
	case tagIntent, tagCheckpoint:
		return 4
	case tagCommit, tagReplenish:
		return 0
	case tagRelease:
		return 9
	}
	return -1
}

func (j *Journal) appendConfig(initialUnits int64, replenishEvery uint64) bool {
	a, b := nvm.Enc64(initialUnits), nvm.Enc64(int64(replenishEvery))
	return j.r.Append(0, tagConfig, []uint16{a[0], a[1], a[2], a[3], b[0], b[1], b[2], b[3]})
}

// appendCharge runs the two-phase protocol: intent then commit. Only
// after both records are durable may the caller apply the charge and
// emit the output.
func (j *Journal) appendCharge(units int64) bool {
	p := nvm.Enc64(units)
	pair, ok := j.r.TxnBegin(0, tagIntent, p[:])
	if !ok {
		return false
	}
	return j.r.TxnCommit(0, tagCommit, pair)
}

func (j *Journal) appendReplenish() bool {
	return j.r.Append(0, tagReplenish, nil)
}

// appendChargeRelease runs the two-phase protocol with a release
// record riding inside the transaction: intent, release, commit. The
// (reportSeq, value) binding becomes durable if and only if the
// charge does, so recovery can never learn a released value whose
// charge was rolled back, nor a charge whose released value is
// unknown.
func (j *Journal) appendChargeRelease(units int64, reportSeq uint64, value int64, flags uint16) bool {
	p := nvm.Enc64(units)
	pair, ok := j.r.TxnBegin(0, tagIntent, p[:])
	if !ok {
		return false
	}
	s, v := nvm.Enc64(int64(reportSeq)), nvm.Enc64(value)
	if !j.r.Append(0, tagRelease, []uint16{s[0], s[1], s[2], s[3], v[0], v[1], v[2], v[3], flags}) {
		return false
	}
	return j.r.TxnCommit(0, tagCommit, pair)
}

func (j *Journal) appendCheckpoint(units int64) bool {
	p := nvm.Enc64(units)
	return j.r.Append(0, tagCheckpoint, p[:])
}

// bindObs routes the engine's per-transaction telemetry (journal
// intent/commit counters) into the box metrics; nil m detaches.
func (j *Journal) bindObs(m *Metrics) {
	if m == nil {
		j.r.BindCounters(nil, nil)
		return
	}
	j.r.BindCounters(m.JournalIntents, m.JournalCommits)
}

// FailAfterWrites schedules a power failure after n more successful
// word writes (n = 0 kills the next write). Pass a negative n to
// disarm.
func (j *Journal) FailAfterWrites(n int) { j.r.Power().FailAfterWrites(n) }

// Kill drops NVM power immediately; all further writes fail.
func (j *Journal) Kill() { j.r.Power().Kill() }

// Alive reports whether the journal still accepts writes.
func (j *Journal) Alive() bool { return !j.r.Power().Dead() }

// revive restores power to the journal (secure boot).
func (j *Journal) revive() { j.r.Power().Revive() }

// Power returns the journal's supply cell (the fault plane's
// power-loss site binds to it).
func (j *Journal) Power() *nvm.Power { return j.r.Power() }

// Writes returns the number of durable words currently in the log.
func (j *Journal) Writes() int { return j.r.Len(0) }

// Stats returns the engine's introspection surface (durable words,
// banks, cumulative writes, compactions, fail-closed).
func (j *Journal) Stats() nvm.Stats { return j.r.Stats() }

// Snapshot returns a copy of the durable words (test introspection).
func (j *Journal) Snapshot() []uint16 {
	return append([]uint16(nil), j.r.Words(0)...)
}

// Release is one durably recorded (report sequence → noised value)
// binding: the value the DP-Box released for that sequence, exactly
// once, with the budget charge that paid for it. Retransmissions and
// crash recovery replay it verbatim instead of redrawing noise.
type Release struct {
	// Value is the released noised output in steps.
	Value int64
	// Degraded reports that the release came from the resample
	// watchdog's certified thresholding clamp.
	Degraded bool
	// FromCache reports a zero-charge release: the value replays an
	// earlier charged output (budget exhausted or URNG gate closed)
	// rather than fresh noise.
	FromCache bool
}

func (r Release) flags() uint16 {
	var f uint16
	if r.Degraded {
		f |= relFlagDegraded
	}
	if r.FromCache {
		f |= relFlagFromCache
	}
	return f
}

func releaseFromFlags(value int64, f uint16) Release {
	return Release{
		Value:     value,
		Degraded:  f&relFlagDegraded != 0,
		FromCache: f&relFlagFromCache != 0,
	}
}

// LedgerState is the budget ledger state reconstructed by Replay.
type LedgerState struct {
	// Configured reports whether a config record was recovered; false
	// means the box died before the budget lock and boots fresh.
	Configured bool
	// InitialUnits is the locked budget in sixteenth-nat units.
	InitialUnits int64
	// Units is the recovered remaining budget.
	Units int64
	// ReplenishEvery is the locked replenishment period in cycles.
	ReplenishEvery uint64
	// Releases maps report sequence numbers to their durably released
	// values (nil when the journal holds none).
	Releases map[uint64]Release
}

// Replay reconstructs the ledger from the durable words. A truncated
// or checksum-failing tail record ends the scan silently (that is the
// torn write the protocol is designed around); structurally impossible
// sequences return an error. The budget journal is lenient where the
// collector store is fail-closed: this log is single-writer, short,
// and every record it could lose was by construction never emitted.
func (j *Journal) Replay() (LedgerState, error) {
	var st LedgerState
	var pendAmt int64
	var pendSeq uint16
	var pendRelSeq uint64
	var pendRel Release
	pending, pendingRel := false, false
	sc := nvm.NewScanner(budgetLayout(), j.r.Words(0))
	for {
		tag, seq, payload, status := sc.Next()
		if status != nvm.ScanRecord {
			break // end of log, or a torn/trailing-garbage tail
		}
		if !st.Configured && tag != tagConfig {
			return st, fmt.Errorf("dpbox: journal record tag %d before config", tag)
		}
		switch tag {
		case tagConfig:
			if st.Configured {
				return st, errors.New("dpbox: duplicate journal config record")
			}
			st.Configured = true
			st.InitialUnits = nvm.Dec64(payload[0:4])
			st.ReplenishEvery = uint64(nvm.Dec64(payload[4:8]))
			st.Units = st.InitialUnits
		case tagIntent:
			pending, pendSeq, pendAmt = true, seq, nvm.Dec64(payload)
			pendingRel = false
		case tagRelease:
			if !pending {
				return st, errors.New("dpbox: journal release record outside a charge transaction")
			}
			pendRelSeq = uint64(nvm.Dec64(payload[0:4]))
			pendRel = releaseFromFlags(nvm.Dec64(payload[4:8]), payload[8])
			pendingRel = true
		case tagCommit:
			if pending && seq == pendSeq {
				st.Units -= pendAmt
				if st.Units < 0 {
					st.Units = 0
				}
				if pendingRel {
					if st.Releases == nil {
						st.Releases = make(map[uint64]Release)
					}
					st.Releases[pendRelSeq] = pendRel
				}
			}
			pending, pendingRel = false, false
		case tagReplenish:
			pending, pendingRel = false, false
			st.Units = st.InitialUnits
		case tagCheckpoint:
			pending, pendingRel = false, false
			st.Units = nvm.Dec64(payload)
		}
	}
	return st, nil
}

// compact rewrites the journal as a fresh config + checkpoint pair
// followed by the most recent release bindings (up to
// compactReleaseCap, as zero-charge transactions — the checkpoint
// already accounts for their spend), bounding NVM growth across power
// cycles while keeping the retransmission window replayable.
func (j *Journal) compact(st LedgerState) error {
	// Recovery-time rewrites are not charge traffic: suspend the
	// intent/commit telemetry while old transactions are folded into
	// the fresh log.
	intents, commits := j.r.Counters()
	j.r.BindCounters(nil, nil)
	defer j.r.BindCounters(intents, commits)

	j.r.Erase(0)
	j.r.SetSeq(0)
	if !j.appendConfig(st.InitialUnits, st.ReplenishEvery) || !j.appendCheckpoint(st.Units) {
		return errors.New("dpbox: journal compaction failed (NVM dead)")
	}
	seqs := make([]uint64, 0, len(st.Releases))
	for s := range st.Releases {
		seqs = append(seqs, s)
	}
	sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
	if len(seqs) > compactReleaseCap {
		seqs = seqs[len(seqs)-compactReleaseCap:]
	}
	for _, s := range seqs {
		rel := st.Releases[s]
		if !j.appendChargeRelease(0, s, rel.Value, rel.flags()) {
			return errors.New("dpbox: journal compaction failed (NVM dead)")
		}
	}
	j.r.NoteCompaction()
	return nil
}

// Recover is the secure-boot path after a power loss: it replays the
// journal, compacts it, and powers up a DP-Box with the recovered
// ledger. If the journal predates the budget lock the box boots fresh
// in the initialization phase. The replenishment timer restarts at
// zero — the conservative direction, since delaying a refill never
// overspends. cfg.Journal is overridden with j.
func Recover(cfg Config, j *Journal) (*DPBox, error) {
	if j == nil {
		return nil, errors.New("dpbox: recovery requires a journal")
	}
	j.revive()
	st, err := j.Replay()
	if err != nil {
		return nil, err
	}
	cfg.Journal = j
	b, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if !st.Configured {
		j.r.Erase(0) // discard any torn pre-lock tail
		j.r.SetSeq(0)
		return b, nil
	}
	if err := j.compact(st); err != nil {
		return nil, err
	}
	b.ledger.initial = st.InitialUnits
	b.ledger.units = st.Units
	b.ledger.replenishEvery = st.ReplenishEvery
	b.ledger.since = 0
	b.ledger.locked = true
	// Restore the release cache so sequence-labelled retries replay
	// the pre-crash values instead of redrawing. The in-memory cache
	// keeps everything the replay recovered; only the compacted NVM
	// copy is trimmed to the retransmission window, so a second crash
	// preserves at least that window.
	for seq, rel := range st.Releases {
		b.recordRelease(seq, rel)
	}
	b.phase = PhaseWaiting
	if m := b.obs; m != nil {
		m.JournalRecovers.Inc()
		m.Trace.Emit(EvRecover, 0, int64(b.obsCh), st.Units, int64(len(st.Releases)))
	}
	return b, nil
}
