package dpbox

import (
	"math"
	"testing"

	"ulpdp/internal/core"
	"ulpdp/internal/urng"
)

// boot powers up a DP-Box with a generous budget and a standard
// 8-step sensor range at ε = 0.5 (shift 1).
func boot(t *testing.T, cfg Config, budget float64) *DPBox {
	t.Helper()
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Initialize(budget, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Configure(1, 0, 16); err != nil {
		t.Fatal(err)
	}
	return b
}

func smallCfg(seed uint64) Config {
	return Config{Bu: 12, By: 10, Mult: 2, Multipliers: []float64{1.25, 1.5}, Source: urng.NewTaus88(seed)}
}

func TestPowerUpPhase(t *testing.T) {
	b, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Phase() != PhaseInit {
		t.Errorf("phase = %v, want init", b.Phase())
	}
}

func TestNewRejectsBadMult(t *testing.T) {
	if _, err := New(Config{Bu: 12, By: 10, Mult: 0.5}); err == nil {
		t.Error("mult <= 1 should be rejected")
	}
}

func TestInitializationLocksBudget(t *testing.T) {
	b, err := New(smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Initialize(5, 100); err != nil {
		t.Fatal(err)
	}
	if b.Phase() != PhaseWaiting {
		t.Fatalf("phase = %v", b.Phase())
	}
	if got := b.BudgetRemaining(); math.Abs(got-5) > 1e-9 {
		t.Errorf("budget = %g", got)
	}
	// Re-initialization requires a power cycle.
	if err := b.Initialize(100, 0); err == nil {
		t.Error("re-initialization should fail")
	}
	// Budget commands no longer reach the budget registers: in the
	// waiting phase SetEpsilon sets n_m instead.
	if err := b.Command(CmdSetEpsilon, 1); err != nil {
		t.Fatal(err)
	}
	if got := b.BudgetRemaining(); math.Abs(got-5) > 1e-9 {
		t.Errorf("budget changed after lock: %g", got)
	}
}

func TestInitRequiresBudget(t *testing.T) {
	b, err := New(smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Command(CmdStartNoising, 0); err == nil {
		t.Error("start without budget should fail")
	}
}

func TestInitRejectsNegatives(t *testing.T) {
	b, err := New(smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Command(CmdSetEpsilon, -1); err == nil {
		t.Error("negative budget should fail")
	}
	if err := b.Command(CmdSetRangeUpper, -1); err == nil {
		t.Error("negative replenishment period should fail")
	}
	if err := b.Command(CmdSetSensorValue, 0); err == nil {
		t.Error("sensor value in init phase should fail")
	}
}

func TestNoisingRequiresConfiguration(t *testing.T) {
	b, err := New(smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Initialize(100, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.NoiseValue(3); err == nil {
		t.Error("noising before configuration should fail")
	}
}

func TestThresholdingLatencyIsTwoCycles(t *testing.T) {
	b := boot(t, smallCfg(2), 1e9)
	for i := 0; i < 200; i++ {
		r, err := b.NoiseValue(8)
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles != 2 {
			t.Fatalf("thresholding latency = %d cycles, want 2", r.Cycles)
		}
		if r.Resamples != 0 {
			t.Fatal("thresholding must not resample")
		}
	}
}

func TestResamplingLatency(t *testing.T) {
	b := boot(t, smallCfg(3), 1e9)
	if err := b.SetResampling(true); err != nil {
		t.Fatal(err)
	}
	var total, n int
	sawResample := false
	for i := 0; i < 5000; i++ {
		r, err := b.NoiseValue(16) // extreme input maximizes resampling
		if err != nil {
			t.Fatal(err)
		}
		if r.Cycles != 2+r.Resamples {
			t.Fatalf("latency %d != 2 + %d resamples", r.Cycles, r.Resamples)
		}
		if r.Resamples > 0 {
			sawResample = true
		}
		total += r.Cycles
		n++
	}
	if !sawResample {
		t.Error("expected some resamples from an extreme input")
	}
	// The paper's Fig. 11 observation: resampling adds less than one
	// cycle on average.
	if avg := float64(total) / float64(n); avg >= 3 {
		t.Errorf("average latency %g exceeds 3 cycles", avg)
	}
}

func TestOutputsStayInGuardWindow(t *testing.T) {
	b := boot(t, smallCfg(4), 1e9)
	if _, err := b.NoiseValue(16); err != nil {
		t.Fatal(err) // derive the threshold
	}
	if b.Threshold() == 0 {
		t.Fatal("threshold not derived")
	}
	lo := -b.Threshold()
	hi := int64(16) + b.Threshold()
	for i := 0; i < 5000; i++ {
		r, err := b.NoiseValue(16)
		if err != nil {
			t.Fatal(err)
		}
		if r.Value < lo || r.Value > hi {
			t.Fatalf("output %d outside [%d, %d]", r.Value, lo, hi)
		}
	}
}

func TestGuardWindowMatchesCoreThreshold(t *testing.T) {
	b := boot(t, smallCfg(5), 1e9)
	if _, err := b.NoiseValue(8); err != nil {
		t.Fatal(err)
	}
	par := core.Params{Lo: 0, Hi: 16, Eps: 0.5, Bu: 12, By: 10, Delta: 1}
	want, err := core.ThresholdingThreshold(par, 2)
	if err != nil {
		t.Fatal(err)
	}
	if b.Threshold() != want {
		t.Errorf("threshold = %d, want %d", b.Threshold(), want)
	}
}

func TestBudgetExhaustionCaches(t *testing.T) {
	b := boot(t, smallCfg(6), 2)
	var fresh, cached int
	var cachedVal int64
	first := true
	for i := 0; i < 100; i++ {
		r, err := b.NoiseValue(8)
		if err != nil {
			t.Fatal(err)
		}
		if r.FromCache {
			cached++
			if r.Charged != 0 {
				t.Error("cached output charged")
			}
			if !first && r.Value != cachedVal {
				t.Errorf("cache value changed: %d != %d", r.Value, cachedVal)
			}
			cachedVal = r.Value
			first = false
		} else {
			fresh++
			cachedVal = r.Value
			if r.Charged <= 0 {
				t.Error("fresh output did not charge")
			}
		}
	}
	if fresh == 0 || cached == 0 {
		t.Errorf("fresh=%d cached=%d; want both non-zero", fresh, cached)
	}
	if b.BudgetRemaining() != 0 {
		t.Errorf("remaining = %g", b.BudgetRemaining())
	}
}

func TestReplenishmentRestoresBudget(t *testing.T) {
	cfg := smallCfg(7)
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Initialize(1, 50); err != nil {
		t.Fatal(err)
	}
	if err := b.Configure(1, 0, 16); err != nil {
		t.Fatal(err)
	}
	// Exhaust.
	for b.BudgetRemaining() > 0 {
		if _, err := b.NoiseValue(8); err != nil {
			t.Fatal(err)
		}
	}
	// Idle until the period elapses.
	for i := 0; i < 60; i++ {
		b.Step()
	}
	if got := b.BudgetRemaining(); math.Abs(got-1) > 1e-9 {
		t.Errorf("budget after replenishment = %g, want 1", got)
	}
}

func TestRandomizedResponseMode(t *testing.T) {
	b := boot(t, smallCfg(8), 1e9)
	if err := b.OverrideThreshold(0); err != nil {
		t.Fatal(err)
	}
	var lo, hi int
	for i := 0; i < 3000; i++ {
		r, err := b.NoiseValue(0)
		if err != nil {
			t.Fatal(err)
		}
		switch r.Value {
		case 0:
			lo++
		case 16:
			hi++
		default:
			t.Fatalf("RR output %d not a category boundary", r.Value)
		}
	}
	if lo == 0 || hi == 0 {
		t.Errorf("degenerate RR: lo=%d hi=%d", lo, hi)
	}
	if lo < hi {
		t.Errorf("true category should dominate: lo=%d hi=%d", lo, hi)
	}
}

func TestGuardDisabledProducesTailOutputs(t *testing.T) {
	cfg := smallCfg(9)
	cfg.GuardDisabled = true
	b := boot(t, cfg, 1e9)
	beyond := false
	certified, err := core.ThresholdingThreshold(core.Params{Lo: 0, Hi: 16, Eps: 0.5, Bu: 12, By: 10, Delta: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000 && !beyond; i++ {
		r, err := b.NoiseValue(16)
		if err != nil {
			t.Fatal(err)
		}
		if r.Value > 16+certified || r.Value < -certified {
			beyond = true
		}
	}
	if !beyond {
		t.Error("naive mode never produced an out-of-window output (should leak)")
	}
}

func TestBusyRejectsCommands(t *testing.T) {
	b := boot(t, smallCfg(10), 1e9)
	if err := b.SetResampling(true); err != nil {
		t.Fatal(err)
	}
	// Force a long transaction by stepping manually from noising.
	if err := b.Command(CmdSetSensorValue, 16); err != nil {
		t.Fatal(err)
	}
	if err := b.Command(CmdStartNoising, 0); err != nil {
		t.Fatal(err)
	}
	for !b.Ready() {
		// While noising (if still busy), commands are rejected.
		if b.Phase() == PhaseNoising {
			if err := b.Command(CmdSetSensorValue, 1); err == nil {
				t.Fatal("command accepted while noising")
			}
		}
		b.Step()
	}
}

func TestChargesMatchBandStructure(t *testing.T) {
	b := boot(t, smallCfg(11), 1e9)
	if _, err := b.NoiseValue(8); err != nil {
		t.Fatal(err)
	}
	// Interior raw outputs cost the interior charge; the most an
	// output can cost is Mult·ε rounded up to a sixteenth.
	interior := float64(b.interiorU) * chargeUnit
	if interior < 0.4 || interior > 1 {
		t.Errorf("interior charge = %g implausible for ε=0.5", interior)
	}
	top := float64(b.topU) * chargeUnit
	if top < 1 || top > 1.1 {
		t.Errorf("top charge = %g, want ~2·ε = 1", top)
	}
	for y := int64(-b.threshold); y <= 16+b.threshold; y++ {
		c := b.chargeUnitsFor(y)
		if c < b.interiorU || c > b.topU {
			t.Errorf("charge for %d = %d outside [%d, %d]", y, c, b.interiorU, b.topU)
		}
	}
}

func TestEpsilonShift(t *testing.T) {
	b := boot(t, smallCfg(12), 1e9)
	if got := b.Epsilon(); got != 0.5 {
		t.Errorf("epsilon = %g, want 0.5", got)
	}
	if err := b.Command(CmdSetEpsilon, 2); err != nil {
		t.Fatal(err)
	}
	if got := b.Epsilon(); got != 0.25 {
		t.Errorf("epsilon = %g, want 0.25", got)
	}
	if err := b.Command(CmdSetEpsilon, 99); err == nil {
		t.Error("out-of-range shift accepted")
	}
}

func TestCommandStrings(t *testing.T) {
	for cmd, want := range map[Command]string{
		CmdDoNothing: "DoNothing", CmdStartNoising: "StartNoising",
		CmdSetEpsilon: "SetEpsilon", CmdSetSensorValue: "SetSensorValue",
		CmdSetRangeUpper: "SetRangeUpper", CmdSetRangeLower: "SetRangeLower",
		CmdSetThreshold: "SetThreshold", Command(7): "Command(7)",
	} {
		if got := cmd.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", uint8(cmd), got, want)
		}
	}
	for p, want := range map[Phase]string{
		PhaseInit: "init", PhaseWaiting: "waiting", PhaseNoising: "noising", Phase(9): "Phase(9)",
	} {
		if got := p.String(); got != want {
			t.Errorf("Phase.String = %q, want %q", got, want)
		}
	}
}

func TestDoNothingHoldsState(t *testing.T) {
	b := boot(t, smallCfg(13), 1e9)
	before := b.Phase()
	if err := b.Command(CmdDoNothing, 0); err != nil {
		t.Fatal(err)
	}
	if b.Phase() != before {
		t.Error("DoNothing changed phase")
	}
}

func TestEmptyRangeRejected(t *testing.T) {
	b, err := New(smallCfg(14))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Initialize(10, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.Configure(1, 16, 0); err != nil {
		t.Fatal(err) // register writes themselves succeed
	}
	if err := b.Command(CmdSetSensorValue, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Command(CmdStartNoising, 0); err == nil {
		t.Error("noising with inverted range should fail")
	}
}

func TestDistributionMatchesCoreMechanism(t *testing.T) {
	// The DP-Box thresholding output distribution must match the
	// reference core.Thresholding mechanism given the same threshold.
	cfg := smallCfg(15)
	b := boot(t, cfg, 1e15)
	if _, err := b.NoiseValue(8); err != nil {
		t.Fatal(err)
	}
	par := core.Params{Lo: 0, Hi: 16, Eps: 0.5, Bu: 12, By: 10, Delta: 1}
	ref, err := core.NewThresholding(par, b.Threshold(), nil, urng.NewTaus88(99))
	if err != nil {
		t.Fatal(err)
	}
	const n = 120000
	counts := map[int64]int{}
	refCounts := map[int64]int{}
	for i := 0; i < n; i++ {
		r, err := b.NoiseValue(8)
		if err != nil {
			t.Fatal(err)
		}
		counts[r.Value]++
		refCounts[int64(math.Round(ref.Noise(8).Value))]++
	}
	for _, y := range []int64{8, 0, 16, 8 - b.Threshold()/2} {
		got := float64(counts[y]) / n
		want := float64(refCounts[y]) / n
		if math.Abs(got-want) > 6*math.Sqrt(want/n)+2e-3 {
			t.Errorf("P(y=%d): dpbox %g vs reference %g", y, got, want)
		}
	}
}
