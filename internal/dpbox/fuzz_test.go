package dpbox

import (
	"testing"

	"ulpdp/internal/fault"
	"ulpdp/internal/urng"
)

// TestRandomCommandStormNeverPanics drives a DP-Box with thousands of
// random commands and data words from every phase: the module must
// never panic, must stay inside its FSM, and — whenever the guard is
// active — must never emit an output outside the certified window.
// This is the robustness property a hardware block needs against
// hostile or buggy firmware.
func TestRandomCommandStormNeverPanics(t *testing.T) {
	rng := urng.NewSplitMix64(2026)
	for trial := 0; trial < 6; trial++ {
		box, err := New(Config{Bu: 12, By: 10, Mult: 2, Source: urng.NewTaus88(uint64(trial))})
		if err != nil {
			t.Fatal(err)
		}
		// Random boot: sometimes properly initialized, sometimes
		// stormed from the init phase.
		if rng.Float64() < 0.7 {
			if err := box.Initialize(float64(1+rng.Intn(100)), uint64(rng.Intn(1000))); err != nil {
				t.Fatal(err)
			}
		}
		var configured bool
		var lo, hi int64
		for step := 0; step < 600; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2:
				cmd := Command(rng.Intn(8))
				data := int64(rng.Intn(2000)) - 1000
				// Errors are expected (invalid phases, bad ranges);
				// panics are not.
				err := box.Command(cmd, data)
				_ = err
				configured = false // registers may have changed
			case 3, 4:
				box.Step()
			case 5, 6, 7, 8:
				if box.Phase() != PhaseWaiting {
					box.Step()
					continue
				}
				if !configured {
					lo, hi = int64(rng.Intn(50)), int64(50+rng.Intn(200))
					if err := box.Configure(rng.Intn(4), lo, hi); err != nil {
						continue
					}
					configured = true
				}
				x := lo + int64(rng.Intn(int(hi-lo+1)))
				r, err := box.NoiseValue(x)
				if err != nil {
					configured = false
					continue
				}
				if r.FromCache {
					// Cache replays may predate the current window;
					// they add no fresh information by construction.
					continue
				}
				th := box.Threshold()
				if r.Value < lo-th || r.Value > hi+th {
					t.Fatalf("trial %d: output %d outside [%d, %d] (threshold %d)",
						trial, r.Value, lo-th, hi+th, th)
				}
			case 9:
				if rng.Float64() < 0.5 {
					_ = box.SetResampling(rng.Float64() < 0.5)
					configured = false
				} else {
					_ = box.OverrideThreshold(int64(rng.Intn(50)))
					configured = false
				}
			}
		}
	}
}

// TestBudgetNeverIncreasesWithoutReplenish fuzzes transactions and
// checks the budget ledger is monotone non-increasing when no
// replenishment is configured.
func TestBudgetNeverIncreasesWithoutReplenish(t *testing.T) {
	rng := urng.NewSplitMix64(7)
	box := boot(t, smallCfg(61), 40)
	prev := box.BudgetRemaining()
	for i := 0; i < 2000; i++ {
		if rng.Float64() < 0.3 {
			box.Step()
		} else {
			if _, err := box.NoiseValue(int64(rng.Intn(17))); err != nil {
				t.Fatal(err)
			}
		}
		cur := box.BudgetRemaining()
		if cur > prev {
			t.Fatalf("budget rose %g -> %g without replenishment", prev, cur)
		}
		prev = cur
	}
}

// FuzzCommandPortFaults drives the DP-Box command port through an
// adversarial register-fault injector with a fuzzed command stream:
// whatever bits flip on the command bus, the module must never panic,
// never wedge in the noising phase, and never let the locked budget
// grow.
func FuzzCommandPortFaults(f *testing.F) {
	f.Add(uint8(1), int64(1), uint8(1), []byte{0x33, 0x01, 0x04, 0x10, 0x05, 0x00, 0x01, 0x08})
	f.Add(uint8(7), int64(-1), uint8(3), []byte{0x01, 0x7F, 0x06, 0xFF, 0x03, 0x08, 0x01, 0x00})
	f.Add(uint8(4), int64(256), uint8(2), []byte{0x02, 0x01, 0x05, 0x00, 0x04, 0x10, 0x03, 0x05, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, cmdMask uint8, dataMask int64, period uint8, prog []byte) {
		fp := fault.NewPlane()
		fp.SetCommandFault(fault.CommandBitFlip(cmdMask&7, dataMask, uint64(period%8)))
		box, err := New(Config{Bu: 12, By: 10, Mult: 2, Source: urng.NewTaus88(7), Faults: fp})
		if err != nil {
			t.Fatal(err)
		}
		_ = box.Initialize(4, 0) // a faulted boot may legitimately not lock
		for i := 0; i+1 < len(prog); i += 2 {
			cmd := Command(prog[i] & 7)
			data := int64(int8(prog[i+1]))
			_ = box.Command(cmd, data)
			// Once the budget is locked (init phase left), nothing on
			// the command bus — however faulted — may push the balance
			// above the locked initial value: charges only debit and a
			// replenish restores at most the initial.
			if box.Phase() != PhaseInit {
				if cap := float64(box.ledger.initial) * chargeUnit; box.BudgetRemaining() > cap+1e-9 {
					t.Fatalf("budget %g exceeds locked initial %g under command faults", box.BudgetRemaining(), cap)
				}
			}
			if box.Phase() == PhaseNoising {
				// Drain the transaction; the resample watchdog bounds it.
				for s := 0; s < 4096 && box.Phase() == PhaseNoising; s++ {
					box.Step()
				}
				if box.Phase() == PhaseNoising {
					t.Fatal("box wedged in the noising phase")
				}
			}
		}
	})
}
