package dpbox

import (
	"fmt"

	"ulpdp/internal/urng"
)

// Bank is a multi-sensor DP-Box: one budget ledger shared by several
// sensor channels. Section IV of the paper requires this when a node
// carries more than one sensor — an observer could otherwise combine
// readings of correlated sensors and multiply their individual
// budgets. Every channel charges the common ledger; once it is spent,
// every channel serves its own cached value until the shared
// replenishment period (driven by the Bank's clock) restores it.
//
// Concurrency: distinct channels may be driven from distinct
// goroutines (the collector ingest path does), and Tick may run
// alongside them — the shared ledger serializes every balance
// movement and the journal writes backing it internally. Each
// individual channel is still single-goroutine state: never drive the
// same Box from two goroutines. A charge that races the last units of
// budget saturates at zero exactly as it does sequentially, so
// interleaving can reorder charges but never mint budget.
type Bank struct {
	boxes  []*DPBox
	ledger *budgetLedger
	cycles uint64
}

// NewBank powers up n sensor channels sharing one budget ledger. Each
// channel gets an independently seeded Tausworthe URNG derived from
// seed (correlated noise across sensors would itself leak).
func NewBank(cfg Config, n int, seed uint64) (*Bank, error) {
	if n < 1 {
		return nil, fmt.Errorf("dpbox: bank needs at least one channel, got %d", n)
	}
	if cfg.Source != nil {
		return nil, fmt.Errorf("dpbox: bank channels must not share a noise source; leave Config.Source nil")
	}
	if cfg.Faults != nil {
		return nil, fmt.Errorf("dpbox: bank channels must not share a fault plane; inject per channel")
	}
	bank := &Bank{ledger: &budgetLedger{j: cfg.Journal, obs: cfg.Obs}}
	for i := 0; i < n; i++ {
		ci := cfg
		ci.Source = urng.NewTaus88(seed + uint64(i)*0x9E3779B9 + 1)
		// Each channel gets its own odometer channel so the shared
		// registry decomposes the shared ledger's spend per sensor.
		ci.ObsChannel = cfg.ObsChannel + i
		box, err := New(ci)
		if err != nil {
			return nil, err
		}
		box.ledger = bank.ledger
		box.ownTimer = false // the Bank's clock drives the timer
		bank.boxes = append(bank.boxes, box)
	}
	return bank, nil
}

// Channels returns the number of sensor channels.
func (bk *Bank) Channels() int { return len(bk.boxes) }

// Box returns channel i's DP-Box.
func (bk *Bank) Box(i int) *DPBox { return bk.boxes[i] }

// Initialize configures the shared budget (nats) and replenishment
// period (Bank cycles; 0 disables) and locks every channel into the
// waiting phase. Like a single box, this can happen only once per
// power cycle.
func (bk *Bank) Initialize(budgetNats float64, replenishEvery uint64) error {
	if err := bk.boxes[0].Initialize(budgetNats, replenishEvery); err != nil {
		return err
	}
	for _, box := range bk.boxes[1:] {
		// The shared ledger is configured; the remaining channels
		// only need the phase transition.
		if err := box.Command(CmdStartNoising, 0); err != nil {
			return err
		}
	}
	return nil
}

// Tick advances the Bank's clock (and with it the shared
// replenishment timer) by n cycles. If a journal-backed refill fails
// to become durable (NVM power lost) every channel fails closed.
func (bk *Bank) Tick(n uint64) {
	for i := uint64(0); i < n; i++ {
		bk.cycles++
		if !bk.ledger.tick() {
			for _, box := range bk.boxes {
				box.powerFail()
			}
			return
		}
	}
}

// BudgetRemaining returns the shared unspent budget in nats.
func (bk *Bank) BudgetRemaining() float64 {
	return float64(bk.ledger.balance()) * chargeUnit
}

// Cycles returns the Bank clock.
func (bk *Bank) Cycles() uint64 { return bk.cycles }
