package dpbox

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"ulpdp/internal/fault"
	"ulpdp/internal/obs"
)

// vcdMarker is one decoded value change of a telemetry marker signal.
type vcdMarker struct {
	time  uint64
	value uint64
}

// parseVCDMarkers decodes a VCD dump into per-signal change lists for
// the named signals (time → new value, initial dump included).
func parseVCDMarkers(t *testing.T, dump string, names ...string) map[string][]vcdMarker {
	t.Helper()
	idFor := map[string]string{} // id code → signal name
	want := map[string]bool{}
	for _, n := range names {
		want[n] = true
	}
	out := map[string][]vcdMarker{}
	var now uint64
	for _, line := range strings.Split(dump, "\n") {
		switch {
		case strings.HasPrefix(line, "$var "):
			// $var wire <width> <id> <name> $end
			f := strings.Fields(line)
			if len(f) >= 5 && want[f[4]] {
				idFor[f[3]] = f[4]
			}
		case strings.HasPrefix(line, "#"):
			v, err := strconv.ParseUint(line[1:], 10, 64)
			if err != nil {
				t.Fatalf("bad VCD time line %q: %v", line, err)
			}
			now = v
		case strings.HasPrefix(line, "b"):
			// b<binary> <id>
			f := strings.Fields(line)
			if len(f) != 2 {
				continue
			}
			if name, ok := idFor[f[1]]; ok {
				v, err := strconv.ParseUint(f[0][1:], 2, 64)
				if err != nil {
					t.Fatalf("bad VCD vector line %q: %v", line, err)
				}
				out[name] = append(out[name], vcdMarker{now, v})
			}
		case len(line) >= 2 && (line[0] == '0' || line[0] == '1'):
			if name, ok := idFor[line[1:]]; ok {
				out[name] = append(out[name], vcdMarker{now, uint64(line[0] - '0')})
			}
		}
	}
	return out
}

// markerAt reports whether a change to value v exists at time c.
func markerAt(ms []vcdMarker, c uint64, v uint64) bool {
	for _, m := range ms {
		if m.time == c && m.value == v {
			return true
		}
	}
	return false
}

// TestVCDMarkersAlignWithTraceRing is the marker-ordering regression:
// every resample, charge, and degrade event in the obs trace ring must
// appear as a VCD marker change at exactly the same cycle, and the
// waveform must replay the ring's ordering — resamples strictly before
// their transaction's charge, the degrade marker no later than the
// degraded charge.
func TestVCDMarkersAlignWithTraceRing(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg, 1)
	cfg, fp := faultCfg(21)
	cfg.Obs = m
	b := bootResampling(t, cfg) // one honest transaction before tracing

	var buf bytes.Buffer
	tr, err := NewVCDTracer(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b.SetTracer(tr)
	tracedFrom := b.Cycles()

	// A few honest resampling transactions, then an adversarial one
	// that trips the watchdog and degrades.
	for i := 0; i < 3; i++ {
		if _, err := b.NoiseValue(8); err != nil {
			t.Fatal(err)
		}
	}
	fp.SetURNGFault(fault.StuckWord(1))
	r, err := b.NoiseValue(8)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Degraded {
		t.Fatal("adversarial URNG did not degrade")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	marks := parseVCDMarkers(t, buf.String(),
		"evt_resample", "evt_charge", "evt_charge_units", "evt_degrade")
	for _, n := range []string{"evt_resample", "evt_charge", "evt_charge_units", "evt_degrade"} {
		if len(marks[n]) == 0 {
			t.Fatalf("waveform has no %s changes", n)
		}
	}

	// unitsAt replays evt_charge_units up to cycle c (the signal only
	// dumps changes, so the value at c is the latest change ≤ c).
	unitsAt := func(c uint64) uint64 {
		var v uint64
		for _, m := range marks["evt_charge_units"] {
			if m.time > c {
				break
			}
			v = m.value
		}
		return v
	}

	var (
		resamples, charges, degrades int
		lastResample                 uint64
		lastCharge                   uint64
		degradeCycle                 uint64
	)
	for _, ev := range m.Trace.Events() {
		// The boot transaction predates the waveform; its last event
		// lands on cycle == tracedFrom (the clock increments on the
		// next edge), so only strictly later cycles are on tape.
		if ev.Cycle <= tracedFrom {
			continue
		}
		switch ev.Kind {
		case EvResample:
			resamples++
			lastResample = ev.Cycle
			if !markerAt(marks["evt_resample"], ev.Cycle, uint64(ev.A)) {
				t.Fatalf("ring resample #%d at cycle %d has no evt_resample=%d marker", ev.A, ev.Cycle, ev.A)
			}
		case EvCharge:
			charges++
			if !markerAt(marks["evt_charge"], ev.Cycle, 1) {
				t.Fatalf("ring charge at cycle %d has no evt_charge pulse", ev.Cycle)
			}
			if got := unitsAt(ev.Cycle); got != uint64(ev.A) {
				t.Fatalf("evt_charge_units = %d at cycle %d, ring charged %d", got, ev.Cycle, ev.A)
			}
			// Ordering: every resample of this transaction precedes
			// its charge — except the watchdog trip, where the final
			// miss, the degrade, and the charge share one cycle.
			if resamples > 0 && lastResample >= ev.Cycle && degradeCycle != ev.Cycle {
				t.Fatalf("resample marker at cycle %d not before charge at %d", lastResample, ev.Cycle)
			}
			lastCharge = ev.Cycle
		case EvDegrade:
			degrades++
			degradeCycle = ev.Cycle
			if !markerAt(marks["evt_degrade"], ev.Cycle, 1) {
				t.Fatalf("ring degrade at cycle %d has no evt_degrade pulse", ev.Cycle)
			}
		}
	}
	if resamples == 0 || charges < 2 || degrades != 1 {
		t.Fatalf("ring window saw %d resamples, %d charges, %d degrades; want >0, ≥2, 1",
			resamples, charges, degrades)
	}
	// The degraded transaction still charges, at or after the trip.
	if degradeCycle > lastCharge {
		t.Fatalf("degrade marker at cycle %d after final charge at %d", degradeCycle, lastCharge)
	}
}
