package collector

import "ulpdp/internal/obs"

// EvBreaker is the trace event for a circuit-breaker transition:
// Node = the node id, A = state before, B = state after (BreakerState
// values).
const EvBreaker = "collector.breaker"

// Metrics is the collector's slice of the telemetry plane. The
// transition counters make the breaker's full lifecycle observable:
// Opened counts closed→open trips, HalfOpened open→half-open
// cooldown expiries, Closed half-open→closed recoveries, and
// Reopened half-open→open failed probes.
//
// QueueDepth is sampled once per drained reactor batch (the number of
// reports that pass pulled off the wire) rather than written on every
// enqueue and dequeue; Backpressure is retained for schema
// compatibility but stays 0 on the sharded reactor, where
// backpressure surfaces as transport overflow instead.
type Metrics struct {
	Accepted     *obs.Counter
	Duplicates   *obs.Counter
	Backpressure *obs.Counter
	BreakerDrops *obs.Counter
	Timeouts     *obs.Counter

	Opened     *obs.Counter
	HalfOpened *obs.Counter
	Closed     *obs.Counter
	Reopened   *obs.Counter

	// Crash-consistency plane: CheckpointBytes counts durable bytes
	// written to the shard checkpoint journals (admissions and
	// snapshots), Compactions counts snapshot rewrites, FailClosed
	// counts reports dropped unACKed on a dead journal, and the
	// Recover pair counts shards rebuilt and WAL-tail admissions
	// replayed at Collector.Recover.
	CheckpointBytes *obs.Counter
	Compactions     *obs.Counter
	FailClosed      *obs.Counter
	RecoverShards   *obs.Counter
	RecoverReplayed *obs.Counter

	QueueDepth *obs.Gauge
	Trace      *obs.Trace

	// Flight, when non-nil, receives shard-admit and checkpoint-commit
	// span stamps keyed by (node, seq). Wired by the fleet; nil keeps
	// every stamp a single nil check.
	Flight *obs.FlightRecorder
}

// NewMetrics registers (or re-binds) the collector metric schema.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Accepted:     r.Counter("collector.accepted"),
		Duplicates:   r.Counter("collector.duplicates"),
		Backpressure: r.Counter("collector.backpressure"),
		BreakerDrops: r.Counter("collector.breaker_drops"),
		Timeouts:     r.Counter("collector.timeouts"),

		Opened:     r.Counter("collector.breaker.opened"),
		HalfOpened: r.Counter("collector.breaker.half_opened"),
		Closed:     r.Counter("collector.breaker.closed"),
		Reopened:   r.Counter("collector.breaker.reopened"),

		CheckpointBytes: r.Counter("collector.checkpoint_bytes"),
		Compactions:     r.Counter("collector.compactions"),
		FailClosed:      r.Counter("collector.fail_closed"),
		RecoverShards:   r.Counter("collector.recover_shards"),
		RecoverReplayed: r.Counter("collector.recover_reports_replayed"),

		QueueDepth: r.Gauge("collector.queue_depth"),
		Trace:      r.Trace("trace", 1024),
	}
}

// transition records one breaker state change on the plane.
func (m *Metrics) transition(node int64, from, to BreakerState) {
	if m == nil {
		return
	}
	switch {
	case from == BreakerClosed && to == BreakerOpen:
		m.Opened.Inc()
	case from == BreakerOpen && to == BreakerHalfOpen:
		m.HalfOpened.Inc()
	case from == BreakerHalfOpen && to == BreakerClosed:
		m.Closed.Inc()
	case from == BreakerHalfOpen && to == BreakerOpen:
		m.Reopened.Inc()
	}
	m.Trace.Emit(EvBreaker, 0, node, int64(from), int64(to))
}
