// Package collector is the server side of the fleet protocol: it
// ingests noised reports from N concurrent nodes over lossy links,
// deduplicates them idempotently by (node, seq), ACKs what it has
// durably recorded, and degrades gracefully when a node goes bad.
//
// The ingest plane is sharded and event-driven. Every attached node
// is owned by exactly one shard, chosen by hash(NodeID) % Shards; a
// shard holds its nodes' dedup maps, breaker state, and stats under
// its own lock, so shards never contend with each other. Instead of
// one busy-polling goroutine per node, each link endpoint registers a
// readiness hook (transport.Endpoint.SetNotify): when a frame lands,
// the hook arms the node's pending bit and pushes its ID onto the
// owning shard's ready queue. The shard's single reactor goroutine
// wakes, drains every ready link with TryRecv, applies dedup +
// circuit-breaker policy, and writes the batch's ACKs back after
// releasing the shard lock. Idle links cost nothing — no goroutine,
// no poll, no lock traffic.
//
// Because the ACK is sent only after the report is recorded, "the
// agent saw an ACK" implies "the collector counted the value":
// at-least-once delivery composes with idempotent dedup into
// exactly-once accounting. Backpressure is the link's own bounded
// receive queue: a slow shard lets frames overflow there, which looks
// exactly like packet loss, and the node's retry loop recovers it.
//
// Node state is confined to its shard and every per-node decision
// depends only on that node's own report stream, so any shard count
// produces bit-identical per-node values, stats, and breaker
// transitions (see TestShardEquivalenceProperty).
//
// Per-node circuit breakers trip after consecutive failures (idle
// ticks of silence or reports flagged URNG-unhealthy), discard
// traffic while open, then half-open and probe: the next healthy
// report closes the breaker, an unhealthy one re-opens it. While a
// breaker is open — or a node reports its privacy budget exhausted —
// queries for that node serve the last-ACKed cached value, marked
// degraded, instead of failing.
package collector

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"ulpdp/internal/nvm"
	"ulpdp/internal/obs"
	"ulpdp/internal/transport"
)

// BreakerState is a per-node circuit breaker state.
type BreakerState uint8

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen discards traffic while the node cools off.
	BreakerOpen
	// BreakerHalfOpen admits the next report as a probe.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", uint8(s))
}

// Config parameterizes a Collector. The zero value gets
// simulation-friendly defaults.
type Config struct {
	// PollTimeout is each shard's idle-tick period (default 2ms). A
	// tick in which a node delivered nothing is one breaker failure
	// tick for that node — the event-driven equivalent of the old
	// per-node empty 2ms poll.
	PollTimeout time.Duration
	// Shards is the number of independent ingest shards (default 8,
	// clamped to [1, 1024]). Each shard runs one reactor goroutine
	// and owns the dedup/breaker/stats state of the nodes hashed to
	// it. Per-node results are bit-identical for any shard count.
	Shards int
	// QueueCap is retained for configuration compatibility. The
	// event-driven reactor has no shared ingest queue — pending
	// frames wait in each link's own bounded receive queue — so the
	// value is ignored.
	QueueCap int
	// BreakerThreshold is the consecutive-failure count that trips a
	// node's breaker (default 8).
	BreakerThreshold int
	// OpenTicks is how many idle ticks an open breaker waits before
	// half-opening to probe (default 4).
	OpenTicks int
	// CompactEvery is how many journaled admissions a shard absorbs
	// before compacting its checkpoint into a fresh snapshot (default
	// 4096; only meaningful with a durable Store attached via
	// NewDurable or Recover).
	CompactEvery int
	// Obs is an optional telemetry plane. Nil costs one nil check per
	// event.
	Obs *Metrics

	// procDelay stalls a shard per report; tests use it to force
	// slow-consumer backpressure deterministically.
	procDelay time.Duration
}

// Stats counts collector events; read a snapshot with Collector.Stats.
// Counters are lock-striped per shard and summed on read.
type Stats struct {
	// Accepted counts first-time (node, seq) reports recorded.
	Accepted uint64
	// Duplicates counts re-deliveries of an already-recorded
	// (node, seq); they are re-ACKed but change nothing.
	Duplicates uint64
	// Backpressure counts reports shed by the legacy shared ingest
	// queue. The sharded reactor has no such queue — backpressure now
	// surfaces as transport.Stats.Overflow on the link — so this is
	// always 0; the field survives for schema compatibility.
	Backpressure uint64
	// BreakerDrops counts reports discarded by an open breaker.
	BreakerDrops uint64
	// Timeouts counts per-node idle ticks (a node delivering nothing
	// for one PollTimeout period).
	Timeouts uint64
	// FailClosed counts reports dropped unACKed because the shard's
	// checkpoint journal lost power: with no way to make an admission
	// durable, the shard stops ACKing entirely (the fail-closed rule
	// inherited from the DP-Box budget ledger) and the nodes' retry
	// loops carry the reports across the restart.
	FailClosed uint64
}

func (s *Stats) add(o Stats) {
	s.Accepted += o.Accepted
	s.Duplicates += o.Duplicates
	s.Backpressure += o.Backpressure
	s.BreakerDrops += o.BreakerDrops
	s.Timeouts += o.Timeouts
	s.FailClosed += o.FailClosed
}

// denseLimit bounds the flat per-node value slice: sequence numbers
// below it index the slice directly; anything at or above spills to a
// map, so one hostile far-future seq cannot force a huge allocation.
const denseLimit = 1 << 20

// valueStore holds one node's distinct recorded (seq, value) pairs.
// Agents number reports densely from zero, so the hot path is a flat
// slice indexed by seq plus a seen-bitmap (reorder gaps are just
// unset bits) — no hashing, no per-insert bucket churn, amortized
// zero allocations. Far-out seqs fall back to a spill map.
type valueStore struct {
	vals []int64
	seen []uint64 // bitmap over vals: bit seq set once recorded
	far  map[uint64]int64
	n    int // distinct seqs recorded
}

// has reports whether seq was already recorded.
func (vs *valueStore) has(seq uint64) bool {
	if seq < uint64(len(vs.vals)) {
		return vs.seen[seq>>6]&(1<<(seq&63)) != 0
	}
	_, ok := vs.far[seq]
	return ok
}

// get returns the recorded value for seq (zero if absent; callers
// check has first).
func (vs *valueStore) get(seq uint64) int64 {
	if seq < uint64(len(vs.vals)) {
		return vs.vals[seq]
	}
	return vs.far[seq]
}

// put records a first-time seq. Callers guarantee !has(seq).
func (vs *valueStore) put(seq uint64, v int64) {
	if seq < denseLimit {
		for uint64(len(vs.vals)) <= seq {
			vs.vals = append(vs.vals, 0)
		}
		for len(vs.seen)*64 < len(vs.vals) {
			vs.seen = append(vs.seen, 0)
		}
		vs.vals[seq] = v
		vs.seen[seq>>6] |= 1 << (seq & 63)
	} else {
		if vs.far == nil {
			vs.far = make(map[uint64]int64)
		}
		vs.far[seq] = v
	}
	vs.n++
}

// forEach visits every recorded (seq, value) pair.
func (vs *valueStore) forEach(f func(seq uint64, v int64)) {
	for w, word := range vs.seen {
		for word != 0 {
			t := bits.TrailingZeros64(word)
			seq := uint64(w*64 + t)
			f(seq, vs.vals[seq])
			word &^= 1 << t
		}
	}
	for s, v := range vs.far {
		f(s, v)
	}
}

// nodeState is everything the collector knows about one node.
// Guarded by its owning shard's mu, except pending (atomic).
type nodeState struct {
	end *transport.Endpoint

	// pending is the readiness coalescing bit: set by the link's
	// notify hook when frames land (pushing the node ID onto the
	// shard's ready queue exactly once), cleared by the reactor just
	// before draining, so a node sits in the ready queue at most once
	// no matter how many frames arrive.
	pending atomic.Bool

	store valueStore // dedup + distinct recorded values

	haveAck   bool
	lastSeq   uint64 // highest ACKed seq
	lastValue int64  // its value — the graceful-degradation cache
	exhausted bool   // latest report carried FlagFromCache

	breaker    BreakerState
	consecFail int
	openLeft   int
	sawReport  bool // any frame since the last idle tick
}

// NodeView is a query snapshot for one node.
type NodeView struct {
	// Value is the freshest ACKed value (the cache while degraded).
	Value int64
	// Seq is the highest ACKed sequence number.
	Seq uint64
	// Have reports whether any report was ever ACKed.
	Have bool
	// Degraded reports that Value is served from the last-ACKed
	// cache: the breaker is not closed, or the node announced its
	// budget exhausted.
	Degraded bool
	// Breaker is the node's current breaker state.
	Breaker BreakerState
	// Reports counts distinct recorded sequence numbers.
	Reports int
}

// Aggregate is the fleet-wide rollup over distinct (node, seq)
// reports. It is order-independent, so any delivery schedule that
// gets every report through yields the identical aggregate.
type Aggregate struct {
	// Nodes counts attached nodes.
	Nodes int
	// Reports counts distinct (node, seq) pairs recorded.
	Reports int
	// Sum is the sum of all distinct recorded values.
	Sum int64
	// Degraded counts nodes currently served from cache.
	Degraded int
}

// ackOut is one batched ACK awaiting writeback.
type ackOut struct {
	end *transport.Endpoint
	pkt transport.Packet
}

// shard owns a hash partition of the fleet: its nodes' dedup and
// breaker state, a stripe of the stats, and one reactor goroutine.
type shard struct {
	c *Collector

	mu    sync.Mutex
	nodes map[transport.NodeID]*nodeState
	stats Stats

	// ready is the coalesced readiness queue (each node at most once,
	// enforced by nodeState.pending); wake is its level-triggered
	// doorbell. awake is set while the reactor is draining so pushes
	// landing mid-drain skip the doorbell send — the reactor re-checks
	// the queue before parking, so no wakeup is lost.
	readyMu sync.Mutex
	ready   []transport.NodeID
	wake    chan struct{}
	awake   atomic.Bool

	// Reactor-goroutine scratch, reused across batches so the
	// steady-state per-report path allocates nothing.
	spare []transport.NodeID
	acks  []ackOut

	// j is the shard's durable checkpoint journal (nil = volatile
	// collector). dead latches once a journal write fails: the shard
	// then drops all traffic unACKed, fail closed, because it can no
	// longer promise an ACKed report survives a restart. sinceCompact
	// counts admissions journaled since the last snapshot.
	j            *Journal
	dead         bool
	sinceCompact int
}

// Collector ingests, dedups, ACKs, and aggregates fleet reports.
type Collector struct {
	cfg    Config
	store  *Store
	shards []*shard
	stop   chan struct{}
	wg     sync.WaitGroup
}

// New starts a volatile collector (its shard reactors run until
// Close): dedup state lives purely in memory and dies with the
// process. Use NewDurable to add crash-consistent checkpointing, and
// Recover to rebuild from a store after a crash.
func New(cfg Config) *Collector {
	c, err := build(cfg, nil, nil)
	if err != nil {
		// build only fails on store problems; there is no store.
		panic(err)
	}
	return c
}

// NewDurable starts a collector whose shards journal every admission
// to the store before ACKing it. The store must be fresh (never
// written); a store holding prior state is a crashed collector's and
// must go through Recover — silently reseeding it would erase ACKed
// reports.
func NewDurable(cfg Config, store *Store) (*Collector, error) {
	if store == nil {
		return nil, errors.New("collector: NewDurable requires a store")
	}
	if !store.Empty() {
		return nil, errors.New("collector: store holds prior state; use Recover")
	}
	for i, j := range store.shards {
		if !j.seed() {
			return nil, fmt.Errorf("collector: seeding shard %d checkpoint: store power lost", i)
		}
	}
	return build(cfg, store, nil)
}

// build assembles a collector, optionally durable (store non-nil) and
// optionally from recovered shard states (rec non-nil, indexed by
// shard; recovered nodes start with no endpoint until Attach binds
// one).
func build(cfg Config, store *Store, rec []*shardState) (*Collector, error) {
	if cfg.PollTimeout <= 0 {
		cfg.PollTimeout = 2 * time.Millisecond
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.Shards > 1024 {
		cfg.Shards = 1024
	}
	if store != nil {
		// The node→shard hash depends on the shard count, and each
		// shard's journal holds exactly its own nodes: the store's
		// geometry wins.
		cfg.Shards = store.Shards()
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 8
	}
	if cfg.OpenTicks <= 0 {
		cfg.OpenTicks = 4
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = 4096
	}
	c := &Collector{
		cfg:    cfg,
		store:  store,
		shards: make([]*shard, cfg.Shards),
		stop:   make(chan struct{}),
	}
	for i := range c.shards {
		sh := &shard{
			c:     c,
			nodes: make(map[transport.NodeID]*nodeState),
			wake:  make(chan struct{}, 1),
		}
		if store != nil {
			sh.j = store.Shard(i)
		}
		if rec != nil && rec[i] != nil {
			sh.adopt(rec[i])
		}
		c.shards[i] = sh
	}
	for _, sh := range c.shards {
		c.wg.Add(1)
		go sh.run()
	}
	return c, nil
}

// adopt installs a replayed shard state: every recovered node
// materializes with its dedup store, last-ACK cache, and breaker
// state, awaiting an Attach to bind its link endpoint.
func (sh *shard) adopt(st *shardState) {
	for id := range st.nodes {
		sh.nodes[transport.NodeID(id)] = &nodeState{}
	}
	for id := range st.stores {
		if sh.nodes[transport.NodeID(id)] == nil {
			sh.nodes[transport.NodeID(id)] = &nodeState{}
		}
	}
	for id, ns := range sh.nodes {
		if sn := st.nodes[uint16(id)]; sn != nil {
			ns.breaker = sn.breaker
			ns.consecFail = sn.consecFail
			ns.openLeft = sn.openLeft
			ns.haveAck = sn.haveAck
			ns.exhausted = sn.exhausted
			ns.lastSeq = sn.lastSeq
			ns.lastValue = sn.lastValue
		}
		if vs := st.stores[uint16(id)]; vs != nil {
			ns.store = *vs
		}
	}
}

// Recover is the collector's secure-boot path after a crash: it
// revives the store, replays every shard's checkpoint journal,
// compacts each into a fresh snapshot, and starts a collector whose
// dedup state is exactly what it had ACKed before the crash. Node
// endpoints are not durable — re-Attach each node's link, after which
// retransmissions of already-admitted reports are absorbed as
// duplicates and re-ACKed bit-exactly. Any shard whose journal is
// corrupt (beyond an ordinary torn tail) refuses recovery entirely:
// fail closed, never admit a duplicate.
func Recover(cfg Config, store *Store) (*Collector, error) {
	if store == nil {
		return nil, errors.New("collector: recovery requires a store")
	}
	store.Revive()
	rec := make([]*shardState, store.Shards())
	replayed := 0
	for i, j := range store.shards {
		st, err := j.replay()
		if err != nil {
			return nil, fmt.Errorf("collector: shard %d: %w", i, err)
		}
		rec[i] = st
		replayed += st.replayed
		if !j.compact(st.nodes, st.stores) {
			return nil, fmt.Errorf("collector: shard %d: compaction failed (store power lost)", i)
		}
	}
	c, err := build(cfg, store, rec)
	if err != nil {
		return nil, err
	}
	if m := cfg.Obs; m != nil {
		m.RecoverShards.Add(uint64(store.Shards()))
		m.RecoverReplayed.Add(uint64(replayed))
	}
	return c, nil
}

// shardFor maps a node to its owning shard: hash(NodeID) % Shards.
func (c *Collector) shardFor(id transport.NodeID) *shard {
	h := uint64(id) * 0x9E3779B97F4A7C15 // Fibonacci hashing spreads dense IDs
	return c.shards[(h>>32)%uint64(len(c.shards))]
}

// Attach registers a node's link endpoint with its owning shard and
// installs the readiness hook. Attaching the same ID twice is an
// error — except onto a crash-recovered node, which exists with its
// dedup state but no endpoint until Attach binds one.
func (c *Collector) Attach(id transport.NodeID, end *transport.Endpoint) error {
	sh := c.shardFor(id)
	sh.mu.Lock()
	ns := sh.nodes[id]
	if ns != nil && ns.end != nil {
		sh.mu.Unlock()
		return fmt.Errorf("collector: node %d already attached", id)
	}
	if ns == nil {
		ns = &nodeState{}
		sh.nodes[id] = ns
	}
	ns.end = end
	sh.mu.Unlock()

	end.SetNotify(func() {
		if ns.pending.CompareAndSwap(false, true) {
			sh.push(id)
		}
	})
	// Frames may have landed before the hook existed; arm and enqueue
	// once so they are drained.
	ns.pending.Store(true)
	sh.push(id)
	return nil
}

// Close stops every shard reactor and waits for them.
func (c *Collector) Close() {
	close(c.stop)
	c.wg.Wait()
}

// push appends a node to the shard's ready queue and rings the
// doorbell. Callers hold the node's pending bit, so each node appears
// at most once (plus the harmless extra entry Attach seeds). The
// doorbell is skipped while the reactor is already draining: if the
// reactor misses this entry in its current pass, it re-checks the
// queue after clearing awake, and the mutex ordering guarantees it
// either sees the entry then or this push sees awake==false and
// rings.
func (sh *shard) push(id transport.NodeID) {
	sh.readyMu.Lock()
	sh.ready = append(sh.ready, id)
	sh.readyMu.Unlock()
	if sh.awake.Load() {
		return
	}
	select {
	case sh.wake <- struct{}{}:
	default:
	}
}

// run is the shard reactor: sleep until a link announces frames (or
// the idle tick fires), then drain exactly the ready links.
func (sh *shard) run() {
	defer sh.c.wg.Done()
	tick := time.NewTicker(sh.c.cfg.PollTimeout)
	defer tick.Stop()
	for {
		select {
		case <-sh.c.stop:
			return
		case <-sh.wake:
			sh.drainAll()
		case <-tick.C:
			sh.idleTick()
		}
	}
}

// drainAll drains ready links until the queue stays empty, with the
// awake flag raised so mid-drain arrivals don't ring the doorbell.
// Before parking it lowers the flag and re-checks the queue: a push
// that skipped the doorbell either landed before the check (seen
// here) or loaded awake after the lowering store (and rang).
func (sh *shard) drainAll() {
	sh.awake.Store(true)
	for sh.drain() {
	}
	sh.awake.Store(false)
	sh.readyMu.Lock()
	again := len(sh.ready) > 0
	sh.readyMu.Unlock()
	if again {
		select {
		case sh.wake <- struct{}{}:
		default:
		}
	}
}

// drain swaps out the ready queue and processes every pending link:
// clear the node's pending bit (arrivals during the drain re-arm it
// and re-queue the node), pull frames with TryRecv until dry, apply
// breaker + dedup policy under the shard lock, then write the batch's
// ACKs back after releasing it. It reports whether it pulled any
// ready links, so drainAll can loop until the queue runs dry.
func (sh *shard) drain() bool {
	sh.readyMu.Lock()
	ids := sh.ready
	sh.ready = sh.spare[:0]
	sh.readyMu.Unlock()
	if len(ids) == 0 {
		sh.spare = ids
		return false
	}

	batch := 0
	sh.mu.Lock()
	for _, id := range ids {
		ns := sh.nodes[id]
		if ns == nil {
			continue
		}
		ns.pending.Store(false)
		for {
			pkt, ok := ns.end.TryRecv()
			if !ok {
				break
			}
			if pkt.Kind != transport.KindReport || pkt.Node != id {
				continue // stray or echoed frame; the checksum already passed, but it is not ours
			}
			if d := sh.c.cfg.procDelay; d > 0 {
				time.Sleep(d)
			}
			sh.handleLocked(id, ns, pkt)
			batch++
		}
	}
	sh.mu.Unlock()

	// Queue-depth telemetry is sampled once per drained batch (the
	// number of reports this pass pulled off the wire) instead of
	// being written on every enqueue and dequeue — two contended
	// atomic writes per report on the old single-queue path.
	if m := sh.c.cfg.Obs; m != nil && batch > 0 {
		m.QueueDepth.Set(int64(batch))
	}

	// Batched ACK writeback: every ACK follows its report's recording
	// (record under the shard lock, ACK after), preserving the
	// "ACKed implies counted" invariant while keeping link sends off
	// the shard's critical section.
	for i := range sh.acks {
		sh.acks[i].end.Send(sh.acks[i].pkt)
		sh.acks[i] = ackOut{}
	}
	sh.acks = sh.acks[:0]
	sh.spare = ids[:0]
	return true
}

// handleLocked applies breaker policy and dedup for one report and
// queues its ACK. On a durable collector the admission is journaled
// (intent → record → commit) before the in-memory record and the ACK,
// so an ACK always implies a crash-survivable admission. Callers hold
// sh.mu.
func (sh *shard) handleLocked(id transport.NodeID, ns *nodeState, pkt transport.Packet) {
	m := sh.c.cfg.Obs
	if sh.dead {
		// The checkpoint journal lost power: nothing this shard admits
		// can be made durable, so nothing is ACKed — not even
		// duplicates, whose re-ACK costs nothing but would keep nodes
		// trusting a collector that can no longer keep its promise.
		sh.stats.FailClosed++
		if m != nil {
			m.FailClosed.Inc()
		}
		return
	}
	ns.sawReport = true
	unhealthy := pkt.Flags&transport.FlagUnhealthy != 0
	switch ns.breaker {
	case BreakerOpen:
		// Cooling off: traffic is discarded unACKed; the node's
		// retries will land once the breaker half-opens.
		sh.stats.BreakerDrops++
		if m != nil {
			m.BreakerDrops.Inc()
		}
		return
	case BreakerHalfOpen:
		if unhealthy {
			// Probe failed: back to open for another cooldown.
			ns.breaker = BreakerOpen
			ns.openLeft = sh.c.cfg.OpenTicks
			sh.stats.BreakerDrops++
			if m != nil {
				m.BreakerDrops.Inc()
				m.transition(int64(id), BreakerHalfOpen, BreakerOpen)
			}
			return
		}
		ns.breaker = BreakerClosed
		ns.consecFail = 0
		m.transition(int64(id), BreakerHalfOpen, BreakerClosed)
	case BreakerClosed:
		if unhealthy {
			ns.consecFail++
			if ns.consecFail >= sh.c.cfg.BreakerThreshold {
				ns.breaker = BreakerOpen
				ns.openLeft = sh.c.cfg.OpenTicks
				sh.stats.BreakerDrops++
				if m != nil {
					m.BreakerDrops.Inc()
					m.transition(int64(id), BreakerClosed, BreakerOpen)
				}
				return
			}
		} else {
			ns.consecFail = 0
		}
	}

	if ns.store.has(pkt.Seq) {
		sh.stats.Duplicates++
		if m != nil {
			m.Duplicates.Inc()
		}
	} else {
		// The shard has decided to admit: stamp before the durable
		// append so the admit→checkpoint transition is attributable.
		if m != nil {
			m.Flight.Record(int64(id), pkt.Seq, obs.StageAdmit)
		}
		if sh.j != nil {
			var aflags uint16
			if pkt.Flags&transport.FlagFromCache != 0 {
				aflags |= admFlagFromCache
			}
			if !sh.j.appendAdmission(uint16(id), pkt.Seq, pkt.Value, aflags) {
				// Torn admission: the commit never landed, so replay
				// rolls it back — drop unACKed and latch fail-closed.
				sh.dead = true
				sh.stats.FailClosed++
				if m != nil {
					m.FailClosed.Inc()
				}
				return
			}
			sh.sinceCompact++
			if m != nil {
				m.CheckpointBytes.Add(2 * admissionWords)
				m.Flight.Record(int64(id), pkt.Seq, obs.StageCheckpoint)
			}
		}
		ns.store.put(pkt.Seq, pkt.Value)
		sh.stats.Accepted++
		if m != nil {
			m.Accepted.Inc()
		}
	}
	if !ns.haveAck || pkt.Seq >= ns.lastSeq {
		ns.haveAck = true
		ns.lastSeq = pkt.Seq
		ns.lastValue = ns.store.get(pkt.Seq)
		ns.exhausted = pkt.Flags&transport.FlagFromCache != 0
	}
	// Compact only after the last-ACK cache absorbed this admission,
	// so the snapshot never trails the state it claims to capture.
	if sh.j != nil && sh.sinceCompact >= sh.c.cfg.CompactEvery {
		sh.compactLocked()
	}

	// ACK after recording (including duplicate re-ACKs: the node may
	// have missed the first ACK).
	sh.acks = append(sh.acks, ackOut{
		end: ns.end,
		pkt: transport.Packet{Kind: transport.KindAck, Node: id, Seq: pkt.Seq},
	})
}

// compactLocked rewrites the shard's checkpoint as a fresh snapshot
// of every node's dedup store, last-ACK cache, and breaker state,
// double-banked so a crash mid-compaction loses nothing. A compaction
// that cannot complete (store power lost) latches the shard dead.
// Callers hold sh.mu.
func (sh *shard) compactLocked() {
	nodes := make(map[uint16]*snapNode, len(sh.nodes))
	stores := make(map[uint16]*valueStore, len(sh.nodes))
	for id, ns := range sh.nodes {
		nodes[uint16(id)] = &snapNode{
			breaker:    ns.breaker,
			consecFail: ns.consecFail,
			openLeft:   ns.openLeft,
			haveAck:    ns.haveAck,
			exhausted:  ns.exhausted,
			lastSeq:    ns.lastSeq,
			lastValue:  ns.lastValue,
		}
		stores[uint16(id)] = &ns.store
	}
	if !sh.j.compact(nodes, stores) {
		sh.dead = true
		return
	}
	sh.sinceCompact = 0
	if m := sh.c.cfg.Obs; m != nil {
		m.Compactions.Inc()
		m.CheckpointBytes.Add(uint64(2 * sh.j.liveLen()))
	}
}

// idleTick feeds one silent tick into the breaker of every node that
// delivered nothing since the last tick. Only this shard's nodes are
// walked, under this shard's lock — idle nodes generate zero
// cross-shard lock traffic. It also flushes reorder holdbacks on
// silent links (the old per-node Recv deadline did this), so a
// delayed frame on a drained direction is late, never lost.
func (sh *shard) idleTick() {
	m := sh.c.cfg.Obs
	sh.mu.Lock()
	for id, ns := range sh.nodes {
		if ns.end == nil {
			continue // recovered, not yet re-attached: no link to tick
		}
		if ns.sawReport {
			ns.sawReport = false
			continue
		}
		ns.end.FlushHeld()
		sh.stats.Timeouts++
		if m != nil {
			m.Timeouts.Inc()
		}
		switch ns.breaker {
		case BreakerClosed:
			ns.consecFail++
			if ns.consecFail >= sh.c.cfg.BreakerThreshold {
				ns.breaker = BreakerOpen
				ns.openLeft = sh.c.cfg.OpenTicks
				m.transition(int64(id), BreakerClosed, BreakerOpen)
			}
		case BreakerOpen:
			ns.openLeft--
			if ns.openLeft <= 0 {
				ns.breaker = BreakerHalfOpen
				m.transition(int64(id), BreakerOpen, BreakerHalfOpen)
			}
		case BreakerHalfOpen:
			// Still silent; keep waiting for the probe.
		}
	}
	sh.mu.Unlock()
}

// Stats returns a snapshot of the collector counters, summed across
// the shard stripes.
func (c *Collector) Stats() Stats {
	var total Stats
	for _, sh := range c.shards {
		sh.mu.Lock()
		total.add(sh.stats)
		sh.mu.Unlock()
	}
	return total
}

// NVMStats aggregates the checkpoint store's engine statistics under
// the shard locks, so it is safe while the reactors are live. A
// volatile collector returns the zero Stats.
func (c *Collector) NVMStats() nvm.Stats {
	if c.store == nil {
		return nvm.Stats{}
	}
	agg := nvm.Stats{
		Banks:      c.store.med.Banks(),
		Writes:     c.store.Writes(),
		FailClosed: c.store.Dead(),
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		st := sh.j.r.Stats()
		sh.mu.Unlock()
		agg.Words += st.Words
		agg.Compactions += st.Compactions
	}
	return agg
}

// Node returns the query view for one node: the freshest value, or
// the last-ACKed cache marked degraded when the breaker is not
// closed or the node's budget is exhausted.
func (c *Collector) Node(id transport.NodeID) (NodeView, bool) {
	sh := c.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ns := sh.nodes[id]
	if ns == nil {
		return NodeView{}, false
	}
	return NodeView{
		Value:    ns.lastValue,
		Seq:      ns.lastSeq,
		Have:     ns.haveAck,
		Degraded: ns.breaker != BreakerClosed || ns.exhausted,
		Breaker:  ns.breaker,
		Reports:  ns.store.n,
	}, true
}

// Values returns a copy of a node's distinct recorded (seq, value)
// pairs.
func (c *Collector) Values(id transport.NodeID) map[uint64]int64 {
	sh := c.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ns := sh.nodes[id]
	if ns == nil {
		return nil
	}
	out := make(map[uint64]int64, ns.store.n)
	ns.store.forEach(func(s uint64, v int64) {
		out[s] = v
	})
	return out
}

// Aggregate rolls up every node's distinct reports. Shards are
// visited in turn, so the rollup is a consistent snapshot per shard
// (and exact whenever the fleet is quiescent, which is when the
// harness reads it).
func (c *Collector) Aggregate() Aggregate {
	var a Aggregate
	for _, sh := range c.shards {
		sh.mu.Lock()
		a.Nodes += len(sh.nodes)
		for _, ns := range sh.nodes {
			a.Reports += ns.store.n
			ns.store.forEach(func(_ uint64, v int64) {
				a.Sum += v
			})
			if ns.breaker != BreakerClosed || ns.exhausted {
				a.Degraded++
			}
		}
		sh.mu.Unlock()
	}
	return a
}
