// Package collector is the server side of the fleet protocol: it
// ingests noised reports from N concurrent nodes over lossy links,
// deduplicates them idempotently by (node, seq), ACKs what it has
// durably recorded, and degrades gracefully when a node goes bad.
//
// The pipeline is: one receive goroutine per attached node feeds a
// bounded shared ingest queue; a single processor goroutine drains
// the queue, applies dedup + circuit-breaker policy under one lock,
// and sends the ACK. A full ingest queue sheds the report without
// ACKing it — backpressure looks exactly like packet loss, and the
// node's retry loop recovers it. Because the ACK is sent only after
// the report is recorded, "the agent saw an ACK" implies "the
// collector counted the value": at-least-once delivery composes with
// idempotent dedup into exactly-once accounting.
//
// Per-node circuit breakers trip after consecutive failures (receive
// timeouts or reports flagged URNG-unhealthy), discard traffic while
// open, then half-open and probe: the next healthy report closes the
// breaker, an unhealthy one re-opens it. While a breaker is open —
// or a node reports its privacy budget exhausted — queries for that
// node serve the last-ACKed cached value, marked degraded, instead
// of failing.
package collector

import (
	"fmt"
	"sync"
	"time"

	"ulpdp/internal/transport"
)

// BreakerState is a per-node circuit breaker state.
type BreakerState uint8

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen discards traffic while the node cools off.
	BreakerOpen
	// BreakerHalfOpen admits the next report as a probe.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("BreakerState(%d)", uint8(s))
}

// Config parameterizes a Collector. The zero value gets
// simulation-friendly defaults.
type Config struct {
	// PollTimeout is each receive goroutine's wait per poll
	// (default 2ms). A poll that returns nothing is one breaker
	// failure tick.
	PollTimeout time.Duration
	// QueueCap bounds the shared ingest queue (default 256).
	QueueCap int
	// BreakerThreshold is the consecutive-failure count that trips a
	// node's breaker (default 8).
	BreakerThreshold int
	// OpenTicks is how many receive timeouts an open breaker waits
	// before half-opening to probe (default 4).
	OpenTicks int
	// Obs is an optional telemetry plane. Nil costs one nil check per
	// event.
	Obs *Metrics

	// procDelay stalls the processor per report; tests use it to
	// force ingest-queue backpressure deterministically.
	procDelay time.Duration
}

// Stats counts collector events; read a snapshot with Collector.Stats.
type Stats struct {
	// Accepted counts first-time (node, seq) reports recorded.
	Accepted uint64
	// Duplicates counts re-deliveries of an already-recorded
	// (node, seq); they are re-ACKed but change nothing.
	Duplicates uint64
	// Backpressure counts reports shed by the full ingest queue.
	Backpressure uint64
	// BreakerDrops counts reports discarded by an open breaker.
	BreakerDrops uint64
	// Timeouts counts empty receive polls.
	Timeouts uint64
}

// nodeState is everything the collector knows about one node.
// Guarded by Collector.mu.
type nodeState struct {
	end *transport.Endpoint

	values map[uint64]int64 // dedup: seq -> recorded value
	flags  map[uint64]uint8

	haveAck   bool
	lastSeq   uint64 // highest ACKed seq
	lastValue int64  // its value — the graceful-degradation cache
	exhausted bool   // latest report carried FlagFromCache

	breaker    BreakerState
	consecFail int
	openLeft   int
}

// item is one report in the ingest queue.
type item struct {
	node transport.NodeID
	pkt  transport.Packet
}

// NodeView is a query snapshot for one node.
type NodeView struct {
	// Value is the freshest ACKed value (the cache while degraded).
	Value int64
	// Seq is the highest ACKed sequence number.
	Seq uint64
	// Have reports whether any report was ever ACKed.
	Have bool
	// Degraded reports that Value is served from the last-ACKed
	// cache: the breaker is not closed, or the node announced its
	// budget exhausted.
	Degraded bool
	// Breaker is the node's current breaker state.
	Breaker BreakerState
	// Reports counts distinct recorded sequence numbers.
	Reports int
}

// Aggregate is the fleet-wide rollup over distinct (node, seq)
// reports. It is order-independent, so any delivery schedule that
// gets every report through yields the identical aggregate.
type Aggregate struct {
	// Nodes counts attached nodes.
	Nodes int
	// Reports counts distinct (node, seq) pairs recorded.
	Reports int
	// Sum is the sum of all distinct recorded values.
	Sum int64
	// Degraded counts nodes currently served from cache.
	Degraded int
}

// Collector ingests, dedups, ACKs, and aggregates fleet reports.
type Collector struct {
	cfg    Config
	ingest chan item
	stop   chan struct{}
	wg     sync.WaitGroup

	mu    sync.Mutex
	nodes map[transport.NodeID]*nodeState
	stats Stats
}

// New starts a collector (its processor goroutine runs until Close).
func New(cfg Config) *Collector {
	if cfg.PollTimeout <= 0 {
		cfg.PollTimeout = 2 * time.Millisecond
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 8
	}
	if cfg.OpenTicks <= 0 {
		cfg.OpenTicks = 4
	}
	c := &Collector{
		cfg:    cfg,
		ingest: make(chan item, cfg.QueueCap),
		stop:   make(chan struct{}),
		nodes:  make(map[transport.NodeID]*nodeState),
	}
	c.wg.Add(1)
	go c.process()
	return c
}

// Attach registers a node's link endpoint and starts its receive
// goroutine. Attaching the same ID twice is an error.
func (c *Collector) Attach(id transport.NodeID, end *transport.Endpoint) error {
	c.mu.Lock()
	if _, dup := c.nodes[id]; dup {
		c.mu.Unlock()
		return fmt.Errorf("collector: node %d already attached", id)
	}
	c.nodes[id] = &nodeState{
		end:    end,
		values: make(map[uint64]int64),
		flags:  make(map[uint64]uint8),
	}
	c.mu.Unlock()

	c.wg.Add(1)
	go c.receive(id, end)
	return nil
}

// Close stops every goroutine and waits for them.
func (c *Collector) Close() {
	close(c.stop)
	c.wg.Wait()
}

// receive is the per-node ingest front: poll the link, feed the
// bounded queue, and report silence to the breaker.
func (c *Collector) receive(id transport.NodeID, end *transport.Endpoint) {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		pkt, ok := end.Recv(c.cfg.PollTimeout)
		if !ok {
			c.noteTimeout(id)
			continue
		}
		if pkt.Kind != transport.KindReport || pkt.Node != id {
			continue // stray or echoed frame; the checksum already passed, but it is not ours
		}
		select {
		case c.ingest <- item{node: id, pkt: pkt}:
			if m := c.cfg.Obs; m != nil {
				m.QueueDepth.Set(int64(len(c.ingest)))
			}
		default:
			// Queue full: shed without ACK. The node retries, and by
			// then the queue has drained — backpressure is just
			// self-inflicted packet loss.
			c.count(func(s *Stats) { s.Backpressure++ })
			if m := c.cfg.Obs; m != nil {
				m.Backpressure.Inc()
			}
		}
	}
}

// process is the single consumer of the ingest queue.
func (c *Collector) process() {
	defer c.wg.Done()
	for {
		select {
		case <-c.stop:
			return
		case it := <-c.ingest:
			if m := c.cfg.Obs; m != nil {
				m.QueueDepth.Set(int64(len(c.ingest)))
			}
			if c.cfg.procDelay > 0 {
				time.Sleep(c.cfg.procDelay)
			}
			c.handle(it)
		}
	}
}

// handle applies breaker policy and dedup for one report, then ACKs.
func (c *Collector) handle(it item) {
	c.mu.Lock()
	ns := c.nodes[it.node]
	if ns == nil {
		c.mu.Unlock()
		return
	}
	unhealthy := it.pkt.Flags&transport.FlagUnhealthy != 0

	m := c.cfg.Obs
	switch ns.breaker {
	case BreakerOpen:
		// Cooling off: traffic is discarded unACKed; the node's
		// retries will land once the breaker half-opens.
		c.stats.BreakerDrops++
		c.mu.Unlock()
		if m != nil {
			m.BreakerDrops.Inc()
		}
		return
	case BreakerHalfOpen:
		if unhealthy {
			// Probe failed: back to open for another cooldown.
			ns.breaker = BreakerOpen
			ns.openLeft = c.cfg.OpenTicks
			c.stats.BreakerDrops++
			c.mu.Unlock()
			if m != nil {
				m.BreakerDrops.Inc()
				m.transition(int64(it.node), BreakerHalfOpen, BreakerOpen)
			}
			return
		}
		ns.breaker = BreakerClosed
		ns.consecFail = 0
		m.transition(int64(it.node), BreakerHalfOpen, BreakerClosed)
	case BreakerClosed:
		if unhealthy {
			ns.consecFail++
			if ns.consecFail >= c.cfg.BreakerThreshold {
				ns.breaker = BreakerOpen
				ns.openLeft = c.cfg.OpenTicks
				c.stats.BreakerDrops++
				c.mu.Unlock()
				if m != nil {
					m.BreakerDrops.Inc()
					m.transition(int64(it.node), BreakerClosed, BreakerOpen)
				}
				return
			}
		} else {
			ns.consecFail = 0
		}
	}

	if _, seen := ns.values[it.pkt.Seq]; seen {
		c.stats.Duplicates++
		if m != nil {
			m.Duplicates.Inc()
		}
	} else {
		ns.values[it.pkt.Seq] = it.pkt.Value
		ns.flags[it.pkt.Seq] = it.pkt.Flags
		c.stats.Accepted++
		if m != nil {
			m.Accepted.Inc()
		}
	}
	if !ns.haveAck || it.pkt.Seq >= ns.lastSeq {
		ns.haveAck = true
		ns.lastSeq = it.pkt.Seq
		ns.lastValue = ns.values[it.pkt.Seq]
		ns.exhausted = it.pkt.Flags&transport.FlagFromCache != 0
	}
	end := ns.end
	c.mu.Unlock()

	// ACK after recording (including duplicate re-ACKs: the node may
	// have missed the first ACK).
	end.Send(transport.Packet{Kind: transport.KindAck, Node: it.node, Seq: it.pkt.Seq})
}

// noteTimeout feeds one silent poll into the breaker.
func (c *Collector) noteTimeout(id transport.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Timeouts++
	m := c.cfg.Obs
	if m != nil {
		m.Timeouts.Inc()
	}
	ns := c.nodes[id]
	if ns == nil {
		return
	}
	switch ns.breaker {
	case BreakerClosed:
		ns.consecFail++
		if ns.consecFail >= c.cfg.BreakerThreshold {
			ns.breaker = BreakerOpen
			ns.openLeft = c.cfg.OpenTicks
			m.transition(int64(id), BreakerClosed, BreakerOpen)
		}
	case BreakerOpen:
		ns.openLeft--
		if ns.openLeft <= 0 {
			ns.breaker = BreakerHalfOpen
			m.transition(int64(id), BreakerOpen, BreakerHalfOpen)
		}
	case BreakerHalfOpen:
		// Still silent; keep waiting for the probe.
	}
}

func (c *Collector) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// Stats returns a snapshot of the collector counters.
func (c *Collector) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Node returns the query view for one node: the freshest value, or
// the last-ACKed cache marked degraded when the breaker is not
// closed or the node's budget is exhausted.
func (c *Collector) Node(id transport.NodeID) (NodeView, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ns := c.nodes[id]
	if ns == nil {
		return NodeView{}, false
	}
	return NodeView{
		Value:    ns.lastValue,
		Seq:      ns.lastSeq,
		Have:     ns.haveAck,
		Degraded: ns.breaker != BreakerClosed || ns.exhausted,
		Breaker:  ns.breaker,
		Reports:  len(ns.values),
	}, true
}

// Values returns a copy of a node's distinct recorded (seq, value)
// pairs.
func (c *Collector) Values(id transport.NodeID) map[uint64]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	ns := c.nodes[id]
	if ns == nil {
		return nil
	}
	out := make(map[uint64]int64, len(ns.values))
	for s, v := range ns.values {
		out[s] = v
	}
	return out
}

// Aggregate rolls up every node's distinct reports.
func (c *Collector) Aggregate() Aggregate {
	c.mu.Lock()
	defer c.mu.Unlock()
	var a Aggregate
	a.Nodes = len(c.nodes)
	for _, ns := range c.nodes {
		a.Reports += len(ns.values)
		for _, v := range ns.values {
			a.Sum += v
		}
		if ns.breaker != BreakerClosed || ns.exhausted {
			a.Degraded++
		}
	}
	return a
}
