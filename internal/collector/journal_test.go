package collector

import (
	"errors"
	"testing"

	"ulpdp/internal/nvm"
	"ulpdp/internal/nvm/nvmtest"
)

// admSpec is one scripted admission for the crash-sweep harness.
type admSpec struct {
	node uint16
	seq  uint64
	val  int64
}

// sweepScript is a small deterministic admission schedule across three
// nodes with out-of-order arrivals, compacted every fourth admission —
// enough structure that a crash can land inside an intent, a record, a
// commit, or any word of a snapshot rewrite.
func sweepScript() []admSpec {
	return []admSpec{
		{1, 0, 100}, {2, 0, -7}, {1, 1, 101}, {3, 0, 42},
		{2, 2, -9}, {2, 1, -8}, {1, 2, 102}, {3, 1, 43},
		{1, 3, -103}, {3, 2, 44}, {2, 3, 1 << 40}, {1, 4, 104},
	}
}

// runSweepScript drives shard 0's journal through the script exactly
// the way handleLocked would: journal the admission, and only on
// success apply it to the mirror state (the set of admissions the
// collector would have ACKed). Every fourth ACKed admission triggers a
// compaction of the mirror, like the shard's CompactEvery. Returns the
// mirror of ACKed admissions; the power cell decides how far it gets.
func runSweepScript(s *Store) (*shardState, bool) {
	j := s.Shard(0)
	mirror := newShardState(0)
	if !j.seed() {
		// NewDurable would have errored out: the collector was never
		// born and owes nothing to anyone.
		return mirror, false
	}
	acked := 0
	for _, a := range sweepScript() {
		if !j.appendAdmission(a.node, a.seq, a.val, 0) {
			return mirror, true
		}
		mirror.admit(a.node, a.seq, a.val, 0)
		acked++
		if acked%4 == 0 {
			// A failed compaction is survivable by design: the old bank
			// stays live, but the store is dead so later appends fail.
			j.compact(mirror.nodes, mirror.stores)
		}
	}
	return mirror, true
}

// requireStateEqual asserts the recovered shard state carries exactly
// the mirror's admissions and per-node last-ACK metadata.
func requireStateEqual(t testing.TB, w int, got, want *shardState) {
	t.Helper()
	count := func(st *shardState) int {
		n := 0
		for _, vs := range st.stores {
			n += vs.n
		}
		return n
	}
	if count(got) != count(want) {
		t.Fatalf("crash@%d: recovered %d admissions, ACKed %d", w, count(got), count(want))
	}
	for id, vs := range want.stores {
		rvs := got.stores[id]
		if rvs == nil {
			t.Fatalf("crash@%d: node %d lost entirely", w, id)
		}
		vs.forEach(func(seq uint64, v int64) {
			if !rvs.has(seq) {
				t.Fatalf("crash@%d: node %d seq %d ACKed but lost", w, id, seq)
			}
			if g := rvs.get(seq); g != v {
				t.Fatalf("crash@%d: node %d seq %d = %d, ACKed %d", w, id, seq, g, v)
			}
		})
	}
	for id, sn := range want.nodes {
		rn := got.nodes[id]
		if rn == nil {
			t.Fatalf("crash@%d: node %d metadata lost", w, id)
		}
		if rn.haveAck != sn.haveAck || rn.lastSeq != sn.lastSeq || rn.lastValue != sn.lastValue {
			t.Fatalf("crash@%d: node %d last-ACK cache %+v, want %+v", w, id, rn, sn)
		}
	}
}

// TestCheckpointCrashSweep kills the store power at every single word
// write of the scripted run — inside seeds, intents, records, commits,
// and snapshot rewrites alike — and asserts recovery reconstructs
// exactly the ACKed prefix: no admission the collector ACKed is lost,
// no torn admission is resurrected, and replay never mistakes a torn
// tail for corruption. The sweep itself is the shared
// nvmtest.CrashSweep property harness.
func TestCheckpointCrashSweep(t *testing.T) {
	nvmtest.CrashSweep(t, func(t testing.TB, pw *nvm.Power, cut int) {
		s := newStoreOn(nvm.NewMemMedium(2), pw, 1)
		mirror, seeded := runSweepScript(s)
		if cut < 0 {
			// Baseline pass: just sanity-check the script's word volume.
			if total := int(pw.Writes()); total < 16*len(sweepScript()) {
				t.Fatalf("suspiciously small baseline: %d words", total)
			}
			return
		}
		s.Revive()
		st, err := s.Shard(0).replay()
		if !seeded {
			// The crash landed inside the seed snapshot: NewDurable
			// reported failure, the collector never ran, and replay
			// correctly refuses the half-written journal.
			if err == nil {
				t.Fatalf("crash@%d: replay accepted a journal whose seeding failed", cut)
			}
			return
		}
		if err != nil {
			t.Fatalf("crash@%d: replay refused a pure torn tail: %v", cut, err)
		}
		requireStateEqual(t, cut, st, mirror)
	})
}

// TestCheckpointRecoverSurvivesReCrash re-runs the tail of the script
// on a journal that already crashed once and was recovered — the
// second crash must still recover to the combined ACKed set (recovery
// compacts, so the WAL tail from life one is folded into life two's
// snapshot).
func TestCheckpointRecoverSurvivesReCrash(t *testing.T) {
	script := sweepScript()
	s := NewStore(1)
	j := s.Shard(0)
	mirror := newShardState(0)
	if !j.seed() {
		t.Fatal("seed failed")
	}
	// Life one: first half, then crash mid-word of the next admission.
	for _, a := range script[:6] {
		if !j.appendAdmission(a.node, a.seq, a.val, 0) {
			t.Fatal("unexpected power loss")
		}
		mirror.admit(a.node, a.seq, a.val, 0)
	}
	s.FailAfterWrites(5)
	j.appendAdmission(script[6].node, script[6].seq, script[6].val, 0)

	// Recovery boundary: replay, then compact (what Recover does).
	s.Revive()
	st, err := j.replay()
	if err != nil {
		t.Fatal(err)
	}
	requireStateEqual(t, -1, st, mirror)
	if !j.compact(st.nodes, st.stores) {
		t.Fatal("recovery compaction failed with live power")
	}

	// Life two: the rest of the script, then a second crash and replay.
	for _, a := range script[6:] {
		if !j.appendAdmission(a.node, a.seq, a.val, 0) {
			t.Fatal("unexpected power loss")
		}
		mirror.admit(a.node, a.seq, a.val, 0)
	}
	s.FailAfterWrites(0)
	j.appendAdmission(99, 0, 1, 0)
	s.Revive()
	st2, err := j.replay()
	if err != nil {
		t.Fatal(err)
	}
	requireStateEqual(t, -2, st2, mirror)
	if st2.stores[99] != nil {
		t.Fatal("torn admission from life two resurrected")
	}
}

// TestCheckpointMidLogCorruptionRefused flips bits in the interior of
// a journal that has ACKed admissions and asserts replay fails closed
// with errCorruptCheckpoint — a silently shortened log would re-admit
// reports the collector already ACKed.
func TestCheckpointMidLogCorruptionRefused(t *testing.T) {
	// A journal with the empty seed snapshot followed by a 12-admission
	// WAL tail (no compaction): corruption semantics differ between the
	// snapshot region and the tail, and this layout exposes both.
	build := func(t *testing.T) *Journal {
		t.Helper()
		s := NewStore(1)
		j := s.Shard(0)
		if !j.seed() {
			t.Fatal("seed failed")
		}
		for _, a := range sweepScript() {
			if !j.appendAdmission(a.node, a.seq, a.val, 0) {
				t.Fatal("unexpected power loss")
			}
		}
		return j
	}

	t.Run("payload flip mid-log", func(t *testing.T) {
		j := build(t)
		bank := j.r.Words(j.bk.Live())
		bank[len(bank)/2] ^= 0x0040
		if _, err := j.replay(); !errors.Is(err, errCorruptCheckpoint) {
			t.Fatalf("mid-log flip: err = %v, want errCorruptCheckpoint", err)
		}
	})

	t.Run("invalid tag mid-log", func(t *testing.T) {
		j := build(t)
		// The live bank opens with the seed snapshot's snapBegin
		// header; stamp an unassigned tag on it.
		bank := j.r.Words(j.bk.Live())
		bank[0] = 0xF<<12 | bank[0]&0x0FFF
		if _, err := j.replay(); !errors.Is(err, errCorruptCheckpoint) {
			t.Fatalf("invalid tag: err = %v, want errCorruptCheckpoint", err)
		}
	})

	t.Run("flip in final record reads as torn", func(t *testing.T) {
		// The bank's final record is the last admission's commit; a
		// flip there is indistinguishable from a torn write, and the
		// admission was never ACKed on (commit durability gates the
		// ACK), so replay accepts the log minus that admission.
		j := build(t)
		bank := j.r.Words(j.bk.Live())
		bank[len(bank)-1] ^= 1
		st, err := j.replay()
		if err != nil {
			t.Fatalf("final-record flip refused: %v", err)
		}
		last := sweepScript()[len(sweepScript())-1]
		if st.stores[last.node] != nil && st.stores[last.node].has(last.seq) {
			t.Fatal("admission with a damaged commit was resurrected")
		}
	})

	t.Run("truncated tail reads as torn", func(t *testing.T) {
		j := build(t)
		for cut := 1; cut <= 30; cut++ {
			j.truncateBank(j.bk.Live(), j.liveLen()-1)
			if _, err := j.replay(); err != nil {
				t.Fatalf("cut %d words: %v", cut, err)
			}
		}
	})

	t.Run("snapshot never completed refused", func(t *testing.T) {
		// Truncating into the snapshot itself leaves a bank that never
		// proves it holds the full dedup state; a shard recovered from
		// it could re-admit ACKed reports, so replay refuses.
		j := build(t)
		j.truncateBank(j.bk.Live(), 8)
		if _, err := j.replay(); !errors.Is(err, errCorruptCheckpoint) {
			t.Fatalf("half snapshot: err = %v, want errCorruptCheckpoint", err)
		}
	})

	t.Run("emptied journal refused", func(t *testing.T) {
		// Both banks erased: that is never a fresh boot (seed writes a
		// gen-1 snapshot), so recovery must refuse rather than serve an
		// empty dedup state that would re-admit everything.
		j := build(t)
		j.r.Erase(0)
		j.r.Erase(1)
		if _, err := j.replay(); !errors.Is(err, errCorruptCheckpoint) {
			t.Fatalf("empty journal: err = %v, want errCorruptCheckpoint", err)
		}
	})
}

// TestCompactionCrashKeepsOldBank arms a power failure for every word
// of a compaction's snapshot rewrite in turn and asserts the old bank
// recovers the full pre-compaction state each time.
func TestCompactionCrashKeepsOldBank(t *testing.T) {
	// Baseline: how many words one compaction of this state costs.
	base := NewStore(1)
	bj := base.Shard(0)
	if !bj.seed() {
		t.Fatal("seed failed")
	}
	mirror := newShardState(0)
	for _, a := range sweepScript() {
		if !bj.appendAdmission(a.node, a.seq, a.val, 0) {
			t.Fatal("unexpected power loss")
		}
		mirror.admit(a.node, a.seq, a.val, 0)
	}
	preCompact := int(base.Writes())
	if !bj.compact(mirror.nodes, mirror.stores) {
		t.Fatal("baseline compaction failed")
	}
	snapWords := int(base.Writes()) - preCompact

	for w := 0; w < snapWords; w++ {
		s := NewStore(1)
		j := s.Shard(0)
		if !j.seed() {
			t.Fatal("seed failed")
		}
		for _, a := range sweepScript() {
			if !j.appendAdmission(a.node, a.seq, a.val, 0) {
				t.Fatal("unexpected power loss")
			}
		}
		s.FailAfterWrites(w)
		if j.compact(mirror.nodes, mirror.stores) {
			t.Fatalf("crash@%d: compaction claimed success under dying power", w)
		}
		s.Revive()
		st, err := j.replay()
		if err != nil {
			t.Fatalf("crash@%d: old bank unrecoverable: %v", w, err)
		}
		requireStateEqual(t, w, st, mirror)
	}
}

// TestBankElectionPrefersHigherGeneration covers the crash window
// after a compaction's snapEnd lands but before the old bank is
// erased: both banks hold complete snapshots and recovery must elect
// the newer generation.
func TestBankElectionPrefersHigherGeneration(t *testing.T) {
	s := NewStore(1)
	j := s.Shard(0)
	if !j.seed() {
		t.Fatal("seed failed")
	}
	old := newShardState(0)
	for _, a := range sweepScript()[:4] {
		if !j.appendAdmission(a.node, a.seq, a.val, 0) {
			t.Fatal("unexpected power loss")
		}
		old.admit(a.node, a.seq, a.val, 0)
	}
	// Hand-write generation 2's snapshot into the idle bank with one
	// extra admission, simulating a crash between snapEnd and the old
	// bank's erase.
	next := newShardState(0)
	for _, a := range sweepScript()[:5] {
		next.admit(a.node, a.seq, a.val, 0)
	}
	if !j.writeSnapshot(j.bk.Idle(), j.bk.Gen()+1, next.nodes, next.stores) {
		t.Fatal("snapshot write failed")
	}
	st, err := j.replay()
	if err != nil {
		t.Fatal(err)
	}
	if st.gen != 2 {
		t.Fatalf("elected generation %d, want 2", st.gen)
	}
	requireStateEqual(t, -1, st, next)
	// The losing bank is erased on election.
	if got := j.r.Len(j.bk.Idle()); got != 0 {
		t.Fatalf("losing bank still holds %d words", got)
	}
}
