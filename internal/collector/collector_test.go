package collector

import (
	"context"
	"sync"
	"testing"
	"time"

	"ulpdp/internal/dpbox"
	"ulpdp/internal/node"
	"ulpdp/internal/transport"
	"ulpdp/internal/urng"
)

// newFleetBox builds a journaled DP-Box for one simulated node.
func newFleetBox(t *testing.T, seed uint64, budget float64) *dpbox.DPBox {
	t.Helper()
	box, err := dpbox.New(dpbox.Config{
		Bu: 12, By: 10, Mult: 2,
		Multipliers: []float64{1.25, 1.5},
		Source:      urng.NewTaus88(seed),
		Journal:     dpbox.NewJournal(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := box.Initialize(budget, 0); err != nil {
		t.Fatal(err)
	}
	if err := box.Configure(1, 0, 16); err != nil {
		t.Fatal(err)
	}
	return box
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestConcurrentFleetIngest is the ISSUE's concurrency gate: 64 nodes
// reporting concurrently through real agents, under -race, with
// exactly-once accounting at the end.
func TestConcurrentFleetIngest(t *testing.T) {
	const (
		nodes   = 64
		reports = 5
	)
	col := New(Config{
		// The breaker is not under test here; a tight threshold plus
		// race-detector scheduling jitter would only add noise.
		BreakerThreshold: 1 << 20,
	})
	defer col.Close()

	boxes := make([]*dpbox.DPBox, nodes)
	links := make([]*transport.Link, nodes)
	for i := 0; i < nodes; i++ {
		boxes[i] = newFleetBox(t, uint64(i)+1, 1e6)
		links[i] = transport.NewLink(transport.LinkConfig{})
		if err := col.Attach(transport.NodeID(i), links[i].CollectorEnd()); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, nodes)
	for i := 0; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			agent := node.NewReportAgent(boxes[i], links[i].NodeEnd(), node.AgentConfig{
				ID: transport.NodeID(i), MaxAttempts: 64,
			})
			for r := 0; r < reports; r++ {
				if _, err := agent.Report(ctx, int64(r%16)); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	agg := col.Aggregate()
	if agg.Nodes != nodes || agg.Reports != nodes*reports {
		t.Fatalf("aggregate %+v, want %d nodes x %d reports", agg, nodes, reports)
	}
	// Exactly-once accounting: the collector's recorded values are
	// precisely each node's journaled releases.
	for i := 0; i < nodes; i++ {
		got := col.Values(transport.NodeID(i))
		want := boxes[i].Releases()
		if len(got) != len(want) {
			t.Fatalf("node %d: %d recorded vs %d journaled", i, len(got), len(want))
		}
		for seq, v := range got {
			if want[seq].Value != v {
				t.Fatalf("node %d seq %d: recorded %d, journal %d", i, seq, v, want[seq].Value)
			}
		}
	}
}

// TestDuplicateReorderScheduleProperty is the ISSUE's property test:
// any schedule of duplicated and reordered deliveries of the same
// (node, seq) reports changes neither the node's journal spend nor
// the collector aggregate.
func TestDuplicateReorderScheduleProperty(t *testing.T) {
	const nReports = 6
	box := newFleetBox(t, 11, 1e6)
	var pkts []transport.Packet
	for seq := uint64(0); seq < nReports; seq++ {
		res, err := box.NoiseValueSeq(seq, int64(seq%5))
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, transport.Packet{
			Kind: transport.KindReport, Node: 1, Seq: seq, Value: res.Value,
		})
	}
	spend := 1e6 - box.BudgetRemaining()

	run := func(schedule []int) Aggregate {
		col := New(Config{BreakerThreshold: 1 << 20})
		defer col.Close()
		link := transport.NewLink(transport.LinkConfig{})
		if err := col.Attach(1, link.CollectorEnd()); err != nil {
			t.Fatal(err)
		}
		end := link.NodeEnd()
		for _, i := range schedule {
			// Each redelivery is also a node-side retry: the box must
			// replay, not redraw.
			res, err := box.NoiseValueSeq(pkts[i].Seq, int64(pkts[i].Seq%5))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Replayed || res.Value != pkts[i].Value {
				t.Fatalf("retry of seq %d redrew: %+v", pkts[i].Seq, res)
			}
			end.Send(pkts[i])
		}
		waitFor(t, 5*time.Second, "all reports recorded", func() bool {
			return col.Aggregate().Reports == nReports
		})
		return col.Aggregate()
	}

	baseline := run([]int{0, 1, 2, 3, 4, 5})

	// Deterministic pseudo-random schedules: shuffles with 2-3x
	// duplication of every report.
	rng := uint64(0xDEC0DE)
	next := func() uint64 {
		rng ^= rng >> 12
		rng ^= rng << 25
		rng ^= rng >> 27
		return rng * 0x2545F4914F6CDD1D
	}
	for trial := 0; trial < 8; trial++ {
		var schedule []int
		for i := 0; i < nReports; i++ {
			for c := 2 + int(next()%2); c > 0; c-- {
				schedule = append(schedule, i)
			}
		}
		for i := len(schedule) - 1; i > 0; i-- {
			j := int(next() % uint64(i+1))
			schedule[i], schedule[j] = schedule[j], schedule[i]
		}
		agg := run(schedule)
		if agg != baseline {
			t.Fatalf("trial %d: aggregate %+v != baseline %+v (schedule %v)", trial, agg, baseline, schedule)
		}
	}
	if nowSpend := 1e6 - box.BudgetRemaining(); nowSpend != spend {
		t.Fatalf("redelivery schedules changed journal spend: %g -> %g nats", spend, nowSpend)
	}
}

func TestBreakerTripsHalfOpensRecovers(t *testing.T) {
	col := New(Config{PollTimeout: time.Millisecond, BreakerThreshold: 3, OpenTicks: 2})
	defer col.Close()
	link := transport.NewLink(transport.LinkConfig{})
	end := link.NodeEnd()

	// Queue a healthy report BEFORE attaching: the first poll returns
	// it immediately, so no timeout can race ahead of it.
	end.Send(transport.Packet{Kind: transport.KindReport, Node: 5, Seq: 0, Value: 40})
	if err := col.Attach(5, link.CollectorEnd()); err != nil {
		t.Fatal(err)
	}

	state := func() NodeView {
		v, ok := col.Node(5)
		if !ok {
			t.Fatal("node 5 not attached")
		}
		return v
	}
	waitFor(t, 5*time.Second, "first report", func() bool { return state().Have })
	if v := state(); v.Degraded || v.Value != 40 {
		t.Fatalf("healthy view %+v", v)
	}

	// Sustained silence trips the breaker (consecutive receive
	// timeouts), after which queries serve the last-ACKed cache,
	// marked degraded.
	waitFor(t, 5*time.Second, "breaker open", func() bool { return state().Breaker == BreakerOpen })
	v := state()
	if !v.Degraded || v.Value != 40 || v.Seq != 0 || v.Reports != 1 {
		t.Fatalf("open view should serve cached seq 0 value 40: %+v", v)
	}

	// More silence half-opens it; an unhealthy probe slams it shut
	// again without being recorded.
	waitFor(t, 5*time.Second, "half-open", func() bool { return state().Breaker == BreakerHalfOpen })
	end.Send(transport.Packet{
		Kind: transport.KindReport, Node: 5, Seq: 1, Value: 41,
		Flags: transport.FlagUnhealthy,
	})
	waitFor(t, 5*time.Second, "re-open after bad probe", func() bool { return state().Breaker == BreakerOpen })
	if v := state(); v.Reports != 1 {
		t.Fatalf("failed probe was recorded: %+v", v)
	}

	// Half-open again; a healthy probe closes the breaker and is
	// recorded normally.
	waitFor(t, 5*time.Second, "half-open again", func() bool { return state().Breaker == BreakerHalfOpen })
	end.Send(transport.Packet{Kind: transport.KindReport, Node: 5, Seq: 1, Value: 50})
	waitFor(t, 5*time.Second, "closed after probe", func() bool { return state().Breaker == BreakerClosed })
	v = state()
	if v.Degraded || v.Value != 50 || v.Reports != 2 {
		t.Fatalf("recovered view %+v", v)
	}
}

func TestBackpressureShedsAndRetriesRecover(t *testing.T) {
	const (
		nodes   = 4
		reports = 8
	)
	col := New(Config{
		QueueCap:         1,
		BreakerThreshold: 1 << 20,
		procDelay:        time.Millisecond,
	})
	defer col.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, nodes)
	for i := 0; i < nodes; i++ {
		box := newFleetBox(t, uint64(100+i), 1e6)
		link := transport.NewLink(transport.LinkConfig{})
		if err := col.Attach(transport.NodeID(i), link.CollectorEnd()); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, box *dpbox.DPBox, link *transport.Link) {
			defer wg.Done()
			agent := node.NewReportAgent(box, link.NodeEnd(), node.AgentConfig{
				ID: transport.NodeID(i), MaxAttempts: 256,
			})
			for r := 0; r < reports; r++ {
				if _, err := agent.Report(ctx, int64(r)); err != nil {
					errs <- err
					return
				}
			}
		}(i, box, link)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	agg := col.Aggregate()
	if agg.Reports != nodes*reports {
		t.Fatalf("lost reports to backpressure: %+v", agg)
	}
	if st := col.Stats(); st.Backpressure == 0 {
		t.Logf("note: queue never overflowed (stats %+v) — timing-dependent, not a failure", st)
	}
}

func TestExhaustedBudgetServedFromCache(t *testing.T) {
	col := New(Config{BreakerThreshold: 1 << 20})
	defer col.Close()
	link := transport.NewLink(transport.LinkConfig{})
	if err := col.Attach(2, link.CollectorEnd()); err != nil {
		t.Fatal(err)
	}
	end := link.NodeEnd()

	end.Send(transport.Packet{Kind: transport.KindReport, Node: 2, Seq: 0, Value: 7})
	waitFor(t, 5*time.Second, "fresh report", func() bool {
		v, _ := col.Node(2)
		return v.Have
	})
	if v, _ := col.Node(2); v.Degraded {
		t.Fatalf("fresh report marked degraded: %+v", v)
	}

	// The node announces budget exhaustion: its values now replay the
	// DP-Box cache, and the collector marks the feed degraded while
	// continuing to serve the last-ACKed value.
	end.Send(transport.Packet{
		Kind: transport.KindReport, Node: 2, Seq: 1, Value: 7,
		Flags: transport.FlagFromCache,
	})
	waitFor(t, 5*time.Second, "exhausted report", func() bool {
		v, _ := col.Node(2)
		return v.Seq == 1
	})
	v, _ := col.Node(2)
	if !v.Degraded || v.Value != 7 {
		t.Fatalf("exhausted view %+v", v)
	}
	if agg := col.Aggregate(); agg.Degraded != 1 {
		t.Fatalf("aggregate degraded count: %+v", agg)
	}
}
