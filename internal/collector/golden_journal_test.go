package collector

import (
	"math/rand"
	"testing"
)

// This file pins the checkpoint store's on-media word format across
// the internal/nvm refactor: legacyCkJournal is a frozen, verbatim
// copy of the pre-refactor write path (put/appendRecord/
// appendAdmission/writeSnapshot/compact/seed as they stood when the
// format was introduced), and the differential tests drive it in
// lockstep with the real Journal over seeded admission sequences,
// asserting bit-identical bank contents. Snapshot-bearing scripts use
// a single node: writeSnapshot iterates Go maps, whose order is
// deterministic only with one entry, and the format pin must not
// depend on map iteration order.

type legacyCkJournal struct {
	banks [2][]uint16
	live  int
	gen   int64
	seq   uint16
}

func legacyCkChecksum(hdr uint16, payload []uint16) uint16 {
	c := hdr ^ uint16(0xC011)
	for _, w := range payload {
		c ^= w
	}
	return c
}

func legacyCkEnc64(v int64) [4]uint16 {
	u := uint64(v)
	return [4]uint16{uint16(u), uint16(u >> 16), uint16(u >> 32), uint16(u >> 48)}
}

func (j *legacyCkJournal) put(b int, w uint16) { j.banks[b] = append(j.banks[b], w) }

func (j *legacyCkJournal) appendRecord(b int, tag uint16, payload []uint16) {
	hdr := tag<<12 | (j.seq & 0x0FFF)
	j.seq++
	j.put(b, hdr)
	for _, w := range payload {
		j.put(b, w)
	}
	j.put(b, legacyCkChecksum(hdr, payload))
}

func (j *legacyCkJournal) appendAdmission(node uint16, seq uint64, value int64, flags uint16) {
	s := legacyCkEnc64(int64(seq))
	pair := j.seq
	j.appendRecord(j.live, ckTagIntent, []uint16{node, s[0], s[1], s[2], s[3]})
	v := legacyCkEnc64(value)
	j.appendRecord(j.live, ckTagRecord, []uint16{v[0], v[1], v[2], v[3], flags})
	j.seq = pair
	j.appendRecord(j.live, ckTagCommit, nil)
}

func (j *legacyCkJournal) writeSnapshot(b int, gen int64, nodes map[uint16]*snapNode, stores map[uint16]*valueStore) {
	g := legacyCkEnc64(gen)
	j.appendRecord(b, ckTagSnapBegin, []uint16{g[0], g[1], g[2], g[3]})
	for id, sn := range nodes {
		var flags uint16
		if sn.haveAck {
			flags |= snapFlagHaveAck
		}
		if sn.exhausted {
			flags |= snapFlagExhausted
		}
		ls, lv := legacyCkEnc64(int64(sn.lastSeq)), legacyCkEnc64(sn.lastValue)
		j.appendRecord(b, ckTagSnapNode, []uint16{
			id, uint16(sn.breaker), flags, uint16(sn.consecFail), uint16(sn.openLeft),
			ls[0], ls[1], ls[2], ls[3], lv[0], lv[1], lv[2], lv[3],
		})
	}
	for id, vs := range stores {
		vs.forEach(func(seq uint64, v int64) {
			s, val := legacyCkEnc64(int64(seq)), legacyCkEnc64(v)
			j.appendRecord(b, ckTagSnapVal, []uint16{id, s[0], s[1], s[2], s[3], val[0], val[1], val[2], val[3]})
		})
	}
	j.appendRecord(b, ckTagSnapEnd, []uint16{g[0], g[1], g[2], g[3]})
}

func (j *legacyCkJournal) compact(nodes map[uint16]*snapNode, stores map[uint16]*valueStore) {
	idle := 1 - j.live
	j.banks[idle] = j.banks[idle][:0]
	j.writeSnapshot(idle, j.gen+1, nodes, stores)
	j.gen++
	j.live = idle
	j.banks[1-idle] = j.banks[1-idle][:0]
}

func (j *legacyCkJournal) seed() {
	j.gen = 1
	j.live = 0
	j.writeSnapshot(0, 1, nil, nil)
}

func requireBanksEqual(t *testing.T, step string, j *Journal, ref *legacyCkJournal) {
	t.Helper()
	if j.bk.Live() != ref.live {
		t.Fatalf("%s: live bank %d, legacy %d", step, j.bk.Live(), ref.live)
	}
	for b := 0; b < 2; b++ {
		got, want := j.r.Words(b), ref.banks[b]
		if len(got) != len(want) {
			t.Fatalf("%s: bank %d length %d, legacy %d", step, b, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: bank %d word %d = %#04x, legacy %#04x", step, b, i, got[i], want[i])
			}
		}
	}
}

// TestCheckpointGoldenWordStream drives the refactored journal and
// the frozen legacy encoder through seeded multi-node admission
// streams (no snapshots: admissions are the hot path and fully
// order-deterministic) and requires bit-identical banks after every
// admission.
func TestCheckpointGoldenWordStream(t *testing.T) {
	for _, seed := range []int64{2, 11, 20260807} {
		rng := rand.New(rand.NewSource(seed))
		j := NewStore(1).Shard(0)
		ref := &legacyCkJournal{}
		if !j.seed() {
			t.Fatal("seed failed")
		}
		ref.seed()
		requireBanksEqual(t, "seed", j, ref)
		next := map[uint16]uint64{}
		for op := 0; op < 300; op++ {
			node := uint16(1 + rng.Intn(4))
			seq := next[node]
			if rng.Intn(4) != 0 {
				next[node]++
			}
			v := rng.Int63() - rng.Int63()
			flags := uint16(rng.Intn(2))
			if !j.appendAdmission(node, seq, v, flags) {
				t.Fatal("unexpected power loss")
			}
			ref.appendAdmission(node, seq, v, flags)
			requireBanksEqual(t, "admission", j, ref)
		}
	}
}

// TestCheckpointGoldenCompaction pins the snapshot/compaction word
// stream with a single-node state (map iteration order cannot vary
// with one entry), including the double-bank flip and the generation
// tags.
func TestCheckpointGoldenCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	j := NewStore(1).Shard(0)
	ref := &legacyCkJournal{}
	if !j.seed() {
		t.Fatal("seed failed")
	}
	ref.seed()
	st := newShardState(0)
	for seq := uint64(0); seq < 40; seq++ {
		v := rng.Int63n(1 << 32)
		if !j.appendAdmission(9, seq, v, 0) {
			t.Fatal("unexpected power loss")
		}
		ref.appendAdmission(9, seq, v, 0)
		st.admit(9, seq, v, 0)
		if seq%8 == 7 {
			if !j.compact(st.nodes, st.stores) {
				t.Fatal("compaction failed")
			}
			ref.compact(st.nodes, st.stores)
		}
		requireBanksEqual(t, "compaction", j, ref)
	}
}
