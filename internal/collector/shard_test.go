package collector

import (
	"fmt"
	"testing"
	"time"

	"ulpdp/internal/obs"
	"ulpdp/internal/transport"
)

// tickAll drives one deterministic idle tick on every shard. Tests
// use it (with PollTimeout set far beyond the test's lifetime) to
// exercise the silence-driven breaker arcs without wall-clock timing.
func (c *Collector) tickAll() {
	for _, sh := range c.shards {
		sh.idleTick()
	}
}

// quiesce waits until every sent report has been handled: each report
// lands in exactly one of Accepted, Duplicates, or BreakerDrops.
func quiesce(t *testing.T, col *Collector, handled uint64) {
	t.Helper()
	waitFor(t, 10*time.Second, fmt.Sprintf("%d reports handled", handled), func() bool {
		s := col.Stats()
		return s.Accepted+s.Duplicates+s.BreakerDrops >= handled
	})
}

// shardRunResult is everything a scripted run exposes that must be
// bit-identical across shard counts.
type shardRunResult struct {
	values      []map[uint64]int64
	views       []NodeView
	stats       Stats
	transitions [4]uint64            // opened, half-opened, closed, reopened
	perNodeArcs map[int64][][2]int64 // node -> ordered (from, to) breaker arcs
}

// runScripted drives the same deterministic per-node report script
// through a collector with the given shard count and snapshots every
// observable per-node output. Breaker silence is advanced with
// tickAll, never the wall clock, so the run is schedule-independent.
func runScripted(t *testing.T, shards, nodes int) shardRunResult {
	t.Helper()
	const (
		threshold = 3
		openTicks = 2
	)
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	col := New(Config{
		Shards:           shards,
		PollTimeout:      time.Hour, // idle ticks only via tickAll
		BreakerThreshold: threshold,
		OpenTicks:        openTicks,
		Obs:              m,
	})
	defer col.Close()

	ends := make([]*transport.Endpoint, nodes)
	for i := 0; i < nodes; i++ {
		link := transport.NewLink(transport.LinkConfig{QueueCap: 256})
		if err := col.Attach(transport.NodeID(i), link.CollectorEnd()); err != nil {
			t.Fatal(err)
		}
		ends[i] = link.NodeEnd()
	}

	handled := uint64(0)
	send := func(i int, seq uint64, value int64, flags uint8) {
		ends[i].Send(transport.Packet{
			Kind: transport.KindReport, Node: transport.NodeID(i),
			Seq: seq, Value: value, Flags: flags,
		})
		handled++
	}

	// Phase 1: five healthy reports per node, plus re-deliveries of
	// seqs 1..3 (the at-least-once duplicates the dedup must absorb).
	for i := 0; i < nodes; i++ {
		for seq := uint64(0); seq < 5; seq++ {
			send(i, seq, int64(i*100)+int64(seq*7), 0)
		}
		for seq := uint64(1); seq < 4; seq++ {
			send(i, seq, int64(i*100)+int64(seq*7), 0)
		}
	}
	quiesce(t, col, handled)

	// Phase 2: even nodes stream unhealthy reports until the breaker
	// trips (the threshold-th is dropped), then two more into the
	// open breaker.
	for i := 0; i < nodes; i += 2 {
		for k := 0; k < threshold+2; k++ {
			send(i, uint64(5+k), int64(900+k), transport.FlagUnhealthy)
		}
	}
	quiesce(t, col, handled)

	// Phase 3: deterministic silence half-opens the tripped breakers;
	// an unhealthy probe re-opens, more silence half-opens again, and
	// a healthy probe closes. The first tick after traffic only clears
	// the per-node saw-report flag, so openTicks+1 ticks decrement the
	// cooldown openTicks times. Odd nodes get a healthy keepalive
	// after each silence window so their own breakers never trip.
	cooldown := func(keepaliveSeq uint64) {
		for k := 0; k < openTicks+1; k++ {
			col.tickAll()
		}
		for i := 1; i < nodes; i += 2 {
			send(i, keepaliveSeq, int64(i*100), 0)
		}
		quiesce(t, col, handled)
	}
	cooldown(5)
	for i := 0; i < nodes; i += 2 {
		send(i, 20, 1000, transport.FlagUnhealthy) // failed probe
	}
	quiesce(t, col, handled)
	cooldown(6)
	for i := 0; i < nodes; i += 2 {
		send(i, 21, int64(2000+i), 0) // healthy probe, recorded
	}
	quiesce(t, col, handled)

	// Phase 4: one budget-exhausted report per odd node (degraded
	// view without touching the breaker).
	for i := 1; i < nodes; i += 2 {
		send(i, 7, int64(i*100)+3, transport.FlagFromCache)
	}
	quiesce(t, col, handled)

	res := shardRunResult{
		values:      make([]map[uint64]int64, nodes),
		views:       make([]NodeView, nodes),
		stats:       col.Stats(),
		perNodeArcs: make(map[int64][][2]int64),
	}
	for i := 0; i < nodes; i++ {
		res.values[i] = col.Values(transport.NodeID(i))
		v, ok := col.Node(transport.NodeID(i))
		if !ok {
			t.Fatalf("node %d not attached", i)
		}
		res.views[i] = v
	}
	res.transitions = [4]uint64{
		m.Opened.Value(), m.HalfOpened.Value(), m.Closed.Value(), m.Reopened.Value(),
	}
	for _, ev := range m.Trace.Events() {
		if ev.Kind == EvBreaker {
			res.perNodeArcs[ev.Node] = append(res.perNodeArcs[ev.Node], [2]int64{ev.A, ev.B})
		}
	}
	return res
}

// TestShardEquivalenceProperty is the shard-boundary correctness
// property: the same deterministic report script through P shards
// must produce bit-identical per-node values, query views, stats, and
// breaker transition sequences as the P=1 run. Node state is confined
// to its owning shard and every decision depends only on that node's
// own stream, so sharding must be invisible.
func TestShardEquivalenceProperty(t *testing.T) {
	const nodes = 24
	baseline := runScripted(t, 1, nodes)

	// Sanity on the baseline itself: the script really exercised the
	// dedup and the full breaker lifecycle.
	if baseline.stats.Duplicates == 0 || baseline.stats.BreakerDrops == 0 {
		t.Fatalf("script exercised nothing: %+v", baseline.stats)
	}
	wantEven := [][2]int64{
		{int64(BreakerClosed), int64(BreakerOpen)},
		{int64(BreakerOpen), int64(BreakerHalfOpen)},
		{int64(BreakerHalfOpen), int64(BreakerOpen)},
		{int64(BreakerOpen), int64(BreakerHalfOpen)},
		{int64(BreakerHalfOpen), int64(BreakerClosed)},
	}
	for i := 0; i < nodes; i += 2 {
		arcs := baseline.perNodeArcs[int64(i)]
		if len(arcs) != len(wantEven) {
			t.Fatalf("node %d: breaker arcs %v, want %v", i, arcs, wantEven)
		}
		for k := range wantEven {
			if arcs[k] != wantEven[k] {
				t.Fatalf("node %d arc %d: %v, want %v", i, k, arcs[k], wantEven[k])
			}
		}
	}

	for _, p := range []int{2, 4, 32} {
		p := p
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			got := runScripted(t, p, nodes)
			if got.stats != baseline.stats {
				t.Errorf("stats diverged: P=%d %+v vs P=1 %+v", p, got.stats, baseline.stats)
			}
			if got.transitions != baseline.transitions {
				t.Errorf("transition counters diverged: %v vs %v", got.transitions, baseline.transitions)
			}
			for i := 0; i < nodes; i++ {
				if gv, bv := got.views[i], baseline.views[i]; gv != bv {
					t.Errorf("node %d view diverged: %+v vs %+v", i, gv, bv)
				}
				if len(got.values[i]) != len(baseline.values[i]) {
					t.Errorf("node %d: %d values vs %d", i, len(got.values[i]), len(baseline.values[i]))
					continue
				}
				for seq, v := range baseline.values[i] {
					if gv, ok := got.values[i][seq]; !ok || gv != v {
						t.Errorf("node %d seq %d: %d (ok=%v) vs %d", i, seq, gv, ok, v)
					}
				}
			}
			for node, arcs := range baseline.perNodeArcs {
				gotArcs := got.perNodeArcs[node]
				if len(gotArcs) != len(arcs) {
					t.Fatalf("node %d: %d breaker arcs vs %d", node, len(gotArcs), len(arcs))
				}
				for k := range arcs {
					if gotArcs[k] != arcs[k] {
						t.Fatalf("node %d arc %d: %v vs %v", node, k, gotArcs[k], arcs[k])
					}
				}
			}
		})
	}
}

// TestShardSpread pins the shard hash: a dense block of node IDs must
// not all land on one shard (the whole point of hashing is that
// real-world sequential IDs spread).
func TestShardSpread(t *testing.T) {
	c := New(Config{Shards: 8, PollTimeout: time.Hour})
	defer c.Close()
	seen := make(map[*shard]int)
	for id := 0; id < 256; id++ {
		seen[c.shardFor(transport.NodeID(id))]++
	}
	if len(seen) != 8 {
		t.Fatalf("256 dense IDs hit only %d of 8 shards", len(seen))
	}
	for sh, n := range seen {
		if n > 96 {
			t.Fatalf("shard %p got %d of 256 IDs — hash is clumping", sh, n)
		}
	}
}
