package collector

import "testing"

// TestValueStoreWordBoundary pins the seen-bitmap edge: sequence
// numbers 63, 64, 65 straddle a 64-bit bitmap word, and arriving
// high-before-low must grow vals/seen consistently without phantom
// bits for the skipped seqs.
func TestValueStoreWordBoundary(t *testing.T) {
	var vs valueStore
	for _, seq := range []uint64{65, 63, 64} {
		if vs.has(seq) {
			t.Fatalf("seq %d present before put", seq)
		}
		vs.put(seq, int64(1000+seq))
	}
	for _, seq := range []uint64{63, 64, 65} {
		if !vs.has(seq) || vs.get(seq) != int64(1000+seq) {
			t.Fatalf("seq %d: has=%v get=%d", seq, vs.has(seq), vs.get(seq))
		}
	}
	for seq := uint64(0); seq < 63; seq++ {
		if vs.has(seq) {
			t.Fatalf("phantom seq %d from high-before-low growth", seq)
		}
	}
	if vs.n != 3 {
		t.Fatalf("n = %d, want 3", vs.n)
	}
}

// TestValueStoreOutOfOrderProperty drives a valueStore with shuffled
// arrival orders — including far-spill seqs past denseLimit and
// duplicate deliveries guarded by has, exactly as handleLocked guards
// them — and checks it against a reference map: same membership, same
// values, forEach visits each recorded seq exactly once, n matches.
func TestValueStoreOutOfOrderProperty(t *testing.T) {
	for trial := uint64(1); trial <= 20; trial++ {
		rng := trial * 0x9E3779B97F4A7C15
		next := func() uint64 {
			rng ^= rng >> 12
			rng ^= rng << 25
			rng ^= rng >> 27
			return rng * 0x2545F4914F6CDD1D
		}

		// Seq universe: a dense run over two bitmap words plus a few
		// far-spill outliers.
		seqs := make([]uint64, 0, 80)
		for s := uint64(0); s < 72; s++ {
			seqs = append(seqs, s)
		}
		seqs = append(seqs, denseLimit, denseLimit+1, denseLimit+977)
		for i := len(seqs) - 1; i > 0; i-- {
			k := next() % uint64(i+1)
			seqs[i], seqs[k] = seqs[k], seqs[i]
		}

		var vs valueStore
		ref := make(map[uint64]int64, len(seqs))
		for _, seq := range seqs {
			v := int64(next() % 1e6)
			if !vs.has(seq) {
				vs.put(seq, v)
				ref[seq] = v
			}
			// A duplicate delivery with a different payload must be
			// absorbed by the has guard, as in handleLocked.
			if dup := next()%3 == 0; dup {
				if !vs.has(seq) {
					t.Fatalf("trial %d: seq %d vanished", trial, seq)
				}
			}
		}

		if vs.n != len(ref) {
			t.Fatalf("trial %d: n = %d, want %d", trial, vs.n, len(ref))
		}
		visited := make(map[uint64]int, len(ref))
		vs.forEach(func(seq uint64, v int64) {
			visited[seq]++
			if want, ok := ref[seq]; !ok || v != want {
				t.Fatalf("trial %d: forEach(%d) = %d, ref %d (ok=%v)", trial, seq, v, want, ok)
			}
		})
		for seq, times := range visited {
			if times != 1 {
				t.Fatalf("trial %d: seq %d visited %d times", trial, seq, times)
			}
		}
		if len(visited) != len(ref) {
			t.Fatalf("trial %d: forEach visited %d of %d seqs", trial, len(visited), len(ref))
		}
		for seq, want := range ref {
			if !vs.has(seq) || vs.get(seq) != want {
				t.Fatalf("trial %d: seq %d has=%v get=%d want=%d", trial, seq, vs.has(seq), vs.get(seq), want)
			}
		}
		// Never-recorded seqs inside the grown dense region stay absent.
		if vs.has(72) || vs.has(denseLimit+2) {
			t.Fatalf("trial %d: phantom membership", trial)
		}
	}
}
