package collector

import (
	"errors"
	"fmt"

	"ulpdp/internal/nvm"
)

// This file is the collector's crash-consistency plane: a per-shard
// durable checkpoint/WAL built on the shared internal/nvm engine (the
// same 16-bit-word media model as the DP-Box budget journal), plus
// the replay and compaction machinery Collector.Recover builds on.
//
// Each shard owns one Journal. An admission — the first time a shard
// records a (node, seq, value) — is journaled with the two-phase
// protocol before the report is applied to memory or ACKed:
//
//	intent   node + report seq     "I am about to admit (node, seq)"
//	record   value + flags         the value being bound to it
//	commit   no payload            seals the admission
//
// The three records share a 12-bit pairing sequence number; replay
// applies an admission only when all three are durable in order. The
// ACK is sent only after the commit word lands, so "the agent saw an
// ACK" implies "the admission survives any collector crash" — the
// exactly-once contract now holds across collector restarts, not just
// node crashes and lossy links.
//
// Compaction is double-banked like real flash (nvm.Banked). A Journal
// holds two banks; the live bank starts with a generation-tagged
// snapshot (snapBegin gen … snapEnd gen) of every node's valueStore
// bitmap + values + breaker state, followed by the admissions since.
// Compaction writes gen+1's snapshot into the idle bank and only a
// durable snapEnd makes it the live bank — a crash mid-compaction
// leaves the old bank complete and loses nothing. Recovery picks the
// bank with the highest complete snapshot, replays it plus its
// admission tail (a torn tail record is indistinguishable from "never
// written" and is dropped — it was never ACKed), and refuses the
// shard outright on mid-log corruption, an invalid tag, or a bank
// with no complete snapshot: fail closed, like budget.Bank on a dead
// journal, because a silently shortened log would re-admit
// (double-count) replays of reports it had already ACKed.

// journal record tags (the collector's own tag space; the format
// mirrors dpbox: hdr = tag<<12 | seq, payload words, xor checksum
// salted nvm.SaltCheckpoint).
const (
	ckTagSnapBegin = 1 // payload gen(4)
	ckTagSnapNode  = 2 // payload node(1) breaker(1) stateFlags(1) consecFail(1) openLeft(1) lastSeq(4) lastValue(4)
	ckTagSnapVal   = 3 // payload node(1) seq(4) value(4)
	ckTagSnapEnd   = 4 // payload gen(4)
	ckTagIntent    = 5 // payload node(1) seq(4)
	ckTagRecord    = 6 // payload value(4) flags(1)
	ckTagCommit    = 7 // no payload
)

// snapshot stateFlags bits (ckTagSnapNode).
const (
	snapFlagHaveAck   = 1 << 0
	snapFlagExhausted = 1 << 1
)

// admission flags bits (ckTagRecord): the transport report flags the
// shard's last-ACK cache depends on.
const admFlagFromCache = 1 << 0

// ckPayloadLen returns the payload word count for a tag, or -1 for an
// unknown tag (which recovery treats as corruption, not truncation).
func ckPayloadLen(tag uint16) int {
	switch tag {
	case ckTagSnapBegin, ckTagSnapEnd:
		return 4
	case ckTagSnapNode:
		return 13
	case ckTagSnapVal:
		return 9
	case ckTagIntent:
		return 5
	case ckTagRecord:
		return 5
	case ckTagCommit:
		return 0
	}
	return -1
}

// ckLayout is the checkpoint store's record dialect over the shared
// engine.
func ckLayout() nvm.Layout {
	return nvm.Layout{Salt: nvm.SaltCheckpoint, PayloadLen: ckPayloadLen}
}

// admissionWords is the durable cost of one admission: intent
// (hdr+5+chk) + record (hdr+5+chk) + commit (hdr+chk).
const admissionWords = 7 + 7 + 2

// Journal is one shard's durable checkpoint region: a two-bank slice
// of the store's medium plus the double-banked generation state. All
// mutation happens under the owning shard's lock (or single-threaded
// recovery); only the power cell is shared.
type Journal struct {
	r  *nvm.Region
	bk *nvm.Banked
}

// newJournal carves shard i's two banks out of the store medium.
func newJournal(med nvm.Medium, pw *nvm.Power, i int) *Journal {
	r := nvm.NewRegionBanks(med, pw, ckLayout(), 2*i, 2)
	return &Journal{r: r, bk: nvm.NewBanked(r)}
}

// appendRecord writes one record into (region-relative) bank b. False
// means power failed partway: the tail is torn and the store dead.
func (j *Journal) appendRecord(b int, tag uint16, payload []uint16) bool {
	return j.r.Append(b, tag, payload)
}

// appendAdmission runs the two-phase admission protocol into the live
// bank: intent, record, commit, all sharing one pairing sequence.
// Only after it returns true may the shard apply the admission and
// queue the ACK.
func (j *Journal) appendAdmission(node uint16, seq uint64, value int64, flags uint16) bool {
	s := nvm.Enc64(int64(seq))
	live := j.bk.Live()
	pair, ok := j.r.TxnBegin(live, ckTagIntent, []uint16{node, s[0], s[1], s[2], s[3]})
	if !ok {
		return false
	}
	v := nvm.Enc64(value)
	if !j.r.Append(live, ckTagRecord, []uint16{v[0], v[1], v[2], v[3], flags}) {
		return false
	}
	return j.r.TxnCommit(live, ckTagCommit, pair)
}

// liveLen returns the live bank's durable word count (checkpoint-
// bytes accounting after a compaction).
func (j *Journal) liveLen() int { return j.r.Len(j.bk.Live()) }

// loadBanks installs raw bank contents (fuzz and corruption
// harnesses), bypassing the power cell.
func (j *Journal) loadBanks(a, b []uint16) {
	j.r.Erase(0)
	j.r.Erase(1)
	for _, w := range a {
		_ = j.r.Medium().Append(0, w)
	}
	for _, w := range b {
		_ = j.r.Medium().Append(1, w)
	}
}

// truncateBank chops (region-relative) bank b to n words — the test
// harness's torn-erase knife.
func (j *Journal) truncateBank(b, n int) {
	words := append([]uint16(nil), j.r.Words(b)[:n]...)
	j.r.Erase(b)
	for _, w := range words {
		_ = j.r.Medium().Append(b, w)
	}
}

// snapNode is one node's checkpointed metadata (everything a NodeView
// needs beyond the valueStore itself).
type snapNode struct {
	breaker    BreakerState
	consecFail int
	openLeft   int
	haveAck    bool
	exhausted  bool
	lastSeq    uint64
	lastValue  int64
}

// shardState is one shard's durable state as reconstructed by replay.
type shardState struct {
	gen    int64
	nodes  map[uint16]*snapNode
	stores map[uint16]*valueStore
	// replayed counts admissions applied from the WAL tail (after the
	// snapshot) — the "work redone" recovery metric.
	replayed int
}

func newShardState(gen int64) *shardState {
	return &shardState{
		gen:    gen,
		nodes:  make(map[uint16]*snapNode),
		stores: make(map[uint16]*valueStore),
	}
}

func (st *shardState) node(id uint16) *snapNode {
	n := st.nodes[id]
	if n == nil {
		n = &snapNode{}
		st.nodes[id] = n
	}
	return n
}

func (st *shardState) store(id uint16) *valueStore {
	vs := st.stores[id]
	if vs == nil {
		vs = &valueStore{}
		st.stores[id] = vs
	}
	return vs
}

// admit applies one committed (node, seq, value, flags) admission to
// the replayed state, using the same last-ACK rule as handleLocked so
// the recovered NodeView is bit-exact.
func (st *shardState) admit(nodeID uint16, seq uint64, value int64, flags uint16) {
	vs := st.store(nodeID)
	if !vs.has(seq) {
		vs.put(seq, value)
	}
	n := st.node(nodeID)
	if !n.haveAck || seq >= n.lastSeq {
		n.haveAck = true
		n.lastSeq = seq
		n.lastValue = vs.get(seq)
		n.exhausted = flags&admFlagFromCache != 0
	}
}

// errCorruptCheckpoint marks a shard journal recovery refused
// fail-closed: the log is damaged in a way a torn tail cannot
// explain, so replaying a prefix could silently re-open (node, seq)
// slots the collector already ACKed.
var errCorruptCheckpoint = errors.New("collector: corrupt shard checkpoint")

// replayBank parses one bank. A record truncated at the very end of
// the bank is a torn write and ends the scan (ok, torn=true); a
// checksum failure or invalid tag with the full record present — or
// any structurally impossible sequence — is corruption.
func (j *Journal) replayBank(b int) (st *shardState, complete bool, err error) {
	var pendNode uint16
	var pendSeq uint64
	var pendPair uint16
	var pendValue int64
	var pendFlags uint16
	pendStage := 0 // 0 idle, 1 intent seen, 2 record seen
	inSnap := false
	snapDone := false
	sc := nvm.NewScanner(ckLayout(), j.r.Words(b))
scan:
	for {
		tag, pair, payload, status := sc.Next()
		switch status {
		case nvm.ScanRecord:
		case nvm.ScanEnd:
			break scan
		case nvm.ScanTorn, nvm.ScanBadSumTail:
			// The final record never finished (or a flip there is
			// indistinguishable from a torn checksum word), and commit
			// durability gates the ACK, so dropping it is the safe
			// reading.
			return st, snapDone, nil
		case nvm.ScanBadTag:
			return nil, false, fmt.Errorf("%w: invalid tag %d", errCorruptCheckpoint, tag)
		case nvm.ScanBadSumMid:
			return nil, false, fmt.Errorf("%w: checksum mismatch mid-log", errCorruptCheckpoint)
		}
		switch tag {
		case ckTagSnapBegin:
			if st != nil {
				return nil, false, fmt.Errorf("%w: second snapshot in one bank", errCorruptCheckpoint)
			}
			st = newShardState(nvm.Dec64(payload))
			inSnap = true
		case ckTagSnapNode:
			if !inSnap {
				return nil, false, fmt.Errorf("%w: snapshot node record outside a snapshot", errCorruptCheckpoint)
			}
			sn := st.node(payload[0])
			sn.breaker = BreakerState(payload[1])
			if sn.breaker > BreakerHalfOpen {
				return nil, false, fmt.Errorf("%w: breaker state %d", errCorruptCheckpoint, payload[1])
			}
			sn.haveAck = payload[2]&snapFlagHaveAck != 0
			sn.exhausted = payload[2]&snapFlagExhausted != 0
			sn.consecFail = int(payload[3])
			sn.openLeft = int(payload[4])
			sn.lastSeq = uint64(nvm.Dec64(payload[5:9]))
			sn.lastValue = nvm.Dec64(payload[9:13])
		case ckTagSnapVal:
			if !inSnap {
				return nil, false, fmt.Errorf("%w: snapshot value record outside a snapshot", errCorruptCheckpoint)
			}
			vs := st.store(payload[0])
			seq := uint64(nvm.Dec64(payload[1:5]))
			if vs.has(seq) {
				return nil, false, fmt.Errorf("%w: duplicate snapshot value", errCorruptCheckpoint)
			}
			vs.put(seq, nvm.Dec64(payload[5:9]))
		case ckTagSnapEnd:
			if !inSnap || nvm.Dec64(payload) != st.gen {
				return nil, false, fmt.Errorf("%w: unmatched snapshot end", errCorruptCheckpoint)
			}
			inSnap, snapDone = false, true
		case ckTagIntent:
			if !snapDone {
				return nil, false, fmt.Errorf("%w: admission before snapshot", errCorruptCheckpoint)
			}
			pendStage, pendPair = 1, pair
			pendNode = payload[0]
			pendSeq = uint64(nvm.Dec64(payload[1:5]))
		case ckTagRecord:
			if pendStage != 1 {
				return nil, false, fmt.Errorf("%w: record without intent", errCorruptCheckpoint)
			}
			pendStage = 2
			pendValue = nvm.Dec64(payload[0:4])
			pendFlags = payload[4]
		case ckTagCommit:
			if pendStage == 2 && pair == pendPair {
				st.admit(pendNode, pendSeq, pendValue, pendFlags)
				st.replayed++
			}
			pendStage = 0
		}
	}
	if inSnap {
		// snapBegin without snapEnd and no torn record: every record
		// checksummed, so the bank simply holds an unfinished
		// compaction — valid but not a complete snapshot.
		return st, false, nil
	}
	return st, snapDone, nil
}

// replay picks the recoverable bank: the one with the highest-
// generation complete snapshot. Recovery prefers the newer complete
// bank (a crash after compaction's snapEnd but before the old bank's
// erase leaves both complete); a bank whose snapshot never completed
// is an interrupted compaction and yields to the other. Corruption in
// the winning bank — or no complete snapshot anywhere — refuses the
// shard.
func (j *Journal) replay() (*shardState, error) {
	type cand struct {
		st       *shardState
		complete bool
		err      error
	}
	var cands [2]cand
	for b := 0; b < 2; b++ {
		cands[b].st, cands[b].complete, cands[b].err = j.replayBank(b)
	}
	best := -1
	for b := 0; b < 2; b++ {
		if cands[b].err != nil || !cands[b].complete {
			continue
		}
		if best < 0 || cands[b].st.gen > cands[best].st.gen {
			best = b
		}
	}
	if best < 0 {
		for b := 0; b < 2; b++ {
			if cands[b].err != nil {
				return nil, cands[b].err
			}
		}
		return nil, fmt.Errorf("%w: no complete snapshot in either bank", errCorruptCheckpoint)
	}
	// A corrupt loser bank is fine — it is about to be erased — but a
	// corrupt *winner* was already screened out above.
	j.bk.SetLive(best, cands[best].st.gen)
	j.r.Erase(1 - best)
	return cands[best].st, nil
}

// writeSnapshot writes a complete gen-tagged snapshot of state into
// bank b. It does not flip the live bank; callers do that only on
// success.
func (j *Journal) writeSnapshot(b int, gen int64, nodes map[uint16]*snapNode, stores map[uint16]*valueStore) bool {
	g := nvm.Enc64(gen)
	if !j.appendRecord(b, ckTagSnapBegin, []uint16{g[0], g[1], g[2], g[3]}) {
		return false
	}
	for id, sn := range nodes {
		var flags uint16
		if sn.haveAck {
			flags |= snapFlagHaveAck
		}
		if sn.exhausted {
			flags |= snapFlagExhausted
		}
		ls, lv := nvm.Enc64(int64(sn.lastSeq)), nvm.Enc64(sn.lastValue)
		if !j.appendRecord(b, ckTagSnapNode, []uint16{
			id, uint16(sn.breaker), flags, uint16(sn.consecFail), uint16(sn.openLeft),
			ls[0], ls[1], ls[2], ls[3], lv[0], lv[1], lv[2], lv[3],
		}) {
			return false
		}
	}
	ok := true
	for id, vs := range stores {
		vs.forEach(func(seq uint64, v int64) {
			if !ok {
				return
			}
			s, val := nvm.Enc64(int64(seq)), nvm.Enc64(v)
			ok = j.appendRecord(b, ckTagSnapVal, []uint16{id, s[0], s[1], s[2], s[3], val[0], val[1], val[2], val[3]})
		})
		if !ok {
			return false
		}
	}
	return j.appendRecord(b, ckTagSnapEnd, []uint16{g[0], g[1], g[2], g[3]})
}

// compact writes the next-generation snapshot into the idle bank and
// flips. A power failure mid-snapshot leaves the old bank live and
// complete; nothing is lost, and the next compaction attempt (or
// recovery) simply retries. It reports whether the flip happened.
func (j *Journal) compact(nodes map[uint16]*snapNode, stores map[uint16]*valueStore) bool {
	return j.bk.Compact(func(idle int, gen int64) bool {
		return j.writeSnapshot(idle, gen, nodes, stores)
	})
}

// seed initializes a fresh journal with an empty generation-1
// snapshot, so "no complete snapshot anywhere" is always corruption,
// never a fresh boot.
func (j *Journal) seed() bool {
	j.bk.SetLive(0, 1)
	return j.writeSnapshot(0, 1, nil, nil)
}

// Words returns the live bank's durable words plus the idle bank's
// (test introspection; the idle bank is non-empty only mid-crash).
func (j *Journal) Words() []uint16 {
	out := append([]uint16(nil), j.r.Words(j.bk.Live())...)
	return append(out, j.r.Words(j.bk.Idle())...)
}

// Store is a collector's durable checkpoint region: one Journal per
// ingest shard, carved out of a single medium and powered by a single
// supply (a collector crash is one event, not per-shard). Pass it to
// New for a fresh collector or Recover after a crash; a Store
// outlives the Collector instances built on it, exactly as the DP-Box
// journal outlives the box.
type Store struct {
	pw     *nvm.Power
	med    nvm.Medium
	shards []*Journal
}

// clampShards mirrors Config.Shards' clamp.
func clampShards(shards int) int {
	if shards <= 0 {
		shards = 8
	}
	if shards > 1024 {
		shards = 1024
	}
	return shards
}

// NewStore builds an empty in-memory checkpoint store for the given
// shard count (clamped like Config.Shards).
func NewStore(shards int) *Store {
	shards = clampShards(shards)
	return newStoreOn(nvm.NewMemMedium(2*shards), nvm.NewPower(), shards)
}

// OpenStore opens (or creates) a file-backed checkpoint store under
// dir. When the directory already holds bank files their count wins
// over the shards argument — the store's geometry is part of its
// durable state, and recovering with a different shard count would
// strand checkpoints.
func OpenStore(dir string, shards int) (*Store, error) {
	shards = clampShards(shards)
	if n := nvm.CountFileBanks(dir); n >= 2 {
		shards = n / 2
	}
	med, err := nvm.OpenFileMedium(dir, 2*shards)
	if err != nil {
		return nil, err
	}
	return newStoreOn(med, nvm.NewPower(), shards), nil
}

// newStoreOn assembles a store over an explicit medium and supply
// cell (crash sweeps arm the cell before the store exists).
func newStoreOn(med nvm.Medium, pw *nvm.Power, shards int) *Store {
	s := &Store{pw: pw, med: med, shards: make([]*Journal, shards)}
	for i := range s.shards {
		s.shards[i] = newJournal(med, pw, i)
	}
	return s
}

// Close releases the store's medium (file handles; a no-op for the
// in-memory medium).
func (s *Store) Close() error { return s.med.Close() }

// Shards returns the store's shard count; a Collector using the store
// always runs exactly this many ingest shards.
func (s *Store) Shards() int { return len(s.shards) }

// Shard returns shard i's journal (test introspection and fault
// injection).
func (s *Store) Shard(i int) *Journal { return s.shards[i] }

// FailAfterWrites schedules a store-wide power failure after n more
// successful word writes, across all shards (n = 0 kills the next
// write). Pass a negative n to disarm.
func (s *Store) FailAfterWrites(n int) { s.pw.FailAfterWrites(n) }

// Kill drops NVM power immediately; all further writes fail and every
// shard of the collector fails closed.
func (s *Store) Kill() { s.pw.Kill() }

// Dead reports whether the store has lost power.
func (s *Store) Dead() bool { return s.pw.Dead() }

// Revive restores power (the restart's secure boot) and disarms any
// scheduled failure. Call it before Recover.
func (s *Store) Revive() { s.pw.Revive() }

// Writes returns the total durable word count across every shard and
// bank — the crash-sweep axis ("fail after the w-th word write").
func (s *Store) Writes() uint64 { return s.pw.Writes() }

// NVMStats aggregates the engine's introspection surface across every
// shard. Callers must hold the store quiescent (no concurrent
// admissions); a live Collector exposes the locked variant instead.
func (s *Store) NVMStats() nvm.Stats {
	agg := nvm.Stats{
		Banks:      s.med.Banks(),
		Writes:     s.pw.Writes(),
		FailClosed: s.pw.Dead(),
	}
	for _, j := range s.shards {
		st := j.r.Stats()
		agg.Words += st.Words
		agg.Compactions += st.Compactions
	}
	return agg
}

// Empty reports whether no shard holds any durable words — a store
// that has never been seeded. NewDurable requires an empty store;
// callers opening a file-backed store (fleet restart) branch on this
// to choose between NewDurable and Recover.
func (s *Store) Empty() bool {
	for b := 0; b < s.med.Banks(); b++ {
		if s.med.Len(b) != 0 {
			return false
		}
	}
	return true
}
