package collector

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// This file is the collector's crash-consistency plane: a per-shard
// durable checkpoint/WAL in the same 16-bit-word NVM model as the
// DP-Box budget journal (internal/dpbox/journal.go), plus the replay
// and compaction machinery Collector.Recover builds on.
//
// Each shard owns one Journal. An admission — the first time a shard
// records a (node, seq, value) — is journaled with the two-phase
// protocol before the report is applied to memory or ACKed:
//
//	intent   node + report seq     "I am about to admit (node, seq)"
//	record   value + flags         the value being bound to it
//	commit   no payload            seals the admission
//
// The three records share a 12-bit pairing sequence number; replay
// applies an admission only when all three are durable in order. The
// ACK is sent only after the commit word lands, so "the agent saw an
// ACK" implies "the admission survives any collector crash" — the
// exactly-once contract now holds across collector restarts, not just
// node crashes and lossy links.
//
// Compaction is double-banked like real flash. A Journal holds two
// banks; the live bank starts with a generation-tagged snapshot
// (snapBegin gen … snapEnd gen) of every node's valueStore bitmap +
// values + breaker state, followed by the admissions since. Compaction
// writes gen+1's snapshot into the idle bank and only a durable
// snapEnd makes it the live bank — a crash mid-compaction leaves the
// old bank complete and loses nothing. Recovery picks the bank with
// the highest complete snapshot, replays it plus its admission tail
// (a torn tail record is indistinguishable from "never written" and
// is dropped — it was never ACKed), and refuses the shard outright on
// mid-log corruption, an invalid tag, or a bank with no complete
// snapshot: fail closed, like budget.Bank on a dead journal, because
// a silently shortened log would re-admit (double-count) replays of
// reports it had already ACKed.

// journal record tags (the collector's own tag space; the format
// mirrors dpbox: hdr = tag<<12 | seq, payload words, xor checksum).
const (
	ckTagSnapBegin = 1 // payload gen(4)
	ckTagSnapNode  = 2 // payload node(1) breaker(1) stateFlags(1) consecFail(1) openLeft(1) lastSeq(4) lastValue(4)
	ckTagSnapVal   = 3 // payload node(1) seq(4) value(4)
	ckTagSnapEnd   = 4 // payload gen(4)
	ckTagIntent    = 5 // payload node(1) seq(4)
	ckTagRecord    = 6 // payload value(4) flags(1)
	ckTagCommit    = 7 // no payload
)

// snapshot stateFlags bits (ckTagSnapNode).
const (
	snapFlagHaveAck   = 1 << 0
	snapFlagExhausted = 1 << 1
)

// admission flags bits (ckTagRecord): the transport report flags the
// shard's last-ACK cache depends on.
const admFlagFromCache = 1 << 0

const ckChkSalt = 0xC011 // distinct salt: a collector record never replays as a dpbox one

// ckPayloadLen returns the payload word count for a tag, or -1 for an
// unknown tag (which recovery treats as corruption, not truncation).
func ckPayloadLen(tag uint16) int {
	switch tag {
	case ckTagSnapBegin, ckTagSnapEnd:
		return 4
	case ckTagSnapNode:
		return 13
	case ckTagSnapVal:
		return 9
	case ckTagIntent:
		return 5
	case ckTagRecord:
		return 5
	case ckTagCommit:
		return 0
	}
	return -1
}

func ckChecksum(hdr uint16, payload []uint16) uint16 {
	c := hdr ^ uint16(ckChkSalt)
	for _, w := range payload {
		c ^= w
	}
	return c
}

func ckEnc64(v int64) [4]uint16 {
	u := uint64(v)
	return [4]uint16{uint16(u), uint16(u >> 16), uint16(u >> 32), uint16(u >> 48)}
}

func ckDec64(w []uint16) int64 {
	return int64(uint64(w[0]) | uint64(w[1])<<16 | uint64(w[2])<<32 | uint64(w[3])<<48)
}

// admissionWords is the durable cost of one admission: intent
// (hdr+5+chk) + record (hdr+5+chk) + commit (hdr+chk).
const admissionWords = 7 + 7 + 2

// power is the store-wide NVM supply shared by every shard journal: a
// collector crash takes all shards down between two word writes, so
// the fail countdown is global, not per shard. Shards journal
// concurrently and every admission costs 16 permit checks, so the
// cell is lock-free: with no failure armed (the steady state) a
// permit is one load and one relaxed counter bump, never a shared
// mutex across the reactors.
type power struct {
	failAfter atomic.Int64 // remaining allowed word writes; -1 = no scheduled failure
	dead      atomic.Bool
	writes    atomic.Uint64 // total durable words across every shard and bank
}

// allow consumes one word-write permit, honouring a scheduled failure.
func (p *power) allow() bool {
	if p.dead.Load() {
		return false
	}
	for {
		n := p.failAfter.Load()
		if n < 0 {
			p.writes.Add(1)
			return true
		}
		if n == 0 {
			p.dead.Store(true)
			return false
		}
		if p.failAfter.CompareAndSwap(n, n-1) {
			p.writes.Add(1)
			return true
		}
	}
}

// Journal is one shard's durable checkpoint region: two word banks
// and a 12-bit record sequence. All mutation happens under the owning
// shard's lock (or single-threaded recovery); only the power cell is
// shared.
type Journal struct {
	pw    *power
	banks [2][]uint16
	live  int    // bank holding the current snapshot + admission tail
	gen   int64  // generation of the live bank's snapshot
	seq   uint16 // 12-bit record pairing sequence
}

// put appends one word to bank b, honouring the store power. It
// reports whether the word became durable.
func (j *Journal) put(b int, w uint16) bool {
	if !j.pw.allow() {
		return false
	}
	j.banks[b] = append(j.banks[b], w)
	return true
}

// appendRecord writes hdr, payload and checksum word by word into
// bank b. False means power failed partway: the tail is torn and the
// store dead.
func (j *Journal) appendRecord(b int, tag uint16, payload []uint16) bool {
	hdr := tag<<12 | (j.seq & 0x0FFF)
	j.seq++
	if !j.put(b, hdr) {
		return false
	}
	for _, w := range payload {
		if !j.put(b, w) {
			return false
		}
	}
	return j.put(b, ckChecksum(hdr, payload))
}

// appendAdmission runs the two-phase admission protocol into the live
// bank: intent, record, commit, all sharing one pairing sequence.
// Only after it returns true may the shard apply the admission and
// queue the ACK.
func (j *Journal) appendAdmission(node uint16, seq uint64, value int64, flags uint16) bool {
	s := ckEnc64(int64(seq))
	pair := j.seq
	if !j.appendRecord(j.live, ckTagIntent, []uint16{node, s[0], s[1], s[2], s[3]}) {
		return false
	}
	v := ckEnc64(value)
	if !j.appendRecord(j.live, ckTagRecord, []uint16{v[0], v[1], v[2], v[3], flags}) {
		return false
	}
	j.seq = pair // commit reuses the intent's seq for pairing
	return j.appendRecord(j.live, ckTagCommit, nil)
}

// snapNode is one node's checkpointed metadata (everything a NodeView
// needs beyond the valueStore itself).
type snapNode struct {
	breaker    BreakerState
	consecFail int
	openLeft   int
	haveAck    bool
	exhausted  bool
	lastSeq    uint64
	lastValue  int64
}

// shardState is one shard's durable state as reconstructed by replay.
type shardState struct {
	gen    int64
	nodes  map[uint16]*snapNode
	stores map[uint16]*valueStore
	// replayed counts admissions applied from the WAL tail (after the
	// snapshot) — the "work redone" recovery metric.
	replayed int
}

func newShardState(gen int64) *shardState {
	return &shardState{
		gen:    gen,
		nodes:  make(map[uint16]*snapNode),
		stores: make(map[uint16]*valueStore),
	}
}

func (st *shardState) node(id uint16) *snapNode {
	n := st.nodes[id]
	if n == nil {
		n = &snapNode{}
		st.nodes[id] = n
	}
	return n
}

func (st *shardState) store(id uint16) *valueStore {
	vs := st.stores[id]
	if vs == nil {
		vs = &valueStore{}
		st.stores[id] = vs
	}
	return vs
}

// admit applies one committed (node, seq, value, flags) admission to
// the replayed state, using the same last-ACK rule as handleLocked so
// the recovered NodeView is bit-exact.
func (st *shardState) admit(nodeID uint16, seq uint64, value int64, flags uint16) {
	vs := st.store(nodeID)
	if !vs.has(seq) {
		vs.put(seq, value)
	}
	n := st.node(nodeID)
	if !n.haveAck || seq >= n.lastSeq {
		n.haveAck = true
		n.lastSeq = seq
		n.lastValue = vs.get(seq)
		n.exhausted = flags&admFlagFromCache != 0
	}
}

// errCorruptCheckpoint marks a shard journal recovery refused
// fail-closed: the log is damaged in a way a torn tail cannot
// explain, so replaying a prefix could silently re-open (node, seq)
// slots the collector already ACKed.
var errCorruptCheckpoint = errors.New("collector: corrupt shard checkpoint")

// replayBank parses one bank. A record truncated at the very end of
// the bank is a torn write and ends the scan (ok, torn=true); a
// checksum failure or invalid tag with the full record present — or
// any structurally impossible sequence — is corruption.
func (j *Journal) replayBank(b int) (st *shardState, complete bool, err error) {
	w := j.banks[b]
	var pendNode uint16
	var pendSeq uint64
	var pendPair uint16
	var pendValue int64
	var pendFlags uint16
	pendStage := 0 // 0 idle, 1 intent seen, 2 record seen
	inSnap := false
	snapDone := false
	for i := 0; i < len(w); {
		hdr := w[i]
		tag, pair := hdr>>12, hdr&0x0FFF
		n := ckPayloadLen(tag)
		if n < 0 {
			return nil, false, fmt.Errorf("%w: invalid tag %d", errCorruptCheckpoint, tag)
		}
		if i+1+n+1 > len(w) {
			return st, snapDone, nil // torn tail: the record never finished
		}
		payload := w[i+1 : i+1+n]
		if w[i+1+n] != ckChecksum(hdr, payload) {
			if i+1+n+1 == len(w) {
				// The record's words are all present but the bank ends
				// here: a flip in the final record and a torn write at
				// the checksum word are indistinguishable, and the
				// record was never ACKed-on (commit durability gates
				// the ACK), so dropping it is the safe reading.
				return st, snapDone, nil
			}
			return nil, false, fmt.Errorf("%w: checksum mismatch mid-log", errCorruptCheckpoint)
		}
		switch tag {
		case ckTagSnapBegin:
			if st != nil {
				return nil, false, fmt.Errorf("%w: second snapshot in one bank", errCorruptCheckpoint)
			}
			st = newShardState(ckDec64(payload))
			inSnap = true
		case ckTagSnapNode:
			if !inSnap {
				return nil, false, fmt.Errorf("%w: snapshot node record outside a snapshot", errCorruptCheckpoint)
			}
			sn := st.node(payload[0])
			sn.breaker = BreakerState(payload[1])
			if sn.breaker > BreakerHalfOpen {
				return nil, false, fmt.Errorf("%w: breaker state %d", errCorruptCheckpoint, payload[1])
			}
			sn.haveAck = payload[2]&snapFlagHaveAck != 0
			sn.exhausted = payload[2]&snapFlagExhausted != 0
			sn.consecFail = int(payload[3])
			sn.openLeft = int(payload[4])
			sn.lastSeq = uint64(ckDec64(payload[5:9]))
			sn.lastValue = ckDec64(payload[9:13])
		case ckTagSnapVal:
			if !inSnap {
				return nil, false, fmt.Errorf("%w: snapshot value record outside a snapshot", errCorruptCheckpoint)
			}
			vs := st.store(payload[0])
			seq := uint64(ckDec64(payload[1:5]))
			if vs.has(seq) {
				return nil, false, fmt.Errorf("%w: duplicate snapshot value", errCorruptCheckpoint)
			}
			vs.put(seq, ckDec64(payload[5:9]))
		case ckTagSnapEnd:
			if !inSnap || ckDec64(payload) != st.gen {
				return nil, false, fmt.Errorf("%w: unmatched snapshot end", errCorruptCheckpoint)
			}
			inSnap, snapDone = false, true
		case ckTagIntent:
			if !snapDone {
				return nil, false, fmt.Errorf("%w: admission before snapshot", errCorruptCheckpoint)
			}
			pendStage, pendPair = 1, pair
			pendNode = payload[0]
			pendSeq = uint64(ckDec64(payload[1:5]))
		case ckTagRecord:
			if pendStage != 1 {
				return nil, false, fmt.Errorf("%w: record without intent", errCorruptCheckpoint)
			}
			pendStage = 2
			pendValue = ckDec64(payload[0:4])
			pendFlags = payload[4]
		case ckTagCommit:
			if pendStage == 2 && pair == pendPair {
				st.admit(pendNode, pendSeq, pendValue, pendFlags)
				st.replayed++
			}
			pendStage = 0
		}
		i += 1 + n + 1
	}
	if inSnap {
		// snapBegin without snapEnd and no torn record: every record
		// checksummed, so the bank simply holds an unfinished
		// compaction — valid but not a complete snapshot.
		return st, false, nil
	}
	return st, snapDone, nil
}

// replay picks the recoverable bank: the one with the highest-
// generation complete snapshot. Recovery prefers the newer complete
// bank (a crash after compaction's snapEnd but before the old bank's
// erase leaves both complete); a bank whose snapshot never completed
// is an interrupted compaction and yields to the other. Corruption in
// the winning bank — or no complete snapshot anywhere — refuses the
// shard.
func (j *Journal) replay() (*shardState, error) {
	type cand struct {
		st       *shardState
		complete bool
		err      error
	}
	var cands [2]cand
	for b := 0; b < 2; b++ {
		cands[b].st, cands[b].complete, cands[b].err = j.replayBank(b)
	}
	best := -1
	for b := 0; b < 2; b++ {
		if cands[b].err != nil || !cands[b].complete {
			continue
		}
		if best < 0 || cands[b].st.gen > cands[best].st.gen {
			best = b
		}
	}
	if best < 0 {
		for b := 0; b < 2; b++ {
			if cands[b].err != nil {
				return nil, cands[b].err
			}
		}
		return nil, fmt.Errorf("%w: no complete snapshot in either bank", errCorruptCheckpoint)
	}
	// A corrupt loser bank is fine — it is about to be erased — but a
	// corrupt *winner* was already screened out above.
	j.live = best
	j.gen = cands[best].st.gen
	j.banks[1-best] = j.banks[1-best][:0]
	return cands[best].st, nil
}

// writeSnapshot writes a complete gen-tagged snapshot of state into
// bank b. It does not flip the live bank; callers do that only on
// success.
func (j *Journal) writeSnapshot(b int, gen int64, nodes map[uint16]*snapNode, stores map[uint16]*valueStore) bool {
	g := ckEnc64(gen)
	if !j.appendRecord(b, ckTagSnapBegin, []uint16{g[0], g[1], g[2], g[3]}) {
		return false
	}
	for id, sn := range nodes {
		var flags uint16
		if sn.haveAck {
			flags |= snapFlagHaveAck
		}
		if sn.exhausted {
			flags |= snapFlagExhausted
		}
		ls, lv := ckEnc64(int64(sn.lastSeq)), ckEnc64(sn.lastValue)
		if !j.appendRecord(b, ckTagSnapNode, []uint16{
			id, uint16(sn.breaker), flags, uint16(sn.consecFail), uint16(sn.openLeft),
			ls[0], ls[1], ls[2], ls[3], lv[0], lv[1], lv[2], lv[3],
		}) {
			return false
		}
	}
	ok := true
	for id, vs := range stores {
		vs.forEach(func(seq uint64, v int64) {
			if !ok {
				return
			}
			s, val := ckEnc64(int64(seq)), ckEnc64(v)
			ok = j.appendRecord(b, ckTagSnapVal, []uint16{id, s[0], s[1], s[2], s[3], val[0], val[1], val[2], val[3]})
		})
		if !ok {
			return false
		}
	}
	return j.appendRecord(b, ckTagSnapEnd, []uint16{g[0], g[1], g[2], g[3]})
}

// compact writes the next-generation snapshot into the idle bank and
// flips. A power failure mid-snapshot leaves the old bank live and
// complete; nothing is lost, and the next compaction attempt (or
// recovery) simply retries. It reports whether the flip happened.
func (j *Journal) compact(nodes map[uint16]*snapNode, stores map[uint16]*valueStore) bool {
	idle := 1 - j.live
	j.banks[idle] = j.banks[idle][:0]
	if !j.writeSnapshot(idle, j.gen+1, nodes, stores) {
		return false
	}
	// The snapEnd word is durable: the new bank is authoritative from
	// here even if the erase below never happens (recovery picks the
	// higher generation).
	j.gen++
	j.live = idle
	j.banks[1-idle] = j.banks[1-idle][:0]
	return true
}

// seed initializes a fresh journal with an empty generation-1
// snapshot, so "no complete snapshot anywhere" is always corruption,
// never a fresh boot.
func (j *Journal) seed() bool {
	j.gen = 1
	j.live = 0
	return j.writeSnapshot(0, 1, nil, nil)
}

// Words returns the live bank's durable words plus the idle bank's
// (test introspection; the idle bank is non-empty only mid-crash).
func (j *Journal) Words() []uint16 {
	out := append([]uint16(nil), j.banks[j.live]...)
	return append(out, j.banks[1-j.live]...)
}

// Store is a collector's durable checkpoint region: one Journal per
// ingest shard, all powered by a single supply (a collector crash is
// one event, not per-shard). Pass it to New for a fresh collector or
// Recover after a crash; a Store outlives the Collector instances
// built on it, exactly as the DP-Box journal outlives the box.
type Store struct {
	pw     *power
	shards []*Journal
}

// NewStore builds an empty checkpoint store for the given shard
// count (clamped like Config.Shards).
func NewStore(shards int) *Store {
	if shards <= 0 {
		shards = 8
	}
	if shards > 1024 {
		shards = 1024
	}
	s := &Store{pw: &power{}}
	s.pw.failAfter.Store(-1)
	s.shards = make([]*Journal, shards)
	for i := range s.shards {
		s.shards[i] = &Journal{pw: s.pw}
	}
	return s
}

// Shards returns the store's shard count; a Collector using the store
// always runs exactly this many ingest shards.
func (s *Store) Shards() int { return len(s.shards) }

// Shard returns shard i's journal (test introspection and fault
// injection).
func (s *Store) Shard(i int) *Journal { return s.shards[i] }

// FailAfterWrites schedules a store-wide power failure after n more
// successful word writes, across all shards (n = 0 kills the next
// write). Pass a negative n to disarm.
func (s *Store) FailAfterWrites(n int) {
	if n < 0 {
		n = -1
	}
	s.pw.failAfter.Store(int64(n))
}

// Kill drops NVM power immediately; all further writes fail and every
// shard of the collector fails closed.
func (s *Store) Kill() {
	s.pw.dead.Store(true)
}

// Dead reports whether the store has lost power.
func (s *Store) Dead() bool {
	return s.pw.dead.Load()
}

// Revive restores power (the restart's secure boot) and disarms any
// scheduled failure. Call it before Recover.
func (s *Store) Revive() {
	s.pw.dead.Store(false)
	s.pw.failAfter.Store(-1)
}

// Writes returns the total durable word count across every shard and
// bank — the crash-sweep axis ("fail after the w-th word write").
func (s *Store) Writes() uint64 {
	return s.pw.writes.Load()
}

// empty reports whether no shard holds any durable words (a store
// that has never been seeded by New).
func (s *Store) empty() bool {
	for _, j := range s.shards {
		if len(j.banks[0]) != 0 || len(j.banks[1]) != 0 {
			return false
		}
	}
	return true
}
