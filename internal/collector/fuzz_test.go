package collector

import (
	"testing"

	"ulpdp/internal/nvm/nvmtest"
)

// fuzzJournal builds a standalone journal whose two banks hold the
// given raw fuzz bytes (an odd trailing byte is a torn word and is
// dropped, as NVM would), powered and ready to replay.
func fuzzJournal(a, b []byte) *Journal {
	j := NewStore(1).Shard(0)
	j.loadBanks(nvmtest.BytesToWords(a), nvmtest.BytesToWords(b))
	return j
}

// FuzzCollectorCheckpoint feeds arbitrary bank contents — seeded with
// real journals, truncations, and targeted bit flips — through shard
// checkpoint recovery. Whatever the damage, replay must never panic;
// it either refuses the shard (fail closed) or returns a state that is
// internally consistent, deterministic, and still able to journal and
// survive further admissions.
func FuzzCollectorCheckpoint(f *testing.F) {
	// Corpus: a journal with a snapshot and a WAL tail, its compacted
	// form, plus truncated and bit-flipped variants and tiny junk.
	s := NewStore(1)
	j := s.Shard(0)
	j.seed()
	st := newShardState(0)
	for _, a := range []admSpec{{1, 0, 5}, {1, 1, -6}, {2, 0, 7}, {2, 5, 9}} {
		j.appendAdmission(a.node, a.seq, a.val, 0)
		st.admit(a.node, a.seq, a.val, 0)
	}
	live := nvmtest.WordsToBytes(j.r.Words(j.bk.Live()))
	f.Add(live, []byte{})
	f.Add(live[:len(live)-3], []byte{})
	f.Add(live[:17], live)
	j.compact(st.nodes, st.stores)
	f.Add(nvmtest.WordsToBytes(j.r.Words(j.bk.Live())), live)
	flipped := append([]byte(nil), live...)
	flipped[len(flipped)/2] ^= 0x10
	f.Add(flipped, []byte{})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{0xFF, 0xFF, 0x00}, []byte{0x12})

	f.Fuzz(func(t *testing.T, a, b []byte) {
		if len(a) > 1<<16 || len(b) > 1<<16 {
			return // keep the word slices small; length adds no coverage
		}
		st, err := fuzzJournal(a, b).replay()
		if err != nil {
			// Fail closed: the shard is refused; nothing to check.
			return
		}
		if st == nil {
			t.Fatal("replay returned nil state without error")
		}
		// Internal consistency: every store's bitmap, count, and
		// spill map agree.
		for id, vs := range st.stores {
			n := 0
			vs.forEach(func(seq uint64, v int64) {
				n++
				if !vs.has(seq) || vs.get(seq) != v {
					t.Fatalf("node %d seq %d: forEach/has/get disagree", id, seq)
				}
			})
			if n != vs.n {
				t.Fatalf("node %d: forEach visited %d, n = %d", id, n, vs.n)
			}
		}
		// Determinism: the same banks replay to the same admissions.
		st2, err2 := fuzzJournal(a, b).replay()
		if err2 != nil {
			t.Fatalf("second replay diverged into error: %v", err2)
		}
		if st2.gen != st.gen || len(st2.stores) != len(st.stores) || st2.replayed != st.replayed {
			t.Fatalf("replay not deterministic: gen %d/%d stores %d/%d replayed %d/%d",
				st.gen, st2.gen, len(st.stores), len(st2.stores), st.replayed, st2.replayed)
		}
		// The journal must remain usable the way Recover uses it:
		// replay, compact (folding any torn tail away), then admit —
		// and the admission survives its own replay.
		j := fuzzJournal(a, b)
		st3, err := j.replay()
		if err != nil {
			t.Fatalf("third replay diverged into error: %v", err)
		}
		if !j.compact(st3.nodes, st3.stores) {
			t.Fatal("recovery compaction failed with live power")
		}
		if st3.stores[7] != nil && st3.stores[7].has(123) {
			return // the fuzzer already owns the probe seq; nothing to prove
		}
		if !j.appendAdmission(7, 123, 456, 0) {
			t.Fatal("recovered journal rejected a powered admission")
		}
		st4, err := j.replay()
		if err != nil {
			t.Fatalf("replay after post-recovery admission: %v", err)
		}
		if vs := st4.stores[7]; vs == nil || !vs.has(123) || vs.get(123) != 456 {
			t.Fatal("post-recovery admission lost on re-replay")
		}
	})
}
