package collector

import (
	"testing"
	"time"

	"ulpdp/internal/obs"
	"ulpdp/internal/transport"
)

// TestBreakerTransitionMetrics drives a breaker through its full
// lifecycle — closed → open → half-open → (failed probe) open →
// half-open → closed — and asserts every transition is visible in the
// counters and the trace ring, in order.
func TestBreakerTransitionMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	col := New(Config{PollTimeout: time.Millisecond, BreakerThreshold: 3, OpenTicks: 2, Obs: m})
	defer col.Close()
	link := transport.NewLink(transport.LinkConfig{})
	end := link.NodeEnd()

	end.Send(transport.Packet{Kind: transport.KindReport, Node: 5, Seq: 0, Value: 40})
	if err := col.Attach(5, link.CollectorEnd()); err != nil {
		t.Fatal(err)
	}
	state := func() NodeView {
		v, ok := col.Node(5)
		if !ok {
			t.Fatal("node 5 not attached")
		}
		return v
	}
	waitFor(t, 5*time.Second, "first report", func() bool { return state().Have })

	// Silence trips the breaker: closed → open, once. Transitions are
	// awaited on the monotonic counters, not by sampling the breaker
	// state — at PollTimeout granularity the open window lasts only a
	// few milliseconds and a descheduled poller can miss it entirely.
	waitFor(t, 5*time.Second, "breaker open", func() bool { return m.Opened.Value() == 1 })
	if m.Timeouts.Value() == 0 {
		t.Fatal("breaker tripped with no timeout counted")
	}

	// Cooldown half-opens it; a failed (unhealthy) probe re-opens.
	waitFor(t, 5*time.Second, "half-open", func() bool { return m.HalfOpened.Value() == 1 })
	end.Send(transport.Packet{
		Kind: transport.KindReport, Node: 5, Seq: 1, Value: 41,
		Flags: transport.FlagUnhealthy,
	})
	waitFor(t, 5*time.Second, "re-open after bad probe", func() bool { return m.Reopened.Value() == 1 })
	if m.BreakerDrops.Value() == 0 {
		t.Fatal("failed probe was not counted as a breaker drop")
	}

	// Second cooldown; a healthy probe closes the breaker.
	waitFor(t, 5*time.Second, "half-open again", func() bool { return m.HalfOpened.Value() == 2 })
	end.Send(transport.Packet{Kind: transport.KindReport, Node: 5, Seq: 1, Value: 50})
	waitFor(t, 5*time.Second, "closed after probe", func() bool { return state().Breaker == BreakerClosed })
	if got := m.Closed.Value(); got != 1 {
		t.Fatalf("closed = %d, want 1", got)
	}
	if got := m.Opened.Value(); got != 1 {
		t.Fatalf("opened grew to %d after recovery, want 1", got)
	}

	// The trace ring replays the exact transition sequence for node 5.
	want := [][2]BreakerState{
		{BreakerClosed, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerOpen},
		{BreakerOpen, BreakerHalfOpen},
		{BreakerHalfOpen, BreakerClosed},
	}
	var got [][2]BreakerState
	for _, ev := range m.Trace.Events() {
		if ev.Kind == EvBreaker && ev.Node == 5 {
			got = append(got, [2]BreakerState{BreakerState(ev.A), BreakerState(ev.B)})
		}
	}
	if len(got) != len(want) {
		t.Fatalf("trace has %d breaker transitions %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transition %d = %v→%v, want %v→%v", i, got[i][0], got[i][1], want[i][0], want[i][1])
		}
	}
}
