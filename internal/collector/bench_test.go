package collector

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"ulpdp/internal/transport"
)

// benchIngest drives b.N reports round-robin across a fleet of
// attached lossless links and waits for the reactor to record every
// one. Flow control mirrors a real fleet's ACK clocking: the sender
// never lets more than maxInFlight reports be outstanding, so the
// bounded link queues (cap 256) cannot overflow and every report is
// accepted exactly once.
func benchIngest(b *testing.B, nodes int, durable bool) {
	const maxInFlight = 4096
	cfg := Config{
		BreakerThreshold: 1 << 30,
		PollTimeout:      time.Hour, // no idle ticks in the hot-path measurement
	}
	var col *Collector
	if durable {
		var err error
		col, err = NewDurable(cfg, NewStore(0))
		if err != nil {
			b.Fatal(err)
		}
	} else {
		col = New(cfg)
	}
	defer col.Close()

	ends := make([]*transport.Endpoint, nodes)
	for i := 0; i < nodes; i++ {
		link := transport.NewLink(transport.LinkConfig{QueueCap: 256})
		if err := col.Attach(transport.NodeID(i), link.CollectorEnd()); err != nil {
			b.Fatal(err)
		}
		ends[i] = link.NodeEnd()
	}
	seqs := make([]uint64, nodes)
	inFlight := maxInFlight
	if nodes < 64 {
		// Keep the per-link share of the in-flight window under the
		// queue cap so nothing overflows.
		inFlight = nodes * 128
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := i % nodes
		ends[n].Send(transport.Packet{
			Kind: transport.KindReport, Node: transport.NodeID(n),
			Seq: seqs[n], Value: int64(i),
		})
		seqs[n]++
		// Drain this node's ACKs like a real agent would, so frames
		// keep cycling through the transport pool instead of parking
		// in a never-read receive queue.
		for {
			if _, ok := ends[n].TryRecv(); !ok {
				break
			}
		}
		if (i+1)%inFlight == 0 {
			for col.Stats().Accepted+uint64(inFlight) < uint64(i+1) {
				runtime.Gosched()
			}
		}
	}
	for col.Stats().Accepted < uint64(b.N) {
		runtime.Gosched()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reports/sec")

	if st := col.Stats(); st.Accepted != uint64(b.N) || st.Duplicates != 0 {
		b.Fatalf("accounting drifted: %+v for %d sends", st, b.N)
	}
}

// BenchmarkCollectorIngest measures steady-state ingest throughput of
// the sharded, event-driven reactor. The per-report path — pooled
// frame marshal, readiness notification, shard drain, dedup record,
// batched ACK writeback — must stay at 0 allocs/op.
func BenchmarkCollectorIngest(b *testing.B) {
	for _, nodes := range []int{64, 1024} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			benchIngest(b, nodes, false)
		})
	}
}

// BenchmarkCollectorIngestDurable is the same measurement with shard
// checkpoint journaling on (two-phase admission WAL plus periodic
// snapshot compaction). Bank growth is amortized append and compaction
// cost is spread over CompactEvery admissions, so steady-state durable
// ingest must also hold 0 allocs/op.
func BenchmarkCollectorIngestDurable(b *testing.B) {
	for _, nodes := range []int{64, 1024} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			benchIngest(b, nodes, true)
		})
	}
}
