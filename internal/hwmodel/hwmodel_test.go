package hwmodel

import (
	"math"
	"testing"
)

func TestBaselineMatchesPaperPoint(t *testing.T) {
	// The model is calibrated to the paper's published synthesis
	// point: 10431 gates, 58.66 ns, 158.3 µW at 16 MHz.
	rep, err := Synthesize(Baseline, 16)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(rep.Gates)-10431) > 0.01*10431 {
		t.Errorf("gates = %d, want ~10431", rep.Gates)
	}
	if math.Abs(rep.CritPathNs-58.66) > 0.01*58.66 {
		t.Errorf("critical path = %g ns, want ~58.66", rep.CritPathNs)
	}
	if math.Abs(rep.PowerUW-158.3) > 0.01*158.3 {
		t.Errorf("power = %g µW, want ~158.3", rep.PowerUW)
	}
	if !rep.MeetsTarget {
		t.Error("unconstrained synthesis should meet timing")
	}
	if math.Abs(rep.AreaBudgetFrac-0.11/1.11) > 0.01 {
		t.Errorf("budget area fraction = %g, want ~%g", rep.AreaBudgetFrac, 0.11/1.11)
	}
}

func TestBudgetLogicOverhead(t *testing.T) {
	with, err := Synthesize(Baseline, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Baseline
	cfg.BudgetLogic = false
	without, err := Synthesize(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	overhead := float64(with.Gates)/float64(without.Gates) - 1
	if math.Abs(overhead-0.11) > 0.005 {
		t.Errorf("budget overhead = %g, want 0.11", overhead)
	}
	if without.AreaBudgetFrac != 0 {
		t.Error("no budget logic should mean zero budget area")
	}
}

func TestPipeliningTradesAreaForSpeed(t *testing.T) {
	base, err := Synthesize(Baseline, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Baseline
	cfg.PipelineDepth = 4
	piped, err := Synthesize(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if piped.CritPathNs >= base.CritPathNs {
		t.Errorf("pipelining should cut the critical path: %g -> %g", base.CritPathNs, piped.CritPathNs)
	}
	if piped.Gates <= base.Gates {
		t.Errorf("pipelining should cost area: %d -> %d", base.Gates, piped.Gates)
	}
	if piped.FMaxMHz <= base.FMaxMHz {
		t.Error("pipelining should raise fmax")
	}
}

func TestTightTimingCostsAreaAndPower(t *testing.T) {
	cfg := Baseline
	cfg.TargetNs = 30
	tight, err := Synthesize(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Synthesize(Baseline, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !tight.MeetsTarget {
		t.Error("30 ns should be achievable by upsizing")
	}
	if tight.CritPathNs > 30+1e-9 {
		t.Errorf("achieved %g ns > 30 ns target", tight.CritPathNs)
	}
	if tight.Gates <= base.Gates {
		t.Errorf("tight timing should cost area: %d vs %d", tight.Gates, base.Gates)
	}
	if tight.PowerUW <= base.PowerUW {
		t.Errorf("tight timing should cost power: %g vs %g", tight.PowerUW, base.PowerUW)
	}
}

func TestImpossibleTargetReported(t *testing.T) {
	cfg := Baseline
	cfg.TargetNs = 1 // far below the upsizing floor
	rep, err := Synthesize(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MeetsTarget {
		t.Error("1 ns target should not be met by a combinational 30-stage CORDIC")
	}
	if rep.CritPathNs <= 1 {
		t.Errorf("achieved %g ns below physical floor", rep.CritPathNs)
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{Width: 4, CordicIters: 30, PipelineDepth: 1},
		{Width: 20, CordicIters: 2, PipelineDepth: 1},
		{Width: 20, CordicIters: 30, PipelineDepth: 0},
		{Width: 20, CordicIters: 30, PipelineDepth: 1, TargetNs: -5},
	}
	for i, cfg := range bad {
		if _, err := Synthesize(cfg, 16); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := Synthesize(Baseline, 0); err == nil {
		t.Error("zero clock should be rejected")
	}
}

func TestPowerScalesWithClock(t *testing.T) {
	slow, err := Synthesize(Baseline, 1)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Synthesize(Baseline, 16)
	if err != nil {
		t.Fatal(err)
	}
	if fast.PowerUW <= slow.PowerUW {
		t.Error("power must grow with clock")
	}
	// Leakage floor: at 1 MHz power is dominated by leakage, not 16x
	// smaller than at 16 MHz.
	if fast.PowerUW/slow.PowerUW > 10 {
		t.Errorf("power ratio %g implausible with leakage floor", fast.PowerUW/slow.PowerUW)
	}
}

func TestWiderDatapathCostsMore(t *testing.T) {
	narrow := Baseline
	narrow.Width = 16
	wide := Baseline
	wide.Width = 32
	n, err := Synthesize(narrow, 16)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Synthesize(wide, 16)
	if err != nil {
		t.Fatal(err)
	}
	if w.Gates <= n.Gates {
		t.Error("wider datapath should cost gates")
	}
	if w.CritPathNs <= n.CritPathNs {
		t.Error("wider datapath should be slower")
	}
}

func TestRNGCopiesCostArea(t *testing.T) {
	base, err := Synthesize(Baseline, 16)
	if err != nil {
		t.Fatal(err)
	}
	quad := Baseline
	quad.RNGCopies = 4
	rep, err := Synthesize(quad, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Four noise datapaths roughly triple the area (the RNG dominates
	// the module), but the critical path is unchanged — they run in
	// parallel.
	if rep.Gates < 2*base.Gates {
		t.Errorf("4 copies = %d gates vs %d baseline; expected > 2x", rep.Gates, base.Gates)
	}
	if rep.CritPathNs != base.CritPathNs {
		t.Errorf("parallel copies changed the critical path: %g vs %g", rep.CritPathNs, base.CritPathNs)
	}
	bad := Baseline
	bad.RNGCopies = 99
	if _, err := Synthesize(bad, 16); err == nil {
		t.Error("excessive copies accepted")
	}
}

func TestEnergyPerOp(t *testing.T) {
	rep, err := Synthesize(Baseline, 16)
	if err != nil {
		t.Fatal(err)
	}
	e := rep.EnergyPerOpNJ(2)
	// 158.3 µW × 125 ns = 19.8 pJ ≈ 0.0198 nJ.
	if math.Abs(e-0.0198) > 0.001 {
		t.Errorf("energy per 2-cycle op = %g nJ, want ~0.0198", e)
	}
}
