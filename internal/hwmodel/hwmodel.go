// Package hwmodel estimates synthesis results (gate count, critical
// path, power) for DP-Box variants, substituting for the paper's
// Synopsys Design Compiler runs in a 65 nm node (Section V).
//
// The model is component-based: per-block gate and delay formulas for
// the Tausworthe URNG, the unrolled CORDIC logarithm, the scaling
// shifter, the guard datapath and the budget logic, calibrated so the
// paper's published design point is reproduced exactly
// (10431 gates, 58.66 ns critical path, 158.3 µW at 16 MHz, with the
// budget logic contributing 11% of area). It reproduces the *shape*
// of the paper's design-space observations — pipelining shortens the
// critical path at the cost of area, tighter timing constraints cost
// area and power — not transistor-level truth.
package hwmodel

import (
	"fmt"
	"math"
)

// Tech describes the technology node coefficients. The 65 nm values
// are calibrated against the paper's published synthesis point.
type Tech struct {
	// Name labels the node.
	Name string
	// GateDelayNs is the average logic delay per gate level.
	GateDelayNs float64
	// RegOverheadNs is the setup+clk-to-q cost of a pipeline register.
	RegOverheadNs float64
	// DynPerGateMHzUW is dynamic power per gate per MHz (µW).
	DynPerGateMHzUW float64
	// LeakPerGateUW is leakage power per gate (µW).
	LeakPerGateUW float64
}

// Tech65nm is the calibrated 65 nm node.
var Tech65nm = Tech{
	Name:            "65nm",
	GateDelayNs:     0.30929, // calibrated: 30-stage CORDIC datapath -> 58.66 ns
	RegOverheadNs:   0.45,
	DynPerGateMHzUW: 7.590e-4, // calibrated: 158.3 µW @ 16 MHz, 20% leakage
	LeakPerGateUW:   3.035e-3,
}

// Config selects a DP-Box hardware variant.
type Config struct {
	// Width is the datapath word width in bits (the paper uses 20).
	Width int
	// CordicIters is the number of unrolled CORDIC stages.
	CordicIters int
	// PipelineDepth cuts the combinational path into this many
	// stages (1 = fully combinational, the paper's baseline).
	PipelineDepth int
	// BudgetLogic includes the embedded budget controller (+11% area
	// in the paper).
	BudgetLogic bool
	// RNGCopies is the number of parallel noise datapaths (URNG +
	// CORDIC + scaler). The constant-time resampling mitigation of
	// Section IV-C needs one copy per candidate sample; the paper's
	// baseline has 1.
	RNGCopies int
	// TargetNs is the synthesis timing constraint; 0 means relaxed
	// (synthesize at natural delay). Constraints tighter than the
	// natural delay cost area and power (gate upsizing).
	TargetNs float64
	// Tech is the technology node; zero value selects Tech65nm.
	Tech Tech
}

// Baseline is the paper's synthesized configuration: 20-bit datapath,
// fully combinational 30-stage CORDIC, embedded budget logic,
// synthesized at its natural critical path.
var Baseline = Config{Width: 20, CordicIters: 30, PipelineDepth: 1, BudgetLogic: true}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Width < 8 || c.Width > 64 {
		return fmt.Errorf("hwmodel: width %d out of range [8,64]", c.Width)
	}
	if c.CordicIters < 4 || c.CordicIters > 60 {
		return fmt.Errorf("hwmodel: cordic iterations %d out of range [4,60]", c.CordicIters)
	}
	if c.PipelineDepth < 1 || c.PipelineDepth > 16 {
		return fmt.Errorf("hwmodel: pipeline depth %d out of range [1,16]", c.PipelineDepth)
	}
	if c.RNGCopies < 0 || c.RNGCopies > 16 {
		return fmt.Errorf("hwmodel: RNG copies %d out of range [0,16]", c.RNGCopies)
	}
	if c.TargetNs < 0 {
		return fmt.Errorf("hwmodel: negative timing target")
	}
	return nil
}

// Report is the synthesis estimate for one variant.
type Report struct {
	// Gates is the equivalent NAND2 gate count.
	Gates int
	// CritPathNs is the achieved critical path.
	CritPathNs float64
	// FMaxMHz is the maximum clock frequency.
	FMaxMHz float64
	// PowerUW is total power at the report's clock frequency.
	PowerUW float64
	// ClockMHz is the frequency PowerUW was evaluated at.
	ClockMHz float64
	// MeetsTarget reports whether the timing constraint was met.
	MeetsTarget bool
	// AreaBudgetFrac is the fraction of area in the budget logic.
	AreaBudgetFrac float64
}

// gatesPerAdderBit is the NAND2-equivalent cost of one full-adder bit
// including the carry chain contribution.
const gatesPerAdderBit = 4.16542 // calibrated against the paper's 10431-gate point

// Synthesize estimates one variant at the given clock frequency.
func Synthesize(cfg Config, clockMHz float64) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	if clockMHz <= 0 {
		return Report{}, fmt.Errorf("hwmodel: non-positive clock %g MHz", clockMHz)
	}
	tech := cfg.Tech
	if tech == (Tech{}) {
		tech = Tech65nm
	}
	w := float64(cfg.Width)
	iters := float64(cfg.CordicIters)

	copies := float64(cfg.RNGCopies)
	if copies == 0 {
		copies = 1
	}
	// Component gate counts (NAND2 equivalents).
	urng := copies * 3 * 32 * 1.6                       // three Tausworthe components: shifts, xors, masks
	cordic := copies * iters * 3 * w * gatesPerAdderBit // x/y/z add-shift per stage, fully unrolled
	scale := copies * 3 * w * math.Log2(w)              // barrel shifter for the 2^-n_m scaling
	guard := 2*w*gatesPerAdderBit + 4*w                 // output adder, two comparators, clamp muxes
	fsm := 120.0                                        // three-phase controller + command decode
	regs := 8 * w * 7                                   // architectural registers (x, ranges, eps, out, Iu, timer)
	pipeRegs := float64(cfg.PipelineDepth-1) * 3 * w * 8

	comb := urng + cordic + scale + guard + fsm + regs + pipeRegs
	budget := 0.0
	if cfg.BudgetLogic {
		budget = comb * 0.11 // the paper's measured 11% overhead
	}
	gates := comb + budget

	// Critical path: the unrolled CORDIC dominates; each stage is an
	// adder (log-depth carry) plus routing, divided across pipeline
	// stages with register overhead.
	adderLevels := math.Log2(w) + 2
	combDelay := iters * adderLevels * tech.GateDelayNs
	crit := combDelay/float64(cfg.PipelineDepth) + tech.RegOverheadNs*boolTo(cfg.PipelineDepth > 1)

	// A timing constraint tighter than the natural delay forces gate
	// upsizing: area and power grow, delay shrinks toward a floor.
	meets := true
	if cfg.TargetNs > 0 && cfg.TargetNs < crit {
		ratio := crit / cfg.TargetNs
		floor := crit * 0.45 // upsizing cannot beat ~2.2x speedup
		achieved := math.Max(cfg.TargetNs, floor)
		meets = achieved <= cfg.TargetNs
		upsize := 1 + 0.55*(ratio-1)
		if !meets {
			upsize = 1 + 0.55*(crit/floor-1)
		}
		gates *= upsize
		crit = achieved
	}

	power := gates * (tech.DynPerGateMHzUW*clockMHz + tech.LeakPerGateUW)
	rep := Report{
		Gates:       int(math.Round(gates)),
		CritPathNs:  crit,
		FMaxMHz:     1000 / crit,
		PowerUW:     power,
		ClockMHz:    clockMHz,
		MeetsTarget: meets,
	}
	if cfg.BudgetLogic {
		rep.AreaBudgetFrac = budget / gates
	}
	return rep, nil
}

func boolTo(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// EnergyPerOpNJ returns the energy of one noising transaction taking
// the given number of cycles at the report's clock.
func (r Report) EnergyPerOpNJ(cycles float64) float64 {
	// power (µW) × time (cycles / (MHz·1e6) s) = µJ·1e-6 → nJ·1e-3.
	seconds := cycles / (r.ClockMHz * 1e6)
	return r.PowerUW * 1e-6 * seconds * 1e9
}
