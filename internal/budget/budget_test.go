package budget

import (
	"errors"
	"math"
	"testing"

	"ulpdp/internal/core"
	"ulpdp/internal/urng"
)

var par = core.Params{Lo: 0, Hi: 8, Eps: 0.5, Bu: 12, By: 10, Delta: 0.5}

func newController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(par, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(par, Config{Budget: 0}); err == nil {
		t.Error("zero budget should be rejected")
	}
	if _, err := New(par, Config{Budget: 1, Mult: 0.5}); err == nil {
		t.Error("mult <= 1 should be rejected")
	}
	if _, err := New(par, Config{Budget: 1, Multipliers: []float64{3}}); err == nil {
		t.Error("multiplier >= Mult should be rejected")
	}
	if _, err := New(par, Config{Budget: 1, Multipliers: []float64{1.8, 1.5}}); err == nil {
		t.Error("descending multipliers should be rejected")
	}
	bad := par
	bad.Eps = -1
	if _, err := New(bad, Config{Budget: 1}); err == nil {
		t.Error("invalid params should be rejected")
	}
}

func TestChargeBands(t *testing.T) {
	c := newController(t, Config{Budget: 100, Mult: 3, Multipliers: []float64{1.5, 2}})
	// In-range outputs cost the interior charge, close to ε.
	in := c.ChargeFor(par.LoSteps() + 3)
	if in != c.InteriorCharge() {
		t.Errorf("interior charge = %g, want %g", in, c.InteriorCharge())
	}
	if in < 0.5*par.Eps || in > 1.5*par.Eps {
		t.Errorf("interior charge %g implausible for ε=%g", in, par.Eps)
	}
	segs := c.Segments()
	if len(segs) == 0 {
		t.Fatal("no charging bands")
	}
	// Just beyond the range: first band multiplier.
	if got := c.ChargeFor(par.HiSteps() + 1); got != segs[0].Mult*par.Eps {
		t.Errorf("first band charge = %g, want %g", got, segs[0].Mult*par.Eps)
	}
	// Beyond the last band: the top charge.
	if got := c.ChargeFor(par.HiSteps() + segs[len(segs)-1].Offset + 1); got != 3*par.Eps {
		t.Errorf("top charge = %g, want %g", got, 3*par.Eps)
	}
	// Symmetric below the range.
	if lo, hi := c.ChargeFor(par.LoSteps()-1), c.ChargeFor(par.HiSteps()+1); lo != hi {
		t.Errorf("asymmetric band charges: %g vs %g", lo, hi)
	}
}

func TestChargesAreSoundPerOutput(t *testing.T) {
	// Every possible output's charge must be at least its exact
	// per-output privacy loss — the property that makes the
	// accumulated charge an upper bound on the true loss.
	c := newController(t, Config{Budget: 100, Mult: 2})
	an := core.NewAnalyzer(par)
	tstep := c.Threshold()
	for y := par.LoSteps() - tstep; y <= par.HiSteps()+tstep; y++ {
		loss := an.LossAt(tstep, y)
		if charge := c.ChargeFor(y); charge < loss-1e-9 {
			t.Errorf("output %d: charge %g below exact loss %g", y, charge, loss)
		}
	}
}

func TestResamplingChargesAreSoundPerOutput(t *testing.T) {
	// In resampling mode the conditional distributions are
	// renormalized per input; the charges must still dominate the
	// exact per-output loss (the zSlack term).
	c, err := New(par, Config{Budget: 100, Mult: 2, Mode: Resampling})
	if err != nil {
		t.Fatal(err)
	}
	an := core.NewAnalyzer(par)
	tstep := c.Threshold()
	for y := par.LoSteps() - tstep; y <= par.HiSteps()+tstep; y++ {
		loss := an.ResamplingLossAt(tstep, y)
		if charge := c.ChargeFor(y); charge < loss-1e-12 {
			t.Errorf("output %d: charge %g below exact resampling loss %g", y, charge, loss)
		}
	}
}

func TestBudgetDepletesAndCaches(t *testing.T) {
	c := newController(t, Config{Budget: 3, Mult: 2, Source: urng.NewTaus88(7)})
	var fresh int
	var cachedVal float64
	for i := 0; i < 100; i++ {
		r, err := c.Request(4)
		if err != nil {
			t.Fatal(err)
		}
		if r.FromCache {
			if r.Charged != 0 {
				t.Error("cached response must not charge")
			}
			if r.Value != cachedVal {
				t.Errorf("cache replay changed value: %g != %g", r.Value, cachedVal)
			}
		} else {
			fresh++
			cachedVal = r.Value
			if r.Charged <= 0 {
				t.Error("fresh response must charge")
			}
		}
	}
	if fresh == 0 || fresh == 100 {
		t.Errorf("expected partial depletion, got %d fresh responses", fresh)
	}
	if c.Remaining() != 0 {
		t.Errorf("remaining = %g, want 0", c.Remaining())
	}
	// Total spend is bounded by budget + one top charge.
	if maxSpend := 3 + 2*par.Eps; float64(fresh)*c.InteriorCharge() > maxSpend+3 {
		t.Errorf("%d fresh responses implausible for budget 3", fresh)
	}
}

func TestExhaustedWithoutCache(t *testing.T) {
	c := newController(t, Config{Budget: 0.0001, Mult: 2})
	// First request drives the budget to zero but is served.
	if _, err := c.Request(1); err != nil {
		t.Fatal(err)
	}
	r, err := c.Request(1)
	if err != nil {
		t.Fatal(err)
	}
	if !r.FromCache {
		t.Error("second request should be cached")
	}
}

func TestErrExhaustedNoCache(t *testing.T) {
	c := newController(t, Config{Budget: 1, Mult: 2})
	c.remaining = 0 // simulate a boot-time-depleted budget
	if _, err := c.Request(1); !errors.Is(err, ErrExhausted) {
		t.Errorf("err = %v, want ErrExhausted", err)
	}
}

func TestReplenishment(t *testing.T) {
	c := newController(t, Config{Budget: 0.6, Mult: 2, ReplenishPeriod: 1000, Source: urng.NewTaus88(3)})
	if _, err := c.Request(4); err != nil {
		t.Fatal(err)
	}
	if c.Remaining() >= 0.6 {
		t.Fatal("request did not charge")
	}
	c.Tick(999)
	before := c.Remaining()
	c.Tick(1)
	if c.Remaining() != 0.6 {
		t.Errorf("after period: remaining = %g, want full 0.6 (was %g)", c.Remaining(), before)
	}
	// Multiple periods in one tick.
	c.remaining = 0
	c.Tick(3000)
	if c.Remaining() != 0.6 {
		t.Errorf("multi-period tick: remaining = %g", c.Remaining())
	}
}

func TestNoReplenishmentWhenDisabled(t *testing.T) {
	c := newController(t, Config{Budget: 0.6, Mult: 2})
	if _, err := c.Request(4); err != nil {
		t.Fatal(err)
	}
	spent := c.Remaining()
	c.Tick(1 << 40)
	if c.Remaining() != spent {
		t.Error("budget replenished despite period 0")
	}
}

func TestThresholdingModeClampsOutputs(t *testing.T) {
	c := newController(t, Config{Budget: 1e9, Mult: 2, Source: urng.NewTaus88(21)})
	lo := par.Lo - float64(c.Threshold())*par.Delta
	hi := par.Hi + float64(c.Threshold())*par.Delta
	for i := 0; i < 20000; i++ {
		r, err := c.Request(par.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if r.Value < lo-1e-9 || r.Value > hi+1e-9 {
			t.Fatalf("output %g outside [%g, %g]", r.Value, lo, hi)
		}
		if r.Resamples != 0 {
			t.Fatal("thresholding mode must not resample")
		}
	}
}

func TestResamplingModeResamples(t *testing.T) {
	c, err := New(par, Config{Budget: 1e9, Mult: 2, Mode: Resampling, Source: urng.NewTaus88(23)})
	if err != nil {
		t.Fatal(err)
	}
	lo := par.Lo - float64(c.Threshold())*par.Delta
	hi := par.Hi + float64(c.Threshold())*par.Delta
	saw := false
	for i := 0; i < 20000; i++ {
		r, err := c.Request(par.Hi)
		if err != nil {
			t.Fatal(err)
		}
		if r.Value < lo-1e-9 || r.Value > hi+1e-9 {
			t.Fatalf("output %g outside [%g, %g]", r.Value, lo, hi)
		}
		if r.Resamples > 0 {
			saw = true
		}
	}
	if !saw {
		t.Error("expected at least one resample")
	}
}

func TestAdaptiveChargingSavesBudget(t *testing.T) {
	// The whole point of Algorithm 1: charging per segment lets more
	// requests through than always charging the worst case.
	const budget = 20.0
	adaptive := newController(t, Config{Budget: budget, Mult: 3, Multipliers: []float64{1.5, 2}, Source: urng.NewTaus88(31)})
	countFresh := func(c *Controller) int {
		n := 0
		for i := 0; i < 1000; i++ {
			r, err := c.Request(4)
			if err != nil {
				t.Fatal(err)
			}
			if !r.FromCache {
				n++
			}
		}
		return n
	}
	freshAdaptive := countFresh(adaptive)
	// Worst-case flat charging would allow budget/(3ε) requests.
	flat := int(budget / (3 * par.Eps))
	if freshAdaptive <= flat {
		t.Errorf("adaptive charging allowed %d fresh responses, flat worst-case %d", freshAdaptive, flat)
	}
}

func TestModeString(t *testing.T) {
	if Thresholding.String() != "thresholding" || Resampling.String() != "resampling" {
		t.Error("mode strings wrong")
	}
}

func TestCompositionAccounting(t *testing.T) {
	// Sum of charges never exceeds budget + one maximal charge
	// (Algorithm 1 may overshoot by at most the final request).
	c := newController(t, Config{Budget: 5, Mult: 2, Source: urng.NewTaus88(37)})
	var total float64
	for i := 0; i < 500; i++ {
		r, err := c.Request(4)
		if err != nil {
			t.Fatal(err)
		}
		total += r.Charged
	}
	if total > 5+2*par.Eps+1e-9 {
		t.Errorf("total charge %g exceeds budget plus one top charge", total)
	}
	if math.Abs(c.Remaining()) > 1e-12 {
		t.Errorf("remaining = %g", c.Remaining())
	}
}
