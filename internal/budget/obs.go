package budget

import "ulpdp/internal/obs"

// Metrics is the software budget controller's slice of the telemetry
// plane. The odometer, band histogram and replenish counter
// intentionally share their names with the DP-Box budget plane
// (dpbox.NewMetrics): a process running both accumulates one unified
// privacy-accounting surface, provided the odometer channel count
// agrees. The request counters and the nat-denominated charge
// histogram are the controller's own — the hardware plane charges in
// sixteenth-nat units, the software controller in real nats, and the
// two scales must not share a histogram.
type Metrics struct {
	Requests       *obs.Counter
	CacheReplays   *obs.Counter
	Resamples      *obs.Counter
	Odometer       *obs.Odometer
	ChargeMicroNat *obs.Histogram // per-request charge in µnats
	ChargeBands    *obs.Histogram // 0 interior, 1..n segments, n+1 top
	Replenishes    *obs.Counter
}

// NewMetrics registers (or re-binds) the controller's metric schema.
// channels sizes the shared privacy odometer; every plane bound to the
// same registry must agree on it.
func NewMetrics(r *obs.Registry, channels int) *Metrics {
	return &Metrics{
		Requests:       r.Counter("budget.requests"),
		CacheReplays:   r.Counter("budget.cache_replays"),
		Resamples:      r.Counter("budget.resamples"),
		Odometer:       r.Odometer("budget.odometer", channels),
		ChargeMicroNat: r.Histogram("budget.charge_micro_nats", []int64{1_000, 10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000, 2_000_000}),
		ChargeBands:    r.Histogram("budget.charge_bands", []int64{0, 1, 2, 3, 4, 5, 6, 7}),
		Replenishes:    r.Counter("budget.replenishes"),
	}
}
